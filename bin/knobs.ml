(* Shared knob surface for the hovercraft CLI.

   Every subcommand that drives a deployment takes the same cluster
   shape, workload and feature knobs; this module is the single place
   their cmdliner specs (and the params/workload constructors they feed)
   live, so a new verb picks them up by name instead of copy-pasting
   flag definitions that then drift apart. *)

open Cmdliner
open Hovercraft_sim
open Hovercraft_core
module Service = Hovercraft_apps.Service
module Ycsb = Hovercraft_apps.Ycsb
module Jbsq = Hovercraft_r2p2.Jbsq

(* --- converters ------------------------------------------------------ *)

let mode_conv =
  let parse s = Hnode.mode_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print fmt m = Hnode.pp_mode fmt m in
  Arg.conv (parse, print)

let mode_arg =
  let doc = "Deployment mode: unrep, vanilla, hover or hoverpp." in
  Arg.(value & opt mode_conv Hnode.Hover_pp & info [ "m"; "mode" ] ~doc)

let backend_conv =
  let parse s =
    Hovercraft_ordering.Ordering.kind_of_string s
    |> Result.map_error (fun e -> `Msg e)
  in
  let print fmt k = Hovercraft_ordering.Ordering.pp_kind fmt k in
  Arg.conv (parse, print)

let backend_arg =
  let doc =
    "Ordering backend: raft (the paper's leader-based log) or rabia \
     (leaderless randomized agreement; requires -m hover and a fixed \
     membership)."
  in
  Arg.(value & opt backend_conv Hnode.Raft & info [ "backend" ] ~doc)

let trace_conv =
  let parse s =
    match Hovercraft_obs.Trace.severity_of_string s with
    | Some sev -> Ok sev
    | None -> Error (`Msg (Printf.sprintf "unknown trace level %S" s))
  in
  let print fmt sev =
    Format.pp_print_string fmt (Hovercraft_obs.Trace.severity_to_string sev)
  in
  Arg.conv (parse, print)

(* Knob validation lives in Hnode/Deploy and raises Invalid_argument with
   a sentence worth showing; turn it into a clean CLI failure instead of
   a backtrace. *)
let or_die f =
  try f ()
  with Invalid_argument msg ->
    Printf.eprintf "hovercraft: %s\n" msg;
    exit 2

(* --- cluster shape --------------------------------------------------- *)

let nodes_arg =
  let doc = "Cluster size (ignored for unrep, which runs one node)." in
  Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~doc)

let rate_arg =
  let doc = "Offered load in requests per second." in
  Arg.(value & opt float 100_000. & info [ "r"; "rate" ] ~doc)

let duration_arg =
  let doc = "Measured duration in simulated milliseconds." in
  Arg.(value & opt int 100 & info [ "d"; "duration-ms" ] ~doc)

let seed_arg =
  let doc = "Random seed (simulations are deterministic per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

(* --- workload -------------------------------------------------------- *)

let service_us_arg =
  let doc = "Mean service time of the synthetic workload, in microseconds." in
  Arg.(value & opt float 1.0 & info [ "service-us" ] ~doc)

let read_fraction_arg =
  let doc = "Fraction of requests that are read-only." in
  Arg.(value & opt float 0. & info [ "read-fraction" ] ~doc)

let req_bytes_arg =
  let doc = "Request payload size in bytes." in
  Arg.(value & opt int 24 & info [ "req-bytes" ] ~doc)

let rep_bytes_arg =
  let doc = "Reply payload size in bytes." in
  Arg.(value & opt int 8 & info [ "rep-bytes" ] ~doc)

let bimodal_arg =
  let doc =
    "Use the paper's bimodal service distribution (10% of requests 10x longer)."
  in
  Arg.(value & flag & info [ "bimodal" ] ~doc)

let ycsb_arg =
  let doc =
    "Run YCSB-E on the Redis-like store instead of the synthetic service."
  in
  Arg.(value & flag & info [ "ycsb" ] ~doc)

(* --- feature knobs --------------------------------------------------- *)

let no_lb_arg =
  let doc =
    "Disable reply/read-only load balancing (leader answers everything)."
  in
  Arg.(value & flag & info [ "no-reply-lb" ] ~doc)

let random_lb_arg =
  let doc = "Use RANDOM replier selection instead of JBSQ." in
  Arg.(value & flag & info [ "random-lb" ] ~doc)

let bound_arg =
  let doc = "Bounded-queue size B (max assigned-but-unapplied ops per node)." in
  Arg.(value & opt int 128 & info [ "bound" ] ~doc)

let snapshot_interval_arg =
  let doc =
    "Checkpoint the state machine every this many applied entries and let \
     the log compact past lagging followers (they catch up via \
     Install_snapshot); 0 disables snapshots."
  in
  Arg.(value & opt int 0 & info [ "snapshot-interval" ] ~doc)

let flow_cap_arg =
  let doc =
    "Enable the flow-control middlebox with this many in-flight requests."
  in
  Arg.(value & opt (some int) None & info [ "flow-cap" ] ~doc)

(* --- observability --------------------------------------------------- *)

let metrics_arg =
  let doc =
    "Write a JSON observability snapshot (per-node metrics, per-link fabric \
     counters, the protocol-event trace) to $(docv) after the run; use - for \
     stdout."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc =
    "Record protocol events at $(docv) (debug, info, warn or error) and print \
     the trace ring after the run."
  in
  Arg.(value & opt (some trace_conv) None & info [ "trace" ] ~doc ~docv:"LEVEL")

(* --- constructors the knobs feed ------------------------------------- *)

let make_params ?(snapshot_interval = 0) ?(backend = Hnode.Raft) mode n no_lb
    random_lb bound flow_cap seed =
  let p =
    or_die (fun () ->
        Hnode.params ~mode ~backend
          ~n:(if mode = Hnode.Unreplicated then max n 1 else n)
          ())
  in
  {
    p with
    Hnode.seed;
    features =
      {
        p.Hnode.features with
        Hnode.reply_lb = not no_lb;
        lb_policy = (if random_lb then Jbsq.Random_choice else Jbsq.Jbsq);
        bound;
        flow_control = flow_cap <> None;
        snapshot_interval;
      };
  }

let make_workload ~ycsb ~bimodal ~service_us ~read_fraction ~req_bytes
    ~rep_bytes ~seed =
  if ycsb then begin
    let gen = Ycsb.create ~seed () in
    ((fun _rng -> Ycsb.next gen), Ycsb.preload_ops gen 20_000)
  end
  else begin
    let service =
      if bimodal then
        Dist.Bimodal
          {
            mean = Timebase.of_us_f service_us;
            long_fraction = 0.1;
            ratio = 10.;
          }
      else Dist.Fixed (Timebase.of_us_f service_us)
    in
    let spec = Service.spec ~service ~req_bytes ~rep_bytes ~read_fraction () in
    (Service.sample spec, [])
  end
