(* The hovercraft command-line tool.

   Subcommands:
     run       — drive one deployment at a fixed load and report latency,
                 throughput and per-node statistics;
     sweep     — latency-throughput curve over a list of offered loads;
     slo       — find the max load sustaining a p99 SLO;
     failover  — leader-kill timeline with flow control;
     chaos     — seeded kill/restart/partition schedule with the
                 crash-recovery history checker (--reconfig adds
                 add/remove/transfer membership churn to the mix,
                 --snapshot-interval turns on checkpoint/compaction and
                 the snapshot-aware checker);
     reconfig  — scripted membership-change scenario under load: grow
                 3 -> 5, transfer leadership, remove the old leader,
                 crash-and-restart a follower, then run the checker;
     snapshot  — snapshot/compaction smoke: crash a follower, run past
                 the retention window, restart it and assert it rejoins
                 via Install_snapshot rather than log replay;
     shard     — Multi-Raft sharding smoke: split the active groups onto
                 dormant ones and rebalance with a live move_shard under
                 YCSB-B load, checked by the shard-aware history checker;
     control   — run one scenario from the autoscaling suite with the
                 SLO-driven controller on (or --off for the baseline),
                 judged per window and by the history-checker battery;
     repro     — regenerate the paper's tables and figures by id;
     mc        — model-check bounded Raft / HovercRaft++ instances. *)

open Cmdliner
open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Service = Hovercraft_apps.Service
module Ycsb = Hovercraft_apps.Ycsb
module Jbsq = Hovercraft_r2p2.Jbsq
module Shard_chaos = Hovercraft_shard.Shard_chaos

(* --- shared arguments ------------------------------------------------ *)

(* The knob surface (cluster shape, workload, feature flags, observability
   outputs) is shared across verbs and lives in Knobs. *)
open Knobs

let emit_snapshot ~metrics_out ~trace_level (deploy : Deploy.t) extra =
  (match trace_level with
  | None -> ()
  | Some _ ->
      Printf.printf "--- trace (%d events recorded) ---\n"
        (Hovercraft_obs.Trace.recorded (Deploy.trace deploy));
      List.iter
        (fun ev -> Format.printf "%a@." Hovercraft_obs.Trace.pp_event ev)
        (Hovercraft_obs.Trace.events (Deploy.trace deploy)));
  match metrics_out with
  | None -> ()
  | Some file ->
      let json =
        match (Deploy.snapshot deploy, extra) with
        | Hovercraft_obs.Json.Obj fields, extra ->
            Hovercraft_obs.Json.Obj (fields @ extra)
        | other, _ -> other
      in
      let text = Hovercraft_obs.Json.to_string_pretty json in
      if file = "-" then print_endline text
      else begin
        try
          let oc = open_out file in
          output_string oc text;
          output_char oc '\n';
          close_out oc;
          Printf.printf "metrics snapshot written to %s\n" file
        with Sys_error e ->
          Printf.eprintf "hovercraft: cannot write metrics snapshot: %s\n" e
      end

let make_params ?(snapshot_interval = 0) ?(backend = Hnode.Raft) mode n no_lb
    random_lb bound flow_cap seed =
  let p =
    or_die (fun () ->
        Hnode.params ~mode ~backend
          ~n:(if mode = Hnode.Unreplicated then max n 1 else n)
          ())
  in
  {
    p with
    Hnode.seed;
    features =
      {
        p.Hnode.features with
        Hnode.reply_lb = not no_lb;
        lb_policy = (if random_lb then Jbsq.Random_choice else Jbsq.Jbsq);
        bound;
        flow_control = flow_cap <> None;
        snapshot_interval;
      };
  }

let make_workload ~ycsb ~bimodal ~service_us ~read_fraction ~req_bytes
    ~rep_bytes ~seed =
  if ycsb then begin
    let gen = Ycsb.create ~seed () in
    ((fun _rng -> Ycsb.next gen), Ycsb.preload_ops gen 20_000)
  end
  else begin
    let service =
      if bimodal then
        Dist.Bimodal
          { mean = Timebase.of_us_f service_us; long_fraction = 0.1; ratio = 10. }
      else Dist.Fixed (Timebase.of_us_f service_us)
    in
    let spec =
      Service.spec ~service ~req_bytes ~rep_bytes ~read_fraction ()
    in
    (Service.sample spec, [])
  end

let print_report (r : Loadgen.report) =
  Printf.printf "offered    : %.0f RPS\n" r.offered_rps;
  Printf.printf "goodput    : %.0f RPS (%d completed / %d sent)\n" r.goodput_rps
    r.completed r.sent;
  Printf.printf "latency    : mean %.1f us, p50 %.1f us, p99 %.1f us, max %.1f us\n"
    r.mean_us r.p50_us r.p99_us r.max_us;
  Printf.printf "nacked     : %d, lost: %d\n" r.nacked r.lost

let print_nodes (deploy : Deploy.t) =
  Array.iter
    (fun node ->
      Printf.printf
        "  node%d%s: applied=%d executed=%d replies=%d net-busy=%.1fms \
         app-busy=%.1fms%s\n"
        (Hnode.id node)
        (if Hnode.is_leader node && Hnode.alive node then " (leader)" else "")
        (Hnode.applied_index node) (Hnode.executed_ops node)
        (Hnode.replies_sent node)
        (float_of_int (Hnode.net_busy_time node) /. 1e6)
        (float_of_int (Hnode.app_busy_time node) /. 1e6)
        (if Hnode.alive node then "" else " DEAD"))
    deploy.Deploy.nodes;
  Printf.printf "replicas consistent: %b\n" (Deploy.consistent deploy)

(* --- run --------------------------------------------------------------- *)

let run_cmd =
  let action mode backend n rate duration_ms seed service_us read_fraction
      req_bytes rep_bytes bimodal ycsb no_lb random_lb bound flow_cap
      snapshot_interval metrics_out trace_level =
    let params =
      make_params ~snapshot_interval ~backend mode n no_lb random_lb bound
        flow_cap seed
    in
    let workload, preload =
      make_workload ~ycsb ~bimodal ~service_us ~read_fraction ~req_bytes
        ~rep_bytes ~seed
    in
    let trace =
      Hovercraft_obs.Trace.create
        ~level:
          (Option.value trace_level ~default:Hovercraft_obs.Trace.Info)
        ()
    in
    let deploy = Deploy.create (Deploy.config ?flow_cap ~trace params) in
    if preload <> [] then
      Array.iter (fun nd -> Hnode.preload nd preload) deploy.Deploy.nodes;
    let gen = Loadgen.create deploy ~clients:8 ~rate_rps:rate ~workload ~seed () in
    let duration = Timebase.ms duration_ms in
    let report = Loadgen.run gen ~warmup:(duration / 5) ~duration () in
    Deploy.quiesce deploy ();
    Format.printf "mode %a, %d node(s)@." Hnode.pp_mode mode params.Hnode.n;
    print_report report;
    print_nodes deploy;
    emit_snapshot ~metrics_out ~trace_level deploy
      [ ("loadgen", Loadgen.snapshot gen) ]
  in
  let term =
    Term.(
      const action $ mode_arg $ backend_arg $ nodes_arg $ rate_arg
      $ duration_arg $ seed_arg $ service_us_arg $ read_fraction_arg
      $ req_bytes_arg $ rep_bytes_arg $ bimodal_arg $ ycsb_arg $ no_lb_arg
      $ random_lb_arg $ bound_arg $ flow_cap_arg $ snapshot_interval_arg
      $ metrics_arg $ trace_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Drive one deployment at a fixed load.") term

(* --- sweep --------------------------------------------------------------- *)

let rates_arg =
  let doc = "Comma-separated offered loads in kRPS." in
  Arg.(value & opt (list float) [ 100.; 300.; 500.; 700.; 900. ] & info [ "loads-krps" ] ~doc)

let sweep_cmd =
  let action mode n rates seed service_us read_fraction req_bytes rep_bytes
      bimodal ycsb no_lb random_lb bound =
    let params = make_params mode n no_lb random_lb bound None seed in
    let workload, preload =
      make_workload ~ycsb ~bimodal ~service_us ~read_fraction ~req_bytes
        ~rep_bytes ~seed
    in
    let setup = Experiment.setup ~preload ~seed params workload in
    let rows =
      List.map
        (fun krps ->
          let r = Experiment.run_point setup ~rate_rps:(krps *. 1000.) in
          [
            Table.fmt_krps r.Loadgen.offered_rps;
            Table.fmt_krps r.Loadgen.goodput_rps;
            Table.fmt_us r.Loadgen.p50_us;
            Table.fmt_us r.Loadgen.p99_us;
            string_of_int r.Loadgen.lost;
          ])
        rates
    in
    Table.print
      ~header:[ "offered kRPS"; "goodput kRPS"; "p50 us"; "p99 us"; "lost" ]
      rows
  in
  let term =
    Term.(
      const action $ mode_arg $ nodes_arg $ rates_arg $ seed_arg
      $ service_us_arg $ read_fraction_arg $ req_bytes_arg $ rep_bytes_arg
      $ bimodal_arg $ ycsb_arg $ no_lb_arg $ random_lb_arg $ bound_arg)
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Latency-throughput curve over offered loads.") term

(* --- slo ------------------------------------------------------------------ *)

let slo_us_arg =
  let doc = "Tail-latency SLO in microseconds (99th percentile)." in
  Arg.(value & opt float 500. & info [ "slo-us" ] ~doc)

let slo_cmd =
  let action mode n seed service_us read_fraction req_bytes rep_bytes bimodal
      ycsb no_lb random_lb bound slo_us =
    let params = make_params mode n no_lb random_lb bound None seed in
    let workload, preload =
      make_workload ~ycsb ~bimodal ~service_us ~read_fraction ~req_bytes
        ~rep_bytes ~seed
    in
    let setup = Experiment.setup ~preload ~seed params workload in
    let knee =
      Experiment.max_under_slo ~slo:(Timebase.of_us_f slo_us) ~lo:2_000. setup
    in
    Format.printf "%a n=%d sustains %s kRPS under a %.0f us p99 SLO@."
      Hnode.pp_mode mode params.Hnode.n (Table.fmt_krps knee) slo_us
  in
  let term =
    Term.(
      const action $ mode_arg $ nodes_arg $ seed_arg $ service_us_arg
      $ read_fraction_arg $ req_bytes_arg $ rep_bytes_arg $ bimodal_arg
      $ ycsb_arg $ no_lb_arg $ random_lb_arg $ bound_arg $ slo_us_arg)
  in
  Cmd.v (Cmd.info "slo" ~doc:"Max throughput under a tail-latency SLO.") term

(* --- failover --------------------------------------------------------------- *)

let failover_cmd =
  let action n rate seed kill_ms duration_ms =
    let spec =
      Service.spec
        ~service:(Dist.Bimodal { mean = Timebase.us 10; long_fraction = 0.1; ratio = 10. })
        ~read_fraction:0.75 ()
    in
    let outcome =
      let p = Hnode.params ~mode:Hnode.Hover_pp ~n () in
      Failure.run
        ~params:
          {
            p with
            Hnode.seed;
            features =
              { p.Hnode.features with Hnode.bound = 32; flow_control = true };
          }
        ~rate_rps:rate ~flow_cap:1000 ~bucket:(Timebase.ms 100)
        ~duration:(Timebase.ms duration_ms) ~kill_after:(Timebase.ms kill_ms)
        ~workload:(Service.sample spec) ~seed ()
    in
    let rows =
      List.map
        (fun (b : Failure.bucket) ->
          [
            Printf.sprintf "%.1f" b.t_s;
            Printf.sprintf "%.1f" b.krps;
            (match b.p99_us with Some v -> Table.fmt_us v | None -> "-");
            string_of_int b.nacks;
          ])
        outcome.Failure.series
    in
    Table.print ~header:[ "t (s)"; "kRPS"; "p99 us"; "NACKs" ] rows;
    Printf.printf
      "killed node %s at %.1fs; new leader %s; NACKed %d; consistent %b\n"
      (match outcome.Failure.killed_node with Some i -> string_of_int i | None -> "?")
      outcome.Failure.killed_at_s
      (match outcome.Failure.new_leader with Some i -> string_of_int i | None -> "?")
      outcome.Failure.total_nacked outcome.Failure.consistent
  in
  let kill_ms =
    Arg.(value & opt int 600 & info [ "kill-ms" ] ~doc:"When to kill the leader.")
  in
  let dur = Arg.(value & opt int 2000 & info [ "duration-ms" ] ~doc:"Run length.") in
  let rate =
    Arg.(value & opt float 165_000. & info [ "rate" ] ~doc:"Offered load in RPS.")
  in
  let term = Term.(const action $ nodes_arg $ rate $ seed_arg $ kill_ms $ dur) in
  Cmd.v (Cmd.info "failover" ~doc:"Leader-kill timeline with flow control.") term

(* --- chaos -------------------------------------------------------------------- *)

let chaos_params ?(backend = Hnode.Raft) ?(apply_threads = 1) ?(net_stages = 1)
    ~n ~seed () =
  (* Rabia only composes with plain HovercRaft (the ++ fast path assumes
     a leader); raft chaos keeps exercising the ++ aggregation path. *)
  let mode =
    match backend with
    | Hnode.Raft -> Hnode.Hover_pp
    | Hnode.Rabia -> Hnode.Hover
  in
  let p = or_die (fun () -> Hnode.params ~mode ~backend ~n ()) in
  {
    p with
    Hnode.seed;
    features =
      {
        p.Hnode.features with
        Hnode.bound = 32;
        flow_control = true;
        apply_threads;
        net_stages;
      };
  }

let print_chaos_outcome ~seed (outcome : Chaos.outcome) =
  Printf.printf "schedule (seed %d):\n" seed;
  List.iter
    (fun (t_s, what) -> Printf.printf "  t=%.2fs  %s\n" t_s what)
    outcome.Chaos.events;
  let rows =
    List.map
      (fun (b : Failure.bucket) ->
        [
          Printf.sprintf "%.1f" b.t_s;
          Printf.sprintf "%.1f" b.krps;
          (match b.p99_us with Some v -> Table.fmt_us v | None -> "-");
          string_of_int b.nacks;
        ])
      outcome.Chaos.series
  in
  Table.print ~header:[ "t (s)"; "kRPS"; "p99 us"; "NACKs" ] rows;
  Printf.printf "completed %d, nacked %d, lost %d, retried %d\n"
    outcome.Chaos.report.Loadgen.completed outcome.Chaos.report.Loadgen.nacked
    outcome.Chaos.report.Loadgen.lost outcome.Chaos.retried;
  Printf.printf
    "exactly-once %b; committed-preserved %b; caught-up %b; consistent %b\n"
    outcome.Chaos.exactly_once_ok outcome.Chaos.committed_preserved
    outcome.Chaos.caught_up outcome.Chaos.consistent;
  Printf.printf "final members: [%s]; pending recoveries: %d\n"
    (String.concat ";" (List.map string_of_int outcome.Chaos.final_members))
    outcome.Chaos.pending_recoveries;
  Printf.printf "max log base: %d; snapshot installs: %d\n"
    outcome.Chaos.max_log_base outcome.Chaos.installs;
  if outcome.Chaos.violations <> [] then begin
    List.iter (Printf.printf "VIOLATION: %s\n") outcome.Chaos.violations;
    exit 1
  end

let chaos_workload =
  Service.sample
    (Service.spec
       ~service:
         (Dist.Bimodal { mean = Timebase.us 10; long_fraction = 0.1; ratio = 10. })
       ~read_fraction:0.5 ())

let chaos_cmd =
  let action backend n rate seed duration_ms events reconfig snapshot_interval
      apply_threads net_stages =
    if backend = Hnode.Rabia && reconfig then begin
      Printf.eprintf
        "hovercraft: chaos --reconfig is incompatible with --backend rabia: \
         the leaderless backend runs a fixed membership and has no \
         leadership to transfer\n";
      exit 2
    end;
    let duration = Timebase.ms duration_ms in
    let snapshots =
      if snapshot_interval > 0 then Some snapshot_interval else None
    in
    let outcome =
      Chaos.run
        ~params:(chaos_params ~backend ~apply_threads ~net_stages ~n ~seed ())
        ~rate_rps:rate ~flow_cap:1000 ~bucket:(Timebase.ms 100) ~duration
        ?snapshots
        ~schedule:(Chaos.random_schedule ~events ~reconfig ~n ~duration ~seed ())
        ~workload:chaos_workload ~seed ()
    in
    print_chaos_outcome ~seed outcome
  in
  let nodes =
    Arg.(value & opt int 5 & info [ "n"; "nodes" ] ~doc:"Cluster size (>= 3).")
  in
  let rate =
    Arg.(value & opt float 120_000. & info [ "rate" ] ~doc:"Offered load in RPS.")
  in
  let dur = Arg.(value & opt int 2000 & info [ "duration-ms" ] ~doc:"Run length.") in
  let events =
    Arg.(value & opt int 6 & info [ "events" ] ~doc:"Scheduled fault budget.")
  in
  let reconfig =
    Arg.(
      value & flag
      & info [ "reconfig" ]
          ~doc:"Mix add-node / remove-node / transfer-leadership churn into the schedule.")
  in
  let apply_threads =
    Arg.(
      value & opt int 1
      & info [ "apply-threads" ]
          ~doc:
            "Application threads per node (K): committed entries with \
             disjoint key footprints apply in parallel; 1 is the serial \
             loop.")
  in
  let net_stages =
    Arg.(
      value & opt int 1
      & info [ "net-stages" ]
          ~doc:
            "Net-path stage CPUs per node (1..4): 1 is the monolithic net \
             thread; higher settings pipeline it into ingress / sequencer \
             / fanout / replier stages.")
  in
  let term =
    Term.(
      const action $ backend_arg $ nodes $ rate $ seed_arg $ dur $ events
      $ reconfig $ snapshot_interval_arg $ apply_threads $ net_stages)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded kill/restart/partition schedule under load, with the \
          crash-recovery history checker; exits non-zero on any violation.")
    term

(* --- reconfig ----------------------------------------------------------------- *)

let reconfig_cmd =
  let action rate seed duration_ms snapshot_interval =
    let duration = Timebase.ms duration_ms in
    let snapshots =
      if snapshot_interval > 0 then Some snapshot_interval else None
    in
    let at pct = duration * pct / 100 in
    (* Starts as HovercRaft++ N=3 with node 0 leading (bootstrap). Grow to
       five voters, hand leadership to one of the newcomers, retire the old
       leader, then crash and revive a follower — all under open-loop load,
       all checked against the history checker. *)
    let schedule =
      [
        { Chaos.at = at 10; event = Chaos.Add_node };           (* -> node 3 *)
        { Chaos.at = at 25; event = Chaos.Add_node };           (* -> node 4 *)
        { Chaos.at = at 40; event = Chaos.Transfer 3 };
        { Chaos.at = at 55; event = Chaos.Remove_node 0 };
        { Chaos.at = at 65; event = Chaos.Kill 1 };
        { Chaos.at = at 80; event = Chaos.Restart 1 };
      ]
    in
    let outcome =
      Chaos.run
        ~params:(chaos_params ~n:3 ~seed ())
        ~rate_rps:rate ~flow_cap:1000 ~bucket:(Timebase.ms 100) ~duration
        ?snapshots ~schedule ~workload:chaos_workload ~seed ()
    in
    print_chaos_outcome ~seed outcome;
    if outcome.Chaos.pending_recoveries <> 0 then begin
      Printf.printf "VIOLATION: %d pending recoveries after quiesce\n"
        outcome.Chaos.pending_recoveries;
      exit 1
    end;
    (* With snapshots on, the newcomers must have been served the image:
       the leader does not retain history below its base on their behalf. *)
    if snapshots <> None && outcome.Chaos.installs = 0 then begin
      Printf.printf
        "VIOLATION: snapshot run finished without a single install\n";
      exit 1
    end
  in
  let rate =
    Arg.(value & opt float 100_000. & info [ "rate" ] ~doc:"Offered load in RPS.")
  in
  let dur = Arg.(value & opt int 2000 & info [ "duration-ms" ] ~doc:"Run length.") in
  let term =
    Term.(const action $ rate $ seed_arg $ dur $ snapshot_interval_arg)
  in
  Cmd.v
    (Cmd.info "reconfig"
       ~doc:
         "Scripted membership-change scenario under load (grow 3 to 5, \
          transfer leadership, remove the old leader, crash and restart a \
          follower), verified by the history checker; exits non-zero on any \
          violation.")
    term

(* --- snapshot ----------------------------------------------------------------- *)

let snapshot_cmd =
  let action n rate seed duration_ms interval =
    let duration = Timebase.ms duration_ms in
    let at pct = duration * pct / 100 in
    (* A follower sleeps through most of the run while the cluster commits
       far past the retention window; on restart the only way back is the
       leader's image. The snapshot-aware checker then verifies state
       equivalence, and we additionally assert the mechanism itself: the
       leader's log base advanced (compaction did not wait for the crashed
       follower) and the rejoin went through Install_snapshot. *)
    let schedule =
      [
        { Chaos.at = at 15; event = Chaos.Kill 1 };
        { Chaos.at = at 70; event = Chaos.Restart 1 };
      ]
    in
    let outcome =
      Chaos.run
        ~params:(chaos_params ~n ~seed ())
        ~rate_rps:rate ~flow_cap:1000 ~bucket:(Timebase.ms 100) ~duration
        ~snapshots:interval ~schedule ~workload:chaos_workload ~seed ()
    in
    print_chaos_outcome ~seed outcome;
    if outcome.Chaos.max_log_base = 0 then begin
      Printf.printf "VIOLATION: log never compacted (base stayed 0)\n";
      exit 1
    end;
    if outcome.Chaos.installs = 0 then begin
      Printf.printf
        "VIOLATION: restarted follower caught up by replay, not by \
         Install_snapshot\n";
      exit 1
    end;
    Printf.printf "snapshot smoke OK\n"
  in
  let nodes =
    Arg.(value & opt int 5 & info [ "n"; "nodes" ] ~doc:"Cluster size (>= 3).")
  in
  let rate =
    Arg.(value & opt float 120_000. & info [ "rate" ] ~doc:"Offered load in RPS.")
  in
  let dur = Arg.(value & opt int 2000 & info [ "duration-ms" ] ~doc:"Run length.") in
  let interval =
    Arg.(
      value & opt int 2000
      & info [ "snapshot-interval" ] ~doc:"Checkpoint interval in entries.")
  in
  let term =
    Term.(const action $ nodes $ rate $ seed_arg $ dur $ interval)
  in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Snapshot/compaction smoke test: crash a follower, run past the \
          retention window, restart it and require catch-up via \
          Install_snapshot with a compacted leader log; exits non-zero on \
          any violation.")
    term

(* --- shard -------------------------------------------------------------------- *)

let shard_cmd =
  let action n shards active rate seed duration_ms events =
    let duration = Timebase.ms duration_ms in
    let kv = Ycsb.Kv.workload_b ~seed in
    let schedule =
      if events > 0 then
        Some (Chaos.random_schedule ~events ~shards ~n ~duration ~seed ())
      else Some []
    in
    (* The smoke scenario: start with [active] groups owning the map,
       split each live group onto a dormant one (active -> 2*active, e.g.
       2 -> 4), then move a few slots back — a plain rebalance — all
       under sustained YCSB-B load. *)
    let at pct = duration * pct / 100 in
    let splits =
      List.init (min active (shards - active)) (fun i ->
          ( at (20 + (25 * i)),
            Shard_chaos.Split { source = i; target = active + i } ))
    in
    let migrations =
      if shards > active then
        splits
        @ [
            (* By 75% the first split has long finished: its target owns
               the upper half of group 0's original block. Move two of
               those slots back — exercising move_shard proper. *)
            ( at 78,
              Shard_chaos.Move
                { slots = [ 64 / (2 * active); (64 / (2 * active)) + 1 ];
                  target = 0 } );
          ]
      else []
    in
    let outcome =
      Shard_chaos.run
        ~params:(chaos_params ~n ~seed ())
        ~shards ~active ~rate_rps:rate ~flow_cap:1000 ~duration ?schedule
        ~migrations
        ~preload:(Ycsb.Kv.preload_ops kv)
        ~workload:(fun _rng -> Ycsb.Kv.next kv)
        ~seed ()
    in
    Printf.printf "timeline (seed %d, %d shards, %d active):\n" seed shards
      active;
    List.iter
      (fun (t_s, what) -> Printf.printf "  t=%.2fs  %s\n" t_s what)
      outcome.Shard_chaos.events;
    Printf.printf "completed %d, nacked %d, lost %d, retried %d, rerouted %d\n"
      outcome.Shard_chaos.report.Loadgen.completed
      outcome.Shard_chaos.report.Loadgen.nacked
      outcome.Shard_chaos.report.Loadgen.lost outcome.Shard_chaos.retried
      outcome.Shard_chaos.rerouted;
    Printf.printf "p50 %.1f us, p99 %.1f us, goodput %.1f kRPS\n"
      outcome.Shard_chaos.report.Loadgen.p50_us
      outcome.Shard_chaos.report.Loadgen.p99_us
      (outcome.Shard_chaos.report.Loadgen.goodput_rps /. 1e3);
    Printf.printf "migrations %d, final map version %d\n"
      outcome.Shard_chaos.migrations outcome.Shard_chaos.map_version;
    Printf.printf
      "exactly-once %b; committed-preserved %b; caught-up %b; consistent %b; \
       pending recoveries %d\n"
      outcome.Shard_chaos.exactly_once_ok
      outcome.Shard_chaos.committed_preserved outcome.Shard_chaos.caught_up
      outcome.Shard_chaos.consistent outcome.Shard_chaos.pending_recoveries;
    if outcome.Shard_chaos.violations <> [] then begin
      List.iter (Printf.printf "VIOLATION: %s\n") outcome.Shard_chaos.violations;
      exit 1
    end
  in
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~doc:"Nodes per Raft group.")
  in
  let shards =
    Arg.(
      value & opt int 4
      & info [ "shards" ] ~doc:"Total Raft groups (dormant split targets included).")
  in
  let active =
    Arg.(
      value & opt int 2
      & info [ "active" ] ~doc:"Groups initially owning the key space.")
  in
  let rate =
    Arg.(value & opt float 80_000. & info [ "rate" ] ~doc:"Offered load in RPS.")
  in
  let dur =
    Arg.(value & opt int 2000 & info [ "duration-ms" ] ~doc:"Run length.")
  in
  let events =
    Arg.(
      value & opt int 0
      & info [ "events" ]
          ~doc:"Per-shard fault budget (0 = migrations only, no faults).")
  in
  let term =
    Term.(
      const action $ nodes $ shards $ active $ rate $ seed_arg $ dur $ events)
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Multi-Raft sharding smoke: split the active groups onto dormant \
          ones and rebalance with a live move_shard, under sustained YCSB-B \
          load, then run the shard-aware history checker; exits non-zero on \
          any violation.")
    term

(* --- control ------------------------------------------------------------------- *)

let control_cmd =
  let module Cscn = Hovercraft_control.Scenario in
  let module Cctl = Hovercraft_control.Controller in
  let module Cexp = Hovercraft_control.Experiment in
  let action scenario seed off require_slo out =
    match Cscn.find scenario with
    | None ->
        Printf.eprintf "hovercraft: unknown scenario %S; known: %s\n" scenario
          (String.concat ", " Cscn.names);
        exit 2
    | Some spec ->
        let controller =
          if off then None
          else Some (Cctl.config ~slo_p99:spec.Cscn.slo_p99 ())
        in
        let outcome = or_die (fun () -> Cscn.run ?controller spec ~seed ()) in
        Printf.printf "control: scenario %s, seed %d, controller %s\n"
          spec.Cscn.name seed (if off then "off" else "on");
        List.iter
          (fun (at, s) -> Printf.printf "  fault  %6.2fs  %s\n" at s)
          outcome.Cscn.events;
        List.iter
          (fun (w : Cscn.window_verdict) ->
            Printf.printf "  window %6.2fs  %6d done  p99 %8.1f us  %s\n"
              w.Cscn.w_end_s w.Cscn.w_count w.Cscn.w_p99_us
              (if w.Cscn.w_good then "ok" else "BAD"))
          outcome.Cscn.windows;
        Cexp.pp_outcome Format.std_formatter outcome;
        List.iter
          (fun (at, s) -> Printf.printf "  note   %6.2fs  %s\n" at s)
          outcome.Cscn.notes;
        (match out with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            output_string oc
              (Hovercraft_obs.Json.to_string_pretty (Cexp.outcome_json outcome));
            output_char oc '\n';
            close_out oc;
            Printf.printf "  outcome written to %s\n" file);
        if not (Cscn.checkers_green outcome) then begin
          Printf.eprintf "hovercraft control: a safety checker tripped\n";
          exit 1
        end;
        if not (Cscn.slo_held ~fraction:require_slo outcome) then begin
          Printf.eprintf
            "hovercraft control: SLO held in %d/%d windows, below the \
             required %.0f%%\n"
            outcome.Cscn.good_windows outcome.Cscn.n_windows
            (100. *. require_slo);
          exit 1
        end
  in
  let scenario =
    Arg.(
      value
      & pos 0 string "hotspot-drift"
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Scenario name: hotspot-drift, flash-crowd, diurnal, slow-node \
             or correlated-failure.")
  in
  let off =
    Arg.(
      value & flag
      & info [ "off" ]
          ~doc:
            "Run the no-controller baseline (typically exits 1: the \
             scenarios are calibrated so the baseline misses the SLO).")
  in
  let require_slo =
    Arg.(
      value & opt float 0.75
      & info [ "require-slo" ] ~docv:"FRAC"
          ~doc:
            "Required fraction of measurement windows inside the p99 SLO; \
             the default leaves room for the controller's reaction cost \
             (breach hysteresis plus one migration fence).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the per-window JSON outcome to $(docv).")
  in
  let term =
    Term.(const action $ scenario $ seed_arg $ off $ require_slo $ out)
  in
  Cmd.v
    (Cmd.info "control"
       ~doc:
         "Run one scenario from the autoscaling suite with the SLO-driven \
          controller attached (or --off for the baseline); exits non-zero \
          if the SLO fraction is missed or any safety checker trips.")
    term

(* --- mc ------------------------------------------------------------------------ *)

let mc_cmd =
  let action n aggregated max_term max_cmds max_messages no_dups no_drops
      max_states =
    let cfg =
      {
        Hovercraft_mc.Model.n;
        aggregated;
        max_term;
        max_cmds;
        max_messages;
        allow_drops = not no_drops;
        allow_duplication = not no_dups;
      }
    in
    Format.printf "model-checking %s n=%d (term<=%d, cmds<=%d, msgs<=%d, drops=%b, dups=%b)@."
      (if aggregated then "hovercraft++" else "raft")
      n max_term max_cmds max_messages (not no_drops) (not no_dups);
    Format.printf "%a@." Hovercraft_mc.Explore.pp_outcome
      (Hovercraft_mc.Explore.run ~max_states cfg)
  in
  let agg = Arg.(value & flag & info [ "aggregated" ] ~doc:"Model HovercRaft++.") in
  let max_term =
    Arg.(value & opt int 2 & info [ "max-term" ] ~doc:"Election bound.")
  in
  let max_cmds =
    Arg.(value & opt int 1 & info [ "max-cmds" ] ~doc:"Client command bound.")
  in
  let max_msgs =
    Arg.(value & opt int 4 & info [ "max-messages" ] ~doc:"In-flight message cap.")
  in
  let no_dups = Arg.(value & flag & info [ "no-dups" ] ~doc:"Disable duplication.") in
  let no_drops = Arg.(value & flag & info [ "no-drops" ] ~doc:"Disable drops.") in
  let budget =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"State budget.")
  in
  let term =
    Term.(
      const action $ nodes_arg $ agg $ max_term $ max_cmds $ max_msgs $ no_dups
      $ no_drops $ budget)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Model-check bounded Raft / HovercRaft++ instances (safety).")
    term

(* --- repro -------------------------------------------------------------------- *)

let repro_cmd =
  let action names full =
    let quality = if full then Experiment.Full else Experiment.Fast in
    let names = if names = [] then [ "all" ] else names in
    List.iter
      (fun name ->
        match Figures.by_name name with
        | Some run -> run ~quality ()
        | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " Figures.names))
      names
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
           ~doc:"table1, fig7..fig13, or all.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Longer measurement windows.")
  in
  let term = Term.(const action $ names $ full) in
  Cmd.v
    (Cmd.info "repro" ~doc:"Regenerate the paper's tables and figures.")
    term

let () =
  let doc = "HovercRaft: scalable, fault-tolerant microsecond-scale RPC (simulated reproduction)" in
  let info = Cmd.info "hovercraft" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            sweep_cmd;
            slo_cmd;
            failover_cmd;
            chaos_cmd;
            reconfig_cmd;
            snapshot_cmd;
            shard_cmd;
            control_cmd;
            repro_cmd;
            mc_cmd;
          ]))
