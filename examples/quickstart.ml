(* Quickstart: turn a key-value service into a fault-tolerant one.

   Builds a 3-node HovercRaft++ cluster on the simulated fabric, drives a
   small read/write workload through the R2P2 multicast path, and shows
   that (a) clients get answers at microsecond latencies, (b) every replica
   converged to the same state, and (c) nobody had to change the
   application: the same Kvstore runs unreplicated or replicated.

   Run with: dune exec examples/quickstart.exe *)

open Hovercraft_core
open Hovercraft_cluster
module Tb = Hovercraft_sim.Timebase
module Op = Hovercraft_apps.Op
module K = Hovercraft_apps.Kvstore

let () =
  (* 1. A cluster: 3 nodes, HovercRaft++ (aggregator included), reply load
     balancing on. Node 0 is bootstrapped as the initial leader. *)
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config params) in
  Format.printf "cluster up: %d nodes, mode %a, leader node%d@."
    (Array.length deploy.Deploy.nodes)
    Hnode.pp_mode params.Hnode.mode
    (match Deploy.leader deploy with Some l -> Hnode.id l | None -> -1);

  (* 2. A workload: clients alternate writes and reads over a few keys.
     Read-only requests are tagged REPLICATED_REQ_R and execute on a single
     replica; writes execute everywhere. *)
  let counter = ref 0 in
  let workload _rng =
    incr counter;
    let key = Printf.sprintf "user:%d" (!counter mod 10) in
    if !counter mod 4 = 0 then Op.Kv (K.Get key)
    else Op.Kv (K.Put (key, Printf.sprintf "v%d" !counter))
  in

  (* 3. Open-loop clients at 50 kRPS for 20 simulated milliseconds. *)
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:50_000. ~workload ~seed:1 ()
  in
  let report = Loadgen.run gen ~warmup:(Tb.ms 2) ~duration:(Tb.ms 20) () in
  Deploy.quiesce deploy ();

  Format.printf "sent %d, completed %d, lost %d@." report.Loadgen.sent
    report.Loadgen.completed report.Loadgen.lost;
  Format.printf "latency: p50 %.1f us, p99 %.1f us@." report.Loadgen.p50_us
    report.Loadgen.p99_us;

  (* 4. Every replica holds the same state. *)
  Array.iter
    (fun node ->
      Format.printf "  node%d: applied %d entries, fingerprint %08x@."
        (Hnode.id node) (Hnode.applied_index node)
        (Hnode.app_fingerprint node land 0xFFFFFFFF))
    deploy.Deploy.nodes;
  Format.printf "replicas consistent: %b@." (Deploy.consistent deploy)
