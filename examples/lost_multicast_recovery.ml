(* What happens when the multicast loses request bodies.

   HovercRaft does not assume reliable multicast: a follower that sees
   ordering metadata for a body it never received fetches it with a
   recovery_request (§5). This example injects 5% receive loss on every
   node and shows the recovery machinery keeping all replicas consistent,
   with a visible (but bounded) latency cost.

   Run with: dune exec examples/lost_multicast_recovery.exe *)

open Hovercraft_core
open Hovercraft_cluster
module Tb = Hovercraft_sim.Timebase
module Service = Hovercraft_apps.Service

let run label loss =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.loss_prob = loss } }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:20_000.
      ~workload:(Service.sample (Service.spec ()))
      ~seed:5 ()
  in
  let report = Loadgen.run gen ~warmup:(Tb.ms 5) ~duration:(Tb.ms 80) () in
  Deploy.quiesce deploy ~extra:(Tb.ms 50) ();
  let recoveries =
    Array.fold_left (fun acc n -> acc + Hnode.recoveries_sent n) 0 deploy.Deploy.nodes
  in
  Format.printf
    "%s: completed %d/%d, p99 %.1f us, recovery requests %d, consistent %b@."
    label report.Loadgen.completed report.Loadgen.sent report.Loadgen.p99_us
    recoveries
    (Deploy.consistent deploy)

let () =
  run "loss 0%" 0.0;
  run "loss 1%" 0.01;
  run "loss 5%" 0.05
