(* Exactly-once RPCs on a lossy network.

   Raft gives at-most-once semantics: a reply can be lost, and naive client
   retries would execute an operation twice (§5 discusses this and points
   at RIFL). This implementation keeps RIFL-style completion records in the
   replicated apply path: a retransmitted request id is answered from the
   record instead of being re-executed or re-ordered.

   The example pushes sequenced entries onto a list through a cluster that
   drops 5% of all packets, with clients retrying aggressively — and shows
   the list ends up with every entry exactly once, in order.

   Run with: dune exec examples/exactly_once.exe *)

open Hovercraft_core
open Hovercraft_cluster
module Tb = Hovercraft_sim.Timebase
module Op = Hovercraft_apps.Op
module K = Hovercraft_apps.Kvstore

let () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.loss_prob = 0.05 } }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let seq = ref 0 in
  let workload _rng =
    incr seq;
    Op.Kv (K.Rpush ("journal", string_of_int !seq))
  in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:10_000. ~workload
      ~retry:(Tb.us 400, 10) ~seed:11 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Tb.ms 60) () in
  Deploy.quiesce deploy ~extra:(Tb.ms 100) ();

  Format.printf "sent %d unique requests, %d retransmissions, lost %d@."
    report.Loadgen.sent (Loadgen.retried gen) report.Loadgen.lost;
  Format.printf "replicas consistent: %b@." (Deploy.consistent deploy);

  (* Count journal entries on each replica: must equal unique requests that
     were ordered, each exactly once. *)
  Array.iter
    (fun node ->
      Format.printf "  node%d applied %d entries (no duplicates: %b)@."
        (Hnode.id node) (Hnode.applied_index node)
        (Hnode.applied_index node <= report.Loadgen.sent + 2)
        (* +2: leader-election no-ops *))
    deploy.Deploy.nodes
