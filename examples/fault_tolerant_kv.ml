(* Fault tolerance in action: kill the leader mid-run.

   A 3-node HovercRaft++ cluster serves a conversation workload (the
   YCSB-E-style Insert/Scan operations). Halfway through, the leader is
   crashed; the run continues through the election and the example reports
   throughput before/after, the bounded number of lost replies, and that
   the two survivors agree on the final store.

   Run with: dune exec examples/fault_tolerant_kv.exe *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Tb = Timebase
module Op = Hovercraft_apps.Op
module K = Hovercraft_apps.Kvstore

let () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.bound = 16 } }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let engine = deploy.Deploy.engine in

  let counter = ref 0 in
  let workload rng =
    incr counter;
    let thread = Printf.sprintf "thread%d" (Rng.int rng 20) in
    if !counter mod 5 = 0 then
      Op.Kv (K.Insert { thread; record = [ ("msg", Printf.sprintf "post %d" !counter) ] })
    else Op.Kv (K.Scan { thread; limit = 5 })
  in

  (* Track completions per 10ms bucket to see the failover dip. *)
  let series = Series.create ~bucket:(Tb.ms 10) () in
  let t0 = Engine.now engine in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:40_000. ~workload
      ~on_reply:(fun ~rid:_ ~op:_ ~sent_at:_ ~latency ->
        Series.add series ~at:(Engine.now engine - t0) latency)
      ~seed:7 ()
  in

  (* The assassination, 40ms in. *)
  Engine.after engine (Tb.ms 40) (fun () ->
      match Deploy.kill_leader deploy with
      | Some id -> Format.printf "!! killed leader node%d at t=40ms@." id
      | None -> ());

  let report = Loadgen.run gen ~warmup:0 ~duration:(Tb.ms 100) () in
  Deploy.quiesce deploy ~extra:(Tb.ms 50) ();

  Format.printf "@.throughput per 10ms bucket:@.";
  List.iter
    (fun (b : Series.bucket) ->
      Format.printf "  t=%3dms  %5.1f kRPS  p99=%s@."
        (b.Series.start / 1_000_000)
        (float_of_int b.Series.count /. 0.01 /. 1000.)
        (match b.Series.p99 with
        | Some v -> Printf.sprintf "%.0fus" (Tb.to_us_f v)
        | None -> "-"))
    (Series.buckets series);

  (match Deploy.leader deploy with
  | Some l -> Format.printf "@.new leader: node%d (term %d)@." (Hnode.id l) (Hnode.term l)
  | None -> Format.printf "@.no leader!@.");
  Format.printf
    "sent %d, completed %d, lost %d (bounded by B=%d per failed node)@."
    report.Loadgen.sent report.Loadgen.completed report.Loadgen.lost
    params.Hnode.features.Hnode.bound;
  Format.printf "survivors consistent: %b@." (Deploy.consistent deploy)
