(* Scaling reads with the replication you already paid for.

   The paper's core promise: adding nodes for fault tolerance can also add
   throughput. This example runs a read-heavy workload (90% read-only,
   10 µs mean service time) three ways — unreplicated, and on a 3-node
   HovercRaft++ cluster with RANDOM and with JBSQ replier selection — and
   prints where each saturates plus how evenly replies spread.

   Run with: dune exec examples/load_balanced_reads.exe *)

open Hovercraft_core
open Hovercraft_cluster
module Tb = Hovercraft_sim.Timebase
module Dist = Hovercraft_sim.Dist
module Service = Hovercraft_apps.Service
module Jbsq = Hovercraft_r2p2.Jbsq

let spec =
  Service.spec
    ~service:(Dist.Bimodal { mean = Tb.us 10; long_fraction = 0.1; ratio = 10. })
    ~read_fraction:0.9 ()

let measure label params =
  let s = Experiment.setup params (Service.sample spec) in
  let knee = Experiment.max_under_slo ~slo:(Tb.us 500) s in
  Format.printf "  %-22s saturates at %6.1f kRPS under a 500us p99 SLO@." label
    (knee /. 1000.);
  knee

let with_features p f = { p with Hnode.features = f p.Hnode.features }

let reply_spread params rate =
  let deploy = Deploy.create (Deploy.config params) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:rate
      ~workload:(Service.sample spec) ~seed:3 ()
  in
  ignore (Loadgen.run gen ~warmup:(Tb.ms 5) ~duration:(Tb.ms 60) ());
  Array.map Hnode.replies_sent deploy.Deploy.nodes

let () =
  Format.printf "read-heavy workload: %a@.@." Service.pp_spec spec;
  let unrep = measure "unreplicated" (Hnode.params ~mode:Hnode.Unreplicated ~n:1 ()) in
  let rand =
    measure "hovercraft++ RANDOM"
      (with_features (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()) (fun f ->
           { f with Hnode.lb_policy = Jbsq.Random_choice; bound = 32 }))
  in
  let jbsq =
    measure "hovercraft++ JBSQ"
      (with_features (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()) (fun f ->
           { f with Hnode.bound = 32 }))
  in
  Format.printf "@.speedup over unreplicated: RANDOM %.2fx, JBSQ %.2fx@."
    (rand /. unrep) (jbsq /. unrep);

  let spread =
    reply_spread
      (with_features (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()) (fun f ->
           { f with Hnode.bound = 32 }))
      (0.8 *. jbsq)
  in
  Format.printf "@.replies per node at 80%% of the JBSQ knee:@.";
  Array.iteri (fun i r -> Format.printf "  node%d: %d@." i r) spread
