type t = {
  mutable samples : int array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { samples = Array.make 1024 0; size = 0; sorted = true }

let add t v =
  if t.size = Array.length t.samples then begin
    let bigger = Array.make (2 * t.size) 0 in
    Array.blit t.samples 0 bigger 0 t.size;
    t.samples <- bigger
  end;
  t.samples.(t.size) <- v;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let mean t =
  if t.size = 0 then 0.
  else begin
    let sum = ref 0. in
    for i = 0 to t.size - 1 do
      sum := !sum +. float_of_int t.samples.(i)
    done;
    !sum /. float_of_int t.size
  end

let max_sample t =
  let m = ref 0 in
  for i = 0 to t.size - 1 do
    if t.samples.(i) > !m then m := t.samples.(i)
  done;
  !m

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then invalid_arg "Stats.percentile: empty recorder";
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: rank out of range";
  ensure_sorted t;
  (* Nearest-rank: the smallest sample with cumulative frequency >= p.
     A single ceil, then clamp into the live window — rounding the ceiled
     value again can bump the rank past [size] when the product lands just
     above an integer (p=1.0 on small windows). *)
  let rank = int_of_float (ceil (p *. float_of_int t.size)) in
  let idx = min (t.size - 1) (max 0 (rank - 1)) in
  t.samples.(idx)

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  t

let clear t =
  t.size <- 0;
  t.sorted <- true

module Summary = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu))

  let count t = t.n
  let mean t = t.mu
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
end
