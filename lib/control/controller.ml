open Hovercraft_sim
open Hovercraft_core
module Metrics = Hovercraft_obs.Metrics
module Deploy = Hovercraft_cluster.Deploy
module Shard_map = Hovercraft_shard.Shard_map
module Shard_deploy = Hovercraft_shard.Shard_deploy
module Shard_loadgen = Hovercraft_shard.Shard_loadgen

type config = {
  slo_p99 : Timebase.t;
  breach_ticks : int;
  cooldown : Timebase.t;
  min_samples : int;
  hot_share : float;
  backlog_limit : int;
  transfer_ticks : int;
  max_actions : int;
}

let config ?(slo_p99 = Timebase.us 500) ?(breach_ticks = 2)
    ?(cooldown = Timebase.ms 300) ?(min_samples = 32) ?(hot_share = 1.25)
    ?(backlog_limit = 4096) ?(transfer_ticks = 5) ?(max_actions = 32) () =
  if breach_ticks < 1 then invalid_arg "Controller.config: breach_ticks < 1";
  if cooldown < 0 then invalid_arg "Controller.config: negative cooldown";
  if min_samples < 1 then invalid_arg "Controller.config: min_samples < 1";
  if hot_share <= 1.0 then invalid_arg "Controller.config: hot_share <= 1";
  if transfer_ticks < 1 then invalid_arg "Controller.config: transfer_ticks < 1";
  if max_actions < 0 then invalid_arg "Controller.config: negative max_actions";
  {
    slo_p99;
    breach_ticks;
    cooldown;
    min_samples;
    hot_share;
    backlog_limit;
    transfer_ticks;
    max_actions;
  }

(* One action in flight per group. [Migration] is released by the
   migration's [on_done] (it marks BOTH endpoints busy — the fence is
   global anyway); [Repair] when the dead node is fully decommissioned;
   [Transfer] when the target leads or the patience budget runs out. *)
type pending =
  | Idle
  | Migration
  | Repair of { dead : int }
  | Transfer of { target : int; mutable ticks_left : int }

type t = {
  cfg : config;
  sd : Shard_deploy.t;
  gen : Shard_loadgen.t;
  engine : Engine.t;
  shards : int;
  mutable prev_heat : int array;
  breach : int array; (* consecutive SLO-breach ticks per group *)
  dead_seen : (int * int, int) Hashtbl.t; (* (group, node) -> ticks dead *)
  pending : pending array;
  cooldown_until : Timebase.t array;
  demoted : int array; (* node leadership was last moved off, -1 = none *)
  mutable actions : (Timebase.t * string) list;
  mutable n_actions : int;
  mutable ticks : int;
}

let create ?(cfg = config ()) sd gen =
  {
    cfg;
    sd;
    gen;
    engine = Shard_deploy.engine sd;
    shards = Shard_deploy.shards sd;
    prev_heat = Shard_deploy.slot_heat sd;
    breach = Array.make (Shard_deploy.shards sd) 0;
    dead_seen = Hashtbl.create 16;
    pending = Array.make (Shard_deploy.shards sd) Idle;
    cooldown_until = Array.make (Shard_deploy.shards sd) 0;
    demoted = Array.make (Shard_deploy.shards sd) (-1);
    actions = [];
    n_actions = 0;
    ticks = 0;
  }

let act t g fmt =
  Format.kasprintf
    (fun s ->
      t.actions <- (Engine.now t.engine, Printf.sprintf "group%d: %s" g s) :: t.actions;
      t.n_actions <- t.n_actions + 1)
    fmt

let release t g =
  t.pending.(g) <- Idle;
  t.cooldown_until.(g) <- Engine.now t.engine + t.cfg.cooldown

let can_act t g =
  t.n_actions < t.cfg.max_actions
  && t.pending.(g) = Idle
  && Engine.now t.engine >= t.cooldown_until.(g)

(* --- signal extraction ---------------------------------------------- *)

(* Per-interval heat by slot (diff of the cumulative tallies) and its
   roll-up per owning group. *)
let heat_delta t =
  let heat = Shard_deploy.slot_heat t.sd in
  let d = Array.mapi (fun i h -> h - t.prev_heat.(i)) heat in
  t.prev_heat <- heat;
  d

let leader_backlog d =
  match Deploy.leader d with
  | Some l -> Hnode.commit_index l - Hnode.applied_index l
  | None -> 0

(* The most caught-up live follower, skipping the node leadership was
   just moved off (do not bounce straight back to a suspect). *)
let transfer_target t g d =
  let leader_id = match Deploy.leader d with Some l -> Hnode.id l | None -> -1 in
  List.fold_left
    (fun best node ->
      let i = Hnode.id node in
      if i = leader_id || i = t.demoted.(g) then best
      else
        match best with
        | Some b when Hnode.applied_index b >= Hnode.applied_index node -> best
        | _ -> Some node)
    None (Deploy.live_nodes d)

(* --- actions --------------------------------------------------------- *)

let start_migration t ~source ~target ~slots ~split =
  let finish () =
    release t source;
    release t target
  in
  try
    if split then
      Shard_deploy.split_shard t.sd ~on_done:finish ~source ~target ()
    else Shard_deploy.move_shard t.sd ~on_done:finish ~slots ~target ();
    t.pending.(source) <- Migration;
    t.pending.(target) <- Migration;
    if split then act t source "split -> group%d" target
    else
      act t source "move %d hot slot(s) -> group%d" (List.length slots) target
  with Invalid_argument _ -> ()

(* Retire the corpse FIRST: a dead voter contributes to no quorum, so
   removing it costs no headroom — while add-first would put the empty
   newcomer in every quorum (4 voters, 3 live, one far behind) and stall
   commits behind its catch-up for the whole replay. *)
let start_repair t g d ~dead =
  Deploy.remove_node d dead;
  let fresh = Deploy.add_node d in
  t.pending.(g) <- Repair { dead };
  act t g "repair: retire dead node%d, add node%d" dead fresh

let start_transfer t g d =
  match (Deploy.leader d, transfer_target t g d) with
  | Some l, Some target when Hnode.id target <> Hnode.id l ->
      Deploy.transfer_leadership d ~target:(Hnode.id target);
      t.demoted.(g) <- Hnode.id l;
      t.pending.(g) <-
        Transfer { target = Hnode.id target; ticks_left = t.cfg.transfer_ticks };
      act t g "transfer leadership node%d -> node%d" (Hnode.id l)
        (Hnode.id target)
  | _ -> ()

(* --- the tick -------------------------------------------------------- *)

let tick t =
  t.ticks <- t.ticks + 1;
  let groups = Shard_deploy.groups t.sd in
  let map = Shard_deploy.map t.sd in
  let dheat = heat_delta t in
  let owner =
    Array.init (Array.length dheat) (fun s -> Shard_map.owner_of_slot map s)
  in
  let group_heat = Array.make t.shards 0 in
  let owned = Array.make t.shards 0 in
  Array.iteri
    (fun s g ->
      group_heat.(g) <- group_heat.(g) + dheat.(s);
      owned.(g) <- owned.(g) + 1)
    owner;
  let total_heat = Array.fold_left ( + ) 0 group_heat in
  (* 1. Progress in-flight actions (migrations release via on_done). *)
  Array.iteri
    (fun g p ->
      match p with
      | Idle | Migration -> ()
      | Repair { dead } ->
          if Deploy.is_removed groups.(g) dead then begin
            (* The replacement node was born filterless; close the gap
               before it can ever lead. *)
            Shard_deploy.refresh_filters t.sd;
            release t g
          end
      | Transfer tr ->
          tr.ticks_left <- tr.ticks_left - 1;
          let landed =
            match Deploy.leader groups.(g) with
            | Some l -> Hnode.id l = tr.target
            | None -> false
          in
          if landed || tr.ticks_left <= 0 then release t g)
    t.pending;
  (* 2. Fault repair: a node dead long enough (and not decommissioned)
     gets replaced — add first, so quorum headroom never shrinks. *)
  Array.iteri
    (fun g d ->
      Array.iteri
        (fun i node ->
          let key = (g, i) in
          if (not (Hnode.alive node)) && not (Deploy.is_removed d i) then begin
            let seen =
              (match Hashtbl.find_opt t.dead_seen key with
              | Some s -> s
              | None -> 0)
              + 1
            in
            Hashtbl.replace t.dead_seen key seen;
            if seen >= t.cfg.breach_ticks && can_act t g then
              start_repair t g d ~dead:i
          end
          else Hashtbl.remove t.dead_seen key)
        d.Deploy.nodes)
    groups;
  (* 3. SLO policy per slot-owning group: hysteresis on consecutive
     breached windows, then pick the remedy the signals point at. *)
  for g = 0 to t.shards - 1 do
    if owned.(g) > 0 then begin
      let w = Shard_loadgen.group_latency_window t.gen g in
      let samples = Metrics.last_count w in
      let p99 = Metrics.last_percentile w 0.99 in
      let breached = samples >= t.cfg.min_samples && p99 > t.cfg.slo_p99 in
      if breached then t.breach.(g) <- t.breach.(g) + 1
      else t.breach.(g) <- 0;
      if t.breach.(g) >= t.cfg.breach_ticks && can_act t g then begin
        (* Fair share is per GROUP, dormant ones included: capacity the
           deployment could bring to bear, not capacity currently in
           use — with a single active group, fair-per-active would make
           "hot" unsatisfiable (a group never exceeds itself). *)
        let fair = float_of_int total_heat /. float_of_int t.shards in
        let hot =
          total_heat > 0
          && float_of_int group_heat.(g) > t.cfg.hot_share *. fair
        in
        let backlogged = leader_backlog groups.(g) > t.cfg.backlog_limit in
        let saturated = hot || backlogged in
        if saturated && owned.(g) > 1 && not (Shard_deploy.migrating t.sd)
        then begin
          (* Shed load: split onto a dormant group when one exists,
             otherwise move the hottest slots to the coolest group. *)
          let dormant = ref (-1) in
          Array.iteri
            (fun g' o -> if o = 0 && !dormant < 0 && can_act t g' then dormant := g')
            owned;
          if !dormant >= 0 then
            start_migration t ~source:g ~target:!dormant ~slots:[] ~split:true
          else begin
            let coolest = ref (-1) in
            Array.iteri
              (fun g' o ->
                if g' <> g && o > 0 && can_act t g'
                   && (!coolest < 0 || group_heat.(g') < group_heat.(!coolest))
                then coolest := g')
              owned;
            if !coolest >= 0 && group_heat.(!coolest) < group_heat.(g) then begin
              let mine =
                Array.to_list
                  (Array.init (Array.length owner) (fun s -> s))
                |> List.filter (fun s -> owner.(s) = g)
              in
              let hottest =
                List.sort
                  (fun a b -> compare (-dheat.(a), a) (-dheat.(b), b))
                  mine
              in
              let k = max 1 (List.length mine / 4) in
              let slots = List.filteri (fun i _ -> i < k) hottest in
              start_migration t ~source:g ~target:!coolest ~slots ~split:false
            end
          end
        end
        else if not saturated then
          (* Breached but the group is not hot: suspect a slow node on
             the ordering path and move leadership to the most caught-up
             follower — try-and-observe, bounded by the cooldown. *)
          start_transfer t g groups.(g);
        if t.pending.(g) <> Idle then t.breach.(g) <- 0
      end
    end
  done

let actions t = List.rev t.actions
let ticks t = t.ticks
let action_count t = t.n_actions
let busy t = Array.exists (fun p -> p <> Idle) t.pending
