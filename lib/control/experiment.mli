(** The autoscaling figure: one scenario, controller off vs on, same
    seed. The paper-shaped claim is that the control plane converts an
    SLO-violating run into an SLO-holding one while every safety checker
    stays green in both runs. *)

type autoscale_result = {
  spec : Scenario.spec;
  seed : int;
  slo_fraction : float;  (** Required fraction of good windows. *)
  off : Scenario.outcome;  (** Baseline: no control loop. *)
  on_ : Scenario.outcome;  (** Same seed, controller attached. *)
}

val autoscale :
  ?spec:Scenario.spec ->
  ?slo_fraction:float ->
  ?controller:Controller.config ->
  seed:int ->
  unit ->
  autoscale_result
(** Defaults: the {!Scenario.hotspot_drift} scenario, 75% of windows
    required (breach hysteresis and a split's migration fence
    legitimately cost about four windows on a short run — the point is
    the baseline holds almost none), a controller configured with the
    scenario's own SLO. *)

val pass : autoscale_result -> bool
(** Both runs' checkers green, the baseline misses the SLO fraction, the
    controller run makes it. *)

val to_json : autoscale_result -> Hovercraft_obs.Json.t
(** The figure artifact: per-window p99/count/verdict series for both
    runs, the action and fault timelines, and the safety summary. *)

val outcome_json : Scenario.outcome -> Hovercraft_obs.Json.t
(** One run's share of the artifact (the CLI [control] verb emits a
    single outcome rather than an off/on pair). *)

val pp_outcome : Format.formatter -> Scenario.outcome -> unit
(** One outcome's summary line plus its action log and violations. *)

val print : Format.formatter -> autoscale_result -> unit
(** Human-readable table plus the controller's action log. *)
