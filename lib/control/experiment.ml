module Json = Hovercraft_obs.Json

type autoscale_result = {
  spec : Scenario.spec;
  seed : int;
  slo_fraction : float;
  off : Scenario.outcome;
  on_ : Scenario.outcome;
}

(* Default required fraction of in-SLO windows for the controller-on run.
   The controller pays an inherent reaction cost on a short (18-window) run:
   two windows of breach hysteresis before the first action fires (the
   controller refuses to migrate on a single noisy sample) and roughly two
   windows while a split's migration fence drains and the tail settles.
   0.75 requires every remaining window to hold the SLO; the off-run
   baseline sits at 0% on the same seed, so the margin is not thin. *)
let autoscale ?(spec = Scenario.hotspot_drift ()) ?(slo_fraction = 0.75)
    ?controller ~seed () =
  let cfg =
    match controller with
    | Some c -> c
    | None -> Controller.config ~slo_p99:spec.Scenario.slo_p99 ()
  in
  let off = Scenario.run spec ~seed () in
  let on_ = Scenario.run ~controller:cfg spec ~seed () in
  { spec; seed; slo_fraction; off; on_ }

(* The figure's claim: the controller turns an SLO-violating run into an
   SLO-holding one, without giving up a single safety property. *)
let pass r =
  Scenario.checkers_green r.off
  && Scenario.checkers_green r.on_
  && (not (Scenario.slo_held ~fraction:r.slo_fraction r.off))
  && Scenario.slo_held ~fraction:r.slo_fraction r.on_

let outcome_json (o : Scenario.outcome) =
  let open Scenario in
  Json.Obj
    [
      ("controller", Json.Bool o.controller_on);
      ( "windows",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("end_s", Json.Float w.w_end_s);
                   ("count", Json.Int w.w_count);
                   ("expected", Json.Float w.w_expected);
                   ("p99_us", Json.Float w.w_p99_us);
                   ("good", Json.Bool w.w_good);
                 ])
             o.windows) );
      ("good_windows", Json.Int o.good_windows);
      ("n_windows", Json.Int o.n_windows);
      ("slo_fraction", Json.Float o.slo_fraction);
      ("worst_p99_us", Json.Float o.worst_p99_us);
      ("goodput_rps", Json.Float o.report.Hovercraft_cluster.Loadgen.goodput_rps);
      ("lost", Json.Int o.report.Hovercraft_cluster.Loadgen.lost);
      ( "actions",
        Json.List
          (List.map
             (fun (at, s) ->
               Json.Obj [ ("at_s", Json.Float at); ("what", Json.String s) ])
             o.actions) );
      ( "events",
        Json.List
          (List.map
             (fun (at, s) ->
               Json.Obj [ ("at_s", Json.Float at); ("what", Json.String s) ])
             o.events) );
      ("migrations", Json.Int o.migrations);
      ("map_version", Json.Int o.map_version);
      ("retried", Json.Int o.retried);
      ("rerouted", Json.Int o.rerouted);
      ("violations", Json.List (List.map (fun s -> Json.String s) o.violations));
      ("exactly_once_ok", Json.Bool o.exactly_once_ok);
      ("committed_preserved", Json.Bool o.committed_preserved);
      ("caught_up", Json.Bool o.caught_up);
      ("consistent", Json.Bool o.consistent);
      ("checkers_green", Json.Bool (Scenario.checkers_green o));
    ]

let to_json r =
  Json.Obj
    [
      ("experiment", Json.String "autoscale");
      ("scenario", Json.String r.spec.Scenario.name);
      ("seed", Json.Int r.seed);
      ("slo_p99_us", Json.Float (Hovercraft_sim.Timebase.to_us_f r.spec.Scenario.slo_p99));
      ("required_fraction", Json.Float r.slo_fraction);
      ("controller_off", outcome_json r.off);
      ("controller_on", outcome_json r.on_);
      ("pass", Json.Bool (pass r));
    ]

let pp_outcome ppf (o : Scenario.outcome) =
  let open Scenario in
  Format.fprintf ppf
    "  %-4s | windows %2d/%2d in SLO (%.0f%%) | worst p99 %8.1f us | goodput %9.0f rps | lost %d@."
    (if o.controller_on then "on" else "off")
    o.good_windows o.n_windows
    (100. *. o.slo_fraction)
    o.worst_p99_us o.report.Hovercraft_cluster.Loadgen.goodput_rps
    o.report.Hovercraft_cluster.Loadgen.lost;
  List.iter
    (fun (at, s) -> Format.fprintf ppf "         %6.2fs  %s@." at s)
    o.actions;
  if o.violations <> [] then
    List.iter
      (fun v -> Format.fprintf ppf "         VIOLATION: %s@." v)
      o.violations

let print ppf r =
  Format.fprintf ppf "autoscale: scenario %s, seed %d, SLO p99 <= %.0f us in >= %.0f%% of windows@."
    r.spec.Scenario.name r.seed
    (Hovercraft_sim.Timebase.to_us_f r.spec.Scenario.slo_p99)
    (100. *. r.slo_fraction);
  List.iter
    (fun (at, s) -> Format.fprintf ppf "  fault  %6.2fs  %s@." at s)
    r.off.Scenario.events;
  pp_outcome ppf r.off;
  pp_outcome ppf r.on_;
  Format.fprintf ppf "  => %s@." (if pass r then "PASS" else "FAIL")
