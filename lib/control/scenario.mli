(** A seeded, checkable scenario library: production-shaped traffic at
    millions-of-users scale, run against a sharded deployment with the
    controller on or off, judged by an SLO verdict per measurement
    window plus the full history-checker battery.

    Every scenario is a deterministic timeline: a traffic shape
    (piecewise-linear {!Hovercraft_cluster.Traffic} profile), a keyed
    workload over a million-plus key space, and a fault schedule — all
    driven from one seed, so a replay with the same seed reproduces the
    run event-for-event (including every controller decision).

    The runner owns the measurement cadence: it rotates the load
    generator's latency windows at every [tick] boundary, judges each
    completed window against the p99 objective (a window with almost no
    completions counts as bad — an outage is not "fast"), optionally
    gives the {!Controller} its tick, and after the run clears all
    faults, converges the deployment chaos-style, and runs the
    per-group prefix/exactly-once checkers, the cross-map
    nothing-lost/exactly-once check and the replica fingerprint
    comparison. *)

open Hovercraft_sim
module Loadgen = Hovercraft_cluster.Loadgen

(** One scheduled fault. Times are relative to run start. [Slow] models
    a slow-but-alive node: every link to and from it gains [delay] extra
    wire latency and drops with probability [drop] — the node keeps
    answering, just late (the failure mode leadership transfer exists
    for). *)
type fault =
  | Kill of { at : Timebase.t; group : int; node : int }
  | Kill_leader of { at : Timebase.t; group : int }
  | Restart of { at : Timebase.t; group : int; node : int }
  | Slow of {
      at : Timebase.t;
      group : int;
      node : int;
      delay : Timebase.t;
      drop : float;
    }
  | Heal_slow of { at : Timebase.t; group : int; node : int }

(** The keyed workload. [Drifting_kv] slides the zipf head across the
    key space with period [period] — the hotspot every static placement
    eventually loses. *)
type workload_spec =
  | Zipf_kv of { read_fraction : float; theta : float; records : int }
  | Drifting_kv of {
      read_fraction : float;
      theta : float;
      records : int;
      period : Timebase.t;
    }

type spec = {
  name : string;
  shards : int;  (** Total groups (dormant split targets included). *)
  active : int;  (** Groups initially owning slots. *)
  n : int;  (** Replicas per group. *)
  link_gbps : float;  (** Per-host NIC budget, pre-split across shards. *)
  rate_rps : float;
  profile : (Timebase.t * float) list;  (** [[]] = constant [rate_rps]. *)
  workload : workload_spec;
  faults : fault list;
  duration : Timebase.t;
  warmup : Timebase.t;
  tick : Timebase.t;  (** Window length = control period. *)
  slo_p99 : Timebase.t;
  flow_cap : int;
}

val make :
  name:string ->
  ?shards:int ->
  ?active:int ->
  ?n:int ->
  ?link_gbps:float ->
  ?rate_rps:float ->
  ?profile:(Timebase.t * float) list ->
  ?faults:fault list ->
  ?duration:Timebase.t ->
  ?warmup:Timebase.t ->
  ?tick:Timebase.t ->
  ?slo_p99:Timebase.t ->
  ?flow_cap:int ->
  workload_spec ->
  spec
(** Defaults: 4 shards, 1 active, n=3, 1 GbE hosts (the budget putting
    the single-group knee near 120 krps), 200 krps, no profile, no
    faults, 2.5 s run, 250 ms warmup, 125 ms windows, 500 us SLO, flow
    cap 1000. *)

val hotspot_drift : ?rate_rps:float -> ?duration:Timebase.t -> unit -> spec
(** The flagship: all load on one of four groups, a drifting zipf
    hotspot over 2 M users, and a follower of the loaded group killed at
    60% of the run. Calibrated so the no-controller baseline is pinned
    past its single-group knee (SLO violated) while splitting onto the
    dormant groups holds it. *)

val flash_crowd : ?rate_rps:float -> ?duration:Timebase.t -> unit -> spec
(** 3x rate spike for a fifth of the run, two active groups of four. *)

val diurnal :
  ?trough_rps:float -> ?peak_rps:float -> ?duration:Timebase.t -> unit -> spec
(** Trough-peak-trough ramp; the peak exceeds the single-group knee. *)

val slow_node :
  ?rate_rps:float -> ?delay:Timebase.t -> ?duration:Timebase.t -> unit -> spec
(** Group 0's initial leader turns slow-but-alive (+300 us per hop by
    default) at 40% of the run. The cure is leadership transfer, not
    migration. *)

val correlated_failure :
  ?rate_rps:float -> ?duration:Timebase.t -> unit -> spec
(** One host dies: node 1 of EVERY group, simultaneously (the groups are
    co-located). The controller must repair all groups concurrently. *)

val names : string list
val find : string -> spec option
(** CLI surface: scenario registry by name. *)

(** One judged measurement window. *)
type window_verdict = {
  w_end_s : float;  (** Window end, seconds from run start. *)
  w_count : int;  (** Completions measured in the window. *)
  w_expected : float;  (** Offered load (rate x window) at window midpoint. *)
  w_p99_us : float;
  w_good : bool;
      (** Within SLO {e and} completions at least 30% of offered — a
          stalled window is bad even if its few replies were fast. *)
}

type outcome = {
  spec_name : string;
  controller_on : bool;
  report : Loadgen.report;
  windows : window_verdict list;  (** Oldest first. *)
  n_windows : int;
  good_windows : int;
  slo_fraction : float;  (** [good_windows / n_windows]. *)
  worst_p99_us : float;
  actions : (float * string) list;
      (** Controller actions, (seconds from start, description). *)
  events : (float * string) list;  (** Injected faults, same clock. *)
  notes : (float * string) list;
      (** {!Hovercraft_shard.Shard_deploy.notes}: the migration driver's
          own log, same clock. *)
  violations : string list;
  exactly_once_ok : bool;
  committed_preserved : bool;
  caught_up : bool;
  consistent : bool;
  retried : int;
  rerouted : int;
  migrations : int;
  map_version : int;
  pending_recoveries : int;
}

val slo_held : ?fraction:float -> outcome -> bool
(** At least [fraction] (default 0.9) of judged windows were good. *)

val checkers_green : outcome -> bool
(** No history violations, exactly-once and nothing-lost hold, all
    replicas caught up with agreeing fingerprints, no stuck recovery. *)

val run : ?controller:Controller.config -> spec -> seed:int -> unit -> outcome
(** Execute the scenario. [controller = None] is the baseline (no
    control loop); [Some cfg] attaches a {!Controller} ticked once per
    window. Deterministic: same spec, seed and controller config give
    the same outcome. *)
