open Hovercraft_sim
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore
module Zipf = Hovercraft_apps.Zipf
module Metrics = Hovercraft_obs.Metrics
module Deploy = Hovercraft_cluster.Deploy
module Loadgen = Hovercraft_cluster.Loadgen
module Traffic = Hovercraft_cluster.Traffic
module Chaos = Hovercraft_cluster.Chaos
module Shard_map = Hovercraft_shard.Shard_map
module Shard_deploy = Hovercraft_shard.Shard_deploy
module Shard_loadgen = Hovercraft_shard.Shard_loadgen
module Shard_chaos = Hovercraft_shard.Shard_chaos

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)

type fault =
  | Kill of { at : Timebase.t; group : int; node : int }
  | Kill_leader of { at : Timebase.t; group : int }
  | Restart of { at : Timebase.t; group : int; node : int }
  | Slow of {
      at : Timebase.t;
      group : int;
      node : int;
      delay : Timebase.t;
      drop : float;
    }
  | Heal_slow of { at : Timebase.t; group : int; node : int }

type workload_spec =
  | Zipf_kv of { read_fraction : float; theta : float; records : int }
  | Drifting_kv of {
      read_fraction : float;
      theta : float;
      records : int;
      period : Timebase.t;
    }

type spec = {
  name : string;
  shards : int;
  active : int;
  n : int;
  link_gbps : float;
  rate_rps : float;
  profile : (Timebase.t * float) list; (* [] = constant rate *)
  workload : workload_spec;
  faults : fault list;
  duration : Timebase.t;
  warmup : Timebase.t;
  tick : Timebase.t;
  slo_p99 : Timebase.t;
  flow_cap : int;
}

(* Shared frame: a 4-group-capable deployment on a 1 GbE host budget
   (each group runs on a 1/shards NIC slice — the budget that puts the
   single-group knee at a simulation-tractable ~120 krps), a
   YCSB-B-flavoured zipf KV over a million-plus key space, 500 us p99
   objective, 125 ms windows. *)
let make ~name ?(shards = 4) ?(active = 1) ?(n = 3) ?(link_gbps = 1.)
    ?(rate_rps = 200_000.) ?(profile = []) ?(faults = [])
    ?(duration = Timebase.ms 2_500) ?(warmup = Timebase.ms 250)
    ?(tick = Timebase.ms 125) ?(slo_p99 = Timebase.us 500)
    ?(flow_cap = 1_000) workload =
  {
    name;
    shards;
    active;
    n;
    link_gbps;
    rate_rps;
    profile;
    workload;
    faults;
    duration;
    warmup;
    tick;
    slo_p99;
    flow_cap;
  }

let million = 1_000_000

(* Hotspot drift plus node loss: all slots start on one group while three
   sit dormant, the zipf head wanders across the key space, and a
   follower of the loaded group dies mid-run. The baseline is pinned over
   its single-group knee; holding the SLO requires splitting onto the
   dormant groups (and re-splitting as the hotspot moves on), and the
   dead follower must be replaced to restore the fault margin. *)
let hotspot_drift ?(rate_rps = 200_000.) ?(duration = Timebase.ms 2_500) () =
  make ~name:"hotspot-drift" ~rate_rps ~duration
    ~faults:[ Kill { at = (duration * 3) / 5; group = 0; node = 2 } ]
    (Drifting_kv
       {
         read_fraction = 0.95;
         theta = 0.9;
         records = 2 * million;
         period = duration;
       })

(* A flash crowd: 3x the base rate for a fifth of the run. *)
let flash_crowd ?(rate_rps = 110_000.) ?(duration = Timebase.ms 2_500) () =
  let d = duration in
  make ~name:"flash-crowd" ~active:2 ~rate_rps
    ~profile:
      [
        (0, rate_rps);
        (2 * d / 5, rate_rps);
        ((2 * d / 5) + Timebase.ms 50, 3. *. rate_rps);
        (3 * d / 5, 3. *. rate_rps);
        ((3 * d / 5) + Timebase.ms 50, rate_rps);
      ]
    ~duration
    (Zipf_kv { read_fraction = 0.95; theta = 0.9; records = million })

(* A diurnal ramp: trough to peak and back, peak past the single-group
   knee so the controller must scale out on the way up. *)
let diurnal ?(trough_rps = 60_000.) ?(peak_rps = 240_000.)
    ?(duration = Timebase.s 3) () =
  make ~name:"diurnal" ~rate_rps:trough_rps
    ~profile:
      [ (0, trough_rps); (duration / 2, peak_rps); (duration, trough_rps) ]
    ~duration
    (Zipf_kv { read_fraction = 0.95; theta = 0.9; records = million })

(* A slow-but-alive node: the initial leader of group 0 keeps answering,
   but every packet to or from it gains extra wire latency. Client p99
   breaches while the group's load is ordinary — the signature the
   controller reads as "move leadership off that node". *)
let slow_node ?(rate_rps = 100_000.) ?(delay = Timebase.us 300)
    ?(duration = Timebase.ms 2_500) () =
  make ~name:"slow-node" ~shards:2 ~active:2 ~rate_rps ~duration
    ~faults:
      [ Slow { at = (duration * 2) / 5; group = 0; node = 0; delay; drop = 0. } ]
    (Zipf_kv { read_fraction = 0.95; theta = 0.9; records = million })

(* A correlated failure: the groups are co-located, so one host dying
   takes a replica out of EVERY group at the same instant. *)
let correlated_failure ?(rate_rps = 120_000.) ?(duration = Timebase.s 3) () =
  let at = duration / 2 in
  make ~name:"correlated-failure" ~shards:3 ~active:3 ~rate_rps ~duration
    ~faults:
      [
        Kill { at; group = 0; node = 1 };
        Kill { at; group = 1; node = 1 };
        Kill { at; group = 2; node = 1 };
      ]
    (Zipf_kv { read_fraction = 0.95; theta = 0.9; records = million })

let by_name =
  [
    ("hotspot-drift", fun () -> hotspot_drift ());
    ("flash-crowd", fun () -> flash_crowd ());
    ("diurnal", fun () -> diurnal ());
    ("slow-node", fun () -> slow_node ());
    ("correlated-failure", fun () -> correlated_failure ());
  ]

let names = List.map fst by_name
let find name = Option.map (fun f -> f ()) (List.assoc_opt name by_name)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

let key_of r = Printf.sprintf "user%08d" r

(* Deterministic 128-byte record value per sequence number (replicas
   must agree on replayed streams; YCSB's 1 kB records would make the
   chaos-style full-history retention needlessly heavy here). *)
let value_of seq = String.init 128 (fun j -> Char.chr (97 + ((seq + j) mod 26)))

(* The generator draws only from the load generator's RNG (the workload
   contract), so runs replay deterministically; the drift offset is a
   pure function of simulated time. *)
let make_workload spec engine ~t0 =
  let kv ~read_fraction ~theta ~records ~offset =
    let z = Zipf.create ~theta ~n:records () in
    let seq = ref 0 in
    fun rng ->
      let r = (Zipf.sample z rng + offset ()) mod records in
      if Rng.bool rng read_fraction then Op.Kv (Kvstore.Get (key_of r))
      else begin
        incr seq;
        Op.Kv (Kvstore.Put (key_of r, value_of !seq))
      end
  in
  match spec.workload with
  | Zipf_kv { read_fraction; theta; records } ->
      kv ~read_fraction ~theta ~records ~offset:(fun () -> 0)
  | Drifting_kv { read_fraction; theta; records; period } ->
      let offset () =
        let t = (Engine.now engine - t0) mod period in
        int_of_float
          (float_of_int records *. float_of_int t /. float_of_int period)
      in
      kv ~read_fraction ~theta ~records ~offset

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)

type window_verdict = {
  w_end_s : float; (* window end, seconds from run start *)
  w_count : int;
  w_expected : float;
  w_p99_us : float;
  w_good : bool;
}

type outcome = {
  spec_name : string;
  controller_on : bool;
  report : Loadgen.report;
  windows : window_verdict list; (* oldest first *)
  n_windows : int;
  good_windows : int;
  slo_fraction : float;
  worst_p99_us : float;
  actions : (float * string) list; (* controller actions, s from start *)
  events : (float * string) list; (* injected faults, s from start *)
  notes : (float * string) list; (* migration-driver log, s from start *)
  violations : string list;
  exactly_once_ok : bool;
  committed_preserved : bool;
  caught_up : bool;
  consistent : bool;
  retried : int;
  rerouted : int;
  migrations : int;
  map_version : int;
  pending_recoveries : int;
}

let slo_held ?(fraction = 0.9) o = o.slo_fraction >= fraction

let checkers_green o =
  o.violations = [] && o.exactly_once_ok && o.committed_preserved
  && o.caught_up && o.consistent
  && o.pending_recoveries = 0

(* ------------------------------------------------------------------ *)
(* The runner                                                          *)

let drain = Timebase.ms 100

(* Same widening as Shard_chaos.run — bodies stay refetchable past any
   crash, no log prefix compacts away (the history checkers scan the
   whole run), flow control on (every group gets a middlebox) — except
   the body-GC horizon also covers the epilogue's full settle budget: a
   node restarted or added at the END of the run recovers its bodies
   during settle, and a body aged out mid-recovery wedges the apply loop
   for good. *)
let widen (p : Hnode.params) ~duration =
  {
    p with
    Hnode.timing =
      {
        p.Hnode.timing with
        Hnode.gc_ordered = (2 * duration) + drain + Timebase.s 12;
      };
    features =
      {
        p.Hnode.features with
        Hnode.log_retain = max_int / 2;
        flow_control = true;
        (* Periodic checkpoints so a node added by the controller's
           repair catches up from the compact image instead of replaying
           the whole run's history — replay fetches every entry's body
           from the leader one at a time, tens of MB of leader egress
           that starves foreground traffic on a thin NIC slice. The log
           itself still never compacts (log_retain above): the checkers
           want the full history, the newcomer just doesn't. *)
        snapshot_interval = 25_000;
      };
  }

let node_peers (d : Deploy.t) i =
  Addr.Netagg :: Addr.Middlebox
  :: (Array.to_list d.Deploy.nodes
     |> List.filter_map (fun nd ->
            if Hnode.id nd = i then None else Some (Addr.Node (Hnode.id nd))))

let impair d i ~delay ~drop =
  List.iter
    (fun p ->
      Fabric.set_link_fault d.Deploy.fabric ~src:(Addr.Node i) ~dst:p ~drop
        ~delay ();
      Fabric.set_link_fault d.Deploy.fabric ~src:p ~dst:(Addr.Node i) ~drop
        ~delay ())
    (node_peers d i)

let unimpair d i =
  List.iter
    (fun p ->
      Fabric.clear_link_fault d.Deploy.fabric ~src:(Addr.Node i) ~dst:p;
      Fabric.clear_link_fault d.Deploy.fabric ~src:p ~dst:(Addr.Node i))
    (node_peers d i)

let run ?controller spec ~seed () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:spec.n () in
    let p =
      {
        p with
        Hnode.seed;
        cost = { p.Hnode.cost with Hnode.link_gbps = spec.link_gbps };
      }
    in
    widen p ~duration:spec.duration
  in
  let sd =
    Shard_deploy.create
      (Shard_deploy.config ~active:spec.active ~flow_cap:spec.flow_cap
         ~shards:spec.shards params)
  in
  let groups = Shard_deploy.groups sd in
  let engine = Shard_deploy.engine sd in
  let t0 = Engine.now engine in
  let secs at = Timebase.to_s_f (at - t0) in
  let events = ref [] in
  let note fmt =
    Format.kasprintf
      (fun s -> events := (secs (Engine.now engine), s) :: !events)
      fmt
  in
  let completed_writes = ref [] in
  let profile =
    match spec.profile with [] -> None | pts -> Some (Traffic.profile pts)
  in
  let workload = make_workload spec engine ~t0 in
  let gen =
    Shard_loadgen.create sd ~clients:8 ~rate_rps:spec.rate_rps ?profile
      ~workload
      ~retry:(Timebase.ms 50, 8)
      ~on_reply:(fun ~rid ~op ~sent_at:_ ~latency:_ ->
        if not (Op.read_only op) then
          completed_writes := rid :: !completed_writes)
      ~seed ()
  in
  (* Fault timeline. *)
  List.iter
    (fun f ->
      let schedule at body = Engine.after engine at body in
      match f with
      | Kill { at; group; node } ->
          schedule at (fun () ->
              Deploy.kill_node groups.(group) node;
              note "fault: kill group%d/node%d" group node)
      | Kill_leader { at; group } ->
          schedule at (fun () ->
              match Deploy.kill_leader groups.(group) with
              | Some i -> note "fault: kill group%d leader (node%d)" group i
              | None -> note "fault: group%d kill-leader found nothing" group)
      | Restart { at; group; node } ->
          schedule at (fun () ->
              Deploy.restart_node groups.(group) node;
              note "fault: restart group%d/node%d" group node)
      | Slow { at; group; node; delay; drop } ->
          schedule at (fun () ->
              impair groups.(group) node ~delay ~drop;
              note "fault: slow group%d/node%d (+%dus, drop %.2f)" group node
                (delay / 1_000) drop)
      | Heal_slow { at; group; node } ->
          schedule at (fun () ->
              unimpair groups.(group) node;
              note "fault: heal group%d/node%d" group node))
    spec.faults;
  (* Measurement ticks: rotation at every window edge, judgement and the
     control decision on each completed window. *)
  let ctrl = Option.map (fun cfg -> Controller.create ~cfg sd gen) controller in
  let windows = ref [] in
  let stop_at = t0 + spec.duration in
  let measure_from = t0 + spec.warmup in
  let rotate_all () =
    Metrics.rotate (Shard_loadgen.latency_window gen);
    for g = 0 to spec.shards - 1 do
      Metrics.rotate (Shard_loadgen.group_latency_window gen g)
    done
  in
  let judge ~w_end =
    let w = Shard_loadgen.latency_window gen in
    let count = Metrics.last_count w in
    let p99_us = Timebase.to_us_f (Metrics.last_percentile w 0.99) in
    let mid = w_end - (spec.tick / 2) in
    let rate =
      match profile with
      | Some p -> Traffic.rate_at p (mid - t0)
      | None -> spec.rate_rps
    in
    let expected = rate *. Timebase.to_s_f spec.tick in
    (* An outage window (commits stalled, completions a trickle) is a bad
       window even though the few replies that land may be fast. *)
    let good =
      count > 0
      && p99_us <= Timebase.to_us_f spec.slo_p99
      && float_of_int count >= 0.3 *. expected
    in
    windows :=
      { w_end_s = secs w_end; w_count = count; w_expected = expected; w_p99_us = p99_us; w_good = good }
      :: !windows
  in
  let rec tick_at k =
    let at = measure_from + (k * spec.tick) in
    if at <= stop_at then
      Engine.at engine at (fun () ->
          rotate_all ();
          if k > 0 then begin
            judge ~w_end:at;
            Option.iter Controller.tick ctrl
          end;
          tick_at (k + 1))
  in
  tick_at 0;
  let report =
    Shard_loadgen.run gen ~warmup:spec.warmup ~duration:spec.duration ~drain ()
  in
  (* Epilogue: clear faults, restart the (non-decommissioned) dead, and
     converge — letting in-flight migrations and membership changes
     finish — before any history checker looks. *)
  Array.iter
    (fun (d : Deploy.t) ->
      if Fabric.partitioned d.Deploy.fabric then Fabric.heal d.Deploy.fabric;
      Fabric.clear_link_faults d.Deploy.fabric;
      Array.iteri
        (fun i node ->
          if (not (Hnode.alive node)) && not (Deploy.is_removed d i) then
            Deploy.restart_node d i)
        d.Deploy.nodes)
    groups;
  let converged () =
    (not (Shard_deploy.migrating sd))
    && Shard_deploy.total_pending_recoveries sd = 0
    && Array.for_all
         (fun d ->
           let live = Deploy.live_nodes d in
           let max_commit =
             List.fold_left (fun acc nd -> max acc (Hnode.commit_index nd)) 0 live
           in
           List.for_all (fun nd -> Hnode.applied_index nd >= max_commit) live)
         groups
  in
  let rec settle tries =
    Shard_deploy.quiesce sd ~extra:(Timebase.ms 200) ();
    if (not (converged ())) && tries > 0 then settle (tries - 1)
  in
  settle 50;
  (* Invariants: per-group prefix/exactly-once/catch-up, then the
     map-level exactly-once / nothing-lost check, then fingerprints. *)
  let violations = ref [] in
  let exactly_once_ok = ref true in
  let caught_up = ref true in
  Array.iteri
    (fun g d ->
      let v, eo, _, cu, _ = Chaos.check ~snapshots:true d ~completed_writes:[] in
      List.iter
        (fun s -> violations := Printf.sprintf "shard%d: %s" g s :: !violations)
        v;
      if not eo then exactly_once_ok := false;
      if not cu then caught_up := false)
    groups;
  let xviol, xeo, preserved =
    Shard_chaos.cross_map_check groups ~completed_writes:!completed_writes
  in
  violations := List.rev_append (List.rev xviol) !violations;
  if not xeo then exactly_once_ok := false;
  let consistent = Shard_deploy.consistent sd in
  if not consistent then
    violations := "live replica fingerprints diverge" :: !violations;
  let windows = List.rev !windows in
  let n_windows = List.length windows in
  let good_windows =
    List.fold_left (fun acc w -> if w.w_good then acc + 1 else acc) 0 windows
  in
  let worst_p99_us =
    List.fold_left (fun acc w -> Float.max acc w.w_p99_us) 0. windows
  in
  let actions =
    match ctrl with
    | None -> []
    | Some c -> List.map (fun (at, s) -> (secs at, s)) (Controller.actions c)
  in
  let events =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) (List.rev !events)
  in
  let notes = List.map (fun (at, s) -> (secs at, s)) (Shard_deploy.notes sd) in
  {
    spec_name = spec.name;
    controller_on = ctrl <> None;
    report;
    windows;
    n_windows;
    good_windows;
    slo_fraction =
      (if n_windows = 0 then 0.
       else float_of_int good_windows /. float_of_int n_windows);
    worst_p99_us;
    actions;
    events;
    notes;
    violations = List.rev !violations;
    exactly_once_ok = !exactly_once_ok;
    committed_preserved = preserved;
    caught_up = !caught_up;
    consistent;
    retried = Shard_loadgen.retried gen;
    rerouted = Shard_loadgen.rerouted gen;
    migrations = Shard_deploy.migrations sd;
    map_version = Shard_map.version (Shard_deploy.map sd);
    pending_recoveries = Shard_deploy.total_pending_recoveries sd;
  }
