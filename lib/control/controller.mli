(** The SLO-driven autoscaling control loop.

    Samples the observability surface of a sharded deployment — per-group
    windowed p99 from the load generator's client-side SLI, per-slot key
    heat from the router tallies, leader commit/apply backlog, and node
    liveness — once per tick, and reacts through the existing
    reconfiguration verbs:

    - a breached group that is {e hot} (heat share above its fair share,
      or a deep apply backlog) sheds load: {!Shard_deploy.split_shard}
      onto a dormant group when one exists, else
      {!Shard_deploy.move_shard} of its hottest slots to the coolest
      group;
    - a breached group that is {e not} hot points at a slow node on the
      ordering path: leadership is transferred to the most caught-up
      follower (try-and-observe; the node just demoted is never the next
      target);
    - a node dead for [breach_ticks] consecutive ticks is replaced:
      {!Hovercraft_cluster.Deploy.remove_node} of the corpse first (a
      dead voter contributes to no quorum, so this costs no headroom),
      then [add_node] — add-first would put the empty newcomer in every
      quorum until the removal commits, stalling commits behind its
      catch-up replay.

    Stability invariants (DESIGN.md §4g): {e hysteresis} — a group must
    breach the SLO for [breach_ticks] consecutive windows before any
    action; {e one action in flight per group} — a group with a pending
    migration/repair/transfer takes no further action, and migrations
    additionally serialize globally through the migration fence;
    {e cooldown} — after an action completes its group(s) stay quiet for
    [cooldown], so the next decision sees post-action windows only.

    The controller never schedules itself: the owner of the measurement
    cadence (the scenario runner, which also rotates the latency windows)
    calls {!tick}. *)

open Hovercraft_sim
module Shard_deploy = Hovercraft_shard.Shard_deploy
module Shard_loadgen = Hovercraft_shard.Shard_loadgen

type config = {
  slo_p99 : Timebase.t;  (** The latency objective per window. *)
  breach_ticks : int;
      (** Consecutive breached windows (or ticks seen dead) before
          acting — the hysteresis. *)
  cooldown : Timebase.t;  (** Per-group quiet period after an action. *)
  min_samples : int;
      (** Windows with fewer samples are not judged (an idle group's
          noise must not trigger migrations). *)
  hot_share : float;
      (** A group is hot when its heat exceeds this multiple of the fair
          (per-active-group) share. *)
  backlog_limit : int;
      (** Leader commit-minus-applied depth that also counts as
          saturation. *)
  transfer_ticks : int;
      (** Patience for a leadership transfer to land before the group is
          released (into cooldown) anyway. *)
  max_actions : int;  (** Hard ceiling on actions per run (safety valve). *)
}

val config :
  ?slo_p99:Timebase.t ->
  ?breach_ticks:int ->
  ?cooldown:Timebase.t ->
  ?min_samples:int ->
  ?hot_share:float ->
  ?backlog_limit:int ->
  ?transfer_ticks:int ->
  ?max_actions:int ->
  unit ->
  config
(** Defaults: 500 us SLO, 2-tick hysteresis, 300 ms cooldown, 32-sample
    minimum, 1.25x hot share, 4096-entry backlog limit, 5-tick transfer
    patience, 32 actions. Validates ranges. *)

type t

val create : ?cfg:config -> Shard_deploy.t -> Shard_loadgen.t -> t
(** Attach to a deployment and the load generator whose windowed
    latencies are the SLI. Takes a heat baseline at creation, so the
    first tick sees only post-attach demand. *)

val tick : t -> unit
(** One control decision, reading the windows the caller just rotated
    ({!Hovercraft_obs.Metrics.rotate}): update in-flight action state,
    replace long-dead nodes, then run the SLO policy per group. *)

val actions : t -> (Timebase.t * string) list
(** Every action taken, (simulated time, description), oldest first —
    deterministic under a fixed seed. *)

val ticks : t -> int
val action_count : t -> int

val busy : t -> bool
(** Any action still in flight (epilogues wait for quiet). *)
