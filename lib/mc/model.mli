(** The checked model: bounded Raft / HovercRaft++ clusters.

    The paper leaves "model-checking the correctness of HovercRaft++"
    as future work (§5); this module provides it for bounded instances.
    Nodes are the {e actual} [Hovercraft_raft.Node] implementation —
    states are dumped, canonicalized and restored around every transition,
    so the checker explores the very code the simulator runs. The
    in-network aggregator is modelled after its P4 specification (§6.4):
    per-follower match/completed registers, the leader's last log index,
    the pending flag, soft-state flush on term change.

    Nondeterminism explored per state:
    - any in-flight message may be delivered, dropped, or duplicated;
    - any non-leader may time out (until the term bound);
    - any leader may fire a heartbeat (retransmission paths) or accept a
      client command (until the command bound).

    Invariants checked in every reached state:
    - {b election safety}: at most one leader per term;
    - {b log matching}: logs agreeing on the term at an index agree on the
      whole prefix;
    - {b state-machine safety}: any two nodes' logs are identical up to
      the smaller of their commit indices;
    - {b leader completeness}: every current leader's log contains every
      entry committed anywhere. *)

type config = {
  n : int;  (** Cluster size. *)
  aggregated : bool;  (** Model HovercRaft++ (leaders replicate via the aggregator). *)
  max_term : int;  (** No election timeouts beyond this term. *)
  max_cmds : int;  (** Total client commands injected. *)
  max_messages : int;  (** In-flight message cap (excess newest are lost). *)
  allow_drops : bool;
  allow_duplication : bool;
}

val default : config
(** 3 nodes, plain Raft, max_term 2, 1 command, drops and duplication on. *)

type state
(** A canonical global state (nodes + network + aggregator). *)

val compare_state : state -> state -> int

val initial : config -> state

val of_nodes : config -> (int, unit) Hovercraft_raft.Node.dump array -> state
(** A state with the given node dumps, no in-flight messages and a fresh
    aggregator; used by tests to plant invariant violations and prove the
    checker detects them. *)

type label = string
(** Human-readable transition description, for counterexample traces. *)

val successors : config -> state -> (label * state) list
(** All one-step successors with their labels. *)

val check : config -> state -> (string, string) result
(** [Ok summary] when all invariants hold, [Error description]
    otherwise. *)

val pp_state : Format.formatter -> state -> unit
