(** Randomized agreement checking for the leaderless rabia backend.

    The BFS checker in {!Explore} walks bounded Raft instances; rabia's
    per-slot randomized agreement has a much wider nondeterminism
    surface (the coin folds the slot and round into every branch), so
    this module trades exhaustiveness for adversarial depth: [n] {e
    pure} {!Hovercraft_ordering.Rabia} instances over integer commands,
    driven by a seeded scheduler that delivers, drops, duplicates and
    reorders messages and crash-recovers nodes mid-agreement, followed
    by a lossless calm phase so liveness is a checkable postcondition
    rather than a property of the schedule.

    Checked:
    - {b per-slot agreement}: every pair of logs is identical on their
      common prefix, (slot, command)-wise — since a decided batch
      appends atomically with the slot number as entry term, this is
      agreement on every decided slot;
    - {b validity}: only injected commands ever decide;
    - {b liveness} (after the calm phase): every injected command is
      decided on every node.

    A run is a pure function of its config — failures replay. *)

type config = {
  n : int;  (** Instances (>= 2). *)
  cmds : int;  (** Integer commands injected, each at one random node. *)
  steps : int;  (** Adversarial scheduler steps. *)
  drop_prob : float;  (** Per-delivery drop probability. *)
  dup_prob : float;  (** Per-delivery duplication probability. *)
  recover_prob : float;  (** Per-step crash-recovery probability. *)
  seed : int;
}

val default : config
(** 3 nodes, 12 commands, 4000 steps, 10% drop, 10% dup, seed 1. *)

type outcome = {
  decided : int;  (** Entries in node 0's log after the calm phase. *)
  injected : int;
  agreed : bool;  (** Per-slot agreement held. *)
  valid : bool;  (** Only injected commands decided. *)
  all_decided : bool;  (** Every command decided everywhere. *)
  violations : string list;  (** Human-readable, empty when clean. *)
}

val run : config -> outcome
