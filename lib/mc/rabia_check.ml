module Rabia = Hovercraft_ordering.Rabia
module Rlog = Hovercraft_raft.Log
module Rng = Hovercraft_sim.Rng

type config = {
  n : int;
  cmds : int;
  steps : int;
  drop_prob : float;
  dup_prob : float;
  recover_prob : float;
  seed : int;
}

let default =
  {
    n = 3;
    cmds = 12;
    steps = 4_000;
    drop_prob = 0.1;
    dup_prob = 0.1;
    recover_prob = 0.002;
    seed = 1;
  }

type outcome = {
  decided : int;
  injected : int;
  agreed : bool;
  valid : bool;
  all_decided : bool;
  violations : string list;
}

(* One in-flight message; the bag is a list the scheduler indexes
   randomly, which is what buys reordering for free. *)
type packet = { dst : int; msg : (int, unit) Rabia.msg }

let run cfg =
  if cfg.n < 2 then invalid_arg "Rabia_check.run: n must be >= 2";
  let rng = Rng.create cfg.seed in
  let mk i =
    Rabia.create
      {
        Rabia.id = i;
        peers =
          Array.init (cfg.n - 1) (fun k -> if k < i then k else k + 1);
        batch_max = 4;
        coin_seed = cfg.seed lxor 0x5bd1e995;
      }
      ~key_of:(Printf.sprintf "%06d")
  in
  let nodes = Array.init cfg.n mk in
  let bag : packet list ref = ref [] in
  let perform acts =
    List.iter
      (function
        | Rabia.Send (dst, msg) -> bag := { dst; msg } :: !bag
        | Rabia.Commit_advanced _ | Rabia.Appended_range _ -> ()
        | Rabia.Snapshot_installed _ ->
            (* No snapshots are ever registered, so none can arrive. *)
            assert false)
      acts
  in
  let feed i input = perform (Rabia.handle nodes.(i) input) in
  let deliver_at idx =
    let rec split k acc = function
      | [] -> assert false
      | p :: rest when k = 0 -> (p, List.rev_append acc rest)
      | p :: rest -> split (k - 1) (p :: acc) rest
    in
    let p, rest = split idx [] !bag in
    bag := rest;
    if Rng.bool rng cfg.drop_prob then ()
    else begin
      if Rng.bool rng cfg.dup_prob then bag := p :: !bag;
      feed p.dst (Rabia.Receive p.msg)
    end
  in
  let injected = ref 0 in
  (* Adversarial phase: random interleaving of delivery (with drops,
     duplication and, because the bag index is random, reordering),
     command injection at a single random node (dissemination is the
     backend's own job, via proposal adoption), ticks, and
     crash-recovery. *)
  for _ = 1 to cfg.steps do
    if Rng.bool rng cfg.recover_prob then
      Rabia.recover nodes.(Rng.int rng cfg.n);
    if !injected < cfg.cmds && Rng.bool rng 0.05 then begin
      incr injected;
      feed (Rng.int rng cfg.n) (Rabia.Client_command !injected)
    end;
    match List.length !bag with
    | 0 -> feed (Rng.int rng cfg.n) Rabia.Tick
    | len ->
        if Rng.bool rng 0.15 then feed (Rng.int rng cfg.n) Rabia.Tick
        else deliver_at (Rng.int rng len)
  done;
  (* Make sure everything was offered at least once. *)
  while !injected < cfg.cmds do
    incr injected;
    feed (Rng.int rng cfg.n) (Rabia.Client_command !injected)
  done;
  (* Calm phase: lossless delivery plus ticks until a full sweep makes no
     progress, so liveness (everything decides everywhere) is checkable
     rather than schedule-dependent. *)
  let fingerprint () =
    Array.fold_left
      (fun acc nd -> acc + (31 * Rabia.next_slot nd) + Rabia.pending nd)
      (List.length !bag) nodes
  in
  let quiet = ref 0 in
  while !quiet < 3 do
    let before = fingerprint () in
    while !bag <> [] do
      let p = List.hd !bag in
      bag := List.tl !bag;
      feed p.dst (Rabia.Receive p.msg)
    done;
    for i = 0 to cfg.n - 1 do
      feed i Rabia.Tick
    done;
    if fingerprint () = before then incr quiet else quiet := 0
  done;
  let violations = ref [] in
  let agreed = ref true and valid = ref true in
  let bad flag fmt =
    Printf.ksprintf
      (fun s ->
        flag := false;
        violations := s :: !violations)
      fmt
  in
  (* Agreement: entry terms are slot numbers and batches append
     atomically, so index-wise equality of (slot, cmd) pairs across every
     log IS per-slot agreement on the decided batches. *)
  let entry i idx =
    let e = Rlog.get (Rabia.log nodes.(i)) idx in
    (e.Hovercraft_raft.Types.term, e.Hovercraft_raft.Types.cmd)
  in
  let last i = Rlog.last_index (Rabia.log nodes.(i)) in
  for i = 0 to cfg.n - 1 do
    for j = i + 1 to cfg.n - 1 do
      let common = min (last i) (last j) in
      for idx = 1 to common do
        let si, ci = entry i idx and sj, cj = entry j idx in
        if (si, ci) <> (sj, cj) then
          bad agreed
            "index %d: node%d has (slot %d, cmd %d), node%d (slot %d, cmd %d)"
            idx i si ci j sj cj
      done
    done
  done;
  (* Validity: only injected commands ever decide. *)
  let was_injected c = c >= 1 && c <= !injected in
  for i = 0 to cfg.n - 1 do
    for idx = 1 to last i do
      let _, c = entry i idx in
      if not (was_injected c) then
        bad valid "node%d decided uninjected cmd %d" i c
    done
  done;
  (* Liveness after the calm phase: every command decided on every node
     (a decided command may appear in more than one slot; the embedder's
     exactly-once apply dedups — agreement, not uniqueness, is the
     invariant here). *)
  let all_decided = ref true in
  for i = 0 to cfg.n - 1 do
    let seen = Hashtbl.create 64 in
    for idx = 1 to last i do
      Hashtbl.replace seen (snd (entry i idx)) ()
    done;
    for c = 1 to !injected do
      if not (Hashtbl.mem seen c) then begin
        all_decided := false;
        violations :=
          Printf.sprintf "cmd %d never decided on node%d" c i :: !violations
      end
    done
  done;
  {
    decided = last 0;
    injected = !injected;
    agreed = !agreed;
    valid = !valid;
    all_decided = !all_decided;
    violations = List.rev !violations;
  }
