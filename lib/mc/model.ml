module Node = Hovercraft_raft.Node
module Types = Hovercraft_raft.Types

type config = {
  n : int;
  aggregated : bool;
  max_term : int;
  max_cmds : int;
  max_messages : int;
  allow_drops : bool;
  allow_duplication : bool;
}

let default =
  {
    n = 3;
    aggregated = false;
    max_term = 2;
    max_cmds = 1;
    max_messages = 8;
    allow_drops = true;
    allow_duplication = true;
  }

type dst = To_node of int | To_agg

type msg = {
  dst : dst;
  via_agg : bool;  (* an append_entries fanned out by the aggregator *)
  payload : (int, unit) Types.message;
      (* The model never checkpoints, so the snapshot payload is [unit];
         install messages are still representable and passed through. *)
}

(* The aggregator's soft state, mirroring its P4 registers (§6.4). *)
type agg = {
  a_term : int;
  a_leader : int;
  a_match : int list;  (* per node id *)
  a_completed : int list;
  a_leader_last : int;
  a_commit : int;
  a_pending : bool;
}

type state = {
  nodes : (int, unit) Node.dump array;
  messages : msg list;  (* kept sorted: canonical multiset *)
  agg : agg option;
  cmds : int;  (* client commands injected so far *)
}

let compare_state = Stdlib.compare

let node_config cfg i =
  {
    Node.id = i;
    peers = Array.init (cfg.n - 1) (fun k -> if k < i then k else k + 1);
    batch_max = 8;
    eager_commit_notify = false;
    snap_chunk_bytes = 1024;
  }

let fresh_agg cfg ~term ~leader =
  {
    a_term = term;
    a_leader = leader;
    a_match = List.init cfg.n (fun _ -> 0);
    a_completed = List.init cfg.n (fun _ -> 0);
    a_leader_last = 0;
    a_commit = 0;
    a_pending = false;
  }

let initial cfg =
  {
    nodes =
      Array.init cfg.n (fun i ->
          Node.dump (Node.create (node_config cfg i) ~noop:(-1)));
    messages = [];
    agg = (if cfg.aggregated then Some (fresh_agg cfg ~term:0 ~leader:(-1)) else None);
    cmds = 0;
  }

let of_nodes cfg nodes =
  {
    nodes;
    messages = [];
    agg = (if cfg.aggregated then Some (fresh_agg cfg ~term:0 ~leader:(-1)) else None);
    cmds = 0;
  }

(* ------------------------------------------------------------------ *)
(* Running one input through the real Raft implementation.             *)

(* Apply committed entries eagerly and loop until quiescent, exactly as
   the simulator's apply pump does. *)
let run_node cfg dump i input ~reply_via_agg =
  let node = Node.restore (node_config cfg i) ~noop:(-1) dump in
  let out = ref [] in
  let rec consume actions =
    List.iter
      (fun action ->
        match action with
        | Node.Send (p, m) ->
            let dst =
              match m with
              | Types.Append_ack { success = true; _ } when reply_via_agg ->
                  To_agg
              | _ -> To_node p
            in
            out := { dst; via_agg = false; payload = m } :: !out
        | Node.Send_aggregate m ->
            out := { dst = To_agg; via_agg = false; payload = m } :: !out
        | Node.Commit_advanced c ->
            consume (Node.handle node (Node.Applied_up_to c))
        | Node.Appended _ | Node.Became_leader | Node.Became_follower _
        | Node.Leader_activity | Node.Reject_command _
        | Node.Snapshot_installed _ ->
            ())
      actions
  in
  consume (Node.handle node input);
  (* HovercRaft++: a leader switches to aggregated replication as soon as
     the aggregator acknowledges its probe; the model collapses the probe
     round-trip (the aggregator is assumed live). *)
  if cfg.aggregated && Node.role node = Node.Leader && not (Node.aggregated node)
  then begin
    Node.set_aggregated node true;
    consume (Node.handle node Node.Heartbeat_timeout)
  end;
  (Node.dump node, List.rev !out)

(* ------------------------------------------------------------------ *)
(* The aggregator transition function.                                  *)

let nth l i = List.nth l i
let set_nth l i v = List.mapi (fun k x -> if k = i then v else x) l

let quorum_match cfg a =
  let followers =
    List.filteri (fun i _ -> i <> a.a_leader) a.a_match |> List.sort compare
  in
  let needed = ((cfg.n / 2) + 1) - 1 in
  if needed = 0 then a.a_leader_last
  else List.nth followers (List.length followers - needed)

let agg_commit_msgs cfg a =
  List.init cfg.n (fun i ->
      if i = a.a_leader then
        {
          dst = To_node i;
          via_agg = false;
          payload = Types.Agg_ack { term = a.a_term; commit = a.a_commit };
        }
      else
        {
          dst = To_node i;
          via_agg = false;
          payload = Types.Commit_to { term = a.a_term; commit = a.a_commit };
        })

let run_agg cfg a payload =
  match payload with
  | Types.Append_entries { term; leader; prev_idx; entries; _ } ->
      let a = if term > a.a_term then fresh_agg cfg ~term ~leader else a in
      if term < a.a_term then (a, [])
      else begin
        let a =
          if leader <> a.a_leader then fresh_agg cfg ~term ~leader else a
        in
        let end_idx = prev_idx + Array.length entries in
        let a =
          if end_idx <= a.a_leader_last then { a with a_pending = true }
          else { a with a_leader_last = end_idx }
        in
        let fanout =
          List.init cfg.n (fun i -> i)
          |> List.filter (fun i -> i <> leader)
          |> List.map (fun i -> { dst = To_node i; via_agg = true; payload })
        in
        (a, fanout)
      end
  | Types.Append_ack { term; from; success = true; match_idx; applied_idx; _ }
    when term = a.a_term && from >= 0 && from < cfg.n ->
      let a =
        {
          a with
          a_match = set_nth a.a_match from (max (nth a.a_match from) match_idx);
          a_completed =
            set_nth a.a_completed from (max (nth a.a_completed from) applied_idx);
        }
      in
      let candidate = min (quorum_match cfg a) a.a_leader_last in
      if candidate > a.a_commit then
        let a = { a with a_commit = candidate; a_pending = false } in
        (a, agg_commit_msgs cfg a)
      else if a.a_pending then
        let a = { a with a_pending = false } in
        (a, agg_commit_msgs cfg a)
      else (a, [])
  | Types.Append_ack _ | Types.Request_vote _ | Types.Vote _
  | Types.Commit_to _ | Types.Agg_ack _ | Types.Timeout_now _
  | Types.Install_snapshot _ | Types.Install_ack _ ->
      (a, [])

(* ------------------------------------------------------------------ *)
(* Global transitions.                                                  *)

let canonical cfg state =
  let messages =
    List.sort Stdlib.compare state.messages |> fun l ->
    (* Lossy cap: a bounded network may lose the excess. *)
    List.filteri (fun i _ -> i < cfg.max_messages) l
  in
  { state with messages }

let with_new_messages cfg state msgs =
  canonical cfg { state with messages = state.messages @ msgs }

let deliver cfg state k =
  let m = List.nth state.messages k in
  let remaining = List.filteri (fun i _ -> i <> k) state.messages in
  match m.dst with
  | To_node i ->
      let dump', out =
        run_node cfg state.nodes.(i) i (Node.Receive m.payload)
          ~reply_via_agg:m.via_agg
      in
      let nodes = Array.copy state.nodes in
      nodes.(i) <- dump';
      with_new_messages cfg { state with nodes; messages = remaining } out
  | To_agg -> (
      match state.agg with
      | None -> canonical cfg { state with messages = remaining }
      | Some a ->
          let a', out = run_agg cfg a m.payload in
          with_new_messages cfg
            { state with agg = Some a'; messages = remaining }
            out)

let local cfg state i input =
  let dump', out = run_node cfg state.nodes.(i) i input ~reply_via_agg:false in
  let nodes = Array.copy state.nodes in
  nodes.(i) <- dump';
  with_new_messages cfg { state with nodes } out

type label = string

let describe_msg m =
  let dst = match m.dst with To_node i -> Printf.sprintf "n%d" i | To_agg -> "agg" in
  Format.asprintf "%s<-%a%s" dst Types.pp_message m.payload
    (if m.via_agg then " (via agg)" else "")

let successors cfg state =
  let acc = ref [] in
  let add label s = acc := (label, s) :: !acc in
  Array.iteri
    (fun i dump ->
      let info = Node.dump_info dump in
      if info.Node.i_role <> Node.Leader && info.Node.i_term < cfg.max_term then
        add
          (Printf.sprintf "timeout n%d" i)
          (local cfg state i Node.Election_timeout);
      if info.Node.i_role = Node.Leader then begin
        add
          (Printf.sprintf "heartbeat n%d" i)
          (local cfg state i Node.Heartbeat_timeout);
        if state.cmds < cfg.max_cmds then
          add
            (Printf.sprintf "client cmd%d -> n%d" state.cmds i)
            (local cfg
               { state with cmds = state.cmds + 1 }
               i
               (Node.Client_command (100 + state.cmds)))
      end)
    state.nodes;
  List.iteri
    (fun k m ->
      add (Printf.sprintf "deliver %s" (describe_msg m)) (deliver cfg state k);
      if cfg.allow_drops then
        add
          (Printf.sprintf "drop %s" (describe_msg m))
          (canonical cfg
             {
               state with
               messages = List.filteri (fun i _ -> i <> k) state.messages;
             });
      if cfg.allow_duplication then begin
        (* Deliver while keeping a copy in flight = duplication. *)
        let dup = deliver cfg state k in
        add
          (Printf.sprintf "dup-deliver %s" (describe_msg m))
          (canonical cfg { dup with messages = m :: dup.messages })
      end)
    state.messages;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Invariants.                                                          *)

exception Bad of string

(* Entries are indexed from [i_base + 1] (the dump of a compacted log
   starts above its base); anything at or below the base is gone — its
   effect lives in the snapshot, whose identity the Log Matching property
   covers, so pairwise checks skip those indices rather than fail. *)
let entry_at info idx =
  let base = info.Node.i_base in
  if idx <= base then None
  else List.nth_opt info.Node.i_entries (idx - base - 1)

let last_of info = info.Node.i_base + List.length info.Node.i_entries

let check cfg state =
  ignore cfg;
  let infos = Array.map Node.dump_info state.nodes in
  try
    (* Election safety. *)
    let leaders = Hashtbl.create 4 in
    Array.iteri
      (fun i info ->
        if info.Node.i_role = Node.Leader then begin
          (match Hashtbl.find_opt leaders info.Node.i_term with
          | Some j ->
              raise
                (Bad
                   (Printf.sprintf "election safety: leaders %d and %d in term %d"
                      j i info.Node.i_term))
          | None -> ());
          Hashtbl.replace leaders info.Node.i_term i
        end)
      infos;
    (* Pairwise checks. *)
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b ->
            if i < j then begin
              (* Log matching on the shared suffix where terms agree. *)
              let floor_idx = max a.Node.i_base b.Node.i_base in
              let upto = min (last_of a) (last_of b) in
              let rec anchor k =
                if k <= floor_idx then 0
                else
                  match (entry_at a k, entry_at b k) with
                  | Some ea, Some eb when ea.Types.term = eb.Types.term -> k
                  | _ -> anchor (k - 1)
              in
              let m = anchor upto in
              for idx = floor_idx + 1 to m do
                match (entry_at a idx, entry_at b idx) with
                | Some ea, Some eb when ea = eb -> ()
                | _ ->
                    raise
                      (Bad
                         (Printf.sprintf "log matching: nodes %d/%d differ at %d"
                            i j idx))
              done;
              (* State-machine safety. *)
              let c = min a.Node.i_commit b.Node.i_commit in
              for idx = floor_idx + 1 to c do
                match (entry_at a idx, entry_at b idx) with
                | Some ea, Some eb when ea = eb -> ()
                | _ ->
                    raise
                      (Bad
                         (Printf.sprintf
                            "state-machine safety: commit %d differs between %d/%d"
                            idx i j))
              done
            end)
          infos)
      infos;
    (* Leader completeness. A node's committed entries were committed in
       terms <= its current term, and the Raft theorem guarantees a leader
       holds everything committed in terms below its own (entries of its
       own term it wrote itself) — so the sound per-state check is: a
       leader holds everything committed at nodes whose term does not
       exceed its own. A stale leader of a lower term legitimately misses
       entries committed later. *)
    Array.iteri
      (fun li linfo ->
        if linfo.Node.i_role = Node.Leader then
          Array.iteri
            (fun j jinfo ->
              if jinfo.Node.i_term <= linfo.Node.i_term then
              for idx = max linfo.Node.i_base jinfo.Node.i_base + 1
                  to jinfo.Node.i_commit do
                match (entry_at linfo idx, entry_at jinfo idx) with
                | Some ea, Some eb when ea = eb -> ()
                | _ ->
                    raise
                      (Bad
                         (Printf.sprintf
                            "leader completeness: leader %d misses entry %d committed at %d"
                            li idx j))
              done)
            infos)
      infos;
    Ok "all invariants hold"
  with Bad msg -> Error msg

let pp_state fmt state =
  Array.iteri
    (fun i dump ->
      let info = Node.dump_info dump in
      Format.fprintf fmt "n%d:%a t=%d commit=%d log=%d; " i Node.pp_role
        info.Node.i_role info.Node.i_term info.Node.i_commit
        (List.length info.Node.i_entries))
    state.nodes;
  Format.fprintf fmt "msgs=%d cmds=%d" (List.length state.messages) state.cmds;
  match state.agg with
  | Some a -> Format.fprintf fmt " agg(t=%d,commit=%d)" a.a_term a.a_commit
  | None -> ()
