type role = Follower | Candidate | Leader

let pp_role fmt = function
  | Follower -> Format.pp_print_string fmt "follower"
  | Candidate -> Format.pp_print_string fmt "candidate"
  | Leader -> Format.pp_print_string fmt "leader"

type config = {
  id : Types.node_id;
  peers : Types.node_id array;
  batch_max : int;
  eager_commit_notify : bool;
}

type 'cmd action =
  | Send of Types.node_id * 'cmd Types.message
  | Send_aggregate of 'cmd Types.message
  | Commit_advanced of int
  | Appended of int
  | Became_leader
  | Became_follower of Types.node_id option
  | Leader_activity
  | Reject_command of 'cmd

type 'cmd input =
  | Receive of 'cmd Types.message
  | Election_timeout
  | Heartbeat_timeout
  | Client_command of 'cmd
  | Applied_up_to of int
  | Announce_kick

type obs_event =
  | Obs_election_started of Types.term
  | Obs_leadership_won of Types.term
  | Obs_leadership_lost of Types.term
  | Obs_commit_advanced of int
  | Obs_announced_to of int
  | Obs_announce_gated of int

type 'cmd t = {
  cfg : config;
  noop : 'cmd;
  log : 'cmd Log.t;
  slots : (Types.node_id, int) Hashtbl.t;
  mutable term : Types.term;
  mutable role : role;
  mutable voted_for : Types.node_id option;
  mutable leader_hint : Types.node_id option;
  mutable commit : int;
  mutable applied : int;
  mutable verified : int;
      (* Follower: highest index confirmed to match the current leader's
         log via an accepted append_entries; bounds Commit_to advances. *)
  votes : bool array;
  next_idx : int array;
  match_idx : int array;
  applied_of : int array;
  in_flight : bool array;
  direct : bool array;
  mutable announced : int;
  mutable ae_seq : int;
  sent_seq : int array;  (* last append_entries seq sent per peer *)
  mutable gate : (int -> 'cmd -> bool) option;
  mutable observer : (obs_event -> unit) option;
  mutable use_agg : bool;
  mutable agg_in_flight : bool;
  mutable agg_next : int;
  mutable agg_pending_end : int;
}

let create cfg ~noop =
  if cfg.batch_max < 1 then invalid_arg "Node.create: batch_max must be >= 1";
  let n = Array.length cfg.peers in
  let slots = Hashtbl.create (max n 1) in
  Array.iteri (fun i p -> Hashtbl.replace slots p i) cfg.peers;
  {
    cfg;
    noop;
    log = Log.create ();
    slots;
    term = 0;
    role = Follower;
    voted_for = None;
    leader_hint = None;
    commit = 0;
    applied = 0;
    verified = 0;
    votes = Array.make (max n 1) false;
    next_idx = Array.make (max n 1) 1;
    match_idx = Array.make (max n 1) 0;
    applied_of = Array.make (max n 1) 0;
    in_flight = Array.make (max n 1) false;
    direct = Array.make (max n 1) false;
    announced = 0;
    ae_seq = 0;
    sent_seq = Array.make (max n 1) (-1);
    gate = None;
    observer = None;
    use_agg = false;
    agg_in_flight = false;
    agg_next = 1;
    agg_pending_end = 0;
  }

let id t = t.cfg.id
let role t = t.role
let term t = t.term
let leader_hint t = t.leader_hint
let log t = t.log
let commit_index t = t.commit
let applied_index t = t.applied
let announced_index t = t.announced
let voted_for t = t.voted_for
let cluster_size t = Array.length t.cfg.peers + 1
let quorum t = (cluster_size t / 2) + 1
let slot t p = Hashtbl.find t.slots p
let applied_index_of t p = t.applied_of.(slot t p)
let match_index_of t p = t.match_idx.(slot t p)
let set_announce_gate t g = t.gate <- g
let set_observer t f = t.observer <- f
let notify t e = match t.observer with Some f -> f e | None -> ()

let set_aggregated t flag =
  t.use_agg <- flag;
  if flag then begin
    t.agg_in_flight <- false;
    t.agg_next <- t.announced + 1;
    t.agg_pending_end <- t.announced
  end

let aggregated t = t.use_agg

(* --- internal helpers; [emit] appends to the (reversed) action list --- *)

let become_follower t ~term ~leader emit =
  let was = t.role in
  if term > t.term then begin
    t.term <- term;
    t.voted_for <- None;
    t.verified <- 0
  end;
  t.role <- Follower;
  t.leader_hint <- leader;
  t.use_agg <- false;
  t.agg_in_flight <- false;
  if was = Leader then notify t (Obs_leadership_lost t.term);
  if was <> Follower then emit (Became_follower leader)

let extend_announced t =
  if t.role = Leader then begin
    let before = t.announced in
    let stop = ref false in
    while (not !stop) && t.announced < Log.last_index t.log do
      let i = t.announced + 1 in
      let ok =
        match t.gate with
        | None -> true
        | Some g -> g i (Log.get t.log i).Types.cmd
      in
      if ok then t.announced <- i
      else begin
        notify t (Obs_announce_gated i);
        stop := true
      end
    done;
    if t.announced > before then notify t (Obs_announced_to t.announced)
  end

let next_seq t =
  t.ae_seq <- t.ae_seq + 1;
  t.ae_seq

let make_append_entries t ~lo ~hi ~seq =
  let entries = Log.slice t.log ~lo ~hi in
  let prev_idx = lo - 1 in
  let prev_term =
    match Log.term_at t.log prev_idx with
    | Some tm -> tm
    | None -> invalid_arg "make_append_entries: prev index beyond log"
  in
  Types.Append_entries
    {
      term = t.term;
      leader = t.cfg.id;
      prev_idx;
      prev_term;
      entries;
      commit = t.commit;
      seq;
    }

let replicate_slot t ~force s emit =
  if (not t.in_flight.(s)) || force then begin
    let nx = t.next_idx.(s) in
    let hi = min t.announced (nx + t.cfg.batch_max - 1) in
    if hi >= nx || force then begin
      let hi = max hi (nx - 1) in
      let seq = next_seq t in
      t.sent_seq.(s) <- seq;
      emit (Send (t.cfg.peers.(s), make_append_entries t ~lo:nx ~hi ~seq));
      t.in_flight.(s) <- true
    end
  end

let replicate_agg t ~force emit =
  if (not t.agg_in_flight) || force then begin
    let nx = t.agg_next in
    let hi = min t.announced (nx + t.cfg.batch_max - 1) in
    if hi >= nx || force then begin
      let hi = max hi (nx - 1) in
      emit (Send_aggregate (make_append_entries t ~lo:nx ~hi ~seq:(next_seq t)));
      t.agg_in_flight <- true;
      t.agg_pending_end <- hi
    end
  end

let replicate t ~force emit =
  if t.role = Leader then begin
    extend_announced t;
    if t.use_agg then begin
      replicate_agg t ~force emit;
      (* Peers in point-to-point recovery are served directly (§5). *)
      Array.iteri (fun s d -> if d then replicate_slot t ~force s emit) t.direct
    end
    else
      for s = 0 to Array.length t.cfg.peers - 1 do
        replicate_slot t ~force s emit
      done
  end

let set_commit t c emit =
  if c > t.commit then begin
    t.commit <- c;
    notify t (Obs_commit_advanced c);
    emit (Commit_advanced c)
  end

let broadcast_commit_hint t emit =
  if t.cfg.eager_commit_notify then
    Array.iter
      (fun p -> emit (Send (p, Types.Commit_to { term = t.term; commit = t.commit })))
      t.cfg.peers

let try_advance_commit t emit =
  if t.role = Leader then begin
    let hi = min t.announced (Log.last_index t.log) in
    let found = ref 0 in
    let i = ref hi in
    while !found = 0 && !i > t.commit do
      if Log.term_at t.log !i = Some t.term then begin
        let count = ref 1 in
        Array.iter (fun m -> if m >= !i then incr count) t.match_idx;
        if !count >= quorum t then found := !i
      end;
      decr i
    done;
    if !found > 0 then begin
      set_commit t !found emit;
      broadcast_commit_hint t emit
    end
  end

let become_leader t emit =
  t.role <- Leader;
  t.leader_hint <- Some t.cfg.id;
  t.use_agg <- false;
  t.agg_in_flight <- false;
  let last = Log.last_index t.log in
  Array.fill t.next_idx 0 (Array.length t.next_idx) (last + 1);
  Array.fill t.match_idx 0 (Array.length t.match_idx) 0;
  Array.fill t.applied_of 0 (Array.length t.applied_of) 0;
  Array.fill t.in_flight 0 (Array.length t.in_flight) false;
  Array.fill t.direct 0 (Array.length t.direct) false;
  (* Entries inherited from previous terms were announced by their leader;
     only entries appended from here on pass through the gate. *)
  t.announced <- last;
  ignore (Log.append t.log { Types.term = t.term; cmd = t.noop });
  notify t (Obs_leadership_won t.term);
  emit Became_leader;
  replicate t ~force:true emit;
  (* Single-node clusters commit immediately. *)
  try_advance_commit t emit

let start_election t emit =
  t.term <- t.term + 1;
  t.role <- Candidate;
  t.voted_for <- Some t.cfg.id;
  t.leader_hint <- None;
  t.verified <- 0;
  t.use_agg <- false;
  notify t (Obs_election_started t.term);
  Array.fill t.votes 0 (Array.length t.votes) false;
  if quorum t = 1 then become_leader t emit
  else
    Array.iter
      (fun p ->
        emit
          (Send
             ( p,
               Types.Request_vote
                 {
                   term = t.term;
                   candidate = t.cfg.id;
                   last_idx = Log.last_index t.log;
                   last_term = Log.last_term t.log;
                 } )))
      t.cfg.peers

(* --- message handlers --- *)

let on_request_vote t ~term ~candidate ~last_idx ~last_term emit =
  if term < t.term then
    emit (Send (candidate, Types.Vote { term = t.term; from = t.cfg.id; granted = false }))
  else begin
    let up_to_date =
      last_term > Log.last_term t.log
      || (last_term = Log.last_term t.log && last_idx >= Log.last_index t.log)
    in
    let granted =
      up_to_date
      &&
      match t.voted_for with None -> true | Some v -> v = candidate
    in
    if granted then begin
      t.voted_for <- Some candidate;
      emit Leader_activity
    end;
    emit (Send (candidate, Types.Vote { term = t.term; from = t.cfg.id; granted }))
  end

let on_vote t ~term ~from ~granted emit =
  if t.role = Candidate && term = t.term && granted then begin
    t.votes.(slot t from) <- true;
    let count = ref 1 in
    Array.iter (fun v -> if v then incr count) t.votes;
    if !count >= quorum t then become_leader t emit
  end

let on_append_entries t ~term ~leader ~prev_idx ~prev_term ~entries ~commit ~seq emit =
  if term < t.term then
    emit
      (Send
         ( leader,
           Types.Append_ack
             {
               term = t.term;
               from = t.cfg.id;
               success = false;
               seq;
               match_idx = 0;
               applied_idx = t.applied;
             } ))
  else begin
    if t.role <> Follower then become_follower t ~term ~leader:(Some leader) emit;
    t.leader_hint <- Some leader;
    emit Leader_activity;
    (* A prev point inside our compacted prefix is below our applied index:
       those entries are committed and immutable, so the check passes and
       the overlapping entries are skipped below. *)
    let ok =
      prev_idx < Log.base t.log || Log.term_at t.log prev_idx = Some prev_term
    in
    if not ok then begin
      (* Conflict hint: skip a whole divergent term in one round trip. *)
      let hint =
        if prev_idx > Log.last_index t.log then Log.last_index t.log + 1
        else if prev_idx > Log.base t.log then
          Log.first_index_of_term_at t.log prev_idx
        else 1
      in
      emit
        (Send
           ( leader,
             Types.Append_ack
               {
                 term = t.term;
                 from = t.cfg.id;
                 success = false;
                 seq;
                 match_idx = hint;
                 applied_idx = t.applied;
               } ))
    end
    else begin
      Array.iteri
        (fun i e ->
          let idx = prev_idx + 1 + i in
          if
            idx > Log.base t.log
            && Log.term_at t.log idx <> Some e.Types.term
          then begin
            if idx <= Log.last_index t.log then Log.truncate_from t.log idx;
            ignore (Log.append t.log e)
          end)
        entries;
      let new_match = prev_idx + Array.length entries in
      t.verified <- max t.verified new_match;
      set_commit t (min commit t.verified) emit;
      emit
        (Send
           ( leader,
             Types.Append_ack
               {
                 term = t.term;
                 from = t.cfg.id;
                 success = true;
                 seq;
                 match_idx = new_match;
                 applied_idx = t.applied;
               } ))
    end
  end

let on_append_ack t ~term ~from ~success ~seq ~match_idx ~applied_idx emit =
  if t.role = Leader && term = t.term then begin
    let s = slot t from in
    t.applied_of.(s) <- max t.applied_of.(s) applied_idx;
    (* Only acks of the latest transmission drive pacing; acks of
       superseded (retransmitted) sends still contribute their match and
       applied knowledge but must not spawn extra in-flight streams. The
       sequence counter is global, so an ack with a NEWER seq than the
       peer's last point-to-point send is the peer responding to an
       aggregator-fanned append_entries (HovercRaft++) — that one is
       authoritative too, notably the failure acks that start direct
       recovery (§5). *)
    let current = seq >= t.sent_seq.(s) in
    if current then begin
      t.sent_seq.(s) <- seq;
      t.in_flight.(s) <- false
    end;
    if success then begin
      t.match_idx.(s) <- max t.match_idx.(s) match_idx;
      t.next_idx.(s) <- max t.next_idx.(s) (t.match_idx.(s) + 1);
      if t.use_agg && t.direct.(s) && t.match_idx.(s) >= Log.last_index t.log
      then t.direct.(s) <- false;
      try_advance_commit t emit;
      if current then replicate t ~force:false emit
    end
    else if current then begin
      let bounded = min match_idx (t.next_idx.(s) - 1) in
      t.next_idx.(s) <- max 1 (min bounded (Log.last_index t.log + 1));
      if t.use_agg then t.direct.(s) <- true;
      replicate_slot t ~force:true s emit
    end
  end

let on_commit_to t ~term ~commit emit =
  if term = t.term && t.role = Follower then begin
    emit Leader_activity;
    set_commit t (min commit t.verified) emit
  end

let on_agg_ack t ~term ~commit emit =
  if t.role = Leader && term = t.term && t.use_agg then begin
    t.agg_in_flight <- false;
    t.agg_next <- max t.agg_next (t.agg_pending_end + 1);
    set_commit t (min commit t.announced) emit;
    replicate t ~force:false emit
  end

let handle t input =
  let acc = ref [] in
  let emit a = acc := a :: !acc in
  (match input with
  | Receive msg ->
      let mterm = Types.message_term msg in
      if mterm > t.term then begin
        let leader =
          match msg with
          | Types.Append_entries { leader; _ } -> Some leader
          | Types.Request_vote _ | Types.Vote _ | Types.Append_ack _
          | Types.Commit_to _ | Types.Agg_ack _ ->
              None
        in
        become_follower t ~term:mterm ~leader emit
      end;
      (match msg with
      | Types.Request_vote { term; candidate; last_idx; last_term } ->
          on_request_vote t ~term ~candidate ~last_idx ~last_term emit
      | Types.Vote { term; from; granted } -> on_vote t ~term ~from ~granted emit
      | Types.Append_entries
          { term; leader; prev_idx; prev_term; entries; commit; seq } ->
          on_append_entries t ~term ~leader ~prev_idx ~prev_term ~entries ~commit
            ~seq emit
      | Types.Append_ack { term; from; success; seq; match_idx; applied_idx } ->
          on_append_ack t ~term ~from ~success ~seq ~match_idx ~applied_idx emit
      | Types.Commit_to { term; commit } -> on_commit_to t ~term ~commit emit
      | Types.Agg_ack { term; commit } -> on_agg_ack t ~term ~commit emit)
  | Election_timeout -> if t.role <> Leader then start_election t emit
  | Heartbeat_timeout -> if t.role = Leader then replicate t ~force:true emit
  | Client_command cmd ->
      if t.role = Leader then begin
        let idx = Log.append t.log { Types.term = t.term; cmd } in
        emit (Appended idx);
        replicate t ~force:false emit;
        (* A single-node cluster has no acks to drive the commit rule. *)
        if quorum t = 1 then try_advance_commit t emit
      end
      else emit (Reject_command cmd)
  | Applied_up_to i ->
      t.applied <- max t.applied (min i t.commit);
      if t.role = Leader then replicate t ~force:false emit
  | Announce_kick ->
      (* The embedder learned that a previously ineligible replier queue
         drained: re-evaluate the announce gate now instead of waiting for
         the next heartbeat. *)
      if t.role = Leader then replicate t ~force:false emit);
  List.rev !acc

(* --- log compaction --- *)

(* The highest index that is safe to discard: everything at or below it
   has been applied locally and (on a leader) is known replicated on every
   follower, so no retransmission, conflict back-off or recovery path can
   ever need it again. A crashed follower pins the leader's bound — full
   Raft resolves that with InstallSnapshot, which is out of scope for the
   crash-stop failure model here. *)
let compaction_bound t =
  if t.role = Leader then Array.fold_left min t.applied t.match_idx
  else t.applied

let compact t ~retain =
  if retain < 0 then invalid_arg "Node.compact: negative retention";
  let target = min (compaction_bound t) (Log.last_index t.log - retain) in
  if target > Log.base t.log then Log.compact_to t.log target;
  Log.base t.log

(* --- snapshot / restore (for the model checker) --- *)

type 'cmd dump = {
  d_term : Types.term;
  d_role : role;
  d_voted_for : Types.node_id option;
  d_leader_hint : Types.node_id option;
  d_commit : int;
  d_applied : int;
  d_verified : int;
  d_entries : 'cmd Types.entry list;
  d_votes : bool list;
  d_next : int list;
  d_match : int list;
  d_applied_of : int list;
  d_in_flight : bool list;
  d_direct : bool list;
  d_announced : int;
  d_ae_seq : int;
  d_sent_seq : int list;
  d_use_agg : bool;
  d_agg_in_flight : bool;
  d_agg_next : int;
  d_agg_pending_end : int;
}

let dump t =
  {
    d_term = t.term;
    d_role = t.role;
    d_voted_for = t.voted_for;
    d_leader_hint = t.leader_hint;
    d_commit = t.commit;
    d_applied = t.applied;
    d_verified = t.verified;
    d_entries =
      (if Log.base t.log <> 0 then
         invalid_arg "Node.dump: compacted logs are not dumpable";
       Array.to_list (Log.slice t.log ~lo:1 ~hi:(Log.last_index t.log)));
    d_votes = Array.to_list t.votes;
    d_next = Array.to_list t.next_idx;
    d_match = Array.to_list t.match_idx;
    d_applied_of = Array.to_list t.applied_of;
    d_in_flight = Array.to_list t.in_flight;
    d_direct = Array.to_list t.direct;
    d_announced = t.announced;
    d_ae_seq = t.ae_seq;
    d_sent_seq = Array.to_list t.sent_seq;
    d_use_agg = t.use_agg;
    d_agg_in_flight = t.agg_in_flight;
    d_agg_next = t.agg_next;
    d_agg_pending_end = t.agg_pending_end;
  }

let restore cfg ~noop d =
  let t = create cfg ~noop in
  t.term <- d.d_term;
  t.role <- d.d_role;
  t.voted_for <- d.d_voted_for;
  t.leader_hint <- d.d_leader_hint;
  t.commit <- d.d_commit;
  t.applied <- d.d_applied;
  t.verified <- d.d_verified;
  List.iter (fun e -> ignore (Log.append t.log e)) d.d_entries;
  let fill dst l = List.iteri (fun i v -> dst.(i) <- v) l in
  fill t.votes d.d_votes;
  fill t.next_idx d.d_next;
  fill t.match_idx d.d_match;
  fill t.applied_of d.d_applied_of;
  fill t.in_flight d.d_in_flight;
  fill t.direct d.d_direct;
  t.announced <- d.d_announced;
  t.ae_seq <- d.d_ae_seq;
  fill t.sent_seq d.d_sent_seq;
  t.use_agg <- d.d_use_agg;
  t.agg_in_flight <- d.d_agg_in_flight;
  t.agg_next <- d.d_agg_next;
  t.agg_pending_end <- d.d_agg_pending_end;
  t

let compare_dump = Stdlib.compare

(* --- crash recovery --- *)

(* Simulated-crash semantics (see DESIGN.md): term, vote and the log are
   persistent, and the state machine is durable up to [applied] (the apply
   loop checkpoints synchronously). Everything else — commit knowledge
   beyond the applied prefix, leadership, per-peer replication state, the
   aggregated fast path — is volatile and rebuilt after rejoin. Applied
   entries are committed, so flooring [commit] and [verified] at [applied]
   is safe: by leader completeness every future leader carries them. *)
let recover t =
  t.role <- Follower;
  t.leader_hint <- None;
  t.commit <- t.applied;
  t.verified <- t.applied;
  t.gate <- None;
  t.use_agg <- false;
  t.agg_in_flight <- false;
  t.agg_next <- 1;
  t.agg_pending_end <- 0;
  t.announced <- 0;
  Array.fill t.votes 0 (Array.length t.votes) false;
  Array.fill t.next_idx 0 (Array.length t.next_idx) (Log.last_index t.log + 1);
  Array.fill t.match_idx 0 (Array.length t.match_idx) 0;
  Array.fill t.applied_of 0 (Array.length t.applied_of) 0;
  Array.fill t.in_flight 0 (Array.length t.in_flight) false;
  Array.fill t.direct 0 (Array.length t.direct) false;
  Array.fill t.sent_seq 0 (Array.length t.sent_seq) (-1)

type 'cmd dump_info = {
  i_term : Types.term;
  i_role : role;
  i_commit : int;
  i_entries : 'cmd Types.entry list;
}

let dump_info d =
  { i_term = d.d_term; i_role = d.d_role; i_commit = d.d_commit; i_entries = d.d_entries }
