type role = Follower | Candidate | Leader

let pp_role fmt = function
  | Follower -> Format.pp_print_string fmt "follower"
  | Candidate -> Format.pp_print_string fmt "candidate"
  | Leader -> Format.pp_print_string fmt "leader"

type config = {
  id : Types.node_id;
  peers : Types.node_id array;
  batch_max : int;
  eager_commit_notify : bool;
  snap_chunk_bytes : int;
}

type ('cmd, 'snap) action =
  | Send of Types.node_id * ('cmd, 'snap) Types.message
  | Send_aggregate of ('cmd, 'snap) Types.message
  | Commit_advanced of int
  | Appended of int
  | Became_leader
  | Became_follower of Types.node_id option
  | Leader_activity
  | Reject_command of 'cmd
  | Snapshot_installed of 'snap Snapshot.meta

type ('cmd, 'snap) input =
  | Receive of ('cmd, 'snap) Types.message
  | Election_timeout
  | Heartbeat_timeout
  | Client_command of 'cmd
  | Applied_up_to of int
  | Announce_kick
  | Transfer_leadership of Types.node_id

type obs_event =
  | Obs_election_started of Types.term
  | Obs_leadership_won of Types.term
  | Obs_leadership_lost of Types.term
  | Obs_commit_advanced of int
  | Obs_announced_to of int
  | Obs_announce_gated of int
  | Obs_config_changed of int * Types.node_id list
  | Obs_transfer_sent of Types.node_id
  | Obs_snapshot_taken of int
  | Obs_install_started of Types.node_id * int
  | Obs_install_completed of Types.node_id * int

(* Leader-side replication state for one peer. Peers come and go with the
   cluster configuration, so this lives in a table keyed by node id rather
   than in fixed arrays sized at creation. *)
type peer = {
  mutable p_vote : bool;
  mutable p_next : int;
  mutable p_match : int;
  mutable p_applied : int;
  mutable p_in_flight : bool;
  mutable p_direct : bool;
  mutable p_sent_seq : int;  (* last append_entries seq sent to this peer *)
  mutable p_snap : int option;
      (* Snapshot transfer in progress: byte offset of the next chunk to
         send. Shares the seq/in-flight pacing with append_entries — one
         chunk in flight, heartbeats retransmit the unacked chunk. *)
}

type ('cmd, 'snap) t = {
  cfg : config;
  noop : 'cmd;
  log : 'cmd Log.t;
  peers_tbl : (Types.node_id, peer) Hashtbl.t;
  mutable configs : (int * Types.node_id list) list;
      (* Membership history as a stack of (config entry index, members),
         newest first; the bottom element is (0, bootstrap members). The
         head is the *current* configuration — effective from the moment
         its entry is appended (Raft §4, single-server changes). Entries
         above the commit index can still be truncated away by a new
         leader, which pops the stack back. The stack is persistent state:
         it is derivable from the log plus the bootstrap config, so a
         crash-restart keeps it (see [recover]). *)
  mutable decoder : 'cmd -> Types.node_id array option;
      (* Recognizes configuration entries inside the opaque command type.
         Default: none (static membership, the pre-reconfiguration
         behavior — the model checker and the pure-Raft tests run so). *)
  mutable transfer_target : Types.node_id option;
  mutable term : Types.term;
  mutable role : role;
  mutable voted_for : Types.node_id option;
  mutable leader_hint : Types.node_id option;
  mutable commit : int;
  mutable applied : int;
  mutable verified : int;
      (* Follower: highest index confirmed to match the current leader's
         log via an accepted append_entries; bounds Commit_to advances. *)
  mutable announced : int;
  mutable ae_seq : int;
  mutable gate : (int -> 'cmd -> bool) option;
  mutable observer : (obs_event -> unit) option;
  mutable use_agg : bool;
  mutable agg_in_flight : bool;
  mutable agg_next : int;
  mutable agg_pending_end : int;
  mutable snapshot : 'snap Snapshot.meta option;
      (* Latest state-machine checkpoint, set by the embedder
         ([set_snapshot]) or received via Install_snapshot. Persistent:
         it is the durable applied-prefix image, so a crash-restart keeps
         it (see [recover]). *)
  mutable incoming : 'snap Snapshot.progress option;
      (* Chunked install in progress from the current leader. Volatile. *)
}

let fresh_peer ?(next = 1) () =
  {
    p_vote = false;
    p_next = next;
    p_match = 0;
    p_applied = 0;
    p_in_flight = false;
    p_direct = false;
    p_sent_seq = -1;
    p_snap = None;
  }

let create cfg ~noop =
  if cfg.batch_max < 1 then invalid_arg "Node.create: batch_max must be >= 1";
  if cfg.snap_chunk_bytes < 1 then
    invalid_arg "Node.create: snap_chunk_bytes must be >= 1";
  let members =
    List.sort_uniq compare (cfg.id :: Array.to_list cfg.peers)
  in
  let peers_tbl = Hashtbl.create (max (Array.length cfg.peers) 1) in
  Array.iter (fun p -> Hashtbl.replace peers_tbl p (fresh_peer ())) cfg.peers;
  {
    cfg;
    noop;
    log = Log.create ();
    peers_tbl;
    configs = [ (0, members) ];
    decoder = (fun _ -> None);
    transfer_target = None;
    term = 0;
    role = Follower;
    voted_for = None;
    leader_hint = None;
    commit = 0;
    applied = 0;
    verified = 0;
    announced = 0;
    ae_seq = 0;
    gate = None;
    observer = None;
    use_agg = false;
    agg_in_flight = false;
    agg_next = 1;
    agg_pending_end = 0;
    snapshot = None;
    incoming = None;
  }

let id t = t.cfg.id
let role t = t.role
let term t = t.term
let leader_hint t = t.leader_hint
let log t = t.log
let commit_index t = t.commit
let applied_index t = t.applied
let announced_index t = t.announced
let voted_for t = t.voted_for
let members t = match t.configs with (_, m) :: _ -> m | [] -> []
let config_index t = match t.configs with (i, _) :: _ -> i | [] -> 0
let is_member t n = List.mem n (members t)
let cluster_size t = List.length (members t)
let quorum t = (cluster_size t / 2) + 1
let transfer_target t = t.transfer_target

(* Current peers: members other than self. A removed-but-still-leading
   node (self outside the config, finishing the removal entry's commit)
   replicates to every member. *)
let current_peers t =
  List.filter (fun m -> m <> t.cfg.id) (members t)

let peer_opt t p = Hashtbl.find_opt t.peers_tbl p

let ensure_peer t p =
  match Hashtbl.find_opt t.peers_tbl p with
  | Some st -> st
  | None ->
      let st = fresh_peer ~next:(Log.last_index t.log + 1) () in
      Hashtbl.replace t.peers_tbl p st;
      st

let applied_index_of t p =
  match peer_opt t p with Some st -> st.p_applied | None -> 0

let match_index_of t p =
  match peer_opt t p with Some st -> st.p_match | None -> 0

let set_announce_gate t g = t.gate <- g
let set_observer t f = t.observer <- f
let notify t e = match t.observer with Some f -> f e | None -> ()
let set_config_decoder t d = t.decoder <- d

let set_aggregated t flag =
  t.use_agg <- flag;
  if flag then begin
    t.agg_in_flight <- false;
    t.agg_next <- t.announced + 1;
    t.agg_pending_end <- t.announced
  end

let aggregated t = t.use_agg
let snapshot t = t.snapshot

let snapshot_index t =
  match t.snapshot with Some s -> s.Snapshot.last_idx | None -> 0

(* The embedder checkpointed its state machine: remember the newest image
   so compaction can discard the covered prefix and lagging followers can
   be served the image instead of replayed entries. *)
let set_snapshot t snap =
  if snap.Snapshot.last_idx > t.applied then
    invalid_arg "Node.set_snapshot: snapshot beyond the applied index";
  match t.snapshot with
  | Some cur when cur.Snapshot.last_idx >= snap.Snapshot.last_idx -> ()
  | Some _ | None ->
      t.snapshot <- Some snap;
      notify t (Obs_snapshot_taken snap.Snapshot.last_idx)

(* --- configuration bookkeeping ------------------------------------- *)

(* Drop table entries of departed nodes (a re-added node starts fresh) and
   make sure every current peer has replication state. *)
let sync_peers t =
  let ms = members t in
  let stale =
    Hashtbl.fold
      (fun p _ acc -> if List.mem p ms then acc else p :: acc)
      t.peers_tbl []
  in
  List.iter (Hashtbl.remove t.peers_tbl) stale;
  List.iter (fun m -> ignore (ensure_peer t m)) (current_peers t)

(* A configuration entry just landed in the log at [idx]: it governs from
   now on. On a leader the aggregated fast path is stale (its quorum and
   fan-out group are for the old membership), so drop to per-peer
   replication; the embedder re-probes once the entry commits. *)
let apply_config t ~idx ms =
  let ms = List.sort_uniq compare (Array.to_list ms) in
  t.configs <- (idx, ms) :: t.configs;
  sync_peers t;
  if t.role = Leader then begin
    t.use_agg <- false;
    t.agg_in_flight <- false
  end;
  notify t (Obs_config_changed (idx, ms))

(* Entries from [from] on were truncated by a conflicting append: any
   configuration they carried rolls back with them. *)
let rollback_configs t ~from =
  let rec pop = function
    | (ci, _) :: (_ :: _ as rest) when ci >= from -> pop rest
    | stack -> stack
  in
  let stack' = pop t.configs in
  if stack' != t.configs then begin
    t.configs <- stack';
    sync_peers t;
    notify t (Obs_config_changed (config_index t, members t))
  end

let note_appended_entry t ~idx cmd =
  match t.decoder cmd with
  | Some ms -> apply_config t ~idx ms
  | None -> ()

(* Single-server rule: each config entry adds or removes at most one
   node, and only one change may be in flight (uncommitted) at a time. *)
let config_change_allowed t ms =
  let proposed = List.sort_uniq compare (Array.to_list ms) in
  let current = members t in
  let added = List.filter (fun m -> not (List.mem m current)) proposed in
  let removed = List.filter (fun m -> not (List.mem m proposed)) current in
  config_index t <= t.commit
  && List.length added + List.length removed = 1
  && proposed <> []

(* --- internal helpers; [emit] appends to the (reversed) action list --- *)

let become_follower t ~term ~leader emit =
  let was = t.role in
  if term > t.term then begin
    t.term <- term;
    t.voted_for <- None;
    t.verified <- 0
  end;
  t.role <- Follower;
  t.leader_hint <- leader;
  t.use_agg <- false;
  t.agg_in_flight <- false;
  t.transfer_target <- None;
  if was = Leader then notify t (Obs_leadership_lost t.term);
  if was <> Follower then emit (Became_follower leader)

let extend_announced t =
  if t.role = Leader then begin
    let before = t.announced in
    let stop = ref false in
    while (not !stop) && t.announced < Log.last_index t.log do
      let i = t.announced + 1 in
      let ok =
        match t.gate with
        | None -> true
        | Some g -> g i (Log.get t.log i).Types.cmd
      in
      if ok then t.announced <- i
      else begin
        notify t (Obs_announce_gated i);
        stop := true
      end
    done;
    if t.announced > before then notify t (Obs_announced_to t.announced)
  end

let next_seq t =
  t.ae_seq <- t.ae_seq + 1;
  t.ae_seq

let make_append_entries t ~lo ~hi ~seq =
  let entries = Log.slice t.log ~lo ~hi in
  let prev_idx = lo - 1 in
  let prev_term =
    match Log.term_at t.log prev_idx with
    | Some tm -> tm
    | None -> invalid_arg "make_append_entries: prev index beyond log"
  in
  Types.Append_entries
    {
      term = t.term;
      leader = t.cfg.id;
      prev_idx;
      prev_term;
      entries;
      commit = t.commit;
      seq;
    }

(* A follower is served the snapshot image instead of entries when entry
   replay is impossible (its next_index fell below the log base — the
   entries it needs were compacted away) or pointless (its log is empty:
   the conflict hint told us to start from 1, which is how a freshly
   added node announces itself — §4.4 catch-up ships the checkpoint, not
   history). A transfer in progress continues until acked complete. *)
let needs_snapshot t st =
  match t.snapshot with
  | None -> false
  | Some snap ->
      st.p_snap <> None
      || st.p_next <= Log.base t.log
      || (st.p_match = 0 && st.p_next <= 1 && snap.Snapshot.last_idx > 0)

let send_snapshot t ~force p st emit =
  match t.snapshot with
  | None -> ()
  | Some snap ->
      if (not st.p_in_flight) || force then begin
        let offset =
          match st.p_snap with
          | Some o when o <= snap.Snapshot.size -> o
          | Some _ (* superseded by a smaller image: restart *) | None ->
              notify t (Obs_install_started (p, snap.Snapshot.last_idx));
              0
        in
        st.p_snap <- Some offset;
        let chunk_bytes = t.cfg.snap_chunk_bytes in
        let len = Snapshot.chunk_len snap ~chunk_bytes ~offset in
        let last = Snapshot.is_last snap ~chunk_bytes ~offset in
        let seq = next_seq t in
        st.p_sent_seq <- seq;
        st.p_in_flight <- true;
        emit
          (Send
             ( p,
               Types.Install_snapshot
                 { term = t.term; leader = t.cfg.id; snap; offset; len; last; seq }
             ))
      end

let replicate_peer t ~force p st emit =
  if needs_snapshot t st then send_snapshot t ~force p st emit
  else if (not st.p_in_flight) || force then begin
    let nx = st.p_next in
    let hi = min t.announced (nx + t.cfg.batch_max - 1) in
    if hi >= nx || force then begin
      let hi = max hi (nx - 1) in
      let seq = next_seq t in
      st.p_sent_seq <- seq;
      emit (Send (p, make_append_entries t ~lo:nx ~hi ~seq));
      st.p_in_flight <- true
    end
  end

let replicate_agg t ~force emit =
  if (not t.agg_in_flight) || force then begin
    let nx = t.agg_next in
    let hi = min t.announced (nx + t.cfg.batch_max - 1) in
    if hi >= nx || force then begin
      let hi = max hi (nx - 1) in
      emit (Send_aggregate (make_append_entries t ~lo:nx ~hi ~seq:(next_seq t)));
      t.agg_in_flight <- true;
      t.agg_pending_end <- hi
    end
  end

let replicate t ~force emit =
  if t.role = Leader then begin
    extend_announced t;
    if t.use_agg then begin
      replicate_agg t ~force emit;
      (* Peers in point-to-point recovery are served directly (§5). *)
      List.iter
        (fun p ->
          match peer_opt t p with
          | Some st when st.p_direct -> replicate_peer t ~force p st emit
          | Some _ | None -> ())
        (current_peers t)
    end
    else
      List.iter
        (fun p -> replicate_peer t ~force p (ensure_peer t p) emit)
        (current_peers t)
  end

(* A leader that removed itself keeps driving replication until the
   removal entry commits, then steps aside (Raft §4.2.2). *)
let maybe_step_down t emit =
  if t.role = Leader && t.commit >= config_index t && not (is_member t t.cfg.id)
  then become_follower t ~term:t.term ~leader:None emit

let set_commit t c emit =
  if c > t.commit then begin
    t.commit <- c;
    notify t (Obs_commit_advanced c);
    emit (Commit_advanced c);
    maybe_step_down t emit
  end

let broadcast_commit_hint t emit =
  if t.cfg.eager_commit_notify then
    List.iter
      (fun p -> emit (Send (p, Types.Commit_to { term = t.term; commit = t.commit })))
      (current_peers t)

let try_advance_commit t emit =
  if t.role = Leader then begin
    let hi = min t.announced (Log.last_index t.log) in
    let found = ref 0 in
    let i = ref hi in
    while !found = 0 && !i > t.commit do
      if Log.term_at t.log !i = Some t.term then begin
        (* Majority of the *current* configuration; self counts only
           while still a member. *)
        let count = ref (if is_member t t.cfg.id then 1 else 0) in
        List.iter
          (fun p ->
            match peer_opt t p with
            | Some st when st.p_match >= !i -> incr count
            | Some _ | None -> ())
          (current_peers t);
        if !count >= quorum t then found := !i
      end;
      decr i
    done;
    if !found > 0 then begin
      set_commit t !found emit;
      broadcast_commit_hint t emit
    end
  end

let finish_transfer t target emit =
  t.transfer_target <- None;
  emit (Send (target, Types.Timeout_now { term = t.term }));
  notify t (Obs_transfer_sent target)

let become_leader t emit =
  t.role <- Leader;
  t.leader_hint <- Some t.cfg.id;
  t.use_agg <- false;
  t.agg_in_flight <- false;
  t.transfer_target <- None;
  let last = Log.last_index t.log in
  Hashtbl.reset t.peers_tbl;
  List.iter
    (fun p -> Hashtbl.replace t.peers_tbl p (fresh_peer ~next:(last + 1) ()))
    (current_peers t);
  (* Entries inherited from previous terms were announced by their leader;
     only entries appended from here on pass through the gate. *)
  t.announced <- last;
  ignore (Log.append t.log { Types.term = t.term; cmd = t.noop });
  notify t (Obs_leadership_won t.term);
  emit Became_leader;
  replicate t ~force:true emit;
  (* Single-node clusters commit immediately. *)
  try_advance_commit t emit

let start_election t emit =
  if is_member t t.cfg.id then begin
    t.term <- t.term + 1;
    t.role <- Candidate;
    t.voted_for <- Some t.cfg.id;
    t.leader_hint <- None;
    t.verified <- 0;
    t.use_agg <- false;
    t.transfer_target <- None;
    notify t (Obs_election_started t.term);
    Hashtbl.iter (fun _ st -> st.p_vote <- false) t.peers_tbl;
    if quorum t = 1 then become_leader t emit
    else
      List.iter
        (fun p ->
          ignore (ensure_peer t p);
          emit
            (Send
               ( p,
                 Types.Request_vote
                   {
                     term = t.term;
                     candidate = t.cfg.id;
                     last_idx = Log.last_index t.log;
                     last_term = Log.last_term t.log;
                   } )))
        (current_peers t)
  end

(* --- message handlers --- *)

let on_request_vote t ~term ~candidate ~last_idx ~last_term emit =
  if term < t.term || not (is_member t candidate) then
    emit (Send (candidate, Types.Vote { term = t.term; from = t.cfg.id; granted = false }))
  else begin
    let up_to_date =
      last_term > Log.last_term t.log
      || (last_term = Log.last_term t.log && last_idx >= Log.last_index t.log)
    in
    let granted =
      up_to_date
      &&
      match t.voted_for with None -> true | Some v -> v = candidate
    in
    if granted then begin
      t.voted_for <- Some candidate;
      emit Leader_activity
    end;
    emit (Send (candidate, Types.Vote { term = t.term; from = t.cfg.id; granted }))
  end

let on_vote t ~term ~from ~granted emit =
  if t.role = Candidate && term = t.term && granted && is_member t from then begin
    (ensure_peer t from).p_vote <- true;
    let count = ref (if is_member t t.cfg.id then 1 else 0) in
    List.iter
      (fun p ->
        match peer_opt t p with
        | Some st when st.p_vote -> incr count
        | Some _ | None -> ())
      (current_peers t);
    if !count >= quorum t then become_leader t emit
  end

let on_append_entries t ~term ~leader ~prev_idx ~prev_term ~entries ~commit ~seq emit =
  if term < t.term then
    emit
      (Send
         ( leader,
           Types.Append_ack
             {
               term = t.term;
               from = t.cfg.id;
               success = false;
               seq;
               match_idx = 0;
               applied_idx = t.applied;
             } ))
  else begin
    if t.role <> Follower then become_follower t ~term ~leader:(Some leader) emit;
    t.leader_hint <- Some leader;
    emit Leader_activity;
    (* A prev point inside our compacted prefix is below our applied index:
       those entries are committed and immutable, so the check passes and
       the overlapping entries are skipped below. *)
    let ok =
      prev_idx < Log.base t.log || Log.term_at t.log prev_idx = Some prev_term
    in
    if not ok then begin
      (* Conflict hint: skip a whole divergent term in one round trip. *)
      let hint =
        if prev_idx > Log.last_index t.log then Log.last_index t.log + 1
        else if prev_idx > Log.base t.log then
          Log.first_index_of_term_at t.log prev_idx
        else 1
      in
      emit
        (Send
           ( leader,
             Types.Append_ack
               {
                 term = t.term;
                 from = t.cfg.id;
                 success = false;
                 seq;
                 match_idx = hint;
                 applied_idx = t.applied;
               } ))
    end
    else begin
      Array.iteri
        (fun i e ->
          let idx = prev_idx + 1 + i in
          if
            idx > Log.base t.log
            && Log.term_at t.log idx <> Some e.Types.term
          then begin
            if idx <= Log.last_index t.log then begin
              Log.truncate_from t.log idx;
              rollback_configs t ~from:idx
            end;
            ignore (Log.append t.log e);
            note_appended_entry t ~idx e.Types.cmd
          end)
        entries;
      let new_match = prev_idx + Array.length entries in
      t.verified <- max t.verified new_match;
      set_commit t (min commit t.verified) emit;
      (* Claim at least our commit index: committed entries are immutable
         and present in every current leader's log (Leader Completeness),
         so the leader may fast-forward its next-index past them. Without
         this, a leader whose per-peer cursor went stale (e.g. while the
         aggregated fast path carried replication) re-walks the whole
         already-replicated log one batch per round trip. *)
      emit
        (Send
           ( leader,
             Types.Append_ack
               {
                 term = t.term;
                 from = t.cfg.id;
                 success = true;
                 seq;
                 match_idx = max new_match t.commit;
                 applied_idx = t.applied;
               } ))
    end
  end

let on_append_ack t ~term ~from ~success ~seq ~match_idx ~applied_idx emit =
  match (t.role, peer_opt t from) with
  | Leader, Some st when term = t.term ->
      st.p_applied <- max st.p_applied applied_idx;
      (* Only acks of the latest transmission drive pacing; acks of
         superseded (retransmitted) sends still contribute their match and
         applied knowledge but must not spawn extra in-flight streams. The
         sequence counter is global, so an ack with a NEWER seq than the
         peer's last point-to-point send is the peer responding to an
         aggregator-fanned append_entries (HovercRaft++) — that one is
         authoritative too, notably the failure acks that start direct
         recovery (§5). *)
      let current = seq >= st.p_sent_seq in
      if current then begin
        st.p_sent_seq <- seq;
        st.p_in_flight <- false
      end;
      if success then begin
        st.p_match <- max st.p_match match_idx;
        st.p_next <- max st.p_next (st.p_match + 1);
        if t.use_agg && st.p_direct && st.p_match >= Log.last_index t.log
        then st.p_direct <- false;
        (match t.transfer_target with
        | Some target
          when target = from && st.p_match >= Log.last_index t.log ->
            finish_transfer t target emit
        | Some _ | None -> ());
        try_advance_commit t emit;
        if current then replicate t ~force:false emit
      end
      else if current then begin
        let bounded = min match_idx (st.p_next - 1) in
        st.p_next <- max 1 (min bounded (Log.last_index t.log + 1));
        if t.use_agg then st.p_direct <- true;
        replicate_peer t ~force:true from st emit
      end
  | (Leader | Follower | Candidate), _ -> ()

(* The image is fully received: splice it in. If our log already has a
   matching entry at the snapshot's last index (Log Matching: the whole
   prefix matches) the suffix beyond it is kept and only the covered
   prefix is dropped; otherwise the retained log conflicts with (or falls
   short of) the committed prefix the snapshot represents and is
   discarded wholesale. Either way the snapshot's membership becomes the
   configuration-stack bottom, exactly as [compact] folds committed
   config entries. *)
let install_received t snap emit =
  let idx = snap.Snapshot.last_idx and tm = snap.Snapshot.last_term in
  let suffix_kept = Log.term_at t.log idx = Some tm in
  if suffix_kept then Log.compact_to t.log idx
  else Log.install t.log ~base:idx ~base_term:tm;
  (* Config entries above idx survive only with the log suffix; the rest
     fold into the snapshot's membership at the stack bottom. *)
  let above =
    if suffix_kept then List.filter (fun (ci, _) -> ci > idx) t.configs else []
  in
  t.configs <- above @ [ (0, snap.Snapshot.members) ];
  sync_peers t;
  notify t (Obs_config_changed (config_index t, members t));
  t.snapshot <- Some snap;
  t.applied <- max t.applied idx;
  t.verified <- max t.verified idx;
  (* Tell the embedder to load the image *before* it sees the commit
     advance, so the apply loop never tries to execute entries the
     snapshot already covers. *)
  emit (Snapshot_installed snap);
  set_commit t idx emit

let on_install_snapshot t ~term ~leader ~snap ~offset ~len ~last:_ ~seq emit =
  if term < t.term then
    emit
      (Send
         ( leader,
           Types.Install_ack
             {
               term = t.term;
               from = t.cfg.id;
               snap_idx = snap.Snapshot.last_idx;
               next_offset = 0;
               seq;
               applied_idx = t.applied;
             } ))
  else begin
    if t.role <> Follower then become_follower t ~term ~leader:(Some leader) emit;
    t.leader_hint <- Some leader;
    emit Leader_activity;
    let next_offset =
      if snap.Snapshot.last_idx <= t.applied then
        (* Our state machine already covers this prefix (a retransmit, or
           we caught up by entries in the meantime): report the transfer
           complete so the leader resumes entry replication. *)
        snap.Snapshot.size
      else begin
        let prog =
          match t.incoming with
          | Some p when Snapshot.same_identity (Snapshot.meta_of p) snap -> p
          | Some _ (* different snapshot, e.g. new leader: restart *) | None ->
              let p = Snapshot.start snap in
              t.incoming <- Some p;
              p
        in
        ignore (Snapshot.accept prog ~offset ~len);
        if Snapshot.complete prog then begin
          t.incoming <- None;
          install_received t snap emit;
          snap.Snapshot.size
        end
        else Snapshot.received prog
      end
    in
    emit
      (Send
         ( leader,
           Types.Install_ack
             {
               term = t.term;
               from = t.cfg.id;
               snap_idx = snap.Snapshot.last_idx;
               next_offset;
               seq;
               applied_idx = t.applied;
             } ))
  end

let on_install_ack t ~term ~from ~snap_idx ~next_offset ~seq ~applied_idx emit =
  match (t.role, peer_opt t from) with
  | Leader, Some st when term = t.term -> (
      st.p_applied <- max st.p_applied applied_idx;
      let current = seq >= st.p_sent_seq in
      if current then begin
        st.p_sent_seq <- seq;
        st.p_in_flight <- false
      end;
      match t.snapshot with
      | Some snap when st.p_snap <> None ->
          if snap_idx = snap.Snapshot.last_idx then
            if next_offset >= snap.Snapshot.size then begin
              (* Image complete and installed: the follower now matches
                 the covered prefix; resume entry replication after it. *)
              st.p_snap <- None;
              st.p_match <- max st.p_match snap.Snapshot.last_idx;
              st.p_next <- max st.p_next (snap.Snapshot.last_idx + 1);
              notify t (Obs_install_completed (from, snap.Snapshot.last_idx));
              try_advance_commit t emit;
              if current then replicate t ~force:false emit
            end
            else begin
              st.p_snap <- Some next_offset;
              if current then replicate_peer t ~force:true from st emit
            end
          else if current then begin
            (* Ack for a superseded snapshot (a newer checkpoint replaced
               it mid-transfer): restart the new image from the top. *)
            st.p_snap <- Some 0;
            replicate_peer t ~force:true from st emit
          end
      | Some _ | None -> ())
  | (Leader | Follower | Candidate), _ -> ()

let on_commit_to t ~term ~commit emit =
  if term = t.term && t.role = Follower then begin
    emit Leader_activity;
    set_commit t (min commit t.verified) emit
  end

let on_agg_ack t ~term ~commit emit =
  if t.role = Leader && term = t.term && t.use_agg then begin
    t.agg_in_flight <- false;
    t.agg_next <- max t.agg_next (t.agg_pending_end + 1);
    set_commit t (min commit t.announced) emit;
    replicate t ~force:false emit
  end

let on_timeout_now t ~term emit =
  (* Cooperative transfer: the departing leader says our log is complete;
     skip the election timeout and take over now. *)
  if term = t.term && t.role <> Leader && is_member t t.cfg.id then
    start_election t emit

let handle t input =
  let acc = ref [] in
  let emit a = acc := a :: !acc in
  (match input with
  | Receive msg ->
      let mterm = Types.message_term msg in
      let ignore_msg =
        (* A vote request from a node outside our configuration must not
           bump our term: a just-removed (or not-yet-added) node timing
           out would otherwise disrupt the cluster (Raft §4.2.3). *)
        match msg with
        | Types.Request_vote { candidate; _ } -> not (is_member t candidate)
        | _ -> false
      in
      if mterm > t.term && not ignore_msg then begin
        let leader =
          match msg with
          | Types.Append_entries { leader; _ }
          | Types.Install_snapshot { leader; _ } ->
              Some leader
          | Types.Request_vote _ | Types.Vote _ | Types.Append_ack _
          | Types.Commit_to _ | Types.Agg_ack _ | Types.Timeout_now _
          | Types.Install_ack _ ->
              None
        in
        become_follower t ~term:mterm ~leader emit
      end;
      (match msg with
      | Types.Request_vote { term; candidate; last_idx; last_term } ->
          on_request_vote t ~term ~candidate ~last_idx ~last_term emit
      | Types.Vote { term; from; granted } -> on_vote t ~term ~from ~granted emit
      | Types.Append_entries
          { term; leader; prev_idx; prev_term; entries; commit; seq } ->
          on_append_entries t ~term ~leader ~prev_idx ~prev_term ~entries ~commit
            ~seq emit
      | Types.Append_ack { term; from; success; seq; match_idx; applied_idx } ->
          on_append_ack t ~term ~from ~success ~seq ~match_idx ~applied_idx emit
      | Types.Commit_to { term; commit } -> on_commit_to t ~term ~commit emit
      | Types.Agg_ack { term; commit } -> on_agg_ack t ~term ~commit emit
      | Types.Timeout_now { term } -> on_timeout_now t ~term emit
      | Types.Install_snapshot { term; leader; snap; offset; len; last; seq } ->
          on_install_snapshot t ~term ~leader ~snap ~offset ~len ~last ~seq emit
      | Types.Install_ack { term; from; snap_idx; next_offset; seq; applied_idx }
        ->
          on_install_ack t ~term ~from ~snap_idx ~next_offset ~seq ~applied_idx
            emit)
  | Election_timeout -> if t.role <> Leader then start_election t emit
  | Heartbeat_timeout -> if t.role = Leader then replicate t ~force:true emit
  | Client_command cmd ->
      if t.role <> Leader then emit (Reject_command cmd)
      else if t.transfer_target <> None then
        (* Mid-transfer the leader freezes its log so the target can catch
           up (otherwise the handoff chases a moving tail). *)
        emit (Reject_command cmd)
      else begin
        match t.decoder cmd with
        | Some ms when not (config_change_allowed t ms) ->
            emit (Reject_command cmd)
        | decoded ->
            let idx = Log.append t.log { Types.term = t.term; cmd } in
            (match decoded with
            | Some ms -> apply_config t ~idx ms
            | None -> ());
            emit (Appended idx);
            replicate t ~force:false emit;
            (* A cluster the leader can commit into alone (size <= 1, or a
               quorum already matching) has no acks to drive the rule. *)
            if quorum t = 1 then try_advance_commit t emit
      end
  | Applied_up_to i ->
      t.applied <- max t.applied (min i t.commit);
      if t.role = Leader then replicate t ~force:false emit
  | Announce_kick ->
      (* The embedder learned that a previously ineligible replier queue
         drained: re-evaluate the announce gate now instead of waiting for
         the next heartbeat. *)
      if t.role = Leader then replicate t ~force:false emit
  | Transfer_leadership target ->
      if t.role = Leader && target <> t.cfg.id && is_member t target then begin
        t.transfer_target <- Some target;
        extend_announced t;
        let st = ensure_peer t target in
        if st.p_match >= Log.last_index t.log then
          finish_transfer t target emit
        else begin
          (* In aggregated mode per-follower acks flow to the aggregator,
             so the leader would never observe the target's match index;
             serve the target point-to-point until the hand-off fires. *)
          if t.use_agg then st.p_direct <- true;
          replicate t ~force:true emit
        end
      end);
  List.rev !acc

(* --- log compaction --- *)

(* The highest index that is safe to discard. With a snapshot it is
   simply the checkpointed prefix: a follower that later turns out to
   need discarded entries is served the image instead (Install_snapshot),
   so a crashed follower no longer pins the leader's bound. Without one
   (the embedder never checkpoints — the pure-Raft tests and the model
   checker run so) replay is the only recovery path, and the bound falls
   back to the pre-snapshot rule: applied locally and, on a leader, known
   replicated on every follower. *)
let compaction_bound t =
  match t.snapshot with
  | Some snap -> snap.Snapshot.last_idx
  | None ->
      if t.role = Leader then
        List.fold_left
          (fun acc p -> min acc (match_index_of t p))
          t.applied (current_peers t)
      else t.applied

let compact t ~retain =
  if retain < 0 then invalid_arg "Node.compact: negative retention";
  let target = min (compaction_bound t) (Log.last_index t.log - retain) in
  if target > Log.base t.log then begin
    Log.compact_to t.log target;
    (* Configs at or below the new base are committed and immutable; fold
       them into the stack bottom so rollback can never cross the base. *)
    let base = Log.base t.log in
    let above, below = List.partition (fun (ci, _) -> ci > base) t.configs in
    match below with
    | [] -> ()
    | (_, ms) :: _ -> t.configs <- above @ [ (0, ms) ]
  end;
  Log.base t.log

(* --- snapshot / restore (for the model checker) --- *)

type ('cmd, 'snap) dump = {
  d_term : Types.term;
  d_role : role;
  d_voted_for : Types.node_id option;
  d_leader_hint : Types.node_id option;
  d_commit : int;
  d_applied : int;
  d_verified : int;
  d_base : int;
  d_base_term : Types.term;
  d_entries : 'cmd Types.entry list;  (* retained: index d_base + 1 first *)
  d_snapshot : 'snap Snapshot.meta option;
  d_incoming : ('snap Snapshot.meta * int) option;  (* meta, bytes received *)
  d_peers :
    (Types.node_id * (bool * int * int * int * bool * bool * int * int option))
    list;
  d_configs : (int * Types.node_id list) list;
  d_transfer : Types.node_id option;
  d_announced : int;
  d_ae_seq : int;
  d_use_agg : bool;
  d_agg_in_flight : bool;
  d_agg_next : int;
  d_agg_pending_end : int;
}

let dump t =
  {
    d_term = t.term;
    d_role = t.role;
    d_voted_for = t.voted_for;
    d_leader_hint = t.leader_hint;
    d_commit = t.commit;
    d_applied = t.applied;
    d_verified = t.verified;
    d_base = Log.base t.log;
    d_base_term =
      (match Log.term_at t.log (Log.base t.log) with Some tm -> tm | None -> 0);
    d_entries =
      Array.to_list
        (Log.slice t.log ~lo:(Log.first_index t.log) ~hi:(Log.last_index t.log));
    d_snapshot = t.snapshot;
    d_incoming =
      (match t.incoming with
      | Some p -> Some (Snapshot.meta_of p, Snapshot.received p)
      | None -> None);
    d_peers =
      Hashtbl.fold
        (fun p st acc ->
          ( p,
            ( st.p_vote,
              st.p_next,
              st.p_match,
              st.p_applied,
              st.p_in_flight,
              st.p_direct,
              st.p_sent_seq,
              st.p_snap ) )
          :: acc)
        t.peers_tbl []
      |> List.sort compare;
    d_configs = t.configs;
    d_transfer = t.transfer_target;
    d_announced = t.announced;
    d_ae_seq = t.ae_seq;
    d_use_agg = t.use_agg;
    d_agg_in_flight = t.agg_in_flight;
    d_agg_next = t.agg_next;
    d_agg_pending_end = t.agg_pending_end;
  }

let restore cfg ~noop d =
  let t = create cfg ~noop in
  t.term <- d.d_term;
  t.role <- d.d_role;
  t.voted_for <- d.d_voted_for;
  t.leader_hint <- d.d_leader_hint;
  t.commit <- d.d_commit;
  t.applied <- d.d_applied;
  t.verified <- d.d_verified;
  Log.install t.log ~base:d.d_base ~base_term:d.d_base_term;
  List.iter (fun e -> ignore (Log.append t.log e)) d.d_entries;
  t.snapshot <- d.d_snapshot;
  t.incoming <-
    (match d.d_incoming with
    | Some (meta, got) -> Some (Snapshot.resume meta ~got)
    | None -> None);
  Hashtbl.reset t.peers_tbl;
  List.iter
    (fun (p, (v, nx, m, a, inf, dir, seq, snap)) ->
      Hashtbl.replace t.peers_tbl p
        {
          p_vote = v;
          p_next = nx;
          p_match = m;
          p_applied = a;
          p_in_flight = inf;
          p_direct = dir;
          p_sent_seq = seq;
          p_snap = snap;
        })
    d.d_peers;
  t.configs <- d.d_configs;
  t.transfer_target <- d.d_transfer;
  t.announced <- d.d_announced;
  t.ae_seq <- d.d_ae_seq;
  t.use_agg <- d.d_use_agg;
  t.agg_in_flight <- d.d_agg_in_flight;
  t.agg_next <- d.d_agg_next;
  t.agg_pending_end <- d.d_agg_pending_end;
  t

let compare_dump = Stdlib.compare

(* --- crash recovery --- *)

(* Simulated-crash semantics (see DESIGN.md): term, vote, the log — and
   with it the configuration stack, which is derived from the log plus the
   bootstrap config — are persistent, and the state machine is durable up
   to [applied] (the apply loop checkpoints synchronously). Everything
   else — commit knowledge beyond the applied prefix, leadership, per-peer
   replication state, the aggregated fast path — is volatile and rebuilt
   after rejoin. Applied entries are committed, so flooring [commit] and
   [verified] at [applied] is safe: by leader completeness every future
   leader carries them. *)
let recover t =
  t.role <- Follower;
  t.leader_hint <- None;
  t.commit <- t.applied;
  t.verified <- t.applied;
  t.gate <- None;
  t.incoming <- None;
  (* [t.snapshot] survives: it is the durable applied-prefix checkpoint
     (the embedder's state machine is persistent up to [applied], and the
     image was cut from it). A half-received install, by contrast, is
     volatile and the transfer restarts from offset 0. *)
  t.use_agg <- false;
  t.agg_in_flight <- false;
  t.agg_next <- 1;
  t.agg_pending_end <- 0;
  t.announced <- 0;
  t.transfer_target <- None;
  Hashtbl.reset t.peers_tbl;
  List.iter (fun p -> ignore (ensure_peer t p)) (current_peers t)

type 'cmd dump_info = {
  i_term : Types.term;
  i_role : role;
  i_commit : int;
  i_base : int;
  i_entries : 'cmd Types.entry list;
}

let dump_info d =
  {
    i_term = d.d_term;
    i_role = d.d_role;
    i_commit = d.d_commit;
    i_base = d.d_base;
    i_entries = d.d_entries;
  }
