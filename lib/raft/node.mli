(** The Raft consensus state machine, pure with respect to time and IO.

    [handle] consumes one input (a received message, an expired timer, a
    client command, or an application-progress report) and returns the
    resulting actions. The embedder owns clocks, transport, randomized
    timeout durations and the applying thread; this module owns terms,
    voting, log consistency and commit safety. That split is what lets the
    property-based tests drive thousands of adversarial schedules through
    the exact code that runs in the simulator.

    Leader-side replication supports the knobs HovercRaft needs without
    changing the core algorithm (§5):

    - an {e announce gate}: before an entry is sent to any follower for the
      first time, a callback may veto the announcement (bounded queues) or
      decorate the command (replier assignment);
    - {e aggregated replication} (HovercRaft++): when enabled, in-sync
      followers are served by a single append_entries addressed to the
      aggregator; followers that fail an append_entries fall back to
      point-to-point recovery with the leader until they catch up.

    Membership is {e dynamic} (Raft §4, single-server changes): the
    embedder installs a decoder recognizing configuration entries inside
    the command type; a config entry adds or removes exactly one voter,
    takes effect the moment it is appended, and only one change may be in
    flight at a time. Quorums are majorities of the current configuration.
    {!input.Transfer_leadership} implements cooperative handoff via
    {!Types.message.Timeout_now}. *)

type role = Follower | Candidate | Leader

val pp_role : Format.formatter -> role -> unit

type config = {
  id : Types.node_id;
  peers : Types.node_id array;
      (** Other members of the {e bootstrap} configuration; config-change
          log entries replace the member set from there on. *)
  batch_max : int;  (** Max entries per append_entries. *)
  eager_commit_notify : bool;
      (** Broadcast [Commit_to] as soon as the commit index advances and no
          entry traffic is pending; keeps follower repliers prompt in plain
          HovercRaft (HovercRaft++ gets this for free from AGG_COMMIT). *)
  snap_chunk_bytes : int;
      (** Bytes of snapshot image per [Install_snapshot] chunk. One chunk
          is in flight per follower (same pacing as append_entries), so
          this bounds the transfer's burst size on the fabric. *)
}

type ('cmd, 'snap) action =
  | Send of Types.node_id * ('cmd, 'snap) Types.message
  | Send_aggregate of ('cmd, 'snap) Types.message
      (** Leader -> in-network aggregator (HovercRaft++ fast path). *)
  | Commit_advanced of int  (** New commit index (entries are ready to apply). *)
  | Appended of int  (** Index assigned to a client command (leader only). *)
  | Became_leader
  | Became_follower of Types.node_id option  (** Known leader, if any. *)
  | Leader_activity
      (** Legitimate leader contact (or granted vote); the embedder resets
          its election clock. *)
  | Reject_command of 'cmd
      (** Client command received while not leader; embedder may redirect. *)
  | Snapshot_installed of 'snap Snapshot.meta
      (** A received snapshot was spliced into the log (emitted {e before}
          the accompanying [Commit_advanced]): the embedder must replace
          its state machine with the carried image — the covered entries
          will never be delivered for application. *)

type ('cmd, 'snap) input =
  | Receive of ('cmd, 'snap) Types.message
  | Election_timeout
  | Heartbeat_timeout
  | Client_command of 'cmd
  | Applied_up_to of int
      (** The application thread finished applying entries up to this
          index. Feeds [applied_idx] in acks and unblocks announcing. *)
  | Announce_kick
      (** A previously gate-blocked announce may now pass (e.g. a bounded
          replier queue drained): re-run replication without waiting for
          the next heartbeat. No-op on non-leaders. *)
  | Transfer_leadership of Types.node_id
      (** Leader only: stop accepting client commands, bring the target
          fully up to date, then send it [Timeout_now]. Cleared on any
          role or term change. No-op on non-leaders, on non-member
          targets, and on self. *)

(** Protocol milestones surfaced to the observability layer (never part of
    the action list — observers must not influence the algorithm). *)
type obs_event =
  | Obs_election_started of Types.term
  | Obs_leadership_won of Types.term
  | Obs_leadership_lost of Types.term
  | Obs_commit_advanced of int
  | Obs_announced_to of int
  | Obs_announce_gated of int
      (** The announce gate vetoed this index (all replier queues full). *)
  | Obs_config_changed of int * Types.node_id list
      (** A configuration (entry index, member list) became current —
          on append, or by rollback when a conflicting leader truncates an
          uncommitted config entry away. *)
  | Obs_transfer_sent of Types.node_id
      (** [Timeout_now] was sent to this transfer target. *)
  | Obs_snapshot_taken of int
      (** A checkpoint covering up to this index was registered
          ({!set_snapshot} or a completed install). *)
  | Obs_install_started of Types.node_id * int
      (** Leader began shipping the snapshot (covering up to the index)
          to this follower. *)
  | Obs_install_completed of Types.node_id * int
      (** The follower acknowledged the full image. *)

type ('cmd, 'snap) t

val create : config -> noop:'cmd -> ('cmd, 'snap) t
(** [noop] is appended when winning an election so the new term always has
    a committable entry (standard leader-completeness practice). *)

(** {1 Observers} *)

val id : ('cmd, 'snap) t -> Types.node_id
val role : ('cmd, 'snap) t -> role
val term : ('cmd, 'snap) t -> Types.term
val leader_hint : ('cmd, 'snap) t -> Types.node_id option
val log : ('cmd, 'snap) t -> 'cmd Log.t
val commit_index : ('cmd, 'snap) t -> int
val applied_index : ('cmd, 'snap) t -> int
val announced_index : ('cmd, 'snap) t -> int
val voted_for : ('cmd, 'snap) t -> Types.node_id option

val cluster_size : ('cmd, 'snap) t -> int
(** Size of the current configuration. *)

val members : ('cmd, 'snap) t -> Types.node_id list
(** The current configuration's member list, sorted. *)

val config_index : ('cmd, 'snap) t -> int
(** Log index of the entry that established the current configuration
    (0 for the bootstrap config). [config_index t > commit_index t] means
    a membership change is still in flight. *)

val is_member : ('cmd, 'snap) t -> Types.node_id -> bool

val transfer_target : ('cmd, 'snap) t -> Types.node_id option
(** Pending leadership-transfer target, if any (leader only). *)

val applied_index_of : ('cmd, 'snap) t -> Types.node_id -> int
(** Leader's latest knowledge of a peer's applied index (0 initially). *)

val match_index_of : ('cmd, 'snap) t -> Types.node_id -> int

(** {1 Replication knobs} *)

val set_announce_gate : ('cmd, 'snap) t -> (int -> 'cmd -> bool) option -> unit
(** The gate is called once per entry, in index order, when the leader is
    about to announce it; returning [false] stops announcement (it will be
    retried on the next replication opportunity). *)

val set_observer : ('cmd, 'snap) t -> (obs_event -> unit) option -> unit
(** Install a callback receiving {!obs_event}s as they happen. Purely
    observational; not preserved across {!dump}/{!restore}. *)

val set_config_decoder : ('cmd, 'snap) t -> ('cmd -> Types.node_id array option) -> unit
(** Teach the node to recognize configuration entries inside the opaque
    command type: [Some members] marks a config entry carrying the full
    new member list. Without a decoder (the default) membership is static.
    A leader rejects ({!action.Reject_command}) config commands that
    change more than one voter, arrive while a previous change is
    uncommitted, or arrive mid-transfer. *)

val set_aggregated : ('cmd, 'snap) t -> bool -> unit
(** Toggle the HovercRaft++ fast path. The embedder switches it on only
    after probing the aggregator (§5). Resets to off on role change. *)

val aggregated : ('cmd, 'snap) t -> bool

(** {1 Snapshots and log compaction}

    The embedder checkpoints its state machine ({!set_snapshot}); from
    then on the checkpointed prefix may be compacted away regardless of
    follower progress — a follower whose next_index falls below the log
    base (or that joins fresh, PR 3 [add_node]) is served the image in
    chunks ([Install_snapshot], one chunk in flight, offset-based flow
    control, resumable across drops and leader changes). The receiver
    splices the image in, emits {!action.Snapshot_installed} so the
    embedder can load it, and entry replication resumes after the covered
    prefix. *)

val set_snapshot : ('cmd, 'snap) t -> 'snap Snapshot.meta -> unit
(** Register a checkpoint of the applied state machine. Must not exceed
    the applied index; older or equal checkpoints are ignored (the newest
    wins; in-flight transfers of a superseded image restart). *)

val snapshot : ('cmd, 'snap) t -> 'snap Snapshot.meta option
(** The newest registered checkpoint (local or installed). *)

val snapshot_index : ('cmd, 'snap) t -> int
(** Last index covered by the snapshot; 0 when none. *)

val compaction_bound : ('cmd, 'snap) t -> int
(** Highest index safe to discard: the snapshot's covered prefix when one
    exists (lagging followers are served the image); otherwise applied
    locally and, on a leader, replicated on every follower (replay being
    the only recovery path then). *)

val compact : ('cmd, 'snap) t -> retain:int -> int
(** Compact the log up to [compaction_bound] while always retaining the
    most recent [retain] entries; returns the new base. Call it
    periodically (the simulator does so from the GC loop). *)

(** {1 Crash recovery} *)

val recover : ('cmd, 'snap) t -> unit
(** Rebuild volatile state after a simulated crash–restart. Persistent
    state (term, vote, log — the configuration stack, derivable from
    the log plus the bootstrap config — and the snapshot, which is the
    durable applied-prefix checkpoint) and the applied prefix of the
    state machine survive; the node re-enters as a follower with [commit]
    and [verified] floored at [applied] (applied entries are committed,
    so by leader completeness every future leader carries them), no
    leader hint, the announce gate uninstalled, any half-received install
    discarded and all leader-side replication state reset. The embedder
    is responsible for re-arming clocks and rebuilding its own volatile
    structures. *)

(** {1 The state machine} *)

val handle : ('cmd, 'snap) t -> ('cmd, 'snap) input -> ('cmd, 'snap) action list
(** Process one input; returns actions in the order they must be
    performed. *)

(** {1 Dump / restore}

    The full mutable state as a pure, structurally comparable value. Used
    by the explicit-state model checker to branch execution: states are
    dumped, deduplicated with structural compare, and restored to explore
    successor transitions — so the checker exercises this exact
    implementation, not a re-modelling of it. Compacted logs dump too:
    the dump carries [(base, base_term)], the retained suffix, the
    registered snapshot and any in-progress install. *)

type ('cmd, 'snap) dump

val dump : ('cmd, 'snap) t -> ('cmd, 'snap) dump
val restore : config -> noop:'cmd -> ('cmd, 'snap) dump -> ('cmd, 'snap) t
val compare_dump : ('cmd, 'snap) dump -> ('cmd, 'snap) dump -> int
(** Structural comparison (commands are compared with polymorphic
    compare; use simple command types in checked models). *)

type 'cmd dump_info = {
  i_term : Types.term;
  i_role : role;
  i_commit : int;
  i_base : int;  (** Compaction point: entries at or below it live in the
                     snapshot, not in [i_entries]. *)
  i_entries : 'cmd Types.entry list;  (** Index [i_base + 1] first. *)
}

val dump_info : ('cmd, 'snap) dump -> 'cmd dump_info
(** The observable fields invariant checks need, without restoring. *)
