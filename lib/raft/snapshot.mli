(** Snapshot descriptors and chunked-transfer bookkeeping.

    A snapshot is a checkpoint of the applied state machine: an opaque
    image plus the metadata Raft needs to splice it into a log — the last
    covered index and its term (the Log Matching identity of the covered
    prefix), the membership as of that index, and a serialized size that
    drives chunked transfer over the fabric. [Node] owns the protocol;
    this module owns the data and the offset arithmetic. *)

type 'snap meta = {
  last_idx : int;  (** Highest log index the snapshot covers. *)
  last_term : int;  (** Term of entry [last_idx]. *)
  members : int list;  (** Cluster membership as of [last_idx], sorted. *)
  size : int;  (** Serialized size in bytes; drives chunking. *)
  data : 'snap;  (** The embedder's state-machine image. *)
}

val make :
  last_idx:int ->
  last_term:int ->
  members:int list ->
  size:int ->
  data:'snap ->
  'snap meta
(** Validating constructor; sorts and dedups [members]. *)

val same_identity : 'snap meta -> 'snap meta -> bool
(** Whether two descriptors cover the same log prefix
    ([last_idx], [last_term] equal). Transfers resume only across
    identical identities; a mid-transfer leader change with a different
    snapshot restarts from offset 0. *)

val chunk_len : 'snap meta -> chunk_bytes:int -> offset:int -> int
(** Bytes of the chunk starting at [offset] (the final chunk may be
    short; 0 only for an empty snapshot). *)

val is_last : 'snap meta -> chunk_bytes:int -> offset:int -> bool
(** Whether the chunk at [offset] is the final one. *)

(** {1 Receiver-side progress}

    Chunks are accepted strictly in order; the receiver acknowledges
    every chunk with the count of contiguous bytes it holds, which is
    exactly the offset the sender must (re)transmit next. *)

type 'snap progress

val start : 'snap meta -> 'snap progress

val resume : 'snap meta -> got:int -> 'snap progress
(** Rebuild progress from a dumped (meta, received-bytes) pair. *)

val accept : 'snap progress -> offset:int -> len:int -> bool
(** Record a chunk. Returns [true] iff it was the next expected chunk
    and advanced the transfer; duplicates and gaps are ignored. *)

val received : 'snap progress -> int
(** Contiguous bytes received so far — the next expected offset. *)

val meta_of : 'snap progress -> 'snap meta
val complete : 'snap progress -> bool
