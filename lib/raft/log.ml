type 'cmd t = {
  mutable entries : 'cmd Types.entry array;
  mutable size : int;  (* retained entries *)
  mutable base : int;  (* compaction point: entries <= base discarded *)
  mutable base_term : Types.term;  (* term of entry [base] *)
}

let create () = { entries = [||]; size = 0; base = 0; base_term = 0 }
let base t = t.base
let first_index t = t.base + 1
let last_index t = t.base + t.size

let last_term t =
  if t.size = 0 then t.base_term else t.entries.(t.size - 1).Types.term

let term_at t i =
  if i = t.base then Some t.base_term
  else if i < t.base || i > last_index t then None
  else Some t.entries.(i - t.base - 1).Types.term

let get t i =
  if i <= t.base || i > last_index t then
    invalid_arg
      (Printf.sprintf "Log.get: index %d outside %d..%d" i (first_index t)
         (last_index t));
  t.entries.(i - t.base - 1)

let grow t needed =
  let cap = Array.length t.entries in
  if needed > cap then begin
    let cap' = max needed (max 16 (cap * 2)) in
    let bigger = Array.make cap' t.entries.(0) in
    Array.blit t.entries 0 bigger 0 t.size;
    t.entries <- bigger
  end

let append t e =
  if Array.length t.entries = 0 then t.entries <- Array.make 16 e
  else grow t (t.size + 1);
  t.entries.(t.size) <- e;
  t.size <- t.size + 1;
  last_index t

let truncate_from t i =
  if i <= t.base then
    invalid_arg "Log.truncate_from: cannot truncate into the compacted prefix";
  if i <= last_index t then t.size <- i - t.base - 1

let slice t ~lo ~hi =
  if lo > hi then [||]
  else begin
    if lo <= t.base || hi > last_index t then
      invalid_arg
        (Printf.sprintf "Log.slice: %d..%d outside %d..%d" lo hi (first_index t)
           (last_index t));
    Array.sub t.entries (lo - t.base - 1) (hi - lo + 1)
  end

let iter_range t ~lo ~hi f =
  for i = max lo (first_index t) to min hi (last_index t) do
    f i t.entries.(i - t.base - 1)
  done

let first_index_of_term_at t i =
  if i <= t.base || i > last_index t then invalid_arg "Log.first_index_of_term_at";
  let tm = (get t i).Types.term in
  let rec back j =
    if j > first_index t && (get t (j - 1)).Types.term = tm then back (j - 1)
    else j
  in
  back i

let install t ~base ~base_term =
  if base < 0 then invalid_arg "Log.install: negative base";
  t.entries <- [||];
  t.size <- 0;
  t.base <- base;
  t.base_term <- base_term

let compact_to t i =
  if i > last_index t then
    invalid_arg "Log.compact_to: compaction point beyond the log";
  if i > t.base then begin
    let keep = last_index t - i in
    let new_base_term = (get t i).Types.term in
    let fresh =
      if keep = 0 then [||]
      else Array.sub t.entries (i - t.base - 1 + 1) keep
    in
    t.entries <- fresh;
    t.size <- keep;
    t.base <- i;
    t.base_term <- new_base_term
  end
