(** The replicated log. Indices are 1-based; index 0 is the empty-log
    sentinel with term 0, as in the Raft paper.

    Supports prefix compaction: entries up to a compaction point are
    discarded once they are applied locally (with a snapshot covering the
    discarded prefix, a lagging follower is served the snapshot instead —
    see {!Node.compaction_bound}). Compaction only moves the base —
    indices are stable forever. *)

type 'cmd t

val create : unit -> 'cmd t

val first_index : 'cmd t -> int
(** Lowest retained index; 1 until the first compaction. *)

val base : 'cmd t -> int
(** [first_index - 1]: the compaction point. *)

val last_index : 'cmd t -> int
(** Index of the most recent entry; [base] when none retained. *)

val last_term : 'cmd t -> Types.term
(** Term of the most recent entry; 0 when empty. *)

val term_at : 'cmd t -> int -> Types.term option
(** [term_at t i] is the term of entry [i]; [Some 0] for [i = 0]; the
    compaction point's term is retained; [None] beyond the end or below
    the compaction point. *)

val get : 'cmd t -> int -> 'cmd Types.entry
(** Entry at a valid index (1-based). Raises [Invalid_argument]
    otherwise. *)

val append : 'cmd t -> 'cmd Types.entry -> int
(** Append and return the new entry's index. *)

val truncate_from : 'cmd t -> int -> unit
(** Remove entries at indices >= the argument (conflict resolution). *)

val slice : 'cmd t -> lo:int -> hi:int -> 'cmd Types.entry array
(** Entries [lo..hi] inclusive; empty when [lo > hi]. *)

val iter_range : 'cmd t -> lo:int -> hi:int -> (int -> 'cmd Types.entry -> unit) -> unit

val first_index_of_term_at : 'cmd t -> int -> int
(** Index of the first {e retained} entry that has the same term as entry
    [i]; used to compute the conflict back-off hint in append_entries
    failures. *)

val compact_to : 'cmd t -> int -> unit
(** [compact_to t i] discards entries at indices <= [i]. [i] must not
    exceed [last_index]; compacting at or below the current base is a
    no-op. Frees the discarded storage. *)

val install : 'cmd t -> base:int -> base_term:Types.term -> unit
(** Discard {e all} retained entries and reset the compaction point to
    [(base, base_term)]: the log becomes empty with [last_index = base].
    Used when a received snapshot supersedes the local log (its covered
    prefix conflicts with or extends past everything retained), and by
    {!Node.restore} to rebuild a compacted log. *)
