(** Raft wire types, polymorphic in the replicated command and in the
    snapshot image.

    VanillaRaft instantiates ['cmd] with full request bodies; HovercRaft
    instantiates it with fixed-size ordering metadata (§3.2), which is what
    makes its append_entries cost independent of request size. ['snap] is
    the embedder's serialized state-machine image, carried by
    [Install_snapshot]; the pure-Raft tests and the model checker use
    simple concrete types there. *)

type term = int
type node_id = int

(** One log slot. [cmd] is mutable-free at this level; HovercRaft's command
    type carries its own mutable replier field (set once by the leader
    before first announcement, §3.3). *)
type 'cmd entry = { term : term; cmd : 'cmd }

type ('cmd, 'snap) message =
  | Request_vote of {
      term : term;
      candidate : node_id;
      last_idx : int;
      last_term : term;
    }
  | Vote of { term : term; from : node_id; granted : bool }
  | Append_entries of {
      term : term;
      leader : node_id;
      prev_idx : int;
      prev_term : term;
      entries : 'cmd entry array;
      commit : int;  (** Leader's commit index at send time. *)
      seq : int;
          (** Per-leader send sequence number, echoed in the ack. The
              leader paces replication with one outstanding append_entries
              per follower; the echo lets it ignore acks of superseded
              transmissions (heartbeat retransmits would otherwise spawn
              duplicate in-flight streams). *)
    }
  | Append_ack of {
      term : term;
      from : node_id;
      success : bool;
      seq : int;  (** Echo of the acknowledged append_entries' [seq]. *)
      match_idx : int;
          (** On success: index of the last entry now known replicated on
              [from]. On failure: the follower's hint for the leader's next
              next_index (conflict optimization). *)
      applied_idx : int;
          (** HovercRaft extension (§6.2): the follower's applied index,
              feeding the leader's bounded queues. *)
    }
  | Commit_to of { term : term; commit : int }
      (** Lightweight commit announcement; carried by the aggregator's
          AGG_COMMIT towards followers. *)
  | Agg_ack of { term : term; commit : int }
      (** The aggregator's single reply to the leader once a quorum of
          followers acknowledged (HovercRaft++, §4). *)
  | Timeout_now of { term : term }
      (** Cooperative leadership transfer (Raft §3.10): the leader, having
          brought the target fully up to date, tells it to start an
          election immediately without waiting for its election timer. *)
  | Install_snapshot of {
      term : term;
      leader : node_id;
      snap : 'snap Snapshot.meta;
      offset : int;  (** Byte offset of this chunk within the image. *)
      len : int;  (** Bytes carried by this chunk. *)
      last : bool;  (** Final chunk of the image. *)
      seq : int;
          (** Same pacing counter as append_entries: one chunk in flight
              per follower, heartbeats retransmit the unacked chunk. *)
    }
      (** Leader -> lagging follower: one chunk of a state-machine
          checkpoint, sent point-to-point whenever the follower's
          next_index has fallen below the leader's log base (the entries
          it would need were compacted away) or the follower is brand new
          (PR 3 [add_node] catch-up). *)
  | Install_ack of {
      term : term;
      from : node_id;
      snap_idx : int;  (** Echo of the snapshot identity being acked. *)
      next_offset : int;
          (** Contiguous bytes received: exactly the offset the leader
              must send next; >= the snapshot size means the image is
              complete and installed. *)
      seq : int;
      applied_idx : int;
    }

let message_term = function
  | Request_vote { term; _ }
  | Vote { term; _ }
  | Append_entries { term; _ }
  | Append_ack { term; _ }
  | Commit_to { term; _ }
  | Agg_ack { term; _ }
  | Timeout_now { term }
  | Install_snapshot { term; _ }
  | Install_ack { term; _ } ->
      term

let pp_message fmt = function
  | Request_vote { term; candidate; last_idx; last_term } ->
      Format.fprintf fmt "request_vote(t=%d,c=%d,last=%d@%d)" term candidate
        last_idx last_term
  | Vote { term; from; granted } ->
      Format.fprintf fmt "vote(t=%d,from=%d,%b)" term from granted
  | Append_entries { term; leader; prev_idx; entries; commit; _ } ->
      Format.fprintf fmt "append_entries(t=%d,l=%d,prev=%d,n=%d,commit=%d)" term
        leader prev_idx (Array.length entries) commit
  | Append_ack { term; from; success; match_idx; applied_idx; _ } ->
      Format.fprintf fmt "append_ack(t=%d,from=%d,%b,match=%d,applied=%d)" term
        from success match_idx applied_idx
  | Commit_to { term; commit } -> Format.fprintf fmt "commit_to(t=%d,%d)" term commit
  | Agg_ack { term; commit } -> Format.fprintf fmt "agg_ack(t=%d,%d)" term commit
  | Timeout_now { term } -> Format.fprintf fmt "timeout_now(t=%d)" term
  | Install_snapshot { term; leader; snap; offset; len; last; _ } ->
      Format.fprintf fmt "install_snapshot(t=%d,l=%d,idx=%d@%d,off=%d,len=%d%s)"
        term leader snap.Snapshot.last_idx snap.Snapshot.last_term offset len
        (if last then ",last" else "")
  | Install_ack { term; from; snap_idx; next_offset; applied_idx; _ } ->
      Format.fprintf fmt "install_ack(t=%d,from=%d,idx=%d,next=%d,applied=%d)"
        term from snap_idx next_offset applied_idx
