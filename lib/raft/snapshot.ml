(* Snapshot descriptors and chunked-transfer bookkeeping.

   This module is deliberately free of dependencies on the rest of the
   Raft library: a snapshot is described by plain integers (indices,
   terms, byte counts) plus an opaque state-machine image supplied by the
   embedder. [Node] layers the protocol state machine on top; here live
   only the data definitions and the offset arithmetic both ends of a
   transfer share. *)

type 'snap meta = {
  last_idx : int;  (* highest log index the snapshot covers *)
  last_term : int;  (* term of entry [last_idx] *)
  members : int list;  (* cluster membership as of [last_idx], sorted *)
  size : int;  (* serialized size in bytes; drives chunking *)
  data : 'snap;  (* the embedder's state-machine image *)
}

let make ~last_idx ~last_term ~members ~size ~data =
  if last_idx < 0 then invalid_arg "Snapshot.make: negative index";
  if size < 0 then invalid_arg "Snapshot.make: negative size";
  { last_idx; last_term; members = List.sort_uniq compare members; size; data }

(* Two descriptors name the same snapshot iff they cover the same log
   prefix. (last_idx, last_term) identifies the prefix by the Log
   Matching property, so resuming a transfer only needs these two. *)
let same_identity a b = a.last_idx = b.last_idx && a.last_term = b.last_term

let chunk_len t ~chunk_bytes ~offset =
  if chunk_bytes < 1 then invalid_arg "Snapshot.chunk_len: chunk_bytes < 1";
  if offset < 0 || offset > t.size then
    invalid_arg "Snapshot.chunk_len: offset outside snapshot"
  else min chunk_bytes (t.size - offset)

let is_last t ~chunk_bytes ~offset = offset + chunk_len t ~chunk_bytes ~offset >= t.size

(* --- receiver side ---

   The follower accepts chunks strictly in order and remembers how many
   contiguous bytes it holds; every chunk is answered with that count, so
   a dropped or reordered chunk makes the leader resend from exactly the
   right offset (offset-based flow control, one chunk in flight). *)

type 'snap progress = {
  p_meta : 'snap meta;
  mutable p_got : int;  (* contiguous bytes received so far *)
}

let start meta = { p_meta = meta; p_got = 0 }

let resume meta ~got =
  if got < 0 || got > meta.size then invalid_arg "Snapshot.resume";
  { p_meta = meta; p_got = got }

(* [accept] is idempotent: a duplicate (offset < p_got) or a gap
   (offset > p_got) leaves the progress untouched; only the next expected
   chunk advances it. Returns whether the chunk advanced the transfer. *)
let accept t ~offset ~len =
  if offset = t.p_got && len >= 0 && offset + len <= t.p_meta.size then begin
    t.p_got <- offset + len;
    true
  end
  else false

let received t = t.p_got
let meta_of t = t.p_meta
let complete t = t.p_got >= t.p_meta.size
