module Fabric = Hovercraft_net.Fabric
module Addr = Hovercraft_net.Addr
module R2p2 = Hovercraft_r2p2.R2p2

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type t = {
  fabric : Protocol.payload Fabric.t;
  mutable port : Protocol.payload Fabric.port option;
  cap : int;
  group : int;
  outstanding : unit Rid_tbl.t;
  mutable inflight : int;
  mutable admitted : int;
  mutable nacked : int;
}

let handle t (pkt : Protocol.payload Fabric.packet) =
  let port = Option.get t.port in
  match pkt.payload with
  | Protocol.Request { rid; _ } ->
      if Rid_tbl.mem t.outstanding rid then
        (* A retransmission of a request that already holds an in-flight
           slot: forward without recharging. It must go through even at
           the cap — a retransmitted body is the recovery path of last
           resort when every replica dropped it, and that loss is exactly
           what wedges the replies whose feedback would free slots. *)
        Fabric.send t.fabric port ~dst:(Addr.Group t.group) ~bytes:pkt.bytes
          pkt.payload
      else if t.inflight < t.cap then begin
        Rid_tbl.replace t.outstanding rid ();
        t.inflight <- t.inflight + 1;
        t.admitted <- t.admitted + 1;
        (* Destination rewrite: same payload, multicast delivery. *)
        Fabric.send t.fabric port ~dst:(Addr.Group t.group) ~bytes:pkt.bytes
          pkt.payload
      end
      else begin
        t.nacked <- t.nacked + 1;
        Fabric.send t.fabric port ~dst:pkt.src
          ~bytes:(Protocol.payload_bytes ~with_bodies:false (Protocol.Nack { rid }))
          (Protocol.Nack { rid })
      end
  | Protocol.Feedback { rid } ->
      (* Credit keyed by rid: a duplicate feedback (a replayed reply to a
         retransmission) must not free a second slot. *)
      if Rid_tbl.mem t.outstanding rid then begin
        Rid_tbl.remove t.outstanding rid;
        t.inflight <- t.inflight - 1
      end
  | Protocol.Response _ | Protocol.Raft _ | Protocol.Recovery_request _
  | Protocol.Recovery_response _ | Protocol.Probe _ | Protocol.Probe_reply _
  | Protocol.Agg_commit _ | Protocol.Nack _ | Protocol.Wrong_shard _
  | Protocol.Reconfig _ | Protocol.Rabia _ ->
      ()

let create engine fabric ~cap ~group ~rate_gbps =
  ignore engine;
  if cap <= 0 then invalid_arg "Flow_control.create: cap must be positive";
  let t =
    {
      fabric;
      port = None;
      cap;
      group;
      outstanding = Rid_tbl.create 4096;
      inflight = 0;
      admitted = 0;
      nacked = 0;
    }
  in
  let port =
    Fabric.attach fabric ~addr:Addr.Middlebox ~rate_gbps ~handler:(handle t)
  in
  t.port <- Some port;
  t

let inflight t = t.inflight
let admitted t = t.admitted
let nacked t = t.nacked
