module Fabric = Hovercraft_net.Fabric
module Addr = Hovercraft_net.Addr

type t = {
  fabric : Protocol.payload Fabric.t;
  mutable port : Protocol.payload Fabric.port option;
  cap : int;
  group : int;
  mutable inflight : int;
  mutable admitted : int;
  mutable nacked : int;
}

let handle t (pkt : Protocol.payload Fabric.packet) =
  let port = Option.get t.port in
  match pkt.payload with
  | Protocol.Request { rid; _ } ->
      if t.inflight < t.cap then begin
        t.inflight <- t.inflight + 1;
        t.admitted <- t.admitted + 1;
        (* Destination rewrite: same payload, multicast delivery. *)
        Fabric.send t.fabric port ~dst:(Addr.Group t.group) ~bytes:pkt.bytes
          pkt.payload
      end
      else begin
        t.nacked <- t.nacked + 1;
        Fabric.send t.fabric port ~dst:pkt.src
          ~bytes:(Protocol.payload_bytes ~with_bodies:false (Protocol.Nack { rid }))
          (Protocol.Nack { rid })
      end
  | Protocol.Feedback _ -> if t.inflight > 0 then t.inflight <- t.inflight - 1
  | Protocol.Response _ | Protocol.Raft _ | Protocol.Recovery_request _
  | Protocol.Recovery_response _ | Protocol.Probe _ | Protocol.Probe_reply _
  | Protocol.Agg_commit _ | Protocol.Nack _ | Protocol.Wrong_shard _
  | Protocol.Reconfig _ ->
      ()

let create engine fabric ~cap ~group ~rate_gbps =
  ignore engine;
  if cap <= 0 then invalid_arg "Flow_control.create: cap must be positive";
  let t =
    { fabric; port = None; cap; group; inflight = 0; admitted = 0; nacked = 0 }
  in
  let port =
    Fabric.attach fabric ~addr:Addr.Middlebox ~rate_gbps ~handler:(handle t)
  in
  t.port <- Some port;
  t

let inflight t = t.inflight
let admitted t = t.admitted
let nacked t = t.nacked
