(** The per-node store of client request bodies (§3.2, §5).

    Every node receives multicast request bodies before the leader orders
    them. A body starts {e unordered}; once the node sees its metadata
    appear in the Raft log it is {e ordered} (it now only serves as the
    body to apply, and as recovery material for other nodes); after the
    node applies the entry, the body is removed.

    Garbage collection follows the paper: unordered bodies that linger past
    a timeout are dropped (the request was probably never ordered — or, if
    it was, the recovery path refetches it); ordered bodies are retained
    for a longer retention window so they can serve recovery requests from
    lagging followers even after local application. *)

open Hovercraft_sim
open Hovercraft_r2p2

type t

val create :
  now:(unit -> Timebase.t) ->
  gc_unordered:Timebase.t ->
  gc_ordered:Timebase.t ->
  unit ->
  t

val add : t -> R2p2.req_id -> Hovercraft_apps.Op.t -> unit
(** Insert a freshly received multicast body (unordered). Re-adding an
    existing id refreshes its timestamp but keeps its ordered state. *)

val find : t -> R2p2.req_id -> Hovercraft_apps.Op.t option
(** Look up a body regardless of state. *)

val status : t -> R2p2.req_id -> [ `Absent | `Unordered | `Ordered ]
(** Whether the id is unknown, received but not yet ordered, or already
    bound to a log position. Drives duplicate suppression when clients
    retransmit. *)

val mark_ordered : t -> R2p2.req_id -> bool
(** Transition to ordered when the id shows up in the log; [false] when the
    body is absent (the multicast was lost — recovery needed). *)

val remove : t -> R2p2.req_id -> unit
(** Drop after application (or on explicit invalidation). *)

val unordered_bindings : t -> (R2p2.req_id * Hovercraft_apps.Op.t) list
(** Bodies not yet ordered, oldest first — what a freshly elected leader
    ingests into its log (§5). *)

val gc : ?keep:(R2p2.req_id -> bool) -> t -> int
(** Collect expired entries; returns how many were dropped. Unordered
    bodies for which [keep] holds are never dropped regardless of age —
    a leaderless ordering backend pins bodies still sitting in its
    proposal pool, where time-to-order is unbounded (an ordering stall
    under a partition can outlast any fixed timeout, and a body dropped
    everywhere before its command decides wedges the apply loop for
    good). Ordered bodies are never subject to [keep]; their retention
    window already covers recovery. *)

val size : t -> int
val unordered_count : t -> int
