open Hovercraft_sim
open Hovercraft_r2p2

type slot = {
  op : Hovercraft_apps.Op.t;
  mutable added : Timebase.t;
  mutable ordered : bool;
  seq : int;  (* arrival order, for deterministic leader ingestion *)
}

module Tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type t = {
  now : unit -> Timebase.t;
  gc_unordered : Timebase.t;
  gc_ordered : Timebase.t;
  table : slot Tbl.t;
  mutable seq : int;
}

let create ~now ~gc_unordered ~gc_ordered () =
  { now; gc_unordered; gc_ordered; table = Tbl.create 4096; seq = 0 }

let add t rid op =
  match Tbl.find_opt t.table rid with
  | Some slot -> slot.added <- t.now ()
  | None ->
      t.seq <- t.seq + 1;
      Tbl.replace t.table rid { op; added = t.now (); ordered = false; seq = t.seq }

let find t rid =
  match Tbl.find_opt t.table rid with None -> None | Some s -> Some s.op

let status t rid =
  match Tbl.find_opt t.table rid with
  | None -> `Absent
  | Some s -> if s.ordered then `Ordered else `Unordered

let mark_ordered t rid =
  match Tbl.find_opt t.table rid with
  | None -> false
  | Some s ->
      s.ordered <- true;
      s.added <- t.now ();
      true

let remove t rid = Tbl.remove t.table rid

let unordered_bindings t =
  Tbl.fold (fun rid s acc -> if s.ordered then acc else (rid, s) :: acc) t.table []
  |> List.sort (fun (_, (a : slot)) (_, (b : slot)) -> compare a.seq b.seq)
  |> List.map (fun (rid, s) -> (rid, s.op))

let gc ?(keep = fun _ -> false) t =
  let now = t.now () in
  let dead = ref [] in
  Tbl.iter
    (fun rid s ->
      let limit = if s.ordered then t.gc_ordered else t.gc_unordered in
      if now - s.added > limit && not ((not s.ordered) && keep rid) then
        dead := rid :: !dead)
    t.table;
  List.iter (Tbl.remove t.table) !dead;
  List.length !dead

let size t = Tbl.length t.table

let unordered_count t =
  Tbl.fold (fun _ s acc -> if s.ordered then acc else acc + 1) t.table 0
