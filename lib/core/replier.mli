(** The leader's replier-selection state (§3.3, §3.4, §3.6).

    For every node the leader tracks the set of reply assignments between
    that node's applied index and the leader's announced index; its size is
    the node's queue depth. A node is eligible while its depth is below the
    bound B. [pick] selects among eligible nodes — shortest queue under
    JBSQ, uniform under RANDOM — and when nobody is eligible the leader
    simply stops announcing (never breaking the invariant, §3.4).

    A crashed node's applied index stops progressing, so its queue fills to
    B and it stops receiving assignments: at most B replies are lost per
    failed node. *)

open Hovercraft_sim
open Hovercraft_r2p2

type t

val create : Jbsq.policy -> bound:int -> nodes:int list -> rng:Rng.t -> t
val bound : t -> int

val nodes : t -> int list
(** Current node set, sorted. *)

val set_nodes : t -> int list -> unit
(** Replace the node set (membership change). Retained nodes keep their
    queues and applied knowledge, removed nodes are forgotten (at most
    [bound] outstanding replies are lost, as for a crash), added nodes
    start fresh. *)

val note_applied : t -> node:int -> applied:int -> unit
(** Update a node's applied index (from local application progress, an
    append_entries reply, or an AGG_COMMIT). Monotone. *)

val applied_of : t -> int -> int
val depth : t -> int -> int

val any_eligible : t -> bool
(** Whether at least one node could receive an assignment right now; used
    to decide when a blocked announce gate is worth re-kicking. *)

val pick : t -> unit -> int option
(** Choose a replier for the next entry to announce, or [None] when no
    node is eligible. Does not record the assignment. *)

val assign : t -> node:int -> index:int -> unit
(** Record that entry [index] was assigned to [node]. Indices assigned to
    one node must be increasing. *)

val set_excluded : t -> int -> bool -> unit
(** Administratively exclude a node (known dead). *)

val reset : t -> unit
(** Forget all assignments and applied knowledge (new leadership). *)
