open Hovercraft_r2p2
module Op = Hovercraft_apps.Op
module Rtypes = Hovercraft_raft.Types

type meta = {
  rid : R2p2.req_id;
  read_only : bool;
  mutable replier : int;
  body_hash : int;
  internal : bool;
}

type cmd = {
  meta : meta;
  body : Op.t;
  config : Rtypes.node_id array option;
      (** [Some members] marks a membership-change entry (Raft §4); the
          full new member list rides in the ordered log like any command
          but is interpreted by the consensus layer, not the app. *)
}

let client_cmd ~rid op =
  {
    meta =
      {
        rid;
        read_only = Op.read_only op;
        replier = -1;
        body_hash = Hashtbl.hash op;
        internal = false;
      };
    body = op;
    config = None;
  }

let internal_noop =
  {
    meta =
      {
        rid = { R2p2.id = -1; src_addr = Hovercraft_net.Addr.Netagg; src_port = 0 };
        read_only = false;
        replier = -1;
        body_hash = 0;
        internal = true;
      };
    body = Op.Nop;
    config = None;
  }

(* Config entries are internal: no client reply, no replier assignment,
   nothing for the app state machine to execute. *)
let config_cmd ~members =
  { internal_noop with config = Some (Array.copy members) }

type snap = {
  s_app : Op.image;
  s_completions : (R2p2.req_id * Op.result * Hovercraft_sim.Timebase.t) list;
  s_preloaded : int;
}

(* Completion records ride inside the snapshot image: a replica that
   installs one must answer retransmissions of covered requests from the
   record, not by re-executing them (exactly-once across install). Each
   record is roughly a rid triple + result + timestamp on the wire. *)
let completion_wire_bytes = 40

let snap_bytes s =
  Op.image_bytes s.s_app
  + (completion_wire_bytes * List.length s.s_completions)
  + 8 (* preload counter *)

type payload =
  | Request of { rid : R2p2.req_id; policy : R2p2.policy; op : Op.t }
  | Response of { rid : R2p2.req_id }
  | Raft of (cmd, snap) Rtypes.message
  | Recovery_request of { rid : R2p2.req_id; asker : int }
  | Recovery_response of { rid : R2p2.req_id; op : Op.t }
  | Probe of { term : int; leader : int }
  | Probe_reply of { term : int }
  | Agg_commit of { term : int; commit : int; applied : int array }
  | Feedback of { rid : R2p2.req_id }
  | Nack of { rid : R2p2.req_id }
  | Wrong_shard of { rid : R2p2.req_id; version : int }
      (** Shard-routing NACK: this group does not own the request's key
          (under the responder's shard-map [version]). Distinct from the
          flow-control [Nack] so the client knows to refresh its map and
          re-route rather than back off. *)
  | Reconfig of { term : int; members : int array }
      (** Leader -> aggregator: the membership changed; flush soft state,
          resize the quorum and rebuild the followers fan-out group. *)
  | Rabia of (cmd, snap) Hovercraft_ordering.Rabia.msg
      (** Leaderless randomized-agreement traffic (the rabia ordering
          backend). Like HovercRaft append_entries, batch values on the
          wire are metadata-sized — bodies ride the client multicast. *)

let meta_wire_bytes = 32
let hdr = R2p2.header_bytes

let ae_bytes ~with_bodies entries =
  let per_entry acc (e : cmd Rtypes.entry) =
    acc + meta_wire_bytes
    + if with_bodies then Op.request_bytes e.cmd.body else 0
  in
  hdr + 32 + Array.fold_left per_entry 0 entries

let payload_bytes ~with_bodies = function
  | Request { op; _ } -> hdr + Op.request_bytes op
  | Response _ ->
      (* The caller sizes responses explicitly (reply bytes depend on the
         execution result); this is the floor. *)
      hdr
  | Raft (Rtypes.Append_entries { entries; _ }) -> ae_bytes ~with_bodies entries
  | Raft (Rtypes.Request_vote _ | Rtypes.Vote _) -> hdr + 24
  | Raft (Rtypes.Append_ack _) -> hdr + 32
  | Raft (Rtypes.Commit_to _ | Rtypes.Agg_ack _ | Rtypes.Timeout_now _) ->
      hdr + 16
  | Raft (Rtypes.Install_snapshot { snap; len; _ }) ->
      (* Per-chunk framing (identity, offset, member list) plus the chunk
         itself; [len] is the slice of the serialized image on this wire. *)
      hdr + 48 + (8 * List.length snap.Hovercraft_raft.Snapshot.members) + len
  | Raft (Rtypes.Install_ack _) -> hdr + 40
  | Recovery_request _ -> hdr + 24
  | Recovery_response { op; _ } -> hdr + 24 + Op.request_bytes op
  | Probe _ | Probe_reply _ -> hdr + 16
  | Agg_commit { applied; _ } -> hdr + 16 + (8 * Array.length applied)
  | Feedback _ | Nack _ -> hdr + 8
  | Wrong_shard _ -> hdr + 16
  | Reconfig { members; _ } -> hdr + 16 + (8 * Array.length members)
  | Rabia msg -> (
      let value_bytes = function
        | Hovercraft_ordering.Rabia.Bot -> 0
        | Hovercraft_ordering.Rabia.Batch arr ->
            meta_wire_bytes * Array.length arr
      in
      match msg with
      | Hovercraft_ordering.Rabia.Proposal { value; _ } ->
          hdr + 24 + value_bytes value
      | Hovercraft_ordering.Rabia.State { value; _ }
      | Hovercraft_ordering.Rabia.Vote { value; _ } ->
          hdr + 32 + value_bytes value
      | Hovercraft_ordering.Rabia.Status _ -> hdr + 16
      | Hovercraft_ordering.Rabia.Repair { decisions; _ } ->
          List.fold_left
            (fun acc (_, v) -> acc + 16 + value_bytes v)
            (hdr + 16) decisions
      | Hovercraft_ordering.Rabia.Snap { meta; _ } ->
          (* Whole-image install: one (large) packet carrying the full
             serialized snapshot. *)
          hdr + 48
          + (8 * List.length meta.Hovercraft_raft.Snapshot.members)
          + meta.Hovercraft_raft.Snapshot.size)

(* Payload tags are interned: hot-path accounting (the per-packet
   rx.<tag> counters) indexes a pre-resolved array by [tag_index] instead
   of allocating "rx." ^ tag and hashing it per packet. [describe] stays
   the human-facing view and shares the same table. *)

let tag_index = function
  | Request _ -> 0
  | Response _ -> 1
  | Raft (Rtypes.Request_vote _) -> 2
  | Raft (Rtypes.Vote _) -> 3
  | Raft (Rtypes.Append_entries _) -> 4
  | Raft (Rtypes.Append_ack _) -> 5
  | Raft (Rtypes.Commit_to _) -> 6
  | Raft (Rtypes.Agg_ack _) -> 7
  | Raft (Rtypes.Timeout_now _) -> 8
  | Raft (Rtypes.Install_snapshot _) -> 9
  | Raft (Rtypes.Install_ack _) -> 10
  | Recovery_request _ -> 11
  | Recovery_response _ -> 12
  | Probe _ -> 13
  | Probe_reply _ -> 14
  | Agg_commit _ -> 15
  | Feedback _ -> 16
  | Nack _ -> 17
  | Wrong_shard _ -> 18
  | Reconfig _ -> 19
  | Rabia (Hovercraft_ordering.Rabia.Proposal _) -> 20
  | Rabia (Hovercraft_ordering.Rabia.State _) -> 21
  | Rabia (Hovercraft_ordering.Rabia.Vote _) -> 22
  | Rabia (Hovercraft_ordering.Rabia.Status _) -> 23
  | Rabia (Hovercraft_ordering.Rabia.Repair _) -> 24
  | Rabia (Hovercraft_ordering.Rabia.Snap _) -> 25

let tag_names =
  [|
    "request";
    "response";
    "request_vote";
    "vote";
    "append_entries";
    "append_ack";
    "commit_to";
    "agg_ack";
    "timeout_now";
    "install_snapshot";
    "install_ack";
    "recovery_request";
    "recovery_response";
    "probe";
    "probe_reply";
    "agg_commit";
    "feedback";
    "nack";
    "wrong_shard";
    "reconfig";
    "rabia_proposal";
    "rabia_state";
    "rabia_vote";
    "rabia_status";
    "rabia_repair";
    "rabia_snap";
  |]

let tag_count = Array.length tag_names
let tag_name i = tag_names.(i)
let describe p = tag_names.(tag_index p)
