(** A HovercRaft server node on the simulated fabric.

    One [Hnode.t] is one server: a NIC port, a network thread (R2P2 +
    consensus processing) and an application thread (state-machine
    execution and client replies), mirroring the paper's two-thread DPDK
    runtime (§6). The node runs in one of four modes, matching the four
    evaluated setups (§7):

    - [Unreplicated]: plain R2P2 service, no fault tolerance;
    - [Vanilla]: Raft integrated in the RPC layer; append_entries carry
      full request bodies; the leader executes and answers everything;
    - [Hover]: HovercRaft — clients multicast bodies, append_entries carry
      metadata only, replies and read-only execution are load balanced
      under bounded queues;
    - [Hover_pp]: HovercRaft++ — additionally fans append_entries in/out
      through the in-network aggregator. *)

open Hovercraft_sim
open Hovercraft_r2p2
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric

type mode = Unreplicated | Vanilla | Hover | Hover_pp

(** How read-only requests are served (§3.5): totally ordered and executed
    on the designated replier (HovercRaft's way), or locally on the leader
    under a quorum lease (the classic alternative — cheaper per read,
    but every read burns leader CPU). *)
type read_mode = Replicated_reads | Leader_leases

(** The ordering backend beneath the HovercRaft dataplane
    ({!Hovercraft_ordering.Ordering.kind}, re-exported): [Raft] is the
    paper's leader-based log; [Rabia] a leaderless randomized-agreement
    machine ({!Hovercraft_ordering.Rabia}) — no elections, no failover
    gap, but per-slot vote rounds. [Rabia] requires [mode = Hover] with
    replicated reads (validated): the aggregated fast path, vanilla body
    shipping, leases, reconfiguration and leadership transfer are all
    leader-shaped. *)
type backend = Hovercraft_ordering.Ordering.kind = Raft | Rabia

val pp_mode : Format.formatter -> mode -> unit
val mode_of_string : string -> (mode, string) result

(** {1 Parameters}

    Knobs are grouped by concern: {!cost_params} calibrates the simulated
    CPU/NIC price of every operation, {!timing_params} holds clocks and
    windows, {!feature_params} toggles protocol variants. Build with
    {!params} and tweak sub-records with nested [with]-update:
    [{ p with timing = { p.timing with heartbeat = Timebase.us 100 } }]. *)

(** Network- and application-thread CPU cost model. *)
type cost_params = {
  link_gbps : float;
  net_rx_packet_ns : int;  (** Base cost of receiving any packet. *)
  net_tx_packet_ns : int;  (** Base cost of sending any packet. *)
  net_per_byte_ns : float;  (** Payload touch cost, both directions. *)
  raft_msg_extra_ns : int;  (** Protocol work per consensus message. *)
  per_entry_tx_ns : int;  (** Serializing one entry into an AE. *)
  per_entry_rx_ns : int;  (** Processing one entry from an AE. *)
  vanilla_entry_extra_ns : int;
      (** VanillaRaft's extra fixed cost per entry per follower AE (request
          fetch, buffer management); HovercRaft appends flat metadata. *)
  ae_body_ns_per_byte : float;
      (** Copying request bodies into per-follower AEs (VanillaRaft only —
          HovercRaft's AEs carry no bodies). *)
  app_per_op_ns : int;  (** Apply-loop overhead per log entry. *)
  stage_handoff_ns : int;
      (** Queue hop between pipeline stages of the compartmentalized net
          path (enqueue + cacheline transfer between cores). Only charged
          when [net_stages > 1]. *)
}

(** Clocks, timeouts and retention windows. *)
type timing_params = {
  heartbeat : Timebase.t;
  election_min : Timebase.t;
  election_max : Timebase.t;
  lease_window : Timebase.t;
      (** Quorum-contact freshness required to serve a lease read; must
          stay below [election_min] (validated). *)
  gc_interval : Timebase.t;
  gc_unordered : Timebase.t;
  gc_ordered : Timebase.t;
  recovery_timeout : Timebase.t;
  probe_timeout : Timebase.t;
}

(** Protocol variants and their knobs. *)
type feature_params = {
  apply_threads : int;
      (** Simulated application threads per node (K, 1..64). 1 keeps the
          paper's serial apply loop. K > 1 replaces it with a
          dependency-aware dispatcher: committed entries with disjoint
          footprints ({!Hovercraft_apps.Op.footprint}) run on separate
          simulated CPUs — same-key operations hash to a fixed thread and
          serialize in log order; global-footprint operations, config
          entries and checkpoint cuts barrier the whole scheduler. State
          mutation stays at dispatch time in log order, so replicas
          remain byte-identical and exactly-once is unaffected; only the
          CPU timing model (throughput, reply latency) parallelizes. *)
  net_stages : int;
      (** Simulated CPUs for the network hot path (1..4). 1 keeps the
          paper's monolithic net thread byte for byte. Higher settings
          compartmentalize it into pipeline stages — ingress (rx decode,
          loss accounting), sequencer (raft feed and ordering, strictly
          serial), fanout (AppendEntries/aggregator bookkeeping, commit
          tracking), replier (reply tx, recovery resolution) — each with
          its own CPU queue; with fewer CPUs than roles, adjacent roles
          share cores from the rx side. Handler logic and message order
          are identical at any setting — only where simulated cycles are
          charged changes — so replicas remain byte-identical across
          stage counts (DESIGN.md §4e). *)
  batch_max : int;
  reply_lb : bool;  (** Load-balance replies/read-only ops (§3.3/§3.5). *)
  lb_policy : Jbsq.policy;
  bound : int;  (** Bounded-queue B (§3.4). *)
  read_mode : read_mode;
  flow_control : bool;  (** Send FEEDBACK to the middlebox per reply. *)
  eager_commit_notify : bool;
      (** In plain HovercRaft with reply LB, let the leader broadcast a
          commit hint as soon as the commit index advances, so follower
          repliers do not wait for the next append_entries. HovercRaft++
          gets this behaviour from AGG_COMMIT regardless. *)
  log_retain : int;
      (** Minimum log suffix each node retains; older entries compact away
          once applied everywhere (or, with snapshots on, once covered by
          the checkpoint — regardless of follower progress). *)
  snapshot_interval : int;
      (** Checkpoint the applied state machine every this many applied
          entries; 0 disables snapshots entirely (the seed behaviour:
          compaction then waits for every follower). *)
  recovery_retry_max : int;
      (** Unicast recovery attempts before escalating the request to a
          cluster-wide broadcast. Retries never stop while the body is
          missing — giving up would wedge the apply loop forever. *)
  loss_prob : float;  (** Random per-packet receive loss (tests). *)
}

type params = {
  mode : mode;
  backend : backend;  (** Ordering backend; [Raft] unless stated. *)
  n : int;  (** Bootstrap cluster size (1 for [Unreplicated]). *)
  seed : int;
  cost : cost_params;
  timing : timing_params;
  features : feature_params;
}

val params : ?mode:mode -> ?backend:backend -> ?n:int -> unit -> params
(** Calibrated defaults (see DESIGN.md §5); [mode] defaults to [Hover],
    [backend] to [Raft], [n] to 3. Validates the result (see
    {!validate_params}). *)

val validate_params : params -> unit
(** Raises [Invalid_argument] on inconsistent settings: [n < 1],
    [election_min] non-positive or above [election_max],
    [lease_window >= election_min] (a lease must not outlive an election),
    [bound < 1], [batch_max < 1], negative retries/retention, [loss_prob]
    outside [[0, 1)], non-positive clocks, and backend-inapplicable
    combinations ([Rabia] with any mode but [Hover], or with
    [Leader_leases]). {!create} calls this, so records assembled by
    [with]-update are checked too. *)

type t

val create :
  ?trace:Hovercraft_obs.Trace.t ->
  ?members:int list ->
  ?passive:bool ->
  Engine.t -> Protocol.payload Fabric.t -> params -> id:int -> t
(** Attach node [id] (address [Node id]) to the fabric and start its
    election clock and GC loops. Nodes join the cluster multicast group
    themselves. [trace] is the event ring protocol events are recorded
    into — pass one ring to every node of a cluster for an interleaved
    timeline (each node creates a private ring otherwise).

    [passive] (default false) suppresses the node's election timeout
    until it first hears from a leader: a node added to a running
    cluster is not in the committed configuration yet, so campaigning
    can only inflate its term — which would depose the legitimate leader
    the moment the join completes. Pass [true] when creating a node that
    joins via reconfiguration.

    [members] is the node's view of the cluster at birth (default
    [0 .. n-1]). A node joining an existing cluster is created with the
    membership it is being added under — including its own id — and
    catches up through the ordinary restart/recovery machinery once the
    leader starts replicating to it.

    Raises [Invalid_argument] if the params are invalid
    ({!validate_params}) or [id] is outside [members]. *)

(** {1 Observers} *)

val id : t -> int
val alive : t -> bool
val mode : t -> mode

val backend : t -> backend
(** Which ordering backend this node runs. *)

val is_leader : t -> bool
(** Whether this node currently leads ([false] on every node under the
    leaderless [Rabia] backend; [true] when unreplicated). *)

val leader_hint : t -> int option
(** This node's current belief about who leads ([None] when unreplicated,
    mid-election, or freshly restarted). *)

val term : t -> int
val commit_index : t -> int
val applied_index : t -> int
val log_length : t -> int

val log_base : t -> int
(** Compaction base of the consensus log: entries at or below it have
    been discarded (0 = nothing compacted). *)

val snapshot_index : t -> int
(** Last index covered by this node's newest checkpoint (taken locally or
    installed); 0 when none. *)

val snapshots_taken : t -> int
val installs_received : t -> int
(** Snapshots this node installed from a leader (catch-up via
    [Install_snapshot] rather than entry replay). *)

val app_fingerprint : t -> int
val executed_ops : t -> int
val replies_sent : t -> int
val store_size : t -> int

val ordering_pending : t -> int
(** Commands sitting in the leaderless backend's proposal pool, waiting
    for a slot to decide them; always 0 under {!Raft}. *)

val ordering_next_slot : t -> int
(** The leaderless backend's next undecided slot (slots ≠ log indices:
    one slot appends a whole batch); 0 under {!Raft}. *)

val recoveries_sent : t -> int

val recovery_escalations : t -> int
(** Recoveries that exhausted their unicast retry budget and fell back to
    a cluster-wide broadcast. *)

val pending_recoveries : t -> int
(** Bodies this node is still trying to fetch. A healthy converged cluster
    quiesces to zero. *)

val port : t -> Protocol.payload Fabric.port

val rx_census : t -> (string * int) list
(** Received messages by payload type (diagnostics / Table 1). *)

val net_busy_time : t -> Timebase.t
(** Total CPU time across every net-path stage CPU. *)

val app_busy_time : t -> Timebase.t
(** Total CPU time across every application thread. *)

val net_stages : t -> int
(** The configured stage count (length of the net-CPU array). *)

val stage_busy_times : t -> (string * Timebase.t) list
(** Per-role CPU time of the pipeline, [(role, busy ns)] in pipeline
    order (ingress, sequencer, fanout, replier). Roles collapsed onto a
    shared core (stage counts below 4) report that core's total. *)

val stage_stalls : t -> int
(** Handoffs that found the downstream stage's queue non-empty (samples
    in the [stage_stall_ns] histogram). 0 when [net_stages = 1]. *)

val apply_threads : t -> int
(** The configured K (length of the application-thread array). *)

val apply_busy_times : t -> Timebase.t array
(** Per-thread CPU time, index = thread. With K = 1 this is the single
    serial apply thread; a same-key conflict chain under K > 1 shows up
    as one hot entry and near-zero siblings. *)

val apply_stalls : t -> int
(** Number of per-thread barrier waits the scheduler recorded (samples in
    the [apply_stall_ns] histogram). 0 when K = 1. *)

(** {2 Log inspection}

    History checkers walk the ordered log through these; the backend
    itself (Raft or Rabia state machine) is not exposed. *)

val log_first_index : t -> int
(** First index still present in the consensus log (1 when nothing has
    compacted; 1 with an empty/absent log). *)

val iter_log : t -> lo:int -> hi:int -> (int -> int -> Protocol.cmd -> unit) -> unit
(** [iter_log t ~lo ~hi f] calls [f idx term cmd] for each log entry in
    [max lo (log_first_index t) .. min hi (log_length t)], in index
    order. No-op when unreplicated. Under the rabia backend [term] is the
    entry's slot number. *)

val aggregated : t -> bool
(** Whether the consensus layer is currently routing replication through
    the in-network aggregator (HovercRaft++ leaders only; always [false]
    under [Rabia]). *)

val metrics : t -> Hovercraft_obs.Metrics.t
(** The node's counter/gauge/histogram registry. Counters include
    [replies_sent], [recoveries_sent], [recovery_escalations],
    [recoveries_resolved], [rejected], [lost_rx], [elections_started],
    [gate_blocked], [gate_rekicks], [reconfigs_applied],
    [transfers_initiated], [snapshots_taken], [snapshots_installed],
    [installs_sent] and per-payload [rx.<tag>] (pre-interned — one
    counter per tag, resolved once at creation); gauges [log_base],
    [snapshot_index], per-thread [apply_busy_ns.<k>] and — when
    [net_stages > 1] — per-role [stage_busy_ns.<name>] /
    [stage_queue_ns.<name>]; histogram [recovery_latency_ns] tracks
    issue-to-resolution time, [install_transfer_ns] the leader-side
    duration of completed snapshot transfers, [apply_stall_ns] the
    per-thread idle waits the parallel-apply scheduler imposes at
    barriers, and [stage_stall_ns] the downstream backlog pipeline
    handoffs observe. *)

val trace : t -> Hovercraft_obs.Trace.t
(** The protocol-event ring this node records into. *)

val snapshot : t -> Hovercraft_obs.Json.t
(** Point-in-time JSON roll-up: role, indices (including [log_base] and
    [snapshot_index]), store and recovery state, membership ([members],
    [config_index], [last_transfer]), replier queue depths (leader only)
    and the full metrics registry. *)

val members : t -> int list
(** Cluster membership as of this node's {e applied} prefix, sorted. *)

val raft_members : t -> int list
(** The consensus layer's effective-on-append membership view; may run
    ahead of {!members} by the one in-flight config entry. *)

val config_index : t -> int
(** Log index of the entry establishing the consensus layer's current
    configuration (0 = bootstrap config). *)

val last_transfer : t -> int option
(** Target of the most recent leadership transfer this node initiated
    (sent [Timeout_now]), if any. *)

val election_timeout : t -> Timebase.t
(** The currently armed election timeout. *)

val redraw_election_timeout : t -> Timebase.t
(** Sample a fresh election timeout from [[election_min, election_max]]
    (inclusive); exposed for statistical tests of the draw. *)

(** {1 Control} *)

val bootstrap : t -> unit
(** Fire an immediate election timeout (used to elect a deterministic
    initial leader at simulation start). No-op under the leaderless
    [Rabia] backend — the first client command starts slot 0. *)

val propose_reconfig : t -> members:int list -> unit
(** Leader only: append a single-server membership-change entry carrying
    the full new member list. The consensus layer rejects the command
    (counted in the [rejected] metric) if this node is not the leader, a
    previous change is still uncommitted, a transfer is pending, or the
    change touches more than one voter. Takes effect on append for
    replication/quorum purposes, and durably — replier set, retirement,
    aggregator hand-off — when the entry is applied.

    Raises [Invalid_argument] under the [Rabia] backend: its candidate
    uniqueness rests on quorum intersection over a static member set. *)

val transfer_leadership : t -> target:int -> unit
(** Leader only: cooperatively hand leadership to [target] (Raft §3.10).
    The leader stops accepting client commands, brings the target fully up
    to date, then tells it to start an election immediately. No-op on
    non-leaders, non-member targets, and self. Raises [Invalid_argument]
    under the leaderless [Rabia] backend. *)

val preload : t -> Hovercraft_apps.Op.t list -> unit
(** Apply operations directly to the local application state, bypassing
    consensus and charging no CPU. Used to populate every replica with the
    same initial dataset before measurement (e.g. YCSB preload); call it
    identically on every node. *)

val preloaded : t -> int
(** How many operations {!preload} applied — executions outside consensus
    that the history checker must subtract from {!executed_ops}. *)

(** {1 Shard routing}

    In a multi-group (sharded) deployment, every node carries a filter
    derived from the deployment's shard map: requests for keys the node's
    group does not own are refused with a {!Protocol.Wrong_shard} NACK
    carrying the map version — except retransmissions of requests the
    group already completed, which are still answered from the completion
    record (the dual-ownership fence that makes exactly-once survive a
    live migration). Keyless operations pass every filter. *)

val set_shard_filter :
  t -> version:int -> (Hovercraft_apps.Op.t -> bool) -> unit
(** Install (or replace) the shard-routing filter. [version] is the shard
    map version the filter reflects. *)

val clear_shard_filter : t -> unit

val shard_version : t -> int
(** Version of the installed filter; 0 when unsharded. *)

val completion_records :
  t -> (R2p2.req_id * Hovercraft_apps.Op.result * Timebase.t) list
(** The live exactly-once completion records in FIFO order — what a
    checkpoint ships, and what a shard migration exports alongside the
    sub-range image. *)

val extract_range :
  t -> keep:(string -> bool) -> Hovercraft_apps.Kvstore.image
(** Deep-copied image of the store keys [keep] accepts, cut from this
    node's applied state (the migration export). *)

val kill : t -> unit
(** Crash: both threads halt (their queued work is lost), the NIC goes
    dark, pending body recoveries are disarmed. The node stays down until
    {!restart}. Idempotent. *)

val restart : t -> unit
(** Bring a killed node back as a follower. Simulated-crash semantics
    (DESIGN.md): Raft persistent state (term, vote, log) and the state
    machine up to the applied index — completion records included —
    survive; the body store, commit knowledge beyond the applied prefix
    and all leader-side state are volatile and rebuilt. The node
    re-registers its NIC port, re-arms its election clock and GC loop,
    and catches up on entries committed during its downtime via
    append-entries backtracking plus body recovery requests (which need
    peers' ordered-body retention, [gc_ordered], to cover the downtime —
    chaos runs extend it accordingly).

    Raises [Invalid_argument] if the node is alive. *)

(**/**)

val debug_recovery : bool ref
(** Internal: verbose tracing of body-recovery triggers. *)
