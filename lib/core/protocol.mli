(** HovercRaft wire protocol: what travels over the fabric.

    The replicated command ([cmd]) pairs the R2P2 ordering metadata with the
    request body. VanillaRaft ships the body inside append_entries;
    HovercRaft ships metadata only and lets followers bind bodies from
    their unordered sets — the simulator reflects this in both the byte
    accounting ({!ae_bytes}) and the node logic (followers in HovercRaft
    mode never read [body] out of an append_entries). *)

open Hovercraft_r2p2

type meta = {
  rid : R2p2.req_id;  (** The unique R2P2 identity triple. *)
  read_only : bool;
  mutable replier : int;
      (** Designated replier node id; -1 until the leader assigns it,
          immutable afterwards (§3.3). *)
  body_hash : int;  (** Guards against metadata collisions (§5). *)
  internal : bool;  (** Leader no-op entries: no client, no multicast body. *)
}

type cmd = {
  meta : meta;
  body : Hovercraft_apps.Op.t;
  config : Hovercraft_raft.Types.node_id array option;
      (** [Some members] marks a membership-change entry (Raft §4): the
          full new member list, interpreted by the consensus layer. *)
}

val client_cmd : rid:R2p2.req_id -> Hovercraft_apps.Op.t -> cmd
val internal_noop : cmd

val config_cmd : members:Hovercraft_raft.Types.node_id array -> cmd
(** An internal membership-change command carrying the new member list. *)

type snap = {
  s_app : Hovercraft_apps.Op.image;
      (** Deep-copied application state at the checkpoint index. *)
  s_completions :
    (R2p2.req_id * Hovercraft_apps.Op.result * Hovercraft_sim.Timebase.t) list;
      (** Exactly-once completion records covering the checkpoint:
          without them, a retransmission of an already-applied request
          would re-execute on a freshly installed replica. *)
  s_preloaded : int;
      (** How many of the image's executed operations were preloaded
          outside consensus (dataset population). Part of the durable
          applied-prefix state: the history checker subtracts it from the
          raw execution counter, so a replica that installs the image
          must inherit it or the exactly-once arithmetic skews. *)
}
(** What a snapshot carries besides the consensus metadata: this is the
    ['snap] instantiation the whole core layer uses. *)

val snap_bytes : snap -> int
(** Estimated serialized size — what chunked transfer divides up. *)

(** Everything a fabric packet can carry. *)
type payload =
  | Request of { rid : R2p2.req_id; policy : R2p2.policy; op : Hovercraft_apps.Op.t }
  | Response of { rid : R2p2.req_id }
  | Raft of (cmd, snap) Hovercraft_raft.Types.message
  | Recovery_request of { rid : R2p2.req_id; asker : int }
  | Recovery_response of { rid : R2p2.req_id; op : Hovercraft_apps.Op.t }
  | Probe of { term : int; leader : int }
      (** New leader -> aggregator liveness check (§5). *)
  | Probe_reply of { term : int }
  | Agg_commit of { term : int; commit : int; applied : int array }
      (** Aggregator -> group: commit index plus per-node completed
          counts for the leader's load balancing (§4). *)
  | Feedback of { rid : R2p2.req_id }
  | Nack of { rid : R2p2.req_id }
  | Wrong_shard of { rid : R2p2.req_id; version : int }
      (** Shard-routing NACK: the receiving group does not own the
          request's key under the responder's shard-map [version]; the
          client should refresh its map and re-route (unlike the
          flow-control [Nack], which means back off). *)
  | Reconfig of { term : int; members : int array }
      (** Leader -> aggregator: membership changed; flush soft state,
          resize the quorum, rebuild the followers fan-out group. *)
  | Rabia of (cmd, snap) Hovercraft_ordering.Rabia.msg
      (** Leaderless randomized-agreement traffic (the rabia ordering
          backend). Batch values on the wire are metadata-sized, like
          HovercRaft append_entries — bodies ride the client multicast. *)

val meta_wire_bytes : int
(** Fixed size of one entry's ordering metadata inside append_entries. *)

val ae_bytes : with_bodies:bool -> cmd Hovercraft_raft.Types.entry array -> int
(** Payload bytes of an append_entries with the given entries; when
    [with_bodies] (VanillaRaft) each entry additionally pays its request
    body. *)

val payload_bytes : with_bodies:bool -> payload -> int
(** Bytes of any payload; [with_bodies] selects the append_entries
    encoding. *)

val describe : payload -> string
(** Short tag for logging/debug counters. *)

(** {1 Interned payload tags}

    The receive path accounts every packet under an ["rx." ^ tag]
    counter; resolving that name per packet means a string allocation
    plus a hashtable probe on the hottest path in the simulator. These
    accessors let a component pre-resolve one counter per tag at
    creation time and index the array by {!tag_index} — no allocation
    per packet. *)

val tag_count : int
(** Number of distinct payload tags; valid indices are
    [0 .. tag_count - 1]. *)

val tag_index : payload -> int
(** Dense, allocation-free index of the payload's tag; agrees with
    {!describe} via [tag_name (tag_index p) == describe p]. *)

val tag_name : int -> string
(** The tag at an index (same strings {!describe} returns). *)
