open Hovercraft_sim
open Hovercraft_r2p2
module Fabric = Hovercraft_net.Fabric
module Addr = Hovercraft_net.Addr

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type t = {
  fabric : Protocol.payload Fabric.t;
  mutable port : Protocol.payload Fabric.port option;
  queues : Jbsq.t;
  assigned : int Rid_tbl.t;  (* rid -> server, for FEEDBACK accounting *)
  mutable forwarded : int;
  mutable rejected : int;
}

let transmit t ~dst payload ~bytes =
  match t.port with
  | Some port -> Fabric.send t.fabric port ~dst ~bytes payload
  | None -> ()

let handle t (pkt : Protocol.payload Fabric.packet) =
  match pkt.payload with
  | Protocol.Request { rid; _ } -> (
      match Jbsq.pick t.queues with
      | Some server ->
          Jbsq.assign t.queues server;
          Rid_tbl.replace t.assigned rid server;
          t.forwarded <- t.forwarded + 1;
          transmit t ~dst:(Addr.Node server) pkt.payload ~bytes:pkt.bytes
      | None ->
          t.rejected <- t.rejected + 1;
          transmit t ~dst:pkt.src (Protocol.Nack { rid })
            ~bytes:(Protocol.payload_bytes ~with_bodies:false (Protocol.Nack { rid })))
  | Protocol.Feedback { rid } -> (
      match Rid_tbl.find_opt t.assigned rid with
      | Some server ->
          Rid_tbl.remove t.assigned rid;
          if Jbsq.depth t.queues server > 0 then Jbsq.complete t.queues server
      | None -> ())
  | Protocol.Response _ | Protocol.Raft _ | Protocol.Recovery_request _
  | Protocol.Recovery_response _ | Protocol.Probe _ | Protocol.Probe_reply _
  | Protocol.Agg_commit _ | Protocol.Nack _ | Protocol.Wrong_shard _
  | Protocol.Reconfig _ | Protocol.Rabia _ ->
      ()

let create engine fabric ~n ?(bound = 16) ?(seed = 97) ~rate_gbps () =
  ignore engine;
  let t =
    {
      fabric;
      port = None;
      queues = Jbsq.create Jbsq.Jbsq ~bound ~n ~rng:(Rng.create seed);
      assigned = Rid_tbl.create 1024;
      forwarded = 0;
      rejected = 0;
    }
  in
  let port =
    Fabric.attach fabric ~addr:Addr.Router ~rate_gbps ~handler:(handle t)
  in
  t.port <- Some port;
  t

let set_excluded t i flag = Jbsq.set_excluded t.queues i flag
let forwarded t = t.forwarded
let rejected t = t.rejected
let outstanding t i = Jbsq.depth t.queues i
