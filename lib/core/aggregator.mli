(** The in-network append_entries aggregator of HovercRaft++ (§4, §6.4).

    Modelled after the paper's Tofino P4 program: per-follower match and
    completed-count registers, the current term, the leader's last log
    index, and the pending flag. The aggregator is soft state — it flushes
    whenever it sees a higher term — and it is semantically part of the
    leader: it fans an append_entries out to the followers, counts
    acknowledgements in the dataplane, and multicasts a single AGG_COMMIT
    (commit index + per-node completed counts) to the whole group once a
    quorum is reached. The leader therefore sends and receives O(1)
    messages per batch regardless of cluster size (Table 1).

    Being an ASIC dataplane, it charges no CPU time; only its port's
    serialization and the fabric latency apply. *)

open Hovercraft_sim

type t

val create :
  Engine.t ->
  Protocol.payload Hovercraft_net.Fabric.t ->
  members:int list ->
  cluster_group:int ->
  followers_group:int ->
  rate_gbps:float ->
  t
(** [members] are the bootstrap cluster node ids (addresses [Node i]); a
    [Reconfig] payload from the leader replaces the set at runtime.
    [followers_group] is managed by the aggregator itself (members = all
    current members minus the current leader); [cluster_group] must
    contain all nodes and is used for AGG_COMMIT. *)

val set_down : t -> bool -> unit
(** Fail / revive the device (drops everything while down). *)

val term : t -> int
val commit : t -> int

val members : t -> int list
(** Current membership as last told by [Reconfig] (sorted). *)

val match_of : t -> int -> int

val forwarded : t -> int
(** append_entries fanned out so far. *)

val commits_sent : t -> int
(** AGG_COMMIT messages multicast so far. *)
