open Hovercraft_sim
open Hovercraft_r2p2
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Cpu = Hovercraft_net.Cpu
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore
module Rnode = Hovercraft_raft.Node
module Rtypes = Hovercraft_raft.Types
module Rlog = Hovercraft_raft.Log
module Rb = Hovercraft_ordering.Rabia
module Metrics = Hovercraft_obs.Metrics
module Trace = Hovercraft_obs.Trace
module Json = Hovercraft_obs.Json

type mode = Unreplicated | Vanilla | Hover | Hover_pp
type read_mode = Replicated_reads | Leader_leases

type backend = Hovercraft_ordering.Ordering.kind = Raft | Rabia

let pp_mode fmt = function
  | Unreplicated -> Format.pp_print_string fmt "unreplicated"
  | Vanilla -> Format.pp_print_string fmt "vanilla-raft"
  | Hover -> Format.pp_print_string fmt "hovercraft"
  | Hover_pp -> Format.pp_print_string fmt "hovercraft++"

let mode_of_string = function
  | "unrep" | "unreplicated" -> Ok Unreplicated
  | "vanilla" | "raft" -> Ok Vanilla
  | "hover" | "hovercraft" -> Ok Hover
  | "hoverpp" | "hovercraft++" -> Ok Hover_pp
  | s -> Error (Printf.sprintf "unknown mode %S" s)

(* Parameters are grouped by concern: [cost] calibrates the simulated
   CPU/NIC price of each operation, [timing] holds every clock and window,
   [features] toggles protocol variants and their knobs. The top level
   keeps only the identity of the experiment (mode, bootstrap size, seed). *)

type cost_params = {
  link_gbps : float;
  net_rx_packet_ns : int;
  net_tx_packet_ns : int;
  net_per_byte_ns : float;
  raft_msg_extra_ns : int;
  per_entry_tx_ns : int;
  per_entry_rx_ns : int;
  vanilla_entry_extra_ns : int;
  ae_body_ns_per_byte : float;
  app_per_op_ns : int;
  stage_handoff_ns : int;
      (* Queue hop between pipeline stages of the compartmentalized net
         path (net_stages > 1): enqueue + cacheline transfer between
         cores. Never charged on the monolithic (net_stages = 1) path. *)
}

type timing_params = {
  heartbeat : Timebase.t;
  election_min : Timebase.t;
  election_max : Timebase.t;
  lease_window : Timebase.t;
  gc_interval : Timebase.t;
  gc_unordered : Timebase.t;
  gc_ordered : Timebase.t;
  recovery_timeout : Timebase.t;
  probe_timeout : Timebase.t;
}

type feature_params = {
  apply_threads : int;
      (* Simulated application threads per node (K). 1 keeps the paper's
         serial apply loop; K > 1 turns the loop into a dependency-aware
         dispatcher that runs key-disjoint committed entries on separate
         CPUs (state mutation stays in log order — only the timing is
         parallel, so replicas remain byte-identical). *)
  net_stages : int;
      (* Simulated CPUs for the network hot path. 1 keeps the paper's
         monolithic net thread; >1 compartmentalizes it into pipeline
         stages (ingress / sequencer / fanout / replier), each with its
         own CPU queue, adjacent roles sharing cores when stages < 4.
         Handler logic is identical at any setting — only where the
         simulated cycles are spent changes, so replicas remain
         byte-identical across stage counts. *)
  batch_max : int;
  reply_lb : bool;
  lb_policy : Jbsq.policy;
  bound : int;
  read_mode : read_mode;
  flow_control : bool;
  eager_commit_notify : bool;
  log_retain : int;
  snapshot_interval : int;
  recovery_retry_max : int;
  loss_prob : float;
}

type params = {
  mode : mode;
  backend : backend;
      (* Which ordering machine sits under the HovercRaft dataplane:
         [Raft] is the paper's leader-based log; [Rabia] the leaderless
         randomized-agreement alternative. Only [Hover] mode supports
         [Rabia] — the aggregated fast path and vanilla's body shipping
         are leader-shaped. *)
  n : int;
  seed : int;
  cost : cost_params;
  timing : timing_params;
  features : feature_params;
}

(* Rejecting invalid combinations here (rather than at first use, deep in
   a run) turns silent misconfiguration — a lease window that can outlive
   an election, a bound that can never admit an entry — into an immediate
   error. Called both by the builder and by [create], so records assembled
   by [with]-update are still checked. *)
let validate_params p =
  let fail fmt = Printf.ksprintf invalid_arg ("Hnode.params: " ^^ fmt) in
  if p.n < 1 then fail "n must be >= 1 (got %d)" p.n;
  if p.timing.election_min <= 0 || p.timing.election_min > p.timing.election_max
  then
    fail "need 0 < election_min <= election_max (got %d..%d)"
      p.timing.election_min p.timing.election_max;
  if p.timing.heartbeat <= 0 then fail "heartbeat must be positive";
  if p.timing.lease_window >= p.timing.election_min then
    fail
      "lease_window (%d) must stay below election_min (%d): a lease that \
       can outlive an election breaks read safety"
      p.timing.lease_window p.timing.election_min;
  if p.timing.gc_interval <= 0 then fail "gc_interval must be positive";
  if p.timing.recovery_timeout <= 0 then fail "recovery_timeout must be positive";
  if p.features.bound < 1 then fail "bound must be >= 1 (got %d)" p.features.bound;
  if p.features.apply_threads < 1 || p.features.apply_threads > 64 then
    fail "apply_threads must be in 1..64 (got %d)" p.features.apply_threads;
  if p.features.net_stages < 1 || p.features.net_stages > 4 then
    fail "net_stages must be in 1..4 (got %d): the pipeline has four roles"
      p.features.net_stages;
  if p.cost.stage_handoff_ns < 0 then
    fail "stage_handoff_ns must be non-negative";
  if p.features.batch_max < 1 then
    fail "batch_max must be >= 1 (got %d)" p.features.batch_max;
  if p.features.log_retain < 0 then fail "log_retain must be non-negative";
  if p.features.snapshot_interval < 0 then
    fail "snapshot_interval must be non-negative (0 disables snapshots)";
  if p.features.recovery_retry_max < 0 then
    fail "recovery_retry_max must be non-negative";
  if p.features.loss_prob < 0. || p.features.loss_prob >= 1. then
    fail "loss_prob must be in [0, 1)";
  (match (p.backend, p.mode) with
  | Raft, _ | Rabia, Hover -> ()
  | Rabia, (Unreplicated | Vanilla | Hover_pp) ->
      fail
        "backend rabia requires mode hovercraft (got %s): leaderless \
         ordering has no leader for vanilla body shipping or the \
         aggregated fast path"
        (Format.asprintf "%a" pp_mode p.mode));
  if p.backend = Rabia && p.features.read_mode = Leader_leases then
    fail
      "backend rabia is incompatible with leader leases: a leaderless \
       backend has no lease holder (use replicated reads)"

let params ?(mode = Hover) ?(backend = Raft) ?(n = 3) () =
  let p =
    {
      mode;
      backend;
      n;
      seed = 42;
      cost =
        {
          link_gbps = 10.0;
          net_rx_packet_ns = 150;
          net_tx_packet_ns = 30;
          net_per_byte_ns = 0.35;
          raft_msg_extra_ns = 400;
          per_entry_tx_ns = 85;
          per_entry_rx_ns = 30;
          vanilla_entry_extra_ns = 75;
          ae_body_ns_per_byte = 0.5;
          app_per_op_ns = 20;
          stage_handoff_ns = 40;
        };
      timing =
        {
          heartbeat = Timebase.us 500;
          election_min = Timebase.ms 2;
          election_max = Timebase.ms 4;
          lease_window = Timebase.ms 1;
          gc_interval = Timebase.ms 10;
          gc_unordered = Timebase.ms 50;
          gc_ordered = Timebase.ms 100;
          recovery_timeout = Timebase.us 200;
          probe_timeout = Timebase.ms 1;
        };
      features =
        {
          apply_threads = 1;
          net_stages = 1;
          batch_max = 64;
          reply_lb = true;
          lb_policy = Jbsq.Jbsq;
          bound = 128;
          read_mode = Replicated_reads;
          flow_control = false;
          eager_commit_notify = true;
          log_retain = 8192;
          snapshot_interval = 0;
          recovery_retry_max = 100;
          loss_prob = 0.;
        };
    }
  in
  validate_params p;
  p

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type t = {
  p : params;
  id : int;
  engine : Engine.t;
  fabric : Protocol.payload Fabric.t;
  mutable port : Protocol.payload Fabric.port option;
  net_cpus : Cpu.t array;
      (* The network hot path (length = features.net_stages). Length 1 is
         the paper's monolithic net thread; longer arrays compartmentalize
         it into pipeline stages (ingress / sequencer / fanout / replier),
         adjacent roles sharing a core when stages < 4. *)
  apps : Cpu.t array;
      (* The application threads (length = features.apply_threads).
         Index 0 runs the serial apply loop; local execution (lease
         reads, unreplicated mode) spreads over all of them by
         footprint. *)
  rng : Rng.t;
  raft : (Protocol.cmd, Protocol.snap) Rnode.t option;
  rabia : (Protocol.cmd, Protocol.snap) Rb.t option;
      (* At most one of [raft]/[rabia] is [Some] — the ordering backend.
         Everything below the ordering layer (apply loop, recovery,
         replier accounting, snapshots) is shared between them. *)
  rabia_members : int array;
      (* Sorted static membership under the rabia backend (reconfig is
         leader-shaped and rejected there): drives the deterministic
         replier rotation and the replay-ownership hash. Empty for raft. *)
  mutable store : Unordered.t;
      (* The body store is RAM: a crash empties it (bodies for unapplied
         entries come back via the recovery path after restart). *)
  replier : Replier.t;
  app_state : Op.state;
  mutable members : int list;
      (* The membership as of the *applied* prefix — every config entry at
         or below [applied_ptr] has taken effect here. The Raft layer's
         view ([Rnode.members]) may run ahead of this (effective on
         append); this one drives the parts of the node that must agree
         with the durable state machine: recovery targets, lease quorums,
         retirement. *)
  mutable alive : bool;
  mutable life : int;
      (* Incremented on every kill: the election-clock and GC loops capture
         the life they were started under and stop when it changes, so a
         quick kill/restart cycle cannot leave two live loops running. *)
  mutable passive : bool;
      (* A node added to a running cluster boots passive: it must not
         campaign (and inflate its term, disrupting the leader it will
         later meet) before it has heard from any leader — it is not in
         the committed configuration yet, so its candidacies can only be
         ignored. First leader contact clears the flag. *)
  mutable last_activity : Timebase.t;
  mutable election_timeout : Timebase.t;
  mutable hb_gen : int;  (* invalidates stale heartbeat loops *)
  mutable apply_busy : bool;
  mutable applied_ptr : int;
  (* Parallel-apply scheduler state (K > 1; idle when apply_threads = 1).
     [applied_ptr] is the dispatch pointer — every entry at or below it
     has mutated the state machine; the watermark below tracks the
     contiguous prefix whose simulated CPU work has also finished, which
     is what the consensus layer (ack piggybacking, replier-queue
     accounting) is told about. *)
  mutable apply_inflight : int;  (* dispatched, CPU work not yet done *)
  apply_done : (int, unit) Hashtbl.t;  (* finished out-of-order entries *)
  mutable apply_watermark : int;
  mutable apply_rr : int;  (* round-robin pointer for footprint-free ops *)
  mutable pumping : bool;
      (* The parallel dispatcher is mid-loop: re-entrant pumps (a
         checkpoint cut inside the loop feeds the consensus layer, whose
         actions pump again) must not start a second loop. *)
  pending_recovery : (int * Timebase.t) Rid_tbl.t;  (* rid -> retries, issued-at *)
  lease_heard : (int, Timebase.t) Hashtbl.t;  (* leader: last contact per node *)
  completions : (Op.result * Timebase.t) Rid_tbl.t;
      (* RIFL-style completion records, built deterministically during
         apply on every replica; replays answer retransmitted requests
         without re-execution. *)
  completion_fifo : (R2p2.req_id * Timebase.t) Queue.t;
  mutable ack_override : Addr.t option;
  mutable probe_sent_term : int;
  mutable last_transfer : int option;
      (* Target of the most recent leadership transfer this node initiated. *)
  mutable last_snap : int;
      (* Index of the newest checkpoint this node holds (taken locally or
         installed); the apply loop cuts the next one [snapshot_interval]
         entries later. *)
  mutable shard_filter : (Op.t -> bool) option;
      (* Shard-routing gate (None outside sharded deployments): accepts
         the operations whose key this node's group owns. Keyless
         operations must be accepted. Deployment state, not node state —
         it survives crashes like the map that produced it. *)
  mutable shard_version : int;
      (* Version of the shard map the filter was installed under; rides in
         Wrong_shard NACKs so clients know how stale their map is. *)
  mutable preloaded : int;
      (* Operations applied via [preload] (dataset population outside
         consensus); the history checker subtracts these from the raw
         execution counter, which they inflate without log entries. *)
  xfer_start : (int, Timebase.t) Hashtbl.t;
      (* Leader: when the in-flight snapshot transfer to each peer began,
         for the install-latency histogram. *)
  (* Observability. The registry owns every counter; the [c_*] handles are
     pre-resolved so the hot paths never pay a by-name lookup. *)
  metrics : Metrics.t;
  trace : Trace.t;
  c_replies : Metrics.counter;
  c_rx : Metrics.counter array;
      (* One pre-interned "rx.<tag>" counter per payload tag, indexed by
         [Protocol.tag_index]: the per-packet account must not allocate a
         name or probe the registry on the hottest path. *)
  c_recoveries : Metrics.counter;
  c_recovery_escalations : Metrics.counter;
  c_recoveries_resolved : Metrics.counter;
  c_rejected : Metrics.counter;
  c_lost_rx : Metrics.counter;
  c_elections : Metrics.counter;
  c_gate_blocked : Metrics.counter;
  c_gate_rekicks : Metrics.counter;
  c_reconfigs : Metrics.counter;
  c_transfers : Metrics.counter;
  c_snapshots : Metrics.counter;
  c_installs_recv : Metrics.counter;
  c_installs_sent : Metrics.counter;
  g_log_base : Metrics.gauge;
  g_snap_index : Metrics.gauge;
  g_apply_busy : Metrics.gauge array;  (* per-thread busy ns, one gauge each *)
  h_recovery_ns : Metrics.histogram;
  h_install_ns : Metrics.histogram;
  h_apply_stall : Metrics.histogram;
      (* Scheduler stall: per-thread idle wait imposed by a barrier
         (global-footprint op, config entry, or checkpoint cut). *)
  g_stage_busy : Metrics.gauge array;
      (* Per-role "stage_busy_ns.<name>" (empty when net_stages = 1):
         busy time of the CPU serving each role — roles sharing a core
         report the same number. *)
  g_stage_queue : Metrics.gauge array;
      (* Per-role "stage_queue_ns.<name>": backlog of the role's CPU
         queue as of the last handoff into it. *)
  h_stage_stall : Metrics.histogram option;
      (* Handoff stall: the downstream stage's backlog at each hop —
         how long the handed-off work will sit queued before running. *)
  mutable announce_stalled : bool;
      (* The announce gate returned None (every replier queue full): nothing
         will be announced until [note_applied] drains a queue and re-kicks
         replication (the gated-announce stall fix). *)
}

let debug_recovery = ref false

let commit_index_internal t =
  match (t.raft, t.rabia) with
  | Some r, _ -> Rnode.commit_index r
  | None, Some rb -> Rb.commit_index rb
  | None, None -> 0

let has_consensus t = t.raft <> None || t.rabia <> None

let with_bodies t = t.p.mode = Vanilla

(* The live completion records in FIFO (insertion/expiry) order — the
   form both checkpoints and shard-migration exports ship them in. *)
let completion_records t =
  List.rev
    (Queue.fold
       (fun acc (rid, _) ->
         match Rid_tbl.find_opt t.completions rid with
         | Some (result, at) -> (rid, result, at) :: acc
         | None -> acc)
       [] t.completion_fifo)

(* ------------------------------------------------------------------ *)
(* Pipeline stages of the network hot path                             *)

(* The compartmentalization cut lines (DESIGN.md §4e): ingress owns rx
   decode and loss accounting; the sequencer owns the raft feed and
   ordering (strictly serial); fanout owns AppendEntries/aggregator
   bookkeeping and commit tracking; the replier owns reply tx and
   recovery resolution. With fewer CPUs than roles, adjacent roles
   collapse onto shared cores from the rx side: 2 CPUs split rx-side
   (ingress+sequencer) from tx-side (fanout+replier); 3 give the rx side
   its own pair. Role-to-CPU mapping is [role * stages / 4]. *)
let stage_names = [| "ingress"; "sequencer"; "fanout"; "replier" |]
let n_stage_roles = Array.length stage_names
let stage_ingress = 0
let stage_sequencer = 1
let stage_fanout = 2
let stage_replier = 3
let staged t = Array.length t.net_cpus > 1

let stage_cpu t role =
  t.net_cpus.(role * Array.length t.net_cpus / n_stage_roles)

(* Census a handoff into [role] and return its CPU: the destination
   queue's backlog is how long the handed-off work will sit before
   running — the signal that shows which stage binds next. Free (and
   silent) on the monolithic path. *)
let stage_handoff t role =
  let cpu = stage_cpu t role in
  (match t.h_stage_stall with
  | Some h ->
      let wait = Cpu.backlog cpu in
      if wait > 0 then Metrics.observe h wait;
      Metrics.set t.g_stage_queue.(role) wait
  | None -> ());
  cpu

(* ------------------------------------------------------------------ *)
(* Transmission                                                        *)

let tx_cost t ~bytes ~extra =
  t.p.cost.net_tx_packet_ns
  + int_of_float (t.p.cost.net_per_byte_ns *. float_of_int bytes)
  + extra

(* Consensus and recovery traffic leaves through the network thread's TX
   queue; client replies leave through the application thread's (§6). *)
let transmit_on t cpu ~dst ~bytes ~extra payload =
  Cpu.exec cpu ~cost:(tx_cost t ~bytes ~extra) (fun () ->
      match t.port with
      | Some port when t.alive -> Fabric.send t.fabric port ~dst ~bytes payload
      | Some _ | None -> ())

(* Stage-routed tx: on the monolithic path every role is the same CPU and
   no handoff is charged, so this degenerates to the historical
   single-net-thread behavior byte for byte. *)
let transmit_stage t role ~dst ?(extra = 0) payload =
  let bytes = Protocol.payload_bytes ~with_bodies:(with_bodies t) payload in
  let cpu = stage_handoff t role in
  let extra = if staged t then extra + t.p.cost.stage_handoff_ns else extra in
  transmit_on t cpu ~dst ~bytes ~extra payload

(* Consensus fan-out traffic (AE, votes, aggregator control). *)
let transmit_net t ~dst ?extra payload =
  transmit_stage t stage_fanout ~dst ?extra payload

(* ------------------------------------------------------------------ *)
(* Observability helpers                                               *)

(* [detail] is a thunk so that filtered-out events never pay for string
   formatting — tracing must stay cheap enough to leave on. *)
let tr t sev ~kind detail =
  if Trace.enabled t.trace ~node:t.id sev then
    Trace.record t.trace ~at:(Engine.now t.engine) ~node:t.id sev ~kind
      ~detail:(detail ())

(* A pending recovery is resolved by whichever copy of the body arrives
   first: a recovery_response, a client retransmission, or a duplicate
   multicast delivery. All paths funnel through here so issued = resolved +
   still-pending always holds. *)
let resolve_recovery t rid =
  match Rid_tbl.find_opt t.pending_recovery rid with
  | None -> ()
  | Some (retries, issued_at) ->
      Rid_tbl.remove t.pending_recovery rid;
      Metrics.incr t.c_recoveries_resolved;
      Metrics.observe t.h_recovery_ns (Engine.now t.engine - issued_at);
      tr t Trace.Info ~kind:"recovery_resolved" (fun () ->
          Format.asprintf "%a after %d retries, %dns" R2p2.pp_req_id rid retries
            (Engine.now t.engine - issued_at))

(* Power the node down (crash, or retirement after removal from the
   configuration). Needed by the apply path, so it lives before it;
   [kill] below is the public alias. *)
let halt t =
  if t.alive then begin
    t.alive <- false;
    t.life <- t.life + 1;
    Array.iter Cpu.halt t.net_cpus;
    Array.iter Cpu.halt t.apps;
    (* Pending recoveries are volatile: their retry timers check this
       table, so clearing it also disarms them. *)
    Rid_tbl.reset t.pending_recovery;
    (* So is the parallel dispatcher's in-flight window: the CPUs' queued
       closures died with the halt above. The watermark is recomputed
       from the durable applied index at restart. *)
    t.apply_inflight <- 0;
    Hashtbl.reset t.apply_done;
    tr t Trace.Warn ~kind:"killed" (fun () ->
        Printf.sprintf "term=%d applied=%d"
          (match t.raft with Some r -> Rnode.term r | None -> 0)
          t.applied_ptr);
    match t.port with Some p -> Fabric.set_down p true | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Raft plumbing                                                       *)

let is_leader t =
  match t.raft with
  | Some r -> Rnode.role r = Rnode.Leader
  | None -> t.rabia = None (* unreplicated acts as its own leader *)

(* Which node answers retransmissions of completed requests (and fences
   disowned shard keys). Leader-based backends: the leader. Leaderless:
   there is no leader, so ownership is a deterministic hash of the
   request id over the static membership — exactly one live responder
   per rid, same on every replica. *)
let replays_here t rid =
  match t.rabia with
  | Some _ ->
      let n = Array.length t.rabia_members in
      n > 0 && t.rabia_members.(R2p2.req_id_hash rid land max_int mod n) = t.id
  | None -> is_leader t

let leader_addr t =
  match t.raft with
  | Some r -> (
      match Rnode.leader_hint r with Some l -> Some (Addr.Node l) | None -> None)
  | None -> None

let raft_send_extra t = function
  | Rtypes.Append_entries { entries; _ } ->
      let base = t.p.cost.per_entry_tx_ns * Array.length entries in
      if with_bodies t then begin
        (* VanillaRaft: for every entry of every per-follower AE the leader
           fetches the request and copies its body; HovercRaft appends
           fixed-size metadata and never touches bodies here (§3.2). *)
        let body_bytes =
          Array.fold_left
            (fun acc (e : Protocol.cmd Rtypes.entry) ->
              acc + Op.request_bytes e.cmd.Protocol.body)
            0 entries
        in
        base
        + (t.p.cost.vanilla_entry_extra_ns * Array.length entries)
        + int_of_float (t.p.cost.ae_body_ns_per_byte *. float_of_int body_bytes)
      end
      else base
  | Rtypes.Install_snapshot { len; _ } ->
      (* Serializing a chunk of the image costs like serializing the same
         bytes of entry bodies. *)
      int_of_float (t.p.cost.ae_body_ns_per_byte *. float_of_int len)
  | Rtypes.Request_vote _ | Rtypes.Vote _ | Rtypes.Append_ack _
  | Rtypes.Commit_to _ | Rtypes.Agg_ack _ | Rtypes.Timeout_now _
  | Rtypes.Install_ack _ ->
      0

(* Rabia wire costs mirror the raft model: batch values carry fixed-size
   metadata per entry (bodies ride the client multicast, as in HovercRaft
   append_entries), whole-image installs pay the serialization rate. *)
let rabia_value_entries = function
  | Rb.Bot -> 0
  | Rb.Batch arr -> Array.length arr

let rabia_msg_entries = function
  | Rb.Proposal { value; _ } | Rb.State { value; _ } | Rb.Vote { value; _ } ->
      rabia_value_entries value
  | Rb.Repair { decisions; _ } ->
      List.fold_left (fun acc (_, v) -> acc + rabia_value_entries v) 0 decisions
  | Rb.Status _ | Rb.Snap _ -> 0

let rabia_send_extra t = function
  | Rb.Snap { meta; _ } ->
      int_of_float
        (t.p.cost.ae_body_ns_per_byte
        *. float_of_int meta.Hovercraft_raft.Snapshot.size)
  | msg -> t.p.cost.per_entry_tx_ns * rabia_msg_entries msg

let rec feed_raft t input =
  match t.raft with
  | None -> ()
  | Some raft ->
      if t.alive then
        let actions = Rnode.handle raft input in
        List.iter (perform t) actions

and perform t action =
  match action with
  | Rnode.Send (peer, msg) ->
      let dst =
        match (msg, t.ack_override) with
        | Rtypes.Append_ack { success = true; _ }, Some src -> src
        | _, _ -> Addr.Node peer
      in
      (match msg with
      | Rtypes.Append_entries { entries; prev_idx; _ } ->
          tr t Trace.Debug ~kind:"ae_sent" (fun () ->
              Printf.sprintf "to=%d prev=%d entries=%d" peer prev_idx
                (Array.length entries))
      | _ -> ());
      transmit_net t ~dst ~extra:(raft_send_extra t msg) (Protocol.Raft msg)
  | Rnode.Send_aggregate msg ->
      (match msg with
      | Rtypes.Append_entries { entries; prev_idx; _ } ->
          tr t Trace.Debug ~kind:"ae_sent" (fun () ->
              Printf.sprintf "to=agg prev=%d entries=%d" prev_idx
                (Array.length entries))
      | _ -> ());
      transmit_net t ~dst:Addr.Netagg ~extra:(raft_send_extra t msg)
        (Protocol.Raft msg)
  | Rnode.Commit_advanced _ -> pump t
  | Rnode.Snapshot_installed meta -> on_snapshot_installed t meta
  | Rnode.Appended idx -> on_appended t idx
  | Rnode.Became_leader -> on_became_leader t
  | Rnode.Became_follower _ -> on_became_follower t
  | Rnode.Leader_activity ->
      t.passive <- false;
      t.last_activity <- Engine.now t.engine
  | Rnode.Reject_command _ -> Metrics.incr t.c_rejected

and on_appended t idx =
  (* The leader just ordered a request: its body is now bound to the log. *)
  match t.raft with
  | None -> ()
  | Some raft ->
      let entry = Rlog.get (Rnode.log raft) idx in
      if not entry.cmd.Protocol.meta.internal then
        (match t.p.mode with
        | Hover | Hover_pp ->
            ignore (Unordered.mark_ordered t.store entry.cmd.Protocol.meta.rid)
        | Vanilla | Unreplicated -> ())

and feed_rabia t input =
  match t.rabia with
  | None -> ()
  | Some rb ->
      if t.alive then
        let actions = Rb.handle rb input in
        List.iter (perform_rabia t) actions

and perform_rabia t action =
  match action with
  | Rb.Send (peer, msg) ->
      transmit_net t ~dst:(Addr.Node peer) ~extra:(rabia_send_extra t msg)
        (Protocol.Rabia msg)
  | Rb.Commit_advanced _ -> pump t
  | Rb.Appended_range (lo, hi) -> on_rabia_appended t lo hi
  | Rb.Snapshot_installed meta -> on_snapshot_installed t meta

(* A decided slot (or a repair) just entered the log. Two leader duties
   move here under the leaderless backend: replier assignment — a
   deterministic rotation over the static membership, same on every
   replica, replacing the leader's JBSQ pick — and the ordered-mark /
   body-recovery step the raft path runs in [bind_bodies]. *)
and on_rabia_appended t lo hi =
  match t.rabia with
  | None -> ()
  | Some rb ->
      let log = Rb.log rb in
      let n = Array.length t.rabia_members in
      for idx = lo to hi do
        let entry = Rlog.get log idx in
        let meta = entry.Rtypes.cmd.Protocol.meta in
        if not meta.internal then begin
          (* The cmd value is shared across replicas (simulated wire):
             first appender assigns; the rule is index-determined, so
             every replica computes the same node. *)
          if meta.replier < 0 && n > 0 then
            meta.replier <- t.rabia_members.(idx mod n);
          if idx > t.applied_ptr then
            if
              (not (Unordered.mark_ordered t.store meta.rid))
              && not (Rid_tbl.mem t.completions meta.rid)
            then request_recovery t meta.rid
        end
      done

and gate t idx (cmd : Protocol.cmd) =
  if not t.p.features.reply_lb then begin
    cmd.meta.replier <- t.id;
    true
  end
  else
    match Replier.pick t.replier () with
    | Some node ->
        cmd.meta.replier <- node;
        Replier.assign t.replier ~node ~index:idx;
        true
    | None -> false

(* Every applied-index update on the leader goes through here: when the
   announce gate had vetoed (all replier queues at the bound) and a queue
   just drained, replication must be re-kicked immediately — otherwise the
   pipeline sits idle until the next heartbeat even though commit could
   advance (the gated-announce stall). *)
and note_applied t ~node ~applied =
  Replier.note_applied t.replier ~node ~applied;
  if t.announce_stalled && is_leader t && Replier.any_eligible t.replier then begin
    t.announce_stalled <- false;
    Metrics.incr t.c_gate_rekicks;
    tr t Trace.Debug ~kind:"announce_rekick" (fun () ->
        Printf.sprintf "node=%d applied=%d" node applied);
    feed_raft t Rnode.Announce_kick
  end

and on_became_leader t =
  match t.raft with
  | None -> ()
  | Some raft ->
      Replier.set_nodes t.replier (Rnode.members raft);
      Replier.reset t.replier;
      t.announce_stalled <- false;
      Replier.note_applied t.replier ~node:t.id ~applied:t.applied_ptr;
      (match t.p.mode with
      | Hover | Hover_pp ->
          Rnode.set_announce_gate raft (Some (gate t));
          (* Ingest requests the previous leader never ordered (§5). *)
          List.iter
            (fun (rid, op) ->
              feed_raft t (Rnode.Client_command (Protocol.client_cmd ~rid op)))
            (Unordered.unordered_bindings t.store)
      | Vanilla | Unreplicated -> ());
      if t.p.mode = Hover_pp then begin
        (* Tell the aggregator who is in the cluster before enabling the
           fast path: its registers and quorum must match our view. *)
        transmit_net t ~dst:Addr.Netagg
          (Protocol.Reconfig
             {
               term = Rnode.term raft;
               members = Array.of_list (Rnode.members raft);
             });
        t.probe_sent_term <- Rnode.term raft;
        transmit_net t ~dst:Addr.Netagg
          (Protocol.Probe { term = Rnode.term raft; leader = t.id })
      end;
      start_heartbeats t

and on_became_follower t =
  t.hb_gen <- t.hb_gen + 1;
  t.probe_sent_term <- -1;
  t.announce_stalled <- false;
  t.last_activity <- Engine.now t.engine

and start_heartbeats t =
  t.hb_gen <- t.hb_gen + 1;
  let gen = t.hb_gen in
  let rec loop () =
    Engine.after t.engine t.p.timing.heartbeat (fun () ->
        if t.alive && t.hb_gen = gen && is_leader t then begin
          feed_raft t Rnode.Heartbeat_timeout;
          loop ()
        end)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The apply loop (application thread)                                 *)

and body_for t (cmd : Protocol.cmd) =
  if cmd.meta.internal then Some Op.Nop
  else
    match t.p.mode with
    | Vanilla -> Some cmd.body
    | Hover | Hover_pp -> Unordered.find t.store cmd.meta.rid
    | Unreplicated -> Some cmd.body

and consensus_log t =
  match (t.raft, t.rabia) with
  | Some r, _ -> Rnode.log r
  | None, Some rb -> Rb.log rb
  | None, None -> invalid_arg "Hnode: no ordering backend"

(* Applied-index feedback to whichever ordering backend is live (at most
   one is): ack piggybacking for raft, checkpoint accounting for both. *)
and feed_applied t idx =
  feed_raft t (Rnode.Applied_up_to idx);
  feed_rabia t (Rb.Applied_up_to idx)

(* Whether a checkpoint may cut at [idx]: raft entries are singletons,
   but a rabia slot appends as one atomic batch — an image cut mid-batch
   could never be named by a slot and would strand repairs. *)
and slot_final_at t idx =
  match t.rabia with Some rb -> Rb.slot_final rb idx | None -> true

and pump t =
  if has_consensus t then
    if Array.length t.apps = 1 then pump_serial t else pump_parallel t

and pump_serial t =
  if t.alive && (not t.apply_busy) && t.applied_ptr < commit_index_internal t
  then begin
    let idx = t.applied_ptr + 1 in
    let entry = Rlog.get (consensus_log t) idx in
    let cmd = entry.Rtypes.cmd in
    match body_for t cmd with
    | None when Rid_tbl.mem t.completions cmd.meta.rid ->
        (* A re-ordered duplicate of an already-applied command (a
           leaderless backend can decide the same rid at two slots after
           a snapshot catch-up): the body may be gone everywhere, but the
           completion record already holds the result — no recovery could
           ever succeed, and none is needed to replay it. *)
        apply_one t idx cmd Op.Nop
    | None -> request_recovery t cmd.meta.rid
    | Some op -> apply_one t idx cmd op
  end

(* The dependency-aware dispatcher (K > 1). Entries leave the committed
   prefix strictly in log order and mutate the state machine at dispatch
   time — exactly like the serial loop — so replicas stay byte-identical
   no matter how thread timing interleaves; only the simulated CPU work
   (execution cost, the reply leaving the wire, the applied watermark the
   consensus layer sees) is spread over K threads. The in-flight window
   bounds how far dispatch runs ahead of finished work, so a crash can
   only lose a bounded suffix of timing (never state: mutation + record
   advance atomically at dispatch). *)
and apply_window t = 8 * Array.length t.apps

and pump_parallel t =
  if not t.pumping then begin
    t.pumping <- true;
    let stalled = ref false in
    while
      (not !stalled) && t.alive
      && t.apply_inflight < apply_window t
      && t.applied_ptr < commit_index_internal t
    do
      let idx = t.applied_ptr + 1 in
      let entry = Rlog.get (consensus_log t) idx in
      let cmd = entry.Rtypes.cmd in
      match body_for t cmd with
      | None when Rid_tbl.mem t.completions cmd.meta.rid ->
          (* Bodyless duplicate: replay from the completion record (see
             the serial pump). *)
          dispatch_one t idx cmd Op.Nop
      | None ->
          request_recovery t cmd.meta.rid;
          stalled := true
      | Some op -> dispatch_one t idx cmd op
    done;
    t.pumping <- false
  end

(* Thread selection: keyed operations hash to a fixed thread, so two
   operations on the same key always land on the same CPU and serialize
   in log order on its FIFO queue; footprint-free operations round-robin;
   global footprints return None and barrier. Deterministic — a function
   of the log prefix alone, never of timing. *)
and apply_thread_of t op =
  match Op.footprint op with
  | Op.Fp_key k -> Some (Kvstore.slot_of_key ~slots:(Array.length t.apps) k)
  | Op.Fp_none ->
      let k = t.apply_rr in
      t.apply_rr <- (t.apply_rr + 1) mod Array.length t.apps;
      Some k
  | Op.Fp_global -> None

(* Quiesce the scheduler: advance every thread to the common idle
   horizon, recording each thread's imposed wait in the stall histogram.
   Returns nothing useful beyond its effect — after it, all threads fall
   idle at the same instant, so whatever executes next overlaps with
   nothing. *)
and apply_quiesce t =
  let horizon =
    Array.fold_left (fun acc c -> max acc (Cpu.horizon c)) 0 t.apps
  in
  Array.iter
    (fun c ->
      let stall = horizon - Cpu.horizon c in
      if stall > 0 then Metrics.observe t.h_apply_stall stall;
      Cpu.advance_to c horizon)
    t.apps

and dispatch_one t idx (cmd : Protocol.cmd) op =
  (* Entries that cannot overlap anything take a barrier: global
     footprints, config entries (membership is whole-machine state) and
     entries about to cut a checkpoint (the image must capture a quiesced
     machine — the atomic section that used to be [apply_one]'s becomes
     this barrier). The checkpoint test mirrors the one in
     [apply_atomic]. *)
  let snapshot_due =
    t.p.features.snapshot_interval > 0
    && idx - t.last_snap >= t.p.features.snapshot_interval
    && has_consensus t && slot_final_at t idx
  in
  let thread =
    if cmd.Protocol.config <> None || snapshot_due then None
    else apply_thread_of t op
  in
  let k =
    match thread with
    | Some k -> k
    | None ->
        apply_quiesce t;
        0
  in
  let cost, should_reply, reply_bytes = apply_atomic t idx cmd op in
  t.apply_inflight <- t.apply_inflight + 1;
  let cpu = t.apps.(k) in
  Cpu.exec cpu ~cost (fun () ->
      apply_completed t idx cmd ~should_reply ~reply_bytes);
  (* A barriered entry also excludes everything behind it: hold the
     sibling threads until it retires. *)
  if thread = None then
    let after = Cpu.horizon cpu in
    Array.iter (fun c -> Cpu.advance_to c after) t.apps

(* Delayed completion of a dispatched entry (runs on its thread's CPU,
   [cost] later). The consensus layer's applied counter — and the
   replier-queue accounting and announce re-kick driven from it — advance
   along the contiguous watermark, never past a still-running entry. *)
and apply_completed t idx (cmd : Protocol.cmd) ~should_reply ~reply_bytes =
  apply_visible t cmd ~should_reply ~reply_bytes;
  t.apply_inflight <- max 0 (t.apply_inflight - 1);
  if idx > t.apply_watermark then begin
    Hashtbl.replace t.apply_done idx ();
    let advanced = ref false in
    while Hashtbl.mem t.apply_done (t.apply_watermark + 1) do
      Hashtbl.remove t.apply_done (t.apply_watermark + 1);
      t.apply_watermark <- t.apply_watermark + 1;
      advanced := true
    done;
    if !advanced then begin
      if is_leader t then
        note_applied t ~node:t.id ~applied:t.apply_watermark;
      feed_applied t t.apply_watermark
    end
  end;
  pump t

(* A committed configuration entry reached the apply loop: the durable
   membership changes here. Since only one change can be in flight, by the
   time the entry is applied (commit has passed it) the applied view and
   the Raft layer's effective-on-append view coincide — so this is also
   the safe moment to hand the new membership to the aggregator and
   re-enable the fast path. *)
and on_config_applied t ms =
  let ms = List.sort_uniq compare (Array.to_list ms) in
  Metrics.incr t.c_reconfigs;
  tr t Trace.Info ~kind:"config_applied" (fun () ->
      Printf.sprintf "members=[%s]"
        (String.concat ";" (List.map string_of_int ms)));
  t.members <- ms;
  if not (List.mem t.id ms) then begin
    (* Removed from the cluster. The entry is committed (we only apply
       committed entries) and the Raft layer has already stepped a removed
       leader down, so the node's duty is done: power off. Deferred one
       engine step so the current apply finishes cleanly.

       The uniform rule: retire only if the exclusion still stands in the
       consensus layer's current (effective-on-append) configuration.
       Newcomers catching up via snapshot never even apply historical
       config entries (the image's membership supersedes them), but a
       snapshot-less bootstrap still replays history, so the guard stays. *)
    let still_removed =
      match t.raft with
      | Some raft -> not (Rnode.is_member raft t.id)
      | None -> true
    in
    if still_removed then Engine.after t.engine 0 (fun () -> halt t)
  end
  else if is_leader t then begin
    Replier.set_nodes t.replier ms;
    if t.p.mode = Hover_pp then
      match t.raft with
      | Some raft ->
          let term = Rnode.term raft in
          (* Same soft-state flush as a term change (§4): reset the
             registers and quorum, then re-probe to re-enable the
             aggregated path (it was dropped when the config entry was
             appended). *)
          transmit_net t ~dst:Addr.Netagg
            (Protocol.Reconfig { term; members = Array.of_list ms });
          t.probe_sent_term <- term;
          transmit_net t ~dst:Addr.Netagg
            (Protocol.Probe { term; leader = t.id })
      | None -> ()
  end

(* The consensus layer accepted a full snapshot (emitted strictly before
   the accompanying commit advance): replace the state machine wholesale.
   The completion records ride in the image — a retransmission of a
   request the snapshot covers must be answered from the record, never
   re-executed, so exactly-once survives the install. Everything volatile
   that referred to the replaced prefix (pending body recoveries) is
   superseded by the image and dropped. *)
and on_snapshot_installed t (meta : Protocol.snap Hovercraft_raft.Snapshot.meta) =
  let s = meta.Hovercraft_raft.Snapshot.data in
  if meta.Hovercraft_raft.Snapshot.last_idx <= t.applied_ptr then begin
    (* The image is a prefix of what this replica has already executed —
       possible under parallel apply, where the dispatch pointer runs
       ahead of the durable watermark the consensus layer advertises
       (installs are accepted against that watermark). The running state
       strictly covers the image; overwriting would roll executed entries
       back and diverge the replicas. Keep the state, record the
       checkpoint. *)
    t.last_snap <- max t.last_snap meta.Hovercraft_raft.Snapshot.last_idx;
    Metrics.incr t.c_installs_recv;
    Metrics.set t.g_snap_index
      (max meta.Hovercraft_raft.Snapshot.last_idx
         (Metrics.gauge_value t.g_snap_index));
    tr t Trace.Info ~kind:"snapshot_skipped" (fun () ->
        Printf.sprintf "idx=%d already applied (applied=%d)"
          meta.Hovercraft_raft.Snapshot.last_idx t.applied_ptr)
  end
  else install_snapshot_state t meta s

and install_snapshot_state t (meta : Protocol.snap Hovercraft_raft.Snapshot.meta)
    (s : Protocol.snap) =
  Op.install t.app_state s.Protocol.s_app;
  Rid_tbl.reset t.completions;
  Queue.clear t.completion_fifo;
  List.iter
    (fun (rid, result, at) ->
      Rid_tbl.replace t.completions rid (result, at);
      Queue.push (rid, at) t.completion_fifo)
    s.Protocol.s_completions;
  Rid_tbl.reset t.pending_recovery;
  t.members <- meta.Hovercraft_raft.Snapshot.members;
  t.applied_ptr <- max t.applied_ptr meta.Hovercraft_raft.Snapshot.last_idx;
  t.apply_watermark <-
    max t.apply_watermark meta.Hovercraft_raft.Snapshot.last_idx;
  (* The preload counter is part of the applied-prefix state: the checker
     computes consensus-driven executions as [executed - preloaded], and
     the image's execution counter includes the source's preloads. *)
  t.preloaded <- s.Protocol.s_preloaded;
  t.last_snap <- max t.last_snap meta.Hovercraft_raft.Snapshot.last_idx;
  Metrics.incr t.c_installs_recv;
  Metrics.set t.g_snap_index meta.Hovercraft_raft.Snapshot.last_idx;
  tr t Trace.Info ~kind:"snapshot_installed" (fun () ->
      Printf.sprintf "idx=%d term=%d bytes=%d"
        meta.Hovercraft_raft.Snapshot.last_idx
        meta.Hovercraft_raft.Snapshot.last_term
        meta.Hovercraft_raft.Snapshot.size);
  (* Catching up through an image skips the per-slot decisions it
     covers, so the leaderless proposal pool may still hold commands the
     cluster decided inside that window; left alone they would be
     re-proposed and ordered a second time. The restored completion
     records say which ones those are. *)
  (match t.rabia with
  | Some rb ->
      Rb.filter_pending rb ~keep:(fun (c : Protocol.cmd) ->
          not (Rid_tbl.mem t.completions c.Protocol.meta.rid))
  | None -> ());
  (* Same retirement rule as an applied config entry: the image's
     membership is durable state, but only the consensus layer's current
     configuration decides whether the exclusion still stands. *)
  if not (List.mem t.id t.members) then begin
    let still_removed =
      match t.raft with
      | Some raft -> not (Rnode.is_member raft t.id)
      | None -> true
    in
    if still_removed then Engine.after t.engine 0 (fun () -> halt t)
  end
  else if is_leader t then Replier.set_nodes t.replier t.members

(* Cut a checkpoint of the applied state machine: the deep-copied image,
   the live completion records (in FIFO order, so expiry keeps working
   after an install) and the applied-prefix membership, identified by
   (idx, term-at-idx). Runs inside apply_one's pre-delay atomic section,
   so the image is exactly the state after entry [idx]. *)
and take_snapshot t idx =
  let completions = completion_records t in
  let data =
    {
      Protocol.s_app = Op.snapshot t.app_state;
      s_completions = completions;
      s_preloaded = t.preloaded;
    }
  in
  let last_term = (Rlog.get (consensus_log t) idx).Rtypes.term in
  let meta =
    Hovercraft_raft.Snapshot.make ~last_idx:idx ~last_term ~members:t.members
      ~size:(Protocol.snap_bytes data) ~data
  in
  (* The consensus layer's applied counter normally advances after the
     apply delay (it only feeds ack piggybacking); the checkpoint is cut
     inside the atomic section, so tell it about [idx] first or it would
     reject a snapshot "beyond" what it thinks is applied. *)
  feed_applied t idx;
  (match (t.raft, t.rabia) with
  | Some raft, _ -> Rnode.set_snapshot raft meta
  | None, Some rb -> Rb.set_snapshot rb meta
  | None, None -> ());
  t.last_snap <- idx;
  Metrics.set t.g_snap_index idx

(* The pre-delay atomic section shared by the serial and parallel apply
   paths: the execute-or-replay decision, the state mutation, the
   completion record, the applied-pointer advance, the config effect and
   the checkpoint cut. All of it happens at dispatch time, in log order —
   which is what keeps replicas byte-identical under parallel apply:
   thread timing never touches state, only the clock. Returns the entry's
   CPU cost and what the delayed epilogue needs. *)
and apply_atomic t idx (cmd : Protocol.cmd) op =
  let meta = cmd.Protocol.meta in
  let is_replier = meta.replier = t.id in
  let duplicate = (not meta.internal) && Rid_tbl.mem t.completions meta.rid in
  let execute =
    (not meta.internal) && (not duplicate)
    &&
    match t.p.mode with
    | Vanilla -> (not meta.read_only) || is_leader t
    | Hover | Hover_pp -> (not meta.read_only) || is_replier
    | Unreplicated -> true
  in
  let result, exec_cost =
    if execute then Op.apply t.app_state op
    else if duplicate then (fst (Rid_tbl.find t.completions meta.rid), 0)
    else (Op.Done, 0)
  in
  let should_reply =
    (not meta.internal)
    &&
    match t.p.mode with
    | Vanilla -> is_leader t
    | Hover | Hover_pp -> is_replier
    | Unreplicated -> true
  in
  let reply_bytes =
    if should_reply then R2p2.header_bytes + Op.reply_bytes op result else 0
  in
  (* Reply tx ownership: the monolithic path folds the reply's wire cost
     into the app CPU (the paper's model — replies leave through the
     application thread, §6). Under a pipelined net the replier stage
     owns that cost instead ([apply_visible] charges it there), so it
     must not also be charged here — that would double-bill the same
     packet. *)
  let cost =
    t.p.cost.app_per_op_ns + exec_cost
    + (if should_reply && not (staged t) then
         tx_cost t ~bytes:reply_bytes ~extra:0
       else 0)
  in
  (* The state mutation above, the completion record and the applied
     pointer advance together, BEFORE the CPU delay: a crash landing
     inside the delayed closure must not leave an executed-but-unrecorded
     entry behind, or restart would re-execute it (exactly-once would
     break, replicas would diverge). Only externally visible work — the
     reply, bookkeeping — waits for the CPU. Membership is part of the
     durable state, so config entries take effect inside the checkpoint
     too. *)
  t.applied_ptr <- idx;
  (* A migration Merge carries the source group's completion records: seed
     them before this entry's own record, inside the same atomic section.
     A rid the source group already answered must never re-execute here —
     e.g. a client retry of a pre-migration write that this group ordered
     again after the map flipped resolves as a duplicate, because the
     Merge sits earlier in the log. *)
  (match op with
  | Op.Merge { completions; _ } ->
      List.iter
        (fun { Op.c_rid; c_result; c_at } ->
          if not (Rid_tbl.mem t.completions c_rid) then begin
            Rid_tbl.replace t.completions c_rid (c_result, c_at);
            Queue.push (c_rid, c_at) t.completion_fifo
          end)
        completions
  | _ -> ());
  if not meta.internal then begin
    let now = Engine.now t.engine in
    if not (Rid_tbl.mem t.completions meta.rid) then begin
      Rid_tbl.replace t.completions meta.rid (result, now);
      Queue.push (meta.rid, now) t.completion_fifo
    end
  end;
  (match cmd.Protocol.config with
  | Some ms -> on_config_applied t ms
  | None -> ());
  (* Checkpointing is part of the same atomic section: the image must
     reflect exactly the prefix up to [idx], including the completion
     record and membership written just above. *)
  if
    t.p.features.snapshot_interval > 0
    && idx - t.last_snap >= t.p.features.snapshot_interval
    && has_consensus t && slot_final_at t idx
  then take_snapshot t idx;
  (cost, should_reply, reply_bytes)

(* The delayed, externally visible part of applying an entry: the reply
   (and its flow-control credit) leaves the wire and the pending body
   recovery resolves. Runs on the entry's application thread, [cost]
   after dispatch. *)
and apply_visible t (cmd : Protocol.cmd) ~should_reply ~reply_bytes =
  let meta = cmd.Protocol.meta in
  if should_reply then begin
    Metrics.incr t.c_replies;
    let send_reply () =
      match t.port with
      | Some port when t.alive ->
          Fabric.send t.fabric port ~dst:meta.rid.src_addr ~bytes:reply_bytes
            (Protocol.Response { rid = meta.rid });
          if t.p.features.flow_control then
            Fabric.send t.fabric port ~dst:Addr.Middlebox
              ~bytes:
                (Protocol.payload_bytes ~with_bodies:false
                   (Protocol.Feedback { rid = meta.rid }))
              (Protocol.Feedback { rid = meta.rid })
      | Some _ | None -> ()
    in
    if staged t then
      (* Pipelined net: the app thread is done; the reply's wire cost is
         the replier stage's ([apply_atomic] left it out of the app CPU
         bill). *)
      Cpu.exec
        (stage_handoff t stage_replier)
        ~cost:
          (tx_cost t ~bytes:reply_bytes ~extra:t.p.cost.stage_handoff_ns)
        send_reply
    else send_reply ()
  end;
  (* Bodies stay in the store after application: duplicate AEs
     (heartbeat retransmits) must still bind, and lagging followers
     recover bodies from peers that already applied them. The GC's
     ordered-retention window reclaims them (§5). *)
  match t.p.mode with
  | Hover | Hover_pp -> if not meta.internal then resolve_recovery t meta.rid
  | Vanilla | Unreplicated -> ()

and apply_one t idx (cmd : Protocol.cmd) op =
  t.apply_busy <- true;
  let cost, should_reply, reply_bytes = apply_atomic t idx cmd op in
  Cpu.exec t.apps.(0) ~cost (fun () ->
      apply_visible t cmd ~should_reply ~reply_bytes;
      if is_leader t then note_applied t ~node:t.id ~applied:idx;
      feed_applied t idx;
      t.apply_busy <- false;
      pump t)

(* ------------------------------------------------------------------ *)
(* Recovery of lost multicast bodies (§5)                              *)

and recovery_target t retries =
  (* First ask the leader; on retries ask a random other member, since any
     group member may hold the body. With no peers there is nobody to ask:
     the body can only come back via client retransmission. *)
  let others = List.filter (fun i -> i <> t.id) t.members in
  match others with
  | [] -> None
  | _ -> (
      match (leader_addr t, retries) with
      | Some l, 0 when not (Addr.equal l (Addr.Node t.id)) -> Some l
      | _ ->
          let arr = Array.of_list others in
          Some (Addr.Node arr.(Rng.int t.rng (Array.length arr))))

and request_recovery t rid =
  if !debug_recovery then
    Format.eprintf "t=%dus node%d recovery for %a store=%d applied=%d commit=%d@."
      (Engine.now t.engine / 1000) t.id R2p2.pp_req_id rid
      (Unordered.size t.store) t.applied_ptr (commit_index_internal t);
  if not (Rid_tbl.mem t.pending_recovery rid) then begin
    Rid_tbl.replace t.pending_recovery rid (0, Engine.now t.engine);
    tr t Trace.Info ~kind:"recovery_issued" (fun () ->
        Format.asprintf "%a applied=%d commit=%d" R2p2.pp_req_id rid
          t.applied_ptr (commit_index_internal t));
    send_recovery t rid 0
  end

(* Keep asking until the body turns up: the apply loop is wedged on this
   rid, so giving up would wedge it forever (commit advances past the hole
   never). Unicast probes walk the group; once the retry budget is spent we
   escalate to a cluster-group broadcast, which reaches every node that
   could possibly hold the body in one shot. Retries back off
   exponentially (capped at 10 ms): a node catching up after a long dead
   window has hundreds of recoveries in flight, and re-probing each at a
   fixed 200 us would flood its own NIC with more retry traffic than a
   thin link carries — starving the very answers (and append acks) it is
   waiting for. The healthy path is unaffected: the first probe resolves
   in an RTT. *)
and send_recovery t rid retries =
  if t.alive && Rid_tbl.mem t.pending_recovery rid then begin
    let escalated = retries >= t.p.features.recovery_retry_max in
    if escalated && retries = t.p.features.recovery_retry_max then begin
      Metrics.incr t.c_recovery_escalations;
      tr t Trace.Warn ~kind:"recovery_escalated" (fun () ->
          Format.asprintf "%a after %d unicast retries" R2p2.pp_req_id rid
            retries)
    end;
    let dst =
      if escalated then
        if List.length t.members <= 1 then None
        else Some (Addr.Group Addr.cluster_group)
      else recovery_target t retries
    in
    (match dst with
    | Some dst ->
        Metrics.incr t.c_recoveries;
        (* Recovery resolution is the replier stage's job (same CPU as
           the single net thread on the monolithic path). *)
        transmit_stage t stage_replier ~dst
          (Protocol.Recovery_request { rid; asker = t.id })
    | None -> ());
    let backoff =
      min
        (t.p.timing.recovery_timeout * (1 lsl min retries 6))
        (Timebase.ms 10)
    in
    Engine.after t.engine backoff (fun () ->
        match Rid_tbl.find_opt t.pending_recovery rid with
        | Some (r, issued_at) when r = retries ->
            Rid_tbl.replace t.pending_recovery rid (retries + 1, issued_at);
            send_recovery t rid (retries + 1)
        | Some _ | None -> ())
  end

(* ------------------------------------------------------------------ *)
(* Receive path (network thread)                                       *)

(* Receive cost splits along the pipeline cut: decode (header + bytes off
   the wire) is ingress work; protocol processing (raft bookkeeping,
   per-entry ingest) belongs to the packet's stage. The monolithic path
   charges their sum on the one net CPU — exactly the historical
   formula. *)
let rx_decode_cost t (pkt : Protocol.payload Fabric.packet) =
  t.p.cost.net_rx_packet_ns
  + int_of_float (t.p.cost.net_per_byte_ns *. float_of_int pkt.bytes)

let rx_proto_cost t (pkt : Protocol.payload Fabric.packet) =
  match pkt.payload with
  | Protocol.Raft (Rtypes.Append_entries { entries; _ }) ->
      t.p.cost.raft_msg_extra_ns
      + (t.p.cost.per_entry_rx_ns * Array.length entries)
  | Protocol.Raft _ | Protocol.Agg_commit _ -> t.p.cost.raft_msg_extra_ns
  | Protocol.Rabia msg ->
      t.p.cost.raft_msg_extra_ns
      + (t.p.cost.per_entry_rx_ns * rabia_msg_entries msg)
  | Protocol.Request _ | Protocol.Response _ | Protocol.Recovery_request _
  | Protocol.Recovery_response _ | Protocol.Probe _ | Protocol.Probe_reply _
  | Protocol.Feedback _ | Protocol.Nack _ | Protocol.Wrong_shard _
  | Protocol.Reconfig _ ->
      0

let rx_cost t pkt = rx_decode_cost t pkt + rx_proto_cost t pkt

(* Which stage handles a packet after ingress decodes it: ordering input
   (client requests, the whole replicated log feed, elections) goes to
   the sequencer; acknowledgements and aggregator/commit bookkeeping to
   fanout; body recovery to the replier. Payloads whose dispatch is a
   no-op die at ingress. *)
let rx_stage_of = function
  | Protocol.Request _ -> stage_sequencer
  | Protocol.Raft
      (Rtypes.Append_ack _ | Rtypes.Install_ack _ | Rtypes.Agg_ack _) ->
      stage_fanout
  | Protocol.Agg_commit _ | Protocol.Probe_reply _ -> stage_fanout
  | Protocol.Raft _ | Protocol.Rabia _ -> stage_sequencer
  | Protocol.Recovery_request _ | Protocol.Recovery_response _ -> stage_replier
  | Protocol.Response _ | Protocol.Feedback _ | Protocol.Nack _
  | Protocol.Wrong_shard _ | Protocol.Probe _ | Protocol.Reconfig _ ->
      stage_ingress

(* Read leases (the §3.5 alternative to replier load balancing): the
   leader may serve read-only requests locally, without ordering, while it
   has heard from a quorum within the lease window — proof that no other
   leader can have been elected meanwhile (the window is kept below the
   minimum election timeout). *)
let lease_note_contact t node =
  Hashtbl.replace t.lease_heard node (Engine.now t.engine)

let lease_valid t =
  let now = Engine.now t.engine in
  Hashtbl.replace t.lease_heard t.id now;
  let fresh =
    List.fold_left
      (fun acc i ->
        let heard = Option.value ~default:0 (Hashtbl.find_opt t.lease_heard i) in
        if now - heard <= t.p.timing.lease_window then acc + 1 else acc)
      0 t.members
  in
  fresh >= (List.length t.members / 2) + 1

(* Where a locally executed (never-ordered) operation runs. Pinning these
   to app CPU 0 was a bug at K > 1: every lease read, unreplicated op and
   router-balanced request serialized onto one core while replicated
   writes spread — a phantom knee on read-heavy workloads. Keyed ops
   follow the same footprint hash the apply dispatcher uses (so same-key
   work shares a queue); footprint-free — and global: local execution
   mutates state synchronously at call time, there is nothing to barrier
   against — ops take the least-loaded CPU, ties to the lowest index.
   The choice affects only simulated timing, never replicated state. *)
let local_exec_cpu t op =
  if Array.length t.apps = 1 then t.apps.(0)
  else
    match Op.footprint op with
    | Op.Fp_key k -> t.apps.(Kvstore.slot_of_key ~slots:(Array.length t.apps) k)
    | Op.Fp_none | Op.Fp_global ->
        let best = ref 0 in
        Array.iteri
          (fun i c ->
            if Cpu.horizon c < Cpu.horizon t.apps.(!best) then best := i)
          t.apps;
        t.apps.(!best)

(* Execute a request on this node alone: the unreplicated path, lease
   reads, and router-balanced unrestricted requests. [feedback] is where a
   completion credit goes (flow-control middlebox or request router). *)
let execute_locally ?feedback t rid op =
  let result, exec_cost = Op.apply t.app_state op in
  let reply_bytes = R2p2.header_bytes + Op.reply_bytes op result in
  let send_reply () =
    Metrics.incr t.c_replies;
    match t.port with
    | Some port when t.alive -> (
        Fabric.send t.fabric port ~dst:rid.R2p2.src_addr ~bytes:reply_bytes
          (Protocol.Response { rid });
        let credit dst =
          Fabric.send t.fabric port ~dst
            ~bytes:
              (Protocol.payload_bytes ~with_bodies:false
                 (Protocol.Feedback { rid }))
            (Protocol.Feedback { rid })
        in
        match feedback with
        | Some dst -> credit dst
        | None -> if t.p.features.flow_control then credit Addr.Middlebox)
    | Some _ | None -> ()
  in
  let cpu = local_exec_cpu t op in
  if staged t then
    (* Same reply ownership as the ordered path: execution on the app
       thread, the wire on the replier stage. *)
    Cpu.exec cpu ~cost:(t.p.cost.app_per_op_ns + exec_cost) (fun () ->
        Cpu.exec
          (stage_handoff t stage_replier)
          ~cost:
            (tx_cost t ~bytes:reply_bytes ~extra:t.p.cost.stage_handoff_ns)
          send_reply)
  else
    Cpu.exec cpu
      ~cost:
        (t.p.cost.app_per_op_ns + exec_cost
        + tx_cost t ~bytes:reply_bytes ~extra:0)
      send_reply

(* A retransmitted request that already completed is answered from the
   completion record (exactly-once); one that is in flight (ordered but not
   applied) is ignored — its reply is coming. *)
let replay_completion t rid op =
  match Rid_tbl.find_opt t.completions rid with
  | Some (result, _) ->
      let reply_bytes = R2p2.header_bytes + Op.reply_bytes op result in
      (* Replays are pure tx (no execution): under a pipelined net they
         belong to the replier stage; on the monolithic path they ride an
         app CPU — the footprint-spread one, not a hardwired apps.(0). *)
      let cpu, extra =
        if staged t then (stage_handoff t stage_replier, t.p.cost.stage_handoff_ns)
        else (local_exec_cpu t op, 0)
      in
      transmit_on t cpu ~dst:rid.R2p2.src_addr ~bytes:reply_bytes ~extra
        (Protocol.Response { rid });
      if t.p.features.flow_control then
        transmit_on t cpu ~dst:Addr.Middlebox
          ~bytes:
            (Protocol.payload_bytes ~with_bodies:false
               (Protocol.Feedback { rid }))
          ~extra:0
          (Protocol.Feedback { rid });
      true
  | None -> false

(* Shard-routing gate. A request whose key this group does not own is
   NACKed back with the responder's map version — but only after
   [replay_completion] had its chance: answering retransmissions of
   already-completed requests from the record even for disowned keys is
   the dual-ownership fence that lets exactly-once survive a migration
   handoff. Only one node may respond (requests are multicast to the
   whole group), so the gate runs where replay runs: on the leader. *)
let shard_rejects t rid op =
  match t.shard_filter with
  | Some owns when not (owns op) ->
      let payload = Protocol.Wrong_shard { rid; version = t.shard_version } in
      let cpu = stage_handoff t stage_replier in
      let extra = if staged t then t.p.cost.stage_handoff_ns else 0 in
      transmit_on t cpu ~dst:rid.R2p2.src_addr
        ~bytes:(Protocol.payload_bytes ~with_bodies:false payload)
        ~extra payload;
      (* The flow-control middlebox charged this rid on admission and only
         a completion credit refunds it; without one, wrong-shard retries
         during a migration would wedge the in-flight cap. *)
      if t.p.features.flow_control then
        transmit_on t cpu ~dst:Addr.Middlebox
          ~bytes:
            (Protocol.payload_bytes ~with_bodies:false
               (Protocol.Feedback { rid }))
          ~extra:0
          (Protocol.Feedback { rid });
      true
  | Some _ | None -> false

let rec on_client_request t ~src ~policy rid op =
  match policy with
  | R2p2.Unrestricted ->
      (* A non-replicated request (§6.1): executed here and now, never
         ordered — reads may be stale on a follower. The completion credit
         returns to the router that balanced it here. *)
      let feedback = if Addr.equal src Addr.Router then Some Addr.Router else None in
      execute_locally ?feedback t rid op
  | R2p2.Replicated_req | R2p2.Replicated_req_r -> on_client_replicated t rid op

and on_client_replicated t rid op =
  match t.p.mode with
  | Unreplicated ->
      if replay_completion t rid op then ()
      else if shard_rejects t rid op then ()
      else on_client_request_fresh t rid op
  | Vanilla ->
      if is_leader t && replay_completion t rid op then ()
      else if is_leader t && shard_rejects t rid op then ()
      else on_client_request_fresh t rid op
  | Hover | Hover_pp ->
      (* Only one node replays ([replays_here]: the leader, or the rid's
         hash-owner under the leaderless backend), so a retransmission
         multicast to the whole group yields one reply. Followers keep
         storing bodies even for disowned keys: an operation ordered just
         before the fence engaged still needs its body everywhere. *)
      if replays_here t rid && replay_completion t rid op then ()
      else if replays_here t rid && shard_rejects t rid op then ()
      else on_client_request_fresh t rid op

and on_client_request_fresh t rid op =
  let lease_read =
    t.p.features.read_mode = Leader_leases
    && Op.read_only op
    && t.p.mode <> Unreplicated
  in
  if lease_read then begin
    (* Only the leader acts on lease reads; followers drop them (with a
       multicast target every node sees the request). A leader without a
       valid lease falls through to the ordered path for safety. *)
    if is_leader t then
      if lease_valid t then execute_locally t rid op
      else on_client_request_ordered t rid op
  end
  else on_client_request_ordered t rid op

and on_client_request_ordered t rid op =
  match t.p.mode with
  | Unreplicated ->
      (* No consensus: hand straight to the application thread. *)
      execute_locally t rid op
  | Vanilla ->
      if is_leader t then
        feed_raft t (Rnode.Client_command (Protocol.client_cmd ~rid op))
      else Metrics.incr t.c_rejected
  | Hover | Hover_pp -> (
      let already_ordered = Unordered.status t.store rid = `Ordered in
      Unordered.add t.store rid op;
      resolve_recovery t rid;
      match t.rabia with
      | Some _ ->
          (* Leaderless: every replica ingests the command into its
             proposal pool (the backend dedups by rid); the pools
             converge through proposal adoption. *)
          if not already_ordered then
            feed_rabia t (Rb.Client_command (Protocol.client_cmd ~rid op));
          pump t
      | None ->
          if is_leader t then begin
            (* Duplicate suppression: a retransmission of a request that
               is already in the log must not be ordered twice. *)
            if not already_ordered then
              feed_raft t (Rnode.Client_command (Protocol.client_cmd ~rid op))
          end
          else pump t)

(* After accepting an append_entries, check that every newly ordered
   entry's body is present; fetch the ones the multicast lost. *)
let bind_bodies t ~prev_idx (entries : Protocol.cmd Rtypes.entry array) =
  match t.p.mode with
  | Hover | Hover_pp ->
      Array.iteri
        (fun i (e : Protocol.cmd Rtypes.entry) ->
          let idx = prev_idx + 1 + i in
          let meta = e.cmd.Protocol.meta in
          (* Entries at or below the applied index were already executed;
             retransmissions of them need no body. *)
          if idx > t.applied_ptr && not meta.internal then
            if not (Unordered.mark_ordered t.store meta.rid) then
              request_recovery t meta.rid)
        entries
  | Vanilla | Unreplicated -> ()

let on_agg_commit t ~term ~commit ~applied =
  if is_leader t then begin
    (* A quorum acknowledged through the aggregator: the lease renews. *)
    Array.iteri (fun node _ -> lease_note_contact t node) applied;
    Array.iteri
      (fun node a -> if node <> t.id then note_applied t ~node ~applied:a)
      applied;
    feed_raft t (Rnode.Receive (Rtypes.Agg_ack { term; commit }))
  end
  else feed_raft t (Rnode.Receive (Rtypes.Commit_to { term; commit }))

let dispatch t (pkt : Protocol.payload Fabric.packet) =
  match pkt.payload with
  | Protocol.Request { rid; policy; op } ->
      on_client_request t ~src:pkt.src ~policy rid op
  | Protocol.Raft msg ->
      (match msg with
      | Rtypes.Append_entries { entries; prev_idx; _ } ->
          t.ack_override <-
            (match pkt.src with Addr.Netagg -> Some Addr.Netagg | _ -> None);
          feed_raft t (Rnode.Receive msg);
          t.ack_override <- None;
          bind_bodies t ~prev_idx entries;
          pump t
      | Rtypes.Append_ack { from; applied_idx; _ } ->
          tr t Trace.Debug ~kind:"ae_acked" (fun () ->
              Printf.sprintf "from=%d applied=%d" from applied_idx);
          (* Followers piggyback their applied index on every ack (§6.2);
             it feeds the leader's bounded queues and the read lease — and
             may un-stall a gated announce. *)
          if is_leader t then begin
            note_applied t ~node:from ~applied:applied_idx;
            lease_note_contact t from
          end;
          feed_raft t (Rnode.Receive msg);
          pump t
      | Rtypes.Install_ack { from; applied_idx; _ } ->
          (* Install acks piggyback the applied index like append acks:
             the transfer target's progress feeds the leader's bounded
             queues and lease. *)
          if is_leader t then begin
            note_applied t ~node:from ~applied:applied_idx;
            lease_note_contact t from
          end;
          feed_raft t (Rnode.Receive msg);
          pump t
      | Rtypes.Request_vote _ | Rtypes.Vote _ | Rtypes.Commit_to _
      | Rtypes.Agg_ack _ | Rtypes.Timeout_now _ | Rtypes.Install_snapshot _ ->
          feed_raft t (Rnode.Receive msg);
          pump t)
  | Protocol.Recovery_request { rid; asker } -> (
      match Unordered.find t.store rid with
      | Some op ->
          transmit_stage t stage_replier ~dst:(Addr.Node asker)
            (Protocol.Recovery_response { rid; op })
      | None -> ())
  | Protocol.Recovery_response { rid; op } ->
      if Rid_tbl.mem t.pending_recovery rid then begin
        Unordered.add t.store rid op;
        ignore (Unordered.mark_ordered t.store rid);
        resolve_recovery t rid;
        pump t
      end
  | Protocol.Probe_reply { term } -> (
      match t.raft with
      | Some raft
        when t.p.mode = Hover_pp && is_leader t && term = Rnode.term raft ->
          Rnode.set_aggregated raft true;
          (* Kick replication so the aggregated path takes over now. *)
          feed_raft t Rnode.Heartbeat_timeout
      | Some _ | None -> ())
  | Protocol.Agg_commit { term; commit; applied } ->
      on_agg_commit t ~term ~commit ~applied
  | Protocol.Rabia msg ->
      feed_rabia t (Rb.Receive msg);
      pump t
  | Protocol.Response _ | Protocol.Nack _ | Protocol.Wrong_shard _
  | Protocol.Probe _ | Protocol.Feedback _ | Protocol.Reconfig _ ->
      ()

let on_packet t pkt =
  if t.alive then begin
    if t.p.features.loss_prob > 0. && Rng.bool t.rng t.p.features.loss_prob then
      Metrics.incr t.c_lost_rx
    else begin
      (* Pre-interned per-tag counter: no name allocation, no registry
         probe on the hottest path in the simulator. *)
      Metrics.incr t.c_rx.(Protocol.tag_index pkt.Fabric.payload);
      if not (staged t) then
        Cpu.exec t.net_cpus.(0) ~cost:(rx_cost t pkt) (fun () -> dispatch t pkt)
      else begin
        let role = rx_stage_of pkt.Fabric.payload in
        if role = stage_ingress then
          (* Handled (or dropped) at decode; no handoff. *)
          Cpu.exec (stage_cpu t stage_ingress) ~cost:(rx_cost t pkt) (fun () ->
              dispatch t pkt)
        else
          Cpu.exec (stage_cpu t stage_ingress) ~cost:(rx_decode_cost t pkt)
            (fun () ->
              Cpu.exec (stage_handoff t role)
                ~cost:(rx_proto_cost t pkt + t.p.cost.stage_handoff_ns)
                (fun () -> dispatch t pkt))
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Election clock and housekeeping                                     *)

(* Uniform over the closed interval [election_min, election_max]. The
   upper bound is inclusive so that election_min = election_max degenerates
   to a constant timeout rather than an out-of-range draw. *)
let draw_timeout t =
  t.p.timing.election_min
  + Rng.int t.rng (t.p.timing.election_max - t.p.timing.election_min + 1)

let start_election_clock t =
  let life = t.life in
  let rec arm deadline =
    Engine.at t.engine deadline (fun () ->
        if t.alive && t.life = life then begin
          let now = Engine.now t.engine in
          if is_leader t then begin
            t.last_activity <- now;
            arm (now + t.election_timeout)
          end
          else if t.passive then
            (* Joining node, no leader heard yet: never self-start. *)
            arm (now + t.election_timeout)
          else if now - t.last_activity >= t.election_timeout then begin
            feed_raft t Rnode.Election_timeout;
            t.last_activity <- now;
            t.election_timeout <- draw_timeout t;
            arm (now + t.election_timeout)
          end
          else arm (t.last_activity + t.election_timeout)
        end)
  in
  arm (Engine.now t.engine + t.election_timeout)

(* The leaderless backend has no election clock and no heartbeats; its
   one timer is the retransmit/status tick, paced like a heartbeat. *)
let start_rabia_ticker t =
  let life = t.life in
  let rec loop () =
    Engine.after t.engine t.p.timing.heartbeat (fun () ->
        if t.alive && t.life = life then begin
          feed_rabia t Rb.Tick;
          loop ()
        end)
  in
  loop ()

let start_gc_loop t =
  let life = t.life in
  let rec loop () =
    Engine.after t.engine t.p.timing.gc_interval (fun () ->
        if t.alive && t.life = life then begin
          (* Bodies still in the leaderless proposal pool are pinned:
             their time-to-order is unbounded (see {!Unordered.gc}). *)
          let keep =
            match t.rabia with
            | None -> None
            | Some rb ->
                Some
                  (fun rid ->
                    Rb.pending_mem rb
                      (Format.asprintf "%a" R2p2.pp_req_id rid))
          in
          ignore (Unordered.gc ?keep t.store);
          let now = Engine.now t.engine in
          let expired (_, recorded) = now - recorded > t.p.timing.gc_ordered in
          while
            (not (Queue.is_empty t.completion_fifo))
            && expired (Queue.peek t.completion_fifo)
          do
            let rid, _ = Queue.pop t.completion_fifo in
            Rid_tbl.remove t.completions rid
          done;
          (match (t.raft, t.rabia) with
          | Some raft, _ ->
              let base = Rnode.compact raft ~retain:t.p.features.log_retain in
              Metrics.set t.g_log_base base
          | None, Some rb ->
              let base = Rb.compact rb ~retain:t.p.features.log_retain in
              Metrics.set t.g_log_base base
          | None, None -> ());
          loop ()
        end)
  in
  loop ()

(* ------------------------------------------------------------------ *)

(* Raft-internal events surface here as metrics and trace entries; the
   observer is strictly one-way except for the gate veto, which arms the
   re-kick machinery. *)
let on_raft_event t = function
  | Rnode.Obs_election_started term ->
      Metrics.incr t.c_elections;
      tr t Trace.Info ~kind:"election_started" (fun () ->
          Printf.sprintf "term=%d" term)
  | Rnode.Obs_leadership_won term ->
      tr t Trace.Info ~kind:"leadership_won" (fun () ->
          Printf.sprintf "term=%d" term)
  | Rnode.Obs_leadership_lost term ->
      tr t Trace.Warn ~kind:"leadership_lost" (fun () ->
          Printf.sprintf "term=%d" term)
  | Rnode.Obs_commit_advanced c ->
      tr t Trace.Debug ~kind:"commit_advanced" (fun () ->
          Printf.sprintf "commit=%d" c)
  | Rnode.Obs_announced_to i ->
      tr t Trace.Debug ~kind:"announced" (fun () -> Printf.sprintf "upto=%d" i)
  | Rnode.Obs_announce_gated i ->
      Metrics.incr t.c_gate_blocked;
      t.announce_stalled <- true;
      tr t Trace.Debug ~kind:"announce_gated" (fun () ->
          Printf.sprintf "at=%d" i)
  | Rnode.Obs_config_changed (idx, ms) ->
      tr t Trace.Info ~kind:"config_effective" (fun () ->
          Printf.sprintf "idx=%d members=[%s]" idx
            (String.concat ";" (List.map string_of_int ms)));
      (* A leader that just appended this entry dropped the aggregated
         fast path (the switch's quorum and fan-out group are for the old
         membership). Re-arm the dataplane NOW, not at commit: the
         followers keep sending their acks to the aggregator regardless
         of what the leader does, and the aggregator only advances commit
         against the announcements it forwarded itself — so until it
         learns the new membership, no ack ever reaches the leader and
         the config entry can never commit. Waiting for commit to re-arm
         is a deadlock broken only by an election. *)
      (match t.raft with
      | Some raft when t.p.mode = Hover_pp && is_leader t && t.alive ->
          let term = Rnode.term raft in
          transmit_net t ~dst:Addr.Netagg
            (Protocol.Reconfig { term; members = Array.of_list ms });
          t.probe_sent_term <- term;
          transmit_net t ~dst:Addr.Netagg
            (Protocol.Probe { term; leader = t.id })
      | Some _ | None -> ())
  | Rnode.Obs_transfer_sent target ->
      Metrics.incr t.c_transfers;
      t.last_transfer <- Some target;
      tr t Trace.Info ~kind:"transfer_sent" (fun () ->
          Printf.sprintf "target=%d" target)
  | Rnode.Obs_snapshot_taken idx ->
      Metrics.incr t.c_snapshots;
      tr t Trace.Info ~kind:"snapshot_taken" (fun () ->
          Printf.sprintf "idx=%d" idx)
  | Rnode.Obs_install_started (peer, idx) ->
      Hashtbl.replace t.xfer_start peer (Engine.now t.engine);
      tr t Trace.Info ~kind:"install_started" (fun () ->
          Printf.sprintf "peer=%d idx=%d" peer idx)
  | Rnode.Obs_install_completed (peer, idx) ->
      Metrics.incr t.c_installs_sent;
      (match Hashtbl.find_opt t.xfer_start peer with
      | Some t0 ->
          Metrics.observe t.h_install_ns (Engine.now t.engine - t0);
          Hashtbl.remove t.xfer_start peer
      | None -> ());
      tr t Trace.Info ~kind:"install_completed" (fun () ->
          Printf.sprintf "peer=%d idx=%d" peer idx)

let create ?trace ?members ?(passive = false) engine fabric p ~id =
  validate_params p;
  let members =
    match members with
    | Some ms ->
        if ms = [] then invalid_arg "Hnode.create: empty membership";
        List.sort_uniq compare ms
    | None -> List.init p.n (fun i -> i)
  in
  if id < 0 then invalid_arg "Hnode.create: negative id";
  if not (List.mem id members) then
    invalid_arg "Hnode.create: id outside membership";
  let rng = Rng.create (p.seed + (id * 7919)) in
  let raft =
    match (p.mode, p.backend) with
    | Unreplicated, _ | _, Rabia -> None
    | (Vanilla | Hover | Hover_pp), Raft ->
        let peers =
          Array.of_list (List.filter (fun i -> i <> id) members)
        in
        Some
          (Rnode.create
             {
               Rnode.id;
               peers;
               batch_max = p.features.batch_max;
               eager_commit_notify =
                 (p.features.eager_commit_notify && p.mode = Hover
                 && p.features.reply_lb);
               snap_chunk_bytes = Hovercraft_net.Wire.snap_chunk_bytes;
             }
             ~noop:Protocol.internal_noop)
  in
  let rabia =
    match (p.mode, p.backend) with
    | Hover, Rabia ->
        let peers = Array.of_list (List.filter (fun i -> i <> id) members) in
        Some
          (Rb.create
             {
               Rb.id;
               peers;
               batch_max = p.features.batch_max;
               (* Cluster-wide: the common coin must flip the same way on
                  every node, so the seed is the shared experiment seed,
                  not the per-node one. *)
               coin_seed = p.seed;
             }
             ~key_of:(fun (c : Protocol.cmd) ->
               Format.asprintf "%a" R2p2.pp_req_id c.Protocol.meta.rid))
    | _ -> None
  in
  let now () = Engine.now engine in
  let metrics = Metrics.create () in
  let trace =
    match trace with Some tr -> tr | None -> Trace.create ~level:Trace.Info ()
  in
  let t =
    {
      p;
      id;
      engine;
      fabric;
      port = None;
      net_cpus = Array.init p.features.net_stages (fun _ -> Cpu.create engine);
      apps = Array.init p.features.apply_threads (fun _ -> Cpu.create engine);
      rng;
      raft;
      rabia;
      rabia_members =
        (if rabia = None then [||] else Array.of_list members);
      store =
        Unordered.create ~now ~gc_unordered:p.timing.gc_unordered
          ~gc_ordered:p.timing.gc_ordered ();
      replier =
        Replier.create p.features.lb_policy ~bound:p.features.bound
          ~nodes:members ~rng:(Rng.split rng);
      app_state = Op.create_state ();
      members;
      alive = true;
      life = 0;
      passive;
      last_activity = 0;
      election_timeout = 0;
      hb_gen = 0;
      apply_busy = false;
      applied_ptr = 0;
      apply_inflight = 0;
      apply_done = Hashtbl.create 64;
      apply_watermark = 0;
      apply_rr = 0;
      pumping = false;
      pending_recovery = Rid_tbl.create 64;
      lease_heard = Hashtbl.create 16;
      completions = Rid_tbl.create 1024;
      completion_fifo = Queue.create ();
      ack_override = None;
      probe_sent_term = -1;
      last_transfer = None;
      last_snap = 0;
      shard_filter = None;
      shard_version = 0;
      preloaded = 0;
      xfer_start = Hashtbl.create 8;
      metrics;
      trace;
      c_replies = Metrics.counter metrics "replies_sent";
      c_rx =
        Array.init Protocol.tag_count (fun i ->
            Metrics.counter metrics ("rx." ^ Protocol.tag_name i));
      c_recoveries = Metrics.counter metrics "recoveries_sent";
      c_recovery_escalations = Metrics.counter metrics "recovery_escalations";
      c_recoveries_resolved = Metrics.counter metrics "recoveries_resolved";
      c_rejected = Metrics.counter metrics "rejected";
      c_lost_rx = Metrics.counter metrics "lost_rx";
      c_elections = Metrics.counter metrics "elections_started";
      c_gate_blocked = Metrics.counter metrics "gate_blocked";
      c_gate_rekicks = Metrics.counter metrics "gate_rekicks";
      c_reconfigs = Metrics.counter metrics "reconfigs_applied";
      c_transfers = Metrics.counter metrics "transfers_initiated";
      c_snapshots = Metrics.counter metrics "snapshots_taken";
      c_installs_recv = Metrics.counter metrics "snapshots_installed";
      c_installs_sent = Metrics.counter metrics "installs_sent";
      g_log_base = Metrics.gauge metrics "log_base";
      g_snap_index = Metrics.gauge metrics "snapshot_index";
      g_apply_busy =
        Array.init p.features.apply_threads (fun k ->
            Metrics.gauge metrics (Printf.sprintf "apply_busy_ns.%d" k));
      h_recovery_ns = Metrics.histogram metrics "recovery_latency_ns";
      h_install_ns = Metrics.histogram metrics "install_transfer_ns";
      h_apply_stall = Metrics.histogram metrics "apply_stall_ns";
      g_stage_busy =
        (if p.features.net_stages > 1 then
           Array.map
             (fun name -> Metrics.gauge metrics ("stage_busy_ns." ^ name))
             stage_names
         else [||]);
      g_stage_queue =
        (if p.features.net_stages > 1 then
           Array.map
             (fun name -> Metrics.gauge metrics ("stage_queue_ns." ^ name))
             stage_names
         else [||]);
      h_stage_stall =
        (if p.features.net_stages > 1 then
           Some (Metrics.histogram metrics "stage_stall_ns")
         else None);
      announce_stalled = false;
    }
  in
  (match t.raft with
  | Some raft ->
      Rnode.set_observer raft (Some (on_raft_event t));
      Rnode.set_config_decoder raft (fun (c : Protocol.cmd) -> c.Protocol.config)
  | None -> ());
  t.election_timeout <- draw_timeout t;
  let port =
    Fabric.attach fabric ~addr:(Addr.Node id) ~rate_gbps:p.cost.link_gbps
      ~handler:(on_packet t)
  in
  t.port <- Some port;
  Fabric.join fabric ~group:Addr.cluster_group (Addr.Node id);
  (match p.mode with
  | Vanilla | Hover | Hover_pp ->
      (match t.rabia with
      | Some _ -> start_rabia_ticker t
      | None -> start_election_clock t);
      start_gc_loop t
  | Unreplicated -> ());
  t

let id t = t.id
let alive t = t.alive
let mode t = t.p.mode
let backend t = t.p.backend

let term t = match t.raft with Some r -> Rnode.term r | None -> 0
let commit_index t = commit_index_internal t
let applied_index t = t.applied_ptr

let log_length t =
  if has_consensus t then Rlog.last_index (consensus_log t) else 0

let log_base t = if has_consensus t then Rlog.base (consensus_log t) else 0

let snapshot_index t =
  match (t.raft, t.rabia) with
  | Some r, _ -> Rnode.snapshot_index r
  | None, Some rb -> Rb.snapshot_index rb
  | None, None -> 0

let snapshots_taken t = Metrics.value t.c_snapshots
let installs_received t = Metrics.value t.c_installs_recv

let app_fingerprint t = Op.fingerprint t.app_state
let executed_ops t = Op.executed t.app_state
let replies_sent t = Metrics.value t.c_replies
let store_size t = Unordered.size t.store

let ordering_pending t =
  match t.rabia with Some rb -> Rb.pending rb | None -> 0

let ordering_next_slot t =
  match t.rabia with Some rb -> Rb.next_slot rb | None -> 0
let recoveries_sent t = Metrics.value t.c_recoveries
let recovery_escalations t = Metrics.value t.c_recovery_escalations
let pending_recoveries t = Rid_tbl.length t.pending_recovery
let port t = Option.get t.port

let net_busy_time t =
  Array.fold_left (fun acc c -> acc + Cpu.busy_time c) 0 t.net_cpus

let app_busy_time t =
  Array.fold_left (fun acc c -> acc + Cpu.busy_time c) 0 t.apps

let net_stages t = Array.length t.net_cpus

(* (role, busy ns of the CPU serving it): roles collapsed onto a shared
   core report that core's total — the view that shows which stage the
   pipeline binds on next. *)
let stage_busy_times t =
  Array.to_list
    (Array.mapi
       (fun role name -> (name, Cpu.busy_time (stage_cpu t role)))
       stage_names)

let stage_stalls t =
  match t.h_stage_stall with Some h -> Metrics.hist_count h | None -> 0

let apply_threads t = Array.length t.apps
let apply_busy_times t = Array.map Cpu.busy_time t.apps
let apply_stalls t = Metrics.hist_count t.h_apply_stall

(* Log inspection without exposing the backend: history checkers walk
   the committed/applied prefix through these instead of reaching into
   the Raft node (which may not exist under the rabia backend). *)
let log_first_index t =
  if has_consensus t then Rlog.first_index (consensus_log t) else 1

let iter_log t ~lo ~hi f =
  if has_consensus t then
    Rlog.iter_range (consensus_log t) ~lo ~hi (fun idx e ->
        f idx e.Rtypes.term e.Rtypes.cmd)

let aggregated t =
  match t.raft with Some r -> Rnode.aggregated r | None -> false

let metrics t = t.metrics
let trace t = t.trace
let election_timeout t = t.election_timeout
let redraw_election_timeout t = draw_timeout t
let members t = t.members
let last_transfer t = t.last_transfer

let config_index t =
  match t.raft with Some r -> Rnode.config_index r | None -> 0

let raft_members t =
  match t.raft with Some r -> Rnode.members r | None -> t.members

let bootstrap t =
  (* Leaderless consensus needs no bootstrap election; the first client
     command starts slot 0. *)
  if t.rabia = None then feed_raft t Rnode.Election_timeout

let propose_reconfig t ~members:ms =
  if ms = [] then invalid_arg "Hnode.propose_reconfig: empty membership";
  if t.rabia <> None then
    invalid_arg
      "Hnode.propose_reconfig: the rabia backend is fixed-membership \
       (quorum-intersection over locked proposals assumes a static member \
       set)";
  feed_raft t
    (Rnode.Client_command
       (Protocol.config_cmd ~members:(Array.of_list (List.sort_uniq compare ms))))

let transfer_leadership t ~target =
  if t.rabia <> None then
    invalid_arg
      "Hnode.transfer_leadership: the rabia backend is leaderless — there \
       is no leadership to transfer";
  feed_raft t (Rnode.Transfer_leadership target)

let preload t ops =
  List.iter (fun op -> ignore (Op.apply t.app_state op)) ops;
  t.preloaded <- t.preloaded + List.length ops

let preloaded t = t.preloaded

let set_shard_filter t ~version owns =
  t.shard_filter <- Some owns;
  t.shard_version <- version

let clear_shard_filter t =
  t.shard_filter <- None;
  t.shard_version <- 0

let shard_version t = t.shard_version
let extract_range t ~keep = Op.extract_kv t.app_state ~keep

(* Receive census, kept as an accessor over the "rx.<tag>" counters. The
   counters are pre-interned (all tags exist from creation), so only the
   ones that actually fired are listed — matching the old lazily-created
   behavior. *)
let rx_census t =
  List.filter_map
    (fun (name, v) ->
      if v > 0 && String.length name > 3 && String.sub name 0 3 = "rx." then
        Some (String.sub name 3 (String.length name - 3), v)
      else None)
    (Metrics.counters t.metrics)

let snapshot t =
  Array.iteri
    (fun k c -> Metrics.set t.g_apply_busy.(k) (Cpu.busy_time c))
    t.apps;
  Array.iteri
    (fun role g -> Metrics.set g (Cpu.busy_time (stage_cpu t role)))
    t.g_stage_busy;
  let gauges =
    [
      ("id", Json.Int t.id);
      ("alive", Json.Bool t.alive);
      ("leader", Json.Bool (is_leader t));
      ("term", Json.Int (term t));
      ("commit", Json.Int (commit_index t));
      ("applied", Json.Int t.applied_ptr);
      ("log_length", Json.Int (log_length t));
      ("log_base", Json.Int (log_base t));
      ("snapshot_index", Json.Int (snapshot_index t));
      ("store_size", Json.Int (Unordered.size t.store));
      ("pending_recoveries", Json.Int (Rid_tbl.length t.pending_recovery));
      ("net_busy_ns", Json.Int (net_busy_time t));
      ("app_busy_ns", Json.Int (app_busy_time t));
      ("apply_threads", Json.Int (Array.length t.apps));
      ("net_stages", Json.Int (Array.length t.net_cpus));
      (* Membership: who votes, which log entry established it, and the
         last cooperative handoff this node initiated (-1 = none). *)
      ("members", Json.List (List.map (fun i -> Json.Int i) t.members));
      ("config_index", Json.Int (config_index t));
      ( "last_transfer",
        Json.Int (match t.last_transfer with Some n -> n | None -> -1) );
    ]
  in
  let replier =
    if is_leader t && t.p.features.reply_lb then
      [
        ( "replier",
          Json.Obj
            [
              ("bound", Json.Int (Replier.bound t.replier));
              ( "depths",
                Json.List
                  (List.map
                     (fun i -> Json.Int (Replier.depth t.replier i))
                     (Replier.nodes t.replier)) );
            ] );
      ]
    else []
  in
  Json.Obj (gauges @ replier @ [ ("metrics", Metrics.snapshot t.metrics) ])

let leader_hint t =
  match t.raft with Some r -> Rnode.leader_hint r | None -> None

let kill = halt

(* Crash–recovery (DESIGN.md): what survives is the Raft persistent state
   (term, vote, log — and the configuration stack, derived from it) and
   the state machine up to the applied index — including the exactly-once
   completion records and the applied membership view, which are part of
   it. Everything else is rebuilt: the node re-attaches its NIC, re-enters
   as a follower with a fresh election clock, and catches up on entries
   committed while it was down through the ordinary append-entries
   backtracking, fetching bodies it missed via recovery requests. *)
let restart t =
  if t.alive then invalid_arg "Hnode.restart: node is alive";
  t.alive <- true;
  Array.iter Cpu.resume t.net_cpus;
  Array.iter Cpu.resume t.apps;
  t.store <-
    Unordered.create
      ~now:(fun () -> Engine.now t.engine)
      ~gc_unordered:t.p.timing.gc_unordered ~gc_ordered:t.p.timing.gc_ordered ();
  t.apply_busy <- false;
  t.announce_stalled <- false;
  t.ack_override <- None;
  t.probe_sent_term <- -1;
  t.hb_gen <- t.hb_gen + 1;
  Hashtbl.reset t.lease_heard;
  (match (t.raft, t.rabia) with
  | Some raft, _ ->
      Rnode.recover raft;
      t.applied_ptr <- Rnode.applied_index raft;
      (* The checkpoint is durable (part of the applied state machine's
         persistence); restart from it rather than re-cutting early. *)
      t.last_snap <- Rnode.snapshot_index raft
  | None, Some rb ->
      Rb.recover rb;
      t.applied_ptr <- Rb.applied_index rb;
      t.last_snap <- Rb.snapshot_index rb
  | None, None -> ());
  (* The parallel dispatcher restarts with nothing in flight; its
     watermark and round-robin pointer are recomputed from the durable
     applied prefix so a replayed log redispatches identically. *)
  t.apply_inflight <- 0;
  Hashtbl.reset t.apply_done;
  t.apply_watermark <- t.applied_ptr;
  t.apply_rr <- 0;
  t.pumping <- false;
  Hashtbl.reset t.xfer_start;
  let port =
    Fabric.attach t.fabric ~addr:(Addr.Node t.id) ~rate_gbps:t.p.cost.link_gbps
      ~handler:(on_packet t)
  in
  t.port <- Some port;
  Fabric.join t.fabric ~group:Addr.cluster_group (Addr.Node t.id);
  t.last_activity <- Engine.now t.engine;
  t.election_timeout <- draw_timeout t;
  (match t.p.mode with
  | Vanilla | Hover | Hover_pp ->
      (match t.rabia with
      | Some _ -> start_rabia_ticker t
      | None -> start_election_clock t);
      start_gc_loop t
  | Unreplicated -> ());
  tr t Trace.Warn ~kind:"restarted" (fun () ->
      Printf.sprintf "term=%d applied=%d" (term t) t.applied_ptr)
