module Fabric = Hovercraft_net.Fabric
module Addr = Hovercraft_net.Addr
module Rtypes = Hovercraft_raft.Types

type t = {
  fabric : Protocol.payload Fabric.t;
  mutable port : Protocol.payload Fabric.port option;
  mutable members : int list;
  cluster_group : int;
  followers_group : int;
  match_reg : (int, int) Hashtbl.t;
  completed_reg : (int, int) Hashtbl.t;
  mutable term : int;
  mutable leader : int;
  mutable leader_last : int;
  mutable commit : int;
  mutable pending : bool;
  mutable down : bool;
  mutable forwarded : int;
  mutable commits_sent : int;
}

let n_members t = List.length t.members
let quorum t = (n_members t / 2) + 1
let reg_get reg i = Option.value ~default:0 (Hashtbl.find_opt reg i)

let sync_followers_group t =
  (* Followers group = current members minus the leader. Membership and
     leadership both mutate it, so rebuild from scratch each time (the
     fabric makes join/leave idempotent). *)
  List.iter
    (fun i ->
      if i = t.leader then
        Fabric.leave t.fabric ~group:t.followers_group (Addr.Node i)
      else Fabric.join t.fabric ~group:t.followers_group (Addr.Node i))
    t.members

let flush t ~term ~leader =
  Hashtbl.reset t.match_reg;
  Hashtbl.reset t.completed_reg;
  t.term <- term;
  t.leader_last <- 0;
  t.commit <- 0;
  t.pending <- false;
  if leader <> t.leader then begin
    (* Rebuild the follower fan-out group around the new leader. *)
    let old = t.leader in
    t.leader <- leader;
    if old >= 0 && List.mem old t.members then
      Fabric.join t.fabric ~group:t.followers_group (Addr.Node old);
    sync_followers_group t
  end

(* A membership change is the same soft-state invalidation as a term
   change: the old registers and quorum size are meaningless under the new
   configuration, so reuse the flush path and re-derive the fan-out group. *)
let reconfigure t ~term ~members =
  if term >= t.term then begin
    let previous = t.members in
    t.members <- List.sort_uniq compare (Array.to_list members);
    List.iter
      (fun i ->
        if not (List.mem i t.members) then
          Fabric.leave t.fabric ~group:t.followers_group (Addr.Node i))
      previous;
    flush t ~term ~leader:t.leader;
    sync_followers_group t
  end

let transmit t ~dst payload =
  let port = Option.get t.port in
  Fabric.send t.fabric port ~dst
    ~bytes:(Protocol.payload_bytes ~with_bodies:false payload)
    payload

(* AGG_COMMIT carries per-node completed counts as a dense array indexed
   by node id (the wire format of the P4 register file); ids outside the
   current membership read 0. *)
let completed_array t =
  let max_id = List.fold_left max t.leader t.members in
  Array.init (max_id + 1) (fun i -> reg_get t.completed_reg i)

let send_agg_commit t =
  t.commits_sent <- t.commits_sent + 1;
  transmit t ~dst:(Addr.Group t.cluster_group)
    (Protocol.Agg_commit
       { term = t.term; commit = t.commit; applied = completed_array t })

(* Largest index acknowledged by enough followers that, together with the
   leader, a quorum holds it. *)
let quorum_match t =
  let needed = quorum t - 1 in
  if needed = 0 then t.leader_last
  else begin
    let followers = List.filter (fun i -> i <> t.leader) t.members in
    let sorted =
      List.sort (fun a b -> compare b a)
        (List.map (fun i -> reg_get t.match_reg i) followers)
    in
    (* The needed-th largest follower match (1-based from the top). *)
    match List.nth_opt sorted (needed - 1) with Some m -> m | None -> 0
  end

let on_append_entries t ~term ~leader ~end_idx pkt_payload =
  if term > t.term then flush t ~term ~leader;
  if term = t.term then begin
    if leader <> t.leader then flush t ~term ~leader;
    if end_idx <= t.leader_last then t.pending <- true
    else t.leader_last <- end_idx;
    t.forwarded <- t.forwarded + 1;
    transmit t ~dst:(Addr.Group t.followers_group) pkt_payload
  end

let on_append_ack t ~term ~from ~match_idx ~applied_idx =
  if term = t.term && List.mem from t.members then begin
    Hashtbl.replace t.match_reg from (max (reg_get t.match_reg from) match_idx);
    Hashtbl.replace t.completed_reg from
      (max (reg_get t.completed_reg from) applied_idx);
    let candidate = min (quorum_match t) t.leader_last in
    if candidate > t.commit then begin
      t.commit <- candidate;
      t.pending <- false;
      send_agg_commit t
    end
    else if t.pending then begin
      t.pending <- false;
      send_agg_commit t
    end
  end

let handle t (pkt : Protocol.payload Fabric.packet) =
  if not t.down then
    match pkt.payload with
    | Protocol.Raft (Rtypes.Append_entries { term; leader; prev_idx; entries; _ }) ->
        on_append_entries t ~term ~leader
          ~end_idx:(prev_idx + Array.length entries)
          pkt.payload
    | Protocol.Raft
        (Rtypes.Append_ack { term; from; success; match_idx; applied_idx; _ })
      ->
        (* Failure replies go point-to-point to the leader (§5); only
           successes reach the dataplane registers. *)
        if success then on_append_ack t ~term ~from ~match_idx ~applied_idx
    | Protocol.Probe { term; leader } ->
        if term > t.term then flush t ~term ~leader;
        if term = t.term then
          transmit t ~dst:(Addr.Node leader) (Protocol.Probe_reply { term })
    | Protocol.Reconfig { term; members } -> reconfigure t ~term ~members
    | Protocol.Raft (Rtypes.Install_snapshot { term; _ }) ->
        (* Snapshot transfer is point-to-point leader->follower and does
           not touch the match/completed registers; if a chunk transits
           the aggregator (leader addressing the fan-out group in
           aggregated mode) it is passed through unmodified. Receivers
           already past the snapshot index just ack it as covered. *)
        if term >= t.term then
          transmit t ~dst:(Addr.Group t.followers_group) pkt.payload
    | Protocol.Raft (Rtypes.Install_ack { term; _ }) ->
        (* Ack side of the pass-through: flow-control acks belong to the
           leader, not to the dataplane quorum registers. *)
        if term = t.term && t.leader >= 0 then
          transmit t ~dst:(Addr.Node t.leader) pkt.payload
    | Protocol.Raft
        ( Rtypes.Request_vote _ | Rtypes.Vote _ | Rtypes.Commit_to _
        | Rtypes.Agg_ack _ | Rtypes.Timeout_now _ )
    | Protocol.Request _ | Protocol.Response _ | Protocol.Recovery_request _
    | Protocol.Recovery_response _ | Protocol.Probe_reply _
    | Protocol.Agg_commit _ | Protocol.Feedback _ | Protocol.Nack _
    | Protocol.Wrong_shard _ | Protocol.Rabia _ ->
        ()

let create engine fabric ~members ~cluster_group ~followers_group ~rate_gbps =
  ignore engine;
  if members = [] then invalid_arg "Aggregator.create: empty membership";
  let t =
    {
      fabric;
      port = None;
      members = List.sort_uniq compare members;
      cluster_group;
      followers_group;
      match_reg = Hashtbl.create 16;
      completed_reg = Hashtbl.create 16;
      term = 0;
      leader = -1;
      leader_last = 0;
      commit = 0;
      pending = false;
      down = false;
      forwarded = 0;
      commits_sent = 0;
    }
  in
  let port = Fabric.attach fabric ~addr:Addr.Netagg ~rate_gbps ~handler:(handle t) in
  t.port <- Some port;
  t

let set_down t flag =
  t.down <- flag;
  match t.port with Some p -> Fabric.set_down p flag | None -> ()

let term t = t.term
let commit t = t.commit
let members t = t.members
let match_of t i = reg_get t.match_reg i
let forwarded t = t.forwarded
let commits_sent t = t.commits_sent
