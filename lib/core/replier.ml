open Hovercraft_sim
open Hovercraft_r2p2

type t = {
  policy : Jbsq.policy;
  bound : int;
  applied : int array;
  assigned : int Queue.t array;  (* assigned entry indices, ascending *)
  last_assigned : int array;
  excluded : bool array;
  rng : Rng.t;
  scratch : int array;
}

let create policy ~bound ~n ~rng =
  if bound <= 0 then invalid_arg "Replier.create: bound must be positive";
  if n <= 0 then invalid_arg "Replier.create: need at least one node";
  {
    policy;
    bound;
    applied = Array.make n 0;
    assigned = Array.init n (fun _ -> Queue.create ());
    last_assigned = Array.make n 0;
    excluded = Array.make n false;
    rng;
    scratch = Array.make n 0;
  }

let bound t = t.bound
let n t = Array.length t.applied

let prune t i =
  let q = t.assigned.(i) in
  while (not (Queue.is_empty q)) && Queue.peek q <= t.applied.(i) do
    ignore (Queue.pop q)
  done

let note_applied t ~node ~applied =
  if applied > t.applied.(node) then begin
    t.applied.(node) <- applied;
    prune t node
  end

let applied_of t i = t.applied.(i)
let depth t i = Queue.length t.assigned.(i)
let eligible t i = (not t.excluded.(i)) && depth t i < t.bound

let any_eligible t =
  let rec go i = i < n t && (eligible t i || go (i + 1)) in
  go 0

let pick t () =
  match t.policy with
  | Jbsq.Random_choice ->
      let count = ref 0 in
      for i = 0 to n t - 1 do
        if eligible t i then begin
          t.scratch.(!count) <- i;
          incr count
        end
      done;
      if !count = 0 then None else Some t.scratch.(Rng.int t.rng !count)
  | Jbsq.Jbsq ->
      let best = ref max_int and count = ref 0 in
      for i = 0 to n t - 1 do
        if eligible t i then begin
          let d = depth t i in
          if d < !best then begin
            best := d;
            t.scratch.(0) <- i;
            count := 1
          end
          else if d = !best then begin
            t.scratch.(!count) <- i;
            incr count
          end
        end
      done;
      if !count = 0 then None else Some t.scratch.(Rng.int t.rng !count)

let assign t ~node ~index =
  if index <= t.last_assigned.(node) then
    invalid_arg "Replier.assign: indices must be increasing per node";
  t.last_assigned.(node) <- index;
  if index > t.applied.(node) then Queue.push index t.assigned.(node)

let set_excluded t i flag = t.excluded.(i) <- flag

let reset t =
  Array.fill t.applied 0 (n t) 0;
  Array.fill t.last_assigned 0 (n t) 0;
  Array.iter Queue.clear t.assigned;
  Array.fill t.excluded 0 (n t) false
