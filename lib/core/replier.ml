open Hovercraft_sim
open Hovercraft_r2p2

(* Per-node assignment state. Nodes join and leave with the cluster
   configuration, so state lives in a table keyed by node id. *)
type node_state = {
  mutable applied : int;
  assigned : int Queue.t;  (* assigned entry indices, ascending *)
  mutable last_assigned : int;
  mutable excluded : bool;
}

type t = {
  policy : Jbsq.policy;
  bound : int;
  tbl : (int, node_state) Hashtbl.t;
  mutable nodes : int array;  (* current members, sorted (deterministic picks) *)
  rng : Rng.t;
}

let fresh_state () =
  { applied = 0; assigned = Queue.create (); last_assigned = 0; excluded = false }

let create policy ~bound ~nodes ~rng =
  if bound <= 0 then invalid_arg "Replier.create: bound must be positive";
  if nodes = [] then invalid_arg "Replier.create: need at least one node";
  let nodes = Array.of_list (List.sort_uniq compare nodes) in
  let tbl = Hashtbl.create (Array.length nodes) in
  Array.iter (fun i -> Hashtbl.replace tbl i (fresh_state ())) nodes;
  { policy; bound; tbl; nodes; rng }

let bound t = t.bound
let nodes t = Array.to_list t.nodes
let state_opt t i = Hashtbl.find_opt t.tbl i

(* Membership change: retained nodes keep their queues (their in-flight
   assignments are still outstanding), leavers are dropped — at most
   [bound] replies are lost per removed node, the same guarantee as for a
   crashed one — and joiners start fresh. *)
let set_nodes t nodes =
  if nodes = [] then invalid_arg "Replier.set_nodes: need at least one node";
  let nodes = Array.of_list (List.sort_uniq compare nodes) in
  let keep = Array.to_list nodes in
  let stale =
    Hashtbl.fold (fun i _ acc -> if List.mem i keep then acc else i :: acc) t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) stale;
  Array.iter
    (fun i -> if not (Hashtbl.mem t.tbl i) then Hashtbl.replace t.tbl i (fresh_state ()))
    nodes;
  t.nodes <- nodes

let prune st =
  while (not (Queue.is_empty st.assigned)) && Queue.peek st.assigned <= st.applied do
    ignore (Queue.pop st.assigned)
  done

(* Stale acks from departed nodes may still arrive; they are no-ops. *)
let note_applied t ~node ~applied =
  match state_opt t node with
  | Some st when applied > st.applied ->
      st.applied <- applied;
      prune st
  | Some _ | None -> ()

let applied_of t i =
  match state_opt t i with Some st -> st.applied | None -> 0

let depth t i =
  match state_opt t i with Some st -> Queue.length st.assigned | None -> 0

let eligible_st t st = (not st.excluded) && Queue.length st.assigned < t.bound

let eligible t i =
  match state_opt t i with Some st -> eligible_st t st | None -> false

let any_eligible t = Array.exists (fun i -> eligible t i) t.nodes

let pick t () =
  let scratch = Array.make (Array.length t.nodes) 0 in
  match t.policy with
  | Jbsq.Random_choice ->
      let count = ref 0 in
      Array.iter
        (fun i ->
          if eligible t i then begin
            scratch.(!count) <- i;
            incr count
          end)
        t.nodes;
      if !count = 0 then None else Some scratch.(Rng.int t.rng !count)
  | Jbsq.Jbsq ->
      let best = ref max_int and count = ref 0 in
      Array.iter
        (fun i ->
          if eligible t i then begin
            let d = depth t i in
            if d < !best then begin
              best := d;
              scratch.(0) <- i;
              count := 1
            end
            else if d = !best then begin
              scratch.(!count) <- i;
              incr count
            end
          end)
        t.nodes;
      if !count = 0 then None else Some scratch.(Rng.int t.rng !count)

let assign t ~node ~index =
  match state_opt t node with
  | None -> invalid_arg "Replier.assign: unknown node"
  | Some st ->
      if index <= st.last_assigned then
        invalid_arg "Replier.assign: indices must be increasing per node";
      st.last_assigned <- index;
      if index > st.applied then Queue.push index st.assigned

let set_excluded t i flag =
  match state_opt t i with Some st -> st.excluded <- flag | None -> ()

let reset t =
  Hashtbl.iter
    (fun _ st ->
      st.applied <- 0;
      st.last_assigned <- 0;
      st.excluded <- false;
      Queue.clear st.assigned)
    t.tbl
