type severity = Debug | Info | Warn | Error

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let severity_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  at : int;
  node : int;
  severity : severity;
  kind : string;
  detail : string;
}

let dummy = { at = 0; node = -1; severity = Debug; kind = ""; detail = "" }

type t = {
  buf : event array;
  mutable accepted : int;
  mutable default_level : severity;
  node_levels : (int, severity) Hashtbl.t;
}

let create ?(capacity = 4096) ?(level = Info) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    buf = Array.make capacity dummy;
    accepted = 0;
    default_level = level;
    node_levels = Hashtbl.create 8;
  }

let level t = t.default_level
let set_level t l = t.default_level <- l
let set_node_level t ~node l = Hashtbl.replace t.node_levels node l
let clear_node_level t ~node = Hashtbl.remove t.node_levels node

let enabled t ~node sev =
  let min_level =
    match Hashtbl.find_opt t.node_levels node with
    | Some l -> l
    | None -> t.default_level
  in
  severity_rank sev >= severity_rank min_level

let record t ~at ~node sev ~kind ~detail =
  if enabled t ~node sev then begin
    t.buf.(t.accepted mod Array.length t.buf) <-
      { at; node; severity = sev; kind; detail };
    t.accepted <- t.accepted + 1
  end

let recorded t = t.accepted
let capacity t = Array.length t.buf

let events t =
  let cap = Array.length t.buf in
  let len = min t.accepted cap in
  let first = t.accepted - len in
  List.init len (fun i -> t.buf.((first + i) mod cap))

let pp_event fmt e =
  Format.fprintf fmt "%8.1fus node%-2d %-5s %-18s %s"
    (float_of_int e.at /. 1e3)
    e.node
    (severity_to_string e.severity)
    e.kind e.detail

let event_json e =
  Json.Obj
    [
      ("at_ns", Json.Int e.at);
      ("node", Json.Int e.node);
      ("severity", Json.String (severity_to_string e.severity));
      ("kind", Json.String e.kind);
      ("detail", Json.String e.detail);
    ]

let snapshot t =
  let evs = events t in
  Json.Obj
    [
      ("recorded", Json.Int t.accepted);
      ("dropped", Json.Int (max 0 (t.accepted - Array.length t.buf)));
      ("events", Json.List (List.map event_json evs));
    ]
