(** A minimal JSON tree, printer and parser.

    The observability layer exports snapshots as JSON so they can be
    diffed, archived next to experiment outputs, and consumed by external
    tooling. No third-party JSON library is assumed: this covers exactly
    the subset snapshots need (objects, arrays, strings, ints, floats,
    bools, null), with a parser sufficient for round-tripping what
    {!to_string} emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Object members keep their given order;
    non-finite floats render as [null]. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for humans. *)

val of_string : string -> (t, string) result
(** Parse a JSON document. Numbers without [.], [e] or [E] parse as
    [Int]; everything else numeric parses as [Float]. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. [None] on
    non-objects. *)

val equal : t -> t -> bool
