(** A registry of named counters, gauges, and log-scale latency histograms.

    One registry per component (node, load generator, ...). Handles are
    resolved by name once, at wiring time; the hot-path operations
    ({!incr}, {!add}, {!set}, {!observe}) are a couple of integer writes —
    cheap enough for per-packet and per-entry accounting in the simulator's
    inner loops.

    Histograms are log-linear (HdrHistogram-style): values are bucketed by
    their highest set bit with [16] sub-buckets per octave, bounding the
    relative quantile error at ~6% while keeping observation O(1) and
    allocation-free. Exact minimum and maximum are tracked alongside, and
    reported percentiles are clamped to them. *)

type t
(** A metric registry. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Handles}

    Each accessor returns the existing metric of that name or registers a
    fresh one. A name is one kind of metric only; re-registering a name as
    a different kind raises [Invalid_argument]. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Hot-path updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record a (non-negative) sample; negative samples clamp to 0. *)

(** {1 Reading} *)

val value : counter -> int
val gauge_value : gauge -> int
val counter_value : t -> string -> int
(** By name; 0 when the counter was never registered. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val hist_count : histogram -> int
val hist_max : histogram -> int
val hist_mean : histogram -> float

val hist_percentile : histogram -> float -> int
(** Nearest-rank percentile over the bucketed samples, clamped to the
    exact observed min/max. 0 on an empty histogram; raises
    [Invalid_argument] on a rank outside [0, 1]. *)

val clear : t -> unit
(** Zero every metric, keeping registrations (new measurement window). *)

val snapshot : t -> Json.t
(** The whole registry as
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}], names
    sorted, histograms summarized as count/min/max/mean/p50/p90/p99/p999. *)
