(** A registry of named counters, gauges, and log-scale latency histograms.

    One registry per component (node, load generator, ...). Handles are
    resolved by name once, at wiring time; the hot-path operations
    ({!incr}, {!add}, {!set}, {!observe}) are a couple of integer writes —
    cheap enough for per-packet and per-entry accounting in the simulator's
    inner loops.

    Histograms are log-linear (HdrHistogram-style): values are bucketed by
    their highest set bit with [16] sub-buckets per octave, bounding the
    relative quantile error at ~6% while keeping observation O(1) and
    allocation-free. Exact minimum and maximum are tracked alongside, and
    reported percentiles are clamped to them. *)

type t
(** A metric registry. *)

type counter
type gauge
type histogram

type windowed
(** A sliding-window histogram: two fixed windows, current and previous.
    Samples land in the current window; {!rotate} retires it. Readers
    see recent tails only — the just-completed window ([last_*]) or the
    merge of both live windows ([window_*]) — instead of the whole run's
    cumulative distribution. *)

val create : unit -> t

(** {1 Handles}

    Each accessor returns the existing metric of that name or registers a
    fresh one. A name is one kind of metric only; re-registering a name as
    a different kind raises [Invalid_argument]. *)

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram
val windowed : t -> string -> windowed

(** {1 Hot-path updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit

val observe : histogram -> int -> unit
(** Record a (non-negative) sample; negative samples clamp to 0. *)

val wobserve : windowed -> int -> unit
(** Record a sample into the current window (same clamping as
    {!observe}). *)

(** {1 Reading} *)

val value : counter -> int
val gauge_value : gauge -> int
val counter_value : t -> string -> int
(** By name; 0 when the counter was never registered. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val hist_count : histogram -> int
val hist_max : histogram -> int
val hist_mean : histogram -> float

val hist_percentile : histogram -> float -> int
(** Nearest-rank percentile over the bucketed samples, clamped to the
    exact observed min/max. 0 on an empty histogram; raises
    [Invalid_argument] on a rank outside [0, 1]. *)

(** {1 Windowed views}

    The registry never rotates windows itself: the consumer that owns the
    measurement cadence (a control loop's tick, a scenario runner) calls
    {!rotate}, so all readers of one registry agree on window edges. *)

val rotate : windowed -> unit
(** End the current window: it becomes the previous window (replacing
    the old one, whose samples vanish — nothing older than two windows
    is ever visible) and a zeroed current window starts. Allocation-free. *)

val rotations : windowed -> int
(** Rotations performed since creation (or the last registry {!clear}). *)

val last_count : windowed -> int
val last_max : windowed -> int

val last_percentile : windowed -> float -> int
(** Percentile of the just-completed window alone ({!hist_percentile}
    semantics). 0 before any rotation or on an empty window. *)

val window_count : windowed -> int
val window_max : windowed -> int

val window_percentile : windowed -> float -> int
(** Percentile over the merge of the current and previous windows — the
    freshest tail that never reads a half-filled window in isolation.
    Clamped to the min/max observed across the two windows. *)

val clear : t -> unit
(** Zero every metric, keeping registrations (new measurement window).
    Windowed histograms drop both windows and their rotation count. *)

val snapshot : t -> Json.t
(** The whole registry as
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}], names
    sorted, histograms summarized as count/min/max/mean/p50/p90/p99/p999. *)
