(** A ring buffer of timestamped protocol events.

    One trace is shared by a whole deployment: every node records protocol
    milestones (append_entries sent/acked, commit advanced, recovery
    issued/resolved, elections, replier gating) into it, tagged with the
    simulated time and the node id. The buffer holds the last [capacity]
    accepted events — old events are overwritten, never reallocated, so
    recording stays O(1) and the memory footprint is fixed no matter how
    long a run is.

    Filtering is by severity, with an optional per-node override: a node
    under investigation can record [Debug] detail while the rest of the
    cluster stays at [Info]. Call {!enabled} before building an event's
    detail string so filtered events cost nothing. *)

type severity = Debug | Info | Warn | Error

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

type event = {
  at : int;  (** Simulated time, ns. *)
  node : int;  (** Recording node id; -1 for non-node components. *)
  severity : severity;
  kind : string;  (** Stable event tag, e.g. ["ae_sent"]. *)
  detail : string;
}

type t

val create : ?capacity:int -> ?level:severity -> unit -> t
(** [capacity] defaults to 4096 events; [level] (the default minimum
    severity) to [Info]. *)

val level : t -> severity

val set_level : t -> severity -> unit
(** Set the default minimum severity. *)

val set_node_level : t -> node:int -> severity -> unit
(** Override the minimum severity for one node. *)

val clear_node_level : t -> node:int -> unit

val enabled : t -> node:int -> severity -> bool
(** Would an event of this severity from this node be recorded? *)

val record : t -> at:int -> node:int -> severity -> kind:string -> detail:string -> unit
(** Append an event if it passes the severity filter. *)

val recorded : t -> int
(** Events accepted since creation (including overwritten ones). *)

val events : t -> event list
(** The retained events, oldest first. *)

val capacity : t -> int

val pp_event : Format.formatter -> event -> unit

val snapshot : t -> Json.t
(** [{"recorded": n, "dropped": n, "events": [...]}] where [dropped]
    counts accepted events that have been overwritten. *)
