type counter = { mutable c : int }
type gauge = { mutable g : int }

(* Log-linear buckets: values below [sub] map to their own bucket; above,
   each power-of-two octave is split into [sub] equal sub-buckets, so the
   bucket width is always <= value / sub (~6% relative error). *)
let sub_bits = 4
let sub = 1 lsl sub_bits

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let msb v =
  (* Highest set bit of v > 0. *)
  let r = ref 0 in
  let v = ref v in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_of v =
  if v < sub then v
  else
    let oct = msb v in
    sub + (((oct - sub_bits) * sub) + ((v lsr (oct - sub_bits)) land (sub - 1)))

(* Upper bound of a bucket: every sample in it is <= this. *)
let bucket_hi idx =
  if idx < sub then idx
  else begin
    let oct = ((idx - sub) / sub) + sub_bits in
    let off = (idx - sub) mod sub in
    let width = 1 lsl (oct - sub_bits) in
    (1 lsl oct) + ((off + 1) * width) - 1
  end

let n_buckets = bucket_of max_int + 1

(* Sliding-window histogram: samples land in [cur]; [rotate] retires
   [cur] to [prev] and starts a fresh window. Readers see either the
   just-completed window alone ([last_*]) or the merge of the two live
   windows ([window_*]) — never anything older, so tails reflect RECENT
   behaviour instead of the whole run. Rotation recycles the two
   histograms in place (no allocation on the tick path). *)
type windowed = {
  mutable cur : histogram;
  mutable prev : histogram;
  mutable rotations : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Windowed of windowed

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let resolve t name kind make =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> (
      match m with
      | Counter c -> ( match kind with `C -> `C c | _ -> invalid_arg ("Metrics: " ^ name ^ " is a counter"))
      | Gauge g -> ( match kind with `G -> `G g | _ -> invalid_arg ("Metrics: " ^ name ^ " is a gauge"))
      | Histogram h -> ( match kind with `H -> `H h | _ -> invalid_arg ("Metrics: " ^ name ^ " is a histogram"))
      | Windowed w -> ( match kind with `W -> `W w | _ -> invalid_arg ("Metrics: " ^ name ^ " is a windowed histogram")))
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name m;
      (match m with
      | Counter c -> `C c
      | Gauge g -> `G g
      | Histogram h -> `H h
      | Windowed w -> `W w)

let counter t name =
  match resolve t name `C (fun () -> Counter { c = 0 }) with
  | `C c -> c
  | _ -> assert false

let gauge t name =
  match resolve t name `G (fun () -> Gauge { g = 0 }) with
  | `G g -> g
  | _ -> assert false

let fresh_hist () =
  {
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let histogram t name =
  match resolve t name `H (fun () -> Histogram (fresh_hist ())) with
  | `H h -> h
  | _ -> assert false

let windowed t name =
  match
    resolve t name `W (fun () ->
        Windowed { cur = fresh_hist (); prev = fresh_hist (); rotations = 0 })
  with
  | `W w -> w
  | _ -> assert false

let incr c = c.c <- c.c + 1
let add c v = c.c <- c.c + v
let set g v = g.g <- v

let observe h v =
  let v = if v < 0 then 0 else v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let value c = c.c
let gauge_value g = g.g

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Counter c) -> c.c | _ -> 0

let fold_kind t f =
  Hashtbl.fold (fun name m acc -> match f name m with Some x -> x :: acc | None -> acc) t.tbl []
  |> List.sort compare

let counters t =
  fold_kind t (fun name -> function
    | Counter c -> Some (name, c.c)
    | Gauge _ | Histogram _ | Windowed _ -> None)

let hist_count h = h.count
let hist_max h = h.max_v

let hist_mean h =
  if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

(* Nearest-rank percentile over one or two histograms' buckets, clamped
   to the exact min/max observed across them. The two-histogram case is
   the windowed merged view; the single case is the classic cumulative
   one — same ranking either way. *)
let percentile_over hs p =
  if p < 0. || p > 1. then invalid_arg "Metrics.hist_percentile: rank out of range";
  let count = List.fold_left (fun acc h -> acc + h.count) 0 hs in
  if count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p *. float_of_int count))) in
    let seen = ref 0 and idx = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         List.iter (fun h -> seen := !seen + h.buckets.(i)) hs;
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let min_v = List.fold_left (fun acc h -> min acc h.min_v) max_int hs in
    let max_v = List.fold_left (fun acc h -> max acc h.max_v) 0 hs in
    max min_v (min max_v (bucket_hi !idx))
  end

let hist_percentile h p = percentile_over [ h ] p

(* --- windowed views ------------------------------------------------- *)

let wobserve w v = observe w.cur v

let reset_hist h =
  Array.fill h.buckets 0 n_buckets 0;
  h.count <- 0;
  h.sum <- 0;
  h.min_v <- max_int;
  h.max_v <- 0

let rotate w =
  (* Recycle: the retiring [prev] becomes the next (zeroed) [cur]. *)
  let recycled = w.prev in
  reset_hist recycled;
  w.prev <- w.cur;
  w.cur <- recycled;
  w.rotations <- w.rotations + 1

let rotations w = w.rotations
let last_count w = w.prev.count
let last_max w = w.prev.max_v
let last_percentile w p = percentile_over [ w.prev ] p
let window_count w = w.cur.count + w.prev.count
let window_max w = max w.cur.max_v w.prev.max_v
let window_percentile w p = percentile_over [ w.cur; w.prev ] p

let clear t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0
      | Histogram h -> reset_hist h
      | Windowed w ->
          reset_hist w.cur;
          reset_hist w.prev;
          w.rotations <- 0)
    t.tbl

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("min", Json.Int (if h.count = 0 then 0 else h.min_v));
      ("max", Json.Int h.max_v);
      ("mean", Json.Float (hist_mean h));
      ("p50", Json.Int (hist_percentile h 0.5));
      ("p90", Json.Int (hist_percentile h 0.9));
      ("p99", Json.Int (hist_percentile h 0.99));
      ("p999", Json.Int (hist_percentile h 0.999));
    ]

let window_json w =
  Json.Obj
    [
      ("rotations", Json.Int w.rotations);
      ("count", Json.Int (window_count w));
      ("max", Json.Int (window_max w));
      ("p50", Json.Int (window_percentile w 0.5));
      ("p99", Json.Int (window_percentile w 0.99));
      ("last_count", Json.Int (last_count w));
      ("last_p99", Json.Int (last_percentile w 0.99));
    ]

let snapshot t =
  let gauges =
    fold_kind t (fun name -> function
      | Gauge g -> Some (name, Json.Int g.g)
      | Counter _ | Histogram _ | Windowed _ -> None)
  in
  let hists =
    fold_kind t (fun name -> function
      | Histogram h -> Some (name, hist_json h)
      | Counter _ | Gauge _ | Windowed _ -> None)
  in
  let windows =
    fold_kind t (fun name -> function
      | Windowed w -> Some (name, window_json w)
      | Counter _ | Gauge _ | Histogram _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists);
      ("windows", Json.Obj windows);
    ]
