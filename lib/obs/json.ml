type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    (* Shortest representation that still round-trips through of_string. *)
    let s = Printf.sprintf "%.12g" f in
    if
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s
    then s
    else s ^ ".0"
  end

let rec emit ~indent ~level buf v =
  let pad n =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          emit ~indent ~level:(level + 1) buf item)
        members;
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "at %d: %s" c.pos msg))
let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    &&
    match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected %c" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.s then error c "short \\u escape";
            let hex = String.sub c.s (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error c "bad \\u escape"
            in
            (* Snapshots only escape control characters, so the code point
               fits one byte; anything larger is preserved as UTF-8 by the
               printer and never escaped. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else error c "unsupported \\u escape";
            c.pos <- c.pos + 4
        | _ -> error c "bad escape");
        c.pos <- c.pos + 1;
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.s start (c.pos - start) in
  let is_float =
    String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected , or }"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              items (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> error c "expected , or ]"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v else Error "trailing garbage"
  | exception Parse_error msg -> Error msg

let member k = function
  | Obj members -> List.assoc_opt k members
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let equal = Stdlib.( = )
