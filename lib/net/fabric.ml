open Hovercraft_sim

type 'a packet = {
  src : Addr.t;
  dst : Addr.t;
  bytes : int;
  payload : 'a;
  sent_at : Timebase.t;
}

type 'a port = {
  addr : Addr.t;
  rate_gbps : float;
  handler : 'a packet -> unit;
  mutable tx_free : Timebase.t;
  mutable rx_free : Timebase.t;
  mutable down : bool;
  mutable tx_packets : int;
  mutable tx_wire_bytes : int;
  mutable rx_packets : int;
  mutable rx_wire_bytes : int;
  mutable dropped : int;
}

type fault = { drop : float; delay : Timebase.t }

type 'a t = {
  engine : Engine.t;
  latency : Timebase.t;
  ports : (Addr.t, 'a port) Hashtbl.t;
  groups : (int, Addr.t list ref) Hashtbl.t;
  (* Fault injection: per-link impairments and island partitions. The
     dedicated rng keeps fault-free runs byte-identical to the pre-fault
     fabric (it is only drawn when a lossy fault is installed). *)
  faults : (Addr.t * Addr.t, fault) Hashtbl.t;
  islands : (Addr.t, int) Hashtbl.t;
  fault_rng : Rng.t;
  mutable injected_drops : int;
  mutable partition_drops : int;
}

let create engine ?(latency = Timebase.us 1) ?(fault_seed = 0x5eed) () =
  {
    engine;
    latency;
    ports = Hashtbl.create 32;
    groups = Hashtbl.create 8;
    faults = Hashtbl.create 8;
    islands = Hashtbl.create 8;
    fault_rng = Rng.create fault_seed;
    injected_drops = 0;
    partition_drops = 0;
  }

let attach t ~addr ~rate_gbps ~handler =
  let port =
    {
      addr;
      rate_gbps;
      handler;
      tx_free = 0;
      rx_free = 0;
      down = false;
      tx_packets = 0;
      tx_wire_bytes = 0;
      rx_packets = 0;
      rx_wire_bytes = 0;
      dropped = 0;
    }
  in
  Hashtbl.replace t.ports addr port;
  port

let members t group =
  match Hashtbl.find_opt t.groups group with None -> [] | Some l -> !l

let join t ~group addr =
  match Hashtbl.find_opt t.groups group with
  | Some l -> if not (List.exists (Addr.equal addr) !l) then l := addr :: !l
  | None -> Hashtbl.replace t.groups group (ref [ addr ])

let leave t ~group addr =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some l -> l := List.filter (fun a -> not (Addr.equal a addr)) !l

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let set_link_fault t ~src ~dst ?(drop = 0.) ?(delay = 0) () =
  if drop < 0. || drop > 1. then
    invalid_arg "Fabric.set_link_fault: drop must be in [0, 1]";
  if delay < 0 then invalid_arg "Fabric.set_link_fault: negative delay";
  if drop = 0. && delay = 0 then Hashtbl.remove t.faults (src, dst)
  else Hashtbl.replace t.faults (src, dst) { drop; delay }

let clear_link_fault t ~src ~dst = Hashtbl.remove t.faults (src, dst)
let clear_link_faults t = Hashtbl.reset t.faults

let partition t sets =
  Hashtbl.reset t.islands;
  List.iteri
    (fun island addrs ->
      List.iter (fun a -> Hashtbl.replace t.islands a island) addrs)
    sets

let heal t = Hashtbl.reset t.islands
let partitioned t = Hashtbl.length t.islands > 0

(* Two endpoints can talk unless both sit in distinct islands; endpoints
   not named by the partition (clients, middleboxes, ...) reach everyone. *)
let reachable t a b =
  match (Hashtbl.find_opt t.islands a, Hashtbl.find_opt t.islands b) with
  | Some ia, Some ib -> ia = ib
  | Some _, None | None, Some _ | None, None -> true

let injected_drops t = t.injected_drops
let partition_drops t = t.partition_drops

(* ------------------------------------------------------------------ *)

(* Clock the packet off the receiver's link, then hand it up. *)
let deliver t pkt arrival dst_port =
  let wire = Wire.wire_bytes ~payload:pkt.bytes in
  let start = max arrival dst_port.rx_free in
  dst_port.rx_free <- start + Wire.serialize_ns ~rate_gbps:dst_port.rate_gbps ~bytes:wire;
  let done_at = dst_port.rx_free in
  Engine.at t.engine done_at (fun () ->
      if dst_port.down then dst_port.dropped <- dst_port.dropped + 1
      else begin
        dst_port.rx_packets <- dst_port.rx_packets + 1;
        dst_port.rx_wire_bytes <- dst_port.rx_wire_bytes + wire;
        dst_port.handler pkt
      end)

let send t src_port ~dst ~bytes payload =
  let now = Engine.now t.engine in
  let pkt = { src = src_port.addr; dst; bytes; payload; sent_at = now } in
  let wire = Wire.wire_bytes ~payload:bytes in
  let start = max now src_port.tx_free in
  src_port.tx_free <- start + Wire.serialize_ns ~rate_gbps:src_port.rate_gbps ~bytes:wire;
  src_port.tx_packets <- src_port.tx_packets + 1;
  src_port.tx_wire_bytes <- src_port.tx_wire_bytes + wire;
  let arrival = src_port.tx_free + t.latency in
  let deliver_to addr =
    if not (reachable t src_port.addr addr) then
      t.partition_drops <- t.partition_drops + 1
    else begin
      let extra_delay, dropped =
        match Hashtbl.find_opt t.faults (src_port.addr, addr) with
        | None -> (0, false)
        | Some f ->
            (f.delay, f.drop > 0. && Rng.bool t.fault_rng f.drop)
      in
      if dropped then t.injected_drops <- t.injected_drops + 1
      else
        match Hashtbl.find_opt t.ports addr with
        | Some p -> deliver t pkt (arrival + extra_delay) p
        | None -> src_port.dropped <- src_port.dropped + 1
    end
  in
  match dst with
  | Addr.Group g ->
      List.iter
        (fun m -> if not (Addr.equal m src_port.addr) then deliver_to m)
        (members t g)
  | Addr.Node _ | Addr.Client _ | Addr.Netagg | Addr.Middlebox | Addr.Router ->
      deliver_to dst

let set_down p flag = p.down <- flag
let tx_packets p = p.tx_packets
let tx_wire_bytes p = p.tx_wire_bytes
let rx_packets p = p.rx_packets
let rx_wire_bytes p = p.rx_wire_bytes
let dropped p = p.dropped

(* How far ahead of the clock the link is booked: the serialization
   backlog, i.e. the queue depth expressed in time. *)
let tx_backlog_ns p ~now = max 0 (p.tx_free - now)
let rx_backlog_ns p ~now = max 0 (p.rx_free - now)

let ports t =
  Hashtbl.fold (fun addr p acc -> (addr, p) :: acc) t.ports []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let port_snapshot t p =
  let now = Engine.now t.engine in
  Hovercraft_obs.Json.Obj
    [
      ("tx_packets", Hovercraft_obs.Json.Int p.tx_packets);
      ("tx_wire_bytes", Hovercraft_obs.Json.Int p.tx_wire_bytes);
      ("rx_packets", Hovercraft_obs.Json.Int p.rx_packets);
      ("rx_wire_bytes", Hovercraft_obs.Json.Int p.rx_wire_bytes);
      ("dropped", Hovercraft_obs.Json.Int p.dropped);
      ("tx_backlog_ns", Hovercraft_obs.Json.Int (tx_backlog_ns p ~now));
      ("rx_backlog_ns", Hovercraft_obs.Json.Int (rx_backlog_ns p ~now));
      ("down", Hovercraft_obs.Json.Bool p.down);
    ]

let snapshot t =
  let fault_fields =
    [
      ( "faults",
        Hovercraft_obs.Json.Obj
          [
            ("links_impaired", Hovercraft_obs.Json.Int (Hashtbl.length t.faults));
            ("partitioned", Hovercraft_obs.Json.Bool (partitioned t));
            ("injected_drops", Hovercraft_obs.Json.Int t.injected_drops);
            ("partition_drops", Hovercraft_obs.Json.Int t.partition_drops);
          ] );
    ]
  in
  Hovercraft_obs.Json.Obj
    (List.map (fun (addr, p) -> (Addr.to_string addr, port_snapshot t p)) (ports t)
    @ fault_fields)
