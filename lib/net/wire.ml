let mtu = 1500
let frame_overhead = 64

(* One snapshot chunk per frame: the MTU minus room for the R2P2 header
   and the install message's own framing (identity, offset, member list).
   Keeping each Install_snapshot inside a single frame means a lost frame
   costs exactly one chunk retransmission, never a partial chunk. *)
let snap_chunk_bytes = mtu - 256

let frames ~payload =
  if payload <= 0 then 1 else (payload + mtu - 1) / mtu

let wire_bytes ~payload =
  let n = frames ~payload in
  max payload 0 + (n * frame_overhead)

let serialize_ns ~rate_gbps ~bytes =
  (* bits / (Gbit/s) = ns *)
  let ns = float_of_int (bytes * 8) /. rate_gbps in
  max 1 (int_of_float (Float.round ns))
