(** A serial CPU resource with FIFO queueing.

    Each server dedicates one simulated hardware thread to network/protocol
    processing and one to application execution, matching the paper's
    two-thread DPDK runtime (§6). Work submitted to a busy CPU queues behind
    the in-flight work; completion order equals submission order. *)

open Hovercraft_sim

type t

val create : Engine.t -> t

val exec : t -> cost:Timebase.t -> (unit -> unit) -> unit
(** [exec t ~cost k] runs [k] after [cost] of CPU time, once all previously
    submitted work has finished. [cost] must be >= 0. *)

val backlog : t -> Timebase.t
(** Time until the CPU would go idle if no more work arrived (0 when
    idle). *)

val horizon : t -> Timebase.t
(** Absolute instant the CPU next falls idle: now when idle, the end of
    the queued backlog otherwise. *)

val advance_to : t -> Timebase.t -> unit
(** [advance_to t at] pushes the CPU's next-free instant forward to [at]
    without charging busy time — an idle wait. Schedulers use it to make
    sibling CPUs block on a barrier. No-op when [at] is already past or
    the CPU is halted. *)

val busy_time : t -> Timebase.t
(** Total CPU time consumed so far (for utilization reporting). *)

val halt : t -> unit
(** Crash the CPU: queued and future work is silently discarded. Used by
    failure injection. *)

val resume : t -> unit
(** Bring a halted CPU back, idle. Work queued before the halt stays
    discarded — a crash loses the in-flight backlog — and [busy_time]
    keeps accumulating across the node's lifetimes. No-op when not
    halted. *)

val halted : t -> bool
