open Hovercraft_sim

type t = {
  engine : Engine.t;
  mutable free_at : Timebase.t;
  mutable busy : Timebase.t;
  mutable halted : bool;
  mutable gen : int;
      (* Bumped on every halt: closures queued before a crash capture the
         generation they were submitted under and never run after it, even
         if the CPU is later resumed. *)
}

let create engine = { engine; free_at = 0; busy = 0; halted = false; gen = 0 }

let exec t ~cost k =
  if cost < 0 then invalid_arg "Cpu.exec: negative cost";
  if not t.halted then begin
    let now = Engine.now t.engine in
    let start = max now t.free_at in
    t.free_at <- start + cost;
    t.busy <- t.busy + cost;
    let gen = t.gen in
    Engine.at t.engine t.free_at (fun () -> if t.gen = gen then k ())
  end

let backlog t =
  let now = Engine.now t.engine in
  max 0 (t.free_at - now)

let horizon t = max (Engine.now t.engine) t.free_at

let advance_to t at =
  (* Idle wait: push the next-free instant forward without charging busy
     time. Barriers in a multi-thread scheduler use this to make every
     sibling CPU wait for a global operation — stall, not work. *)
  if not t.halted then if at > t.free_at then t.free_at <- at

let busy_time t = t.busy

let halt t =
  t.halted <- true;
  t.gen <- t.gen + 1

let resume t =
  if t.halted then begin
    t.halted <- false;
    (* The pre-crash backlog died with the crash; the CPU comes back
       idle. *)
    t.free_at <- Engine.now t.engine
  end

let halted t = t.halted
