(** Wire-level framing arithmetic.

    Converts application payload sizes into bytes-on-the-wire and
    serialization delays. A payload larger than one MTU is fragmented into
    multiple frames, each paying the Ethernet + IP + UDP + R2P2 header
    overhead — this is what makes 6 kB replies cost "2 MTUs" in the
    paper's §3.3 arithmetic. *)

val mtu : int
(** Maximum payload bytes carried per frame (1500, as in the paper). *)

val frame_overhead : int
(** Header + inter-frame overhead charged per frame, in bytes. *)

val snap_chunk_bytes : int
(** Default snapshot-transfer chunk: the largest slice of a serialized
    state-machine image that fits in one frame alongside the install
    message's framing, so chunked transfer degrades one-frame-at-a-time
    under loss. *)

val frames : payload:int -> int
(** Number of frames needed for a payload (>= 1; empty payloads still send
    one frame). *)

val wire_bytes : payload:int -> int
(** Total bytes on the wire for a payload, including per-frame overhead. *)

val serialize_ns : rate_gbps:float -> bytes:int -> Hovercraft_sim.Timebase.t
(** Time to clock [bytes] onto a link of the given rate. *)
