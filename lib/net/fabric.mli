(** The datacenter fabric: NIC ports plus a cut-through switch.

    Endpoints attach a port with a link rate and a receive handler. A sent
    packet pays, in order: serialization on the sender's link, the fabric
    latency (propagation + switching), and serialization on the receiver's
    link — so both the sender's TX bandwidth and the receiver's RX bandwidth
    are modelled as the contended resources the paper's bottleneck analysis
    (§2.1.2) is about.

    Sending to a {!Addr.Group} delivers a copy to every member except the
    sender, paying the sender's TX serialization only once: the switch
    replicates, exactly like commodity IP multicast (§3.2). *)

open Hovercraft_sim

type 'a packet = {
  src : Addr.t;
  dst : Addr.t;  (** As addressed by the sender; a group for multicast. *)
  bytes : int;  (** Application payload bytes (headers are added below). *)
  payload : 'a;
  sent_at : Timebase.t;
}

type 'a t
type 'a port

val create : Engine.t -> ?latency:Timebase.t -> ?fault_seed:int -> unit -> 'a t
(** [latency] is the one-way fabric traversal time (default 1 µs).
    [fault_seed] seeds the dedicated fault-injection RNG (probabilistic
    link drops); it is only consumed when a lossy fault is installed, so
    fault-free simulations are unaffected by it. *)

val attach :
  'a t -> addr:Addr.t -> rate_gbps:float -> handler:('a packet -> unit) -> 'a port
(** Attach an endpoint. [handler] fires when the last bit of a packet has
    been clocked off the receiver's link. Re-attaching an address replaces
    the previous port. *)

val join : 'a t -> group:int -> Addr.t -> unit
(** Add a member to a multicast group (idempotent). *)

val leave : 'a t -> group:int -> Addr.t -> unit

val send : 'a t -> 'a port -> dst:Addr.t -> bytes:int -> 'a -> unit
(** Transmit a packet. Unknown unicast destinations are silently dropped
    (counted on the sender), like a real fabric. *)

val set_down : 'a port -> bool -> unit
(** When down, deliveries to this port are discarded (link unplugged). *)

(** {1 Fault injection}

    Chaos experiments impair the fabric at run time. All impairments are
    evaluated per delivery (so a multicast can lose some copies and keep
    others) and are fully deterministic given [fault_seed] and the
    delivery order. *)

val set_link_fault :
  'a t -> src:Addr.t -> dst:Addr.t -> ?drop:float -> ?delay:Timebase.t -> unit -> unit
(** Impair the directed link [src -> dst]: each delivery is dropped with
    probability [drop] (default 0) and otherwise delayed by an extra
    [delay] (default 0) on top of the fabric latency. Setting both to
    zero clears the fault. Raises [Invalid_argument] for [drop] outside
    [0, 1] or a negative [delay]. *)

val clear_link_fault : 'a t -> src:Addr.t -> dst:Addr.t -> unit
val clear_link_faults : 'a t -> unit

val partition : 'a t -> Addr.t list list -> unit
(** Split the fabric into islands: two endpoints that are both named (in
    distinct islands) cannot exchange packets; endpoints not named by the
    partition (typically clients and middleboxes) still reach everyone.
    Replaces any previous partition. *)

val heal : 'a t -> unit
(** Remove the partition. Link faults installed with
    {!set_link_fault} are unaffected. *)

val partitioned : 'a t -> bool

val reachable : 'a t -> Addr.t -> Addr.t -> bool
(** Whether the current partition lets [a] send to [b]. *)

val injected_drops : 'a t -> int
(** Deliveries lost to probabilistic link faults. *)

val partition_drops : 'a t -> int
(** Deliveries suppressed because the endpoints were partitioned. *)

(** Per-port counters, all cumulative. *)

val tx_packets : 'a port -> int
val tx_wire_bytes : 'a port -> int
val rx_packets : 'a port -> int
val rx_wire_bytes : 'a port -> int
val dropped : 'a port -> int
(** Packets discarded because the destination was down or unknown
    (attributed to the sending port for unknown destinations and to the
    receiving port when it is down). *)

val tx_backlog_ns : 'a port -> now:Timebase.t -> Timebase.t
(** Serialization backlog on the TX side: how far beyond [now] the link is
    already booked — the instantaneous queue depth in time units. *)

val rx_backlog_ns : 'a port -> now:Timebase.t -> Timebase.t

val ports : 'a t -> (Addr.t * 'a port) list
(** All attached ports, sorted by address (deterministic roll-ups). *)

val snapshot : 'a t -> Hovercraft_obs.Json.t
(** Per-link counters and queue depths for every port, keyed by address
    string. *)
