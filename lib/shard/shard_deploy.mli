(** Multi-Raft sharding: S independent HovercRaft groups co-located on
    the same simulated hosts, partitioning the key space by a versioned
    {!Shard_map}, with live slot migration between groups.

    Each group is a full {!Hovercraft_cluster.Deploy} (own fabric, own
    middlebox/aggregator instances) sharing ONE event engine — a single
    simulated timeline. Co-location budget: every group runs on a 1/S
    slice of the per-host NIC rate and of the switch port rate, while
    each group instance keeps its own CPU — the multi-core headroom that
    makes sharding pay. Election seeds are staggered per group (group 0
    keeps the caller's seed) and group g bootstraps node [g mod n], so
    initial leaders spread across hosts.

    Migration reuses the PR-4 snapshot machinery for its bulk transfer
    and rides the target's LOG for installation (an {!Hovercraft_apps.Op}
    [Merge] carrying the sub-range image plus the source's completion
    records), so exactly-once answers survive the handoff. Single-shard
    operations only; cross-shard transactions are out of scope
    (DESIGN.md, Sharding). *)

open Hovercraft_sim
open Hovercraft_core
module Deploy = Hovercraft_cluster.Deploy

type config = {
  shards : int;  (** Groups co-located on the hosts, dormant ones included. *)
  active : int;  (** Groups initially owning slots (the rest are split targets). *)
  slots : int;
  partitioner : Shard_map.partitioner;
  flow_cap : int option;
  fabric_latency : Timebase.t;
  switch_gbps : float;  (** Per-host middlebox/aggregator budget, pre-split. *)
  migration_gbps : float;  (** Background QoS rate of migration transfers. *)
  params : Hnode.params;  (** Per-group node parameters, pre-split budget. *)
}

val config :
  ?active:int ->
  ?slots:int ->
  ?partitioner:Shard_map.partitioner ->
  ?flow_cap:int ->
  ?fabric_latency:Timebase.t ->
  ?switch_gbps:float ->
  ?migration_gbps:float ->
  shards:int ->
  Hnode.params ->
  config
(** Defaults: all shards active, 64 slots, hash partitioning, no flow
    control, 1 us latency, 100 Gbps switch budget, 40 Gbps migration
    class. Validates like {!Deploy.config}. *)

type t

val create : config -> t
(** Stand up all S groups on one engine, install every node's shard
    filter, and attach the per-group migration driver endpoints. *)

val engine : t -> Engine.t
val map : t -> Shard_map.t

val groups : t -> Deploy.t array
(** The S group deployments, index = group id. Per-group fault injection
    (kill, partition, restart) goes through these directly. *)

val shards : t -> int
val migrating : t -> bool
val migrations : t -> int

val notes : t -> (Timebase.t * string) list
(** Migration/driver log: (simulated time, message), oldest first. *)

val client_target : t -> key:string -> int * Hovercraft_net.Addr.t
(** Where a request for [key] goes under the current map: the owning
    group's index and that group's {!Deploy.client_target}. *)

val record_access : t -> key:string -> unit
(** Tally one client routing decision against [key]'s slot in the heat
    map ({!Shard_loadgen} calls this per keyed transmission). *)

val slot_heat : t -> int array
(** Cumulative per-slot access tallies (index = slot), as a fresh copy.
    Samplers diff successive snapshots for per-interval heat, so
    multiple consumers can watch the same deployment. *)

val preload : t -> Hovercraft_apps.Op.t list -> unit
(** Preload by ownership: each keyed op lands on every replica of the
    group owning its key; keyless ops land on every group. *)

val refresh_filters : t -> unit
(** Re-install every node's shard filter. Required after growing a group
    ({!Deploy.add_node}): a node born after {!create} has no filter until
    the next map flip would install one. *)

val quiesce : t -> ?extra:Timebase.t -> unit -> unit
val consistent : t -> bool
val total_pending_recoveries : t -> int

val move_shard :
  t -> ?on_done:(unit -> unit) -> slots:int list -> target:int -> unit -> unit
(** Start a live migration of [slots] (all owned by one group) to
    [target]: fence, cut, extract, paced chunk transfer, [Merge] into the
    target's log, map flip, [Prune] at the source. Runs on the engine;
    [on_done] fires after the prune commits. One migration at a time;
    raises [Invalid_argument] while one is running, on an empty or
    mixed-ownership slot list, or if [target] already owns the slots. *)

val split_shard :
  t -> ?on_done:(unit -> unit) -> source:int -> target:int -> unit -> unit
(** {!Shard_map.split_plan} + {!move_shard}: move the upper half of
    [source]'s slots to [target] (typically a dormant group). *)
