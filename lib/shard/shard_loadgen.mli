(** Shard-routing load generator.

    The sharded sibling of {!Hovercraft_cluster.Loadgen}: the same
    open-loop Poisson arrivals and client-side latency measurement, but
    every request is routed by its key through the live {!Shard_map} to
    the owning group. A [Wrong_shard] NACK (stale route, or a migration
    fence) keeps the request outstanding — latency then includes the
    reroute penalty — and retransmits the SAME request id to the
    refreshed owner after an exponential backoff, so completion records
    keep the landing exactly-once. *)

open Hovercraft_sim

type t

val create :
  Shard_deploy.t ->
  clients:int ->
  rate_rps:float ->
  ?profile:Hovercraft_cluster.Traffic.profile ->
  workload:(Rng.t -> Hovercraft_apps.Op.t) ->
  ?retry:Timebase.t * int ->
  ?on_reply:
    (rid:Hovercraft_r2p2.R2p2.req_id ->
    op:Hovercraft_apps.Op.t ->
    sent_at:Timebase.t ->
    latency:Timebase.t ->
    unit) ->
  ?on_nack:(at:Timebase.t -> unit) ->
  seed:int ->
  unit ->
  t
(** Attach [clients] endpoints; each endpoint has one request-id source
    (ids stay globally unique across groups — the cross-map exactly-once
    checker depends on that) and a port on every group's fabric.
    [profile]/[retry]/[on_reply]/[on_nack] as in
    {!Hovercraft_cluster.Loadgen.create} (constant-rate runs stay
    byte-identical without a profile). Every keyed transmission also
    tallies its slot in the deployment's heat map
    ({!Shard_deploy.slot_heat}). *)

val run :
  t ->
  warmup:Timebase.t ->
  duration:Timebase.t ->
  ?drain:Timebase.t ->
  unit ->
  Hovercraft_cluster.Loadgen.report

val stats : t -> Stats.t

val latency_window : t -> Hovercraft_obs.Metrics.windowed
(** Sliding-window view of measured completion latency, all groups
    together. The consumer owning the tick cadence rotates it. *)

val group_latency_window : t -> int -> Hovercraft_obs.Metrics.windowed
(** Per-group sliding-window latency, attributed to the group owning the
    op's key at reply time — the SLI a per-group control loop watches.
    Raises [Invalid_argument] on an unknown group. *)

val retried : t -> int
(** Timeout retransmissions (same rid, re-routed per attempt). *)

val rerouted : t -> int
(** [Wrong_shard]-triggered retransmissions — how often clients chased a
    moving or fenced slot. *)

val metrics : t -> Hovercraft_obs.Metrics.t

val backoff_entries : t -> int
(** Live per-rid reroute-backoff entries. Bounded by the in-flight window
    during a run and zero after {!run} returns (leak regression guard:
    rids that exhaust their retries or die with the run must not leave
    entries behind). *)
