module Kvstore = Hovercraft_apps.Kvstore
module Op = Hovercraft_apps.Op

type partitioner = Hash | Range of string array

type t = {
  nslots : int;
  groups : int;
  partitioner : partitioner;
  owner : int array; (* slot -> owning group *)
  mutable version : int;
}

let create ?(partitioner = Hash) ?active ~slots ~groups () =
  if slots < 1 then invalid_arg "Shard_map.create: slots must be >= 1";
  if groups < 1 then invalid_arg "Shard_map.create: groups must be >= 1";
  let active = Option.value active ~default:groups in
  if active < 1 || active > groups then
    invalid_arg "Shard_map.create: active outside [1, groups]";
  if slots < active then
    invalid_arg "Shard_map.create: need at least one slot per active group";
  (match partitioner with
  | Hash -> ()
  | Range cuts ->
      if Array.length cuts <> slots - 1 then
        invalid_arg
          "Shard_map.create: a range partitioner needs exactly slots-1 split \
           points";
      Array.iteri
        (fun i c ->
          if i > 0 && String.compare cuts.(i - 1) c > 0 then
            invalid_arg "Shard_map.create: split points must be sorted")
        cuts);
  {
    nslots = slots;
    groups;
    partitioner;
    (* Contiguous equal blocks over the active groups; dormant groups
       (active < groups) own nothing until a split moves slots to them. *)
    owner = Array.init slots (fun s -> s * active / slots);
    version = 1;
  }

let version t = t.version
let nslots t = t.nslots
let groups t = t.groups

let slot_of_key t key =
  match t.partitioner with
  | Hash -> Kvstore.slot_of_key ~slots:t.nslots key
  | Range cuts ->
      (* Slot = number of split points <= key (binary search). *)
      let lo = ref 0 and hi = ref (Array.length cuts) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if String.compare cuts.(mid) key <= 0 then lo := mid + 1 else hi := mid
      done;
      !lo

let owner_of_slot t s =
  if s < 0 || s >= t.nslots then invalid_arg "Shard_map.owner_of_slot";
  t.owner.(s)

let owner_of_key t key = t.owner.(slot_of_key t key)

let slots_of_group t g =
  List.filter (fun s -> t.owner.(s) = g) (List.init t.nslots Fun.id)

let active_groups t = List.sort_uniq compare (Array.to_list t.owner)
let owns_key t ~group key = owner_of_key t key = group

let owns_op t ~group op =
  match Op.key op with None -> true | Some k -> owns_key t ~group k

let assign t ~slots ~target =
  if target < 0 || target >= t.groups then
    invalid_arg "Shard_map.assign: unknown target group";
  if slots = [] then invalid_arg "Shard_map.assign: empty slot list";
  List.iter
    (fun s ->
      if s < 0 || s >= t.nslots then invalid_arg "Shard_map.assign: bad slot";
      t.owner.(s) <- target)
    slots;
  t.version <- t.version + 1

(* The upper half of the source's slots (floor(n/2) of them), preserving
   range contiguity under block assignment. Requires >= 2 slots to split. *)
let split_plan t ~source =
  let mine = slots_of_group t source in
  let len = List.length mine in
  if len < 2 then
    invalid_arg "Shard_map.split_plan: source owns fewer than two slots";
  List.filteri (fun i _ -> i >= (len + 1) / 2) mine
