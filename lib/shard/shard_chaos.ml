open Hovercraft_sim
open Hovercraft_core
open Hovercraft_r2p2
module Fabric = Hovercraft_net.Fabric
module Op = Hovercraft_apps.Op
module Rnode = Hovercraft_raft.Node
module Rlog = Hovercraft_raft.Log
module Rtypes = Hovercraft_raft.Types
module Deploy = Hovercraft_cluster.Deploy
module Loadgen = Hovercraft_cluster.Loadgen
module Chaos = Hovercraft_cluster.Chaos

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type migration =
  | Split of { source : int; target : int }
  | Move of { slots : int list; target : int }

let pp_migration ppf = function
  | Split { source; target } ->
      Format.fprintf ppf "split shard%d -> shard%d" source target
  | Move { slots; target } ->
      Format.fprintf ppf "move %d slot(s) -> shard%d" (List.length slots)
        target

type outcome = {
  report : Loadgen.report;
  events : (float * string) list;
  violations : string list;
  exactly_once_ok : bool;
  committed_preserved : bool;
  caught_up : bool;
  consistent : bool;
  retried : int;
  rerouted : int;
  migrations : int;
  map_version : int;
  pending_recoveries : int;
}

(* ------------------------------------------------------------------ *)
(* Cross-map history checker                                           *)

(* Committed, non-internal entries of the group's best live replica, in
   log order. Chaos-style runs pin log_retain high so nothing compacts
   and the scan covers the whole history. *)
let reference_cmds (d : Deploy.t) =
  let reference =
    List.fold_left
      (fun best n ->
        match best with
        | None -> Some n
        | Some b ->
            if Hnode.commit_index n > Hnode.commit_index b then Some n else best)
      None (Deploy.live_nodes d)
  in
  match reference with
  | None -> []
  | Some node ->
      let hi = min (Hnode.commit_index node) (Hnode.log_length node) in
      let acc = ref [] in
      Hnode.iter_log node ~lo:(Hnode.log_first_index node) ~hi
        (fun _ _ c ->
          if not c.Protocol.meta.Protocol.internal then acc := c :: !acc);
      List.rev !acc

(* The map-level contract: every write a client saw answered landed in
   EXACTLY one group's committed history — the fence kept a migrating
   slot from executing on both sides, and the flip lost nothing. A rid
   carried by a Merge's completion records counts as already executed at
   the source, so a later ordering of it in the target group is a
   suppressed duplicate, not a second execution. *)
let cross_map_check groups ~completed_writes =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let exec_groups = Rid_tbl.create 4096 in
  let merge_covered = Rid_tbl.create 256 in
  Array.iteri
    (fun g d ->
      let seen = Rid_tbl.create 4096 in
      List.iter
        (fun (c : Protocol.cmd) ->
          (match c.Protocol.body with
          | Op.Merge { completions; _ } ->
              List.iter
                (fun (r : Op.completion) ->
                  Rid_tbl.replace seen r.Op.c_rid ();
                  Rid_tbl.replace merge_covered r.Op.c_rid ())
                completions
          | _ -> ());
          let m = c.Protocol.meta in
          if not (Rid_tbl.mem seen m.Protocol.rid) then begin
            Rid_tbl.replace seen m.Protocol.rid ();
            if not m.Protocol.read_only then
              Rid_tbl.replace exec_groups m.Protocol.rid
                (g
                ::
                (match Rid_tbl.find_opt exec_groups m.Protocol.rid with
                | Some gs -> gs
                | None -> []))
          end)
        (reference_cmds d))
    groups;
  let exactly_once_ok = ref true in
  let committed_preserved = ref true in
  List.iter
    (fun rid ->
      match Rid_tbl.find_opt exec_groups rid with
      | Some (_ :: _ :: _ as gs) ->
          exactly_once_ok := false;
          bad "write %s executed in %d groups (%s)"
            (Format.asprintf "%a" R2p2.pp_req_id rid)
            (List.length gs)
            (String.concat ","
               (List.rev_map string_of_int gs |> List.map (fun s -> "g" ^ s)))
      | Some [ _ ] -> ()
      | Some [] | None ->
          if not (Rid_tbl.mem merge_covered rid) then begin
            committed_preserved := false;
            bad "client-completed write %s missing from every group's log"
              (Format.asprintf "%a" R2p2.pp_req_id rid)
          end)
    completed_writes;
  (List.rev !violations, !exactly_once_ok, !committed_preserved)

(* ------------------------------------------------------------------ *)
(* Driving a run                                                       *)

let delegate_single ?params ~n ~rate_rps ~flow_cap ~duration ~drain ~reconfig
    ?schedule ~workload ~seed () =
  let o =
    Chaos.run ?params ~n ~rate_rps ~flow_cap ~duration ~drain ~reconfig
      ?schedule ~workload ~seed ()
  in
  {
    report = o.Chaos.report;
    events = o.Chaos.events;
    violations = o.Chaos.violations;
    exactly_once_ok = o.Chaos.exactly_once_ok;
    committed_preserved = o.Chaos.committed_preserved;
    caught_up = o.Chaos.caught_up;
    consistent = o.Chaos.consistent;
    retried = o.Chaos.retried;
    rerouted = 0;
    migrations = 0;
    map_version = 1;
    pending_recoveries = o.Chaos.pending_recoveries;
  }

let run ?params ?(n = 5) ?(shards = 1) ?active ?(rate_rps = 120_000.)
    ?(flow_cap = 1000) ?(duration = Timebase.s 2) ?(drain = Timebase.ms 100)
    ?(reconfig = false) ?schedule ?(migrations = []) ?(preload = []) ~workload
    ~seed () =
  if shards < 1 then invalid_arg "Shard_chaos.run: shards must be >= 1";
  if shards = 1 then begin
    (* Strict delegation: a one-shard chaos run IS the single-group run —
       same deployment, same schedule generator, same RNG draws — so
       every historical seed replays byte for byte. *)
    if migrations <> [] then
      invalid_arg "Shard_chaos.run: migrations need at least two shards";
    if preload <> [] then
      invalid_arg "Shard_chaos.run: preload needs at least two shards";
    delegate_single ?params ~n ~rate_rps ~flow_cap ~duration ~drain ~reconfig
      ?schedule ~workload ~seed ()
  end
  else begin
    let params =
      match params with
      | Some p -> p
      | None -> Hnode.params ~mode:Hnode.Hover_pp ~n ()
    in
    let n = params.Hnode.n in
    (* Same widening as Chaos.run: bodies stay refetchable past any crash,
       no log prefix compacts away (the checkers scan full histories), and
       flow control is forced on because every group gets a middlebox. *)
    let params =
      {
        params with
        Hnode.timing =
          {
            params.Hnode.timing with
            Hnode.gc_ordered = (2 * duration) + drain + Timebase.s 1;
          };
        features =
          {
            params.Hnode.features with
            Hnode.log_retain = max_int / 2;
            flow_control = true;
          };
      }
    in
    let sd =
      Shard_deploy.create
        (Shard_deploy.config ?active ~flow_cap ~shards params)
    in
    let groups = Shard_deploy.groups sd in
    if preload <> [] then Shard_deploy.preload sd preload;
    let engine = Shard_deploy.engine sd in
    let t0 = Engine.now engine in
    let completed_writes = ref [] in
    let gen =
      Shard_loadgen.create sd ~clients:8 ~rate_rps ~workload
        ~retry:(Timebase.ms 50, 8)
        ~on_reply:(fun ~rid ~op ~sent_at:_ ~latency:_ ->
          if not (Op.read_only op) then
            completed_writes := rid :: !completed_writes)
        ~seed ()
    in
    let schedule =
      match schedule with
      | Some s -> s
      | None -> Chaos.random_schedule ~reconfig ~shards ~n ~duration ~seed ()
    in
    let timelines = Array.init shards (fun _ -> ref []) in
    let extra = ref [] in
    let note fmt =
      Format.kasprintf
        (fun s -> extra := (Timebase.to_s_f (Engine.now engine - t0), s) :: !extra)
        fmt
    in
    List.iter
      (fun { Chaos.at; event } ->
        Engine.after engine at (fun () ->
            match event with
            | Chaos.Shard (g, e) when g >= 0 && g < shards ->
                Chaos.apply_event groups.(g) ~t0 ~timeline:timelines.(g) e
            | Chaos.Shard (g, e) ->
                note "shard%d event skipped (no such group): %a" g
                  Chaos.pp_event e
            | e -> Chaos.apply_event groups.(0) ~t0 ~timeline:timelines.(0) e))
      schedule;
    List.iter
      (fun (at, m) ->
        Engine.after engine at (fun () ->
            if Shard_deploy.migrating sd then
              note "%a skipped (another migration in flight)" pp_migration m
            else
              try
                note "starting %a" pp_migration m;
                let on_done () = note "finished %a" pp_migration m in
                begin
                  match m with
                  | Split { source; target } ->
                      Shard_deploy.split_shard sd ~on_done ~source ~target ()
                  | Move { slots; target } ->
                      Shard_deploy.move_shard sd ~on_done ~slots ~target ()
                end
              with Invalid_argument msg ->
                note "%a rejected: %s" pp_migration m msg))
      migrations;
    let report = Shard_loadgen.run gen ~warmup:0 ~duration ~drain () in
    (* Epilogue: heal and restart every group, then converge — including
       letting an in-flight migration finish so the map is stable before
       the history checkers look. *)
    Array.iteri
      (fun g d ->
        if Fabric.partitioned d.Deploy.fabric then
          Chaos.apply_event d ~t0 ~timeline:timelines.(g) Chaos.Heal;
        Array.iteri
          (fun i node ->
            if (not (Hnode.alive node)) && not (Deploy.is_removed d i) then
              Chaos.apply_event d ~t0 ~timeline:timelines.(g) (Chaos.Restart i))
          d.Deploy.nodes)
      groups;
    let converged () =
      (not (Shard_deploy.migrating sd))
      && Shard_deploy.total_pending_recoveries sd = 0
      && Array.for_all
           (fun d ->
             let live = Deploy.live_nodes d in
             let max_commit =
               List.fold_left
                 (fun acc nd -> max acc (Hnode.commit_index nd))
                 0 live
             in
             List.for_all (fun nd -> Hnode.applied_index nd >= max_commit) live)
           groups
    in
    let rec settle tries =
      Shard_deploy.quiesce sd ~extra:(Timebase.ms 200) ();
      if (not (converged ())) && tries > 0 then settle (tries - 1)
    in
    settle 50;
    (* Per-group invariants (prefix agreement, per-replica exactly-once,
       catch-up), then the map-level exactly-once / nothing-lost check
       over client-completed writes. *)
    let violations = ref [] in
    let exactly_once_ok = ref true in
    let caught_up = ref true in
    Array.iteri
      (fun g d ->
        let v, eo, _, cu, _ = Chaos.check d ~completed_writes:[] in
        List.iter
          (fun s -> violations := Printf.sprintf "shard%d: %s" g s :: !violations)
          v;
        if not eo then exactly_once_ok := false;
        if not cu then caught_up := false)
      groups;
    let xviol, xeo, preserved =
      cross_map_check groups ~completed_writes:!completed_writes
    in
    violations := List.rev_append (List.rev xviol) !violations;
    if not xeo then exactly_once_ok := false;
    let consistent = Shard_deploy.consistent sd in
    if not consistent then
      violations := "live replica fingerprints diverge" :: !violations;
    let events =
      let tagged =
        List.concat
          (List.mapi
             (fun g tl ->
               List.rev_map
                 (fun (t, s) -> (t, Printf.sprintf "shard%d: %s" g s))
                 !tl)
             (Array.to_list timelines))
      in
      let migration_notes =
        List.map
          (fun (at, s) -> (Timebase.to_s_f (at - t0), s))
          (Shard_deploy.notes sd)
      in
      List.stable_sort
        (fun (a, _) (b, _) -> compare a b)
        (tagged @ List.rev !extra @ migration_notes)
    in
    {
      report;
      events;
      violations = List.rev !violations;
      exactly_once_ok = !exactly_once_ok;
      committed_preserved = preserved;
      caught_up = !caught_up;
      consistent;
      retried = Shard_loadgen.retried gen;
      rerouted = Shard_loadgen.rerouted gen;
      migrations = Shard_deploy.migrations sd;
      map_version = Shard_map.version (Shard_deploy.map sd);
      pending_recoveries = Shard_deploy.total_pending_recoveries sd;
    }
  end
