(** Chaos testing for sharded deployments: per-group fault schedules and
    live migrations under shard-routed load, with a shard-aware history
    checker.

    Per group, the {!Hovercraft_cluster.Chaos} invariants hold (prefix
    agreement, per-replica exactly-once, catch-up). Across the map, every
    write a client saw answered must appear in EXACTLY one group's
    committed history — a migration's dual-ownership fence may delay a
    request, but can neither double-execute it (both sides of a move) nor
    lose it (the flip dropping an acknowledged write). A rid carried by a
    [Merge]'s completion records counts as executed at the source. *)

open Hovercraft_sim
open Hovercraft_core

type migration =
  | Split of { source : int; target : int }
      (** {!Shard_deploy.split_shard}: move the upper half of [source]'s
          slots to [target]. *)
  | Move of { slots : int list; target : int }
      (** {!Shard_deploy.move_shard} of an explicit slot list. *)

val pp_migration : Format.formatter -> migration -> unit

val cross_map_check :
  Hovercraft_cluster.Deploy.t array ->
  completed_writes:Hovercraft_r2p2.R2p2.req_id list ->
  string list * bool * bool
(** The map-level history check on its own, for runners (the scenario
    suite) that drive their own deployments: given the quiesced groups
    and the client-observed completed writes, returns
    [(violations, exactly_once_ok, committed_preserved)] — no write in
    more than one group's committed history, none lost. Scan the groups
    only after convergence (heal, restart, settle), with [log_retain]
    pinned high so full histories are available. *)

type outcome = {
  report : Hovercraft_cluster.Loadgen.report;
  events : (float * string) list;
      (** Faults applied (["shardN: ..."]-prefixed), migration phases, and
          skipped entries, (seconds from start, description), time-sorted. *)
  violations : string list;  (** Empty on a correct run. *)
  exactly_once_ok : bool;
      (** Per-replica counts AND no write executed in more than one
          group. *)
  committed_preserved : bool;
      (** Every client-completed write is in some group's committed log
          (or vouched for by migrated completion records). *)
  caught_up : bool;
  consistent : bool;
  retried : int;  (** Timeout retransmissions (same rid). *)
  rerouted : int;  (** [Wrong_shard]-triggered re-sends. *)
  migrations : int;  (** Completed migrations. *)
  map_version : int;  (** Final shard-map version (1 = never moved). *)
  pending_recoveries : int;
}

val run :
  ?params:Hnode.params ->
  ?n:int ->
  ?shards:int ->
  ?active:int ->
  ?rate_rps:float ->
  ?flow_cap:int ->
  ?duration:Timebase.t ->
  ?drain:Timebase.t ->
  ?reconfig:bool ->
  ?schedule:Hovercraft_cluster.Chaos.step list ->
  ?migrations:(Timebase.t * migration) list ->
  ?preload:Hovercraft_apps.Op.t list ->
  workload:(Rng.t -> Hovercraft_apps.Op.t) ->
  seed:int ->
  unit ->
  outcome
(** Drive [schedule] (default {!Hovercraft_cluster.Chaos.random_schedule}
    with [shards]) plus [migrations] (each started at its offset; skipped
    with a note if another is still in flight) against a fresh
    {!Shard_deploy} under shard-routed load with client retries, then
    heal, restart, converge — waiting out any in-flight migration — and
    check.

    [shards = 1] (the default) delegates verbatim to
    {!Hovercraft_cluster.Chaos.run} — same deployment, same schedule
    generator, same RNG draws — so existing seeds replay byte for byte;
    [migrations] and [preload] must be empty there. Raises
    [Invalid_argument] on [shards < 1]. *)
