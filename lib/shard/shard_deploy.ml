open Hovercraft_sim
open Hovercraft_core
open Hovercraft_r2p2
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Wire = Hovercraft_net.Wire
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore
module Snapshot = Hovercraft_raft.Snapshot
module Rnode = Hovercraft_raft.Node
module Rlog = Hovercraft_raft.Log
module Deploy = Hovercraft_cluster.Deploy

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type config = {
  shards : int;
  active : int;
  slots : int;
  partitioner : Shard_map.partitioner;
  flow_cap : int option;
  fabric_latency : Timebase.t;
  switch_gbps : float;
  migration_gbps : float;
  params : Hnode.params;
}

let config ?active ?(slots = 64) ?(partitioner = Shard_map.Hash) ?flow_cap
    ?(fabric_latency = Timebase.us 1) ?(switch_gbps = 100.)
    ?(migration_gbps = 40.) ~shards params =
  if shards < 1 then invalid_arg "Shard_deploy.config: shards must be >= 1";
  let active = Option.value active ~default:shards in
  if active < 1 || active > shards then
    invalid_arg "Shard_deploy.config: active outside [1, shards]";
  if migration_gbps <= 0. then
    invalid_arg "Shard_deploy.config: migration_gbps must be positive";
  Hnode.validate_params params;
  {
    shards;
    active;
    slots;
    partitioner;
    flow_cap;
    fabric_latency;
    switch_gbps;
    migration_gbps;
    params;
  }

type driver = {
  d_port : Protocol.payload Fabric.port;
  d_ids : R2p2.Id_source.t;
  d_pending : (unit -> unit) Rid_tbl.t;
}

type t = {
  engine : Engine.t;
  map : Shard_map.t;
  groups : Deploy.t array;
  cfg : config;
  moving : (int, unit) Hashtbl.t; (* slots under the migration fence *)
  mutable moving_source : int; (* -1 when no migration is running *)
  mutable migrating : bool;
  mutable migrations : int;
  drivers : driver array;
  notes : (Timebase.t * string) list ref;
  heat : int array; (* per-slot client routing tallies, cumulative *)
}

(* Every node's filter is one closure over the LIVE map and fence state:
   flipping the map (or raising/dropping the fence) changes admission on
   every group at once without touching the nodes again. The version is a
   point-in-time stamp for Wrong_shard NACKs, refreshed after each flip. *)
let group_filter t g op =
  match Op.key op with
  | None -> true
  | Some k ->
      let slot = Shard_map.slot_of_key t.map k in
      Shard_map.owner_of_slot t.map slot = g
      && not (g = t.moving_source && Hashtbl.mem t.moving slot)

let install_filters t =
  let version = Shard_map.version t.map in
  Array.iteri
    (fun g d ->
      Array.iter
        (fun node -> Hnode.set_shard_filter node ~version (group_filter t g))
        d.Deploy.nodes)
    t.groups

let note t fmt =
  Format.kasprintf
    (fun s -> t.notes := (Engine.now t.engine, s) :: !(t.notes))
    fmt

(* The per-group seed stagger also staggers election timers, so groups do
   not elect (or re-elect after a correlated fault) in lockstep. g = 0
   keeps the caller's seed untouched. *)
let group_seed base g = base + (g * 1_000_003)

(* Control-plane client: one endpoint per group fabric. Merge / Prune go
   through the group's ordinary client path (middlebox or multicast
   group) and are retried with the SAME rid until answered — the group's
   completion records make the retries exactly-once. *)
let driver_addr = Addr.Client 9_999

let create (cfg : config) =
  let engine = Engine.create () in
  let map =
    Shard_map.create ~partitioner:cfg.partitioner ~active:cfg.active
      ~slots:cfg.slots ~groups:cfg.shards ()
  in
  let scale = float_of_int cfg.shards in
  let groups =
    Array.init cfg.shards (fun g ->
        let p = cfg.params in
        let p =
          {
            p with
            Hnode.seed = group_seed p.Hnode.seed g;
            (* Co-location budget: the S group instances share each host's
               NIC and the middlebox/aggregator switch ports, so every
               group runs on a 1/S slice of both. CPU stays per instance —
               each group's threads get their own cores, the multi-core
               headroom resource sharding exists to exploit. *)
            cost =
              {
                p.Hnode.cost with
                Hnode.link_gbps = p.Hnode.cost.Hnode.link_gbps /. scale;
              };
          }
        in
        Deploy.create
          (Deploy.config ~fabric_latency:cfg.fabric_latency
             ?flow_cap:cfg.flow_cap
             ~switch_gbps:(cfg.switch_gbps /. scale)
             ~engine
             ~bootstrap:(g mod p.Hnode.n)
             p))
  in
  let drivers =
    Array.mapi
      (fun g (d : Deploy.t) ->
        let d_pending = Rid_tbl.create 16 in
        let d_port =
          Fabric.attach d.Deploy.fabric ~addr:driver_addr ~rate_gbps:10.
            ~handler:(fun pkt ->
              match pkt.Fabric.payload with
              | Protocol.Response { rid } -> (
                  match Rid_tbl.find_opt d_pending rid with
                  | Some k ->
                      Rid_tbl.remove d_pending rid;
                      k ()
                  | None -> ())
              | _ -> ())
        in
        {
          d_port;
          d_ids =
            R2p2.Id_source.create ~src_addr:driver_addr ~src_port:(9_000 + g);
          d_pending;
        })
      groups
  in
  let t =
    {
      engine;
      map;
      groups;
      cfg;
      moving = Hashtbl.create 16;
      moving_source = -1;
      migrating = false;
      migrations = 0;
      drivers;
      notes = ref [];
      heat = Array.make cfg.slots 0;
    }
  in
  install_filters t;
  t

let engine t = t.engine
let map t = t.map

(* Nodes created after the deployment (Deploy.add_node replacements) are
   born without a shard filter; re-installing closes that gap. *)
let refresh_filters t = install_filters t
let groups t = t.groups
let shards t = t.cfg.shards
let migrating t = t.migrating
let migrations t = t.migrations
let notes t = List.rev !(t.notes)

let client_target t ~key =
  let g = Shard_map.owner_of_key t.map key in
  (g, Deploy.client_target t.groups.(g))

(* Key-slot heat: one tally per client routing decision, charged to the
   key's slot. Cumulative — samplers (the autoscaling controller) diff
   successive snapshots, so several consumers can read concurrently
   without stealing each other's deltas. *)
let record_access t ~key =
  let s = Shard_map.slot_of_key t.map key in
  t.heat.(s) <- t.heat.(s) + 1

let slot_heat t = Array.copy t.heat

(* Preload by ownership: each record lands only on the group that owns its
   key (a later migration ships moved sub-ranges explicitly), keyless ops
   on every group. Identical across a group's replicas, as preload
   requires. *)
let preload t ops =
  let per_group = Array.make t.cfg.shards [] in
  List.iter
    (fun op ->
      match Op.key op with
      | Some k ->
          let g = Shard_map.owner_of_key t.map k in
          per_group.(g) <- op :: per_group.(g)
      | None ->
          Array.iteri (fun g l -> per_group.(g) <- op :: l) per_group)
    (List.rev ops);
  Array.iteri
    (fun g d ->
      match per_group.(g) with
      | [] -> ()
      | l -> Array.iter (fun node -> Hnode.preload node l) d.Deploy.nodes)
    t.groups

let quiesce t ?(extra = Timebase.ms 20) () =
  Engine.run ~until:(Engine.now t.engine + extra) t.engine

let consistent t = Array.for_all Deploy.consistent t.groups

let total_pending_recoveries t =
  Array.fold_left
    (fun acc d -> acc + Deploy.total_pending_recoveries d)
    0 t.groups

let driver_propose t ~group op ~on_done =
  let d = t.drivers.(group) in
  let rid = R2p2.Id_source.next d.d_ids in
  Rid_tbl.replace d.d_pending rid on_done;
  let send () =
    let payload = Protocol.Request { rid; policy = R2p2.Replicated_req; op } in
    let bytes = Protocol.payload_bytes ~with_bodies:false payload in
    Fabric.send t.groups.(group).Deploy.fabric d.d_port
      ~dst:(Deploy.client_target t.groups.(group))
      ~bytes payload
  in
  (* A Merge carries the moved range's completion records on the wire —
     megabytes on a large cut. On a thin NIC slice one copy can take
     longer to serialize than a fixed retry interval, and a fixed-rate
     retransmit then enqueues copies faster than the link drains them:
     the target group's ingress collapses under the driver's own
     duplicates and the response never comes. Scale the first retry to
     the payload's serialization time on the group's NIC slice (even one
     duplicate of a megabyte op queues ahead of the commit traffic on
     every replica's ingress), and back off exponentially from there so
     the gap also outgrows ordering and apply time. *)
  let slice_gbps =
    t.cfg.params.Hnode.cost.Hnode.link_gbps /. float_of_int t.cfg.shards
  in
  let first_bytes =
    Protocol.payload_bytes ~with_bodies:false
      (Protocol.Request { rid; policy = R2p2.Replicated_req; op })
  in
  let base =
    max (Timebase.ms 10)
      (4 * Wire.serialize_ns ~rate_gbps:slice_gbps ~bytes:first_bytes)
  in
  let rec arm retries =
    let backoff = min (base * (1 lsl min retries 7)) (Timebase.s 2) in
    Engine.after t.engine backoff (fun () ->
        if Rid_tbl.mem d.d_pending rid then begin
          send ();
          arm (retries + 1)
        end)
  in
  send ();
  arm 0

(* --- live migration -------------------------------------------------- *)

(* Migration of a slot set from its owning group to [target]:

   A. {e Fence}: the moved slots go dark on the source — fresh requests
      get Wrong_shard, but retransmissions of completed requests are
      still answered from the completion record (the dual-ownership
      window during which exactly-once is carried by records alone).
   B. {e Cut}: wait until the source leader has applied its whole log —
      every pre-fence request on the moved range has then executed, so
      the extracted image is final.
   C. {e Extract}: deep-copy the sub-range image off the leader's applied
      state, plus all its completion records (records do not name keys,
      so the full set ships — a safe over-approximation: a record can
      only ever suppress a retransmission of its own rid).
   D. {e Transfer}: pace the image over the wire in snapshot chunks
      (PR 4's chunk arithmetic) at the migration QoS rate. Background
      traffic class: latency is modeled, fabric interference is not.
   E. {e Install}: propose [Op.Merge] through the target's client path —
      the image and records enter the target's LOG, so they are ordered
      before any post-flip client command and replicate to every target
      node (and any node that joins later).
   F. {e Flip}: reassign the slots in the map (version bump), drop the
      fence, refresh every node's advertised filter version. Clients
      re-route on the next Wrong_shard.
   G. {e Prune}: propose [Op.Prune] to the source, deleting the moved
      sub-range from its stores (completion records survive — they are
      what answers stale retransmissions for good). *)

let poll = Timebase.us 200

let move_shard t ?(on_done = fun () -> ()) ~slots ~target () =
  if t.migrating then
    invalid_arg "Shard_deploy.move_shard: a migration is already running";
  if slots = [] then invalid_arg "Shard_deploy.move_shard: empty slot list";
  if target < 0 || target >= t.cfg.shards then
    invalid_arg "Shard_deploy.move_shard: unknown target group";
  let source =
    match
      List.sort_uniq compare
        (List.map (fun s -> Shard_map.owner_of_slot t.map s) slots)
    with
    | [ s ] -> s
    | _ ->
        invalid_arg
          "Shard_deploy.move_shard: slots must share one owning group"
  in
  if source = target then
    invalid_arg "Shard_deploy.move_shard: target already owns these slots";
  t.migrating <- true;
  t.migrations <- t.migrations + 1;
  t.moving_source <- source;
  List.iter (fun s -> Hashtbl.replace t.moving s ()) slots;
  note t "migration %d: fenced %d slot(s) on group%d -> group%d"
    t.migrations (List.length slots) source target;
  let src = t.groups.(source) in
  let moved_slot = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace moved_slot s ()) slots;
  let keep k = Hashtbl.mem moved_slot (Shard_map.slot_of_key t.map k) in
  let last_index node =
    if Hnode.mode node = Hnode.Unreplicated then Hnode.applied_index node
    else Hnode.log_length node
  in
  (* The cut is the source leader's last log index, captured post-fence:
     everything at or below it may still execute on the moved range;
     nothing above it can (the fence rejects fresh ordering). A leader
     change re-captures from the new leader — its log bounds everything
     that can ever commit. *)
  let rec wait_cut cut =
    match Deploy.leader src with
    | None -> Engine.after t.engine poll (fun () -> wait_cut None)
    | Some l ->
        let cut =
          match cut with
          | Some (lid, c) when lid = Hnode.id l -> c
          | _ -> last_index l
        in
        if Hnode.applied_index l >= cut then extract l
        else
          Engine.after t.engine poll (fun () ->
              wait_cut (Some (Hnode.id l, cut)))
  and extract l =
    let image = Hnode.extract_range l ~keep in
    let completions =
      List.map
        (fun (rid, result, at) ->
          { Op.c_rid = rid; c_result = result; c_at = at })
        (Hnode.completion_records l)
    in
    let size =
      Kvstore.image_bytes image
      + (Op.completion_wire_bytes * List.length completions)
    in
    note t "migration %d: cut at index %d, %d bytes, %d completion record(s)"
      t.migrations (Hnode.applied_index l) size (List.length completions);
    let meta =
      Snapshot.make ~last_idx:(Hnode.applied_index l) ~last_term:(Hnode.term l)
        ~members:[] ~size ~data:()
    in
    let progress = Snapshot.start meta in
    let rec chunk () =
      if Snapshot.complete progress then propose_merge image completions
      else begin
        let offset = Snapshot.received progress in
        let len =
          Snapshot.chunk_len meta ~chunk_bytes:Wire.snap_chunk_bytes ~offset
        in
        Engine.after t.engine
          (Wire.serialize_ns ~rate_gbps:t.cfg.migration_gbps ~bytes:(len + 64))
          (fun () ->
            ignore (Snapshot.accept progress ~offset ~len);
            chunk ())
      end
    in
    chunk ()
  and propose_merge image completions =
    driver_propose t ~group:target (Op.Merge { chunk = image; completions })
      ~on_done:flip
  and flip () =
    Shard_map.assign t.map ~slots ~target;
    Hashtbl.reset t.moving;
    t.moving_source <- -1;
    install_filters t;
    note t "migration %d: map flipped to v%d (group%d owns the slots)"
      t.migrations (Shard_map.version t.map) target;
    driver_propose t ~group:source
      (Op.Prune { slots = Shard_map.nslots t.map; drop = slots })
      ~on_done:(fun () ->
        t.migrating <- false;
        note t "migration %d: source pruned, done" t.migrations;
        on_done ())
  in
  wait_cut None

let split_shard t ?on_done ~source ~target () =
  let slots = Shard_map.split_plan t.map ~source in
  move_shard t ?on_done ~slots ~target ()
