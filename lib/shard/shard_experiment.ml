open Hovercraft_sim
open Hovercraft_core
module Op = Hovercraft_apps.Op
module Ycsb = Hovercraft_apps.Ycsb
module Loadgen = Hovercraft_cluster.Loadgen
module Experiment = Hovercraft_cluster.Experiment

type setup = {
  params : Hnode.params;
  workload : Rng.t -> Op.t;
  preload : Op.t list;
  clients : int;
  flow_cap : int option;
  shards : int;
  slots : int;
  seed : int;
}

let setup ?(clients = 8) ?flow_cap ?(preload = []) ?(slots = 64) ?(seed = 1)
    ~shards params workload =
  { params; workload; preload; clients; flow_cap; shards; slots; seed }

(* Same window sizing as Experiment.window: enough samples for a stable
   p99, bounded so the SLO search stays cheap. *)
let window ~quality ~rate_rps =
  let min_samples, cap_s =
    match quality with
    | Experiment.Fast -> (4_000., 0.25)
    | Experiment.Full -> (20_000., 1.0)
  in
  let needed_s = min_samples /. rate_rps in
  let dur_s = Float.min cap_s (Float.max 0.03 needed_s) in
  let dur = int_of_float (dur_s *. 1e9) in
  let warm = dur / 5 in
  (warm, dur + warm)

let run_point ?(quality = Experiment.Fast) s ~rate_rps =
  let sd =
    Shard_deploy.create
      (Shard_deploy.config ?flow_cap:s.flow_cap ~slots:s.slots ~shards:s.shards
         s.params)
  in
  if s.preload <> [] then Shard_deploy.preload sd s.preload;
  let gen =
    Shard_loadgen.create sd ~clients:s.clients ~rate_rps ~workload:s.workload
      ~seed:(s.seed + 7) ()
  in
  let warmup, duration = window ~quality ~rate_rps in
  Shard_loadgen.run gen ~warmup ~duration ()

let meets_slo ~slo (r : Loadgen.report) =
  r.Loadgen.completed > 0
  && r.Loadgen.p99_us <= Timebase.to_us_f slo
  && r.Loadgen.goodput_rps >= 0.97 *. r.Loadgen.offered_rps
  && r.Loadgen.lost = 0

let max_under_slo ?(quality = Experiment.Fast) ?(slo = Timebase.us 500)
    ?(lo = 5_000.) ?(hi = 2_000_000.) s =
  let ok rate = meets_slo ~slo (run_point ~quality s ~rate_rps:rate) in
  if not (ok lo) then 0.
  else begin
    let rec bracket good =
      let candidate = good *. 1.6 in
      if candidate >= hi then (good, hi)
      else if ok candidate then bracket candidate
      else (good, candidate)
    in
    let good, bad = bracket lo in
    let rec bisect good bad iters =
      if iters = 0 || (bad -. good) /. good < 0.02 then good
      else begin
        let mid = (good +. bad) /. 2. in
        if ok mid then bisect mid bad (iters - 1)
        else bisect good mid (iters - 1)
      end
    in
    if good >= hi then hi else bisect good bad 8
  end

(* kRPS-under-SLO as shard count grows, on a FIXED per-host budget: every
   S shares the same NIC and switch rates (Shard_deploy splits them 1/S
   per group) — the scaling that survives is the multi-core one, each
   group instance bringing its own CPU. YCSB-B (95% reads) so the
   leader's write work is small and reply load-balancing does the rest.

   The host NIC is 40 GbE: at the single-group knee (~1.9 MRPS) the
   binding resource is then per-core packet CPU, not the wire, which is
   exactly the regime where co-located sharding pays — with the default
   10 GbE budget the S=1 knee is already wire-bound and a 1/S slice per
   group caps every shard count at the same total. *)
let shardscale ?(quality = Experiment.Fast) ?(slo = Timebase.us 500)
    ?(shard_counts = [ 1; 2; 4; 8 ]) ?(n = 3) ?(seed = 42) () =
  List.map
    (fun shards ->
      let params = Hnode.params ~mode:Hnode.Hover_pp ~n () in
      let params =
        {
          params with
          Hnode.cost = { params.Hnode.cost with Hnode.link_gbps = 40. };
        }
      in
      let kv = Ycsb.Kv.workload_b ~seed:(seed + shards) in
      let s =
        setup ~shards params
          (fun _rng -> Ycsb.Kv.next kv)
          ~preload:(Ycsb.Kv.preload_ops kv) ~seed
      in
      (* The search ceiling must scale with the shard count or every
         S > 1 point saturates against it instead of its own knee. *)
      let hi = 2_000_000. *. float_of_int shards in
      (shards, max_under_slo ~quality ~slo ~hi s))
    shard_counts
