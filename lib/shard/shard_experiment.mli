(** Sharded capacity experiments: {!Hovercraft_cluster.Experiment} for
    multi-group deployments, plus the [shardscale] study — achievable
    throughput under a p99 SLO as the shard count grows on a fixed
    per-host budget. *)

open Hovercraft_sim
open Hovercraft_core

type setup = {
  params : Hnode.params;  (** Per-group node parameters, pre-split budget. *)
  workload : Rng.t -> Hovercraft_apps.Op.t;
  preload : Hovercraft_apps.Op.t list;
  clients : int;
  flow_cap : int option;
  shards : int;
  slots : int;
  seed : int;
}

val setup :
  ?clients:int ->
  ?flow_cap:int ->
  ?preload:Hovercraft_apps.Op.t list ->
  ?slots:int ->
  ?seed:int ->
  shards:int ->
  Hnode.params ->
  (Rng.t -> Hovercraft_apps.Op.t) ->
  setup

val run_point :
  ?quality:Hovercraft_cluster.Experiment.quality ->
  setup ->
  rate_rps:float ->
  Hovercraft_cluster.Loadgen.report
(** One fresh sharded deployment, preloaded, measured at [rate_rps] with
    the same window sizing as the single-group experiments. *)

val max_under_slo :
  ?quality:Hovercraft_cluster.Experiment.quality ->
  ?slo:Timebase.t ->
  ?lo:float ->
  ?hi:float ->
  setup ->
  float
(** Highest offered rate (geometric bracket + bisection to ~2%) whose
    report still meets the SLO: p99 within [slo], goodput >= 97% of
    offered, nothing lost. *)

val shardscale :
  ?quality:Hovercraft_cluster.Experiment.quality ->
  ?slo:Timebase.t ->
  ?shard_counts:int list ->
  ?n:int ->
  ?seed:int ->
  unit ->
  (int * float) list
(** [(shards, knee_rps)] for each count in [shard_counts] (default
    [1; 2; 4; 8]) on YCSB-B, per-host NIC/switch budget held FIXED — each
    group runs on a 1/S slice — so the measured scaling is the multi-core
    one the paper's single-group design leaves on the table. *)
