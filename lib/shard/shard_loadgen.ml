open Hovercraft_sim
open Hovercraft_r2p2
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Op = Hovercraft_apps.Op
module Metrics = Hovercraft_obs.Metrics
module Deploy = Hovercraft_cluster.Deploy
module Loadgen = Hovercraft_cluster.Loadgen
module Traffic = Hovercraft_cluster.Traffic

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

(* One client endpoint = one id source + a port on EVERY group's fabric
   (the groups are separate fabrics; a real client has one NIC reaching
   all of them, so each port gets the full client link rate). *)
type endpoint = {
  ports : Protocol.payload Fabric.port array; (* index = group *)
  ids : R2p2.Id_source.t;
}

type t = {
  sd : Shard_deploy.t;
  engine : Engine.t;
  mutable endpoints : endpoint array;
  rate_rps : float;
  profile : Traffic.profile option;
  mutable run_start : Timebase.t;
  workload : Rng.t -> Op.t;
  retry : (Timebase.t * int) option;
  on_reply :
    (rid:R2p2.req_id -> op:Op.t -> sent_at:Timebase.t -> latency:Timebase.t -> unit)
    option;
  on_nack : (at:Timebase.t -> unit) option;
  rng : Rng.t;
  outstanding : (Timebase.t * Op.t * int) Rid_tbl.t; (* sent_at, op, endpoint *)
  backoff : Timebase.t Rid_tbl.t; (* per-rid reroute backoff *)
  stats : Stats.t;
  metrics : Metrics.t;
  c_sent : Metrics.counter;
  c_completed : Metrics.counter;
  c_nacked : Metrics.counter;
  c_retried : Metrics.counter;
  c_rerouted : Metrics.counter;
  c_lost : Metrics.counter;
  h_latency_ns : Metrics.histogram;
  w_latency : Metrics.windowed;
  w_groups : Metrics.windowed array; (* index = owning group at reply time *)
  mutable measure_from : Timebase.t;
  mutable measure_to : Timebase.t;
  mutable next_endpoint : int;
}

let client_link_gbps = 10.

(* Owning group of an op under the LIVE shard map; keyless ops go to a
   deterministic group derived from the request id. *)
let owner_of t rid op =
  match Op.key op with
  | Some k -> fst (Shard_deploy.client_target t.sd ~key:k)
  | None -> rid.R2p2.id mod Shard_deploy.shards t.sd

(* Route = ownership lookup + one tally against the key's slot in the
   deployment's heat map. Counting at transmit time (retries included)
   makes heat reflect the demand each slot actually generates. *)
let route t rid op =
  (match Op.key op with
  | Some k -> Shard_deploy.record_access t.sd ~key:k
  | None -> ());
  owner_of t rid op

let transmit t ep rid op =
  let g = route t rid op in
  let policy =
    if Op.read_only op then R2p2.Replicated_req_r else R2p2.Replicated_req
  in
  let payload = Protocol.Request { rid; policy; op } in
  let bytes = Protocol.payload_bytes ~with_bodies:false payload in
  let group = (Shard_deploy.groups t.sd).(g) in
  Fabric.send group.Deploy.fabric ep.ports.(g)
    ~dst:(Deploy.client_target group)
    ~bytes payload

(* A Wrong_shard NACK means the map moved (or a migration fence is up):
   refresh the (shared, live) map and re-route. During the fence window
   the owning group still refuses fresh requests, so back off
   exponentially — the retransmission keeps the SAME rid, making the
   eventual landing exactly-once. *)
let reroute_base = Timebase.us 10
let reroute_cap = Timebase.ms 2

let on_wrong_shard t rid =
  match Rid_tbl.find_opt t.outstanding rid with
  | None -> ()
  | Some (_, op, epi) ->
      Metrics.incr t.c_rerouted;
      let delay =
        match Rid_tbl.find_opt t.backoff rid with
        | None -> reroute_base
        | Some d -> min reroute_cap (2 * d)
      in
      Rid_tbl.replace t.backoff rid delay;
      Engine.after t.engine delay (fun () ->
          if Rid_tbl.mem t.outstanding rid then
            transmit t t.endpoints.(epi) rid op)

let on_packet t (pkt : Protocol.payload Fabric.packet) =
  let now = Engine.now t.engine in
  match pkt.payload with
  | Protocol.Response { rid } -> (
      match Rid_tbl.find_opt t.outstanding rid with
      | Some (sent_at, op, _) ->
          Rid_tbl.remove t.outstanding rid;
          Rid_tbl.remove t.backoff rid;
          let latency = now - sent_at in
          if sent_at >= t.measure_from && sent_at <= t.measure_to then begin
            Metrics.incr t.c_completed;
            Stats.add t.stats latency;
            Metrics.observe t.h_latency_ns latency;
            Metrics.wobserve t.w_latency latency;
            Metrics.wobserve t.w_groups.(owner_of t rid op) latency;
            match t.on_reply with
            | Some f -> f ~rid ~op ~sent_at ~latency
            | None -> ()
          end
      | None -> ())
  | Protocol.Nack { rid } -> (
      match Rid_tbl.find_opt t.outstanding rid with
      | Some (sent_at, _, _) ->
          Rid_tbl.remove t.outstanding rid;
          Rid_tbl.remove t.backoff rid;
          if sent_at >= t.measure_from && sent_at <= t.measure_to then begin
            Metrics.incr t.c_nacked;
            match t.on_nack with Some f -> f ~at:now | None -> ()
          end
      | None -> ())
  | Protocol.Wrong_shard { rid; _ } -> on_wrong_shard t rid
  | Protocol.Request _ | Protocol.Raft _ | Protocol.Recovery_request _
  | Protocol.Recovery_response _ | Protocol.Probe _ | Protocol.Probe_reply _
  | Protocol.Agg_commit _ | Protocol.Feedback _ | Protocol.Reconfig _ | Protocol.Rabia _ ->
      ()

let create sd ~clients ~rate_rps ?profile ~workload ?retry ?on_reply ?on_nack
    ~seed () =
  if clients <= 0 then
    invalid_arg "Shard_loadgen.create: need at least one client";
  if rate_rps <= 0. then
    invalid_arg "Shard_loadgen.create: rate must be positive";
  let engine = Shard_deploy.engine sd in
  let metrics = Metrics.create () in
  let t =
    {
      sd;
      engine;
      endpoints = [||];
      rate_rps;
      profile;
      run_start = 0;
      workload;
      retry;
      on_reply;
      on_nack;
      rng = Rng.create seed;
      outstanding = Rid_tbl.create 4096;
      backoff = Rid_tbl.create 64;
      stats = Stats.create ();
      metrics;
      c_sent = Metrics.counter metrics "sent";
      c_completed = Metrics.counter metrics "completed";
      c_nacked = Metrics.counter metrics "nacked";
      c_retried = Metrics.counter metrics "retried";
      c_rerouted = Metrics.counter metrics "rerouted";
      c_lost = Metrics.counter metrics "lost";
      h_latency_ns = Metrics.histogram metrics "latency_ns";
      w_latency = Metrics.windowed metrics "latency_ns_window";
      w_groups =
        Array.init (Shard_deploy.shards sd) (fun g ->
            Metrics.windowed metrics (Printf.sprintf "g%d_latency_ns_window" g));
      measure_from = max_int;
      measure_to = max_int;
      next_endpoint = 0;
    }
  in
  t.endpoints <-
    Array.init clients (fun i ->
        let addr = Addr.Client i in
        {
          ports =
            Array.map
              (fun (d : Deploy.t) ->
                Fabric.attach d.Deploy.fabric ~addr
                  ~rate_gbps:client_link_gbps ~handler:(on_packet t))
              (Shard_deploy.groups sd);
          ids = R2p2.Id_source.create ~src_addr:addr ~src_port:(1000 + i);
        });
  t

let rec arm_retry t ep epi rid op attempts_left =
  match t.retry with
  | None -> ()
  | Some (timeout, _) ->
      Engine.after t.engine timeout (fun () ->
          if Rid_tbl.mem t.outstanding rid then
            if attempts_left > 0 then begin
              Metrics.incr t.c_retried;
              transmit t ep rid op;
              arm_retry t ep epi rid op (attempts_left - 1)
            end
            else
              (* Retry budget exhausted: the rid will never be
                 retransmitted, so its reroute-backoff entry is dead.
                 Without this, rids that die mid-migration (rerouted at
                 least once, then lost) leak a table entry forever —
                 only the reply/NACK paths clear it. *)
              Rid_tbl.remove t.backoff rid)

let send_one t =
  let epi = t.next_endpoint in
  let ep = t.endpoints.(epi) in
  t.next_endpoint <- (t.next_endpoint + 1) mod Array.length t.endpoints;
  let op = t.workload t.rng in
  let rid = R2p2.Id_source.next ep.ids in
  Rid_tbl.replace t.outstanding rid (Engine.now t.engine, op, epi);
  Metrics.incr t.c_sent;
  transmit t ep rid op;
  match t.retry with
  | Some (_, attempts) -> arm_retry t ep epi rid op attempts
  | None -> ()

(* Same draw with or without a profile — see Loadgen.interarrival: the
   constant-rate path stays byte-identical. *)
let interarrival t =
  let u = 1.0 -. Rng.float t.rng in
  let rate =
    match t.profile with
    | None -> t.rate_rps
    | Some p -> Traffic.rate_at p (Engine.now t.engine - t.run_start)
  in
  let gap_ns = -.log u *. 1e9 /. rate in
  max 1 (int_of_float gap_ns)

let run t ~warmup ~duration ?(drain = Timebase.ms 20) () =
  let start = Engine.now t.engine in
  let stop_at = start + duration in
  t.run_start <- start;
  t.measure_from <- start + warmup;
  t.measure_to <- stop_at;
  let rec arrival () =
    if Engine.now t.engine < stop_at then begin
      send_one t;
      Engine.after t.engine (interarrival t) arrival
    end
  in
  Engine.after t.engine (interarrival t) arrival;
  Engine.run ~until:(stop_at + drain) t.engine;
  let lost = ref 0 in
  Rid_tbl.iter
    (fun _ (sent_at, _, _) ->
      if sent_at >= t.measure_from && sent_at <= t.measure_to then incr lost)
    t.outstanding;
  Metrics.add t.c_lost !lost;
  (* Client teardown: whatever is still in flight when the run ends was
     just counted as lost; its backoff state must not outlive it. *)
  Rid_tbl.reset t.backoff;
  let completed = Metrics.value t.c_completed in
  let window_s = Timebase.to_s_f (t.measure_to - t.measure_from) in
  let pct p =
    if Stats.count t.stats = 0 then 0.
    else Timebase.to_us_f (Stats.percentile t.stats p)
  in
  let offered =
    match t.profile with
    | None -> t.rate_rps
    | Some p -> Traffic.mean_over p ~duration
  in
  {
    Loadgen.offered_rps = offered;
    sent = Metrics.value t.c_sent;
    completed;
    nacked = Metrics.value t.c_nacked;
    lost = !lost;
    goodput_rps =
      (if window_s > 0. then float_of_int completed /. window_s else 0.);
    mean_us = Stats.mean t.stats /. 1e3;
    p50_us = pct 0.5;
    p99_us = pct 0.99;
    max_us = Timebase.to_us_f (Stats.max_sample t.stats);
  }

let stats t = t.stats
let latency_window t = t.w_latency

let group_latency_window t g =
  if g < 0 || g >= Array.length t.w_groups then
    invalid_arg "Shard_loadgen.group_latency_window: unknown group";
  t.w_groups.(g)

let backoff_entries t = Rid_tbl.length t.backoff
let retried t = Metrics.value t.c_retried
let rerouted t = Metrics.value t.c_rerouted
let metrics t = t.metrics
