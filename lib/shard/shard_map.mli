(** The versioned shard map: key space -> slots -> Raft groups.

    Keys hash (or range-partition) onto a fixed universe of slots; slots
    are assigned to groups, and a migration reassigns whole slots. The
    [version] increments on every reassignment and rides in
    {!Hovercraft_core.Protocol.Wrong_shard} NACKs so clients know their
    routing table is stale. Groups owning zero slots are dormant — a
    split activates one by moving slots to it. *)

type partitioner =
  | Hash
      (** Deterministic FNV-1a slot hashing
          ({!Hovercraft_apps.Kvstore.slot_of_key}) — what Kvstore/YCSB key
          distributions use. *)
  | Range of string array
      (** Lexicographic range partitioning: [slots - 1] sorted split
          points; slot of a key = number of split points [<=] it. *)

type t

val create :
  ?partitioner:partitioner -> ?active:int -> slots:int -> groups:int -> unit -> t
(** Fresh map at version 1: slots in contiguous equal blocks over the
    first [active] groups (default all [groups]); the rest are dormant.
    Raises [Invalid_argument] on a non-positive universe, [active]
    outside [1, groups], fewer slots than active groups, or malformed
    range split points. *)

val version : t -> int
val nslots : t -> int
val groups : t -> int

val slot_of_key : t -> string -> int
val owner_of_slot : t -> int -> int
val owner_of_key : t -> string -> int

val slots_of_group : t -> int -> int list
(** Slots a group currently owns, ascending ([] when dormant). *)

val active_groups : t -> int list
(** Groups owning at least one slot, ascending. *)

val owns_key : t -> group:int -> string -> bool

val owns_op : t -> group:int -> Hovercraft_apps.Op.t -> bool
(** Ownership lifted to operations; keyless operations (Nop, Synth,
    migration control ops) pass every group's filter. *)

val assign : t -> slots:int list -> target:int -> unit
(** Reassign [slots] to [target] and bump the version — the atomic "flip"
    that completes a migration. *)

val split_plan : t -> source:int -> int list
(** The slots a split would move away from [source]: the upper half
    (floor(n/2)) of its slots, keeping blocks contiguous. Raises
    [Invalid_argument] if [source] owns fewer than two slots. *)
