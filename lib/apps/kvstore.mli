(** An in-memory data-structure store in the spirit of Redis.

    Supports strings, lists, hashes and sets, plus a user-defined module in
    the sense of Redis modules (§7.5): the [Insert]/[Scan] commands
    implement YCSB-E's threaded-conversation operations as single isolated
    store operations, exactly as the paper's custom Redis module does.

    Execution is deterministic (a requirement for state-machine
    replication): identical command sequences yield identical stores, which
    the test suite checks by hashing replicas. *)

type t

type record = (string * string) list
(** A YCSB record: field name -> 100-byte value, 10 fields = 1 kB. *)

type cmd =
  | Nop  (** Leader-election no-op; applied but has no effect. *)
  | Get of string
  | Put of string * string
  | Del of string
  | Lpush of string * string  (** Prepend to a list. *)
  | Rpush of string * string  (** Append to a list. *)
  | Lrange of string * int * int
      (** [Lrange (k, start, stop)], inclusive 0-based bounds like Redis. *)
  | Llen of string
  | Hset of string * string * string
  | Hget of string * string
  | Hgetall of string
  | Sadd of string * string
  | Srem of string * string
  | Sismember of string * string
  | Scard of string
  | Insert of { thread : string; record : record }
      (** YCSB-E INSERT: post a record to a conversation thread. *)
  | Scan of { thread : string; limit : int }
      (** YCSB-E SCAN: read the [limit] most recent posts of a thread. *)

type reply =
  | Ok
  | Value of string option
  | Values of string list
  | Records of record list
  | Count of int
  | Wrong_type  (** Command applied to a key holding another type. *)

val create : unit -> t

val execute : t -> cmd -> reply
(** Apply one command. Total: never raises on user input. *)

val is_read_only : cmd -> bool
(** Whether the command leaves the store unchanged; read-only commands may
    be load-balanced to a single replica (§3.5). *)

val key_of : cmd -> string option
(** The single key (or thread) a command touches — every command is
    single-key, which is what makes hash sharding sound. [None] only for
    [Nop]. *)

val slot_of_key : slots:int -> string -> int
(** Deterministic FNV-1a partitioner: maps a key to a slot in
    [0, slots). Stable across runs and runtimes (unlike [Hashtbl.hash]);
    the shard map routes on it. *)

val keys : t -> int
(** Number of live keys (threads count as one key each). *)

val fingerprint : t -> int
(** Order-insensitive digest of the full store contents. Two replicas that
    applied the same command sequence have equal fingerprints; used by the
    replication safety tests. *)

(** {1 Snapshots}

    Serialize/restore hooks for the snapshot subsystem: an {!image} is a
    detached deep copy of the full store, safe to ship to other replicas
    and install any number of times. *)

type image

val snapshot : t -> image
(** Cut a detached deep copy of the store. *)

val install : t -> image -> unit
(** Replace the store's contents with the image (deep-copied again, so
    the image stays reusable). *)

val image_bytes : image -> int
(** Estimated serialized size, for transfer-chunking arithmetic. *)

val extract : t -> keep:(string -> bool) -> image
(** Cut a detached deep copy of just the keys [keep] accepts — the
    shard-migration sub-range image. *)

val merge : t -> image -> unit
(** Union an image into the store (per-key replace; keys outside the
    image are untouched). The image stays reusable. *)

val prune : t -> keep:(string -> bool) -> int
(** Drop every key [keep] rejects; returns how many were removed. The
    migration epilogue runs this on the source shard once ownership has
    moved. *)

(** {1 Sizing and cost model}

    Request/reply wire sizes and CPU costs for the simulator. The cost
    constants are calibrated so that YCSB-E's operation mix averages to the
    paper's observed unreplicated capacity (~35 kRPS, §7.5). *)

val cmd_bytes : cmd -> int
(** Serialized request size in bytes. *)

val reply_bytes : reply -> int
(** Serialized reply size in bytes. *)

val cost_ns : cmd -> reply -> Hovercraft_sim.Timebase.t
(** CPU time to execute the command (depends on the work actually done,
    e.g. records returned by a scan). *)
