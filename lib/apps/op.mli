(** The replicated operation type: what the SMR layer orders and applies.

    The paper's point is that fault-tolerance is provided at the RPC layer
    for {e any} deterministic service; this module is the closed union of
    the services the evaluation runs — the configurable synthetic service
    of §7.1–§7.4 and the Redis-like store of §7.5. *)

open Hovercraft_sim

type t =
  | Nop  (** Internal no-op (leader's term-opening entry). *)
  | Synth of {
      cost : Timebase.t;  (** CPU time to execute. *)
      read_only : bool;
      req_bytes : int;  (** Client request payload size. *)
      rep_bytes : int;  (** Reply payload size. *)
    }
  | Kv of Kvstore.cmd
  | Merge of { chunk : Kvstore.image; completions : completion list }
      (** Shard migration: union a pre-staged sub-range image into the
          store, carrying the source group's completion records so
          exactly-once survives the ownership handoff. Ordered through
          the target group's log like any write, so every current and
          future replica applies it at the same position. *)
  | Prune of { slots : int; drop : int list }
      (** Shard migration epilogue on the source group: drop every key
          hashing (mod [slots]) into one of the [drop] slots. *)

and result = Done | Kv_reply of Kvstore.reply

and completion = {
  c_rid : Hovercraft_r2p2.R2p2.req_id;
  c_result : result;
  c_at : Timebase.t;
}
(** One exactly-once completion record riding inside a [Merge]. *)

val completion_wire_bytes : int

type state
(** One replica's application state. *)

val create_state : unit -> state

val apply : state -> t -> result * Timebase.t
(** Execute the operation against the state, returning the result and the
    CPU time the execution costs. Deterministic. *)

val read_only : t -> bool

val key : t -> string option
(** The key the operation routes on, for shard partitioning. [None] for
    keyless operations (Nop, Synth, the migration ops themselves) — a
    shard filter must accept those everywhere. *)

type footprint =
  | Fp_none  (** Touches no shared state: commutes with everything. *)
  | Fp_key of string
      (** Touches exactly one key (or one thread-prefixed range): commutes
          with any operation on a different key. *)
  | Fp_global
      (** Touches cross-key state (synthetic-service writes, migration
          bulk ops): conflicts with every other operation. *)

val footprint : t -> footprint
(** The conflict relation for dependency-aware parallel apply: two
    operations may execute on different app threads iff their footprints
    are disjoint. Deterministic, derived purely from the operation. *)

val request_bytes : t -> int
val reply_bytes : t -> result -> int

val executed : state -> int
(** Number of operations applied to this replica so far. *)

val fingerprint : state -> int
(** Digest covering both the op count and the store contents; replicas that
    applied the same sequence agree. *)

(** {1 Snapshots}

    The whole-machine serialize/restore hooks (see
    {!Service.Snapshottable}): the image captures the kv store plus the
    synthetic service's digest state, so a replica installing it is
    indistinguishable — fingerprint included — from one that applied
    every covered operation. *)

type image

val snapshot : state -> image
(** Cut a detached deep copy of the replica state. *)

val install : state -> image -> unit
(** Overwrite the replica state with the image (in place: the [state]
    value keeps its identity, as embedders hold it by reference). *)

val image_bytes : image -> int
(** Estimated serialized size in bytes, for transfer chunking. *)

val extract_kv : state -> keep:(string -> bool) -> Kvstore.image
(** Cut a deep-copied image of just the store keys [keep] accepts (the
    migration export); the synthetic service's digest state stays put —
    only the partitioned store moves between shards. *)

val pp : Format.formatter -> t -> unit
