(** The replicated operation type: what the SMR layer orders and applies.

    The paper's point is that fault-tolerance is provided at the RPC layer
    for {e any} deterministic service; this module is the closed union of
    the services the evaluation runs — the configurable synthetic service
    of §7.1–§7.4 and the Redis-like store of §7.5. *)

open Hovercraft_sim

type t =
  | Nop  (** Internal no-op (leader's term-opening entry). *)
  | Synth of {
      cost : Timebase.t;  (** CPU time to execute. *)
      read_only : bool;
      req_bytes : int;  (** Client request payload size. *)
      rep_bytes : int;  (** Reply payload size. *)
    }
  | Kv of Kvstore.cmd

type result = Done | Kv_reply of Kvstore.reply

type state
(** One replica's application state. *)

val create_state : unit -> state

val apply : state -> t -> result * Timebase.t
(** Execute the operation against the state, returning the result and the
    CPU time the execution costs. Deterministic. *)

val read_only : t -> bool
val request_bytes : t -> int
val reply_bytes : t -> result -> int

val executed : state -> int
(** Number of operations applied to this replica so far. *)

val fingerprint : state -> int
(** Digest covering both the op count and the store contents; replicas that
    applied the same sequence agree. *)

(** {1 Snapshots}

    The whole-machine serialize/restore hooks (see
    {!Service.Snapshottable}): the image captures the kv store plus the
    synthetic service's digest state, so a replica installing it is
    indistinguishable — fingerprint included — from one that applied
    every covered operation. *)

type image

val snapshot : state -> image
(** Cut a detached deep copy of the replica state. *)

val install : state -> image -> unit
(** Overwrite the replica state with the image (in place: the [state]
    value keeps its identity, as embedders hold it by reference). *)

val image_bytes : image -> int
(** Estimated serialized size in bytes, for transfer chunking. *)

val pp : Format.formatter -> t -> unit
