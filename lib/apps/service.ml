open Hovercraft_sim

type spec = {
  service : Dist.t;
  req_bytes : int;
  rep_bytes : int;
  read_fraction : float;
}

let spec ?(service = Dist.Fixed (Timebase.us 1)) ?(req_bytes = 24)
    ?(rep_bytes = 8) ?(read_fraction = 0.) () =
  if read_fraction < 0. || read_fraction > 1. then
    invalid_arg "Service.spec: read_fraction outside [0,1]";
  { service; req_bytes; rep_bytes; read_fraction }

let sample t rng =
  let cost = Dist.sample t.service rng in
  let read_only = t.read_fraction > 0. && Rng.bool rng t.read_fraction in
  Op.Synth { cost; read_only; req_bytes = t.req_bytes; rep_bytes = t.rep_bytes }

let pp_spec fmt t =
  Format.fprintf fmt "synth{S=%a, req=%dB, rep=%dB, ro=%.0f%%}" Dist.pp
    t.service t.req_bytes t.rep_bytes (100. *. t.read_fraction)

(* --- snapshots --- *)

module type Snapshottable = sig
  type state
  type image

  val snapshot : state -> image
  val install : state -> image -> unit
  val image_bytes : image -> int
end

(* Both replicated services satisfy the interface; binding them here is a
   compile-time proof, and what the SMR layer checkpoints is [Machine]
   (the synthetic service's digest state rides inside [Op.image] next to
   the store). *)
module Machine : Snapshottable with type state = Op.state and type image = Op.image =
  Op

module Store :
  Snapshottable with type state := Kvstore.t and type image := Kvstore.image =
  Kvstore
