type record = (string * string) list

type value =
  | Str of string
  | List of string list * string list * int
      (* Amortized deque: front (in order), back (reversed), length. *)
  | Hash of (string, string) Hashtbl.t
  | Set of (string, unit) Hashtbl.t
  | Thread of record array ref * int ref
      (* Conversation posts, most recent last; (storage, used). *)

type t = { table : (string, value) Hashtbl.t }

type cmd =
  | Nop
  | Get of string
  | Put of string * string
  | Del of string
  | Lpush of string * string
  | Rpush of string * string
  | Lrange of string * int * int
  | Llen of string
  | Hset of string * string * string
  | Hget of string * string
  | Hgetall of string
  | Sadd of string * string
  | Srem of string * string
  | Sismember of string * string
  | Scard of string
  | Insert of { thread : string; record : record }
  | Scan of { thread : string; limit : int }

type reply =
  | Ok
  | Value of string option
  | Values of string list
  | Records of record list
  | Count of int
  | Wrong_type

let create () = { table = Hashtbl.create 4096 }

let list_elems front back = front @ List.rev back

let lrange elems len start stop =
  (* Redis semantics: negative indices count from the end; out-of-range
     bounds are clamped; inverted ranges are empty. *)
  let norm i = if i < 0 then len + i else i in
  let start = max 0 (norm start) and stop = min (len - 1) (norm stop) in
  if start > stop then []
  else
    elems
    |> List.filteri (fun i _ -> i >= start && i <= stop)

let execute t cmd =
  let tbl = t.table in
  match cmd with
  | Nop -> Ok
  | Get k -> (
      match Hashtbl.find_opt tbl k with
      | None -> Value None
      | Some (Str s) -> Value (Some s)
      | Some _ -> Wrong_type)
  | Put (k, v) ->
      Hashtbl.replace tbl k (Str v);
      Ok
  | Del k ->
      let existed = Hashtbl.mem tbl k in
      Hashtbl.remove tbl k;
      Count (if existed then 1 else 0)
  | Lpush (k, v) -> (
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.replace tbl k (List ([ v ], [], 1));
          Count 1
      | Some (List (f, b, n)) ->
          Hashtbl.replace tbl k (List (v :: f, b, n + 1));
          Count (n + 1)
      | Some _ -> Wrong_type)
  | Rpush (k, v) -> (
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.replace tbl k (List ([], [ v ], 1));
          Count 1
      | Some (List (f, b, n)) ->
          Hashtbl.replace tbl k (List (f, v :: b, n + 1));
          Count (n + 1)
      | Some _ -> Wrong_type)
  | Lrange (k, start, stop) -> (
      match Hashtbl.find_opt tbl k with
      | None -> Values []
      | Some (List (f, b, n)) -> Values (lrange (list_elems f b) n start stop)
      | Some _ -> Wrong_type)
  | Llen k -> (
      match Hashtbl.find_opt tbl k with
      | None -> Count 0
      | Some (List (_, _, n)) -> Count n
      | Some _ -> Wrong_type)
  | Hset (k, f, v) -> (
      match Hashtbl.find_opt tbl k with
      | None ->
          let h = Hashtbl.create 8 in
          Hashtbl.replace h f v;
          Hashtbl.replace tbl k (Hash h);
          Count 1
      | Some (Hash h) ->
          let fresh = not (Hashtbl.mem h f) in
          Hashtbl.replace h f v;
          Count (if fresh then 1 else 0)
      | Some _ -> Wrong_type)
  | Hget (k, f) -> (
      match Hashtbl.find_opt tbl k with
      | None -> Value None
      | Some (Hash h) -> Value (Hashtbl.find_opt h f)
      | Some _ -> Wrong_type)
  | Hgetall k -> (
      match Hashtbl.find_opt tbl k with
      | None -> Values []
      | Some (Hash h) ->
          let pairs = Hashtbl.fold (fun f v acc -> (f, v) :: acc) h [] in
          let pairs = List.sort compare pairs in
          Values (List.concat_map (fun (f, v) -> [ f; v ]) pairs)
      | Some _ -> Wrong_type)
  | Sadd (k, m) -> (
      match Hashtbl.find_opt tbl k with
      | None ->
          let s = Hashtbl.create 8 in
          Hashtbl.replace s m ();
          Hashtbl.replace tbl k (Set s);
          Count 1
      | Some (Set s) ->
          let fresh = not (Hashtbl.mem s m) in
          Hashtbl.replace s m ();
          Count (if fresh then 1 else 0)
      | Some _ -> Wrong_type)
  | Srem (k, m) -> (
      match Hashtbl.find_opt tbl k with
      | None -> Count 0
      | Some (Set s) ->
          let existed = Hashtbl.mem s m in
          Hashtbl.remove s m;
          Count (if existed then 1 else 0)
      | Some _ -> Wrong_type)
  | Sismember (k, m) -> (
      match Hashtbl.find_opt tbl k with
      | None -> Count 0
      | Some (Set s) -> Count (if Hashtbl.mem s m then 1 else 0)
      | Some _ -> Wrong_type)
  | Scard k -> (
      match Hashtbl.find_opt tbl k with
      | None -> Count 0
      | Some (Set s) -> Count (Hashtbl.length s)
      | Some _ -> Wrong_type)
  | Insert { thread; record } -> (
      match Hashtbl.find_opt tbl thread with
      | None ->
          let store = ref (Array.make 8 record) and used = ref 1 in
          Hashtbl.replace tbl thread (Thread (store, used));
          Ok
      | Some (Thread (store, used)) ->
          if !used = Array.length !store then begin
            let bigger = Array.make (2 * !used) record in
            Array.blit !store 0 bigger 0 !used;
            store := bigger
          end;
          !store.(!used) <- record;
          incr used;
          Ok
      | Some _ -> Wrong_type)
  | Scan { thread; limit } -> (
      match Hashtbl.find_opt tbl thread with
      | None -> Records []
      | Some (Thread (store, used)) ->
          let n = min (max limit 0) !used in
          let out = ref [] in
          (* Most recent first, as a conversation view would show. *)
          for i = !used - n to !used - 1 do
            out := !store.(i) :: !out
          done;
          Records !out
      | Some _ -> Wrong_type)

let key_of = function
  | Nop -> None
  | Get k | Put (k, _) | Del k | Lpush (k, _) | Rpush (k, _)
  | Lrange (k, _, _) | Llen k | Hset (k, _, _) | Hget (k, _) | Hgetall k
  | Sadd (k, _) | Srem (k, _) | Sismember (k, _) | Scard k ->
      Some k
  | Insert { thread; _ } | Scan { thread; _ } -> Some thread

(* FNV-1a over the key bytes, folded modulo the slot count. The shard map
   partitions on this: it must be a stable function of the key string
   alone (Hashtbl.hash would tie the partitioning to the runtime's
   internal hashing), and it must spread YCSB's "userNNNNNNNN" keys
   evenly — the distribution test holds it to ±20% of uniform. *)
let slot_of_key ~slots key =
  if slots <= 0 then invalid_arg "Kvstore.slot_of_key: slots must be positive";
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193)
    key;
  (!h land max_int) mod slots

let is_read_only = function
  | Nop | Get _ | Lrange _ | Llen _ | Hget _ | Hgetall _ | Sismember _
  | Scard _ | Scan _ ->
      true
  | Put _ | Del _ | Lpush _ | Rpush _ | Hset _ | Sadd _ | Srem _ | Insert _ ->
      false

let keys t = Hashtbl.length t.table

let fingerprint t =
  let digest_value = function
    | Str s -> Hashtbl.hash ("s", s)
    | List (f, b, n) -> Hashtbl.hash ("l", list_elems f b, n)
    | Hash h ->
        Hashtbl.fold (fun f v acc -> acc lxor Hashtbl.hash ("h", f, v)) h 0
    | Set s -> Hashtbl.fold (fun m () acc -> acc lxor Hashtbl.hash ("e", m)) s 0
    | Thread (store, used) ->
        let acc = ref (Hashtbl.hash ("t", !used)) in
        for i = 0 to !used - 1 do
          acc := (!acc * 31) lxor Hashtbl.hash !store.(i)
        done;
        !acc
  in
  Hashtbl.fold
    (fun k v acc -> acc lxor Hashtbl.hash (k, digest_value v))
    t.table 0

(* --- snapshots ---

   An image is a detached deep copy: the mutable structures (hashes,
   sets, thread arrays) are copied both when the image is cut and when it
   is installed, so snapshots never alias live store state and one image
   can be installed on many replicas. Keys are sorted so identical stores
   produce structurally equal images. *)

type image = (string * value) list

let copy_value = function
  | (Str _ | List _) as v -> v (* immutable payloads *)
  | Hash h -> Hash (Hashtbl.copy h)
  | Set s -> Set (Hashtbl.copy s)
  | Thread (store, used) -> Thread (ref (Array.copy !store), ref !used)

let snapshot t =
  Hashtbl.fold (fun k v acc -> (k, copy_value v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let install t img =
  Hashtbl.reset t.table;
  List.iter (fun (k, v) -> Hashtbl.replace t.table k (copy_value v)) img

(* Sub-range images, for shard migration: [extract] cuts a deep copy of
   just the keys a predicate keeps, [merge] unions an image into a live
   store (per-key replace, no reset), and [prune] drops the keys a
   predicate rejects. All three keep the deep-copy discipline of
   [snapshot]/[install] so images never alias live state. *)

let extract t ~keep =
  Hashtbl.fold
    (fun k v acc -> if keep k then (k, copy_value v) :: acc else acc)
    t.table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge t img =
  List.iter (fun (k, v) -> Hashtbl.replace t.table k (copy_value v)) img

let prune t ~keep =
  let doomed =
    Hashtbl.fold (fun k _ acc -> if keep k then acc else k :: acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) doomed;
  List.length doomed

(* --- sizing --- *)

let record_bytes r =
  List.fold_left (fun acc (f, v) -> acc + String.length f + String.length v) 0 r

let value_bytes = function
  | Str s -> 16 + String.length s
  | List (f, b, _) ->
      List.fold_left
        (fun acc s -> acc + 4 + String.length s)
        16 (List.rev_append b f)
  | Hash h ->
      Hashtbl.fold
        (fun f v acc -> acc + 8 + String.length f + String.length v)
        h 16
  | Set s -> Hashtbl.fold (fun m () acc -> acc + 4 + String.length m) s 16
  | Thread (store, used) ->
      let acc = ref 16 in
      for i = 0 to !used - 1 do
        acc := !acc + 16 + record_bytes !store.(i)
      done;
      !acc

let image_bytes img =
  List.fold_left
    (fun acc (k, v) -> acc + 8 + String.length k + value_bytes v)
    16 img

let cmd_bytes = function
  | Nop -> 8
  | Get k | Del k | Llen k | Hgetall k | Scard k -> 8 + String.length k
  | Put (k, v) | Lpush (k, v) | Rpush (k, v) ->
      8 + String.length k + String.length v
  | Lrange (k, _, _) -> 16 + String.length k
  | Hset (k, f, v) -> 8 + String.length k + String.length f + String.length v
  | Hget (k, f) | Sismember (k, f) | Sadd (k, f) | Srem (k, f) ->
      8 + String.length k + String.length f
  | Insert { thread; record } -> 8 + String.length thread + record_bytes record
  | Scan { thread; _ } -> 16 + String.length thread

let reply_bytes = function
  | Ok | Wrong_type -> 8
  | Count _ -> 16
  | Value None -> 8
  | Value (Some s) -> 8 + String.length s
  | Values vs -> List.fold_left (fun acc v -> acc + 4 + String.length v) 8 vs
  | Records rs -> List.fold_left (fun acc r -> acc + 16 + record_bytes r) 8 rs

(* --- cost model ---

   Calibrated against §7.5 with two anchors. (1) The unreplicated server
   peaks near 35 kRPS on YCSB-E (95% SCAN of <=10 x 1kB records, 5%
   INSERT), i.e. a ~28.5us mean per operation. (2) The paper reports the
   7-node speedup of 4x as "consistent with the upper bound predicted by
   Amdahl's law given the relative cost of SCAN and INSERT" — since
   INSERTs execute on every replica while SCANs run only on the replier,
   speedup(N) = mean / (p_i*c_i + p_s*c_s/N); hitting 4x at N = 7 with the
   35 kRPS anchor requires INSERT (a 1 kB record posted through the module
   API) to cost several times a SCAN. Solving both anchors gives roughly
   c_s ~ 21us and c_i ~ 55us once reply-transmission CPU is included. *)

let scan_base_ns = 5_000
let scan_per_record_ns = 1_550
let insert_ns = 55_000
let point_ns = 1_000
let write_ns = 1_500

let cost_ns cmd reply =
  match (cmd, reply) with
  | Nop, _ -> 100
  | Scan _, Records rs -> scan_base_ns + (scan_per_record_ns * List.length rs)
  | Scan _, _ -> scan_base_ns
  | Insert _, _ -> insert_ns
  | (Get _ | Llen _ | Hget _ | Sismember _ | Scard _), _ -> point_ns
  | (Lrange _ | Hgetall _), Values vs -> point_ns + (250 * List.length vs)
  | (Lrange _ | Hgetall _), _ -> point_ns
  | (Put _ | Del _ | Lpush _ | Rpush _ | Hset _ | Sadd _ | Srem _), _ ->
      write_ns
