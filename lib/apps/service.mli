(** The synthetic service of §7: configurable CPU service time, request and
    reply sizes, and read-only fraction. Used by every microbenchmark to
    exercise one bottleneck at a time. *)

open Hovercraft_sim

type spec = {
  service : Dist.t;  (** CPU execution time distribution. *)
  req_bytes : int;
  rep_bytes : int;
  read_fraction : float;  (** Probability a request is read-only. *)
}

val spec :
  ?service:Dist.t ->
  ?req_bytes:int ->
  ?rep_bytes:int ->
  ?read_fraction:float ->
  unit ->
  spec
(** Defaults are the paper's baseline microbenchmark: S = 1 µs fixed,
    24-byte requests, 8-byte replies, no read-only operations. *)

val sample : spec -> Rng.t -> Op.t
(** Draw one operation. *)

val pp_spec : Format.formatter -> spec -> unit

(** {1 Snapshottable state machines}

    What the snapshot subsystem requires of a replicated service: cut a
    detached image of the applied state, install one in place, and
    estimate its serialized size (which drives chunked transfer). The
    synthetic service's replicated state is its write digest; it is
    checkpointed through {!Machine} (i.e. {!Op}'s whole-machine image,
    which carries the digest alongside the kv store). *)

module type Snapshottable = sig
  type state
  type image

  val snapshot : state -> image
  val install : state -> image -> unit
  val image_bytes : image -> int
end

module Machine : Snapshottable with type state = Op.state and type image = Op.image
(** The full replica state machine (synthetic digest + kv store): this is
    what HovercRaft checkpoints and ships. *)

module Store : Snapshottable with type state := Kvstore.t and type image := Kvstore.image
(** The kv store alone, for direct store-level tests. *)
