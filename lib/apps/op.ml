open Hovercraft_sim

type t =
  | Nop
  | Synth of {
      cost : Timebase.t;
      read_only : bool;
      req_bytes : int;
      rep_bytes : int;
    }
  | Kv of Kvstore.cmd
  | Merge of { chunk : Kvstore.image; completions : completion list }
  | Prune of { slots : int; drop : int list }

and result = Done | Kv_reply of Kvstore.reply

and completion = {
  c_rid : Hovercraft_r2p2.R2p2.req_id;
  c_result : result;
  c_at : Timebase.t;
}

(* Roughly a rid triple + result + timestamp on the wire; matches the
   snapshot subsystem's per-record accounting. *)
let completion_wire_bytes = 40

type state = {
  kv : Kvstore.t;
  mutable applied : int;
  mutable rw_ops : int;
  mutable synth_digest : int;
}

let create_state () =
  { kv = Kvstore.create (); applied = 0; rw_ops = 0; synth_digest = 0 }

let apply state op =
  state.applied <- state.applied + 1;
  match op with
  | Nop -> (Done, 100)
  | Synth { cost; read_only; _ } ->
      (* Writes perturb a digest so replica divergence is detectable even
         for the synthetic service. The digest folds in the write ordinal
         (not the execution counter — read-only executions are per-replica,
         §3.5). *)
      if not read_only then begin
        state.rw_ops <- state.rw_ops + 1;
        state.synth_digest <- (state.synth_digest * 31) + state.rw_ops
      end;
      (Done, cost)
  | Kv cmd ->
      let reply = Kvstore.execute state.kv cmd in
      (Kv_reply reply, Kvstore.cost_ns cmd reply)
  | Merge { chunk; _ } ->
      (* The sub-range lands in the store wholesale; cost scales with the
         image (a memcpy-rate install, not per-command execution). The
         carried completion records are seeded by the SMR layer, which
         owns the completion table. *)
      Kvstore.merge state.kv chunk;
      (Done, 2_000 + (Kvstore.image_bytes chunk / 16))
  | Prune { slots; drop } ->
      let removed =
        Kvstore.prune state.kv ~keep:(fun k ->
            not (List.mem (Kvstore.slot_of_key ~slots k) drop))
      in
      (Done, 2_000 + (1_000 * removed))

let read_only = function
  | Nop -> true
  | Synth { read_only; _ } -> read_only
  | Kv cmd -> Kvstore.is_read_only cmd
  | Merge _ | Prune _ -> false

let key = function
  | Kv cmd -> Kvstore.key_of cmd
  | Nop | Synth _ | Merge _ | Prune _ -> None

(* The conflict relation for parallel apply: two operations commute unless
   their footprints intersect. Keyed store commands touch exactly their
   key (Insert/Scan touch the thread-prefixed range, which key_of already
   names); read-only synthetics and no-ops touch nothing; everything that
   mutates cross-key state — the synthetic service's shared digest, the
   migration bulk ops — touches the whole machine and must serialize
   against every thread. *)
type footprint = Fp_none | Fp_key of string | Fp_global

let footprint = function
  | Nop -> Fp_none
  | Synth { read_only; _ } -> if read_only then Fp_none else Fp_global
  | Kv cmd -> (
      match Kvstore.key_of cmd with Some k -> Fp_key k | None -> Fp_none)
  | Merge _ | Prune _ -> Fp_global

let request_bytes = function
  | Nop -> 8
  | Synth { req_bytes; _ } -> req_bytes
  | Kv cmd -> Kvstore.cmd_bytes cmd
  | Merge { completions; _ } ->
      (* The bulk image was pre-staged at the target group by the chunked
         snapshot transfer (Shard migration); the ordered entry carries
         only the handle and the completion records. *)
      64 + (completion_wire_bytes * List.length completions)
  | Prune { drop; _ } -> 24 + (8 * List.length drop)

let reply_bytes op result =
  match (op, result) with
  | Synth { rep_bytes; _ }, _ -> rep_bytes
  | _, Kv_reply r -> Kvstore.reply_bytes r
  | (Nop | Kv _ | Merge _ | Prune _), Done -> 8

let executed state = state.applied

(* --- snapshots --- *)

type image = {
  im_kv : Kvstore.image;
  im_applied : int;
  im_rw_ops : int;
  im_synth_digest : int;
}

let snapshot state =
  {
    im_kv = Kvstore.snapshot state.kv;
    im_applied = state.applied;
    im_rw_ops = state.rw_ops;
    im_synth_digest = state.synth_digest;
  }

let install state img =
  Kvstore.install state.kv img.im_kv;
  state.applied <- img.im_applied;
  state.rw_ops <- img.im_rw_ops;
  state.synth_digest <- img.im_synth_digest

let image_bytes img = 32 + Kvstore.image_bytes img.im_kv

let extract_kv state ~keep = Kvstore.extract state.kv ~keep

(* Deliberately excludes the execution counter: read-only operations run on
   a single replica (§3.5), so replicas agree on state, not on how many
   operations they executed. *)
let fingerprint state =
  Hashtbl.hash (state.synth_digest, Kvstore.fingerprint state.kv)

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Synth { cost; read_only; req_bytes; rep_bytes } ->
      Format.fprintf fmt "synth(cost=%a,%s,req=%dB,rep=%dB)" Timebase.pp cost
        (if read_only then "ro" else "rw")
        req_bytes rep_bytes
  | Kv _ -> Format.pp_print_string fmt "kv"
  | Merge { chunk; completions } ->
      Format.fprintf fmt "merge(%dB,%d recs)" (Kvstore.image_bytes chunk)
        (List.length completions)
  | Prune { drop; _ } -> Format.fprintf fmt "prune(%d slots)" (List.length drop)
