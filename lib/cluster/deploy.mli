(** Builds a complete simulated deployment: the fabric, the cluster nodes
    in one of the four modes, and (as required by the mode) the in-network
    aggregator and the flow-control middlebox. Also the fault-injection
    and membership-change surface used by the failure, chaos and
    reconfiguration experiments. *)

open Hovercraft_sim
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric

(** Everything needed to stand up a cluster, in one value. Build it with
    the {!config} smart constructor (which validates), not by record
    literal; tweak individual knobs afterwards with [{ cfg with ... }]. *)
type config = {
  fabric_latency : Timebase.t;
      (** One-way wire latency between any two fabric ports. *)
  flow_cap : int option;
      (** Attach the flow-control middlebox with this in-flight cap
          (HovercRaft's switch-based flow control); [None] = no box. *)
  router_bound : int option;
      (** Attach the JBSQ router for unrestricted reads with this
          per-server bound; [None] = no router. *)
  switch_gbps : float;  (** Link rate of every middlebox port. *)
  trace : Hovercraft_obs.Trace.t option;
      (** Shared trace ring; [None] = the deployment creates its own. *)
  engine : Engine.t option;
      (** Share an existing event engine instead of creating a fresh one;
          how a sharded deployment co-schedules several Raft groups in one
          simulated timeline. [None] = classic one-engine-per-deployment. *)
  bootstrap : int;
      (** Node id that opens the first election (default 0). Staggering
          this across co-located groups spreads initial leaders over
          distinct hosts. *)
  params : Hnode.params;  (** Per-node parameters (mode, n, costs, timers). *)
}

val config :
  ?fabric_latency:Timebase.t ->
  ?flow_cap:int ->
  ?router_bound:int ->
  ?switch_gbps:float ->
  ?trace:Hovercraft_obs.Trace.t ->
  ?engine:Engine.t ->
  ?bootstrap:int ->
  ?backend:Hnode.backend ->
  Hnode.params ->
  config
(** [config params] builds a validated deployment config. Defaults: 1 us
    fabric latency, 100 Gbps middlebox links, no flow control, no router,
    fresh trace, fresh engine, bootstrap node 0. [backend] overrides
    [params.backend] before validation, so backend-inapplicable knob
    combinations (e.g. [Rabia] with any mode but [Hover], or with leader
    leases) are rejected here. Raises [Invalid_argument] on nonsensical
    values (negative latency, non-positive rates or caps, a bootstrap id
    outside the initial membership) and re-validates [params]. *)

type t = {
  engine : Engine.t;
  fabric : Protocol.payload Fabric.t;
  mutable nodes : Hnode.t array;
      (** Index = node id. Grows on {!add_node}; removed nodes stay in
          place, dead, so ids are never reused. *)
  aggregator : Aggregator.t option;  (** Present in HovercRaft++ mode. *)
  flow : Flow_control.t option;  (** Present when [flow_cap] was given. *)
  router : Router.t option;  (** Present when [router_bound] was given. *)
  params : Hnode.params;
  cfg : config;  (** The config this deployment was built from. *)
  trace : Hovercraft_obs.Trace.t;
      (** Shared by all nodes: one cluster-wide event timeline. *)
  removed : (int, unit) Hashtbl.t;
      (** Fully decommissioned node ids; see {!is_removed}. *)
  mutable last_leader : int option;
      (** Most recent node {!leader} observed leading; lets failure
          injection target "the leader" even mid-election. *)
}

val followers_group : int
(** Multicast group id the aggregator manages (all nodes minus leader). *)

val create : config -> t
(** Build the deployment. The [bootstrap] node is elected initial leader and
    the engine is advanced (a few simulated ms) until leadership and — for
    HovercRaft++ — the aggregator handshake are established, so callers
    start from a quiesced cluster at a well-defined simulated time. *)

val leader : t -> Hnode.t option
(** The current leader among live nodes, if any. *)

val live_nodes : t -> Hnode.t list

val client_target : t -> Addr.t
(** Where clients address their requests in this deployment: the leader
    for unreplicated/VanillaRaft, the flow-control middlebox when present,
    the cluster multicast group otherwise. Leaderless (mid-election)
    unicast deployments fall back to a live node's leader hint, else any
    live node — never a dead port. *)

val total_replies : t -> int
val total_executed : t -> int

val consistent : t -> bool
(** All live replicas' application fingerprints agree (replicas may lag;
    this drains nothing — call after quiescing). *)

val quiesce : t -> ?extra:Timebase.t -> unit -> unit
(** Run the engine forward with no client load so in-flight replication,
    application, recoveries and reconfigurations drain. *)

val kill_node : t -> int -> unit

val restart_node : t -> int -> unit
(** Bring a killed node back as a follower ({!Hnode.restart}): it rejoins
    the fabric and catches up from its surviving log. *)

val kill_leader : t -> int option
(** Kill the current leader; returns its id. Called mid-election (no
    current leader) it kills the last-known leader instead — or, if that
    node is already dead, the live node with the highest term — so that
    failure experiments cannot silently run with zero faults injected.
    [None] only when no node is left alive. *)

val is_removed : t -> int -> bool
(** True once [remove_node i] fully decommissioned node [i]: it is out of
    the configuration for good and must never be restarted. *)

val add_node : t -> int
(** Grow the cluster by one voter. Creates a fresh node under the next
    unused id, joins it to the fabric, and starts an engine-driven loop
    that re-proposes the configuration change through whichever node
    currently leads until the addition lands (a single proposal can be
    lost to a leader change, a partition, or the one-change-at-a-time
    rule). Returns the new node's id immediately; the membership change
    completes asynchronously as the engine runs. When the leader holds a
    snapshot, the newcomer catches up by installing the image rather than
    replaying history — the leader need not retain any entry below its
    compaction base on its behalf. *)

val remove_node : t -> int -> unit
(** Shrink the cluster by one voter. The leader itself is a valid target:
    it keeps leading until the entry commits, then steps down (Raft
    §4.2.2). Drives the proposal like {!add_node}; once the leader has
    applied the removal the node is killed if it did not already halt
    itself — effective-on-append means a removed follower may never see
    the entry, and this decommission closes that zombie window. *)

val transfer_leadership : t -> target:int -> unit
(** Ask the current leader to hand off to [target] (no-op if leaderless or
    [target] already leads). Completion is asynchronous: the leader
    freezes client commands, catches the target up, sends TimeoutNow, and
    the target starts an immediate election. *)

val total_pending_recoveries : t -> int
(** Bodies the cluster is still trying to recover; zero after a clean
    quiesce — a stuck rid here is exactly the wedge the recovery
    escalation path exists to prevent. *)

val trace : t -> Hovercraft_obs.Trace.t

val snapshot : t -> Hovercraft_obs.Json.t
(** Cluster-wide roll-up: per-node {!Hnode.snapshot}s, membership
    ([voters] / [config_index] / [last_transfer] from the leader's applied
    view), per-link fabric counters and the shared trace ring. *)
