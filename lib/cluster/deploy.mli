(** Builds a complete simulated deployment: the fabric, the cluster nodes
    in one of the four modes, and (as required by the mode) the in-network
    aggregator and the flow-control middlebox. *)

open Hovercraft_sim
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric

type t = {
  engine : Engine.t;
  fabric : Protocol.payload Fabric.t;
  nodes : Hnode.t array;
  aggregator : Aggregator.t option;  (** Present in HovercRaft++ mode. *)
  flow : Flow_control.t option;  (** Present when [flow_cap] was given. *)
  router : Router.t option;  (** Present when [router_bound] was given. *)
  params : Hnode.params;
  trace : Hovercraft_obs.Trace.t;
      (** Shared by all nodes: one cluster-wide event timeline. *)
  mutable last_leader : int option;
      (** Most recent node {!leader} observed leading; lets failure
          injection target "the leader" even mid-election. *)
}

val followers_group : int
(** Multicast group id the aggregator manages (all nodes minus leader). *)

val create :
  ?fabric_latency:Timebase.t ->
  ?flow_cap:int ->
  ?router_bound:int ->
  ?switch_gbps:float ->
  ?trace:Hovercraft_obs.Trace.t ->
  Hnode.params ->
  t
(** Build the deployment. Node 0 is bootstrapped as the initial leader and
    the engine is advanced (a few simulated ms) until leadership and — for
    HovercRaft++ — the aggregator handshake are established, so callers
    start from a quiesced cluster at a well-defined simulated time. *)

val leader : t -> Hnode.t option
(** The current leader among live nodes, if any. *)

val live_nodes : t -> Hnode.t list

val client_target : t -> Addr.t
(** Where clients address their requests in this deployment: the leader
    for unreplicated/VanillaRaft, the flow-control middlebox when present,
    the cluster multicast group otherwise. Leaderless (mid-election)
    unicast deployments fall back to a live node's leader hint, else any
    live node — never a dead port. *)

val total_replies : t -> int
val total_executed : t -> int

val consistent : t -> bool
(** All live replicas' application fingerprints agree (replicas may lag;
    this drains nothing — call after quiescing). *)

val quiesce : t -> ?extra:Timebase.t -> unit -> unit
(** Run the engine forward with no client load so in-flight replication
    and application drain. *)

val kill_node : t -> int -> unit

val restart_node : t -> int -> unit
(** Bring a killed node back as a follower ({!Hnode.restart}): it rejoins
    the fabric and catches up from its surviving log. *)

val kill_leader : t -> int option
(** Kill the current leader; returns its id. Called mid-election (no
    current leader) it kills the last-known leader instead — or, if that
    node is already dead, the live node with the highest term — so that
    failure experiments cannot silently run with zero faults injected.
    [None] only when no node is left alive. *)

val total_pending_recoveries : t -> int
(** Bodies the cluster is still trying to recover; zero after a clean
    quiesce — a stuck rid here is exactly the wedge the recovery
    escalation path exists to prevent. *)

val trace : t -> Hovercraft_obs.Trace.t

val snapshot : t -> Hovercraft_obs.Json.t
(** Cluster-wide roll-up: per-node {!Hnode.snapshot}s, per-link fabric
    counters and the shared trace ring. *)
