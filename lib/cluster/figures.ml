open Hovercraft_sim
open Hovercraft_core
module Service = Hovercraft_apps.Service
module Ycsb = Hovercraft_apps.Ycsb
module Jbsq = Hovercraft_r2p2.Jbsq
module Fabric = Hovercraft_net.Fabric

type quality = Experiment.quality

let slo = Timebase.us 500

let section title =
  Printf.printf "\n=== %s ===\n%!" title

let baseline_spec = Service.spec ()
(* S = 1 us fixed, 24-byte requests, 8-byte replies: the baseline
   microbenchmark of §7.1. *)

(* One-knob tweaks on the nested defaults. *)
let with_features p f = { p with Hnode.features = f p.Hnode.features }

let synth_setup ?(reply_lb = false) ?spec ~mode ~n ?(lb_policy = Jbsq.Jbsq)
    ?(bound = 128) () =
  let params =
    with_features (Hnode.params ~mode ~n ()) (fun f ->
        { f with Hnode.reply_lb; lb_policy; bound })
  in
  let spec = Option.value spec ~default:baseline_spec in
  Experiment.setup params (Service.sample spec)

let mode_label = function
  | Hnode.Unreplicated -> "UnRep"
  | Hnode.Vanilla -> "VanillaRaft"
  | Hnode.Hover -> "HovercRaft"
  | Hnode.Hover_pp -> "HovercRaft++"

(* ------------------------------------------------------------------ *)

let table1 ?(quality = Experiment.Fast) () =
  ignore quality;
  section "Table 1: leader Rx/Tx messages per request (measured, N=5)";
  let n = 5 in
  let measure mode =
    let params =
      with_features (Hnode.params ~mode ~n ()) (fun f ->
          {
            f with
            Hnode.reply_lb = (mode <> Hnode.Vanilla);
            (* Count protocol messages only: the commit-hint optimization
               would otherwise add traffic the paper's Table 1 does not
               model. *)
            eager_commit_notify = false;
          })
    in
    let deploy = Deploy.create (Deploy.config params) in
    let engine = deploy.Deploy.engine in
    let gen =
      Loadgen.create deploy ~clients:4 ~rate_rps:10_000.
        ~workload:(Service.sample baseline_spec) ~seed:5 ()
    in
    let warmup = Timebase.ms 20 and duration = Timebase.ms 220 in
    let now0 = Engine.now engine in
    let leader = Option.get (Deploy.leader deploy) in
    let port = Hnode.port leader in
    let rx1 = ref 0 and tx1 = ref 0 and rx2 = ref 0 and tx2 = ref 0 in
    Engine.at engine (now0 + warmup) (fun () ->
        rx1 := Fabric.rx_packets port;
        tx1 := Fabric.tx_packets port);
    Engine.at engine (now0 + duration) (fun () ->
        rx2 := Fabric.rx_packets port;
        tx2 := Fabric.tx_packets port);
    let report = Loadgen.run gen ~warmup ~duration () in
    let per x = float_of_int x /. float_of_int (max report.Loadgen.completed 1) in
    (per (!rx2 - !rx1), per (!tx2 - !tx1))
  in
  let analytic = function
    | Hnode.Vanilla ->
        (Printf.sprintf "1+(N-1) = %d" n, Printf.sprintf "(N-1)+1 = %d" n)
    | Hnode.Hover ->
        ( Printf.sprintf "1+(N-1) = %d" n,
          Printf.sprintf "(N-1)+1/N = %.1f" (float_of_int (n - 1) +. (1. /. float_of_int n)) )
    | Hnode.Hover_pp ->
        ("1+1 = 2", Printf.sprintf "1+1/N = %.1f" (1. +. (1. /. float_of_int n)))
    | Hnode.Unreplicated -> ("1", "1")
  in
  let rows =
    List.map
      (fun mode ->
        let rx, tx = measure mode in
        let arx, atx = analytic mode in
        [
          mode_label mode;
          Printf.sprintf "%.2f" rx;
          arx;
          Printf.sprintf "%.2f" tx;
          atx;
        ])
      [ Hnode.Vanilla; Hnode.Hover; Hnode.Hover_pp ]
  in
  Table.print
    ~header:[ "system"; "rx/req (meas)"; "rx (paper)"; "tx/req (meas)"; "tx (paper)" ]
    rows;
  print_string
    "(measured at 10 kRPS so append_entries are unbatched; heartbeats and\n\
    \ election-clock traffic are included, hence the small excess)\n"

(* ------------------------------------------------------------------ *)

let fig7 ?(quality = Experiment.Fast) () =
  section
    "Figure 7: p99 latency vs throughput (S=1us, 24B req / 8B reply, N=3)";
  let setups =
    [
      (Hnode.Unreplicated, synth_setup ~mode:Hnode.Unreplicated ~n:1 ());
      (Hnode.Vanilla, synth_setup ~mode:Hnode.Vanilla ~n:3 ());
      (Hnode.Hover, synth_setup ~mode:Hnode.Hover ~n:3 ());
      (Hnode.Hover_pp, synth_setup ~mode:Hnode.Hover_pp ~n:3 ());
    ]
  in
  let loads =
    [ 100_000.; 300_000.; 500_000.; 700_000.; 850_000.; 900_000.; 930_000. ]
  in
  let rows =
    List.map
      (fun rate ->
        Table.fmt_krps rate
        :: List.map
             (fun (_, s) ->
               let r = Experiment.run_point ~quality s ~rate_rps:rate in
               Table.fmt_us r.Loadgen.p99_us)
             setups)
      loads
  in
  Table.print
    ~header:("load kRPS" :: List.map (fun (m, _) -> mode_label m ^ " p99us") setups)
    rows;
  List.iter
    (fun (m, s) ->
      let k = Experiment.max_under_slo ~quality ~slo s in
      Printf.printf "  %-13s max under 500us SLO: %s kRPS\n%!" (mode_label m)
        (Table.fmt_krps k))
    setups

(* ------------------------------------------------------------------ *)

let fig8 ?(quality = Experiment.Fast) () =
  section "Figure 8: kRPS under 500us SLO vs request size (S=1us, N=3)";
  let sizes = [ 24; 64; 512 ] in
  let rows =
    List.map
      (fun mode ->
        let n = if mode = Hnode.Unreplicated then 1 else 3 in
        mode_label mode
        :: List.map
             (fun req_bytes ->
               let spec = Service.spec ~req_bytes () in
               let s = synth_setup ~spec ~mode ~n () in
               Table.fmt_krps (Experiment.max_under_slo ~quality ~slo s))
             sizes)
      [ Hnode.Unreplicated; Hnode.Vanilla; Hnode.Hover; Hnode.Hover_pp ]
  in
  Table.print
    ~header:
      ("system" :: List.map (fun b -> Printf.sprintf "%dB kRPS" b) sizes)
    rows

(* ------------------------------------------------------------------ *)

let fig9 ?(quality = Experiment.Fast) () =
  section "Figure 9: kRPS under 500us SLO vs cluster size (S=1us, 24B/8B)";
  let cluster_sizes = [ 3; 5; 7; 9 ] in
  let rows =
    List.map
      (fun mode ->
        mode_label mode
        :: List.map
             (fun n ->
               let s = synth_setup ~mode ~n () in
               Table.fmt_krps (Experiment.max_under_slo ~quality ~slo s))
             cluster_sizes)
      [ Hnode.Vanilla; Hnode.Hover; Hnode.Hover_pp ]
  in
  Table.print
    ~header:("system" :: List.map (fun n -> Printf.sprintf "N=%d kRPS" n) cluster_sizes)
    rows

(* ------------------------------------------------------------------ *)

let fig10 ?(quality = Experiment.Fast) () =
  section "Figure 10: 6kB replies, reply load balancing (S=1us, 24B req)";
  let spec = Service.spec ~rep_bytes:6000 () in
  let setups =
    [
      ("UnRep", synth_setup ~spec ~mode:Hnode.Unreplicated ~n:1 ());
      ("N=3", synth_setup ~spec ~reply_lb:true ~mode:Hnode.Hover_pp ~n:3 ());
      ("N=5", synth_setup ~spec ~reply_lb:true ~mode:Hnode.Hover_pp ~n:5 ());
    ]
  in
  let loads = [ 100_000.; 150_000.; 190_000.; 300_000.; 450_000.; 550_000.; 650_000. ] in
  let rows =
    List.map
      (fun rate ->
        Table.fmt_krps rate
        :: List.map
             (fun (_, s) ->
               let r = Experiment.run_point ~quality s ~rate_rps:rate in
               if r.Loadgen.goodput_rps < 0.9 *. rate then "-"
               else Table.fmt_us r.Loadgen.p99_us)
             setups)
      loads
  in
  Table.print
    ~header:("load kRPS" :: List.map (fun (l, _) -> l ^ " p99us") setups)
    rows;
  List.iter
    (fun (l, s) ->
      let k = Experiment.max_under_slo ~quality ~slo s in
      Printf.printf "  %-5s max under SLO: %s kRPS\n%!" l (Table.fmt_krps k))
    setups;
  print_string "('-' marks loads beyond the configuration's capacity)\n"

(* ------------------------------------------------------------------ *)

let bimodal_spec =
  Service.spec
    ~service:(Dist.Bimodal { mean = Timebase.us 10; long_fraction = 0.1; ratio = 10. })
    ~read_fraction:0.75 ()

let fig11 ?(quality = Experiment.Fast) () =
  section
    "Figure 11: bimodal S=10us, 75% read-only, N=3: JBSQ vs RANDOM repliers";
  let setups =
    [
      ("UnRep", synth_setup ~spec:bimodal_spec ~mode:Hnode.Unreplicated ~n:1 ());
      ( "Hover++ JBSQ",
        synth_setup ~spec:bimodal_spec ~reply_lb:true ~mode:Hnode.Hover_pp ~n:3
          ~lb_policy:Jbsq.Jbsq ~bound:32 () );
      ( "Hover++ RAND",
        synth_setup ~spec:bimodal_spec ~reply_lb:true ~mode:Hnode.Hover_pp ~n:3
          ~lb_policy:Jbsq.Random_choice ~bound:32 () );
    ]
  in
  let loads = [ 25_000.; 50_000.; 75_000.; 100_000.; 125_000.; 150_000.; 165_000. ] in
  let rows =
    List.map
      (fun rate ->
        Table.fmt_krps rate
        :: List.map
             (fun (_, s) ->
               let r = Experiment.run_point ~quality s ~rate_rps:rate in
               if r.Loadgen.goodput_rps < 0.9 *. rate then "-"
               else Table.fmt_us r.Loadgen.p99_us)
             setups)
      loads
  in
  Table.print
    ~header:("load kRPS" :: List.map (fun (l, _) -> l ^ " p99us") setups)
    rows;
  List.iter
    (fun (l, s) ->
      let k = Experiment.max_under_slo ~quality ~slo s in
      Printf.printf "  %-13s max under SLO: %s kRPS\n%!" l (Table.fmt_krps k))
    setups

(* ------------------------------------------------------------------ *)

let fig12 ?(quality = Experiment.Fast) () =
  ignore quality;
  section
    "Figure 12: leader failure under fixed load (bimodal S=10us, 75% RO,\n\
    \    HovercRaft++ N=3, flow-control cap 1000, load 165 kRPS)";
  let rng_spec = bimodal_spec in
  let outcome =
    Failure.run
      ~params:
        (with_features (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()) (fun f ->
             { f with Hnode.reply_lb = true; bound = 32; flow_control = true }))
      ~rate_rps:165_000. ~flow_cap:1000 ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.s 2) ~kill_after:(Timebase.ms 600)
      ~workload:(Service.sample rng_spec) ~seed:31 ()
  in
  let rows =
    List.map
      (fun (b : Failure.bucket) ->
        [
          Printf.sprintf "%.1f" b.t_s;
          Printf.sprintf "%.1f" b.krps;
          (match b.p99_us with Some v -> Table.fmt_us v | None -> "-");
          string_of_int b.nacks;
        ])
      outcome.series
  in
  Table.print ~header:[ "t (s)"; "kRPS"; "p99 us"; "NACKs" ] rows;
  Printf.printf
    "  leader (node %s) killed at t=%.1fs; new leader: node %s; total NACKed: \
     %d; replicas consistent after drain: %b\n%!"
    (match outcome.killed_node with Some i -> string_of_int i | None -> "?")
    outcome.killed_at_s
    (match outcome.new_leader with Some i -> string_of_int i | None -> "?")
    outcome.total_nacked outcome.consistent

(* ------------------------------------------------------------------ *)

let ycsb_setup ~mode ~n ~seed =
  let params =
    with_features (Hnode.params ~mode ~n ()) (fun f ->
        { f with Hnode.reply_lb = true })
  in
  let gen = Ycsb.create ~seed () in
  let preload = Ycsb.preload_ops gen 20_000 in
  Experiment.setup ~preload params (fun _ -> Ycsb.next gen)

let fig13 ?(quality = Experiment.Fast) () =
  section "Figure 13: YCSB-E (95% SCAN / 5% INSERT) on the Redis-like store";
  let knee label s =
    let k = Experiment.max_under_slo ~quality ~slo ~lo:2_000. s in
    Printf.printf "  %-6s max under 500us SLO: %s kRPS\n%!" label
      (Table.fmt_krps k);
    k
  in
  let setups =
    [
      ("UnRep", fun () -> ycsb_setup ~mode:Hnode.Unreplicated ~n:1 ~seed:99);
      ("N=3", fun () -> ycsb_setup ~mode:Hnode.Hover_pp ~n:3 ~seed:99);
      ("N=5", fun () -> ycsb_setup ~mode:Hnode.Hover_pp ~n:5 ~seed:99);
      ("N=7", fun () -> ycsb_setup ~mode:Hnode.Hover_pp ~n:7 ~seed:99);
    ]
  in
  let loads = [ 10_000.; 25_000.; 50_000.; 90_000.; 130_000. ] in
  let rows =
    List.map
      (fun rate ->
        Table.fmt_krps rate
        :: List.map
             (fun (_, mk) ->
               let r = Experiment.run_point ~quality (mk ()) ~rate_rps:rate in
               if r.Loadgen.goodput_rps < 0.9 *. rate then "-"
               else Table.fmt_us r.Loadgen.p99_us)
             setups)
      loads
  in
  Table.print
    ~header:("load kRPS" :: List.map (fun (l, _) -> l ^ " p99us") setups)
    rows;
  let knees = List.map (fun (l, mk) -> (l, knee l (mk ()))) setups in
  match (List.assoc_opt "UnRep" knees, List.assoc_opt "N=7" knees) with
  | Some base, Some top when base > 0. ->
      Printf.printf "  speedup N=7 over UnRep: %.1fx (paper: 4x)\n%!" (top /. base)
  | _ -> ()

(* ------------------------------------------------------------------ *)

let all ?(quality = Experiment.Fast) () =
  table1 ~quality ();
  fig7 ~quality ();
  fig8 ~quality ();
  fig9 ~quality ();
  fig10 ~quality ();
  fig11 ~quality ();
  fig12 ~quality ();
  fig13 ~quality ()

let ablations ?(quality = Experiment.Fast) () = Ablations.all ~quality ()

let registry =
  [
    ("table1", table1);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("ablations", ablations);
    ("all", all);
  ]

let by_name name = List.assoc_opt name registry
let names = List.map fst registry
