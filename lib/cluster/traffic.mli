(** Time-varying offered-load schedules.

    A profile is a piecewise-linear curve of offered rate (RPS) over time
    relative to the start of a load run: flat before the first control
    point, linearly interpolated between points, flat after the last.
    Diurnal ramps, flash crowds and drain-downs are all a handful of
    control points. Load generators consult {!rate_at} per arrival, so a
    run without a profile never touches this module — constant-rate runs
    stay byte-identical to the pre-schedule code path. *)

open Hovercraft_sim

type profile

val profile : (Timebase.t * float) list -> profile
(** Control points [(time since run start, rate in RPS)], sorted by
    time. Raises [Invalid_argument] on an empty or unsorted list, a
    negative time, or a non-positive rate. *)

val constant : float -> profile
(** A flat profile — equivalent to running without one. *)

val rate_at : profile -> Timebase.t -> float
(** Offered rate at [t] (time since the run started). *)

val peak : profile -> float
(** The highest control-point rate (the interpolant never exceeds it). *)

val mean_over : profile -> duration:Timebase.t -> float
(** Time-averaged rate over [0, duration] — what a run of that length
    actually offers, for goodput accounting. *)
