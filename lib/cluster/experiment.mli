(** Experiment drivers: single load points, latency-throughput curves, and
    the max-throughput-under-SLO search used throughout §7. *)

open Hovercraft_sim
open Hovercraft_core

type workload = Rng.t -> Hovercraft_apps.Op.t

type setup = {
  params : Hnode.params;
  workload : workload;
  preload : Hovercraft_apps.Op.t list;  (** Applied to every replica first. *)
  clients : int;
  flow_cap : int option;
  seed : int;
}

val setup :
  ?clients:int ->
  ?flow_cap:int ->
  ?preload:Hovercraft_apps.Op.t list ->
  ?seed:int ->
  Hnode.params ->
  workload ->
  setup

(** Simulated measurement sizing. [Fast] keeps curves cheap to regenerate;
    [Full] runs longer windows for smoother tails. *)
type quality = Fast | Full

val run_point :
  ?quality:quality -> setup -> rate_rps:float -> Loadgen.report
(** Build a fresh deployment, apply preload, drive [rate_rps] through it
    and report. Deterministic for a given setup/rate/quality. *)

val latency_curve :
  ?quality:quality -> setup -> rates:float list -> (float * Loadgen.report) list
(** One [run_point] per offered rate. *)

val max_under_slo :
  ?quality:quality ->
  ?slo:Timebase.t ->
  ?lo:float ->
  ?hi:float ->
  setup ->
  float
(** Maximum offered load (RPS) whose p99 stays within [slo] (default
    500 µs) and that the system actually sustains (goodput within 3% of
    offered, no losses). Geometric bracketing followed by bisection;
    search range [lo, hi] in RPS. *)

type applyscale_point = {
  threads : int;  (** K — application threads per node. *)
  knee_rps : float;  (** Max sustainable YCSB-A load under the SLO. *)
  consistent : bool;  (** Replica fingerprints agree after quiesce. *)
  stalls : int;  (** Scheduler barrier waits recorded across all nodes. *)
  confirm : Loadgen.report;  (** The fingerprint-check run, near the knee. *)
}

val applyscale :
  ?quality:quality ->
  ?threads:int list ->
  ?seed:int ->
  unit ->
  applyscale_point list
(** The parallel-apply scaling experiment: YCSB-A (write-heavy — the
    apply-loop-bound workload) against a 3-node HovercRaft group at each
    K in [threads] (default 1, 2, 4, 8), same seed throughout. For each K
    it finds the SLO knee, then re-runs just under it on a retained
    deployment to verify that every replica ends byte-identical
    ([consistent]) — the determinism proof for the dependency-aware
    scheduler — and to census the scheduler's barrier stalls. *)
