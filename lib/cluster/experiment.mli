(** Experiment drivers: single load points, latency-throughput curves, and
    the max-throughput-under-SLO search used throughout §7. *)

open Hovercraft_sim
open Hovercraft_core

type workload = Rng.t -> Hovercraft_apps.Op.t

type setup = {
  params : Hnode.params;
  workload : workload;
  preload : Hovercraft_apps.Op.t list;  (** Applied to every replica first. *)
  clients : int;
  flow_cap : int option;
  seed : int;
}

val setup :
  ?clients:int ->
  ?flow_cap:int ->
  ?preload:Hovercraft_apps.Op.t list ->
  ?seed:int ->
  Hnode.params ->
  workload ->
  setup

(** Simulated measurement sizing. [Fast] keeps curves cheap to regenerate;
    [Full] runs longer windows for smoother tails. *)
type quality = Fast | Full

val run_point :
  ?quality:quality -> setup -> rate_rps:float -> Loadgen.report
(** Build a fresh deployment, apply preload, drive [rate_rps] through it
    and report. Deterministic for a given setup/rate/quality. *)

val latency_curve :
  ?quality:quality -> setup -> rates:float list -> (float * Loadgen.report) list
(** One [run_point] per offered rate. *)

val max_under_slo :
  ?quality:quality ->
  ?slo:Timebase.t ->
  ?lo:float ->
  ?hi:float ->
  setup ->
  float
(** Maximum offered load (RPS) whose p99 stays within [slo] (default
    500 µs) and that the system actually sustains (goodput within 3% of
    offered, no losses). Geometric bracketing followed by bisection;
    search range [lo, hi] in RPS. *)

type applyscale_point = {
  threads : int;  (** K — application threads per node. *)
  knee_rps : float;  (** Max sustainable YCSB-A load under the SLO. *)
  consistent : bool;  (** Replica fingerprints agree after quiesce. *)
  stalls : int;  (** Scheduler barrier waits recorded across all nodes. *)
  confirm : Loadgen.report;  (** The fingerprint-check run, near the knee. *)
}

val applyscale :
  ?quality:quality ->
  ?net_stages:int ->
  ?threads:int list ->
  ?seed:int ->
  unit ->
  applyscale_point list
(** The parallel-apply scaling experiment: YCSB-A (write-heavy — the
    apply-loop-bound workload) against a 3-node HovercRaft group at each
    K in [threads] (default 1, 2, 4, 8), same seed throughout. For each K
    it finds the SLO knee, then re-runs just under it on a retained
    deployment to verify that every replica ends byte-identical
    ([consistent]) — the determinism proof for the dependency-aware
    scheduler — and to census the scheduler's barrier stalls.
    [net_stages] (default 1) selects the net path: rerunning at 4 shows
    how far compartmentalizing the net thread (which binds at K = 2 on
    the monolithic path) unlocks K > 2. *)

type backendscale_point = {
  backend : Hnode.backend;
  knee_rps : float;  (** Max sustainable YCSB-A load under the SLO. *)
  kill_p99_us : float;
      (** p99 of the whole faulted window (kill included, retries
          counted from first send). *)
  recovery_ms : float;
      (** Outage length: from the kill to the end of the last bucket
          whose completion rate sat below 90% of offered. *)
  consistent : bool;  (** Surviving replicas agree after quiesce. *)
  confirm : Loadgen.report;  (** The faulted fixed-rate run. *)
}

val backendscale_setup : seed:int -> backend:Hnode.backend -> setup
(** The shootout cell: 3-node HovercRaft (mode [Hover] for both
    backends — only the ordering layer differs) on 40 GbE driving
    YCSB-A. Exposed for the CI sanity check. *)

val backendscale :
  ?quality:quality -> ?seed:int -> unit -> backendscale_point list
(** The ordering-backend shootout, one point per backend (raft, then
    rabia): find each backend's SLO knee, then re-drive it at 60% of its
    own knee and kill the leader (raft) / a replica (rabia, which has
    none) mid-run. Reports the knee, the p99 across the faulted window,
    and how long completions sat below 90% of offered — the leaderless
    backend's claim is that this recovery gap collapses, at some cost in
    fault-free knee. *)

type netscale_point = {
  stages : int;  (** Net-path stage CPUs per node. *)
  knee_rps : float;  (** Max sustainable YCSB-B load under the SLO. *)
  consistent : bool;  (** Replica fingerprints agree after quiesce. *)
  stage_busy : (string * int) list;
      (** The leader's per-role busy census from the confirmation run
          ({!Hnode.stage_busy_times}); empty if no leader was live. *)
  confirm : Loadgen.report;  (** The fingerprint-check run, near the knee. *)
}

val netscale_setup : seed:int -> stages:int -> setup
(** The netscale cell: 3-node HovercRaft++ on 40 GbE driving YCSB-B,
    [net_stages = stages]. Exposed for the CI sanity check and tests
    (single {!run_point}s without the full knee search). *)

val netscale :
  ?quality:quality ->
  ?stage_counts:int list ->
  ?seed:int ->
  unit ->
  netscale_point list
(** The net-path compartmentalization experiment (ROADMAP item 1):
    YCSB-B (read-heavy — the packet-CPU-bound workload, the shardscale
    S=1 baseline cell) against a 3-node HovercRaft++ group on 40 GbE, at
    each stage count (default 1, 2, 4). For each it finds the SLO knee,
    then re-runs just under it on a retained deployment to verify
    replica agreement — the cross-stage determinism check — and to
    census where each pipeline stage spent its cycles. *)
