open Hovercraft_sim
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Trace = Hovercraft_obs.Trace
module Json = Hovercraft_obs.Json

type config = {
  fabric_latency : Timebase.t;
  flow_cap : int option;
  router_bound : int option;
  switch_gbps : float;
  trace : Trace.t option;
  engine : Engine.t option;
      (* Share an existing event engine instead of creating one: how a
         sharded deployment co-schedules several groups in one simulated
         timeline. None (the default) keeps the classic one-engine-per-
         deployment behavior. *)
  bootstrap : int;
      (* Which node opens the first election. Staggering this across
         co-located groups spreads initial leaders over distinct hosts. *)
  params : Hnode.params;
}

let config ?(fabric_latency = Timebase.us 1) ?flow_cap ?router_bound
    ?(switch_gbps = 100.) ?trace ?engine ?(bootstrap = 0) ?backend params =
  (* The backend override re-validates below: backend-inapplicable knobs
     (vanilla/hover++ modes, leader leases under rabia) are rejected here
     rather than at first use deep in a run. *)
  let params =
    match backend with
    | Some b -> { params with Hnode.backend = b }
    | None -> params
  in
  if fabric_latency < 0 then invalid_arg "Deploy.config: negative fabric latency";
  if switch_gbps <= 0. then invalid_arg "Deploy.config: switch_gbps must be positive";
  (match flow_cap with
  | Some c when c < 1 -> invalid_arg "Deploy.config: flow_cap must be >= 1"
  | Some _ | None -> ());
  (match router_bound with
  | Some b when b < 1 -> invalid_arg "Deploy.config: router_bound must be >= 1"
  | Some _ | None -> ());
  if bootstrap < 0 || bootstrap >= params.Hnode.n then
    invalid_arg "Deploy.config: bootstrap node outside the initial membership";
  Hnode.validate_params params;
  { fabric_latency; flow_cap; router_bound; switch_gbps; trace; engine;
    bootstrap; params }

type t = {
  engine : Engine.t;
  fabric : Protocol.payload Fabric.t;
  mutable nodes : Hnode.t array;
      (* Index = node id. Grows on add_node; removed nodes stay in place,
         dead, so ids are never reused. *)
  aggregator : Aggregator.t option;
  flow : Flow_control.t option;
  router : Router.t option;
  params : Hnode.params;
  cfg : config;
  trace : Trace.t;
  removed : (int, unit) Hashtbl.t;
      (* Nodes whose removal from the configuration completed: dead for
         good, never restarted by failure/chaos epilogues. *)
  mutable last_leader : int option;
}

let followers_group = 1

let leader t =
  let l =
    Array.to_seq t.nodes
    |> Seq.filter (fun n -> Hnode.alive n && Hnode.is_leader n)
    |> fun s -> Seq.uncons s |> Option.map fst
  in
  (match l with Some n -> t.last_leader <- Some (Hnode.id n) | None -> ());
  l

let live_nodes t = Array.to_list t.nodes |> List.filter Hnode.alive

let create (cfg : config) =
  let params = cfg.params in
  let engine =
    match cfg.engine with Some e -> e | None -> Engine.create ()
  in
  let fabric = Fabric.create engine ~latency:cfg.fabric_latency () in
  (* One shared ring for the whole cluster: events from every node
     interleave in simulated-time order, which is what you want when
     reading a failure timeline. *)
  let trace =
    match cfg.trace with
    | Some tr -> tr
    | None -> Trace.create ~level:Trace.Info ()
  in
  let nodes =
    Array.init params.Hnode.n (fun id ->
        Hnode.create ~trace engine fabric params ~id)
  in
  let aggregator =
    match params.Hnode.mode with
    | Hnode.Hover_pp ->
        Some
          (Aggregator.create engine fabric
             ~members:(List.init params.Hnode.n (fun i -> i))
             ~cluster_group:Addr.cluster_group ~followers_group
             ~rate_gbps:cfg.switch_gbps)
    | Hnode.Unreplicated | Hnode.Vanilla | Hnode.Hover -> None
  in
  let flow =
    match cfg.flow_cap with
    | Some cap ->
        Some
          (Flow_control.create engine fabric ~cap ~group:Addr.cluster_group
             ~rate_gbps:cfg.switch_gbps)
    | None -> None
  in
  let router =
    match cfg.router_bound with
    | Some bound ->
        Some
          (Router.create engine fabric ~n:params.Hnode.n ~bound
             ~rate_gbps:cfg.switch_gbps ())
    | None -> None
  in
  let t =
    {
      engine;
      fabric;
      nodes;
      aggregator;
      flow;
      router;
      params;
      cfg;
      trace;
      removed = Hashtbl.create 8;
      last_leader = None;
    }
  in
  (match params.Hnode.mode with
  | Hnode.Unreplicated -> ()
  | Hnode.Vanilla | Hnode.Hover | Hnode.Hover_pp ->
      Hnode.bootstrap nodes.(cfg.bootstrap);
      (* Let leadership (and the aggregator probe) settle. *)
      Engine.run ~until:(Engine.now engine + Timebase.ms 5) engine);
  t

let client_target t =
  match (t.params.Hnode.mode, t.flow) with
  | (Hnode.Unreplicated | Hnode.Vanilla), _ -> (
      match leader t with
      | Some n -> Addr.Node (Hnode.id n)
      | None -> (
          (* Leaderless (mid-election). Unicasting at a fixed node 0 would
             pour the whole blackout into a dead port whenever node 0 is
             the killed leader; follow a live node's leader hint instead,
             and failing that address any live node (a follower rejects
             the request, which at least surfaces as a visible NACK-like
             signal rather than silence). *)
          let live = live_nodes t in
          let hinted =
            List.find_map
              (fun n ->
                match Hnode.leader_hint n with
                | Some l
                  when l >= 0
                       && l < Array.length t.nodes
                       && Hnode.alive t.nodes.(l) ->
                    Some (Addr.Node l)
                | Some _ | None -> None)
              live
          in
          match (hinted, live) with
          | Some a, _ -> a
          | None, n :: _ -> Addr.Node (Hnode.id n)
          | None, [] -> Addr.Node 0))
  | (Hnode.Hover | Hnode.Hover_pp), Some _ -> Addr.Middlebox
  | (Hnode.Hover | Hnode.Hover_pp), None -> Addr.Group Addr.cluster_group

let total_replies t =
  Array.fold_left (fun acc n -> acc + Hnode.replies_sent n) 0 t.nodes

let total_executed t =
  Array.fold_left (fun acc n -> acc + Hnode.executed_ops n) 0 t.nodes

let consistent t =
  let live = Array.to_list t.nodes |> List.filter Hnode.alive in
  match live with
  | [] -> true
  | first :: rest ->
      let f = Hnode.app_fingerprint first in
      List.for_all (fun n -> Hnode.app_fingerprint n = f) rest

let quiesce t ?(extra = Timebase.ms 20) () =
  Engine.run ~until:(Engine.now t.engine + extra) t.engine

let kill_node t i = Hnode.kill t.nodes.(i)
let restart_node t i = Hnode.restart t.nodes.(i)
let is_removed t i = Hashtbl.mem t.removed i

let kill_leader t =
  let kill n =
    Hnode.kill n;
    Some (Hnode.id n)
  in
  match leader t with
  | Some n -> kill n
  | None -> (
      (* Mid-election there is nobody wearing the crown, but returning
         None would let a failure experiment run with zero faults
         injected. Kill the last node known to have led; if that one is
         already dead, the live node with the highest term is the most
         likely next leader. *)
      match t.last_leader with
      | Some i when Hnode.alive t.nodes.(i) -> kill t.nodes.(i)
      | Some _ | None -> (
          match
            List.sort
              (fun a b -> compare (Hnode.term b) (Hnode.term a))
              (live_nodes t)
          with
          | n :: _ -> kill n
          | [] -> None))

(* --- runtime membership changes ------------------------------------ *)

(* Reconfiguration is driven by a polling loop on the engine: a single
   proposal can be lost to a leader change, a partition, or the
   one-change-at-a-time rule, so the driver re-proposes through whoever
   currently leads until the change lands (the change itself is
   idempotent — the member list is absolute, not a delta). *)
let reconfig_poll = Timebase.us 200

let current_membership t =
  match leader t with
  | Some l -> Hnode.raft_members l
  | None -> (
      match live_nodes t with
      | n :: _ -> Hnode.raft_members n
      | [] -> List.init t.params.Hnode.n (fun i -> i))

(* Drive until every check of the current leader's *applied* view agrees
   that [id] is present/absent as requested; call [on_done] once. *)
let drive_membership t ~id ~present ~on_done =
  let rec step () =
    let continue () = Engine.after t.engine reconfig_poll step in
    match leader t with
    | None -> continue ()
    | Some l ->
        let applied_ok = List.mem id (Hnode.members l) = present in
        if applied_ok then on_done l
        else begin
          let raft_ms = Hnode.raft_members l in
          let raft_ok = List.mem id raft_ms = present in
          let change_in_flight =
            Hnode.config_index l > Hnode.commit_index l
          in
          if (not raft_ok) && not change_in_flight then begin
            let target =
              if present then List.sort_uniq compare (id :: raft_ms)
              else List.filter (fun m -> m <> id) raft_ms
            in
            if target <> [] then Hnode.propose_reconfig l ~members:target
          end;
          continue ()
        end
  in
  step ()

let add_node t =
  if t.params.Hnode.backend = Hnode.Rabia then
    invalid_arg
      "Deploy.add_node: the rabia backend is fixed-membership (no \
       leader to drive a reconfiguration)";
  let id = Array.length t.nodes in
  let members = List.sort_uniq compare (id :: current_membership t) in
  let node =
    (* Passive: the newcomer must not campaign before the add commits and
       a leader contacts it — nobody honours a non-member's votes, and
       the inflated term would depose the leader at the first contact. *)
    Hnode.create ~trace:t.trace ~members ~passive:true t.engine t.fabric
      t.params ~id
  in
  t.nodes <- Array.append t.nodes [| node |];
  drive_membership t ~id ~present:true ~on_done:(fun _ -> ());
  id

let remove_node t i =
  if t.params.Hnode.backend = Hnode.Rabia then
    invalid_arg "Deploy.remove_node: the rabia backend is fixed-membership";
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg "Deploy.remove_node: unknown node";
  (* Decommission once the removal has committed (the leader applied it):
     the node usually powers itself off when it applies its own removal,
     but effective-on-append means the leader stops replicating to it
     immediately, so a removed follower may never see the entry — it would
     sit as a zombie, timing out and requesting votes nobody honours.
     Finishing the job here closes that window. *)
  drive_membership t ~id:i ~present:false ~on_done:(fun _ ->
      Hashtbl.replace t.removed i ();
      if Hnode.alive t.nodes.(i) then Hnode.kill t.nodes.(i))

let transfer_leadership t ~target =
  if target < 0 || target >= Array.length t.nodes then
    invalid_arg "Deploy.transfer_leadership: unknown node";
  match leader t with
  | Some l when Hnode.id l <> target -> Hnode.transfer_leadership l ~target
  | Some _ | None -> ()

let total_pending_recoveries t =
  Array.fold_left (fun acc n -> acc + Hnode.pending_recoveries n) 0 t.nodes

let trace t = t.trace

let membership_snapshot t =
  let view =
    match leader t with
    | Some l -> Some l
    | None -> ( match live_nodes t with n :: _ -> Some n | [] -> None)
  in
  match view with
  | None -> Json.Null
  | Some n ->
      Json.Obj
        [
          ( "voters",
            Json.List (List.map (fun i -> Json.Int i) (Hnode.members n)) );
          ("config_index", Json.Int (Hnode.config_index n));
          ( "last_transfer",
            Json.Int
              (match Hnode.last_transfer n with Some x -> x | None -> -1) );
        ]

let snapshot t =
  Json.Obj
    [
      ("at_ns", Json.Int (Engine.now t.engine));
      ("mode", Json.String (Format.asprintf "%a" Hnode.pp_mode t.params.Hnode.mode));
      ("n", Json.Int (Array.length t.nodes));
      ( "leader",
        match leader t with
        | Some n -> Json.Int (Hnode.id n)
        | None -> Json.Null );
      ("consistent", Json.Bool (consistent t));
      ("membership", membership_snapshot t);
      ( "nodes",
        Json.List (Array.to_list (Array.map Hnode.snapshot t.nodes)) );
      ("fabric", Fabric.snapshot t.fabric);
      ("trace", Trace.snapshot t.trace);
    ]
