open Hovercraft_sim
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Trace = Hovercraft_obs.Trace
module Json = Hovercraft_obs.Json

type t = {
  engine : Engine.t;
  fabric : Protocol.payload Fabric.t;
  nodes : Hnode.t array;
  aggregator : Aggregator.t option;
  flow : Flow_control.t option;
  router : Router.t option;
  params : Hnode.params;
  trace : Trace.t;
  mutable last_leader : int option;
}

let followers_group = 1

let leader t =
  let l =
    Array.to_seq t.nodes
    |> Seq.filter (fun n -> Hnode.alive n && Hnode.is_leader n)
    |> fun s -> Seq.uncons s |> Option.map fst
  in
  (match l with Some n -> t.last_leader <- Some (Hnode.id n) | None -> ());
  l

let live_nodes t = Array.to_list t.nodes |> List.filter Hnode.alive

let create ?(fabric_latency = Timebase.us 1) ?flow_cap ?router_bound
    ?(switch_gbps = 100.) ?trace (params : Hnode.params) =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~latency:fabric_latency () in
  (* One shared ring for the whole cluster: events from every node
     interleave in simulated-time order, which is what you want when
     reading a failure timeline. *)
  let trace =
    match trace with Some tr -> tr | None -> Trace.create ~level:Trace.Info ()
  in
  let nodes =
    Array.init params.Hnode.n (fun id ->
        Hnode.create ~trace engine fabric params ~id)
  in
  let aggregator =
    match params.Hnode.mode with
    | Hnode.Hover_pp ->
        Some
          (Aggregator.create engine fabric ~n:params.Hnode.n
             ~cluster_group:Addr.cluster_group ~followers_group
             ~rate_gbps:switch_gbps)
    | Hnode.Unreplicated | Hnode.Vanilla | Hnode.Hover -> None
  in
  let flow =
    match flow_cap with
    | Some cap ->
        Some
          (Flow_control.create engine fabric ~cap ~group:Addr.cluster_group
             ~rate_gbps:switch_gbps)
    | None -> None
  in
  let router =
    match router_bound with
    | Some bound ->
        Some
          (Router.create engine fabric ~n:params.Hnode.n ~bound
             ~rate_gbps:switch_gbps ())
    | None -> None
  in
  let t =
    {
      engine;
      fabric;
      nodes;
      aggregator;
      flow;
      router;
      params;
      trace;
      last_leader = None;
    }
  in
  (match params.Hnode.mode with
  | Hnode.Unreplicated -> ()
  | Hnode.Vanilla | Hnode.Hover | Hnode.Hover_pp ->
      Hnode.bootstrap nodes.(0);
      (* Let leadership (and the aggregator probe) settle. *)
      Engine.run ~until:(Engine.now engine + Timebase.ms 5) engine);
  t

let client_target t =
  match (t.params.Hnode.mode, t.flow) with
  | (Hnode.Unreplicated | Hnode.Vanilla), _ -> (
      match leader t with
      | Some n -> Addr.Node (Hnode.id n)
      | None -> (
          (* Leaderless (mid-election). Unicasting at a fixed node 0 would
             pour the whole blackout into a dead port whenever node 0 is
             the killed leader; follow a live node's leader hint instead,
             and failing that address any live node (a follower rejects
             the request, which at least surfaces as a visible NACK-like
             signal rather than silence). *)
          let live = live_nodes t in
          let hinted =
            List.find_map
              (fun n ->
                match Hnode.leader_hint n with
                | Some l
                  when l >= 0
                       && l < Array.length t.nodes
                       && Hnode.alive t.nodes.(l) ->
                    Some (Addr.Node l)
                | Some _ | None -> None)
              live
          in
          match (hinted, live) with
          | Some a, _ -> a
          | None, n :: _ -> Addr.Node (Hnode.id n)
          | None, [] -> Addr.Node 0))
  | (Hnode.Hover | Hnode.Hover_pp), Some _ -> Addr.Middlebox
  | (Hnode.Hover | Hnode.Hover_pp), None -> Addr.Group Addr.cluster_group

let total_replies t =
  Array.fold_left (fun acc n -> acc + Hnode.replies_sent n) 0 t.nodes

let total_executed t =
  Array.fold_left (fun acc n -> acc + Hnode.executed_ops n) 0 t.nodes

let consistent t =
  let live = Array.to_list t.nodes |> List.filter Hnode.alive in
  match live with
  | [] -> true
  | first :: rest ->
      let f = Hnode.app_fingerprint first in
      List.for_all (fun n -> Hnode.app_fingerprint n = f) rest

let quiesce t ?(extra = Timebase.ms 20) () =
  Engine.run ~until:(Engine.now t.engine + extra) t.engine

let kill_node t i = Hnode.kill t.nodes.(i)
let restart_node t i = Hnode.restart t.nodes.(i)

let kill_leader t =
  let kill n =
    Hnode.kill n;
    Some (Hnode.id n)
  in
  match leader t with
  | Some n -> kill n
  | None -> (
      (* Mid-election there is nobody wearing the crown, but returning
         None would let a failure experiment run with zero faults
         injected. Kill the last node known to have led; if that one is
         already dead, the live node with the highest term is the most
         likely next leader. *)
      match t.last_leader with
      | Some i when Hnode.alive t.nodes.(i) -> kill t.nodes.(i)
      | Some _ | None -> (
          match
            List.sort
              (fun a b -> compare (Hnode.term b) (Hnode.term a))
              (live_nodes t)
          with
          | n :: _ -> kill n
          | [] -> None))

let total_pending_recoveries t =
  Array.fold_left (fun acc n -> acc + Hnode.pending_recoveries n) 0 t.nodes

let trace t = t.trace

let snapshot t =
  Json.Obj
    [
      ("at_ns", Json.Int (Engine.now t.engine));
      ("mode", Json.String (Format.asprintf "%a" Hnode.pp_mode t.params.Hnode.mode));
      ("n", Json.Int t.params.Hnode.n);
      ( "leader",
        match leader t with
        | Some n -> Json.Int (Hnode.id n)
        | None -> Json.Null );
      ("consistent", Json.Bool (consistent t));
      ( "nodes",
        Json.List (Array.to_list (Array.map Hnode.snapshot t.nodes)) );
      ("fabric", Fabric.snapshot t.fabric);
      ("trace", Trace.snapshot t.trace);
    ]
