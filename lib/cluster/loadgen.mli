(** The Lancet-equivalent load generator (§7).

    Open-loop Poisson arrivals over a pool of client endpoints; latency is
    measured on the client from request transmission to reply reception on
    the simulated clock (the analogue of Lancet's hardware timestamping).
    Samples inside the warmup window are discarded. *)

open Hovercraft_sim
module Addr = Hovercraft_net.Addr

type t

type report = {
  offered_rps : float;
  sent : int;
  completed : int;
      (** Replies to requests {e sent} inside the measurement window,
          wherever the reply lands (late replies arriving during drain
          count — excluding them would bias the tail downward). *)
  nacked : int;  (** Flow-control rejections of in-window requests. *)
  lost : int;  (** In-window requests never answered (measured at drain). *)
  goodput_rps : float;  (** Completed / measurement window. *)
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}

val create :
  Deploy.t ->
  clients:int ->
  rate_rps:float ->
  ?profile:Traffic.profile ->
  workload:(Rng.t -> Hovercraft_apps.Op.t) ->
  ?target:Addr.t ->
  ?unrestricted_reads:bool ->
  ?retry:Timebase.t * int ->
  ?on_reply:
    (rid:Hovercraft_r2p2.R2p2.req_id ->
    op:Hovercraft_apps.Op.t ->
    sent_at:Timebase.t ->
    latency:Timebase.t ->
    unit) ->
  ?on_nack:(at:Timebase.t -> unit) ->
  seed:int ->
  unit ->
  t
(** Attach [clients] endpoints to the deployment's fabric. [profile]
    makes the offered rate follow a {!Traffic.profile} (times relative to
    {!run}'s start) instead of the constant [rate_rps]; arrivals draw the
    same RNG stream either way, so a run without a profile is
    byte-identical to the pre-schedule generator, and
    [report.offered_rps] becomes the profile's time-average. [target]
    defaults to {!Deploy.client_target} evaluated per request (so vanilla
    clients follow a leader change). With [unrestricted_reads], read-only
    operations are tagged [Unrestricted] and sent to the request router
    (they bypass consensus entirely and may observe stale data, §6.1).
    [retry = (timeout, attempts)] enables
    RPC retransmission with the {e same} request id — the server side's
    completion records turn the combination into exactly-once semantics.
    The optional callbacks observe every measured completion/NACK;
    [on_reply] identifies the request (id and operation) so failure and
    chaos experiments can build a client-observed history for the
    exactly-once / committed-stays-committed checker. *)

val retried : t -> int
(** Retransmissions performed (0 without [retry]). *)

val run :
  t -> warmup:Timebase.t -> duration:Timebase.t -> ?drain:Timebase.t -> unit -> report
(** Generate load for [duration] (measuring after [warmup]), then stop
    arrivals and let the system drain before counting losses. *)

val stats : t -> Stats.t

val metrics : t -> Hovercraft_obs.Metrics.t
(** Client-side counters ([sent], [completed], [nacked], [retried],
    [lost]) and the [latency_ns] histogram of measured completions. *)

val snapshot : t -> Hovercraft_obs.Json.t
