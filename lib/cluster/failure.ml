open Hovercraft_sim
open Hovercraft_core

type bucket = {
  t_s : float;
  krps : float;
  p99_us : float option;
  nacks : int;
}

type outcome = {
  series : bucket list;
  killed_at_s : float;
  killed_node : int option;
  new_leader : int option;
  total_nacked : int;
  consistent : bool;
}

(* Union the bucket keys of both series. Iterating only the completion
   buckets (as this used to) silently dropped every NACK that landed in a
   bucket with zero completions — which is exactly the blackout window a
   failure timeline exists to show. *)
let merge_series ~bucket_width ~completions ~nacks =
  let comp = List.map (fun (b : Series.bucket) -> (b.start, b)) completions in
  let nack =
    List.map (fun (b : Series.bucket) -> (b.start, b.count)) nacks
  in
  let starts =
    List.sort_uniq compare (List.map fst comp @ List.map fst nack)
  in
  let w_s = Timebase.to_s_f bucket_width in
  List.map
    (fun start ->
      let count, p99 =
        match List.assoc_opt start comp with
        | Some b -> (b.Series.count, b.Series.p99)
        | None -> (0, None)
      in
      {
        t_s = Timebase.to_s_f start;
        krps = float_of_int count /. w_s /. 1e3;
        p99_us = Option.map Timebase.to_us_f p99;
        nacks = (match List.assoc_opt start nack with Some n -> n | None -> 0);
      })
    starts

let run ?params ?(rate_rps = 165_000.) ?(flow_cap = 1000)
    ?(bucket = Timebase.ms 100) ?(duration = Timebase.s 2)
    ?(kill_after = Timebase.ms 600) ~workload ~seed () =
  let params =
    match params with Some p -> p | None -> Hnode.params ~mode:Hnode.Hover_pp ()
  in
  let deploy = Deploy.create (Deploy.config ~flow_cap params) in
  let engine = deploy.Deploy.engine in
  let t0 = Engine.now engine in
  let completions = Series.create ~bucket () in
  let nacks = Series.create ~bucket () in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps ~workload
      ~on_reply:(fun ~rid:_ ~op:_ ~sent_at:_ ~latency ->
        Series.add completions ~at:(Engine.now engine - t0) latency)
      ~on_nack:(fun ~at -> Series.mark nacks ~at:(at - t0))
      ~seed ()
  in
  let killed = ref None in
  Engine.after engine kill_after (fun () -> killed := Deploy.kill_leader deploy);
  let report = Loadgen.run gen ~warmup:0 ~duration () in
  Deploy.quiesce deploy ();
  let series =
    merge_series ~bucket_width:bucket
      ~completions:(Series.buckets completions)
      ~nacks:(Series.buckets nacks)
  in
  {
    series;
    killed_at_s = Timebase.to_s_f kill_after;
    killed_node = !killed;
    new_leader =
      (match Deploy.leader deploy with
      | Some n -> Some (Hnode.id n)
      | None -> None);
    total_nacked = report.Loadgen.nacked;
    consistent = Deploy.consistent deploy;
  }
