open Hovercraft_sim

type profile = { points : (Timebase.t * float) array }

let profile points =
  if points = [] then invalid_arg "Traffic.profile: empty control-point list";
  List.iter
    (fun (at, r) ->
      if at < 0 then invalid_arg "Traffic.profile: negative control-point time";
      if r <= 0. then invalid_arg "Traffic.profile: rate must be positive")
    points;
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  if not (sorted points) then
    invalid_arg "Traffic.profile: control points must be sorted by time";
  { points = Array.of_list points }

let constant rate_rps = profile [ (0, rate_rps) ]

let rate_at p t =
  let pts = p.points in
  let n = Array.length pts in
  let t0, r0 = pts.(0) in
  let tn, rn = pts.(n - 1) in
  if t <= t0 then r0
  else if t >= tn then rn
  else begin
    (* Linear interpolation inside the segment containing t. *)
    let i = ref 1 in
    while fst pts.(!i) < t do incr i done;
    let ta, ra = pts.(!i - 1) and tb, rb = pts.(!i) in
    if tb = ta then rb
    else
      let f = float_of_int (t - ta) /. float_of_int (tb - ta) in
      ra +. (f *. (rb -. ra))
  end

let peak p = Array.fold_left (fun acc (_, r) -> Float.max acc r) 0. p.points

let mean_over p ~duration =
  if duration <= 0 then invalid_arg "Traffic.mean_over: non-positive duration";
  (* Trapezoid integration over the profile's segments clipped to
     [0, duration], plus the constant tails outside the control points. *)
  let pts = p.points in
  let n = Array.length pts in
  let clip t = max 0 (min duration t) in
  let area = ref 0. in
  let add ta ra tb rb =
    let a = clip ta and b = clip tb in
    if b > a then begin
      (* Rates at the clipped edges of this (linear) segment. *)
      let interp t =
        if tb = ta then rb
        else ra +. (float_of_int (t - ta) /. float_of_int (tb - ta) *. (rb -. ra))
      in
      area := !area +. ((interp a +. interp b) /. 2. *. float_of_int (b - a))
    end
  in
  let t0, r0 = pts.(0) and tn, rn = pts.(n - 1) in
  add 0 r0 t0 r0;
  for i = 1 to n - 1 do
    let ta, ra = pts.(i - 1) and tb, rb = pts.(i) in
    add ta ra tb rb
  done;
  add tn rn duration rn;
  !area /. float_of_int duration
