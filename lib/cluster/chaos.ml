open Hovercraft_sim
open Hovercraft_core
open Hovercraft_r2p2
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Rnode = Hovercraft_raft.Node
module Rlog = Hovercraft_raft.Log
module Rtypes = Hovercraft_raft.Types

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type event =
  | Kill_leader
  | Kill of int
  | Restart of int
  | Partition of int list list
  | Heal
  | Add_node
  | Remove_node of int
  | Transfer of int
  | Shard of int * event

type step = { at : Timebase.t; event : event }

let rec pp_event ppf = function
  | Kill_leader -> Format.fprintf ppf "kill-leader"
  | Kill i -> Format.fprintf ppf "kill node%d" i
  | Restart i -> Format.fprintf ppf "restart node%d" i
  | Add_node -> Format.fprintf ppf "add-node"
  | Remove_node i -> Format.fprintf ppf "remove node%d" i
  | Transfer i -> Format.fprintf ppf "transfer-leadership node%d" i
  | Partition sets ->
      Format.fprintf ppf "partition %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "|")
           (fun ppf set ->
             Format.fprintf ppf "{%a}"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
                  Format.pp_print_int)
               set))
        sets
  | Heal -> Format.fprintf ppf "heal"
  | Shard (g, e) -> Format.fprintf ppf "shard%d:%a" g pp_event e

(* Seeded schedule generator. Invariants maintained on the generator's own
   model of the cluster: at most a minority of members dead at any time (a
   quorum can always make progress once partitions heal), kills only while
   unpartitioned, membership changes (when [reconfig] is set) only while
   everything is healthy, and a cleanup tail that heals and restarts
   everything the model knows about well before [duration] so the run can
   converge. Nodes killed via [Kill_leader] are identified only at run
   time; {!run}'s epilogue restarts any node still dead. With
   [reconfig = false] (the default) the generated schedules are identical
   to what older seeds produced. *)
let single_group_schedule ~events ~reconfig ~n ~duration ~seed () =
  if n < 3 then invalid_arg "Chaos.random_schedule: need n >= 3";
  if events <= 0 then invalid_arg "Chaos.random_schedule: events must be positive";
  let rng = Rng.create (seed lxor 0xc0a5) in
  let members = ref (List.init n Fun.id) in
  let next_id = ref n in
  let max_dead () = (List.length !members - 1) / 2 in
  let dead = Hashtbl.create 8 in
  let known_dead () = List.filter (Hashtbl.mem dead) !members in
  let live_members () =
    List.filter (fun i -> not (Hashtbl.mem dead i)) !members
  in
  let anon_dead = ref 0 in
  let dead_total () = List.length (known_dead ()) + !anon_dead in
  let partitioned = ref false in
  let horizon = duration * 7 / 10 in
  let t_first = duration / 10 in
  let times =
    List.init events (fun _ -> t_first + Rng.int rng (max 1 (horizon - t_first)))
    |> List.sort compare
  in
  let pick xs = List.nth xs (Rng.int rng (List.length xs)) in
  let make_partition at =
    let ms = Array.of_list !members in
    let n = Array.length ms in
    let m = 1 + Rng.int rng (max_dead ()) in
    for i = 0 to m - 1 do
      let j = i + Rng.int rng (n - i) in
      let tmp = ms.(i) in
      ms.(i) <- ms.(j);
      ms.(j) <- tmp
    done;
    let minority = List.sort compare (Array.to_list (Array.sub ms 0 m)) in
    let majority = List.filter (fun i -> not (List.mem i minority)) !members in
    partitioned := true;
    Some { at; event = Partition [ majority; minority ] }
  in
  (* The legacy decision tree: untouched so that [reconfig = false] keeps
     replaying historical schedules byte for byte. *)
  let choose_fault at =
    let r = Rng.int rng 100 in
    if r < 35 && dead_total () < max_dead () then begin
      incr anon_dead;
      Some { at; event = Kill_leader }
    end
    else if r < 55 && dead_total () < max_dead () then begin
      match live_members () with
      | [] -> None
      | live ->
          let v = pick live in
          Hashtbl.replace dead v ();
          Some { at; event = Kill v }
    end
    else if r < 75 && known_dead () <> [] then begin
      let v = pick (known_dead ()) in
      Hashtbl.remove dead v;
      Some { at; event = Restart v }
    end
    else if dead_total () = 0 then make_partition at
    else None
  in
  (* The reconfig-aware tree interleaves membership churn with crashes. *)
  let choose_fault_reconfig at =
    let r = Rng.int rng 100 in
    if r < 20 && dead_total () < max_dead () then begin
      incr anon_dead;
      Some { at; event = Kill_leader }
    end
    else if r < 35 && dead_total () < max_dead () then begin
      match live_members () with
      | [] -> None
      | live ->
          let v = pick live in
          Hashtbl.replace dead v ();
          Some { at; event = Kill v }
    end
    else if r < 48 && known_dead () <> [] then begin
      let v = pick (known_dead ()) in
      Hashtbl.remove dead v;
      Some { at; event = Restart v }
    end
    else if r < 62 then begin
      members := !members @ [ !next_id ];
      incr next_id;
      Some { at; event = Add_node }
    end
    else if r < 76 && List.length !members > 3 && dead_total () = 0 then begin
      let v = pick (live_members ()) in
      members := List.filter (fun i -> i <> v) !members;
      Some { at; event = Remove_node v }
    end
    else if r < 88 then (
      match live_members () with
      | [] -> None
      | live -> Some { at; event = Transfer (pick live) })
    else if dead_total () = 0 then make_partition at
    else None
  in
  let steps =
    List.filter_map
      (fun at ->
        if !partitioned then
          if Rng.bool rng 0.7 then begin
            partitioned := false;
            Some { at; event = Heal }
          end
          else None
        else if reconfig then choose_fault_reconfig at
        else choose_fault at)
      times
  in
  let gap = max 1 (duration / 20) in
  let cleanup =
    (if !partitioned then [ { at = horizon + gap; event = Heal } ] else [])
    @ List.mapi
        (fun k i -> { at = horizon + (gap * (k + 2)); event = Restart i })
        (known_dead ())
  in
  steps @ cleanup

(* Shards = 1 takes the single-group path with the caller's seed and zero
   extra RNG draws, so every historical seed replays byte for byte. With
   S > 1 each group gets an independent legacy schedule under a derived
   seed (same derivation as the groups' staggered election seeds), its
   events wrapped in [Shard g], and the per-group timelines are merged in
   time order (stable: ties keep group order). *)
let random_schedule ?(events = 6) ?(reconfig = false) ?(shards = 1) ~n
    ~duration ~seed () =
  if shards < 1 then
    invalid_arg "Chaos.random_schedule: shards must be >= 1";
  if shards = 1 then single_group_schedule ~events ~reconfig ~n ~duration ~seed ()
  else
    List.init shards (fun g ->
        single_group_schedule ~events ~reconfig ~n ~duration
          ~seed:(seed + (g * 1_000_003)) ()
        |> List.map (fun { at; event } -> { at; event = Shard (g, event) }))
    |> List.concat
    |> List.stable_sort (fun a b -> compare a.at b.at)

type outcome = {
  series : Failure.bucket list;
  events : (float * string) list;
  violations : string list;
  exactly_once_ok : bool;
  committed_preserved : bool;
  caught_up : bool;
  consistent : bool;
  report : Loadgen.report;
  retried : int;
  pending_recoveries : int;
  final_members : int list;
  max_log_base : int;
  installs : int;
}

(* -------------------------------------------------------------------- *)
(* History checker                                                       *)

(* Committed non-internal commands of a node, in log order. Legacy chaos
   runs pin [log_retain] high enough that nothing compacts, so the scan
   covers the whole history; snapshot-aware runs scan whatever suffix
   survives compaction and lean on state fingerprints for the rest. *)
let committed_cmds node =
  let hi = min (Hnode.commit_index node) (Hnode.log_length node) in
  let acc = ref [] in
  Hnode.iter_log node ~lo:(Hnode.log_first_index node) ~hi
    (fun idx term cmd ->
      let m = cmd.Protocol.meta in
      if not m.Protocol.internal then acc := (idx, term, m) :: !acc);
  List.rev !acc

(* How many state-machine executions this node's applied log prefix should
   have produced, under the apply rule: first occurrence of a rid executes
   iff it is a write, or a read whose designated replier is this node
   (Hover modes). Duplicate ordings of a retried rid never execute — that
   is the exactly-once contract the count verifies. *)
let expected_executions node =
  if Hnode.mode node = Hnode.Unreplicated then None
  else begin
    let hi = min (Hnode.applied_index node) (Hnode.log_length node) in
    let first = Rid_tbl.create 4096 in
    let count = ref 0 in
    Hnode.iter_log node ~lo:(Hnode.log_first_index node) ~hi
      (fun _ _ cmd ->
        let m = cmd.Protocol.meta in
        if (not m.Protocol.internal) && not (Rid_tbl.mem first m.Protocol.rid)
        then begin
          Rid_tbl.replace first m.Protocol.rid ();
          if (not m.Protocol.read_only) || m.Protocol.replier = Hnode.id node
          then incr count
        end;
        (* A shard-migration Merge carries the source group's completion
           records; at apply time those rids become answered-from-record,
           so any later ordering of one resolves as a duplicate and never
           executes. Mirror that by seeding the first-occurrence table. *)
        match cmd.Protocol.body with
        | Hovercraft_apps.Op.Merge { completions; _ } ->
            List.iter
              (fun (c : Hovercraft_apps.Op.completion) ->
                Rid_tbl.replace first c.Hovercraft_apps.Op.c_rid ())
              completions
        | _ -> ());
    Some !count
  end

let check ?(snapshots = false) deploy ~completed_writes =
  let violations = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let live = Deploy.live_nodes deploy in
  let mode = deploy.Deploy.params.Hnode.mode in
  (* The legacy checker's log scans silently lose their teeth on a
     compacted log — an exactly-once miss below the base would just not be
     counted. Refuse loudly rather than pass vacuously. *)
  if not snapshots then
    List.iter
      (fun n ->
        if Hnode.log_base n > 0 then
          invalid_arg
            (Printf.sprintf
               "Chaos.check: node%d compacted its log to base %d under the \
                legacy history checker; rerun with the snapshot-aware \
                checker (snapshots:true / --snapshot-interval)"
               (Hnode.id n) (Hnode.log_base n)))
      live;
  (* A node whose history is only partially scannable (compacted prefix,
     or state installed wholesale from a snapshot) cannot be held to the
     exact log-derived execution count; catch-up and fingerprint agreement
     carry the weight for it instead. *)
  let full_history n = Hnode.log_base n = 0 && Hnode.installs_received n = 0 in
  (* Reference replica: the live node with the longest committed prefix. *)
  let reference =
    List.fold_left
      (fun best n ->
        match best with
        | None -> Some n
        | Some b ->
            if Hnode.commit_index n > Hnode.commit_index b then Some n else best)
      None live
  in
  let exactly_once_ok = ref true in
  (* 1. Exactly-once execution: each replica's execution counter equals
     what its applied log prefix prescribes — retried rids ordered twice
     must execute once. Exact only for the Hover modes with replicated
     reads (the configurations chaos runs); elsewhere reads execute on
     the leader of the moment, so only writes give a firm floor. *)
  List.iter
    (fun n ->
      match (if full_history n then expected_executions n else None) with
      | None -> ()
      | Some expected -> (
          (* Preloaded ops (dataset population outside consensus) bump the
             raw execution counter but never appear in the log. *)
          let got = Hnode.executed_ops n - Hnode.preloaded n in
          match mode with
          | Hnode.Hover | Hnode.Hover_pp ->
              if got <> expected then begin
                exactly_once_ok := false;
                bad "node%d executed %d ops, log prescribes %d" (Hnode.id n) got
                  expected
              end
          | Hnode.Vanilla | Hnode.Unreplicated ->
              if got < expected then begin
                exactly_once_ok := false;
                bad "node%d executed %d ops, log prescribes >= %d" (Hnode.id n)
                  got expected
              end))
    live;
  (* 2. Committed prefixes agree across live replicas (rid and term at
     every shared committed index). *)
  (match reference with
  | None -> ()
  | Some ref_node ->
      let ref_cmds = committed_cmds ref_node in
      let ref_at = Hashtbl.create 4096 in
      List.iter (fun (idx, term, m) -> Hashtbl.replace ref_at idx (term, m)) ref_cmds;
      List.iter
        (fun n ->
          if Hnode.id n <> Hnode.id ref_node then
            List.iter
              (fun (idx, term, (m : Protocol.meta)) ->
                match Hashtbl.find_opt ref_at idx with
                | None -> ()
                | Some (rterm, (rm : Protocol.meta)) ->
                    if rterm <> term || not (R2p2.req_id_equal rm.rid m.rid) then
                      bad
                        "committed prefixes diverge at index %d (node%d vs \
                         node%d)"
                        idx (Hnode.id n) (Hnode.id ref_node))
              (committed_cmds n))
        live);
  (* 3. Committed-stays-committed: every write the client saw answered is
     in the reference replica's committed log, whatever crashed since.
     Once the reference compacted, writes ordered below its base are no
     longer scannable — their preservation is then vouched for by the
     snapshot identity plus fingerprint agreement, so a miss only counts
     as a violation while the full history is present. *)
  let committed_preserved = ref true in
  (match reference with
  | None -> if completed_writes <> [] then committed_preserved := false
  | Some ref_node ->
      let committed = Rid_tbl.create 4096 in
      List.iter
        (fun (_, _, (m : Protocol.meta)) -> Rid_tbl.replace committed m.rid ())
        (committed_cmds ref_node);
      let scannable = Hnode.log_base ref_node = 0 in
      List.iter
        (fun rid ->
          if not (Rid_tbl.mem committed rid) then
            if scannable then begin
              committed_preserved := false;
              bad "client-completed write %s missing from committed log"
                (Format.asprintf "%a" R2p2.pp_req_id rid)
            end)
        completed_writes);
  (* 4. Catch-up: after the heal-and-restart epilogue every live replica
     must have applied everything any replica committed. *)
  let caught_up = ref true in
  let max_commit =
    List.fold_left (fun acc n -> max acc (Hnode.commit_index n)) 0 live
  in
  List.iter
    (fun n ->
      if Hnode.applied_index n < max_commit then begin
        caught_up := false;
        bad "node%d applied %d < cluster commit %d" (Hnode.id n)
          (Hnode.applied_index n) max_commit
      end)
    live;
  let consistent = Deploy.consistent deploy in
  if not consistent then bad "live replica fingerprints diverge";
  ( List.rev !violations,
    !exactly_once_ok,
    !committed_preserved,
    !caught_up,
    consistent )

(* -------------------------------------------------------------------- *)
(* Driving a run                                                         *)

let apply_event deploy ~t0 ~timeline event =
  let engine = deploy.Deploy.engine in
  let note fmt =
    Format.kasprintf
      (fun s ->
        timeline := (Timebase.to_s_f (Engine.now engine - t0), s) :: !timeline)
      fmt
  in
  match event with
  | Kill_leader -> (
      match Deploy.kill_leader deploy with
      | Some i -> note "killed leader node%d" i
      | None -> note "kill-leader: nothing left to kill")
  | Kill i ->
      if Hnode.alive deploy.Deploy.nodes.(i) then begin
        Deploy.kill_node deploy i;
        note "killed node%d" i
      end
      else note "kill node%d skipped (already dead)" i
  | Restart i ->
      if Hnode.alive deploy.Deploy.nodes.(i) then
        note "restart node%d skipped (alive)" i
      else begin
        Deploy.restart_node deploy i;
        note "restarted node%d" i
      end
  | Partition sets ->
      Fabric.partition deploy.Deploy.fabric
        (List.map (List.map (fun i -> Addr.Node i)) sets);
      note "%a" pp_event (Partition sets)
  | Heal ->
      Fabric.heal deploy.Deploy.fabric;
      note "healed partition"
  | (Add_node | Remove_node _ | Transfer _)
    when Hnode.backend deploy.Deploy.nodes.(0) = Hnode.Rabia ->
      (* Membership churn and leadership transfer are leader-driven Raft
         surfaces; the rabia backend rejects them outright. Chaos skips
         them like any other illegal event so mixed schedules replay. *)
      note "%a skipped (rabia backend: fixed membership, no leader)" pp_event
        event
  | Add_node ->
      let id = Deploy.add_node deploy in
      note "adding node%d to the configuration" id
  | Remove_node i ->
      if i < 0 || i >= Array.length deploy.Deploy.nodes then
        note "remove node%d skipped (unknown node)" i
      else if Deploy.is_removed deploy i then
        note "remove node%d skipped (already removed)" i
      else begin
        Deploy.remove_node deploy i;
        note "removing node%d from the configuration" i
      end
  | Transfer i ->
      if
        i >= 0
        && i < Array.length deploy.Deploy.nodes
        && Hnode.alive deploy.Deploy.nodes.(i)
        && not (Deploy.is_removed deploy i)
      then begin
        Deploy.transfer_leadership deploy ~target:i;
        note "transferring leadership to node%d" i
      end
      else note "transfer to node%d skipped (dead or removed)" i
  | Shard (g, e) ->
      (* Shard-tagged events target one group of a multi-group deployment;
         this single-group runner has no group [g] to route to. The
         sharded runner unwraps the tag and applies the inner event to the
         right group's deployment before ever reaching here. *)
      note "shard%d event ignored by single-group runner: %a" g pp_event e

let run ?params ?(n = 5) ?(rate_rps = 120_000.) ?(flow_cap = 1000)
    ?(bucket = Timebase.ms 100) ?(duration = Timebase.s 2)
    ?(drain = Timebase.ms 100) ?(reconfig = false) ?snapshots ?schedule
    ~workload ~seed () =
  let params =
    match params with
    | Some p -> p
    | None -> Hnode.params ~mode:Hnode.Hover_pp ~n ()
  in
  let n = params.Hnode.n in
  (* Crashes must be recoverable for the whole run: peers keep ordered
     bodies past any downtime (so a restarted node can refetch them). In
     legacy runs no log prefix may compact away either (catch-up
     backtracking — and the checker — must reach index 1); with
     [snapshots = Some interval] the opposite is the point: checkpoint
     every [interval] entries and retain only that much log, so lagging
     nodes are forced through the install path and the snapshot-aware
     checker is exercised. *)
  let params =
    {
      params with
      Hnode.timing =
        {
          params.Hnode.timing with
          Hnode.gc_ordered = (2 * duration) + drain + Timebase.s 1;
        };
      features =
        (* The run always attaches the flow-control middlebox (flow_cap),
           which admits at most [cap] in-flight rids and waits for a
           Feedback per reply to free each slot. Nodes with [flow_control]
           off never send Feedback, so load wedges at the cap within the
           first few milliseconds; force it on rather than make every
           caller carry the workaround. *)
        (match snapshots with
        | None ->
            {
              params.Hnode.features with
              Hnode.log_retain = max_int / 2;
              flow_control = true;
            }
        | Some interval ->
            {
              params.Hnode.features with
              Hnode.log_retain = interval;
              snapshot_interval = interval;
              flow_control = true;
            });
    }
  in
  let schedule =
    match schedule with
    | Some s -> s
    | None -> random_schedule ~reconfig ~n ~duration ~seed ()
  in
  let deploy = Deploy.create (Deploy.config ~flow_cap params) in
  let engine = deploy.Deploy.engine in
  let t0 = Engine.now engine in
  let completions = Series.create ~bucket () in
  let nacks = Series.create ~bucket () in
  let completed_writes = ref [] in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps ~workload
      ~retry:(Timebase.ms 50, 8)
      ~on_reply:(fun ~rid ~op ~sent_at:_ ~latency ->
        if not (Hovercraft_apps.Op.read_only op) then
          completed_writes := rid :: !completed_writes;
        Series.add completions ~at:(Engine.now engine - t0) latency)
      ~on_nack:(fun ~at -> Series.mark nacks ~at:(at - t0))
      ~seed ()
  in
  let timeline = ref [] in
  List.iter
    (fun { at; event } ->
      Engine.after engine at (fun () -> apply_event deploy ~t0 ~timeline event))
    schedule;
  let report = Loadgen.run gen ~warmup:0 ~duration ~drain () in
  (* Epilogue: whatever the schedule left broken, heal and restart it,
     then let the cluster converge so the catch-up check is meaningful. *)
  if Fabric.partitioned deploy.Deploy.fabric then
    apply_event deploy ~t0 ~timeline Heal;
  Array.iteri
    (fun i node ->
      if (not (Hnode.alive node)) && not (Deploy.is_removed deploy i) then
        apply_event deploy ~t0 ~timeline (Restart i))
    deploy.Deploy.nodes;
  (* A node that slept through most of the run has that much history to
     re-apply at state-machine speed; converge on observed progress
     instead of a fixed window (bounded so a genuine wedge still ends
     the run and fails the checker). *)
  let converged () =
    let live = Deploy.live_nodes deploy in
    let max_commit =
      List.fold_left (fun acc n -> max acc (Hnode.commit_index n)) 0 live
    in
    List.for_all (fun n -> Hnode.applied_index n >= max_commit) live
    && Deploy.total_pending_recoveries deploy = 0
  in
  let rec settle tries =
    Deploy.quiesce deploy ~extra:(Timebase.ms 200) ();
    if (not (converged ())) && tries > 0 then settle (tries - 1)
  in
  settle 50;
  let violations, exactly_once_ok, committed_preserved, caught_up, consistent =
    check ~snapshots:(snapshots <> None) deploy
      ~completed_writes:!completed_writes
  in
  let live = Deploy.live_nodes deploy in
  let max_log_base =
    List.fold_left (fun acc nd -> max acc (Hnode.log_base nd)) 0 live
  in
  let installs =
    List.fold_left (fun acc nd -> acc + Hnode.installs_received nd) 0 live
  in
  {
    series =
      Failure.merge_series ~bucket_width:bucket
        ~completions:(Series.buckets completions)
        ~nacks:(Series.buckets nacks);
    events = List.rev !timeline;
    violations;
    exactly_once_ok;
    committed_preserved;
    caught_up;
    consistent;
    report;
    retried = Loadgen.retried gen;
    pending_recoveries = Deploy.total_pending_recoveries deploy;
    final_members =
      (match Deploy.leader deploy with
      | Some l -> Hnode.members l
      | None -> (
          match Deploy.live_nodes deploy with
          | m :: _ -> Hnode.members m
          | [] -> []));
    max_log_base;
    installs;
  }
