(** Chaos testing: timed crash / restart / partition schedules driven
    against a deployment under load, with a history checker over the
    replicas' committed logs and the client-observed completions.

    The checker verifies, after a heal-and-restart epilogue:

    - {e exactly-once execution}: each replica's execution counter equals
      what its applied log prefix prescribes, so a retried request ordered
      twice still executed once;
    - {e prefix agreement}: live replicas agree (term and request id) at
      every shared committed index;
    - {e committed-stays-committed}: every write whose reply a client
      received is present in the longest live committed log — no crash,
      election or partition un-commits an acknowledged write;
    - {e catch-up}: every live replica (including restarted ones) has
      applied everything any replica committed;
    - {e consistency}: live replicas' application fingerprints agree.

    Runs are deterministic per seed: equal seeds replay the same schedule
    against the same simulated load, byte for byte. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_r2p2

type event =
  | Kill_leader  (** Crash the current leader ({!Deploy.kill_leader}). *)
  | Kill of int  (** Crash a node by id; skipped if already dead. *)
  | Restart of int  (** {!Hnode.restart} a node; skipped if alive. *)
  | Partition of int list list
      (** Split the fabric into node islands; nodes absent from every
          island (and clients, middleboxes, the aggregator) keep global
          reachability. *)
  | Heal  (** Remove the partition. *)
  | Add_node
      (** Grow the cluster by one voter ({!Deploy.add_node}); the new node
          gets the next unused id. *)
  | Remove_node of int
      (** Drive a node out of the configuration and decommission it
          ({!Deploy.remove_node}); the current leader is a legal target. *)
  | Transfer of int
      (** Cooperative leadership transfer to a node id; skipped if the
          target is dead or removed. *)
  | Shard of int * event
      (** Route the inner event to Raft group [g] of a sharded (multi-
          group) deployment. The single-group {!run} ignores these with a
          timeline note; the sharded runner unwraps the tag and applies
          the inner event to the right group. *)

type step = { at : Timebase.t; event : event }
(** [at] is relative to the start of the chaos run. *)

val pp_event : Format.formatter -> event -> unit

val random_schedule :
  ?events:int ->
  ?reconfig:bool ->
  ?shards:int ->
  n:int ->
  duration:Timebase.t ->
  seed:int ->
  unit ->
  step list
(** Generate a seeded schedule of up to [events] faults over the first
    70% of [duration], keeping (on the generator's model) a quorum of
    members alive at all times, never killing into a partition, and ending
    with a cleanup tail that heals and restarts everything so the run can
    converge. With [reconfig] (default false) the mix also includes
    [Add_node] / [Remove_node] / [Transfer] membership churn, tracked in
    the same model (removals only while everything is healthy and at least
    four members remain); without it, schedules are identical to what
    older seeds produced. Deterministic per [seed]. Requires [n >= 3].

    [shards] (default 1) targets a sharded deployment: each group [g] of
    [shards] gets an independent schedule of up to [events] faults under a
    seed derived from [seed], wrapped in [Shard g] and merged in time
    order. [shards = 1] is a strict no-op — the caller's seed drives the
    single-group generator directly, with zero extra RNG draws, so every
    historical seed replays byte for byte. *)

type outcome = {
  series : Failure.bucket list;
      (** Per-bucket throughput / p99 / NACKs, as in {!Failure.run}. *)
  events : (float * string) list;
      (** What was actually applied, (seconds from start, description) —
          includes schedule entries skipped as illegal and the epilogue's
          heals/restarts. *)
  violations : string list;  (** Empty on a correct run. *)
  exactly_once_ok : bool;
  committed_preserved : bool;
  caught_up : bool;
  consistent : bool;
  report : Loadgen.report;
  retried : int;  (** Client retransmissions (same rid, exactly-once). *)
  pending_recoveries : int;
      (** {!Deploy.total_pending_recoveries} after the final quiesce;
          nonzero means a body recovery wedged. *)
  final_members : int list;
      (** The leader's applied configuration after the epilogue — what the
          membership churn converged to. *)
  max_log_base : int;
      (** Highest compaction base across live nodes after the epilogue;
          0 unless the run compacted (snapshot runs should see it advance
          past crash points). *)
  installs : int;
      (** Total snapshots installed across live nodes — catch-ups served
          via [Install_snapshot] rather than entry replay. *)
}

val apply_event :
  Deploy.t ->
  t0:Timebase.t ->
  timeline:(float * string) list ref ->
  event ->
  unit
(** Apply one event to a deployment right now, appending a human-readable
    note (seconds since [t0], description) to [timeline] — including for
    events skipped as illegal (dead target, unknown node, [Shard]-tagged
    in a single-group run). Exposed so the sharded chaos runner can unwrap
    [Shard] tags and drive each group's deployment itself. *)

val check :
  ?snapshots:bool ->
  Deploy.t ->
  completed_writes:R2p2.req_id list ->
  string list * bool * bool * bool * bool
(** Run the history checker against a quiesced deployment.
    [completed_writes] are the request ids of non-read operations whose
    replies clients received. Returns
    [(violations, exactly_once_ok, committed_preserved, caught_up,
    consistent)]. Exposed for tests; {!run} calls it for you.

    With [snapshots] (default false) the checker is compaction-aware:
    exact log-derived execution counts apply only to nodes whose full
    history is scannable (base 0, no installs); catch-up-via-install is
    verified through state fingerprints instead of raw log prefixes, and
    committed-stays-committed only flags misses while the reference log
    is complete. Without it, any compacted log raises [Invalid_argument]
    immediately — the legacy scans would otherwise pass vacuously. *)

val run :
  ?params:Hnode.params ->
  ?n:int ->
  ?rate_rps:float ->
  ?flow_cap:int ->
  ?bucket:Timebase.t ->
  ?duration:Timebase.t ->
  ?drain:Timebase.t ->
  ?reconfig:bool ->
  ?snapshots:int ->
  ?schedule:step list ->
  workload:(Rng.t -> Hovercraft_apps.Op.t) ->
  seed:int ->
  unit ->
  outcome
(** Drive [schedule] (default: {!random_schedule} from [seed], with
    membership churn when [reconfig] is set) against a
    fresh deployment (default: HovercRaft++, [n] = 5, flow control) under
    open-loop load with client retries. Because the run always attaches
    the flow-control middlebox, [flow_control] is forced on in the node
    features — without the per-reply Feedback the middlebox wedges all
    load at the in-flight cap. [params]' body-retention and log
    windows are widened so crashes stay recoverable and the checker can
    scan full logs: [gc_ordered] covers the run and [log_retain] disables
    compaction for its duration. With [snapshots = Some interval] the run
    instead checkpoints every [interval] applied entries and retains only
    [interval] log entries, forcing lagging or restarted nodes through
    the [Install_snapshot] path, and the snapshot-aware checker is used.
    After the load window and [drain], any surviving partition is healed
    and dead nodes restarted, the cluster quiesces, and the history
    checker runs. *)
