(** The failure-timeline experiment (Fig. 12): fixed offered load on a
    HovercRaft++ cluster with flow control, leader killed mid-run, per-
    bucket throughput / p99 / NACK series out. *)

open Hovercraft_sim
open Hovercraft_core

type bucket = {
  t_s : float;  (** Bucket start, seconds from measurement start. *)
  krps : float;  (** Completed replies per second in the bucket. *)
  p99_us : float option;
  nacks : int;
}

type outcome = {
  series : bucket list;
  killed_at_s : float;
  killed_node : int option;
  new_leader : int option;
  total_nacked : int;
  consistent : bool;  (** Surviving replicas agree after drain. *)
}

val merge_series :
  bucket_width:Timebase.t ->
  completions:Series.bucket list ->
  nacks:Series.bucket list ->
  bucket list
(** Join the completion and NACK series on the {e union} of their bucket
    keys. A bucket with NACKs but zero completions (a total blackout
    window) still appears, with [krps = 0.] and its NACK count intact. *)

val run :
  ?params:Hnode.params ->
  ?rate_rps:float ->
  ?flow_cap:int ->
  ?bucket:Timebase.t ->
  ?duration:Timebase.t ->
  ?kill_after:Timebase.t ->
  workload:(Rng.t -> Hovercraft_apps.Op.t) ->
  seed:int ->
  unit ->
  outcome
