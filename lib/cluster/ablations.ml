open Hovercraft_sim
open Hovercraft_core
module Service = Hovercraft_apps.Service

let section title = Printf.printf "\n=== Ablation: %s ===\n%!" title

(* One-knob tweaks on the nested defaults. *)
let with_features p f = { p with Hnode.features = f p.Hnode.features }
let with_timing p f = { p with Hnode.timing = f p.Hnode.timing }

let bimodal_spec =
  Service.spec
    ~service:(Dist.Bimodal { mean = Timebase.us 10; long_fraction = 0.1; ratio = 10. })
    ~read_fraction:0.75 ()

let bound_sweep ?(quality = Experiment.Fast) () =
  section "bounded-queue size B (hover++, bimodal 75% RO, 150 kRPS)";
  let rows =
    List.map
      (fun bound ->
        let params =
          with_features (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()) (fun f ->
              { f with Hnode.bound })
        in
        let s = Experiment.setup params (Service.sample bimodal_spec) in
        let r = Experiment.run_point ~quality s ~rate_rps:150_000. in
        [
          string_of_int bound;
          Table.fmt_us r.Loadgen.p99_us;
          Table.fmt_krps r.Loadgen.goodput_rps;
        ])
      [ 4; 16; 64; 256 ]
  in
  Table.print ~header:[ "B"; "p99 us"; "goodput kRPS" ] rows;
  print_string
    "(B also caps replies lost per failed node; small B = tight tail but\n\
    \ may throttle announcement under bursts)\n"

let batch_sweep ?(quality = Experiment.Fast) () =
  section "append_entries batching (vanilla raft, S=1us, N=3)";
  let rows =
    List.map
      (fun batch_max ->
        let params =
          with_features (Hnode.params ~mode:Hnode.Vanilla ~n:3 ()) (fun f ->
              { f with Hnode.batch_max })
        in
        let s = Experiment.setup params (Service.sample (Service.spec ())) in
        let knee = Experiment.max_under_slo ~quality s in
        [ string_of_int batch_max; Table.fmt_krps knee ])
      [ 1; 4; 16; 64 ]
  in
  Table.print ~header:[ "batch_max"; "kRPS under SLO" ] rows

let commit_hint ?(quality = Experiment.Fast) () =
  section "eager commit broadcast (plain hovercraft, RANDOM repliers, 20 kRPS)";
  (* RANDOM selection forces followers to answer 2/3 of requests; JBSQ
     would route everything to the leader at this load (its queue always
     drains first) and mask the effect. *)
  let rows =
    List.map
      (fun eager ->
        let params =
          with_features (Hnode.params ~mode:Hnode.Hover ~n:3 ()) (fun f ->
              {
                f with
                Hnode.eager_commit_notify = eager;
                lb_policy = Hovercraft_r2p2.Jbsq.Random_choice;
              })
        in
        let s = Experiment.setup params (Service.sample (Service.spec ())) in
        let r = Experiment.run_point ~quality s ~rate_rps:20_000. in
        [
          (if eager then "eager" else "next-AE");
          Table.fmt_us r.Loadgen.p50_us;
          Table.fmt_us r.Loadgen.p99_us;
        ])
      [ true; false ]
  in
  Table.print ~header:[ "commit notify"; "p50 us"; "p99 us" ] rows;
  print_string
    "(without the hint, a follower replier waits for the next\n\
    \ append_entries to learn the commit; at low load that is the next\n\
    \ request or a heartbeat away)\n"

let heartbeat_sweep ?(quality = Experiment.Fast) () =
  section "heartbeat period (plain hovercraft, RANDOM repliers, no hints, 5 kRPS)";
  let rows =
    List.map
      (fun hb_us ->
        let params =
          with_timing
            (with_features (Hnode.params ~mode:Hnode.Hover ~n:3 ()) (fun f ->
                 {
                   f with
                   Hnode.eager_commit_notify = false;
                   lb_policy = Hovercraft_r2p2.Jbsq.Random_choice;
                 }))
            (fun tm -> { tm with Hnode.heartbeat = Timebase.us hb_us })
        in
        let s = Experiment.setup params (Service.sample (Service.spec ())) in
        let r = Experiment.run_point ~quality s ~rate_rps:5_000. in
        [
          string_of_int hb_us;
          Table.fmt_us r.Loadgen.p50_us;
          Table.fmt_us r.Loadgen.p99_us;
        ])
      [ 100; 500; 2000 ]
  in
  Table.print ~header:[ "heartbeat us"; "p50 us"; "p99 us" ] rows

let read_leases ?(quality = Experiment.Fast) () =
  section
    "read-only strategy: leader leases vs replier load balancing\n\
    \    (hover++, bimodal S=10us, 75% read-only, N=3)";
  let rows =
    List.map
      (fun (label, read_mode, reply_lb) ->
        let params =
          with_features (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()) (fun f ->
              { f with Hnode.read_mode; reply_lb; bound = 32 })
        in
        let s = Experiment.setup params (Service.sample bimodal_spec) in
        let knee = Experiment.max_under_slo ~quality s in
        [ label; Table.fmt_krps knee ])
      [
        ("leader leases", Hnode.Leader_leases, false);
        ("replier LB (JBSQ)", Hnode.Replicated_reads, true);
      ]
  in
  Table.print ~header:[ "read strategy"; "kRPS under SLO" ] rows;
  print_string
    "(leases skip consensus per read but concentrate all read CPU on the\n\
    \ leader - the \xc2\xa73.5 argument for load-balancing ordered reads instead)\n"

let ycsb_mixes ?(quality = Experiment.Fast) () =
  section
    "read/write mix (YCSB A/B/C over 1kB records, hover++, N in {1,3,5})";
  (* Updates execute on every replica; reads only on the replier. The
     speedup from added nodes therefore degrades from ~N (workload C) to
     Amdahl-bound (workload A). *)
  let knee ~mode ~n ~read_fraction =
    let params =
      with_features (Hnode.params ~mode ~n ()) (fun f ->
          { f with Hnode.reply_lb = true })
    in
    let gen =
      Hovercraft_apps.Ycsb.Kv.create ~read_fraction ~records:5_000
        ~seed:17 ()
    in
    let preload = Hovercraft_apps.Ycsb.Kv.preload_ops gen in
    let s =
      Experiment.setup ~preload params (fun _ -> Hovercraft_apps.Ycsb.Kv.next gen)
    in
    Experiment.max_under_slo ~quality ~lo:10_000. ~hi:6_000_000. s
  in
  let rows =
    List.map
      (fun (label, read_fraction) ->
        let unrep = knee ~mode:Hnode.Unreplicated ~n:1 ~read_fraction in
        let n3 = knee ~mode:Hnode.Hover_pp ~n:3 ~read_fraction in
        let n5 = knee ~mode:Hnode.Hover_pp ~n:5 ~read_fraction in
        [
          label;
          Table.fmt_krps unrep;
          Table.fmt_krps n3;
          Table.fmt_krps n5;
          Printf.sprintf "%.1fx" (n5 /. unrep);
        ])
      [ ("A (50% reads)", 0.5); ("B (95% reads)", 0.95); ("C (100% reads)", 1.0) ]
  in
  Table.print
    ~header:[ "workload"; "UnRep kRPS"; "N=3 kRPS"; "N=5 kRPS"; "N=5 speedup" ]
    rows

let unrestricted_reads ?(quality = Experiment.Fast) () =
  section
    "consistency of reads: totally ordered vs unrestricted via the router\n\
    \    (hover++, bimodal S=10us, 90% reads, N=3)";
  let spec =
    Service.spec
      ~service:(Dist.Bimodal { mean = Timebase.us 10; long_fraction = 0.1; ratio = 10. })
      ~read_fraction:0.9 ()
  in
  let knee ~unrestricted =
    let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    let point rate =
      let deploy = Deploy.create (Deploy.config ~router_bound:32 params) in
      let gen =
        Loadgen.create deploy ~clients:8 ~rate_rps:rate
          ~workload:(Service.sample spec) ~unrestricted_reads:unrestricted
          ~seed:19 ()
      in
      Loadgen.run gen ~warmup:(Timebase.ms 8) ~duration:(Timebase.ms 48) ()
    in
    (* A small manual bracket keeps both variants on identical footing. *)
    let ok rate =
      let r = point rate in
      r.Loadgen.p99_us <= 500.
      && r.Loadgen.goodput_rps >= 0.97 *. rate
      && r.Loadgen.lost = 0
      && r.Loadgen.nacked = 0
    in
    let rec climb good step =
      if step < 10_000. then good
      else if ok (good +. step) then climb (good +. step) step
      else climb good (step /. 2.)
    in
    ignore quality;
    climb 50_000. 100_000.
  in
  let ordered = knee ~unrestricted:false in
  let unrestricted = knee ~unrestricted:true in
  Table.print
    ~header:[ "read path"; "kRPS under SLO" ]
    [
      [ "totally ordered + replier LB"; Table.fmt_krps ordered ];
      [ "unrestricted via router (stale OK)"; Table.fmt_krps unrestricted ];
    ];
  print_string
    "(unrestricted reads skip ordering entirely - the consistency/throughput\n\
    \ trade the paper's \xc2\xa76.1 leaves to the application)\n"

let all ?(quality = Experiment.Fast) () =
  bound_sweep ~quality ();
  batch_sweep ~quality ();
  commit_hint ~quality ();
  heartbeat_sweep ~quality ();
  read_leases ~quality ();
  ycsb_mixes ~quality ();
  unrestricted_reads ~quality ()
