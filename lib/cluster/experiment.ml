open Hovercraft_sim
open Hovercraft_core

type workload = Rng.t -> Hovercraft_apps.Op.t

type setup = {
  params : Hnode.params;
  workload : workload;
  preload : Hovercraft_apps.Op.t list;
  clients : int;
  flow_cap : int option;
  seed : int;
}

let setup ?(clients = 8) ?flow_cap ?(preload = []) ?(seed = 1) params workload =
  { params; workload; preload; clients; flow_cap; seed }

type quality = Fast | Full

(* Window sizing: long enough for a stable p99 (>= ~4k samples) but bounded
   so SLO searches stay cheap. *)
let window ~quality ~rate_rps =
  let min_samples, cap_s =
    match quality with Fast -> (4_000., 0.25) | Full -> (20_000., 1.0)
  in
  let needed_s = min_samples /. rate_rps in
  let dur_s = Float.min cap_s (Float.max 0.03 needed_s) in
  let dur = int_of_float (dur_s *. 1e9) in
  let warm = dur / 5 in
  (warm, dur + warm)

let run_point ?(quality = Fast) s ~rate_rps =
  let deploy = Deploy.create (Deploy.config ?flow_cap:s.flow_cap s.params) in
  if s.preload <> [] then
    Array.iter (fun n -> Hnode.preload n s.preload) deploy.Deploy.nodes;
  let gen =
    Loadgen.create deploy ~clients:s.clients ~rate_rps ~workload:s.workload
      ~seed:(s.seed + 7)
      ()
  in
  let warmup, duration = window ~quality ~rate_rps in
  Loadgen.run gen ~warmup ~duration ()

let latency_curve ?quality s ~rates =
  List.map (fun r -> (r, run_point ?quality s ~rate_rps:r)) rates

let meets_slo ~slo (r : Loadgen.report) =
  r.completed > 0
  && r.p99_us <= Timebase.to_us_f slo
  && r.goodput_rps >= 0.97 *. r.offered_rps
  && r.lost = 0

let max_under_slo ?(quality = Fast) ?(slo = Timebase.us 500) ?(lo = 5_000.)
    ?(hi = 2_000_000.) s =
  let ok rate = meets_slo ~slo (run_point ~quality s ~rate_rps:rate) in
  if not (ok lo) then 0.
  else begin
    (* Geometric bracketing, then bisection to ~2%. *)
    let rec bracket good =
      let candidate = good *. 1.6 in
      if candidate >= hi then (good, hi)
      else if ok candidate then bracket candidate
      else (good, candidate)
    in
    let good, bad = bracket lo in
    let rec bisect good bad iters =
      if iters = 0 || (bad -. good) /. good < 0.02 then good
      else begin
        let mid = (good +. bad) /. 2. in
        if ok mid then bisect mid bad (iters - 1) else bisect good mid (iters - 1)
      end
    in
    if good >= hi then hi else bisect good bad 8
  end

(* --- applyscale: parallel-apply speedup on YCSB-A ------------------- *)

type applyscale_point = {
  threads : int;
  knee_rps : float;
  consistent : bool;  (** Replica fingerprints agree after quiesce. *)
  stalls : int;  (** Barrier waits the schedulers recorded (all nodes). *)
  confirm : Loadgen.report;  (** The fingerprint-check run, near the knee. *)
}

(* YCSB-A (50% read / 50% update, zipfian over 10k 1kB records) against a
   3-node HovercRaft group, at K application threads per node. The links
   run at 40G so the wire never hides the CPU knee — the serial apply
   thread is the bottleneck under write-heavy load (ROADMAP item 2), and
   the whole point is to watch it move as K grows. Same seed for every K:
   the committed log is identical across runs (client arrivals do not
   depend on apply timing), so knee ratios are apples-to-apples. *)
let applyscale_setup ~seed ~threads ~net_stages =
  let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
  let p =
    {
      p with
      seed;
      cost = { p.cost with link_gbps = 40. };
      features = { p.features with apply_threads = threads; net_stages };
    }
  in
  let gen = Hovercraft_apps.Ycsb.Kv.workload_a ~seed in
  let preload =
    Hovercraft_apps.Ycsb.Kv.preload_ops
      (Hovercraft_apps.Ycsb.Kv.workload_a ~seed)
  in
  setup ~preload ~seed p (fun _rng -> Hovercraft_apps.Ycsb.Kv.next gen)

let applyscale ?(quality = Fast) ?(net_stages = 1) ?(threads = [ 1; 2; 4; 8 ])
    ?(seed = 11) () =
  List.map
    (fun k ->
      let knee =
        max_under_slo ~quality ~hi:5_000_000.
          (applyscale_setup ~seed ~threads:k ~net_stages)
      in
      (* Confirmation run just under the knee on a deployment we keep, so
         replica agreement and the stall census are checked at speed (a
         fresh setup: the knee search consumed the previous generator). *)
      let s = applyscale_setup ~seed ~threads:k ~net_stages in
      let deploy = Deploy.create (Deploy.config ?flow_cap:s.flow_cap s.params) in
      Array.iter (fun n -> Hnode.preload n s.preload) deploy.Deploy.nodes;
      let rate = Float.max 50_000. (0.95 *. knee) in
      let gen =
        Loadgen.create deploy ~clients:s.clients ~rate_rps:rate
          ~workload:s.workload ~seed:(s.seed + 7) ()
      in
      let warmup, duration = window ~quality ~rate_rps:rate in
      let confirm = Loadgen.run gen ~warmup ~duration () in
      Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
      let stalls =
        Array.fold_left
          (fun acc n -> acc + Hnode.apply_stalls n)
          0 deploy.Deploy.nodes
      in
      {
        threads = k;
        knee_rps = knee;
        consistent = Deploy.consistent deploy;
        stalls;
        confirm;
      })
    threads

(* --- netscale: pipelined net path on YCSB-B ------------------------- *)

type netscale_point = {
  stages : int;
  knee_rps : float;
  consistent : bool;
  stage_busy : (string * int) list;
  confirm : Loadgen.report;
}

(* The compartmentalization experiment mirrors the shardscale S=1 cell
   (the 1889 kRPS baseline): YCSB-B (95% reads, zipfian over 10k 1kB
   records) against a 3-node HovercRaft++ group on 40 GbE links — at
   that knee the binding resource is the leader's per-packet CPU, not
   the wire, which is exactly what splitting the net thread into stages
   attacks. Same seed at every stage count: handler logic and message
   order are stage-independent, so the committed logs are comparable. *)
let netscale_setup ~seed ~stages =
  let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let p =
    {
      p with
      seed;
      cost = { p.cost with link_gbps = 40. };
      features = { p.features with net_stages = stages };
    }
  in
  let gen = Hovercraft_apps.Ycsb.Kv.workload_b ~seed:(seed + 1) in
  let preload =
    Hovercraft_apps.Ycsb.Kv.preload_ops
      (Hovercraft_apps.Ycsb.Kv.workload_b ~seed:(seed + 1))
  in
  setup ~preload ~seed p (fun _rng -> Hovercraft_apps.Ycsb.Kv.next gen)

(* --- backendscale: ordering-backend shootout ------------------------ *)

type backendscale_point = {
  backend : Hnode.backend;
  knee_rps : float;
  kill_p99_us : float;
  recovery_ms : float;
  consistent : bool;
  confirm : Loadgen.report;
}

(* Both backends run the SAME dataplane cell — HovercRaft mode, 3 nodes,
   40 GbE, YCSB-A (write-heavy, so every request crosses the ordering
   layer) — and differ only in what orders the metadata: the leader's
   log or per-slot randomized agreement. That isolation is the point of
   the shootout; a mode change would confound the comparison. *)
let backendscale_setup ~seed ~backend =
  let p = Hnode.params ~mode:Hnode.Hover ~backend ~n:3 () in
  let p = { p with seed; cost = { p.cost with link_gbps = 40. } } in
  let gen = Hovercraft_apps.Ycsb.Kv.workload_a ~seed in
  let preload =
    Hovercraft_apps.Ycsb.Kv.preload_ops
      (Hovercraft_apps.Ycsb.Kv.workload_a ~seed)
  in
  setup ~preload ~seed p (fun _rng -> Hovercraft_apps.Ycsb.Kv.next gen)

let backendscale ?(quality = Fast) ?(seed = 23) () =
  List.map
    (fun backend ->
      let knee =
        max_under_slo ~quality ~hi:5_000_000.
          (backendscale_setup ~seed ~backend)
      in
      (* Faulted run at 60% of the backend's own knee: kill the ordering
         linchpin mid-run — the leader under raft, an arbitrary replica
         under rabia (there is no linchpin; that asymmetry is the
         experiment) — and read the outage off the bucketed completion
         series. The report's p99 spans the whole faulted window. *)
      let s = backendscale_setup ~seed ~backend in
      let deploy = Deploy.create (Deploy.config ~flow_cap:1000 s.params) in
      Array.iter (fun n -> Hnode.preload n s.preload) deploy.Deploy.nodes;
      let rate = Float.max 50_000. (0.6 *. knee) in
      let duration =
        match quality with Fast -> Timebase.ms 600 | Full -> Timebase.s 2
      in
      let kill_at = duration * 2 / 5 in
      let bucket = Timebase.ms 20 in
      let engine = deploy.Deploy.engine in
      let t0 = Engine.now engine in
      let completions = Series.create ~bucket () in
      let nacks = Series.create ~bucket () in
      let gen =
        Loadgen.create deploy ~clients:s.clients ~rate_rps:rate
          ~workload:s.workload
          ~on_reply:(fun ~rid:_ ~op:_ ~sent_at:_ ~latency ->
            Series.add completions ~at:(Engine.now engine - t0) latency)
          ~on_nack:(fun ~at -> Series.mark nacks ~at:(at - t0))
          ~retry:(Timebase.ms 50, 8) ~seed:(s.seed + 7) ()
      in
      Engine.after engine kill_at (fun () ->
          match backend with
          | Hnode.Raft -> ignore (Deploy.kill_leader deploy)
          | Hnode.Rabia -> Deploy.kill_node deploy 0);
      let confirm = Loadgen.run gen ~warmup:0 ~duration () in
      Deploy.quiesce deploy ~extra:(Timebase.ms 200) ();
      let series =
        Failure.merge_series ~bucket_width:bucket
          ~completions:(Series.buckets completions)
          ~nacks:(Series.buckets nacks)
      in
      (* Recovery = end of the last unhealthy FULL bucket after the kill
         (drain-era buckets past the arrival cutoff are excluded — their
         low counts reflect the generator stopping, not an outage). *)
      let kill_s = Timebase.to_s_f kill_at in
      let dur_s = Timebase.to_s_f duration in
      let w_s = Timebase.to_s_f bucket in
      let healthy_krps = 0.9 *. rate /. 1e3 in
      let outage_end =
        List.fold_left
          (fun acc (b : Failure.bucket) ->
            if
              b.Failure.t_s >= kill_s
              && b.Failure.t_s +. w_s <= dur_s
              && b.Failure.krps < healthy_krps
            then b.Failure.t_s +. w_s
            else acc)
          kill_s series
      in
      {
        backend;
        knee_rps = knee;
        kill_p99_us = confirm.Loadgen.p99_us;
        recovery_ms = (outage_end -. kill_s) *. 1e3;
        consistent = Deploy.consistent deploy;
        confirm;
      })
    [ Hnode.Raft; Hnode.Rabia ]

let netscale ?(quality = Fast) ?(stage_counts = [ 1; 2; 4 ]) ?(seed = 42) () =
  List.map
    (fun stages ->
      let knee =
        max_under_slo ~quality ~hi:8_000_000. (netscale_setup ~seed ~stages)
      in
      (* Confirmation run just under the knee on a retained deployment:
         replica agreement is the cross-stage determinism check, and the
         leader's per-stage busy census shows what binds next. *)
      let s = netscale_setup ~seed ~stages in
      let deploy = Deploy.create (Deploy.config ?flow_cap:s.flow_cap s.params) in
      Array.iter (fun n -> Hnode.preload n s.preload) deploy.Deploy.nodes;
      let rate = Float.max 50_000. (0.95 *. knee) in
      let gen =
        Loadgen.create deploy ~clients:s.clients ~rate_rps:rate
          ~workload:s.workload ~seed:(s.seed + 7) ()
      in
      let warmup, duration = window ~quality ~rate_rps:rate in
      let confirm = Loadgen.run gen ~warmup ~duration () in
      Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
      let stage_busy =
        match Deploy.leader deploy with
        | Some l -> Hnode.stage_busy_times l
        | None -> []
      in
      {
        stages;
        knee_rps = knee;
        consistent = Deploy.consistent deploy;
        stage_busy;
        confirm;
      })
    stage_counts
