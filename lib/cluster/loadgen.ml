open Hovercraft_sim
open Hovercraft_r2p2
open Hovercraft_core
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Op = Hovercraft_apps.Op
module Metrics = Hovercraft_obs.Metrics

module Rid_tbl = Hashtbl.Make (struct
  type t = R2p2.req_id

  let equal = R2p2.req_id_equal
  let hash = R2p2.req_id_hash
end)

type endpoint = {
  port : Protocol.payload Fabric.port;
  ids : R2p2.Id_source.t;
}

type report = {
  offered_rps : float;
  sent : int;
  completed : int;
  nacked : int;
  lost : int;
  goodput_rps : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  max_us : float;
}

type t = {
  deploy : Deploy.t;
  engine : Engine.t;
  mutable endpoints : endpoint array;
  rate_rps : float;
  profile : Traffic.profile option;
  mutable run_start : Timebase.t;
  workload : Rng.t -> Op.t;
  target : Addr.t option;
  unrestricted_reads : bool;
  retry : (Timebase.t * int) option;
  on_reply :
    (rid:R2p2.req_id -> op:Op.t -> sent_at:Timebase.t -> latency:Timebase.t -> unit)
    option;
  on_nack : (at:Timebase.t -> unit) option;
  rng : Rng.t;
  outstanding : (Timebase.t * Op.t) Rid_tbl.t;
  stats : Stats.t;
  metrics : Metrics.t;
  c_sent : Metrics.counter;
  c_completed : Metrics.counter;
  c_nacked : Metrics.counter;
  c_retried : Metrics.counter;
  c_lost : Metrics.counter;
  h_latency_ns : Metrics.histogram;
  mutable measure_from : Timebase.t;
  mutable measure_to : Timebase.t;
  mutable next_endpoint : int;
}

let client_link_gbps = 10.

let on_packet t (pkt : Protocol.payload Fabric.packet) =
  let now = Engine.now t.engine in
  match pkt.payload with
  | Protocol.Response { rid } -> (
      match Rid_tbl.find_opt t.outstanding rid with
      | Some (sent_at, op) ->
          Rid_tbl.remove t.outstanding rid;
          let latency = now - sent_at in
          (* Window membership is decided by when the request was SENT, not
             when the reply arrived: replies landing after measure_to (e.g.
             during drain) still belong to the run. Gating on arrival would
             silently drop exactly the slowest completions and bias every
             tail percentile downward. *)
          if sent_at >= t.measure_from && sent_at <= t.measure_to then begin
            Metrics.incr t.c_completed;
            Stats.add t.stats latency;
            Metrics.observe t.h_latency_ns latency;
            match t.on_reply with
            | Some f -> f ~rid ~op ~sent_at ~latency
            | None -> ()
          end
      | None -> () (* duplicate or out-of-window reply *))
  | Protocol.Nack { rid } -> (
      match Rid_tbl.find_opt t.outstanding rid with
      | Some (sent_at, _) ->
          Rid_tbl.remove t.outstanding rid;
          if sent_at >= t.measure_from && sent_at <= t.measure_to then begin
            Metrics.incr t.c_nacked;
            match t.on_nack with Some f -> f ~at:now | None -> ()
          end
      | None -> ())
  | Protocol.Wrong_shard { rid; _ } -> (
      (* This single-group load generator has no shard map to consult;
         count it as a rejection so a misconfigured run is visible
         (Shard_loadgen, which can re-route, handles these itself). *)
      match Rid_tbl.find_opt t.outstanding rid with
      | Some (sent_at, _) ->
          Rid_tbl.remove t.outstanding rid;
          if sent_at >= t.measure_from && sent_at <= t.measure_to then begin
            Metrics.incr t.c_nacked;
            match t.on_nack with Some f -> f ~at:now | None -> ()
          end
      | None -> ())
  | Protocol.Request _ | Protocol.Raft _ | Protocol.Recovery_request _
  | Protocol.Recovery_response _ | Protocol.Probe _ | Protocol.Probe_reply _
  | Protocol.Agg_commit _ | Protocol.Feedback _ | Protocol.Reconfig _ | Protocol.Rabia _ ->
      ()

let create deploy ~clients ~rate_rps ?profile ~workload ?target
    ?(unrestricted_reads = false) ?retry ?on_reply ?on_nack ~seed () =
  if clients <= 0 then invalid_arg "Loadgen.create: need at least one client";
  if rate_rps <= 0. then invalid_arg "Loadgen.create: rate must be positive";
  let engine = deploy.Deploy.engine in
  let metrics = Metrics.create () in
  let t =
    {
      deploy;
      engine;
      endpoints = [||];
      rate_rps;
      profile;
      run_start = 0;
      workload;
      target;
      unrestricted_reads;
      retry;
      on_reply;
      on_nack;
      rng = Rng.create seed;
      outstanding = Rid_tbl.create 4096;
      stats = Stats.create ();
      metrics;
      c_sent = Metrics.counter metrics "sent";
      c_completed = Metrics.counter metrics "completed";
      c_nacked = Metrics.counter metrics "nacked";
      c_retried = Metrics.counter metrics "retried";
      c_lost = Metrics.counter metrics "lost";
      h_latency_ns = Metrics.histogram metrics "latency_ns";
      measure_from = max_int;
      measure_to = max_int;
      next_endpoint = 0;
    }
  in
  t.endpoints <-
    Array.init clients (fun i ->
        let addr = Addr.Client i in
        {
          port =
            Fabric.attach deploy.Deploy.fabric ~addr ~rate_gbps:client_link_gbps
              ~handler:(on_packet t);
          ids = R2p2.Id_source.create ~src_addr:addr ~src_port:(1000 + i);
        });
  t

let transmit t ep rid op =
  let unrestricted = t.unrestricted_reads && Op.read_only op in
  let policy =
    if unrestricted then R2p2.Unrestricted
    else if Op.read_only op then R2p2.Replicated_req_r
    else R2p2.Replicated_req
  in
  let payload = Protocol.Request { rid; policy; op } in
  let bytes = Protocol.payload_bytes ~with_bodies:false payload in
  let dst =
    if unrestricted then Addr.Router
    else
      match t.target with Some a -> a | None -> Deploy.client_target t.deploy
  in
  Fabric.send t.deploy.Deploy.fabric ep.port ~dst ~bytes payload

(* Retransmit with the same request id until answered or out of
   attempts. *)
let rec arm_retry t ep rid op attempts_left =
  match t.retry with
  | None -> ()
  | Some (timeout, _) ->
      Engine.after t.engine timeout (fun () ->
          if Rid_tbl.mem t.outstanding rid && attempts_left > 0 then begin
            Metrics.incr t.c_retried;
            transmit t ep rid op;
            arm_retry t ep rid op (attempts_left - 1)
          end)

let send_one t =
  let ep = t.endpoints.(t.next_endpoint) in
  t.next_endpoint <- (t.next_endpoint + 1) mod Array.length t.endpoints;
  let op = t.workload t.rng in
  let rid = R2p2.Id_source.next ep.ids in
  Rid_tbl.replace t.outstanding rid (Engine.now t.engine, op);
  Metrics.incr t.c_sent;
  transmit t ep rid op;
  match t.retry with
  | Some (_, attempts) -> arm_retry t ep rid op attempts
  | None -> ()

(* The same exponential draw whether or not a profile is installed — a
   profile only substitutes the instantaneous rate, so constant-rate runs
   consume the identical RNG stream and stay byte-identical. *)
let interarrival t =
  let u = 1.0 -. Rng.float t.rng in
  let rate =
    match t.profile with
    | None -> t.rate_rps
    | Some p -> Traffic.rate_at p (Engine.now t.engine - t.run_start)
  in
  let gap_ns = -.log u *. 1e9 /. rate in
  max 1 (int_of_float gap_ns)

let run t ~warmup ~duration ?(drain = Timebase.ms 20) () =
  let start = Engine.now t.engine in
  let stop_at = start + duration in
  t.run_start <- start;
  t.measure_from <- start + warmup;
  t.measure_to <- stop_at;
  let rec arrival () =
    if Engine.now t.engine < stop_at then begin
      send_one t;
      Engine.after t.engine (interarrival t) arrival
    end
  in
  Engine.after t.engine (interarrival t) arrival;
  Engine.run ~until:(stop_at + drain) t.engine;
  (* Anything still outstanding that was sent inside the measurement window
     never got an answer: report it as lost instead of pretending the
     window was clean. *)
  let lost = ref 0 in
  Rid_tbl.iter
    (fun _ (sent_at, _) ->
      if sent_at >= t.measure_from && sent_at <= t.measure_to then incr lost)
    t.outstanding;
  Metrics.add t.c_lost !lost;
  let completed = Metrics.value t.c_completed in
  let window_s = Timebase.to_s_f (t.measure_to - t.measure_from) in
  let pct p = if Stats.count t.stats = 0 then 0. else Timebase.to_us_f (Stats.percentile t.stats p) in
  let offered =
    match t.profile with
    | None -> t.rate_rps
    | Some p -> Traffic.mean_over p ~duration
  in
  {
    offered_rps = offered;
    sent = Metrics.value t.c_sent;
    completed;
    nacked = Metrics.value t.c_nacked;
    lost = !lost;
    goodput_rps = (if window_s > 0. then float_of_int completed /. window_s else 0.);
    mean_us = Stats.mean t.stats /. 1e3;
    p50_us = pct 0.5;
    p99_us = pct 0.99;
    max_us = Timebase.to_us_f (Stats.max_sample t.stats);
  }

let stats t = t.stats
let retried t = Metrics.value t.c_retried
let metrics t = t.metrics
let snapshot t = Metrics.snapshot t.metrics
