type kind = Raft | Rabia

let kind_of_string = function
  | "raft" -> Ok Raft
  | "rabia" -> Ok Rabia
  | s -> Error (Printf.sprintf "unknown backend %S (expected raft|rabia)" s)

let kind_name = function Raft -> "raft" | Rabia -> "rabia"
let pp_kind fmt k = Format.pp_print_string fmt (kind_name k)

module type BACKEND = sig
  type ('cmd, 'snap) t
  type ('cmd, 'snap) input
  type ('cmd, 'snap) action

  val handle :
    ('cmd, 'snap) t -> ('cmd, 'snap) input -> ('cmd, 'snap) action list

  val id : ('cmd, 'snap) t -> int
  val members : ('cmd, 'snap) t -> int list
  val log : ('cmd, 'snap) t -> 'cmd Hovercraft_raft.Log.t
  val commit_index : ('cmd, 'snap) t -> int
  val applied_index : ('cmd, 'snap) t -> int

  val set_snapshot :
    ('cmd, 'snap) t -> 'snap Hovercraft_raft.Snapshot.meta -> unit

  val snapshot :
    ('cmd, 'snap) t -> 'snap Hovercraft_raft.Snapshot.meta option

  val snapshot_index : ('cmd, 'snap) t -> int
  val compact : ('cmd, 'snap) t -> retain:int -> int
  val recover : ('cmd, 'snap) t -> unit
end

module Raft_backend = Hovercraft_raft.Node
