open Hovercraft_sim
module Rlog = Hovercraft_raft.Log
module Rtypes = Hovercraft_raft.Types
module Snapshot = Hovercraft_raft.Snapshot

module Smap = Map.Make (String)

type config = { id : int; peers : int array; batch_max : int; coin_seed : int }
type 'cmd value = Bot | Batch of 'cmd array
type bvote = V0 | V1 | Vq

type ('cmd, 'snap) msg =
  | Proposal of { from : int; slot : int; value : 'cmd value }
  | State of {
      from : int;
      slot : int;
      round : int;
      est : bool;
      value : 'cmd value;
    }
  | Vote of {
      from : int;
      slot : int;
      round : int;
      vote : bvote;
      value : 'cmd value;
    }
  | Status of { from : int; next_slot : int }
  | Repair of { from : int; decisions : (int * 'cmd value) list }
  | Snap of { from : int; meta : 'snap Snapshot.meta }

type ('cmd, 'snap) input =
  | Receive of ('cmd, 'snap) msg
  | Tick
  | Client_command of 'cmd
  | Applied_up_to of int

type ('cmd, 'snap) action =
  | Send of int * ('cmd, 'snap) msg
  | Commit_advanced of int
  | Appended_range of int * int
  | Snapshot_installed of 'snap Snapshot.meta

(* Per-slot Ben-Or phase: collecting proposals (round 0), then for each
   round r >= 1 a state exchange followed by a vote exchange. All of it —
   including the received tallies — is durable across a simulated crash:
   a node that contributed to a decision quorum and then forgot its vote
   could later join a conflicting coin-flip quorum, which is the textbook
   way crash-recovery Ben-Or loses safety. *)
type ('cmd, 'snap) t = {
  cfg : config;
  key_of : 'cmd -> string;
  members : int list;  (* sorted, static: no reconfig under rabia *)
  quorum : int;  (* n - f = floor(n/2) + 1 *)
  f : int;  (* tolerated crash faults: floor((n-1)/2) *)
  log : 'cmd Rlog.t;
  mutable commit : int;  (* = last appended index; rabia has no
                            uncommitted suffix *)
  mutable applied : int;
  mutable next_slot : int;  (* the slot currently being agreed (1-based) *)
  decisions : (int, 'cmd value) Hashtbl.t;
      (* Every decided slot above the snapshot point, for Repair service.
         Pruned by [set_snapshot]; below the prune line laggards get the
         image instead. *)
  mutable pool : 'cmd Smap.t;
      (* Undecided client commands, keyed (and hence totally ordered) by
         [key_of]. The order is load-bearing: every node proposes the
         key-minimal [batch_max] commands of its pool, so nodes whose
         pools agree as {e sets} propose byte-identical batches no
         matter what order dissemination delivered them in. A FIFO pool
         here livelocks — once arrival orders diverge, no two nodes
         ever propose the same batch again and every slot decides null
         forever. *)
  (* --- current-slot round state (durable) --- *)
  mutable my_prop : 'cmd value option;  (* locked: never changes once sent *)
  proposals : (int, 'cmd value) Hashtbl.t;  (* sender -> value, self incl. *)
  mutable round : int;  (* 0 = proposal phase *)
  mutable voting : bool;  (* within round: false = state, true = vote *)
  mutable est : bool;
  mutable vcand : 'cmd array option;  (* the unique non-null candidate *)
  states : (int * int, bool) Hashtbl.t;  (* (round, sender) -> est *)
  votes : (int * int, bvote) Hashtbl.t;  (* (round, sender) -> vote *)
  (* --- volatile --- *)
  future : (int, ('cmd, 'snap) msg list) Hashtbl.t;
      (* buffered messages for slots ahead of us *)
  future_decisions : (int, 'cmd value) Hashtbl.t;
      (* repaired decisions beyond the contiguous point *)
  mutable tick_mark : int * int * bool;
      (* (slot, round, voting) as of the previous tick: retransmit only
         when a full tick passes with no progress *)
  mutable pull_sent : int;
      (* next_slot value of the outstanding catch-up probe, -1 when none.
         Catch-up pulls are single-flight: while one is unanswered we
         never solicit another, or every consensus message from an
         ahead peer would trigger a fresh full-window Repair from each
         of n-1 peers — redundant multi-megabyte streams that book the
         laggard's rx link far into the future and turn a transient lag
         into a permanent one (the answers arrive ever staler). *)
  mutable pull_rr : int;  (* rotation cursor for tick-retry probes *)
  mutable snap : 'snap Snapshot.meta option;
  mutable snap_slot : int;  (* slot of the snapshot's last entry *)
}

let create cfg ~key_of =
  if cfg.batch_max < 1 then invalid_arg "Rabia.create: batch_max must be >= 1";
  let members = List.sort_uniq compare (cfg.id :: Array.to_list cfg.peers) in
  let n = List.length members in
  {
    cfg;
    key_of;
    members;
    quorum = (n / 2) + 1;
    f = (n - 1) / 2;
    log = Rlog.create ();
    commit = 0;
    applied = 0;
    next_slot = 1;
    decisions = Hashtbl.create 256;
    pool = Smap.empty;
    my_prop = None;
    proposals = Hashtbl.create 8;
    round = 0;
    voting = false;
    est = false;
    vcand = None;
    states = Hashtbl.create 32;
    votes = Hashtbl.create 32;
    future = Hashtbl.create 16;
    future_decisions = Hashtbl.create 16;
    tick_mark = (0, 0, false);
    pull_sent = -1;
    pull_rr = 0;
    snap = None;
    snap_slot = 0;
  }

let id t = t.cfg.id
let members t = t.members
let log t = t.log
let commit_index t = t.commit
let applied_index t = t.applied
let next_slot t = t.next_slot
let pending t = Smap.cardinal t.pool
let pending_mem t key = Smap.mem key t.pool
let filter_pending t ~keep = t.pool <- Smap.filter (fun _ c -> keep c) t.pool

(* The common coin: a pure function of (cluster seed, slot, round), so
   every node that reaches the same tie-break flips the same bit — the
   determinism rule that keeps seeded chaos replays byte-identical. *)
let coin t ~slot ~round =
  let r =
    Rng.create
      (t.cfg.coin_seed lxor (slot * 0x9E3779B9) lxor (round * 0x85EBCA6B))
  in
  Rng.bool r 0.5

let value_key t = function
  | Bot -> ""
  | Batch arr ->
      String.concat "|" (Array.to_list (Array.map t.key_of arr))

let broadcast t msg acts =
  Array.iter (fun p -> acts := Send (p, msg) :: !acts) t.cfg.peers

(* Entry term = slot number: the slot structure is recoverable from the
   log alone (checkpoint alignment, repair arithmetic). *)
let slot_final t idx =
  idx >= 1
  && idx <= Rlog.last_index t.log
  &&
  match Rlog.term_at t.log (idx + 1) with
  | None -> true
  | Some s' -> (
      match Rlog.term_at t.log idx with Some s -> s' <> s | None -> true)

let reset_slot_state t =
  t.my_prop <- None;
  Hashtbl.reset t.proposals;
  t.round <- 0;
  t.voting <- false;
  t.est <- false;
  t.vcand <- None;
  Hashtbl.reset t.states;
  Hashtbl.reset t.votes

(* A decided batch leaves the pool; commands it carries that we never
   saw (decided from a peer's proposal) are simply not there. *)
let drop_from_pending t arr =
  Array.iter (fun c -> t.pool <- Smap.remove (t.key_of c) t.pool) arr

let apply_decision t slot value acts =
  Hashtbl.replace t.decisions slot value;
  match value with
  | Bot -> ()
  | Batch arr ->
      drop_from_pending t arr;
      let lo = Rlog.last_index t.log + 1 in
      Array.iter
        (fun c -> ignore (Rlog.append t.log { Rtypes.term = slot; cmd = c }))
        arr;
      let hi = Rlog.last_index t.log in
      t.commit <- hi;
      acts := Commit_advanced hi :: Appended_range (lo, hi) :: !acts

(* Candidate uniqueness: a candidate needs [quorum] identical proposals,
   proposals are locked per (node, slot) — durable, so even a crashed
   node cannot equivocate — and two different values with quorum support
   would need more proposers than exist. Hence at most one non-null
   candidate per slot, and any value learned from a State/Vote message is
   THE candidate. *)
let learn_value t = function
  | Batch arr -> if t.vcand = None then t.vcand <- Some arr
  | Bot -> ()

let cand_value t =
  match t.vcand with Some arr -> Batch arr | None -> Bot

let take_batch t =
  if Smap.is_empty t.pool then Bot
  else begin
    (* The key-minimal [batch_max] commands of the pool: the canonical
       proposal every node with the same pool arrives at. *)
    let batch = ref [] and n = ref 0 in
    (try
       Smap.iter
         (fun _ c ->
           if !n >= t.cfg.batch_max then raise Exit;
           batch := c :: !batch;
           incr n)
         t.pool
     with Exit -> ());
    Batch (Array.of_list (List.rev !batch))
  end

(* ------------------------------------------------------------------ *)
(* The per-slot protocol                                               *)

let rec maybe_start t acts =
  if t.my_prop = None && ((not (Smap.is_empty t.pool)) || Hashtbl.length t.proposals > 0)
  then begin
    let v = take_batch t in
    t.my_prop <- Some v;
    Hashtbl.replace t.proposals t.cfg.id v;
    broadcast t (Proposal { from = t.cfg.id; slot = t.next_slot; value = v }) acts;
    check_proposals t acts
  end

and check_proposals t acts =
  if t.round = 0 && t.my_prop <> None
     && Hashtbl.length t.proposals >= t.quorum
  then begin
    (* Weak MVC reduction: estimate 1 ("commit the batch") only with
       quorum-identical non-null proposals in hand; 0 otherwise. *)
    let counts = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ v ->
        match v with
        | Bot -> ()
        | Batch arr ->
            let k = value_key t v in
            let c = try Hashtbl.find counts k with Not_found -> (0, arr) in
            Hashtbl.replace counts k (fst c + 1, arr))
      t.proposals;
    t.est <- false;
    Hashtbl.iter
      (fun _ (c, arr) ->
        if c >= t.quorum then begin
          t.est <- true;
          t.vcand <- Some arr
        end)
      counts;
    enter_state_phase t acts
  end

and enter_state_phase t acts =
  t.round <- t.round + 1;
  t.voting <- false;
  Hashtbl.replace t.states (t.round, t.cfg.id) t.est;
  broadcast t
    (State
       {
         from = t.cfg.id;
         slot = t.next_slot;
         round = t.round;
         est = t.est;
         value = cand_value t;
       })
    acts;
  check_states t acts

and check_states t acts =
  if t.round >= 1 && not t.voting then begin
    let total = ref 0 and ones = ref 0 in
    Hashtbl.iter
      (fun (r, _) est ->
        if r = t.round then begin
          incr total;
          if est then incr ones
        end)
      t.states;
    if !total >= t.quorum then begin
      let vote =
        if !ones >= t.quorum then V1
        else if !total - !ones >= t.quorum then V0
        else Vq
      in
      t.voting <- true;
      Hashtbl.replace t.votes (t.round, t.cfg.id) vote;
      broadcast t
        (Vote
           {
             from = t.cfg.id;
             slot = t.next_slot;
             round = t.round;
             vote;
             value = cand_value t;
           })
        acts;
      check_votes t acts
    end
  end

and check_votes t acts =
  if t.round >= 1 && t.voting then begin
    let total = ref 0 and c1 = ref 0 and c0 = ref 0 in
    Hashtbl.iter
      (fun (r, _) v ->
        if r = t.round then begin
          incr total;
          match v with V1 -> incr c1 | V0 -> incr c0 | Vq -> ()
        end)
      t.votes;
    if !total >= t.quorum then
      if !c1 >= t.f + 1 then decide t true acts
      else if !c0 >= t.f + 1 then decide t false acts
      else begin
        (if !c1 >= 1 then t.est <- true
         else if !c0 >= 1 then t.est <- false
         else
           (* All-question-mark: the common coin breaks the tie. A node
              flipping 1 without knowing the candidate falls back to 0 —
              it cannot champion a value it cannot name; the value
              piggybacked on every est=1 message re-synchronizes it
              within a round. *)
           t.est <- coin t ~slot:t.next_slot ~round:t.round && t.vcand <> None);
        enter_state_phase t acts
      end
  end

and decide t one acts =
  let value = if one then Batch (Option.get t.vcand) else Bot in
  apply_decision t t.next_slot value acts;
  advance_slot t acts

and advance_slot t acts =
  t.next_slot <- t.next_slot + 1;
  reset_slot_state t;
  (* Decisions repaired ahead of us may now be contiguous. *)
  (match Hashtbl.find_opt t.future_decisions t.next_slot with
  | Some v ->
      Hashtbl.remove t.future_decisions t.next_slot;
      apply_decision t t.next_slot v acts;
      advance_slot t acts
  | None ->
      (* Replay messages buffered for the slot we just reached. *)
      (match Hashtbl.find_opt t.future t.next_slot with
      | Some msgs ->
          Hashtbl.remove t.future t.next_slot;
          List.iter (fun m -> handle_msg t m acts) (List.rev msgs)
      | None -> ());
      maybe_start t acts)

(* Solicit catch-up from [peer], at most one probe in flight: a repeat
   for the same next_slot means the previous one is still unanswered
   (or its answer is in flight), and re-asking — possibly a different
   peer — would just stack redundant Repair windows on our rx link. A
   tick with no progress resets the flight (see [Tick]). *)
and pull t ~peer acts =
  if t.pull_sent <> t.next_slot then begin
    t.pull_sent <- t.next_slot;
    acts :=
      Send (peer, Status { from = t.cfg.id; next_slot = t.next_slot }) :: !acts
  end

(* Serve a laggard: decisions from its slot onward, or the whole image
   when they were pruned behind the snapshot. *)
and repair_for t ~peer ~their_next acts =
  if their_next <= t.snap_slot then
    match t.snap with
    | Some meta -> acts := Send (peer, Snap { from = t.cfg.id; meta }) :: !acts
    | None -> ()
  else begin
    let hi = min (t.next_slot - 1) (their_next + 63) in
    let ds = ref [] in
    for s = hi downto their_next do
      match Hashtbl.find_opt t.decisions s with
      | Some v -> ds := (s, v) :: !ds
      | None -> ()
    done;
    if !ds <> [] then
      acts := Send (peer, Repair { from = t.cfg.id; decisions = !ds }) :: !acts
  end

and handle_msg t msg acts =
  let slot_of = function
    | Proposal { slot; _ } | State { slot; _ } | Vote { slot; _ } -> Some slot
    | Status _ | Repair _ | Snap _ -> None
  in
  match slot_of msg with
  | Some slot when slot < t.next_slot ->
      (* The sender is still agreeing on a slot we already decided. Do
         NOT push the decisions: a stalled laggard retransmits its phase
         message every tick to every peer, and n-1 unsolicited repair
         windows per tick swamp its rx link (the window data outweighs
         the trigger by ~1000x). Send a 16-byte hint instead — the
         laggard pulls from one peer at a time ([pull] is single-flight,
         so concurrent hints cost nothing). *)
      let peer =
        match msg with
        | Proposal { from; _ } | State { from; _ } | Vote { from; _ } -> from
        | _ -> assert false
      in
      acts :=
        Send (peer, Status { from = t.cfg.id; next_slot = t.next_slot })
        :: !acts
  | Some slot when slot > t.next_slot ->
      (* Ahead of us: buffer (bounded), and pull what we're missing. *)
      let peer =
        match msg with
        | Proposal { from; _ } | State { from; _ } | Vote { from; _ } -> from
        | _ -> assert false
      in
      let buf =
        match Hashtbl.find_opt t.future slot with Some l -> l | None -> []
      in
      if List.length buf < 64 then Hashtbl.replace t.future slot (msg :: buf);
      pull t ~peer acts
  | Some _ -> (
      (* Current slot. *)
      match msg with
      | Proposal { from; value; _ } ->
          if not (Hashtbl.mem t.proposals from) then begin
            Hashtbl.replace t.proposals from value;
            (* Adopt commands we have never seen: dissemination lost them
               on the way here, but the proposal carries them whole. This
               is what un-sticks a command only one live node knows —
               without it, that batch could never reach quorum-identical
               proposals. Duplicates with already-decided slots are
               possible and resolved by the embedder's exactly-once
               apply. *)
            (match value with
            | Batch arr ->
                Array.iter
                  (fun c ->
                    let k = t.key_of c in
                    if not (Smap.mem k t.pool) then
                      t.pool <- Smap.add k c t.pool)
                  arr
            | Bot -> ());
            maybe_start t acts;
            check_proposals t acts
          end
      | State { from; round; est; value; _ } ->
          learn_value t value;
          if not (Hashtbl.mem t.states (round, from)) then begin
            Hashtbl.replace t.states (round, from) est;
            if round = t.round then check_states t acts
          end
      | Vote { from; round; vote; value; _ } ->
          learn_value t value;
          if not (Hashtbl.mem t.votes (round, from)) then begin
            Hashtbl.replace t.votes (round, from) vote;
            if round = t.round then check_votes t acts
          end
      | Status _ | Repair _ | Snap _ -> assert false)
  | None -> (
      match msg with
      | Status { from; next_slot } ->
          if next_slot < t.next_slot then
            repair_for t ~peer:from ~their_next:next_slot acts
          else if next_slot > t.next_slot then
            (* A hint that we are the laggard: pull (single-flight). *)
            pull t ~peer:from acts
      | Repair { from; decisions } ->
          let before = t.next_slot in
          List.iter
            (fun (slot, v) ->
              if slot >= t.next_slot then
                Hashtbl.replace t.future_decisions slot v)
            decisions;
          let progressed = ref true in
          while !progressed do
            match Hashtbl.find_opt t.future_decisions t.next_slot with
            | Some v ->
                Hashtbl.remove t.future_decisions t.next_slot;
                (* Decided externally: whatever round state we had for
                   this slot is moot. *)
                apply_decision t t.next_slot v acts;
                t.next_slot <- t.next_slot + 1;
                reset_slot_state t
            | None -> progressed := false
          done;
          let stale =
            Hashtbl.fold
              (fun s _ acc -> if s < t.next_slot then s :: acc else acc)
              t.future []
          in
          List.iter (Hashtbl.remove t.future) stale;
          (match Hashtbl.find_opt t.future t.next_slot with
          | Some msgs ->
              Hashtbl.remove t.future t.next_slot;
              List.iter (fun m -> handle_msg t m acts) (List.rev msgs)
          | None -> ());
          (* Chain the pull: a repair that advanced us probably has a
             successor window behind it — ask now rather than waiting a
             tick, so catch-up runs at network round-trip speed. Strict
             progress guards the chain: a repair that taught us nothing
             sends no follow-up, so two peers can never ping-pong. *)
          if t.next_slot > before then pull t ~peer:from acts;
          maybe_start t acts
      | Snap { from; meta } ->
          let snap_slot = meta.Snapshot.last_term in
          if snap_slot >= t.next_slot then begin
            Rlog.install t.log ~base:meta.Snapshot.last_idx
              ~base_term:meta.Snapshot.last_term;
            t.commit <- meta.Snapshot.last_idx;
            t.applied <- max t.applied meta.Snapshot.last_idx;
            t.snap <- Some meta;
            t.snap_slot <- snap_slot;
            t.next_slot <- snap_slot + 1;
            reset_slot_state t;
            Hashtbl.reset t.decisions;
            let stale =
              Hashtbl.fold
                (fun s _ acc -> if s < t.next_slot then s :: acc else acc)
                t.future_decisions []
            in
            List.iter (Hashtbl.remove t.future_decisions) stale;
            let stale_msgs =
              Hashtbl.fold
                (fun s _ acc -> if s < t.next_slot then s :: acc else acc)
                t.future []
            in
            List.iter (Hashtbl.remove t.future) stale_msgs;
            acts :=
              Commit_advanced t.commit :: Snapshot_installed meta :: !acts;
            (* Pull decisions made since the image was cut (same chained
               catch-up as Repair; installing always strictly advances). *)
            pull t ~peer:from acts;
            maybe_start t acts
          end
      | Proposal _ | State _ | Vote _ -> assert false)

(* ------------------------------------------------------------------ *)

let handle t input =
  let acts = ref [] in
  (match input with
  | Receive msg -> handle_msg t msg acts
  | Client_command c ->
      let k = t.key_of c in
      if not (Smap.mem k t.pool) then begin
        t.pool <- Smap.add k c t.pool;
        maybe_start t acts
      end
  | Applied_up_to idx -> if idx > t.applied then t.applied <- idx
  | Tick ->
      let mark = (t.next_slot, t.round, t.voting) in
      if mark = t.tick_mark then begin
        (* A full tick with no progress: retransmit the current phase's
           message (drop recovery) and probe for repairs. *)
        (match t.my_prop with
        | Some v when t.round = 0 ->
            broadcast t
              (Proposal { from = t.cfg.id; slot = t.next_slot; value = v })
              acts
        | Some _ when not t.voting ->
            broadcast t
              (State
                 {
                   from = t.cfg.id;
                   slot = t.next_slot;
                   round = t.round;
                   est = t.est;
                   value = cand_value t;
                 })
              acts
        | Some _ ->
            let vote =
              match Hashtbl.find_opt t.votes (t.round, t.cfg.id) with
              | Some v -> v
              | None -> Vq
            in
            broadcast t
              (Vote
                 {
                   from = t.cfg.id;
                   slot = t.next_slot;
                   round = t.round;
                   vote;
                   value = cand_value t;
                 })
              acts
        | None -> ());
        (* Probe for repairs: reset the single-flight pull (whatever was
           outstanding is a full tick stale) and ask one peer, rotating
           so a dead or partitioned target only costs one tick. *)
        t.pull_sent <- -1;
        if Array.length t.cfg.peers > 0 then begin
          let peer =
            t.cfg.peers.(t.pull_rr mod Array.length t.cfg.peers)
          in
          t.pull_rr <- t.pull_rr + 1;
          pull t ~peer acts
        end
      end;
      t.tick_mark <- mark;
      maybe_start t acts);
  List.rev !acts

(* ------------------------------------------------------------------ *)
(* Snapshots, compaction, recovery                                     *)

let set_snapshot t (meta : 'snap Snapshot.meta) =
  if meta.Snapshot.last_idx > t.applied then
    invalid_arg "Rabia.set_snapshot: beyond applied";
  let newer =
    match t.snap with
    | Some m -> meta.Snapshot.last_idx > m.Snapshot.last_idx
    | None -> true
  in
  if newer then begin
    t.snap <- Some meta;
    t.snap_slot <- meta.Snapshot.last_term;
    (* Slots at or below the snapshot's are served by the image now. *)
    let pruned =
      Hashtbl.fold
        (fun s _ acc -> if s <= t.snap_slot then s :: acc else acc)
        t.decisions []
    in
    List.iter (Hashtbl.remove t.decisions) pruned
  end

let snapshot t = t.snap

let snapshot_index t =
  match t.snap with Some m -> m.Snapshot.last_idx | None -> 0

let compact t ~retain =
  let bound =
    match t.snap with Some m -> m.Snapshot.last_idx | None -> t.applied
  in
  let cut = min bound (Rlog.last_index t.log - retain) in
  if cut > Rlog.base t.log then Rlog.compact_to t.log cut;
  Rlog.base t.log

let recover t =
  (* Consensus state is durable (see the interface's safety note); only
     buffered messages — volatile by nature — are dropped, and the tick
     mark resets so the first tick after restart retransmits. *)
  Hashtbl.reset t.future;
  t.tick_mark <- (-1, -1, false);
  t.pull_sent <- -1
