(** The pluggable ordering-backend boundary (HovercRaft §3: ordering is
    separable from dissemination and execution).

    A backend is a pure state-transition machine in the [raft_role.ml]
    idiom: an explicit state record, one [handle] entry point consuming
    an input (received message, timer, client command, application
    progress) and returning the actions the embedder must perform, in
    order. The embedder ([Hnode]) owns clocks, transport, randomized
    durations and the apply thread; the backend owns ordering and commit
    safety. Nothing in a backend reads the wall clock or a private RNG —
    every run is a pure function of the inputs plus the cluster seed, so
    seeded chaos schedules replay byte-identically.

    Two backends implement the contract:

    - {!Raft_backend} — the existing Raft node, re-exported verbatim so
      the historical path stays byte-identical at every (S, K) combo;
    - {!Rabia} — leaderless randomized agreement (Rabia-style weak MVC
      over a common-case fast path): no leader, no election timeout, and
      hence no failover latency after a node kill. *)

(** Which ordering backend a deployment runs. *)
type kind = Raft | Rabia

val kind_of_string : string -> (kind, string) result
val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

(** What every ordering backend must provide. The signature is the
    refactor's payload: [Hnode] is written against it, not against
    [Raft.Node]. Action/input/message types stay backend-specific (their
    payloads differ), so the contract is the shape — pure transitions,
    explicit actions — plus the common observers below. *)
module type BACKEND = sig
  type ('cmd, 'snap) t
  type ('cmd, 'snap) input
  type ('cmd, 'snap) action

  val handle :
    ('cmd, 'snap) t -> ('cmd, 'snap) input -> ('cmd, 'snap) action list
  (** Process one input; returns the actions in the order they must be
      performed. Pure with respect to time and IO. *)

  val id : ('cmd, 'snap) t -> int
  val members : ('cmd, 'snap) t -> int list
  val log : ('cmd, 'snap) t -> 'cmd Hovercraft_raft.Log.t
  val commit_index : ('cmd, 'snap) t -> int
  val applied_index : ('cmd, 'snap) t -> int

  val set_snapshot :
    ('cmd, 'snap) t -> 'snap Hovercraft_raft.Snapshot.meta -> unit

  val snapshot :
    ('cmd, 'snap) t -> 'snap Hovercraft_raft.Snapshot.meta option

  val snapshot_index : ('cmd, 'snap) t -> int
  val compact : ('cmd, 'snap) t -> retain:int -> int
  val recover : ('cmd, 'snap) t -> unit
end

(** The Raft backend: the existing implementation, unchanged. Aliasing
    (rather than wrapping) is what guarantees the refactor cannot perturb
    the Raft path — same module, same code, same fingerprints. *)
module Raft_backend : sig
  include module type of Hovercraft_raft.Node
end
