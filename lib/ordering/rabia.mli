(** Rabia-style leaderless randomized consensus (PAPERS.md): one
    binary-agreement instance per log {e slot}, in the weak-MVC shape —
    nodes exchange batch proposals, reduce to a binary question ("commit
    the unique majority-proposed batch, or a null slot?") and settle it
    with Ben-Or rounds whose tie-breaking coin is a deterministic
    function of (cluster seed, slot, round), shared by every node. No
    leader, no election, no failover latency: a node kill costs the
    quorum nothing but the dead node's votes.

    Pure state-transition machine in the {!Ordering.BACKEND} idiom:
    [handle] consumes one input and returns the actions to perform, in
    order. The module never reads a clock or a private RNG — a run is a
    function of its inputs and the seed, so seeded chaos replays
    byte-identically.

    Safety notes the embedder must respect:

    - {e Round state is durable.} Crash-recovery Ben-Or with forgotten
      votes is unsafe (a node that voted for a decision, crashed, and
      re-entered fresh can join a conflicting coin-flip quorum), so the
      per-slot round state — locked proposal, estimate, candidate,
      received tallies — persists across a simulated crash exactly like
      Raft's term/vote/log. {!recover} clears only message buffers.
    - {e Slots are atomic in the log.} A decided batch appends as one
      unit (entry term = slot number), so [last_index] is always
      slot-final; checkpoints must cut at slot boundaries
      ({!slot_final}).
    - Decided batches may occasionally duplicate a command decided in an
      earlier slot (two nodes proposing it concurrently); the embedder's
      exactly-once completion layer deduplicates at apply time. *)

type config = {
  id : int;
  peers : int array;
  batch_max : int;  (** Max commands per slot proposal. *)
  coin_seed : int;
      (** Cluster-wide seed for the common coin — every node must be
          given the same value. *)
}

(** A slot's value: a batch of commands, or the null slot. *)
type 'cmd value = Bot | Batch of 'cmd array

type bvote = V0 | V1 | Vq

type ('cmd, 'snap) msg =
  | Proposal of { from : int; slot : int; value : 'cmd value }
  | State of {
      from : int;
      slot : int;
      round : int;
      est : bool;
      value : 'cmd value;
          (** The sender's candidate batch when it knows one (piggybacked
              so the unique candidate propagates); [Bot] otherwise. *)
    }
  | Vote of {
      from : int;
      slot : int;
      round : int;
      vote : bvote;
      value : 'cmd value;
    }
  | Status of { from : int; next_slot : int }
      (** Pull-based catch-up probe: "my next undecided slot is
          [next_slot]" — a peer that is ahead answers with [Repair] (or
          [Snap] when the slots were compacted away). *)
  | Repair of { from : int; decisions : (int * 'cmd value) list }
  | Snap of { from : int; meta : 'snap Hovercraft_raft.Snapshot.meta }
      (** Whole-image snapshot install for peers behind the compaction
          point. *)

type ('cmd, 'snap) input =
  | Receive of ('cmd, 'snap) msg
  | Tick
      (** Periodic: retransmit the current phase's message when the slot
          made no progress since the previous tick, and broadcast a
          [Status] probe. The embedder owns the cadence. *)
  | Client_command of 'cmd
  | Applied_up_to of int

type ('cmd, 'snap) action =
  | Send of int * ('cmd, 'snap) msg
  | Commit_advanced of int
  | Appended_range of int * int
      (** Entries [lo..hi] just entered the log (a decided batch or a
          repair); the embedder binds bodies / assigns repliers. Emitted
          before the accompanying [Commit_advanced]. *)
  | Snapshot_installed of 'snap Hovercraft_raft.Snapshot.meta
      (** A received whole-image snapshot was spliced in (emitted before
          the accompanying [Commit_advanced]): the embedder must replace
          its state machine with the image. *)

type ('cmd, 'snap) t

val create : config -> key_of:('cmd -> string) -> ('cmd, 'snap) t
(** [key_of] names a command for identity purposes — proposal-batch
    equality, pending-queue dedup. Must be injective (e.g. a printed
    request id). *)

val handle :
  ('cmd, 'snap) t -> ('cmd, 'snap) input -> ('cmd, 'snap) action list

(** {1 Observers} *)

val id : ('cmd, 'snap) t -> int
val members : ('cmd, 'snap) t -> int list
val log : ('cmd, 'snap) t -> 'cmd Hovercraft_raft.Log.t
val commit_index : ('cmd, 'snap) t -> int
val applied_index : ('cmd, 'snap) t -> int
val next_slot : ('cmd, 'snap) t -> int
val pending : ('cmd, 'snap) t -> int

(** [pending_mem t key] is whether a command with this [key_of] key is
    still in the proposal pool (received but not yet decided). Hosts use
    it to pin the command's body for as long as ordering may still need
    it — time to decision is unbounded under partitions, unlike a
    leader-ordered backend where ordering follows receipt within a round
    trip. *)
val pending_mem : ('cmd, 'snap) t -> string -> bool

(** [filter_pending t ~keep] drops every pending command for which
    [keep] is false. A node that catches up through a snapshot image
    never sees the per-slot decisions the image covers, so commands it
    had pooled that were decided inside that window would linger and be
    re-proposed — ordering an already-applied command a second time.
    The host calls this after an install, keeping only commands absent
    from the restored completion records. *)
val filter_pending : ('cmd, 'snap) t -> keep:('cmd -> bool) -> unit
val slot_final : ('cmd, 'snap) t -> int -> bool
(** Whether entry [idx] is the last of its slot — the only indices a
    checkpoint may cut at. *)

(** {1 Snapshots and compaction} *)

val set_snapshot :
  ('cmd, 'snap) t -> 'snap Hovercraft_raft.Snapshot.meta -> unit
(** Register a checkpoint. [meta.last_idx] must be slot-final; decisions
    at or below its slot are pruned (laggards get the image instead). *)

val snapshot : ('cmd, 'snap) t -> 'snap Hovercraft_raft.Snapshot.meta option
val snapshot_index : ('cmd, 'snap) t -> int

val compact : ('cmd, 'snap) t -> retain:int -> int
(** Compact the log up to the snapshot's covered prefix (or the applied
    index when no snapshot exists), always retaining the most recent
    [retain] entries; returns the new base. *)

(** {1 Crash recovery} *)

val recover : ('cmd, 'snap) t -> unit
(** Rebuild after a simulated crash–restart. Consensus state (log,
    decisions, the current slot's locked proposal / estimate / tallies)
    is durable and survives — see the safety note above. Only buffered
    out-of-window messages are dropped. *)
