(* Backend regression coverage.

   The ordering-backend extraction must be invisible to the Raft path:
   seeded runs must produce byte-identical replica state (fingerprints,
   execution counters, committed log shape) to the pre-refactor tree at
   every (mode, net_stages, apply_threads) combination. The constants in
   [baseline] were captured on the tree immediately before the ordering
   interface landed; this suite replays the same runs and compares. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore

let check = Alcotest.(check bool)

(* Same mixed kv load the pipeline/apply determinism tests use: reads,
   writes, genuine key conflicts over a small population. *)
let kv_workload rng =
  let k = Printf.sprintf "user%06d" (Rng.int rng 500) in
  if Rng.bool rng 0.3 then Op.Kv (Kvstore.Get k)
  else Op.Kv (Kvstore.Put (k, "v"))

type combo = {
  mode : Hnode.mode;
  stages : int;
  threads : int;
  seed : int;
}

let combos =
  [
    { mode = Hnode.Hover; stages = 1; threads = 1; seed = 7 };
    { mode = Hnode.Hover; stages = 2; threads = 2; seed = 7 };
    { mode = Hnode.Hover; stages = 4; threads = 4; seed = 7 };
    { mode = Hnode.Hover_pp; stages = 1; threads = 1; seed = 19 };
    { mode = Hnode.Hover_pp; stages = 4; threads = 2; seed = 19 };
    { mode = Hnode.Vanilla; stages = 1; threads = 1; seed = 23 };
  ]

let run_combo { mode; stages; threads; seed } =
  let p = Hnode.params ~mode ~n:3 () in
  let p =
    {
      p with
      Hnode.seed;
      features =
        { p.Hnode.features with Hnode.net_stages = stages; apply_threads = threads };
    }
  in
  let deploy = Deploy.create (Deploy.config p) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:80_000. ~workload:kv_workload
      ~seed:(seed + 7) ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 200) ());
  Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
  let digest =
    Array.to_list deploy.Deploy.nodes
    |> List.map (fun n ->
           ( Hnode.app_fingerprint n,
             Hnode.executed_ops n,
             Hnode.commit_index n,
             Hnode.log_length n ))
  in
  digest

let show_digest d =
  String.concat ";"
    (List.map
       (fun (fp, ex, ci, ll) -> Printf.sprintf "(%d,%d,%d,%d)" fp ex ci ll)
       d)

(* Captured pre-refactor (see header). An empty list prints the live
   values instead of comparing, which is how the constants were minted. *)
let baseline : (string * string) list =
  [
    ("hovercraft/S1/K1/seed7", "(184613487,13602,16236,16236);(184613487,12752,16236,16236);(184613487,12773,16236,16236)");
    ("hovercraft/S2/K2/seed7", "(184613487,13615,16236,16236);(184613487,12745,16236,16236);(184613487,12767,16236,16236)");
    ("hovercraft/S4/K4/seed7", "(184613487,13624,16236,16236);(184613487,12747,16236,16236);(184613487,12756,16236,16236)");
    ("hovercraft++/S1/K1/seed19", "(184613487,13423,16079,16079);(184613487,12405,16079,16079);(184613487,12784,16079,16079)");
    ("hovercraft++/S4/K2/seed19", "(184613487,13467,16079,16079);(184613487,12399,16079,16079);(184613487,12746,16079,16079)");
    ("vanilla-raft/S1/K1/seed23", "(184613487,15939,15940,15940);(184613487,11151,15940,15940);(184613487,11151,15940,15940)");
  ]

let combo_name { mode; stages; threads; seed } =
  Format.asprintf "%a/S%d/K%d/seed%d" Hnode.pp_mode mode stages threads seed

let test_fingerprints () =
  let missing = ref false in
  List.iter
    (fun c ->
      let name = combo_name c in
      let got = show_digest (run_combo c) in
      match List.assoc_opt name baseline with
      | Some want -> check ("byte-identical: " ^ name) true (got = want)
      | None ->
          Printf.eprintf "    (%S, %S);\n%!" name got;
          missing := true)
    combos;
  if !missing then Alcotest.fail "baseline entries missing (printed above)"

(* --- rabia backend ---------------------------------------------------- *)

let rabia_params ?(seed = 11) ?(n = 3) () =
  let p = Hnode.params ~mode:Hnode.Hover ~backend:Hnode.Rabia ~n () in
  { p with Hnode.seed }

let test_rabia_smoke () =
  let deploy = Deploy.create (Deploy.config (rabia_params ())) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:60_000. ~workload:kv_workload
      ~seed:29 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) () in
  Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
  check "rabia cluster completes requests" true (report.Loadgen.completed > 0);
  check "replicas converge to one fingerprint" true (Deploy.consistent deploy);
  Array.iter
    (fun node ->
      check "commit reaches the common log length" true
        (Hnode.commit_index node = Hnode.log_length node);
      check "no node thinks it leads" false (Hnode.is_leader node))
    deploy.Deploy.nodes

(* Byte-determinism: the rabia backend must be as replayable as raft —
   same seed, same run, same per-node digests. *)
let run_rabia ~seed ~stages ~threads =
  let p = rabia_params ~seed () in
  let p =
    {
      p with
      Hnode.features =
        { p.Hnode.features with Hnode.net_stages = stages; apply_threads = threads };
    }
  in
  let deploy = Deploy.create (Deploy.config p) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:60_000. ~workload:kv_workload
      ~seed:(seed + 7) ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) ());
  Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
  Array.to_list deploy.Deploy.nodes
  |> List.map (fun n ->
         ( Hnode.app_fingerprint n,
           Hnode.executed_ops n,
           Hnode.commit_index n,
           Hnode.log_length n ))

let test_rabia_deterministic () =
  let a = run_rabia ~seed:11 ~stages:1 ~threads:1 in
  let b = run_rabia ~seed:11 ~stages:1 ~threads:1 in
  check "seeded rabia runs replay byte-identically" true
    (show_digest a = show_digest b);
  let c = run_rabia ~seed:13 ~stages:1 ~threads:1 in
  check "different seed, different run" false (show_digest a = show_digest c)

(* Replica state must not depend on the hot-path compartmentalization or
   the apply-thread count under the rabia backend either. *)
let test_rabia_stage_thread_invariance () =
  let base = run_rabia ~seed:11 ~stages:1 ~threads:1 in
  let fp (f, _, ci, ll) = (f, ci, ll) in
  List.iter
    (fun (stages, threads) ->
      let d = run_rabia ~seed:11 ~stages ~threads in
      check
        (Printf.sprintf "state invariant at S%d/K%d" stages threads)
        true
        (List.map fp d = List.map fp base))
    [ (2, 2); (4, 4) ]

(* --- cross-backend equivalence ---------------------------------------- *)

(* The same seeded workload and the same seeded fault schedule, replayed
   against each backend; both must pass the full history checker
   (exactly-once, prefix agreement, committed-stays-committed, catch-up,
   consistency). Under rabia, kill-leader degrades to killing the first
   live node (a "coordinator kill") and membership/transfer events skip
   with a timeline note. *)
let chaos_outcome ~backend ~seed ?snapshots () =
  let p = Hnode.params ~mode:Hnode.Hover ~backend ~n:5 () in
  Chaos.run ~params:p ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
    ~duration:(Timebase.ms 700) ?snapshots ~workload:kv_workload ~seed ()

let assert_clean name (o : Chaos.outcome) =
  Alcotest.(check (list string))
    (name ^ ": no checker violations")
    [] o.Chaos.violations;
  check (name ^ ": exactly once") true o.Chaos.exactly_once_ok;
  check (name ^ ": committed preserved") true o.Chaos.committed_preserved;
  check (name ^ ": caught up") true o.Chaos.caught_up;
  check (name ^ ": consistent") true o.Chaos.consistent;
  check (name ^ ": progress") true (o.Chaos.report.Loadgen.completed > 0)

let test_cross_backend_chaos () =
  List.iter
    (fun seed ->
      assert_clean
        (Printf.sprintf "raft/seed%d" seed)
        (chaos_outcome ~backend:Hnode.Raft ~seed ());
      assert_clean
        (Printf.sprintf "rabia/seed%d" seed)
        (chaos_outcome ~backend:Hnode.Rabia ~seed ()))
    [ 31; 57 ]

(* Compaction era: rabia must survive chaos with aggressive checkpointing,
   where restarted nodes come back through whole-image installs and the
   snapshot-aware checker runs. *)
let test_rabia_snapshot_chaos () =
  assert_clean "rabia/snapshots"
    (chaos_outcome ~backend:Hnode.Rabia ~seed:41 ~snapshots:400 ())

(* --- invalid combinations --------------------------------------------- *)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_rabia_invalid_combos () =
  (* Backend-inapplicable knobs die at validation, with a message naming
     the conflict. *)
  expect_invalid "rabia+vanilla" (fun () ->
      Hnode.validate_params (Hnode.params ~mode:Hnode.Vanilla ~backend:Hnode.Rabia ()));
  expect_invalid "rabia+hover++" (fun () ->
      Hnode.validate_params (Hnode.params ~mode:Hnode.Hover_pp ~backend:Hnode.Rabia ()));
  expect_invalid "rabia+unreplicated" (fun () ->
      Hnode.validate_params
        (Hnode.params ~mode:Hnode.Unreplicated ~backend:Hnode.Rabia ()));
  expect_invalid "rabia+leases" (fun () ->
      let p = rabia_params () in
      Hnode.validate_params
        {
          p with
          Hnode.features =
            { p.Hnode.features with Hnode.read_mode = Hnode.Leader_leases };
        });
  (* The Deploy.config override path validates too. *)
  expect_invalid "config override rabia+vanilla" (fun () ->
      Deploy.config ~backend:Hnode.Rabia (Hnode.params ~mode:Hnode.Vanilla ()));
  (* Leader-shaped control surfaces are rejected, not silently ignored. *)
  let deploy = Deploy.create (Deploy.config (rabia_params ())) in
  expect_invalid "reconfig under rabia" (fun () ->
      Deploy.remove_node deploy 2);
  expect_invalid "add_node under rabia" (fun () -> Deploy.add_node deploy);
  expect_invalid "transfer under rabia" (fun () ->
      Hnode.transfer_leadership deploy.Deploy.nodes.(0) ~target:1);
  (* The error text names the offending combination (the CLI surfaces it
     verbatim). *)
  match
    Hnode.validate_params (Hnode.params ~mode:Hnode.Vanilla ~backend:Hnode.Rabia ())
  with
  | exception Invalid_argument msg ->
      check "message names the backend conflict" true
        (contains ~needle:"rabia" msg && contains ~needle:"hovercraft" msg)
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    ("raft backend byte-identical to pre-refactor seeds", `Slow, test_fingerprints);
    ("rabia backend smoke (agreement + convergence)", `Quick, test_rabia_smoke);
    ("rabia backend deterministic replay", `Slow, test_rabia_deterministic);
    ("rabia state invariant across stages/threads", `Slow, test_rabia_stage_thread_invariance);
    ("backend-inapplicable knob combinations rejected", `Quick, test_rabia_invalid_combos);
    ("cross-backend chaos equivalence", `Slow, test_cross_backend_chaos);
    ("rabia chaos with snapshots", `Slow, test_rabia_snapshot_chaos);
  ]
