(* Tests for the deployment, load generator and experiment harness. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Addr = Hovercraft_net.Addr
module Service = Hovercraft_apps.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_deploy_elects_node0 () =
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ())) in
  match Deploy.leader deploy with
  | Some l -> check_int "node0 bootstrapped as leader" 0 (Hnode.id l)
  | None -> Alcotest.fail "no leader after create"

let test_deploy_client_targets () =
  let target mode ?flow_cap () =
    Deploy.client_target
      (Deploy.create (Deploy.config ?flow_cap (Hnode.params ~mode ~n:3 ())))
  in
  check "unrep -> node" true
    (Addr.equal (target Hnode.Unreplicated ()) (Addr.Node 0));
  check "vanilla -> leader" true (Addr.equal (target Hnode.Vanilla ()) (Addr.Node 0));
  check "hover -> multicast" true
    (Addr.equal (target Hnode.Hover ()) (Addr.Group Addr.cluster_group));
  check "flow control -> middlebox" true
    (Addr.equal (target Hnode.Hover_pp ~flow_cap:100 ()) Addr.Middlebox)

let test_deploy_hoverpp_has_aggregator () =
  let d = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ())) in
  check "aggregator present" true (d.Deploy.aggregator <> None);
  let d' = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ())) in
  check "no aggregator in plain hover" true (d'.Deploy.aggregator = None)

let test_deploy_kill_leader_reelects () =
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ())) in
  let killed = Deploy.kill_leader deploy in
  Alcotest.(check (option int)) "killed node0" (Some 0) killed;
  Deploy.quiesce deploy ~extra:(Timebase.ms 30) ();
  match Deploy.leader deploy with
  | Some l -> check "new leader is a follower" true (Hnode.id l <> 0)
  | None -> Alcotest.fail "no re-election"

let test_loadgen_open_loop_rate () =
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Unreplicated ~n:1 ())) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:100_000.
      ~workload:(Service.sample (Service.spec ())) ~seed:1 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 50) () in
  (* Poisson with 5000 expected arrivals: allow 4 sigma. *)
  check "arrival count near rate" true (report.Loadgen.sent > 4_700 && report.Loadgen.sent < 5_300);
  check "all served at low load" true (report.Loadgen.completed > report.Loadgen.sent - 50);
  check_int "no losses" 0 report.Loadgen.lost

let test_loadgen_measures_latency () =
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Unreplicated ~n:1 ())) in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:10_000.
      ~workload:(Service.sample (Service.spec ())) ~seed:2 ()
  in
  let report = Loadgen.run gen ~warmup:(Timebase.ms 5) ~duration:(Timebase.ms 30) () in
  (* Unloaded service time is ~1us + two fabric traversals. *)
  check "p50 in the microsecond range" true
    (report.Loadgen.p50_us > 2. && report.Loadgen.p50_us < 20.);
  check "p99 >= p50" true (report.Loadgen.p99_us >= report.Loadgen.p50_us);
  check "mean sane" true (report.Loadgen.mean_us > 1.)

let test_loadgen_deterministic () =
  let run () =
    let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ())) in
    let gen =
      Loadgen.create deploy ~clients:2 ~rate_rps:20_000.
        ~workload:(Service.sample (Service.spec ())) ~seed:3 ()
    in
    let r = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 20) () in
    (r.Loadgen.sent, r.Loadgen.completed, r.Loadgen.p99_us)
  in
  check "same seed, identical run" true (run () = run ())

(* The Traffic guarantee loadgen.mli promises: a flat profile draws the
   same RNG stream as no profile at all, so the two runs are
   byte-identical — same request timeline, same report, same replica
   state. A schedule-path divergence (an extra draw, a reordered one)
   breaks this immediately. *)
let test_flat_profile_byte_identical () =
  let run profile =
    let deploy =
      Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ()))
    in
    let gen =
      Loadgen.create deploy ~clients:2 ~rate_rps:20_000. ?profile
        ~workload:(Service.sample (Service.spec ())) ~seed:3 ()
    in
    let r = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 20) () in
    Deploy.quiesce deploy ();
    let prints =
      Array.map
        (fun n -> (Hnode.applied_index n, Hnode.app_fingerprint n))
        deploy.Deploy.nodes
    in
    ( (r.Loadgen.sent, r.Loadgen.completed, r.Loadgen.lost),
      (r.Loadgen.p50_us, r.Loadgen.p99_us, r.Loadgen.mean_us),
      prints )
  in
  let bare = run None in
  let flat = run (Some (Traffic.constant 20_000.)) in
  check "flat profile is byte-identical to no profile" true (bare = flat);
  (* A genuinely time-varying profile must NOT be identical (otherwise
     the check above is vacuous). *)
  let ramp =
    run
      (Some
         (Traffic.profile
            [ (0, 5_000.); (Timebase.ms 10, 40_000.) ]))
  in
  let counts (c, _, _) = c in
  check "ramp actually diverges" true (counts ramp <> counts bare)

(* Piecewise-linear interpolation semantics: flat before the first
   point, linear between, flat after the last; peak and time-average
   agree with the curve. *)
let test_traffic_rate_at () =
  let near a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs b) in
  let p =
    Traffic.profile
      [ (Timebase.ms 10, 1_000.); (Timebase.ms 20, 3_000.) ]
  in
  check "flat before first point" true (near (Traffic.rate_at p 0) 1_000.);
  check "at first point" true (near (Traffic.rate_at p (Timebase.ms 10)) 1_000.);
  check "midpoint interpolates" true
    (near (Traffic.rate_at p (Timebase.ms 15)) 2_000.);
  check "at last point" true (near (Traffic.rate_at p (Timebase.ms 20)) 3_000.);
  check "flat after last" true (near (Traffic.rate_at p (Timebase.s 1)) 3_000.);
  check "peak is max control point" true (near (Traffic.peak p) 3_000.);
  (* Mean over [0,30ms]: 10ms at 1000, a 10ms ramp averaging 2000, 10ms
     at 3000 -> 2000. *)
  check "time-average over the curve" true
    (near (Traffic.mean_over p ~duration:(Timebase.ms 30)) 2_000.);
  check "invalid profiles rejected" true
    (List.for_all
       (fun pts ->
         try
           ignore (Traffic.profile pts);
           false
         with Invalid_argument _ -> true)
       [ []; [ (Timebase.ms 5, 100.); (Timebase.ms 2, 100.) ];
         [ (-1, 100.) ]; [ (0, 0.) ] ])

let test_experiment_point_low_load () =
  let s =
    Experiment.setup
      (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ())
      (Service.sample (Service.spec ()))
  in
  let r = Experiment.run_point s ~rate_rps:50_000. in
  check "goodput tracks offered" true (r.Loadgen.goodput_rps > 45_000.);
  check "SLO met at low load" true (r.Loadgen.p99_us < 100.)

let test_experiment_slo_search_brackets () =
  (* The unreplicated knee for S=1us sits below 1M and above 500k; the
     search must land inside. *)
  let s =
    Experiment.setup
      (Hnode.params ~mode:Hnode.Unreplicated ~n:1 ())
      (Service.sample (Service.spec ()))
  in
  let k = Experiment.max_under_slo ~lo:100_000. s in
  check "knee in plausible band" true (k > 500_000. && k < 1_050_000.)

let test_experiment_preload () =
  let gen = Hovercraft_apps.Ycsb.create ~seed:4 () in
  let preload = Hovercraft_apps.Ycsb.preload_ops gen 100 in
  let s =
    Experiment.setup ~preload
      (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ())
      (fun _ -> Hovercraft_apps.Ycsb.next gen)
  in
  let r = Experiment.run_point s ~rate_rps:5_000. in
  check "ycsb point runs" true (r.Loadgen.completed > 0)

let test_failure_outcome_shape () =
  let spec = Service.spec ~service:(Dist.Fixed (Timebase.us 5)) ~read_fraction:0.5 () in
  let outcome =
    Failure.run
      ~params:
        (let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
         {
           p with
           Hnode.features =
             {
               p.Hnode.features with
               Hnode.reply_lb = true;
               flow_control = true;
             };
         })
      ~rate_rps:50_000. ~flow_cap:500 ~bucket:(Timebase.ms 50)
      ~duration:(Timebase.ms 400) ~kill_after:(Timebase.ms 150)
      ~workload:(Service.sample spec) ~seed:5 ()
  in
  Alcotest.(check (option int)) "leader killed" (Some 0) outcome.Failure.killed_node;
  check "new leader exists" true (outcome.Failure.new_leader <> None);
  check "consistent after failover" true outcome.Failure.consistent;
  check "series non-empty" true (List.length outcome.Failure.series >= 4);
  (* Throughput must exist both before and after the kill. *)
  let before, after =
    List.partition
      (fun (b : Failure.bucket) -> b.Failure.t_s < outcome.Failure.killed_at_s)
      outcome.Failure.series
  in
  check "traffic before kill" true
    (List.exists (fun (b : Failure.bucket) -> b.Failure.krps > 10.) before);
  check "traffic after kill" true
    (List.exists (fun (b : Failure.bucket) -> b.Failure.krps > 10.) after)

let test_merge_series_nack_only_bucket () =
  (* Regression: the outcome series used to iterate only the completion
     buckets, silently dropping NACKs recorded in a bucket with zero
     completions — i.e. exactly the blackout window. *)
  let bucket = Timebase.ms 100 in
  let completions = Series.create ~bucket () in
  let nacks = Series.create ~bucket () in
  Series.add completions ~at:(Timebase.ms 50) (Timebase.us 10);
  Series.mark nacks ~at:(Timebase.ms 150);
  Series.mark nacks ~at:(Timebase.ms 160);
  let merged =
    Failure.merge_series ~bucket_width:bucket
      ~completions:(Series.buckets completions)
      ~nacks:(Series.buckets nacks)
  in
  check_int "union of bucket keys" 2 (List.length merged);
  let blackout =
    List.find (fun (b : Failure.bucket) -> b.Failure.krps = 0.) merged
  in
  check_int "NACKs survive in completion-free bucket" 2 blackout.Failure.nacks;
  check "no p99 in completion-free bucket" true (blackout.Failure.p99_us = None)

let test_client_target_leaderless_fallback () =
  (* Regression: mid-election, unicast modes fell back to Addr.Node 0 even
     when node 0 was the freshly killed leader. *)
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Vanilla ~n:3 ())) in
  let killed = Deploy.kill_leader deploy in
  Alcotest.(check (option int)) "node0 led" (Some 0) killed;
  check "mid-election: no leader" true (Deploy.leader deploy = None);
  match Deploy.client_target deploy with
  | Addr.Node i -> check "target is a live node" true (i <> 0)
  | _ -> Alcotest.fail "expected a node target in vanilla mode"

let test_kill_leader_mid_election () =
  (* Regression: a second kill during the election used to return None,
     letting a failure experiment run with the fault silently skipped. *)
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Vanilla ~n:5 ())) in
  let first = Deploy.kill_leader deploy in
  Alcotest.(check (option int)) "kills node0 first" (Some 0) first;
  check "mid-election: no leader" true (Deploy.leader deploy = None);
  match Deploy.kill_leader deploy with
  | Some i ->
      check "second kill hits a live node" true (i <> 0);
      check_int "two nodes down" 3 (List.length (Deploy.live_nodes deploy))
  | None -> Alcotest.fail "kill_leader returned None with live nodes"

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  check "has separator" true (String.length s > 0 && String.contains s '-');
  Alcotest.(check string) "krps formatting" "12.3" (Table.fmt_krps 12_345.);
  Alcotest.(check string) "big krps formatting" "946" (Table.fmt_krps 945_580.)

let suite =
  [
    Alcotest.test_case "deploy elects node0" `Quick test_deploy_elects_node0;
    Alcotest.test_case "deploy client targets" `Quick test_deploy_client_targets;
    Alcotest.test_case "deploy aggregator presence" `Quick
      test_deploy_hoverpp_has_aggregator;
    Alcotest.test_case "deploy kill leader reelects" `Quick
      test_deploy_kill_leader_reelects;
    Alcotest.test_case "loadgen open-loop rate" `Quick test_loadgen_open_loop_rate;
    Alcotest.test_case "loadgen latency measurement" `Quick
      test_loadgen_measures_latency;
    Alcotest.test_case "loadgen determinism" `Quick test_loadgen_deterministic;
    Alcotest.test_case "flat profile byte-identical" `Quick
      test_flat_profile_byte_identical;
    Alcotest.test_case "traffic rate_at semantics" `Quick test_traffic_rate_at;
    Alcotest.test_case "experiment low-load point" `Quick test_experiment_point_low_load;
    Alcotest.test_case "experiment SLO search" `Slow test_experiment_slo_search_brackets;
    Alcotest.test_case "experiment preload" `Quick test_experiment_preload;
    Alcotest.test_case "failure outcome shape" `Slow test_failure_outcome_shape;
    Alcotest.test_case "series merge keeps NACK-only buckets" `Quick
      test_merge_series_nack_only_bucket;
    Alcotest.test_case "client target leaderless fallback" `Quick
      test_client_target_leaderless_fallback;
    Alcotest.test_case "kill leader mid-election" `Quick
      test_kill_leader_mid_election;
    Alcotest.test_case "table rendering" `Quick test_table_render;
  ]
