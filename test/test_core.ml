(* Tests for the HovercRaft core: unordered set, replier selection, flow
   control, the in-network aggregator, protocol sizing, and end-to-end
   integration of full clusters. *)

open Hovercraft_sim
open Hovercraft_r2p2
open Hovercraft_core
open Hovercraft_cluster
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Op = Hovercraft_apps.Op
module K = Hovercraft_apps.Kvstore
module Service = Hovercraft_apps.Service
module Rtypes = Hovercraft_raft.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rid ?(id = 0) ?(node = 0) () =
  { R2p2.id; src_addr = Addr.Client node; src_port = 1000 }

(* --- unordered -------------------------------------------------------- *)

let make_store ?(gc_unordered = 100) ?(gc_ordered = 200) clock =
  Unordered.create ~now:(fun () -> !clock) ~gc_unordered ~gc_ordered ()

let test_unordered_add_find () =
  let clock = ref 0 in
  let s = make_store clock in
  Unordered.add s (rid ()) Op.Nop;
  check "found" true (Unordered.find s (rid ()) <> None);
  check "missing" true (Unordered.find s (rid ~id:9 ()) = None);
  check_int "size" 1 (Unordered.size s);
  check_int "unordered count" 1 (Unordered.unordered_count s)

let test_unordered_mark_and_remove () =
  let clock = ref 0 in
  let s = make_store clock in
  check "mark missing fails" false (Unordered.mark_ordered s (rid ()));
  Unordered.add s (rid ()) Op.Nop;
  check "mark present" true (Unordered.mark_ordered s (rid ()));
  check_int "no longer unordered" 0 (Unordered.unordered_count s);
  check "still findable (recovery material)" true (Unordered.find s (rid ()) <> None);
  Unordered.remove s (rid ());
  check "removed" true (Unordered.find s (rid ()) = None)

let test_unordered_gc_windows () =
  let clock = ref 0 in
  let s = make_store ~gc_unordered:100 ~gc_ordered:300 clock in
  Unordered.add s (rid ~id:1 ()) Op.Nop;
  Unordered.add s (rid ~id:2 ()) Op.Nop;
  ignore (Unordered.mark_ordered s (rid ~id:2 ()));
  clock := 150;
  check_int "unordered collected" 1 (Unordered.gc s);
  check "ordered survives short window" true (Unordered.find s (rid ~id:2 ()) <> None);
  clock := 600;
  check_int "ordered collected eventually" 1 (Unordered.gc s)

let test_unordered_ingest_order () =
  let clock = ref 0 in
  let s = make_store clock in
  Unordered.add s (rid ~id:3 ()) Op.Nop;
  Unordered.add s (rid ~id:1 ()) Op.Nop;
  Unordered.add s (rid ~id:2 ()) Op.Nop;
  ignore (Unordered.mark_ordered s (rid ~id:1 ()));
  let ids = List.map (fun (r, _) -> r.R2p2.id) (Unordered.unordered_bindings s) in
  Alcotest.(check (list int)) "arrival order, ordered excluded" [ 3; 2 ] ids

let test_unordered_readd_keeps_ordered () =
  let clock = ref 0 in
  let s = make_store clock in
  Unordered.add s (rid ()) Op.Nop;
  ignore (Unordered.mark_ordered s (rid ()));
  Unordered.add s (rid ()) Op.Nop;
  check_int "duplicate multicast keeps ordered state" 0 (Unordered.unordered_count s)

(* --- replier ----------------------------------------------------------- *)

let test_replier_bound_and_applied () =
  let r = Replier.create Jbsq.Jbsq ~bound:2 ~nodes:[ 0; 1 ] ~rng:(Rng.create 1) in
  Replier.assign r ~node:0 ~index:1;
  Replier.assign r ~node:0 ~index:2;
  check_int "depth" 2 (Replier.depth r 0);
  (* Node 0 full: picks must go to node 1. *)
  for _ = 1 to 10 do
    Alcotest.(check (option int)) "full node skipped" (Some 1) (Replier.pick r ())
  done;
  Replier.note_applied r ~node:0 ~applied:1;
  check_int "applied prunes queue" 1 (Replier.depth r 0)

let test_replier_dead_node_bounded () =
  (* A dead node's applied never advances: it receives at most [bound]
     assignments — the paper's at-most-B-lost-replies guarantee (§3.4). *)
  let bound = 4 in
  let r = Replier.create Jbsq.Jbsq ~bound ~nodes:[ 0; 1; 2 ] ~rng:(Rng.create 2) in
  let assigned_to_dead = ref 0 in
  let idx = ref 0 in
  for _ = 1 to 1000 do
    match Replier.pick r () with
    | Some node ->
        incr idx;
        Replier.assign r ~node ~index:!idx;
        if node = 0 then incr assigned_to_dead
        else Replier.note_applied r ~node ~applied:!idx
    | None -> ()
  done;
  check "dead node capped at bound" true (!assigned_to_dead <= bound)

let test_replier_reset () =
  let r = Replier.create Jbsq.Jbsq ~bound:2 ~nodes:[ 0; 1 ] ~rng:(Rng.create 3) in
  Replier.assign r ~node:0 ~index:5;
  Replier.set_excluded r 1 true;
  Replier.reset r;
  check_int "depths cleared" 0 (Replier.depth r 0);
  check "exclusions cleared, assign restarts" true (Replier.pick r () <> None);
  Replier.assign r ~node:0 ~index:1

let test_replier_assign_monotone () =
  let r = Replier.create Jbsq.Jbsq ~bound:8 ~nodes:[ 0 ] ~rng:(Rng.create 4) in
  Replier.assign r ~node:0 ~index:5;
  Alcotest.check_raises "indices must increase"
    (Invalid_argument "Replier.assign: indices must be increasing per node")
    (fun () -> Replier.assign r ~node:0 ~index:5)

(* --- protocol sizing ---------------------------------------------------- *)

let entry op =
  { Rtypes.term = 1; cmd = Protocol.client_cmd ~rid:(rid ()) op }

let test_protocol_ae_bytes () =
  let op = Op.Synth { cost = 0; read_only = false; req_bytes = 512; rep_bytes = 8 } in
  let entries = [| entry op; entry op |] in
  let with_b = Protocol.ae_bytes ~with_bodies:true entries in
  let without = Protocol.ae_bytes ~with_bodies:false entries in
  check_int "metadata-only AE is fixed cost"
    (R2p2.header_bytes + 32 + (2 * Protocol.meta_wire_bytes))
    without;
  check_int "vanilla AE pays the bodies" (without + 1024) with_b

let test_protocol_meta () =
  let op = Op.Kv (K.Get "x") in
  let cmd = Protocol.client_cmd ~rid:(rid ()) op in
  check "read-only derived" true cmd.Protocol.meta.read_only;
  check_int "replier unassigned" (-1) cmd.Protocol.meta.replier;
  check "not internal" false cmd.Protocol.meta.internal;
  check "noop internal" true Protocol.internal_noop.Protocol.meta.internal

let test_protocol_request_bytes () =
  let op = Op.Synth { cost = 0; read_only = false; req_bytes = 100; rep_bytes = 8 } in
  let p = Protocol.Request { rid = rid (); policy = R2p2.Replicated_req; op } in
  check_int "request = header + body" (R2p2.header_bytes + 100)
    (Protocol.payload_bytes ~with_bodies:false p)

(* --- flow control -------------------------------------------------------- *)

let test_flow_control_caps () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let fc = Flow_control.create e fabric ~cap:2 ~group:9 ~rate_gbps:100. in
  let got_nacks = ref 0 and got_fwd = ref 0 in
  let client =
    Fabric.attach fabric ~addr:(Addr.Client 0) ~rate_gbps:10. ~handler:(fun pkt ->
        match pkt.Fabric.payload with
        | Protocol.Nack _ -> incr got_nacks
        | _ -> ())
  in
  let _member =
    Fabric.attach fabric ~addr:(Addr.Node 0) ~rate_gbps:10. ~handler:(fun pkt ->
        match pkt.Fabric.payload with
        | Protocol.Request _ -> incr got_fwd
        | _ -> ())
  in
  Fabric.join fabric ~group:9 (Addr.Node 0);
  let send_req id =
    let op = Op.Nop in
    Fabric.send fabric client ~dst:Addr.Middlebox ~bytes:32
      (Protocol.Request { rid = rid ~id (); policy = R2p2.Replicated_req; op })
  in
  send_req 1;
  send_req 2;
  send_req 3;
  Engine.run e;
  check_int "two admitted" 2 !got_fwd;
  check_int "third NACKed" 1 !got_nacks;
  check_int "inflight" 2 (Flow_control.inflight fc);
  (* Feedback opens the window again. *)
  Fabric.send fabric client ~dst:Addr.Middlebox ~bytes:16
    (Protocol.Feedback { rid = rid ~id:1 () });
  Engine.run e;
  check_int "feedback decrements" 1 (Flow_control.inflight fc);
  send_req 4;
  Engine.run e;
  check_int "admitted after feedback" 3 !got_fwd

(* --- aggregator ------------------------------------------------------------ *)

let ae ~term ~leader ~prev ~len ~commit ~seq =
  Protocol.Raft
    (Rtypes.Append_entries
       {
         term;
         leader;
         prev_idx = prev;
         prev_term = (if prev = 0 then 0 else term);
         entries = Array.init len (fun _ -> entry Op.Nop);
         commit;
         seq;
       })

let ack ~term ~from ~match_idx ~applied ~seq =
  Protocol.Raft
    (Rtypes.Append_ack
       { term; from; success = true; seq; match_idx; applied_idx = applied })

type agg_env = {
  engine : Engine.t;
  agg : Aggregator.t;
  leader_got : Protocol.payload list ref;
  follower_got : Protocol.payload list ref array;
}

let make_agg_env n =
  let engine = Engine.create () in
  let fabric = Fabric.create engine () in
  let agg =
    Aggregator.create engine fabric
      ~members:(List.init n Fun.id)
      ~cluster_group:0 ~followers_group:1 ~rate_gbps:100.
  in
  let leader_got = ref [] in
  let follower_got = Array.init n (fun _ -> ref []) in
  let leader_port =
    Fabric.attach fabric ~addr:(Addr.Node 0) ~rate_gbps:10. ~handler:(fun pkt ->
        leader_got := pkt.Fabric.payload :: !leader_got)
  in
  for i = 1 to n - 1 do
    let sink = follower_got.(i) in
    ignore
      (Fabric.attach fabric ~addr:(Addr.Node i) ~rate_gbps:10.
         ~handler:(fun pkt -> sink := pkt.Fabric.payload :: !sink))
  done;
  for i = 0 to n - 1 do
    Fabric.join fabric ~group:0 (Addr.Node i)
  done;
  let env = { engine; agg; leader_got; follower_got } in
  let send payload =
    Fabric.send fabric leader_port ~dst:Addr.Netagg ~bytes:64 payload
  in
  (env, send)

let count_ae payloads =
  List.length
    (List.filter
       (function Protocol.Raft (Rtypes.Append_entries _) -> true | _ -> false)
       payloads)

let count_commits payloads =
  List.length
    (List.filter (function Protocol.Agg_commit _ -> true | _ -> false) payloads)

let test_aggregator_fanout_and_commit () =
  let env, send = make_agg_env 3 in
  send (ae ~term:1 ~leader:0 ~prev:0 ~len:1 ~commit:0 ~seq:1);
  Engine.run env.engine;
  check_int "fanned to follower1" 1 (count_ae !(env.follower_got.(1)));
  check_int "fanned to follower2" 1 (count_ae !(env.follower_got.(2)));
  check_int "leader gets no fanout" 0 (count_ae !(env.leader_got));
  (* One follower ack = quorum (leader + 1 of 2 followers). *)
  send (ack ~term:1 ~from:1 ~match_idx:1 ~applied:0 ~seq:1);
  Engine.run env.engine;
  check_int "commit announced" 1 (Aggregator.commit env.agg);
  check_int "AGG_COMMIT to leader" 1 (count_commits !(env.leader_got));
  check_int "AGG_COMMIT to followers" 1 (count_commits !(env.follower_got.(1)))

let test_aggregator_quorum_needs_majority () =
  let env, send = make_agg_env 5 in
  send (ae ~term:1 ~leader:0 ~prev:0 ~len:1 ~commit:0 ~seq:1);
  send (ack ~term:1 ~from:1 ~match_idx:1 ~applied:0 ~seq:1);
  Engine.run env.engine;
  check_int "1 of 4 followers is not quorum" 0 (Aggregator.commit env.agg);
  send (ack ~term:1 ~from:2 ~match_idx:1 ~applied:0 ~seq:1);
  Engine.run env.engine;
  check_int "2 of 4 + leader commits" 1 (Aggregator.commit env.agg)

let test_aggregator_term_flush () =
  let env, send = make_agg_env 3 in
  send (ae ~term:1 ~leader:0 ~prev:0 ~len:1 ~commit:0 ~seq:1);
  send (ack ~term:1 ~from:1 ~match_idx:1 ~applied:0 ~seq:1);
  Engine.run env.engine;
  check_int "committed in term 1" 1 (Aggregator.commit env.agg);
  (* A higher-term probe flushes all soft state. *)
  send (Protocol.Probe { term = 5; leader = 1 });
  Engine.run env.engine;
  check_int "flushed term" 5 (Aggregator.term env.agg);
  check_int "flushed commit" 0 (Aggregator.commit env.agg);
  check_int "flushed matches" 0 (Aggregator.match_of env.agg 1)

let test_aggregator_stale_term_ignored () =
  let env, send = make_agg_env 3 in
  send (ae ~term:3 ~leader:0 ~prev:0 ~len:1 ~commit:0 ~seq:1);
  Engine.run env.engine;
  let forwarded = Aggregator.forwarded env.agg in
  send (ae ~term:2 ~leader:1 ~prev:0 ~len:1 ~commit:0 ~seq:2);
  Engine.run env.engine;
  check_int "stale leader not forwarded" forwarded (Aggregator.forwarded env.agg)

let test_aggregator_pending_commit_repeat () =
  let env, send = make_agg_env 3 in
  send (ae ~term:1 ~leader:0 ~prev:0 ~len:1 ~commit:0 ~seq:1);
  send (ack ~term:1 ~from:1 ~match_idx:1 ~applied:0 ~seq:1);
  Engine.run env.engine;
  let commits = Aggregator.commits_sent env.agg in
  (* Heartbeat with no new entries: pending is set, and the next ack
     triggers an AGG_COMMIT even though the commit index is unchanged. *)
  send (ae ~term:1 ~leader:0 ~prev:1 ~len:0 ~commit:1 ~seq:2);
  send (ack ~term:1 ~from:2 ~match_idx:1 ~applied:1 ~seq:2);
  Engine.run env.engine;
  check_int "pending AGG_COMMIT sent" (commits + 1) (Aggregator.commits_sent env.agg)

let test_aggregator_down () =
  let env, send = make_agg_env 3 in
  Aggregator.set_down env.agg true;
  send (ae ~term:1 ~leader:0 ~prev:0 ~len:1 ~commit:0 ~seq:1);
  Engine.run env.engine;
  check_int "down device forwards nothing" 0 (count_ae !(env.follower_got.(1)))

(* --- integration: full clusters ------------------------------------------ *)

let drive ?(n = 3) ?(mode = Hnode.Hover_pp) ?(rate = 50_000.) ?(requests = 2_000)
    ?(tweak = fun p -> p) ?flow_cap ~seed () =
  let params = tweak (Hnode.params ~mode ~n ()) in
  let deploy = Deploy.create (Deploy.config ?flow_cap params) in
  let spec = Service.spec ~read_fraction:0.5 () in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:rate
      ~workload:(Service.sample spec) ~seed ()
  in
  let duration = int_of_float (float_of_int requests /. rate *. 1e9) in
  let report = Loadgen.run gen ~warmup:0 ~duration () in
  Deploy.quiesce deploy ();
  (deploy, report)

let test_cluster_end_to_end_each_mode () =
  List.iter
    (fun mode ->
      let n = if mode = Hnode.Unreplicated then 1 else 3 in
      let deploy, report = drive ~n ~mode ~seed:21 () in
      check "served most requests" true
        (report.Loadgen.completed > (report.Loadgen.sent * 9 / 10));
      check_int "nothing lost" 0 report.Loadgen.lost;
      check "replicas consistent" true (Deploy.consistent deploy))
    [ Hnode.Unreplicated; Hnode.Vanilla; Hnode.Hover; Hnode.Hover_pp ]

let test_cluster_replies_load_balanced () =
  let deploy, _ = drive ~mode:Hnode.Hover_pp ~requests:3_000 ~seed:22 () in
  Array.iter
    (fun node ->
      (* With JBSQ over 3 nodes each should take roughly a third. *)
      check "every node replies" true (Hnode.replies_sent node > 500))
    deploy.Deploy.nodes

let test_cluster_vanilla_leader_replies_all () =
  let deploy, report = drive ~mode:Hnode.Vanilla ~seed:23 () in
  let leader = Option.get (Deploy.leader deploy) in
  check "leader answers everything" true
    (Hnode.replies_sent leader >= report.Loadgen.completed)

let test_cluster_recovery_under_loss () =
  (* Drop 2% of all received packets: multicast bodies go missing and the
     recovery protocol must fill the gaps without losing consistency. *)
  let deploy, report =
    drive ~mode:Hnode.Hover ~rate:20_000. ~requests:1_500
      ~tweak:(fun p ->
        { p with Hnode.features = { p.Hnode.features with Hnode.loss_prob = 0.02 } })
      ~seed:24 ()
  in
  check "most requests still served" true
    (report.Loadgen.completed > report.Loadgen.sent * 8 / 10);
  check "replicas consistent despite loss" true (Deploy.consistent deploy);
  let recoveries =
    Array.fold_left
      (fun acc node -> acc + Hnode.recoveries_sent node)
      0 deploy.Deploy.nodes
  in
  check "recovery path exercised" true (recoveries > 0)

let test_cluster_leader_failover () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.reply_lb = true } }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let spec = Service.spec () in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:30_000.
      ~workload:(Service.sample spec) ~seed:25 ()
  in
  let engine = deploy.Deploy.engine in
  Engine.after engine (Timebase.ms 20) (fun () -> ignore (Deploy.kill_leader deploy));
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 60) () in
  Deploy.quiesce deploy ~extra:(Timebase.ms 50) ();
  (match Deploy.leader deploy with
  | Some l -> check "new leader differs" true (Hnode.id l <> 0)
  | None -> Alcotest.fail "no leader after failover");
  check "bounded losses" true (report.Loadgen.lost < 200);
  check "service continued" true
    (report.Loadgen.completed > report.Loadgen.sent / 2);
  check "survivors consistent" true (Deploy.consistent deploy)

let test_cluster_flow_control_prevents_collapse () =
  (* Offered load far beyond capacity: with the middlebox capping in-flight
     requests, goodput stays near capacity and clients see NACKs. *)
  let deploy, report =
    drive ~mode:Hnode.Hover_pp ~rate:2_000_000. ~requests:20_000
      ~tweak:(fun p ->
        { p with Hnode.features = { p.Hnode.features with Hnode.flow_control = true } })
      ~flow_cap:500 ~seed:26 ()
  in
  check "NACKs issued" true (report.Loadgen.nacked > 0);
  check "goodput survives overload" true (report.Loadgen.completed > 1_000);
  check "consistent under overload" true (Deploy.consistent deploy);
  ignore deploy

let test_cluster_hover_vs_vanilla_same_results () =
  (* The three replicated modes must produce identical application state
     for the same client workload (same seed => same op stream). *)
  let fingerprint mode =
    let deploy, _ = drive ~mode ~rate:20_000. ~requests:1_000 ~seed:27 () in
    Hnode.app_fingerprint deploy.Deploy.nodes.(0)
  in
  let v = fingerprint Hnode.Vanilla in
  check "hover matches vanilla" true (fingerprint Hnode.Hover = v);
  check "hover++ matches vanilla" true (fingerprint Hnode.Hover_pp = v)

let test_cluster_kv_workload_applies () =
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config params) in
  let counter = ref 0 in
  let workload _rng =
    incr counter;
    if !counter mod 3 = 0 then Op.Kv (K.Get (Printf.sprintf "k%d" (!counter mod 7)))
    else Op.Kv (K.Put (Printf.sprintf "k%d" (!counter mod 7), string_of_int !counter))
  in
  let gen = Loadgen.create deploy ~clients:2 ~rate_rps:20_000. ~workload ~seed:28 () in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 50) () in
  Deploy.quiesce deploy ();
  check "kv requests served" true (report.Loadgen.completed > 800);
  check "kv replicas consistent" true (Deploy.consistent deploy);
  check "state machine non-trivial" true
    (Hnode.executed_ops deploy.Deploy.nodes.(0) > 500)

let suite =
  [
    Alcotest.test_case "unordered add/find" `Quick test_unordered_add_find;
    Alcotest.test_case "unordered mark/remove" `Quick test_unordered_mark_and_remove;
    Alcotest.test_case "unordered gc windows" `Quick test_unordered_gc_windows;
    Alcotest.test_case "unordered ingest order" `Quick test_unordered_ingest_order;
    Alcotest.test_case "unordered re-add keeps ordered" `Quick
      test_unordered_readd_keeps_ordered;
    Alcotest.test_case "replier bound and applied" `Quick
      test_replier_bound_and_applied;
    Alcotest.test_case "replier caps dead node" `Quick test_replier_dead_node_bounded;
    Alcotest.test_case "replier reset" `Quick test_replier_reset;
    Alcotest.test_case "replier assign monotone" `Quick test_replier_assign_monotone;
    Alcotest.test_case "protocol AE sizing" `Quick test_protocol_ae_bytes;
    Alcotest.test_case "protocol metadata" `Quick test_protocol_meta;
    Alcotest.test_case "protocol request sizing" `Quick test_protocol_request_bytes;
    Alcotest.test_case "flow control caps and feedback" `Quick test_flow_control_caps;
    Alcotest.test_case "aggregator fanout and commit" `Quick
      test_aggregator_fanout_and_commit;
    Alcotest.test_case "aggregator quorum" `Quick test_aggregator_quorum_needs_majority;
    Alcotest.test_case "aggregator term flush" `Quick test_aggregator_term_flush;
    Alcotest.test_case "aggregator stale term" `Quick test_aggregator_stale_term_ignored;
    Alcotest.test_case "aggregator pending commit" `Quick
      test_aggregator_pending_commit_repeat;
    Alcotest.test_case "aggregator down" `Quick test_aggregator_down;
    Alcotest.test_case "cluster end-to-end all modes" `Slow
      test_cluster_end_to_end_each_mode;
    Alcotest.test_case "cluster replies load balanced" `Slow
      test_cluster_replies_load_balanced;
    Alcotest.test_case "cluster vanilla leader replies" `Slow
      test_cluster_vanilla_leader_replies_all;
    Alcotest.test_case "cluster recovery under loss" `Slow
      test_cluster_recovery_under_loss;
    Alcotest.test_case "cluster leader failover" `Slow test_cluster_leader_failover;
    Alcotest.test_case "cluster flow control overload" `Slow
      test_cluster_flow_control_prevents_collapse;
    Alcotest.test_case "cluster modes agree on state" `Slow
      test_cluster_hover_vs_vanilla_same_results;
    Alcotest.test_case "cluster kv workload" `Slow test_cluster_kv_workload_applies;
  ]
