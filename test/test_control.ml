(* Tests for the SLO-driven control plane: scenario determinism, the
   controller acting (and holding the checkers green) on a scaled-down
   overload, and the config/registry surfaces. The full-size scenarios
   live in `hovercraft control` and the autoscale figure; here the specs
   are shrunk so a run costs seconds, not minutes. *)

open Hovercraft_sim
module Scenario = Hovercraft_control.Scenario
module Controller = Hovercraft_control.Controller
module Experiment = Hovercraft_control.Experiment
module Loadgen = Hovercraft_cluster.Loadgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A pocket hotspot: one active group of two on quarter-gig links (knee
   near 60 krps) offered 80 krps. The only way to the SLO is a split;
   after it, each group runs at ~40 krps with tails back under 500 us. *)
let tiny_overload () =
  Scenario.make ~name:"tiny-overload" ~shards:2 ~active:1 ~n:3
    ~link_gbps:0.25 ~rate_rps:80_000. ~duration:(Timebase.ms 1_250)
    ~warmup:(Timebase.ms 250) ~tick:(Timebase.ms 125)
    (Scenario.Zipf_kv { read_fraction = 0.5; theta = 0.99; records = 100_000 })

let summary (o : Scenario.outcome) =
  ( ( o.Scenario.report.Loadgen.sent,
      o.Scenario.report.Loadgen.completed,
      o.Scenario.report.Loadgen.lost,
      o.Scenario.report.Loadgen.p99_us ),
    List.map
      (fun (w : Scenario.window_verdict) ->
        (w.Scenario.w_end_s, w.Scenario.w_count, w.Scenario.w_p99_us))
      o.Scenario.windows,
    o.Scenario.actions,
    (o.Scenario.migrations, o.Scenario.map_version, o.Scenario.rerouted) )

(* Same spec, same seed, controller on: every completion, window verdict
   and controller decision must replay identically. *)
let test_scenario_deterministic () =
  let spec = tiny_overload () in
  let cfg = Controller.config ~slo_p99:spec.Scenario.slo_p99 () in
  let a = Scenario.run ~controller:cfg spec ~seed:7 () in
  let b = Scenario.run ~controller:cfg spec ~seed:7 () in
  check "same seed replays event-for-event" true (summary a = summary b);
  (* And the controller did something on this overload — the test above
     is vacuous on an idle run. *)
  check "controller acted" true (a.Scenario.actions <> []);
  check "it split onto the dormant group" true (a.Scenario.migrations >= 1);
  check "checkers green under control actions" true
    (Scenario.checkers_green a);
  check_int "nothing lost" 0 a.Scenario.report.Loadgen.lost;
  (* The split must actually help: the last window is inside the SLO
     even though the offered load never dropped. *)
  (match List.rev a.Scenario.windows with
  | last :: _ -> check "last window good after split" true last.Scenario.w_good
  | [] -> Alcotest.fail "no windows judged");
  (* A different seed is a different run (the generator really is
     seeded, not fixed). *)
  let c = Scenario.run ~controller:cfg spec ~seed:8 () in
  check "different seed diverges" true (summary a <> summary c)

(* The scenario registry backing the CLI. *)
let test_scenario_registry () =
  check_int "five scenarios" 5 (List.length Scenario.names);
  List.iter
    (fun name ->
      match Scenario.find name with
      | Some spec -> check ("find " ^ name) true (spec.Scenario.name = name)
      | None -> Alcotest.fail ("registry misses " ^ name))
    Scenario.names;
  check "unknown name is None" true (Scenario.find "warp-core" = None)

(* Controller.config validates its ranges instead of letting a typo'd
   knob silently neuter the loop. *)
let test_controller_config_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "zero hysteresis rejected" true
    (rejects (fun () -> Controller.config ~breach_ticks:0 ()));
  check "negative cooldown rejected" true
    (rejects (fun () -> Controller.config ~cooldown:(-1) ()));
  check "hot share below 1 rejected" true
    (rejects (fun () -> Controller.config ~hot_share:0.5 ()));
  check "negative action budget rejected" true
    (rejects (fun () -> Controller.config ~max_actions:(-1) ()));
  let c = Controller.config () in
  check_int "default hysteresis" 2 c.Controller.breach_ticks

(* The experiment JSON artifact is well-formed and carries both runs. *)
let test_outcome_json_shape () =
  let spec = tiny_overload () in
  let cfg = Controller.config ~slo_p99:spec.Scenario.slo_p99 () in
  let o = Scenario.run ~controller:cfg spec ~seed:7 () in
  let module Json = Hovercraft_obs.Json in
  match Json.of_string (Json.to_string (Experiment.outcome_json o)) with
  | Error e -> Alcotest.fail ("outcome JSON does not parse: " ^ e)
  | Ok parsed ->
      (match Json.member "windows" parsed with
      | Some (Json.List ws) ->
          check_int "every window serialized" o.Scenario.n_windows
            (List.length ws)
      | _ -> Alcotest.fail "windows member malformed");
      (match Json.member "checkers_green" parsed with
      | Some (Json.Bool true) -> ()
      | _ -> Alcotest.fail "checkers_green not serialized true")

let suite =
  [
    Alcotest.test_case "scenario determinism + controller acts" `Slow
      test_scenario_deterministic;
    Alcotest.test_case "scenario registry" `Quick test_scenario_registry;
    Alcotest.test_case "controller config validation" `Quick
      test_controller_config_validation;
    Alcotest.test_case "outcome JSON shape" `Slow test_outcome_json_shape;
  ]
