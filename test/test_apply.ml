(* Tests for the dependency-aware parallel apply scheduler: the
   [Op.footprint] conflict relation, the apply_threads knob validation,
   determinism of replica state across K and across identical runs, a
   forced same-key conflict chain that must serialize onto one thread,
   and a chaos run at K=4 with snapshots enabled. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore
module Service = Hovercraft_apps.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params ?(apply_threads = 1) ~seed () =
  let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
  {
    p with
    Hnode.seed;
    features = { p.Hnode.features with Hnode.apply_threads };
  }

(* A write-heavy kv mix over a small key population: plenty of genuine
   key conflicts for the scheduler to order, alongside independent ops. *)
let kv_workload rng =
  let k = Printf.sprintf "user%06d" (Rng.int rng 500) in
  if Rng.bool rng 0.3 then Op.Kv (Kvstore.Get k)
  else Op.Kv (Kvstore.Put (k, "v"))

(* ------------------------------------------------------------------ *)
(* Conflict relation                                                   *)

let test_footprints () =
  check "nop commutes" true (Op.footprint Op.Nop = Op.Fp_none);
  check "kv put keyed" true
    (Op.footprint (Op.Kv (Kvstore.Put ("k", "v"))) = Op.Fp_key "k");
  check "kv get keyed" true
    (Op.footprint (Op.Kv (Kvstore.Get "k")) = Op.Fp_key "k");
  check "synth read commutes" true
    (Op.footprint
       (Op.Synth
          { cost = Timebase.us 1; read_only = true; req_bytes = 8; rep_bytes = 8 })
    = Op.Fp_none);
  check "synth write is global" true
    (Op.footprint
       (Op.Synth
          {
            cost = Timebase.us 1;
            read_only = false;
            req_bytes = 8;
            rep_bytes = 8;
          })
    = Op.Fp_global);
  check "prune is global" true
    (Op.footprint (Op.Prune { slots = 4; drop = [ 0 ] }) = Op.Fp_global)

let test_apply_threads_validation () =
  let raises p = try Hnode.validate_params p; false with Invalid_argument _ -> true in
  let with_k k =
    let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.apply_threads = k } }
  in
  check "k=0 rejected" true (raises (with_k 0));
  check "k=65 rejected" true (raises (with_k 65));
  check "k=1 accepted" true (not (raises (with_k 1)));
  check "k=8 accepted" true (not (raises (with_k 8)))

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

(* Run the same offered load against a fresh deployment and return the
   per-replica application fingerprints after a full quiesce. *)
let fingerprints ~apply_threads ~seed =
  let p = params ~apply_threads ~seed () in
  let deploy = Deploy.create (Deploy.config p) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:80_000. ~workload:kv_workload
      ~seed ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 300) ());
  Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
  ( Array.map Hnode.app_fingerprint deploy.Deploy.nodes,
    Array.map Hnode.executed_ops deploy.Deploy.nodes )

let all_equal a = Array.for_all (fun x -> x = a.(0)) a

(* The scheduler's determinism contract: parallelism lives only in the
   CPU timing model, never in mutation order, so (a) replicas of one K=4
   deployment end byte-identical, (b) two identical K=4 runs reproduce
   each other exactly, and (c) K does not change the final state at all
   — K=1 and K=4 converge to the same fingerprint under the same
   arrivals. *)
let test_determinism_across_runs_and_k () =
  let fp1, _ = fingerprints ~apply_threads:1 ~seed:19 in
  let fp4, ex4 = fingerprints ~apply_threads:4 ~seed:19 in
  let fp4', ex4' = fingerprints ~apply_threads:4 ~seed:19 in
  check "K=4 replicas agree" true (all_equal fp4);
  check "K=4 replays byte-identically" true (fp4 = fp4' && ex4 = ex4');
  check "K=1 replicas agree" true (all_equal fp1);
  (* Note: executed-op counts are NOT compared across K — reply-load-
     balanced reads execute at whichever replica the balancer picks, and
     that pick depends on apply timing. The store digest is what the
     protocol promises, and it must not move. *)
  check "state independent of K" true (fp1.(0) = fp4.(0))

(* ------------------------------------------------------------------ *)
(* Conflict chain                                                      *)

(* Every op writes the same key, so every op carries the same footprint:
   the scheduler must funnel the entire chain through one thread — the
   other K-1 app CPUs stay essentially idle (the only stray work is the
   term-opening noop, which round-robins). *)
let test_same_key_chain_serializes () =
  let p = params ~apply_threads:4 ~seed:3 () in
  let deploy = Deploy.create (Deploy.config p) in
  let workload _rng = Op.Kv (Kvstore.Put ("hotkey", "v")) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:60_000. ~workload ~seed:3 ()
  in
  let r = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 200) () in
  Deploy.quiesce deploy ();
  check "made progress" true (r.Loadgen.completed > 1_000);
  Array.iter
    (fun n ->
      check_int "four app threads" 4 (Hnode.apply_threads n);
      let bt = Hnode.apply_busy_times n in
      let total = Array.fold_left ( + ) 0 bt in
      let busiest = Array.fold_left max 0 bt in
      check "chain executed" true (total > 0);
      if float_of_int busiest < 0.99 *. float_of_int total then
        Alcotest.failf "node %d: conflict chain spread across threads (%d/%d)"
          (Hnode.id n) busiest total)
    deploy.Deploy.nodes

(* Disjoint keys at K=4 actually spread: more than one thread accrues
   busy time on every replica (the speedup mechanism, not just its
   absence of harm). *)
let test_disjoint_keys_spread () =
  let p = params ~apply_threads:4 ~seed:7 () in
  let deploy = Deploy.create (Deploy.config p) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:80_000. ~workload:kv_workload
      ~seed:7 ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 200) ());
  Deploy.quiesce deploy ();
  Array.iter
    (fun n ->
      let active =
        Array.fold_left
          (fun acc b -> if b > 0 then acc + 1 else acc)
          0 (Hnode.apply_busy_times n)
      in
      check "work spread across threads" true (active >= 2))
    deploy.Deploy.nodes

(* ------------------------------------------------------------------ *)
(* Chaos at K=4                                                        *)

(* Random kill/restart/partition churn with snapshots and the parallel
   scheduler enabled: checkpoints quiesce the threads (barrier), installs
   land on nodes whose dispatch pointer may be mid-flight, and the
   snapshot-aware history checker must still find nothing. *)
let test_chaos_k4_with_snapshots () =
  let p = Hnode.params ~mode:Hnode.Hover_pp ~n:5 () in
  let p =
    {
      p with
      Hnode.features =
        { p.Hnode.features with Hnode.bound = 32; apply_threads = 4 };
    }
  in
  let o =
    Chaos.run ~params:p ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 700) ~snapshots:400 ~workload:kv_workload ~seed:23
      ()
  in
  Alcotest.(check (list string)) "no checker violations" [] o.Chaos.violations;
  check "exactly once" true o.Chaos.exactly_once_ok;
  check "committed preserved" true o.Chaos.committed_preserved;
  check "caught up" true o.Chaos.caught_up;
  check "consistent" true o.Chaos.consistent;
  check "compaction ran" true (o.Chaos.max_log_base > 0)

let suite =
  [
    Alcotest.test_case "op footprints" `Quick test_footprints;
    Alcotest.test_case "apply_threads validation" `Quick
      test_apply_threads_validation;
    Alcotest.test_case "determinism across runs and K" `Slow
      test_determinism_across_runs_and_k;
    Alcotest.test_case "same-key chain serializes" `Quick
      test_same_key_chain_serializes;
    Alcotest.test_case "disjoint keys spread" `Quick test_disjoint_keys_spread;
    Alcotest.test_case "chaos at K=4 with snapshots" `Slow
      test_chaos_k4_with_snapshots;
  ]
