(* Unit and property tests for the pure Raft core. *)

module Node = Hovercraft_raft.Node
module Log = Hovercraft_raft.Log
module Types = Hovercraft_raft.Types
module H = Raft_harness
open Hovercraft_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_initial_state () =
  let t = H.create ~n:3 ~seed:1 () in
  for i = 0 to 2 do
    check "starts follower" true (Node.role (H.node t i) = Node.Follower);
    check_int "term 0" 0 (Node.term (H.node t i));
    check_int "empty log" 0 (Log.last_index (Node.log (H.node t i)))
  done

let test_single_node_cluster () =
  let t = H.create ~n:1 ~seed:2 () in
  check "elected alone" true (H.elect t 0);
  let c = H.commit_via t 0 in
  let nd = H.node t 0 in
  check "committed own command" true (Node.commit_index nd >= 2);
  let found = ref false in
  Log.iter_range (Node.log nd) ~lo:1 ~hi:(Log.last_index (Node.log nd))
    (fun _ e -> if e.Types.cmd = c then found := true);
  check "command in log" true !found

let test_basic_election () =
  let t = H.create ~n:3 ~seed:3 () in
  check "node0 elected" true (H.elect t 0);
  check_int "term bumped" 1 (Node.term (H.node t 0));
  for i = 1 to 2 do
    check "others followers" true (Node.role (H.node t i) = Node.Follower);
    Alcotest.(check (option int))
      "leader hint set" (Some 0)
      (Node.leader_hint (H.node t i))
  done

let test_no_election_without_majority () =
  let t = H.create ~n:3 ~seed:4 () in
  H.crash t 1;
  H.crash t 2;
  H.timeout t 0;
  H.drain t;
  check "candidate stuck" true (Node.role (H.node t 0) = Node.Candidate)

let test_replication_and_commit () =
  let t = H.create ~n:3 ~seed:5 () in
  ignore (H.elect t 0);
  let cmds = List.init 10 (fun _ -> H.commit_via t 0) in
  let leader = H.node t 0 in
  check "all committed" true (Node.commit_index leader >= 10);
  (* Every node's log contains the commands in the same order. *)
  let extract i =
    let log = Node.log (H.node t i) in
    let out = ref [] in
    Log.iter_range log ~lo:1 ~hi:(Log.last_index log) (fun _ e ->
        if e.Types.cmd >= 0 then out := e.Types.cmd :: !out);
    List.rev !out
  in
  let reference = extract 0 in
  check "all cmds present" true (List.for_all (fun c -> List.mem c reference) cmds);
  check "follower1 log equal" true (extract 1 = reference);
  check "follower2 log equal" true (extract 2 = reference)

let test_commit_propagates_to_followers () =
  let t = H.create ~n:3 ~seed:6 () in
  ignore (H.elect t 0);
  ignore (H.commit_via t 0);
  for i = 1 to 2 do
    check "follower commit caught up" true
      (Node.commit_index (H.node t i) = Node.commit_index (H.node t 0))
  done

let test_stale_leader_steps_down () =
  let t = H.create ~n:3 ~seed:7 () in
  ignore (H.elect t 0);
  ignore (H.elect t 1);
  (* Node 1 is now leader in a later term; node 0 must have stepped down. *)
  check "old leader stepped down" true (Node.role (H.node t 0) = Node.Follower);
  check "new leader" true (Node.role (H.node t 1) = Node.Leader);
  check "terms ordered" true (Node.term (H.node t 0) = Node.term (H.node t 1))

let test_one_vote_per_term () =
  let t = H.create ~n:5 ~seed:8 () in
  (* Two candidates time out before any message is delivered: voters may
     grant only one of them their vote for this term. *)
  H.timeout t 0;
  H.timeout t 1;
  H.drain t;
  H.check t (* election safety is asserted inside *)

let test_log_up_to_date_check () =
  let t = H.create ~n:3 ~seed:9 () in
  ignore (H.elect t 0);
  ignore (H.commit_via t 0);
  ignore (H.commit_via t 0);
  (* Crash the leader; a follower holding the committed entries must win
     and keep them (leader completeness). *)
  let committed = Node.commit_index (H.node t 1) in
  H.crash t 0;
  check "follower1 elected" true (H.elect t 1);
  let log = Node.log (H.node t 1) in
  check "committed entries survive" true (Log.last_index log >= committed)

let test_conflict_resolution () =
  let t = H.create ~n:3 ~seed:10 () in
  ignore (H.elect t 0);
  ignore (H.commit_via t 0);
  (* Leader 0 appends entries that never replicate (we discard the bag):
     divergent suffix on node 0 only. *)
  ignore (H.client_cmd t 0);
  ignore (H.client_cmd t 0);
  t.H.bag <- [];
  (* New leader in a higher term appends different entries and replicates
     them everywhere, including to node 0, whose suffix must be
     truncated. *)
  ignore (H.elect t 1);
  let c = H.commit_via t 1 in
  H.heartbeat t 1;
  H.drain t;
  let log0 = Node.log (H.node t 0) and log1 = Node.log (H.node t 1) in
  check_int "logs converge in length" (Log.last_index log1) (Log.last_index log0);
  let found = ref false in
  Log.iter_range log0 ~lo:1 ~hi:(Log.last_index log0) (fun _ e ->
      if e.Types.cmd = c then found := true);
  check "new leader's entry adopted" true !found

let test_old_term_entries_commit_via_noop () =
  let t = H.create ~n:3 ~seed:11 () in
  ignore (H.elect t 0);
  (* Replicate but never commit: drop the final round by crashing the
     leader right after the entries reach one follower. *)
  ignore (H.client_cmd t 0);
  H.drain t;
  H.crash t 0;
  ignore (H.elect t 1);
  H.heartbeat t 1;
  H.drain t;
  (* The new leader's no-op committed, and with it the inherited entry. *)
  let nd = H.node t 1 in
  check "inherited entry committed" true
    (Node.commit_index nd = Log.last_index (Node.log nd))

let test_applied_index_piggyback () =
  let t = H.create ~n:3 ~seed:12 () in
  ignore (H.elect t 0);
  ignore (H.commit_via t 0);
  H.heartbeat t 0;
  H.drain t;
  let leader = H.node t 0 in
  check "leader learned follower applied" true
    (Node.applied_index_of leader 1 >= 1 && Node.applied_index_of leader 2 >= 1)

let test_announce_gate_blocks () =
  let t = H.create ~n:3 ~seed:13 () in
  ignore (H.elect t 0);
  let leader = H.node t 0 in
  let gate_open = ref false in
  Node.set_announce_gate leader (Some (fun _ _ -> !gate_open));
  let before = Node.commit_index leader in
  ignore (H.client_cmd t 0);
  H.heartbeat t 0;
  H.drain t;
  check_int "nothing commits while gated" before (Node.commit_index leader);
  gate_open := true;
  H.heartbeat t 0;
  H.drain t;
  check "commits once gate opens" true (Node.commit_index leader > before)

let test_aggregated_send () =
  let nd =
    Node.create
      { Node.id = 0; peers = [| 1; 2 |]; batch_max = 8; eager_commit_notify = false; snap_chunk_bytes = 64 }
      ~noop:(-1)
  in
  ignore (Node.handle nd Node.Election_timeout);
  (* Fake the votes. *)
  ignore
    (Node.handle nd (Node.Receive (Types.Vote { term = 1; from = 1; granted = true })));
  assert (Node.role nd = Node.Leader);
  Node.set_aggregated nd true;
  let actions = Node.handle nd (Node.Client_command 7) in
  let agg_sends =
    List.filter (function Node.Send_aggregate _ -> true | _ -> false) actions
  in
  let direct_sends =
    List.filter (function Node.Send _ -> true | _ -> false) actions
  in
  check_int "one aggregated AE" 1 (List.length agg_sends);
  check_int "no direct AEs when in sync" 0 (List.length direct_sends)

let test_agg_failure_ack_triggers_direct () =
  let nd =
    Node.create
      { Node.id = 0; peers = [| 1; 2 |]; batch_max = 8; eager_commit_notify = false; snap_chunk_bytes = 64 }
      ~noop:(-1)
  in
  ignore (Node.handle nd Node.Election_timeout);
  ignore
    (Node.handle nd (Node.Receive (Types.Vote { term = 1; from = 1; granted = true })));
  Node.set_aggregated nd true;
  ignore (Node.handle nd (Node.Client_command 7));
  (* Follower 2 reports a prev mismatch with a fresh sequence number (as it
     would after an aggregator-fanned AE): leader must fall back to
     point-to-point with it. *)
  let actions =
    Node.handle nd
      (Node.Receive
         (Types.Append_ack
            {
              term = 1;
              from = 2;
              success = false;
              seq = 1_000;
              match_idx = 1;
              applied_idx = 0;
            }))
  in
  let direct_to_2 =
    List.exists
      (function Node.Send (2, Types.Append_entries _) -> true | _ -> false)
      actions
  in
  check "direct recovery AE sent" true direct_to_2

let test_duplicate_acks_no_stream_storm () =
  let t = H.create ~n:3 ~seed:14 () in
  ignore (H.elect t 0);
  ignore (H.commit_via t 0);
  (* Force a retransmission (heartbeat) so duplicate acks exist, then count
     the AEs generated while draining: each peer gets at most one per ack
     it sent. *)
  H.heartbeat t 0;
  H.heartbeat t 0;
  let before = List.length t.H.bag in
  H.drain t;
  check "bag drained" true (List.length t.H.bag = 0);
  check "bounded traffic" true (before < 32)

(* --- property tests ------------------------------------------------ *)

(* A random adversarial schedule: interleaves client commands, timeouts,
   heartbeats, message deliveries with drops and duplication, and up to f
   crashes. The harness asserts election safety, log matching and commit
   immutability after every delivery. *)
let random_schedule_prop (n, seed, steps) =
  let t = H.create ~n ~seed () in
  let rng = Rng.create (seed * 31) in
  let f = (n - 1) / 2 in
  let crashes = ref 0 in
  (try
     for _ = 1 to steps do
       (match Rng.int rng 10 with
       | 0 | 1 -> H.timeout t (Rng.int rng n)
       | 2 | 3 -> H.heartbeat t (Rng.int rng n)
       | 4 -> ignore (H.client_cmd t (Rng.int rng n))
       | 5 when !crashes < f ->
           let victim = Rng.int rng n in
           if not (H.crashed t victim) then begin
             H.crash t victim;
             incr crashes
           end
       | _ -> ignore (H.step_network ~drop:0.1 ~dup:0.1 t));
       H.check t
     done;
     (* Quiesce: stop the adversary, run elections and drain reliably. *)
     for i = 0 to n - 1 do
       H.timeout t i;
       H.drain t
     done;
     true
   with H.Violation msg -> Alcotest.failf "safety violation: %s" msg)

let prop_random_schedules =
  QCheck.Test.make ~name:"raft safety under adversarial schedules" ~count:60
    QCheck.(
      triple (oneofl [ 3; 5 ]) (int_range 1 100_000) (int_range 50 400))
    random_schedule_prop

(* After any adversarial run with a live majority, repeatedly timing out a
   fixed live node and draining must yield a leader that can commit new
   commands (liveness smoke). *)
let liveness_prop (seed, steps) =
  let n = 3 in
  let t = H.create ~n ~seed () in
  let rng = Rng.create (seed * 17) in
  for _ = 1 to steps do
    (match Rng.int rng 8 with
    | 0 -> H.timeout t (Rng.int rng n)
    | 1 -> ignore (H.client_cmd t (Rng.int rng n))
    | _ -> ignore (H.step_network ~drop:0.2 ~dup:0.05 t));
    H.check t
  done;
  t.H.bag <- [];
  (* Deterministic recovery: rotate elections until some node wins (a node
     with a stale log can legitimately never win, so try them all). *)
  let rec settle tries =
    if tries = 0 then None
    else begin
      let candidate = tries mod n in
      H.timeout t candidate;
      H.drain t;
      if Node.role (H.node t candidate) = Node.Leader then Some candidate
      else settle (tries - 1)
    end
  in
  (* A leftover candidate from the chaos phase can still depose the first
     settled leader (Raft without pre-vote admits disruptive servers), so
     liveness is: repeated settle-and-commit attempts eventually succeed. *)
  let rec attempt tries =
    if tries = 0 then false
    else
      match settle 12 with
      | None -> false
      | Some l ->
          let before = Node.commit_index (H.node t l) in
          ignore (H.commit_via t l);
          if
            Node.role (H.node t l) = Node.Leader
            && Node.commit_index (H.node t l) > before
          then true
          else attempt (tries - 1)
  in
  if not (attempt 5) then Alcotest.fail "no leader could commit after chaos";
  true

let prop_liveness =
  QCheck.Test.make ~name:"raft recovers and commits after chaos" ~count:40
    QCheck.(pair (int_range 1 100_000) (int_range 20 200))
    liveness_prop

(* --- log compaction -------------------------------------------------- *)

let test_log_compaction_unit () =
  let log = Log.create () in
  for i = 1 to 10 do
    ignore (Log.append log { Types.term = (i + 4) / 5; cmd = i })
  done;
  Log.compact_to log 4;
  check_int "base" 4 (Log.base log);
  check_int "first index" 5 (Log.first_index log);
  check_int "last index stable" 10 (Log.last_index log);
  Alcotest.(check (option int)) "base term retained" (Some 1) (Log.term_at log 4);
  Alcotest.(check (option int)) "below base unknown" None (Log.term_at log 3);
  check_int "entries still addressable" 7 (Log.get log 7).Types.cmd;
  Log.compact_to log 4;
  check_int "idempotent" 4 (Log.base log);
  Alcotest.check_raises "cannot truncate compacted prefix"
    (Invalid_argument "Log.truncate_from: cannot truncate into the compacted prefix")
    (fun () -> Log.truncate_from log 3)

let test_compaction_respects_followers () =
  let t = H.create ~n:3 ~seed:60 () in
  ignore (H.elect t 0);
  for _ = 1 to 20 do
    ignore (H.commit_via t 0)
  done;
  let leader = H.node t 0 in
  (* Everyone applied: bound covers nearly the whole log. *)
  check "bound advanced" true (Node.compaction_bound leader > 10);
  let base = Node.compact leader ~retain:4 in
  check "compacted" true (base > 0);
  check_int "retained suffix" 4 (Log.last_index (Node.log leader) - base);
  (* Replication still works after compaction. *)
  let before = Node.commit_index leader in
  ignore (H.commit_via t 0);
  check "commits after compaction" true (Node.commit_index leader > before);
  H.check t

let test_compaction_blocked_by_lagging_follower () =
  let t = H.create ~n:3 ~seed:61 () in
  ignore (H.elect t 0);
  ignore (H.commit_via t 0);
  (* Partition follower 2 (drop everything it would receive). *)
  H.crash t 2;
  for _ = 1 to 5 do
    ignore (H.commit_via t 0)
  done;
  let leader = H.node t 0 in
  (* The dead follower's match pins the bound at its last ack. *)
  check "bound pinned by lagging follower" true
    (Node.compaction_bound leader <= Node.match_index_of leader 2 + 1)

let compaction_suite =
  [
    Alcotest.test_case "log compaction unit" `Quick test_log_compaction_unit;
    Alcotest.test_case "compaction respects followers" `Quick
      test_compaction_respects_followers;
    Alcotest.test_case "compaction blocked by lagging follower" `Quick
      test_compaction_blocked_by_lagging_follower;
  ]


(* Property: compaction is invisible above the base — slices, terms and
   commit behaviour are unchanged for retained indices. *)
let prop_compaction_transparent =
  QCheck.Test.make ~name:"log compaction preserves retained entries" ~count:200
    QCheck.(pair (int_range 1 60) (int_range 0 60))
    (fun (n_entries, cut) ->
      let log = Log.create () in
      for i = 1 to n_entries do
        ignore (Log.append log { Types.term = 1 + (i / 7); cmd = i })
      done;
      let cut = min cut n_entries in
      let before =
        Array.to_list (Log.slice log ~lo:(cut + 1) ~hi:n_entries)
      in
      let terms_before =
        List.init (n_entries - cut) (fun k -> Log.term_at log (cut + 1 + k))
      in
      Log.compact_to log cut;
      let after = Array.to_list (Log.slice log ~lo:(cut + 1) ~hi:n_entries) in
      let terms_after =
        List.init (n_entries - cut) (fun k -> Log.term_at log (cut + 1 + k))
      in
      Log.base log = cut && before = after && terms_before = terms_after
      && Log.last_index log = n_entries)

(* Property: after any reliable-network run, periodic compaction on every
   node never breaks replication or safety. *)
let prop_compaction_under_load =
  QCheck.Test.make ~name:"compaction composes with replication" ~count:50
    QCheck.(pair (int_range 1 10_000) (int_range 5 40))
    (fun (seed, cmds) ->
      let t = H.create ~n:3 ~seed () in
      ignore (H.elect t 0);
      for i = 1 to cmds do
        ignore (H.commit_via t 0);
        if i mod 5 = 0 then
          for j = 0 to 2 do
            ignore (Node.compact (H.node t j) ~retain:3)
          done
      done;
      H.check t;
      Node.commit_index (H.node t 0) >= cmds)

let compaction_props =
  [
    QCheck_alcotest.to_alcotest prop_compaction_transparent;
    QCheck_alcotest.to_alcotest prop_compaction_under_load;
  ]


let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "single-node cluster" `Quick test_single_node_cluster;
    Alcotest.test_case "basic election" `Quick test_basic_election;
    Alcotest.test_case "no majority, no leader" `Quick
      test_no_election_without_majority;
    Alcotest.test_case "replication and commit" `Quick test_replication_and_commit;
    Alcotest.test_case "commit propagates" `Quick test_commit_propagates_to_followers;
    Alcotest.test_case "stale leader steps down" `Quick test_stale_leader_steps_down;
    Alcotest.test_case "one vote per term" `Quick test_one_vote_per_term;
    Alcotest.test_case "leader completeness" `Quick test_log_up_to_date_check;
    Alcotest.test_case "conflict resolution" `Quick test_conflict_resolution;
    Alcotest.test_case "old-term entries commit via no-op" `Quick
      test_old_term_entries_commit_via_noop;
    Alcotest.test_case "applied index piggyback" `Quick test_applied_index_piggyback;
    Alcotest.test_case "announce gate blocks replication" `Quick
      test_announce_gate_blocks;
    Alcotest.test_case "aggregated replication sends one AE" `Quick
      test_aggregated_send;
    Alcotest.test_case "agg failure ack falls back to direct" `Quick
      test_agg_failure_ack_triggers_direct;
    Alcotest.test_case "duplicate acks bounded" `Quick
      test_duplicate_acks_no_stream_storm;
    QCheck_alcotest.to_alcotest prop_random_schedules;
    QCheck_alcotest.to_alcotest prop_liveness;
  ]
  @ compaction_suite @ compaction_props

