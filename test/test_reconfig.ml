(* Tests for single-server membership changes and leadership transfer:
   the Deploy reconfiguration surface, the chaos events that drive it,
   and the membership fields in the JSON snapshot. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Service = Hovercraft_apps.Service
module Json = Hovercraft_obs.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_members = Alcotest.(check (list int))

let workload = Service.sample (Service.spec ~read_fraction:0.5 ())

let assert_clean (o : Chaos.outcome) =
  Alcotest.(check (list string)) "no checker violations" [] o.Chaos.violations;
  check "exactly once" true o.Chaos.exactly_once_ok;
  check "committed preserved" true o.Chaos.committed_preserved;
  check "caught up" true o.Chaos.caught_up;
  check "consistent" true o.Chaos.consistent;
  check "progress was made" true (o.Chaos.report.Loadgen.completed > 0);
  check_int "no stuck recoveries" 0 o.Chaos.pending_recoveries

(* Grow 3 -> 5 one voter at a time, under open-loop load. *)
let test_grow_under_load () =
  let outcome =
    Chaos.run ~n:3 ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 600)
      ~schedule:
        [
          { Chaos.at = Timebase.ms 100; event = Chaos.Add_node };
          { Chaos.at = Timebase.ms 250; event = Chaos.Add_node };
        ]
      ~workload ~seed:51 ()
  in
  assert_clean outcome;
  check_members "membership grew to five" [ 0; 1; 2; 3; 4 ]
    outcome.Chaos.final_members

(* Shrink 5 -> 3; the removed nodes are decommissioned, not just dead. *)
let test_shrink_under_load () =
  let outcome =
    Chaos.run ~n:5 ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 600)
      ~schedule:
        [
          { Chaos.at = Timebase.ms 100; event = Chaos.Remove_node 4 };
          { Chaos.at = Timebase.ms 250; event = Chaos.Remove_node 3 };
        ]
      ~workload ~seed:52 ()
  in
  assert_clean outcome;
  check_members "membership shrank to three" [ 0; 1; 2 ]
    outcome.Chaos.final_members

(* Removing the leader itself: it leads until the entry commits, then
   steps down (Raft §4.2.2) and a member takes over. *)
let test_remove_leader () =
  let outcome =
    Chaos.run ~n:5 ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 700)
      ~schedule:
        (* Node 0 bootstraps as leader. *)
        [ { Chaos.at = Timebase.ms 150; event = Chaos.Remove_node 0 } ]
      ~workload ~seed:53 ()
  in
  assert_clean outcome;
  check_members "old leader out of the configuration" [ 1; 2; 3; 4 ]
    outcome.Chaos.final_members

(* An addition proposed while a minority is partitioned away must still
   commit (majority of the new config is reachable), and the heal must
   reconcile everyone onto the grown configuration. *)
let test_add_during_partition_then_heal () =
  let outcome =
    Chaos.run ~n:5 ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 700)
      ~schedule:
        [
          {
            Chaos.at = Timebase.ms 100;
            event = Chaos.Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ];
          };
          { Chaos.at = Timebase.ms 200; event = Chaos.Add_node };
          { Chaos.at = Timebase.ms 350; event = Chaos.Heal };
        ]
      ~workload ~seed:54 ()
  in
  assert_clean outcome;
  check_members "grown config survives the heal" [ 0; 1; 2; 3; 4; 5 ]
    outcome.Chaos.final_members

(* Cooperative transfer must move leadership to the named target well
   inside one election timeout — that is its whole point. *)
let test_transfer_latency () =
  let params = Hnode.params ~mode:Hnode.Hover ~n:3 () in
  let d = Deploy.create (Deploy.config params) in
  let engine = d.Deploy.engine in
  let old_leader =
    match Deploy.leader d with
    | Some l -> l
    | None -> Alcotest.fail "no leader after create"
  in
  check_int "node0 leads initially" 0 (Hnode.id old_leader);
  let t0 = Engine.now engine in
  Deploy.transfer_leadership d ~target:2;
  let budget = params.Hnode.timing.Hnode.election_min in
  let step = Timebase.us 20 in
  let rec wait () =
    match Deploy.leader d with
    | Some l when Hnode.id l = 2 -> ()
    | _ when Engine.now engine - t0 >= budget -> ()
    | _ ->
        Engine.run ~until:(Engine.now engine + step) engine;
        wait ()
  in
  wait ();
  let elapsed = Engine.now engine - t0 in
  (match Deploy.leader d with
  | Some l -> check_int "target leads" 2 (Hnode.id l)
  | None -> Alcotest.fail "transfer left the cluster leaderless");
  check "transfer beat the election timeout" true (elapsed < budget);
  Alcotest.(check (option int))
    "old leader recorded the hand-off" (Some 2)
    (Hnode.last_transfer old_leader)

(* HovercRaft++: the in-network aggregator must reload its membership
   (and thus its quorum arithmetic) when a config entry is applied. *)
let test_aggregator_quorum_updates () =
  let d =
    Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover_pp ~n:3 ()))
  in
  let agg =
    match d.Deploy.aggregator with
    | Some a -> a
    | None -> Alcotest.fail "Hover++ deployment has no aggregator"
  in
  check_members "aggregator starts with the bootstrap set" [ 0; 1; 2 ]
    (Aggregator.members agg);
  let id = Deploy.add_node d in
  Deploy.quiesce d ~extra:(Timebase.ms 50) ();
  check_int "next unused id assigned" 3 id;
  (match Deploy.leader d with
  | Some l -> check_members "leader applied the addition" [ 0; 1; 2; 3 ] (Hnode.members l)
  | None -> Alcotest.fail "no leader after reconfiguration");
  check_members "aggregator reloaded membership" [ 0; 1; 2; 3 ]
    (Aggregator.members agg)

(* Membership churn interleaved with crashes and a restart, all through
   the history checker. *)
let test_mixed_chaos_reconfig () =
  let outcome =
    Chaos.run ~n:5 ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 800)
      ~schedule:
        [
          { Chaos.at = Timebase.ms 80; event = Chaos.Kill 4 };
          { Chaos.at = Timebase.ms 180; event = Chaos.Add_node };
          { Chaos.at = Timebase.ms 300; event = Chaos.Restart 4 };
          { Chaos.at = Timebase.ms 420; event = Chaos.Remove_node 1 };
          { Chaos.at = Timebase.ms 540; event = Chaos.Transfer 2 };
        ]
      ~workload ~seed:55 ()
  in
  assert_clean outcome;
  check_members "net effect: +node5, -node1" [ 0; 2; 3; 4; 5 ]
    outcome.Chaos.final_members

(* The reconfig-aware generator must keep (on its own model) a quorum of
   members alive and never shrink the cluster below three voters. *)
let test_random_reconfig_schedule_model () =
  List.iter
    (fun seed ->
      let steps =
        Chaos.random_schedule ~events:10 ~reconfig:true ~n:5
          ~duration:(Timebase.s 2) ~seed ()
      in
      let members = ref 5 in
      let dead = Hashtbl.create 8 in
      let anon = ref 0 in
      List.iter
        (fun { Chaos.event; _ } ->
          (match event with
          | Chaos.Kill i -> Hashtbl.replace dead i ()
          | Chaos.Kill_leader -> incr anon
          | Chaos.Restart i -> Hashtbl.remove dead i
          | Chaos.Add_node -> incr members
          | Chaos.Remove_node _ -> decr members
          | Chaos.Partition _ | Chaos.Heal | Chaos.Transfer _
          | Chaos.Shard _ -> ());
          check "never below three voters" true (!members >= 3);
          check "minority dead" true
            (Hashtbl.length dead + !anon <= (!members - 1) / 2))
        steps;
      check_int "id-kills all restarted" 0 (Hashtbl.length dead))
    [ 1; 2; 3; 4; 5 ];
  (* Legacy path: omitting [reconfig] must equal passing [false], so old
     seeds keep replaying identically. *)
  let a = Chaos.random_schedule ~events:8 ~n:5 ~duration:(Timebase.s 2) ~seed:9 () in
  let b =
    Chaos.random_schedule ~events:8 ~reconfig:false ~n:5 ~duration:(Timebase.s 2)
      ~seed:9 ()
  in
  check "reconfig:false is the default" true (a = b)

(* The deployment snapshot carries voters / config_index / last_transfer
   and survives a serialize-parse round trip. *)
let test_snapshot_membership_roundtrip () =
  let d = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ())) in
  let id = Deploy.add_node d in
  Deploy.quiesce d ~extra:(Timebase.ms 50) ();
  let snap = Deploy.snapshot d in
  match Json.of_string (Json.to_string snap) with
  | Error e -> Alcotest.fail ("snapshot did not parse back: " ^ e)
  | Ok reparsed -> (
      check "round trip preserves the snapshot" true (Json.equal snap reparsed);
      match Json.member "membership" reparsed with
      | Some (Json.Obj _ as m) -> (
          (match Json.member "voters" m with
          | Some (Json.List voters) ->
              check "new voter serialized" true (List.mem (Json.Int id) voters);
              check_int "all four voters present" 4 (List.length voters)
          | _ -> Alcotest.fail "membership.voters missing or not a list");
          (match Json.member "config_index" m with
          | Some (Json.Int ci) -> check "config index advanced" true (ci > 0)
          | _ -> Alcotest.fail "membership.config_index missing");
          match Json.member "last_transfer" m with
          | Some (Json.Int _) -> ()
          | _ -> Alcotest.fail "membership.last_transfer missing")
      | _ -> Alcotest.fail "snapshot has no membership object")

let suite =
  [
    Alcotest.test_case "grow 3->5 under load" `Slow test_grow_under_load;
    Alcotest.test_case "shrink 5->3 under load" `Slow test_shrink_under_load;
    Alcotest.test_case "remove the leader" `Slow test_remove_leader;
    Alcotest.test_case "add during partition, then heal" `Slow
      test_add_during_partition_then_heal;
    Alcotest.test_case "transfer beats the election timeout" `Quick
      test_transfer_latency;
    Alcotest.test_case "aggregator reloads quorum on config apply" `Quick
      test_aggregator_quorum_updates;
    Alcotest.test_case "mixed kill/restart/add/remove/transfer chaos" `Slow
      test_mixed_chaos_reconfig;
    Alcotest.test_case "random reconfig schedules keep quorum" `Quick
      test_random_reconfig_schedule_model;
    Alcotest.test_case "snapshot membership round trip" `Quick
      test_snapshot_membership_roundtrip;
  ]
