(* An adversarial, network-less harness for the pure Raft core.

   Nodes are driven directly through [Node.handle]; the "network" is a
   deterministic message bag the schedule adversary controls: it can
   reorder (random pick), drop, and duplicate messages, crash nodes, and
   fire election/heartbeat timeouts at any node at any point. The safety
   checks run after every step, so any interleaving that breaks a Raft
   invariant fails immediately with the offending schedule's seed. *)

open Hovercraft_sim
module Node = Hovercraft_raft.Node
module Log = Hovercraft_raft.Log
module Types = Hovercraft_raft.Types

type cmd = int
type snap = int
(* The snapshot payload in harness tests is just a marker int; the
   consensus layer treats it opaquely. *)

type t = {
  nodes : (cmd, snap) Node.t array;
  crashed : bool array;
  (* In-flight messages as (destination, message). *)
  mutable bag : (int * (cmd, snap) Types.message) list;
  rng : Rng.t;
  mutable committed : (int * cmd Types.entry) list;
      (* Every (index, entry) ever observed committed anywhere; used for
         the state-machine-safety check. *)
  mutable next_cmd : int;
}

let create ?(n = 3) ~seed () =
  let peers id = Array.init (n - 1) (fun i -> if i < id then i else i + 1) in
  {
    nodes =
      Array.init n (fun id ->
          Node.create
            {
              Node.id;
              peers = peers id;
              batch_max = 8;
              eager_commit_notify = false;
              snap_chunk_bytes = 64;
            }
            ~noop:(-1));
    crashed = Array.make n false;
    bag = [];
    rng = Rng.create seed;
    committed = [];
    next_cmd = 0;
  }

let n t = Array.length t.nodes
let node t i = t.nodes.(i)
let crash t i = t.crashed.(i) <- true
let crashed t i = t.crashed.(i)

let alive_leaders t =
  Array.to_list t.nodes
  |> List.filteri (fun i _ -> not t.crashed.(i))
  |> List.filter (fun nd -> Node.role nd = Node.Leader)

(* --- safety checks ------------------------------------------------- *)

exception Violation of string

let check_election_safety t =
  let by_term = Hashtbl.create 8 in
  Array.iteri
    (fun i nd ->
      if (not t.crashed.(i)) && Node.role nd = Node.Leader then begin
        let term = Node.term nd in
        match Hashtbl.find_opt by_term term with
        | Some other ->
            raise
              (Violation
                 (Printf.sprintf "two leaders (%d and %d) in term %d" other i
                    term))
        | None -> Hashtbl.replace by_term term i
      end)
    t.nodes

let check_log_matching t =
  (* If two logs agree on the term at an index, they agree on everything
     up to that index (checked pairwise on the shared suffix). *)
  let logs = Array.map Node.log t.nodes in
  Array.iteri
    (fun i li ->
      Array.iteri
        (fun j lj ->
          if i < j then begin
            let lowest = max (Log.first_index li) (Log.first_index lj) in
            let upto = min (Log.last_index li) (Log.last_index lj) in
            let rec back k =
              if k >= lowest then
                if Log.term_at li k = Log.term_at lj k then begin
                  for m = lowest to k do
                    let a = Log.get li m and b = Log.get lj m in
                    if a.Types.term <> b.Types.term || a.cmd <> b.cmd then
                      raise
                        (Violation
                           (Printf.sprintf
                              "log matching broken between %d and %d at %d" i j
                              m))
                  done
                end
                else back (k - 1)
            in
            back upto
          end)
        logs)
    logs

let check_commit_safety t =
  (* Committed (index, entry) pairs are immutable across the run. *)
  Array.iteri
    (fun i nd ->
      if not t.crashed.(i) then begin
        let log = Node.log nd in
        for idx = Log.first_index log to Node.commit_index nd do
          let entry = Log.get log idx in
          (match List.assoc_opt idx t.committed with
          | Some prev when prev.Types.term <> entry.Types.term || prev.cmd <> entry.cmd
            ->
              raise
                (Violation
                   (Printf.sprintf "committed entry at %d changed (node %d)" idx
                      i))
          | Some _ -> ()
          | None -> t.committed <- (idx, entry) :: t.committed)
        done
      end)
    t.nodes

let check t =
  check_election_safety t;
  check_log_matching t;
  check_commit_safety t

(* --- driving ------------------------------------------------------- *)

let perform t src actions =
  List.iter
    (fun a ->
      match a with
      | Node.Send (dst, msg) -> t.bag <- (dst, msg) :: t.bag
      | Node.Send_aggregate _ ->
          raise (Violation "aggregated send from a non-aggregated config")
      | Node.Commit_advanced c ->
          (* Eager application: report progress immediately. *)
          ignore (Node.handle t.nodes.(src) (Node.Applied_up_to c))
      | Node.Appended _ | Node.Became_leader | Node.Became_follower _
      | Node.Leader_activity | Node.Reject_command _
      | Node.Snapshot_installed _ ->
          ())
    actions

let feed t i input =
  if not t.crashed.(i) then perform t i (Node.handle t.nodes.(i) input)

let timeout t i = feed t i Node.Election_timeout
let heartbeat t i = feed t i Node.Heartbeat_timeout

let client_cmd t i =
  let c = t.next_cmd in
  t.next_cmd <- c + 1;
  feed t i (Node.Client_command c);
  c

(* Deliver one random message from the bag; optionally drop or duplicate. *)
let step_network ?(drop = 0.) ?(dup = 0.) t =
  match t.bag with
  | [] -> false
  | bag ->
      let k = Rng.int t.rng (List.length bag) in
      let dst, msg = List.nth bag k in
      t.bag <- List.filteri (fun i _ -> i <> k) bag;
      if Rng.bool t.rng dup then t.bag <- (dst, msg) :: t.bag;
      if not (Rng.bool t.rng drop) then feed t dst (Node.Receive msg);
      true

let drain ?drop ?dup ?(max_steps = 100_000) t =
  let steps = ref 0 in
  while step_network ?drop ?dup t && !steps < max_steps do
    incr steps;
    check t
  done

(* Elect [i] deterministically: time it out and deliver everything. *)
let elect t i =
  timeout t i;
  drain t;
  check t;
  Node.role t.nodes.(i) = Node.Leader

(* Commit one client command through leader [i], fully draining. *)
let commit_via t i =
  let c = client_cmd t i in
  drain t;
  (* Followers learn the commit on the next round. *)
  heartbeat t i;
  drain t;
  c
