(* Tests for the explicit-state model checker. *)

module Node = Hovercraft_raft.Node
module Types = Hovercraft_raft.Types
open Hovercraft_mc

let check = Alcotest.(check bool)

let verified = function
  | Explore.Verified _ -> true
  | Explore.Violation _ -> false

let test_bounded_raft_safe () =
  let cfg = { Model.default with max_messages = 4; allow_duplication = false } in
  check "raft safe within budget" true
    (verified (Explore.run ~max_states:40_000 cfg))

let test_bounded_hoverpp_safe () =
  let cfg =
    {
      Model.default with
      aggregated = true;
      max_messages = 4;
      allow_duplication = false;
    }
  in
  check "hovercraft++ safe within budget" true
    (verified (Explore.run ~max_states:40_000 cfg))

let test_duplication_and_drops_safe () =
  let cfg = { Model.default with aggregated = true; max_messages = 4 } in
  check "safe with duplication and drops" true
    (verified (Explore.run ~max_states:40_000 cfg))

let test_five_nodes_safe () =
  let cfg =
    { Model.default with n = 5; max_messages = 3; allow_duplication = false }
  in
  check "n=5 safe within budget" true
    (verified (Explore.run ~max_states:30_000 cfg))

(* The checker must have teeth: plant a two-leaders-per-term state and a
   diverged-committed-prefix state and confirm detection. *)
let forced_leader id n =
  let nd =
    Node.create
      {
        Node.id;
        peers = Array.init (n - 1) (fun k -> if k < id then k else k + 1);
        batch_max = 8;
        eager_commit_notify = false;
        snap_chunk_bytes = 64;
      }
      ~noop:(-1)
  in
  ignore (Node.handle nd Node.Election_timeout);
  ignore
    (Node.handle nd
       (Node.Receive
          (Types.Vote
             { term = 1; from = (if id = 0 then 1 else 0); granted = true })));
  assert (Node.role nd = Node.Leader);
  nd

let test_detects_election_violation () =
  let cfg = { Model.default with max_cmds = 0 } in
  let follower =
    Node.dump
      (Node.create
         { Node.id = 2; peers = [| 0; 1 |]; batch_max = 8; eager_commit_notify = false; snap_chunk_bytes = 64 }
         ~noop:(-1))
  in
  let bad =
    Model.of_nodes cfg
      [| Node.dump (forced_leader 0 3); Node.dump (forced_leader 1 3); follower |]
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  match Model.check cfg bad with
  | Error msg -> check "names election safety" true (contains msg "election")
  | Ok _ -> Alcotest.fail "planted double leader not detected"

let test_detects_commit_divergence () =
  let cfg = Model.default in
  (* Two single-node-style leaders that committed different entries at
     index 1. *)
  let mk id cmd =
    let nd = forced_leader id 3 in
    (* Force-feed a divergent committed entry. *)
    ignore (Node.handle nd (Node.Client_command cmd));
    ignore
      (Node.handle nd
         (Node.Receive
            (Types.Append_ack
               {
                 term = 1;
                 from = (if id = 0 then 1 else 0);
                 success = true;
                 seq = 1_000;
                 match_idx = 2;
                 applied_idx = 0;
               })));
    nd
  in
  (* Same term on both sides would already trip election safety; raise one
     to term 2 via a vote exchange so only the commit check can catch it. *)
  let a = mk 0 111 in
  let b = mk 1 222 in
  ignore
    (Node.handle b
       (Node.Receive
          (Types.Vote { term = 3; from = 2; granted = false })));
  ignore (Node.handle b Node.Election_timeout);
  let follower =
    Node.create
      { Node.id = 2; peers = [| 0; 1 |]; batch_max = 8; eager_commit_notify = false; snap_chunk_bytes = 64 }
      ~noop:(-1)
  in
  let bad = Model.of_nodes cfg [| Node.dump a; Node.dump b; Node.dump follower |] in
  match Model.check cfg bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "planted divergence not detected"

(* --- rabia: randomized agreement over pure instances ----------------- *)

let test_rabia_agreement () =
  List.iter
    (fun seed ->
      let cfg = { Hovercraft_mc.Rabia_check.default with seed } in
      let o = Hovercraft_mc.Rabia_check.run cfg in
      if o.Hovercraft_mc.Rabia_check.violations <> [] then
        Alcotest.failf "seed %d: %s" seed
          (String.concat "; " o.Hovercraft_mc.Rabia_check.violations);
      Alcotest.(check bool) "agreed" true o.Hovercraft_mc.Rabia_check.agreed;
      Alcotest.(check bool) "valid" true o.Hovercraft_mc.Rabia_check.valid;
      Alcotest.(check bool)
        "all decided" true o.Hovercraft_mc.Rabia_check.all_decided;
      if o.Hovercraft_mc.Rabia_check.decided <= 0 then
        Alcotest.failf "seed %d: nothing decided" seed)
    [ 1; 2; 3; 4; 5 ]

let test_rabia_agreement_five_nodes () =
  let o =
    Hovercraft_mc.Rabia_check.run
      {
        Hovercraft_mc.Rabia_check.default with
        n = 5;
        cmds = 10;
        steps = 6_000;
        drop_prob = 0.15;
        recover_prob = 0.004;
        seed = 9;
      }
  in
  if o.Hovercraft_mc.Rabia_check.violations <> [] then
    Alcotest.failf "%s"
      (String.concat "; " o.Hovercraft_mc.Rabia_check.violations)

let suite =
  [
    Alcotest.test_case "bounded raft safe" `Slow test_bounded_raft_safe;
    Alcotest.test_case "rabia agreement under drop+dup+reorder+recover"
      `Quick test_rabia_agreement;
    Alcotest.test_case "rabia agreement, five nodes" `Quick
      test_rabia_agreement_five_nodes;
    Alcotest.test_case "bounded hovercraft++ safe" `Slow test_bounded_hoverpp_safe;
    Alcotest.test_case "safe with dup+drop" `Slow test_duplication_and_drops_safe;
    Alcotest.test_case "five nodes safe" `Slow test_five_nodes_safe;
    Alcotest.test_case "detects double leader" `Quick test_detects_election_violation;
    Alcotest.test_case "detects commit divergence" `Quick
      test_detects_commit_divergence;
  ]
