(* Tests for addresses, wire framing, CPU resources and the fabric. *)

open Hovercraft_sim
open Hovercraft_net

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- addr ----------------------------------------------------------- *)

let test_addr_equal_hash () =
  check "node eq" true (Addr.equal (Addr.Node 1) (Addr.Node 1));
  check "node neq" false (Addr.equal (Addr.Node 1) (Addr.Node 2));
  check "kinds differ" false (Addr.equal (Addr.Node 1) (Addr.Client 1));
  check "hash consistent" true (Addr.hash (Addr.Node 3) = Addr.hash (Addr.Node 3));
  check_int "compare equal" 0 (Addr.compare Addr.Netagg Addr.Netagg);
  check "compare total" true
    (Addr.compare (Addr.Node 1) (Addr.Client 0) < 0
    = (Addr.compare (Addr.Client 0) (Addr.Node 1) > 0))

let test_addr_to_string () =
  Alcotest.(check string) "node" "node2" (Addr.to_string (Addr.Node 2));
  Alcotest.(check string) "mcast" "mcast0" (Addr.to_string (Addr.Group 0));
  Alcotest.(check string) "mbox" "middlebox" (Addr.to_string Addr.Middlebox)

(* --- wire ------------------------------------------------------------ *)

let test_wire_framing () =
  check_int "empty payload = 1 frame" 1 (Wire.frames ~payload:0);
  check_int "1500 fits one frame" 1 (Wire.frames ~payload:1500);
  check_int "1501 needs two" 2 (Wire.frames ~payload:1501);
  check_int "6kB needs four" 4 (Wire.frames ~payload:6000);
  check_int "overhead per frame" (6000 + (4 * Wire.frame_overhead))
    (Wire.wire_bytes ~payload:6000)

let test_wire_serialization () =
  (* 1250 bytes at 10 Gbps = 1 us exactly. *)
  check_int "10G math" 1000 (Wire.serialize_ns ~rate_gbps:10. ~bytes:1250);
  check_int "never zero" 1 (Wire.serialize_ns ~rate_gbps:100. ~bytes:1)

let test_wire_6kb_rate_bound () =
  (* The §3.3 arithmetic: ~200k replies/s of 6 kB saturate a 10G link. *)
  let wire = Wire.wire_bytes ~payload:6000 in
  let ns = Wire.serialize_ns ~rate_gbps:10. ~bytes:wire in
  let max_rps = 1_000_000_000 / ns in
  check "cap near 200k" true (max_rps > 190_000 && max_rps < 210_000)

(* --- cpu ------------------------------------------------------------- *)

let test_cpu_serializes () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let done_at = ref [] in
  Cpu.exec cpu ~cost:100 (fun () -> done_at := Engine.now e :: !done_at);
  Cpu.exec cpu ~cost:50 (fun () -> done_at := Engine.now e :: !done_at);
  Engine.run e;
  Alcotest.(check (list int)) "FIFO completion times" [ 100; 150 ] (List.rev !done_at);
  check_int "busy accounting" 150 (Cpu.busy_time cpu)

let test_cpu_idle_gap () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let times = ref [] in
  Cpu.exec cpu ~cost:10 (fun () -> times := Engine.now e :: !times);
  Engine.run e;
  (* Submit again after idling: starts from now, not from 0. *)
  Engine.at e 100 (fun () ->
      Cpu.exec cpu ~cost:10 (fun () -> times := Engine.now e :: !times));
  Engine.run e;
  Alcotest.(check (list int)) "idle gap respected" [ 10; 110 ] (List.rev !times)

let test_cpu_halt () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  let ran = ref false in
  Cpu.exec cpu ~cost:10 (fun () -> ran := true);
  Cpu.halt cpu;
  Engine.run e;
  check "halted work discarded" false !ran;
  Cpu.exec cpu ~cost:10 (fun () -> ran := true);
  Engine.run e;
  check "new work also discarded" false !ran

let test_cpu_backlog () =
  let e = Engine.create () in
  let cpu = Cpu.create e in
  Cpu.exec cpu ~cost:500 ignore;
  check_int "backlog reflects queue" 500 (Cpu.backlog cpu);
  Engine.run e;
  check_int "drains to zero" 0 (Cpu.backlog cpu)

(* --- fabric ----------------------------------------------------------- *)

type probe = { mutable got : (Addr.t * int * Timebase.t) list }

let attach_probe fabric addr ?(rate = 10.) probe =
  Hovercraft_net.Fabric.attach fabric ~addr ~rate_gbps:rate
    ~handler:(fun pkt ->
      probe.got <- (pkt.Fabric.src, pkt.Fabric.bytes, pkt.Fabric.sent_at) :: probe.got)

let test_fabric_unicast_latency () =
  let e = Engine.create () in
  let fabric = Fabric.create e ~latency:1000 () in
  let pa = { got = [] } and pb = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) pa in
  let _b = attach_probe fabric (Addr.Node 1) pb in
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:36 ();
  Engine.run e;
  check_int "delivered once" 1 (List.length pb.got);
  (* serialization(100B wire at 10G = 80ns) + 1us + rx serialization *)
  let expected = 80 + 1000 + 80 in
  check_int "arrival time" expected (Engine.now e)

let test_fabric_multicast_excludes_sender () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let probes = Array.init 3 (fun _ -> { got = [] }) in
  let ports = Array.init 3 (fun i -> attach_probe fabric (Addr.Node i) probes.(i)) in
  for i = 0 to 2 do
    Fabric.join fabric ~group:7 (Addr.Node i)
  done;
  Fabric.send fabric ports.(0) ~dst:(Addr.Group 7) ~bytes:10 ();
  Engine.run e;
  check_int "sender excluded" 0 (List.length probes.(0).got);
  check_int "member 1 got it" 1 (List.length probes.(1).got);
  check_int "member 2 got it" 1 (List.length probes.(2).got);
  check_int "sender tx counted once" 1 (Fabric.tx_packets ports.(0))

let test_fabric_tx_serialization_queues () =
  let e = Engine.create () in
  let fabric = Fabric.create e ~latency:0 () in
  let p = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) { got = [] } in
  let _b = attach_probe fabric (Addr.Node 1) ~rate:10. p in
  (* Two 1250-byte-wire packets back to back: second arrives ~1us later. *)
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:(1250 - 64) ();
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:(1250 - 64) ();
  Engine.run e;
  check_int "both delivered" 2 (List.length p.got);
  (* total = 2 tx serializations + 1 rx (overlapped) + final rx *)
  check "second delayed by serialization" true (Engine.now e >= 2000)

let test_fabric_unknown_dst_dropped () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let a = attach_probe fabric (Addr.Node 0) { got = [] } in
  Fabric.send fabric a ~dst:(Addr.Node 9) ~bytes:10 ();
  Engine.run e;
  check_int "drop counted at sender" 1 (Fabric.dropped a)

let test_fabric_down_port () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let p = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) { got = [] } in
  let b = attach_probe fabric (Addr.Node 1) p in
  Fabric.set_down b true;
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:10 ();
  Engine.run e;
  check_int "down port drops" 0 (List.length p.got);
  check_int "drop counted at receiver" 1 (Fabric.dropped b);
  Fabric.set_down b false;
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:10 ();
  Engine.run e;
  check_int "revived port receives" 1 (List.length p.got)

let test_fabric_leave_group () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let p1 = { got = [] } and p2 = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) { got = [] } in
  let _ = attach_probe fabric (Addr.Node 1) p1 in
  let _ = attach_probe fabric (Addr.Node 2) p2 in
  Fabric.join fabric ~group:1 (Addr.Node 1);
  Fabric.join fabric ~group:1 (Addr.Node 2);
  Fabric.leave fabric ~group:1 (Addr.Node 2);
  Fabric.send fabric a ~dst:(Addr.Group 1) ~bytes:10 ();
  Engine.run e;
  check_int "member kept" 1 (List.length p1.got);
  check_int "left member skipped" 0 (List.length p2.got)

let test_fabric_byte_counters () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let p = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) { got = [] } in
  let b = attach_probe fabric (Addr.Node 1) p in
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:100 ();
  Engine.run e;
  check_int "tx wire bytes include overhead" (100 + Wire.frame_overhead)
    (Fabric.tx_wire_bytes a);
  check_int "rx wire bytes match" (100 + Wire.frame_overhead) (Fabric.rx_wire_bytes b)

(* --- fault injection -------------------------------------------------- *)

let test_fabric_link_drop () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let p = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) { got = [] } in
  let _b = attach_probe fabric (Addr.Node 1) p in
  Fabric.set_link_fault fabric ~src:(Addr.Node 0) ~dst:(Addr.Node 1) ~drop:1. ();
  for _ = 1 to 10 do
    Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:10 ()
  done;
  Engine.run e;
  check_int "all dropped" 0 (List.length p.got);
  check_int "drops counted" 10 (Fabric.injected_drops fabric);
  Fabric.clear_link_fault fabric ~src:(Addr.Node 0) ~dst:(Addr.Node 1);
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:10 ();
  Engine.run e;
  check_int "cleared link delivers" 1 (List.length p.got)

let test_fabric_link_delay_directional () =
  let e = Engine.create () in
  let fabric = Fabric.create e ~latency:1000 () in
  let pa = { got = [] } and pb = { got = [] } in
  let a = attach_probe fabric (Addr.Node 0) pa in
  let b = attach_probe fabric (Addr.Node 1) pb in
  Fabric.set_link_fault fabric ~src:(Addr.Node 0) ~dst:(Addr.Node 1)
    ~delay:5000 ();
  Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:36 ();
  Engine.run e;
  (* tx serialization + latency + injected delay + rx serialization *)
  check_int "delayed arrival" (80 + 1000 + 5000 + 80) (Engine.now e);
  (* The reverse direction is unimpaired. *)
  let t0 = Engine.now e in
  Fabric.send fabric b ~dst:(Addr.Node 0) ~bytes:36 ();
  Engine.run e;
  check_int "reverse unimpaired" (t0 + 80 + 1000 + 80) (Engine.now e);
  check_int "both delivered" 2 (List.length pa.got + List.length pb.got)

let test_fabric_partition_heal () =
  let e = Engine.create () in
  let fabric = Fabric.create e () in
  let probes = Array.init 3 (fun _ -> { got = [] }) in
  let ports =
    Array.init 3 (fun i -> attach_probe fabric (Addr.Node i) probes.(i))
  in
  let client = { got = [] } in
  let cport = attach_probe fabric (Addr.Client 0) client in
  Fabric.partition fabric [ [ Addr.Node 0; Addr.Node 1 ]; [ Addr.Node 2 ] ];
  check "partitioned" true (Fabric.partitioned fabric);
  check "cross-island unreachable" false
    (Fabric.reachable fabric (Addr.Node 0) (Addr.Node 2));
  check "same island reachable" true
    (Fabric.reachable fabric (Addr.Node 0) (Addr.Node 1));
  check "unassigned reaches everyone" true
    (Fabric.reachable fabric (Addr.Client 0) (Addr.Node 2));
  Fabric.send fabric ports.(0) ~dst:(Addr.Node 2) ~bytes:10 ();
  Fabric.send fabric ports.(0) ~dst:(Addr.Node 1) ~bytes:10 ();
  Fabric.send fabric cport ~dst:(Addr.Node 2) ~bytes:10 ();
  Engine.run e;
  check_int "cross-island dropped" 0 (List.length probes.(2).got - 1);
  check_int "partition drops counted" 1 (Fabric.partition_drops fabric);
  check_int "same island delivered" 1 (List.length probes.(1).got);
  Fabric.heal fabric;
  check "healed" false (Fabric.partitioned fabric);
  Fabric.send fabric ports.(0) ~dst:(Addr.Node 2) ~bytes:10 ();
  Engine.run e;
  check_int "healed link delivers" 2 (List.length probes.(2).got)

let test_fabric_fault_free_untouched () =
  (* The fault RNG must not be consumed unless a lossy fault is installed:
     a fault-free run is byte-identical whatever the fault seed. *)
  let run fault_seed =
    let e = Engine.create () in
    let fabric = Fabric.create e ~fault_seed () in
    let p = { got = [] } in
    let a = attach_probe fabric (Addr.Node 0) { got = [] } in
    let _ = attach_probe fabric (Addr.Node 1) p in
    Fabric.set_link_fault fabric ~src:(Addr.Node 0) ~dst:(Addr.Node 1)
      ~delay:100 ();
    for _ = 1 to 5 do
      Fabric.send fabric a ~dst:(Addr.Node 1) ~bytes:10 ()
    done;
    Engine.run e;
    p.got
  in
  check "delay-only faults draw no randomness" true (run 1 = run 2)

let suite =
  [
    Alcotest.test_case "addr equality and hashing" `Quick test_addr_equal_hash;
    Alcotest.test_case "addr printing" `Quick test_addr_to_string;
    Alcotest.test_case "wire framing" `Quick test_wire_framing;
    Alcotest.test_case "wire serialization" `Quick test_wire_serialization;
    Alcotest.test_case "wire 6kB ~200kRPS bound" `Quick test_wire_6kb_rate_bound;
    Alcotest.test_case "cpu serializes FIFO" `Quick test_cpu_serializes;
    Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
    Alcotest.test_case "cpu halt" `Quick test_cpu_halt;
    Alcotest.test_case "cpu backlog" `Quick test_cpu_backlog;
    Alcotest.test_case "fabric unicast latency" `Quick test_fabric_unicast_latency;
    Alcotest.test_case "fabric multicast excludes sender" `Quick
      test_fabric_multicast_excludes_sender;
    Alcotest.test_case "fabric tx serialization queues" `Quick
      test_fabric_tx_serialization_queues;
    Alcotest.test_case "fabric unknown destination" `Quick
      test_fabric_unknown_dst_dropped;
    Alcotest.test_case "fabric down port" `Quick test_fabric_down_port;
    Alcotest.test_case "fabric leave group" `Quick test_fabric_leave_group;
    Alcotest.test_case "fabric byte counters" `Quick test_fabric_byte_counters;
    Alcotest.test_case "fabric link drop fault" `Quick test_fabric_link_drop;
    Alcotest.test_case "fabric link delay fault" `Quick
      test_fabric_link_delay_directional;
    Alcotest.test_case "fabric partition and heal" `Quick
      test_fabric_partition_heal;
    Alcotest.test_case "fabric fault-free determinism" `Quick
      test_fabric_fault_free_untouched;
  ]
