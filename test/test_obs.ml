(* Tests for the observability layer (metrics, trace, JSON) and the
   regressions it was built to expose: recovery wedges under loss, the
   gated-announce stall, loadgen tail bias, and the election-timeout
   draw. *)

open Hovercraft_sim
open Hovercraft_obs
open Hovercraft_core
open Hovercraft_cluster
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module R2p2 = Hovercraft_r2p2.R2p2
module Op = Hovercraft_apps.Op
module Service = Hovercraft_apps.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- metrics ------------------------------------------------------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "hits" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  check_int "counter accumulates" 5 (Metrics.value c);
  check_int "resolvable by name" 5 (Metrics.counter_value m "hits");
  check_int "unknown name is 0" 0 (Metrics.counter_value m "nope");
  (* Get-or-create returns the same cell. *)
  Metrics.incr (Metrics.counter m "hits");
  check_int "same cell" 6 (Metrics.value c);
  let g = Metrics.gauge m "depth" in
  Metrics.set g 42;
  check_int "gauge set" 42 (Metrics.gauge_value g);
  (* Kind mismatch is a programming error, not a silent shadow. *)
  check "kind mismatch raises" true
    (try
       ignore (Metrics.gauge m "hits");
       false
     with Invalid_argument _ -> true)

let test_histogram_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for v = 1 to 10_000 do
    Metrics.observe h v
  done;
  check_int "count" 10_000 (Metrics.hist_count h);
  check_int "max exact" 10_000 (Metrics.hist_max h);
  let within pct expected actual =
    let e = float_of_int expected and a = float_of_int actual in
    Float.abs (a -. e) /. e <= pct
  in
  (* Log-linear with 16 sub-buckets per octave: <= ~6.25% relative
     quantile error, plus the half-open bucket rounding. *)
  check "p50 within 7%" true (within 0.07 5_000 (Metrics.hist_percentile h 0.5));
  check "p90 within 7%" true (within 0.07 9_000 (Metrics.hist_percentile h 0.9));
  check "p99 within 7%" true (within 0.07 9_900 (Metrics.hist_percentile h 0.99));
  check "mean exact" true (Float.abs (Metrics.hist_mean h -. 5000.5) < 0.001);
  (* Small exact values land in their own unit buckets. *)
  let m2 = Metrics.create () in
  let h2 = Metrics.histogram m2 "small" in
  List.iter (Metrics.observe h2) [ 3; 3; 3; 9 ];
  check_int "small p50 exact" 3 (Metrics.hist_percentile h2 0.5);
  check_int "small p99 exact" 9 (Metrics.hist_percentile h2 0.99);
  (* Negative observations clamp to zero rather than crashing. *)
  Metrics.observe h2 (-5);
  check_int "negative clamps" 0 (Metrics.hist_percentile h2 0.01);
  Metrics.clear m2;
  check_int "clear resets" 0 (Metrics.hist_count h2)

(* Rotation edge cases for the sliding-window histogram: what each view
   sees before the first rotation, across back-to-back rotations (empty
   windows included), and that nothing older than two windows ever leaks
   into a reported tail. *)
let test_windowed_rotation () =
  let m = Metrics.create () in
  let w = Metrics.windowed m "lat" in
  (* Before any rotation: no completed window, but the merged view must
     already see the in-progress samples. *)
  List.iter (Metrics.wobserve w) [ 100; 200; 300 ];
  check_int "no rotation yet" 0 (Metrics.rotations w);
  check_int "last empty before rotate" 0 (Metrics.last_count w);
  check_int "last p99 empty before rotate" 0 (Metrics.last_percentile w 0.99);
  check_int "merged sees current" 3 (Metrics.window_count w);
  check_int "merged max" 300 (Metrics.window_max w);
  (* First rotation retires those samples into the readable window. *)
  Metrics.rotate w;
  check_int "one rotation" 1 (Metrics.rotations w);
  check_int "last sees retired window" 3 (Metrics.last_count w);
  check_int "last max exact" 300 (Metrics.last_max w);
  check_int "merged unchanged across rotate" 3 (Metrics.window_count w);
  (* A hot current window: merged = both, last = previous only. *)
  List.iter (Metrics.wobserve w) [ 5_000; 7_000 ];
  check_int "last still previous only" 3 (Metrics.last_count w);
  check_int "merged both windows" 5 (Metrics.window_count w);
  check_int "merged max spans current" 7_000 (Metrics.window_max w);
  (* Second rotation: the 100/200/300 samples fall off the edge — tails
     must reflect the recent spike, not the whole run. *)
  Metrics.rotate w;
  check_int "last is the spike" 2 (Metrics.last_count w);
  check "old samples vanished" true (Metrics.last_percentile w 0.01 >= 5_000);
  check_int "merged dropped the old window" 2 (Metrics.window_count w);
  (* Rotating an idle stream yields an honestly-empty window, not a
     stale echo of the spike. *)
  Metrics.rotate w;
  check_int "empty window reads 0" 0 (Metrics.last_count w);
  check_int "empty p99 is 0" 0 (Metrics.last_percentile w 0.99);
  check_int "merged now empty" 0 (Metrics.window_count w);
  check_int "rotations keep counting" 3 (Metrics.rotations w);
  (* Negative samples clamp like the cumulative histogram's. *)
  Metrics.wobserve w (-3);
  Metrics.rotate w;
  check_int "negative clamps to 0" 0 (Metrics.last_max w);
  check_int "clamped sample counted" 1 (Metrics.last_count w);
  (* The registry snapshot carries a "windows" section, and clear drops
     both windows and the rotation count. *)
  (match Json.member "windows" (Metrics.snapshot m) with
  | Some (Json.Obj [ ("lat", _) ]) -> ()
  | _ -> Alcotest.fail "snapshot windows section malformed");
  Metrics.clear m;
  check_int "clear zeroes rotations" 0 (Metrics.rotations w);
  check_int "clear empties windows" 0 (Metrics.window_count w)

(* --- json ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("name", Json.String "node\"0\"\n");
        ("count", Json.Int (-42));
        ("ratio", Json.Float 0.125);
        ("ok", Json.Bool true);
        ("missing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Int 2; Json.Obj [] ]);
      ]
  in
  (match Json.of_string (Json.to_string doc) with
  | Ok parsed -> check "compact round-trip" true (Json.equal doc parsed)
  | Error e -> Alcotest.fail ("parse failed: " ^ e));
  (match Json.of_string (Json.to_string_pretty doc) with
  | Ok parsed -> check "pretty round-trip" true (Json.equal doc parsed)
  | Error e -> Alcotest.fail ("pretty parse failed: " ^ e));
  (* A full metrics snapshot survives the round trip too. *)
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m "a");
  Metrics.set (Metrics.gauge m "g") 7;
  Metrics.observe (Metrics.histogram m "h") 123;
  (match Json.of_string (Json.to_string (Metrics.snapshot m)) with
  | Ok parsed ->
      check "snapshot round-trip" true (Json.equal (Metrics.snapshot m) parsed);
      (match Json.member "counters" parsed with
      | Some (Json.Obj [ ("a", Json.Int 1) ]) -> ()
      | _ -> Alcotest.fail "counters member malformed")
  | Error e -> Alcotest.fail ("snapshot parse failed: " ^ e));
  check "garbage rejected" true
    (match Json.of_string "[1, 2" with Error _ -> true | Ok _ -> false);
  check "trailing junk rejected" true
    (match Json.of_string "{} x" with Error _ -> true | Ok _ -> false)

(* --- trace --------------------------------------------------------- *)

let test_trace_ring_wraparound () =
  let t = Trace.create ~capacity:8 ~level:Trace.Info () in
  for i = 1 to 20 do
    Trace.record t ~at:i ~node:0 Trace.Info ~kind:"tick"
      ~detail:(string_of_int i)
  done;
  check_int "all accepted" 20 (Trace.recorded t);
  let evs = Trace.events t in
  check_int "ring keeps capacity" 8 (List.length evs);
  check_string "oldest retained is 13" "13" (List.hd evs).Trace.detail;
  check_string "newest retained is 20" "20"
    (List.nth evs 7).Trace.detail;
  check "timestamps ascend" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.Trace.at <= b.Trace.at && mono rest
       | _ -> true
     in
     mono evs);
  match Json.member "dropped" (Trace.snapshot t) with
  | Some (Json.Int 12) -> ()
  | _ -> Alcotest.fail "snapshot dropped count wrong"

let test_trace_severity_filtering () =
  let t = Trace.create ~capacity:16 ~level:Trace.Info () in
  check "debug filtered by default" false (Trace.enabled t ~node:0 Trace.Debug);
  Trace.record t ~at:1 ~node:0 Trace.Debug ~kind:"noise" ~detail:"";
  check_int "debug dropped" 0 (Trace.recorded t);
  Trace.record t ~at:2 ~node:0 Trace.Warn ~kind:"signal" ~detail:"";
  check_int "warn recorded" 1 (Trace.recorded t);
  (* Per-node override: node 1 under the microscope, the rest quiet. *)
  Trace.set_node_level t ~node:1 Trace.Debug;
  check "override enables debug" true (Trace.enabled t ~node:1 Trace.Debug);
  check "others still filtered" false (Trace.enabled t ~node:0 Trace.Debug);
  Trace.record t ~at:3 ~node:1 Trace.Debug ~kind:"detail" ~detail:"";
  check_int "override recorded" 2 (Trace.recorded t);
  Trace.clear_node_level t ~node:1;
  check "override cleared" false (Trace.enabled t ~node:1 Trace.Debug);
  Trace.set_level t Trace.Error;
  Trace.record t ~at:4 ~node:0 Trace.Warn ~kind:"now-quiet" ~detail:"";
  check_int "raised level filters warn" 2 (Trace.recorded t)

(* --- election timeout draw ----------------------------------------- *)

let test_election_draw_inclusive () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine () in
  (* Degenerate interval: min = max must mean a constant draw, not an
     out-of-range Rng.int. *)
  let p =
    let b = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    {
      b with
      Hnode.timing =
        {
          b.Hnode.timing with
          Hnode.election_min = Timebase.ms 3;
          election_max = Timebase.ms 3;
        };
    }
  in
  let node = Hnode.create engine fabric p ~id:0 in
  for _ = 1 to 50 do
    check_int "constant draw" (Timebase.ms 3) (Hnode.redraw_election_timeout node)
  done;
  (* Non-degenerate: both endpoints must be reachable. *)
  let engine2 = Engine.create () in
  let fabric2 = Fabric.create engine2 () in
  let p2 =
    let b = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    {
      b with
      Hnode.timing =
        {
          b.Hnode.timing with
          Hnode.election_min = 10;
          election_max = 13;
          lease_window = 5;
        };
    }
  in
  let node2 = Hnode.create engine2 fabric2 p2 ~id:0 in
  let seen = Array.make 4 false in
  for _ = 1 to 500 do
    let d = Hnode.redraw_election_timeout node2 in
    check "draw in [min,max]" true (d >= 10 && d <= 13);
    seen.(d - 10) <- true
  done;
  Array.iteri
    (fun i hit -> check (Printf.sprintf "value %d drawn" (10 + i)) true hit)
    seen;
  (* Inverted interval is rejected up front instead of crashing later. *)
  check "min > max rejected" true
    (try
       let p3 =
         let b = Hnode.params ~mode:Hnode.Hover ~n:3 () in
         {
           b with
           Hnode.timing =
             {
               b.Hnode.timing with
               Hnode.election_min = Timebase.ms 4;
               election_max = Timebase.ms 2;
             };
         }
       in
       ignore (Hnode.create (Engine.create ()) fabric p3 ~id:0);
       false
     with Invalid_argument _ -> true)

(* --- recovery wedge regression ------------------------------------- *)

(* A lossy multicast fabric with a tiny unicast retry budget: before the
   escalation fix, recoveries that burned their retries left the rid in
   pending_recovery forever and the apply loop wedged silently. Now the
   node falls back to a cluster-group broadcast and must converge. *)
let test_lossy_no_wedge () =
  let params =
    let b = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    {
      b with
      Hnode.seed = 11;
      features =
        {
          b.Hnode.features with
          Hnode.loss_prob = 0.2;
          recovery_retry_max = 1;
        };
    }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:30_000.
      ~workload:(Service.sample (Service.spec ()))
      ~retry:(Timebase.ms 2, 10) ~seed:11 ()
  in
  let report =
    Loadgen.run gen ~warmup:(Timebase.ms 2) ~duration:(Timebase.ms 20)
      ~drain:(Timebase.ms 40) ()
  in
  Deploy.quiesce deploy ~extra:(Timebase.ms 40) ();
  check "made progress" true (report.Loadgen.completed > 0);
  check_int "no in-window request lost" 0 report.Loadgen.lost;
  check_int "no recovery left pending" 0 (Deploy.total_pending_recoveries deploy);
  check "replicas consistent" true (Deploy.consistent deploy);
  Array.iter
    (fun node ->
      check
        (Printf.sprintf "node%d apply loop caught up" (Hnode.id node))
        true
        (Hnode.applied_index node = Hnode.commit_index node))
    deploy.Deploy.nodes;
  let escalations =
    Array.fold_left
      (fun acc n -> acc + Hnode.recovery_escalations n)
      0 deploy.Deploy.nodes
  in
  check "escalation path exercised" true (escalations > 0);
  (* The snapshot carries the proof: per-node recovery counters and a
     populated recovery-latency histogram. *)
  let resolved =
    Array.fold_left
      (fun acc n ->
        acc + Metrics.counter_value (Hnode.metrics n) "recoveries_resolved")
      0 deploy.Deploy.nodes
  in
  check "recoveries resolved" true (resolved > 0);
  match Json.of_string (Json.to_string (Deploy.snapshot deploy)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("cluster snapshot not valid JSON: " ^ e)

(* --- gated-announce stall regression ------------------------------- *)

(* Saturate a cluster whose replier queues are tiny (bound = 2): the
   announce gate must veto repeatedly, and each drain must re-kick
   replication immediately. Before the fix the pipeline sat idle until
   the next 500 µs heartbeat after every veto; with it the leader
   records gate_rekicks and still drains everything. *)
let test_gated_announce_rekicks () =
  let params =
    let b = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    {
      b with
      Hnode.seed = 5;
      features = { b.Hnode.features with Hnode.bound = 2 };
    }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:150_000.
      ~workload:
        (Service.sample
           (Service.spec ~service:(Dist.Fixed (Timebase.us 5)) ()))
      ~seed:5 ()
  in
  let report =
    Loadgen.run gen ~warmup:(Timebase.ms 2) ~duration:(Timebase.ms 20) ()
  in
  Deploy.quiesce deploy ();
  let leader =
    match Deploy.leader deploy with
    | Some n -> n
    | None -> Alcotest.fail "no leader"
  in
  let v name = Metrics.counter_value (Hnode.metrics leader) name in
  check "gate vetoed under saturation" true (v "gate_blocked" > 0);
  check "every stall was re-kicked" true (v "gate_rekicks" > 0);
  check "work still drained" true (report.Loadgen.completed > 0);
  check "replicas consistent" true (Deploy.consistent deploy);
  Array.iter
    (fun node ->
      check
        (Printf.sprintf "node%d caught up" (Hnode.id node))
        true
        (Hnode.applied_index node = Hnode.commit_index node))
    deploy.Deploy.nodes

(* --- loadgen tail bias regression ---------------------------------- *)

(* A server that answers every request after a fixed 5 ms think time:
   requests sent near the end of the window complete after measure_to.
   They were sent in-window, so they must count — the old arrival-gated
   condition dropped exactly these slowest replies and under-reported the
   tail. *)
let test_loadgen_counts_late_replies () =
  let delay = Timebase.ms 5 in
  let params = Hnode.params ~mode:Hnode.Unreplicated ~n:1 () in
  let deploy = Deploy.create (Deploy.config params) in
  let engine = deploy.Deploy.engine in
  let server = Addr.Client 99 in
  let port = ref None in
  let handler (pkt : Protocol.payload Fabric.packet) =
    match pkt.Fabric.payload with
    | Protocol.Request { rid; _ } ->
        Engine.after engine delay (fun () ->
            match !port with
            | Some p ->
                Fabric.send deploy.Deploy.fabric p ~dst:rid.R2p2.src_addr
                  ~bytes:16
                  (Protocol.Response { rid })
            | None -> ())
    | _ -> ()
  in
  port :=
    Some
      (Fabric.attach deploy.Deploy.fabric ~addr:server ~rate_gbps:10.
         ~handler);
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:5_000.
      ~workload:(Service.sample (Service.spec ()))
      ~target:server ~seed:3 ()
  in
  let report =
    Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 10)
      ~drain:(Timebase.ms 20) ()
  in
  check "sent something" true (report.Loadgen.sent > 10);
  check_int "every in-window send completed" report.Loadgen.sent
    report.Loadgen.completed;
  check_int "nothing reported lost" 0 report.Loadgen.lost;
  (* All latencies reflect the server delay, p50 included. *)
  check "latency reflects think time" true
    (report.Loadgen.p50_us >= Timebase.to_us_f delay)

let suite =
  [
    Alcotest.test_case "metrics counters and gauges" `Quick test_metrics_counters;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "windowed rotation" `Quick test_windowed_rotation;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_ring_wraparound;
    Alcotest.test_case "trace severity filtering" `Quick
      test_trace_severity_filtering;
    Alcotest.test_case "election draw inclusive" `Quick
      test_election_draw_inclusive;
    Alcotest.test_case "lossy fabric never wedges" `Quick test_lossy_no_wedge;
    Alcotest.test_case "gated announce re-kicks" `Quick
      test_gated_announce_rekicks;
    Alcotest.test_case "late replies are counted" `Quick
      test_loadgen_counts_late_replies;
  ]
