(* Tests for crash-recovery (Hnode.restart) and the chaos subsystem. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Service = Hovercraft_apps.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let workload = Service.sample (Service.spec ~read_fraction:0.5 ())

(* A killed follower restarted mid-run catches all the way up to the
   cluster's commit point and converges to the same application state. *)
let test_restart_catches_up () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    {
      p with
      Hnode.timing = { p.Hnode.timing with Hnode.gc_ordered = Timebase.s 2 };
      features = { p.Hnode.features with Hnode.log_retain = max_int / 2 };
    }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let engine = deploy.Deploy.engine in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:40_000. ~workload ~seed:11 ()
  in
  Engine.after engine (Timebase.ms 50) (fun () -> Deploy.kill_node deploy 2);
  Engine.after engine (Timebase.ms 150) (fun () -> Deploy.restart_node deploy 2);
  let _ = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 300) () in
  Deploy.quiesce deploy ~extra:(Timebase.ms 200) ();
  let n2 = deploy.Deploy.nodes.(2) in
  check "restarted node alive" true (Hnode.alive n2);
  let max_commit =
    List.fold_left
      (fun acc n -> max acc (Hnode.commit_index n))
      0 (Deploy.live_nodes deploy)
  in
  check "caught up to cluster commit" true (Hnode.applied_index n2 >= max_commit);
  check "replicas consistent" true (Deploy.consistent deploy);
  check_int "no stuck recoveries" 0 (Deploy.total_pending_recoveries deploy)

let test_restart_requires_dead () =
  let deploy = Deploy.create (Deploy.config (Hnode.params ~mode:Hnode.Hover ~n:3 ())) in
  check "restarting a live node rejected" true
    (try
       Deploy.restart_node deploy 1;
       false
     with Invalid_argument _ -> true)

(* The PR's acceptance scenario: N=5 HovercRaft++, kill the leader, restart
   it, then kill the new leader — the cluster must end consistent with the
   restarted node fully caught up and zero checker violations. *)
let test_kill_restart_kill_new_leader () =
  let outcome =
    Chaos.run ~n:5 ~rate_rps:40_000. ~flow_cap:500 ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 700)
      ~schedule:
        [
          (* Node 0 bootstraps as leader, so the first kill is by id. *)
          { Chaos.at = Timebase.ms 100; event = Chaos.Kill 0 };
          { Chaos.at = Timebase.ms 300; event = Chaos.Restart 0 };
          { Chaos.at = Timebase.ms 450; event = Chaos.Kill_leader };
        ]
      ~workload ~seed:21 ()
  in
  check_int "three scheduled events applied (plus epilogue)" 4
    (List.length outcome.Chaos.events);
  Alcotest.(check (list string)) "no checker violations" []
    outcome.Chaos.violations;
  check "consistent" true outcome.Chaos.consistent;
  check "caught up" true outcome.Chaos.caught_up;
  check "exactly once" true outcome.Chaos.exactly_once_ok;
  check "committed preserved" true outcome.Chaos.committed_preserved;
  check "progress was made" true (outcome.Chaos.report.Loadgen.completed > 0)

(* A minority partition severs the leader from nothing it needs; healing
   must lose no committed reply and leave everyone converged. *)
let test_partition_then_heal () =
  let outcome =
    Chaos.run ~n:5 ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 600)
      ~schedule:
        [
          {
            Chaos.at = Timebase.ms 150;
            event = Chaos.Partition [ [ 0; 1; 2 ]; [ 3; 4 ] ];
          };
          { Chaos.at = Timebase.ms 350; event = Chaos.Heal };
        ]
      ~workload ~seed:31 ()
  in
  Alcotest.(check (list string)) "no checker violations" []
    outcome.Chaos.violations;
  check "committed replies survived the partition" true
    outcome.Chaos.committed_preserved;
  check "consistent after heal" true outcome.Chaos.consistent;
  check "caught up after heal" true outcome.Chaos.caught_up

(* Equal seeds must replay the same schedule against the same load. *)
let test_chaos_deterministic () =
  let run () =
    let o =
      Chaos.run ~n:5 ~rate_rps:30_000. ~duration:(Timebase.ms 500) ~workload
        ~seed:42 ()
    in
    (o.Chaos.events, o.Chaos.series, o.Chaos.report.Loadgen.completed)
  in
  check "same seed, identical outcome" true (run () = run ())

let test_random_schedule_keeps_quorum () =
  (* On the generator's own model: never more than a minority dead, and
     everything it killed by id is restarted by the end. *)
  List.iter
    (fun seed ->
      let steps =
        Chaos.random_schedule ~events:8 ~n:5 ~duration:(Timebase.s 2) ~seed ()
      in
      let dead = Hashtbl.create 8 in
      let anon = ref 0 in
      List.iter
        (fun { Chaos.event; _ } ->
          (match event with
          | Chaos.Kill i -> Hashtbl.replace dead i ()
          | Chaos.Kill_leader -> incr anon
          | Chaos.Restart i -> Hashtbl.remove dead i
          | Chaos.Partition _ | Chaos.Heal | Chaos.Add_node
          | Chaos.Remove_node _ | Chaos.Transfer _ | Chaos.Shard _ ->
              ());
          check "minority dead" true (Hashtbl.length dead + !anon <= 2))
        steps;
      check_int "id-kills all restarted" 0 (Hashtbl.length dead))
    [ 1; 2; 3; 4; 5 ]

let suite =
  [
    Alcotest.test_case "restart catches up" `Slow test_restart_catches_up;
    Alcotest.test_case "restart requires dead node" `Quick
      test_restart_requires_dead;
    Alcotest.test_case "kill, restart, kill new leader" `Slow
      test_kill_restart_kill_new_leader;
    Alcotest.test_case "partition then heal" `Slow test_partition_then_heal;
    Alcotest.test_case "chaos determinism" `Slow test_chaos_deterministic;
    Alcotest.test_case "random schedule keeps quorum" `Quick
      test_random_schedule_keeps_quorum;
  ]
