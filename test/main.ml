let () =
  Alcotest.run "hovercraft"
    [
      ("sim", Test_sim.suite);
      ("net", Test_net.suite);
      ("r2p2", Test_r2p2.suite);
      ("raft", Test_raft.suite);
      ("apps", Test_apps.suite);
      ("obs", Test_obs.suite);
      ("core", Test_core.suite);
      ("cluster", Test_cluster.suite);
      ("chaos", Test_chaos.suite);
      ("snapshot", Test_snapshot.suite);
      ("apply", Test_apply.suite);
      ("pipeline", Test_pipeline.suite);
      ("reconfig", Test_reconfig.suite);
      ("shard", Test_shard.suite);
      ("control", Test_control.suite);
      ("invariants", Test_invariants.suite);
      ("mc", Test_mc.suite);
      ("backend", Test_backend.suite);
    ]
