(* Tests for the compartmentalized net path (features.net_stages): knob
   validation, determinism of replica state across stage counts (alone
   and crossed with apply_threads), chaos replay and snapshot installs
   under the pipelined net, the per-stage census — and the two hot-path
   regressions this PR fixes: local executions pinned to app CPU 0, and
   the per-packet rx-counter name allocation. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore
module Metrics = Hovercraft_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params ?(mode = Hnode.Hover) ?(apply_threads = 1) ?(net_stages = 1) ~seed
    () =
  let p = Hnode.params ~mode ~n:3 () in
  {
    p with
    Hnode.seed;
    features = { p.Hnode.features with Hnode.apply_threads; net_stages };
  }

(* Mixed kv load over a small key population (same mix the apply tests
   use): reads, writes, genuine key conflicts. *)
let kv_workload rng =
  let k = Printf.sprintf "user%06d" (Rng.int rng 500) in
  if Rng.bool rng 0.3 then Op.Kv (Kvstore.Get k)
  else Op.Kv (Kvstore.Put (k, "v"))

(* ------------------------------------------------------------------ *)
(* Knob validation                                                     *)

let test_net_stages_validation () =
  let raises p =
    try
      Hnode.validate_params p;
      false
    with Invalid_argument _ -> true
  in
  let with_stages s =
    let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.net_stages = s } }
  in
  check "stages=0 rejected" true (raises (with_stages 0));
  check "stages=5 rejected" true (raises (with_stages 5));
  for s = 1 to 4 do
    check (Printf.sprintf "stages=%d accepted" s) true
      (not (raises (with_stages s)))
  done;
  let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
  check "negative handoff rejected" true
    (raises { p with Hnode.cost = { p.Hnode.cost with Hnode.stage_handoff_ns = -1 } })

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)

let fingerprints ~net_stages ~apply_threads ~seed =
  let p = params ~apply_threads ~net_stages ~seed () in
  let deploy = Deploy.create (Deploy.config p) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:80_000. ~workload:kv_workload
      ~seed ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 300) ());
  Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
  ( Array.map Hnode.app_fingerprint deploy.Deploy.nodes,
    Array.map Hnode.executed_ops deploy.Deploy.nodes )

let all_equal a = Array.for_all (fun x -> x = a.(0)) a

(* The compartmentalization contract: stage counts move simulated cycles
   between CPUs but never change handler logic or message order, so (a)
   replicas of a pipelined deployment end byte-identical, (b) a pipelined
   run replays itself exactly, and (c) the final state is independent of
   the stage count — the same arrivals converge to the same store no
   matter how the net path is cut. *)
let test_determinism_across_stages () =
  let fp1, _ = fingerprints ~net_stages:1 ~apply_threads:1 ~seed:31 in
  let fp4, ex4 = fingerprints ~net_stages:4 ~apply_threads:1 ~seed:31 in
  let fp4', ex4' = fingerprints ~net_stages:4 ~apply_threads:1 ~seed:31 in
  check "pipelined replicas agree" true (all_equal fp4);
  check "pipelined replays byte-identically" true (fp4 = fp4' && ex4 = ex4');
  check "serial replicas agree" true (all_equal fp1);
  check "state independent of stage count" true (fp1.(0) = fp4.(0))

(* Crossed with parallel apply: every (net_stages, apply_threads) cell
   must land on the same final state. *)
let test_determinism_stages_by_threads () =
  let base, _ = fingerprints ~net_stages:1 ~apply_threads:1 ~seed:37 in
  List.iter
    (fun (stages, k) ->
      let fp, _ = fingerprints ~net_stages:stages ~apply_threads:k ~seed:37 in
      check
        (Printf.sprintf "stages=%d K=%d replicas agree" stages k)
        true (all_equal fp);
      check
        (Printf.sprintf "stages=%d K=%d matches serial state" stages k)
        true
        (fp.(0) = base.(0)))
    [ (2, 1); (4, 4); (3, 2) ]

(* ------------------------------------------------------------------ *)
(* Stage census                                                        *)

(* Under real load at stages=4 the leader's ingress, sequencer and fanout
   CPUs all accrue busy time (the pipeline actually runs as a pipeline),
   and the roles report through the accessor in pipeline order. *)
let test_stage_census () =
  let p = params ~mode:Hnode.Hover_pp ~net_stages:4 ~seed:41 () in
  let deploy = Deploy.create (Deploy.config p) in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps:100_000. ~workload:kv_workload
      ~seed:41 ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) ());
  Deploy.quiesce deploy ();
  let leader = Option.get (Deploy.leader deploy) in
  check_int "stage count accessor" 4 (Hnode.net_stages leader);
  let busy = Hnode.stage_busy_times leader in
  Alcotest.(check (list string))
    "roles in pipeline order"
    [ "ingress"; "sequencer"; "fanout"; "replier" ]
    (List.map fst busy);
  List.iter
    (fun role ->
      check
        (Printf.sprintf "leader %s stage busy" role)
        true
        (List.assoc role busy > 0))
    [ "ingress"; "sequencer"; "fanout" ];
  (* The monolithic path carries no stage instrumentation at all. *)
  let p1 = params ~mode:Hnode.Hover_pp ~net_stages:1 ~seed:41 () in
  let d1 = Deploy.create (Deploy.config p1) in
  Array.iter
    (fun n -> check_int "no stalls at stages=1" 0 (Hnode.stage_stalls n))
    d1.Deploy.nodes

(* ------------------------------------------------------------------ *)
(* Regression: local executions must not pin to app CPU 0              *)

(* 100% keyed lease reads at K=4: every read executes locally on the
   leader, and before the fix they all serialized onto apps.(0). Now
   they follow the footprint hash, so several app CPUs accrue busy time
   while the log stays empty (lease reads are never ordered). *)
let test_lease_reads_spread () =
  let p = params ~apply_threads:4 ~seed:53 () in
  let p =
    {
      p with
      Hnode.features =
        { p.Hnode.features with Hnode.read_mode = Hnode.Leader_leases };
    }
  in
  let deploy = Deploy.create (Deploy.config p) in
  let workload rng =
    Op.Kv (Kvstore.Get (Printf.sprintf "user%06d" (Rng.int rng 500)))
  in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:60_000. ~workload ~seed:53 ()
  in
  let r = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) () in
  Deploy.quiesce deploy ();
  check "reads served" true (r.Loadgen.completed > 2_000);
  let leader = Option.get (Deploy.leader deploy) in
  check "reads bypassed the log" true (Hnode.log_length leader < 16);
  let active =
    Array.fold_left
      (fun acc b -> if b > 0 then acc + 1 else acc)
      0
      (Hnode.apply_busy_times leader)
  in
  if active < 2 then
    Alcotest.failf "lease reads pinned to one app CPU (%d of 4 active)" active

(* ------------------------------------------------------------------ *)
(* Regression: rx accounting must not allocate per packet              *)

let test_rx_counter_interning () =
  (* The interned table agrees with the human-facing view, densely. *)
  let rid = { Hovercraft_r2p2.R2p2.id = 1; src_addr = Hovercraft_net.Addr.Client 0; src_port = 0 } in
  let payloads =
    [
      Protocol.Request { rid; policy = Hovercraft_r2p2.R2p2.Replicated_req; op = Op.Nop };
      Protocol.Response { rid };
      Protocol.Feedback { rid };
      Protocol.Nack { rid };
      Protocol.Recovery_request { rid; asker = 0 };
      Protocol.Probe { term = 1; leader = 0 };
      Protocol.Agg_commit { term = 1; commit = 0; applied = [||] };
      Protocol.Reconfig { term = 1; members = [| 0 |] };
    ]
  in
  List.iter
    (fun p ->
      check "tag_name agrees with describe" true
        (Protocol.tag_name (Protocol.tag_index p) == Protocol.describe p))
    payloads;
  check "indices in range" true
    (List.for_all
       (fun p ->
         let i = Protocol.tag_index p in
         i >= 0 && i < Protocol.tag_count)
       payloads);
  (* Allocation assertion: the pre-interned path allocates (almost)
     nothing per packet, while the old name-building path allocates a
     string + probes the registry every time. Measured via minor-heap
     words so a regression reintroducing the allocation fails loudly. *)
  let m = Metrics.create () in
  let interned =
    Array.init Protocol.tag_count (fun i ->
        Metrics.counter m ("rx." ^ Protocol.tag_name i))
  in
  let payload = Protocol.Response { rid } in
  let iters = 10_000 in
  let words_of f =
    let before = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    Gc.minor_words () -. before
  in
  let interned_words =
    words_of (fun () ->
        Metrics.incr interned.(Protocol.tag_index payload))
  in
  let legacy_words =
    words_of (fun () ->
        Metrics.incr (Metrics.counter m ("rx." ^ Protocol.describe payload)))
  in
  if interned_words > float_of_int iters then
    Alcotest.failf "interned rx path allocates: %.0f minor words / %d packets"
      interned_words iters;
  check "legacy path allocates (the test discriminates)" true
    (legacy_words > float_of_int iters)

(* ------------------------------------------------------------------ *)
(* Regression: reply tx charged once, to the right CPU                 *)

(* Same arrivals on both net paths: the app threads do identical
   execution work, but the staged run bills reply tx to the replier
   stage instead of the app CPU — so its app busy time must drop, and
   the replier stage must accrue some. If the cost were double-charged
   the app totals would match instead. *)
let test_reply_tx_ownership () =
  let run stages =
    let p = params ~mode:Hnode.Hover_pp ~net_stages:stages ~seed:59 () in
    let deploy = Deploy.create (Deploy.config p) in
    let gen =
      Loadgen.create deploy ~clients:8 ~rate_rps:80_000. ~workload:kv_workload
        ~seed:59 ()
    in
    ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) ());
    Deploy.quiesce deploy ();
    let app =
      Array.fold_left (fun acc n -> acc + Hnode.app_busy_time n) 0
        deploy.Deploy.nodes
    in
    let replier =
      Array.fold_left
        (fun acc n -> acc + List.assoc "replier" (Hnode.stage_busy_times n))
        0 deploy.Deploy.nodes
    in
    (app, replier)
  in
  let app_serial, _ = run 1 in
  let app_staged, replier_staged = run 4 in
  check "replier stage carries the replies" true (replier_staged > 0);
  if app_staged >= app_serial then
    Alcotest.failf
      "reply tx still on the app CPUs under the pipelined net (%d >= %d)"
      app_staged app_serial

(* ------------------------------------------------------------------ *)
(* Chaos and snapshots under the pipelined net                         *)

let chaos_outcome ~seed =
  let p = Hnode.params ~mode:Hnode.Hover_pp ~n:5 () in
  let p =
    {
      p with
      Hnode.features =
        {
          p.Hnode.features with
          Hnode.bound = 32;
          apply_threads = 4;
          net_stages = 4;
        };
    }
  in
  Chaos.run ~params:p ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
    ~duration:(Timebase.ms 700) ~workload:kv_workload ~seed ()

(* Kill/restart/partition churn with the pipelined net (and K=4): the
   checker must find nothing, and an identical seed must replay the
   identical run — fault schedules interleave with a four-CPU rx path
   deterministically. *)
let test_chaos_replay_pipelined () =
  let o1 = chaos_outcome ~seed:61 in
  let o2 = chaos_outcome ~seed:61 in
  Alcotest.(check (list string)) "no checker violations" [] o1.Chaos.violations;
  check "exactly once" true o1.Chaos.exactly_once_ok;
  check "committed preserved" true o1.Chaos.committed_preserved;
  check "caught up" true o1.Chaos.caught_up;
  check "consistent" true o1.Chaos.consistent;
  check "replay: same events" true (o1.Chaos.events = o2.Chaos.events);
  check_int "replay: same completions" o1.Chaos.report.Loadgen.completed
    o2.Chaos.report.Loadgen.completed;
  check_int "replay: same retries" o1.Chaos.retried o2.Chaos.retried

(* Snapshots under the pipelined net: checkpoints cut (and compaction
   moves) while the rx path spans four CPUs, and crash/restart catch-up
   still converges under the snapshot-aware checker. *)
let test_snapshot_pipelined () =
  let p = Hnode.params ~mode:Hnode.Hover_pp ~n:5 () in
  let p =
    {
      p with
      Hnode.features =
        { p.Hnode.features with Hnode.bound = 32; net_stages = 4 };
    }
  in
  let o =
    Chaos.run ~params:p ~rate_rps:40_000. ~bucket:(Timebase.ms 100)
      ~duration:(Timebase.ms 700) ~snapshots:400 ~workload:kv_workload ~seed:67
      ()
  in
  Alcotest.(check (list string)) "no checker violations" [] o.Chaos.violations;
  check "exactly once" true o.Chaos.exactly_once_ok;
  check "consistent" true o.Chaos.consistent;
  check "compaction ran" true (o.Chaos.max_log_base > 0)

let suite =
  [
    Alcotest.test_case "net_stages validation" `Quick test_net_stages_validation;
    Alcotest.test_case "determinism across stage counts" `Slow
      test_determinism_across_stages;
    Alcotest.test_case "determinism stages x threads" `Slow
      test_determinism_stages_by_threads;
    Alcotest.test_case "stage census" `Quick test_stage_census;
    Alcotest.test_case "lease reads spread across app CPUs" `Quick
      test_lease_reads_spread;
    Alcotest.test_case "rx counters pre-interned" `Quick
      test_rx_counter_interning;
    Alcotest.test_case "reply tx ownership" `Quick test_reply_tx_ownership;
    Alcotest.test_case "chaos replay at net_stages=4" `Slow
      test_chaos_replay_pipelined;
    Alcotest.test_case "snapshot install under pipelined net" `Slow
      test_snapshot_pipelined;
  ]
