(* Tests for the application layer: the Redis-like store, YCSB workloads,
   Zipf sampling, and the replicated operation wrapper. *)

open Hovercraft_sim
open Hovercraft_apps
module K = Kvstore

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- kvstore: strings ------------------------------------------------ *)

let test_kv_strings () =
  let s = K.create () in
  check "get missing" true (K.execute s (K.Get "a") = K.Value None);
  check "put" true (K.execute s (K.Put ("a", "1")) = K.Ok);
  check "get hit" true (K.execute s (K.Get "a") = K.Value (Some "1"));
  check "overwrite" true (K.execute s (K.Put ("a", "2")) = K.Ok);
  check "get new" true (K.execute s (K.Get "a") = K.Value (Some "2"));
  check "del" true (K.execute s (K.Del "a") = K.Count 1);
  check "del again" true (K.execute s (K.Del "a") = K.Count 0)

let test_kv_lists () =
  let s = K.create () in
  check "rpush" true (K.execute s (K.Rpush ("l", "a")) = K.Count 1);
  check "rpush 2" true (K.execute s (K.Rpush ("l", "b")) = K.Count 2);
  check "lpush" true (K.execute s (K.Lpush ("l", "z")) = K.Count 3);
  check "llen" true (K.execute s (K.Llen "l") = K.Count 3);
  check "lrange all" true
    (K.execute s (K.Lrange ("l", 0, -1)) = K.Values [ "z"; "a"; "b" ]);
  check "lrange clamp" true
    (K.execute s (K.Lrange ("l", 1, 100)) = K.Values [ "a"; "b" ]);
  check "lrange negative" true
    (K.execute s (K.Lrange ("l", -2, -1)) = K.Values [ "a"; "b" ]);
  check "lrange inverted empty" true (K.execute s (K.Lrange ("l", 2, 1)) = K.Values []);
  check "lrange missing key" true (K.execute s (K.Lrange ("nope", 0, -1)) = K.Values [])

let test_kv_hashes () =
  let s = K.create () in
  check "hset new" true (K.execute s (K.Hset ("h", "f1", "v1")) = K.Count 1);
  check "hset overwrite" true (K.execute s (K.Hset ("h", "f1", "v2")) = K.Count 0);
  check "hset second" true (K.execute s (K.Hset ("h", "f2", "x")) = K.Count 1);
  check "hget" true (K.execute s (K.Hget ("h", "f1")) = K.Value (Some "v2"));
  check "hget missing field" true (K.execute s (K.Hget ("h", "zz")) = K.Value None);
  check "hgetall sorted" true
    (K.execute s (K.Hgetall "h") = K.Values [ "f1"; "v2"; "f2"; "x" ])

let test_kv_sets () =
  let s = K.create () in
  check "sadd" true (K.execute s (K.Sadd ("s", "m1")) = K.Count 1);
  check "sadd dup" true (K.execute s (K.Sadd ("s", "m1")) = K.Count 0);
  check "sismember" true (K.execute s (K.Sismember ("s", "m1")) = K.Count 1);
  check "scard" true (K.execute s (K.Scard "s") = K.Count 1);
  check "srem" true (K.execute s (K.Srem ("s", "m1")) = K.Count 1);
  check "srem gone" true (K.execute s (K.Srem ("s", "m1")) = K.Count 0);
  check "scard empty" true (K.execute s (K.Scard "s") = K.Count 0)

let test_kv_wrong_type () =
  let s = K.create () in
  ignore (K.execute s (K.Put ("k", "v")));
  check "lpush on string" true (K.execute s (K.Lpush ("k", "x")) = K.Wrong_type);
  check "hget on string" true (K.execute s (K.Hget ("k", "f")) = K.Wrong_type);
  check "scan on string" true
    (K.execute s (K.Scan { thread = "k"; limit = 5 }) = K.Wrong_type);
  check "string survives" true (K.execute s (K.Get "k") = K.Value (Some "v"))

let record i = [ ("field0", Printf.sprintf "post-%d" i) ]

let test_kv_threads () =
  let s = K.create () in
  for i = 1 to 15 do
    check "insert ok" true
      (K.execute s (K.Insert { thread = "t"; record = record i }) = K.Ok)
  done;
  (match K.execute s (K.Scan { thread = "t"; limit = 10 }) with
  | K.Records rs ->
      check_int "scan capped at limit" 10 (List.length rs);
      (* Most recent first. *)
      check "newest first" true (List.hd rs = record 15)
  | _ -> Alcotest.fail "scan failed");
  (match K.execute s (K.Scan { thread = "t"; limit = 100 }) with
  | K.Records rs -> check_int "scan capped at size" 15 (List.length rs)
  | _ -> Alcotest.fail "scan failed");
  check "scan empty thread" true
    (K.execute s (K.Scan { thread = "none"; limit = 10 }) = K.Records [])

let test_kv_read_only_classification () =
  check "scan ro" true (K.is_read_only (K.Scan { thread = "t"; limit = 1 }));
  check "get ro" true (K.is_read_only (K.Get "k"));
  check "insert rw" false (K.is_read_only (K.Insert { thread = "t"; record = [] }));
  check "put rw" false (K.is_read_only (K.Put ("a", "b")));
  check "nop ro" true (K.is_read_only K.Nop)

let test_kv_fingerprint_determinism () =
  let run () =
    let s = K.create () in
    ignore (K.execute s (K.Put ("a", "1")));
    ignore (K.execute s (K.Rpush ("l", "x")));
    ignore (K.execute s (K.Insert { thread = "t"; record = record 1 }));
    K.fingerprint s
  in
  check "same ops same fingerprint" true (run () = run ())

let test_kv_fingerprint_sensitive () =
  let s1 = K.create () and s2 = K.create () in
  ignore (K.execute s1 (K.Put ("a", "1")));
  ignore (K.execute s2 (K.Put ("a", "2")));
  check "different values differ" false (K.fingerprint s1 = K.fingerprint s2)

(* Property: replaying the same random command sequence on two stores gives
   identical fingerprints (determinism, an SMR prerequisite), and read-only
   commands never change the fingerprint. *)
let gen_cmd =
  QCheck.Gen.(
    let key = map (Printf.sprintf "k%d") (int_range 0 5) in
    let value = map (Printf.sprintf "v%d") (int_range 0 20) in
    frequency
      [
        (3, map2 (fun k v -> K.Put (k, v)) key value);
        (2, map (fun k -> K.Get k) key);
        (1, map (fun k -> K.Del k) key);
        (2, map2 (fun k v -> K.Rpush (k, v)) key value);
        (1, map (fun k -> K.Lrange (k, 0, -1)) key);
        (2, map2 (fun k v -> K.Sadd (k, v)) key value);
        (1, map2 (fun k v -> K.Hset (k, v, v)) key value);
        ( 1,
          map2
            (fun k i -> K.Insert { thread = k; record = record i })
            key (int_range 0 100) );
        (1, map (fun k -> K.Scan { thread = k; limit = 5 }) key);
      ])

let prop_kv_deterministic =
  QCheck.Test.make ~name:"kvstore execution is deterministic" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) gen_cmd))
    (fun cmds ->
      let s1 = K.create () and s2 = K.create () in
      List.iter (fun c -> ignore (K.execute s1 c)) cmds;
      List.iter (fun c -> ignore (K.execute s2 c)) cmds;
      K.fingerprint s1 = K.fingerprint s2)

let prop_kv_ro_pure =
  QCheck.Test.make ~name:"read-only commands don't change the store" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 60) gen_cmd))
    (fun cmds ->
      let s = K.create () in
      List.iter (fun c -> ignore (K.execute s c)) cmds;
      let before = K.fingerprint s in
      List.iter
        (fun c -> if K.is_read_only c then ignore (K.execute s c))
        cmds;
      K.fingerprint s = before)

let test_kv_sizes_and_costs () =
  check "insert bytes ~record" true
    (K.cmd_bytes (K.Insert { thread = "t"; record = record 1 }) > 10);
  check "scan request small" true
    (K.cmd_bytes (K.Scan { thread = "t"; limit = 10 }) < 64);
  let reply = K.Records [ record 1; record 2 ] in
  check "records reply sized" true (K.reply_bytes reply > 20);
  check "scan cost grows with records" true
    (K.cost_ns (K.Scan { thread = "t"; limit = 10 }) reply
    > K.cost_ns (K.Scan { thread = "t"; limit = 10 }) (K.Records []))

(* --- zipf ------------------------------------------------------------- *)

let test_zipf_bounds () =
  let z = Zipf.create ~n:100 () in
  let rng = Rng.create 3 in
  for _ = 1 to 5000 do
    let v = Zipf.sample z rng in
    check "in range" true (v >= 0 && v < 100)
  done

let test_zipf_skew () =
  let z = Zipf.create ~theta:0.99 ~n:1000 () in
  let rng = Rng.create 4 in
  let zero = ref 0 and total = 20_000 in
  for _ = 1 to total do
    if Zipf.sample z rng = 0 then incr zero
  done;
  (* Item 0 of a zipf(0.99, 1000) carries ~13% of the mass; uniform would
     be 0.1%. *)
  check "head is hot" true (float_of_int !zero /. float_of_int total > 0.05)

(* The whole rank-frequency curve, not just the head: counts decay
   monotonically over the top ranks and the rank-1 / rank-10 ratio sits
   near the zipf prediction 10^theta (~9.8 at theta = 0.99). *)
let test_zipf_rank_frequency () =
  let n = 1000 and theta = 0.99 and total = 200_000 in
  let z = Zipf.create ~theta ~n () in
  let rng = Rng.create 9 in
  let counts = Array.make n 0 in
  for _ = 1 to total do
    let v = Zipf.sample z rng in
    counts.(v) <- counts.(v) + 1
  done;
  for r = 0 to 8 do
    if counts.(r) < counts.(r + 1) then
      Alcotest.failf "rank %d (%d draws) colder than rank %d (%d draws)" r
        counts.(r) (r + 1)
        counts.(r + 1)
  done;
  let ratio = float_of_int counts.(0) /. float_of_int counts.(9) in
  check "rank-1/rank-10 ratio near 10^theta" true (ratio > 6. && ratio < 16.)

(* --- ycsb ------------------------------------------------------------- *)

let test_ycsb_mix () =
  let g = Ycsb.create ~seed:5 () in
  let scans = ref 0 and inserts = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.next g with
    | Op.Kv (K.Scan _) -> incr scans
    | Op.Kv (K.Insert _) -> incr inserts
    | _ -> Alcotest.fail "unexpected op"
  done;
  let frac = float_of_int !scans /. 10_000. in
  check "95:5 mix" true (frac > 0.93 && frac < 0.97)

let test_ycsb_record_shape () =
  let g = Ycsb.create ~seed:6 () in
  match List.hd (Ycsb.preload_ops g 1) with
  | Op.Kv (K.Insert { record; _ }) ->
      check_int "10 fields" 10 (List.length record);
      List.iter
        (fun (_, v) -> check_int "100-byte values" 100 (String.length v))
        record
  | _ -> Alcotest.fail "preload must be inserts"

let test_ycsb_deterministic () =
  let ops seed =
    let g = Ycsb.create ~seed () in
    List.init 50 (fun _ -> Ycsb.next g)
  in
  check "same seed same stream" true (ops 7 = ops 7);
  check "different seed differs" false (ops 7 = ops 8)

(* --- op ---------------------------------------------------------------- *)

let test_op_synth () =
  let st = Op.create_state () in
  let op = Op.Synth { cost = 1000; read_only = false; req_bytes = 24; rep_bytes = 8 } in
  let result, cost = Op.apply st op in
  check "done" true (result = Op.Done);
  check_int "cost passthrough" 1000 cost;
  check_int "req bytes" 24 (Op.request_bytes op);
  check_int "rep bytes" 8 (Op.reply_bytes op result)

let test_op_fingerprint_excludes_ro () =
  (* Replica A executes reads; replica B doesn't: fingerprints agree. *)
  let a = Op.create_state () and b = Op.create_state () in
  let w = Op.Kv (K.Put ("x", "1")) in
  let r = Op.Kv (K.Get "x") in
  ignore (Op.apply a w);
  ignore (Op.apply a r);
  ignore (Op.apply a r);
  ignore (Op.apply b w);
  check "ro execution doesn't diverge replicas" true
    (Op.fingerprint a = Op.fingerprint b);
  check "executed counts differ" false (Op.executed a = Op.executed b)

let test_op_rw_digest_diverges () =
  let a = Op.create_state () and b = Op.create_state () in
  let w v = Op.Kv (K.Put ("x", v)) in
  ignore (Op.apply a (w "1"));
  ignore (Op.apply b (w "2"));
  check "different writes diverge" false (Op.fingerprint a = Op.fingerprint b)

let test_op_nop () =
  let st = Op.create_state () in
  let before = Op.fingerprint st in
  ignore (Op.apply st Op.Nop);
  check "nop leaves state" true (Op.fingerprint st = before);
  check "nop read-only" true (Op.read_only Op.Nop)

(* --- service ------------------------------------------------------------ *)

let test_service_spec_sampling () =
  let spec =
    Service.spec ~service:(Dist.Fixed 2000) ~req_bytes:64 ~rep_bytes:128
      ~read_fraction:1.0 ()
  in
  let rng = Rng.create 9 in
  for _ = 1 to 20 do
    match Service.sample spec rng with
    | Op.Synth { cost; read_only; req_bytes; rep_bytes } ->
        check_int "cost" 2000 cost;
        check "all reads" true read_only;
        check_int "req" 64 req_bytes;
        check_int "rep" 128 rep_bytes
    | _ -> Alcotest.fail "expected synth"
  done

let test_service_read_fraction () =
  let spec = Service.spec ~read_fraction:0.75 () in
  let rng = Rng.create 10 in
  let ro = ref 0 in
  for _ = 1 to 10_000 do
    if Op.read_only (Service.sample spec rng) then incr ro
  done;
  let f = float_of_int !ro /. 10_000. in
  check "~75% read-only" true (f > 0.72 && f < 0.78)

let test_service_invalid_fraction () =
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Service.spec: read_fraction outside [0,1]") (fun () ->
      ignore (Service.spec ~read_fraction:1.5 ()))


let test_ycsb_kv_mixes () =
  let count_reads gen n =
    let reads = ref 0 in
    for _ = 1 to n do
      match Ycsb.Kv.next gen with
      | Op.Kv (K.Get _) -> incr reads
      | Op.Kv (K.Put _) -> ()
      | _ -> Alcotest.fail "unexpected op"
    done;
    float_of_int !reads /. float_of_int n
  in
  let a = count_reads (Ycsb.Kv.workload_a ~seed:1) 5_000 in
  check "A ~50% reads" true (a > 0.46 && a < 0.54);
  let b = count_reads (Ycsb.Kv.workload_b ~seed:2) 5_000 in
  check "B ~95% reads" true (b > 0.93 && b < 0.97);
  let c = count_reads (Ycsb.Kv.workload_c ~seed:3) 1_000 in
  check "C all reads" true (c = 1.0)

let test_ycsb_kv_preload_covers_keys () =
  let gen = Ycsb.Kv.create ~read_fraction:1.0 ~records:50 ~seed:4 () in
  let store = K.create () in
  List.iter
    (fun op -> match op with Op.Kv c -> ignore (K.execute store c) | _ -> ())
    (Ycsb.Kv.preload_ops gen);
  check_int "one record per key" 50 (K.keys store);
  (* Every subsequent read hits. *)
  for _ = 1 to 200 do
    match Ycsb.Kv.next gen with
    | Op.Kv (K.Get k) ->
        check "read hits preloaded key" true (K.execute store (K.Get k) <> K.Value None)
    | _ -> ()
  done

let suite =
  [
    Alcotest.test_case "kv strings" `Quick test_kv_strings;
    Alcotest.test_case "kv lists (redis semantics)" `Quick test_kv_lists;
    Alcotest.test_case "kv hashes" `Quick test_kv_hashes;
    Alcotest.test_case "kv sets" `Quick test_kv_sets;
    Alcotest.test_case "kv wrong type" `Quick test_kv_wrong_type;
    Alcotest.test_case "kv conversation threads" `Quick test_kv_threads;
    Alcotest.test_case "kv read-only classification" `Quick
      test_kv_read_only_classification;
    Alcotest.test_case "kv fingerprint determinism" `Quick
      test_kv_fingerprint_determinism;
    Alcotest.test_case "kv fingerprint sensitivity" `Quick
      test_kv_fingerprint_sensitive;
    QCheck_alcotest.to_alcotest prop_kv_deterministic;
    QCheck_alcotest.to_alcotest prop_kv_ro_pure;
    Alcotest.test_case "kv sizes and costs" `Quick test_kv_sizes_and_costs;
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf rank-frequency shape" `Quick
      test_zipf_rank_frequency;
    Alcotest.test_case "ycsb 95:5 mix" `Quick test_ycsb_mix;
    Alcotest.test_case "ycsb record shape" `Quick test_ycsb_record_shape;
    Alcotest.test_case "ycsb determinism" `Quick test_ycsb_deterministic;
    Alcotest.test_case "op synth" `Quick test_op_synth;
    Alcotest.test_case "op fingerprint excludes RO" `Quick
      test_op_fingerprint_excludes_ro;
    Alcotest.test_case "op rw digest diverges" `Quick test_op_rw_digest_diverges;
    Alcotest.test_case "op nop" `Quick test_op_nop;
    Alcotest.test_case "service spec sampling" `Quick test_service_spec_sampling;
    Alcotest.test_case "service read fraction" `Quick test_service_read_fraction;
    Alcotest.test_case "service invalid fraction" `Quick test_service_invalid_fraction;
    Alcotest.test_case "ycsb kv A/B/C mixes" `Quick test_ycsb_kv_mixes;
    Alcotest.test_case "ycsb kv preload" `Quick test_ycsb_kv_preload_covers_keys;
  ]
