(* Tests for the discrete-event substrate: heap, engine, rng, dist, stats,
   series. *)

open Hovercraft_sim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- heap ---------------------------------------------------------- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iteri (fun i k -> Heap.push h ~key:k ~seq:i i) [ 5; 1; 4; 1; 3 ];
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (k, _, _) ->
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 1; 3; 4; 5 ] (List.rev !popped)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h ~key:7 ~seq:i i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (_, _, v) -> check_int "FIFO at equal keys" i v
    | None -> Alcotest.fail "heap empty early"
  done

let test_heap_growth_and_clear () =
  let h = Heap.create ~capacity:4 () in
  for i = 0 to 999 do
    Heap.push h ~key:(999 - i) ~seq:i i
  done;
  check_int "length" 1000 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 0) (Heap.peek_key h);
  Heap.clear h;
  check "empty after clear" true (Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in nondecreasing order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) small_int)
    (fun keys ->
      let h = Heap.create () in
      List.iteri (fun i k -> Heap.push h ~key:k ~seq:i k) keys;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (k, _, _) -> k >= last && drain k
      in
      drain min_int)

(* --- engine -------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  Engine.at e 30 (fun () -> order := 3 :: !order);
  Engine.at e 10 (fun () -> order := 1 :: !order);
  Engine.at e 20 (fun () -> order := 2 :: !order);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !order);
  check_int "clock at last event" 30 (Engine.now e)

let test_engine_fifo_same_instant () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 4 do
    Engine.at e 5 (fun () -> order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.at e 10 (fun () -> incr fired);
  Engine.at e 100 (fun () -> incr fired);
  Engine.run ~until:50 e;
  check_int "only first fired" 1 !fired;
  check_int "clock moved to horizon" 50 (Engine.now e);
  Engine.run e;
  check_int "rest fired" 2 !fired

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.timer_after e 10 (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run e;
  check "cancelled timer silent" false !fired

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref [] in
  Engine.at e 1 (fun () ->
      hits := Engine.now e :: !hits;
      Engine.after e 5 (fun () -> hits := Engine.now e :: !hits));
  Engine.run e;
  Alcotest.(check (list int)) "nested event at now+5" [ 1; 6 ] (List.rev !hits)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.at e 10 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.at: time 5 is before now 10") (fun () ->
      Engine.at e 5 ignore)

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.at e i (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  check_int "stopped after third" 3 !count;
  Engine.run e;
  check_int "resumable" 10 !count

(* --- rng ------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let c = Rng.split a in
  check "split differs from parent continuation" true (Rng.int64 a <> Rng.int64 c)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let test_rng_float_unit_interval () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    check "in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_uniformity_rough () =
  let rng = Rng.create 17 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter (fun c -> check "roughly uniform" true (c > 800 && c < 1200)) buckets

(* --- dist ----------------------------------------------------------- *)

let sample_mean dist seed n =
  let rng = Rng.create seed in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. float_of_int (Dist.sample dist rng)
  done;
  !sum /. float_of_int n

let test_dist_fixed () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    check_int "fixed is constant" 1000 (Dist.sample (Dist.Fixed 1000) rng)
  done

let test_dist_exponential_mean () =
  let m = sample_mean (Dist.Exponential 10_000) 3 50_000 in
  check "exp mean within 3%" true (abs_float (m -. 10_000.) < 300.)

let test_dist_bimodal_modes () =
  let short, long =
    Dist.bimodal_modes ~mean:10_000 ~long_fraction:0.1 ~ratio:10.
  in
  (* 0.9*s + 0.1*10*s = 10us -> s = 10/1.9 us *)
  check "short mode" true (abs_float (short -. 5263.16) < 1.);
  check "long = 10x short" true (abs_float (long -. (10. *. short)) < 0.001)

let test_dist_bimodal_mean () =
  let d = Dist.Bimodal { mean = 10_000; long_fraction = 0.1; ratio = 10. } in
  let m = sample_mean d 5 50_000 in
  check "bimodal empirical mean within 3%" true (abs_float (m -. 10_000.) < 300.)

let test_dist_uniform_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Dist.sample (Dist.Uniform (100, 200)) rng in
    check "uniform in range" true (v >= 100 && v <= 200)
  done

(* --- stats ---------------------------------------------------------- *)

let test_stats_percentiles_exact () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s i
  done;
  check_int "p50" 50 (Stats.percentile s 0.5);
  check_int "p99" 99 (Stats.percentile s 0.99);
  check_int "p100" 100 (Stats.percentile s 1.0);
  check_int "max" 100 (Stats.max_sample s);
  check "mean" true (abs_float (Stats.mean s -. 50.5) < 0.001)

(* Nearest-rank edge cases (the double-rounding regression): p=1.0 must
   select the last live sample — never index past the window — and p=0.0
   the first, including on single-sample recorders. *)
let test_stats_percentile_edges () =
  let s = Stats.create () in
  Stats.add s 42;
  check_int "size-1 p0" 42 (Stats.percentile s 0.0);
  check_int "size-1 p50" 42 (Stats.percentile s 0.5);
  check_int "size-1 p100" 42 (Stats.percentile s 1.0);
  (* Sizes where [p * size] lands just above/below an integer in float:
     a second rounding of the ceiled product can push the rank to
     [size + 1]. Every p in (0, 1] must stay in bounds and p=1 must be
     the maximum. *)
  for n = 1 to 64 do
    let s = Stats.create () in
    for i = 1 to n do
      Stats.add s i
    done;
    check_int (Printf.sprintf "p100 of %d" n) n (Stats.percentile s 1.0);
    check_int (Printf.sprintf "p0 of %d" n) 1 (Stats.percentile s 0.0);
    check_int
      (Printf.sprintf "p(1-eps) of %d" n)
      n
      (Stats.percentile s (1. -. epsilon_float))
  done

let test_stats_unsorted_input () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 9; 1; 5; 3; 7 ];
  check_int "p50 of odd set" 5 (Stats.percentile s 0.5)

let test_stats_empty_raises () =
  let s = Stats.create () in
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty recorder") (fun () ->
      ignore (Stats.percentile s 0.5))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1; 2; 3 ];
  List.iter (Stats.add b) [ 4; 5; 6 ];
  let m = Stats.merge a b in
  check_int "merged count" 6 (Stats.count m);
  check_int "merged p100" 6 (Stats.percentile m 1.0)

let prop_stats_percentile_matches_sort =
  QCheck.Test.make ~name:"nearest-rank percentile equals sorted reference"
    ~count:300
    QCheck.(
      pair (list_of_size (Gen.int_range 1 300) (int_range 0 10_000)) (float_range 0.01 1.0))
    (fun (samples, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) samples;
      let sorted = List.sort compare samples |> Array.of_list in
      let n = Array.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      let expected = sorted.(max 0 (min (n - 1) (rank - 1))) in
      Stats.percentile s p = expected)

let test_summary_welford () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check "mean" true (abs_float (Stats.Summary.mean s -. 5.) < 1e-9);
  check "stddev" true (abs_float (Stats.Summary.stddev s -. 2.13808993) < 1e-6)

(* --- series ---------------------------------------------------------- *)

let test_series_buckets () =
  let s = Series.create ~bucket:100 () in
  Series.add s ~at:10 5;
  Series.add s ~at:50 15;
  Series.add s ~at:150 25;
  Series.mark s ~at:160;
  let buckets = Series.buckets s in
  check_int "two buckets" 2 (List.length buckets);
  let b0 = List.nth buckets 0 and b1 = List.nth buckets 1 in
  check_int "bucket0 start" 0 b0.Series.start;
  check_int "bucket0 count" 2 b0.Series.count;
  check_int "bucket1 count includes marks" 2 b1.Series.count;
  Alcotest.(check (option int)) "bucket1 p99" (Some 25) b1.Series.p99

let test_series_empty () =
  let s = Series.create ~bucket:100 () in
  check_int "no buckets" 0 (List.length (Series.buckets s))

(* --- timebase -------------------------------------------------------- *)

let test_timebase_units () =
  check_int "us" 1_000 (Timebase.us 1);
  check_int "ms" 1_000_000 (Timebase.ms 1);
  check_int "s" 1_000_000_000 (Timebase.s 1);
  check_int "of_us_f rounds" 1_500 (Timebase.of_us_f 1.5);
  check "to_us_f" true (abs_float (Timebase.to_us_f 2_500 -. 2.5) < 1e-9)

let suite =
  [
    Alcotest.test_case "heap pops in order" `Quick test_heap_order;
    Alcotest.test_case "heap FIFO on ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "heap grows and clears" `Quick test_heap_growth_and_clear;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "engine time ordering" `Quick test_engine_ordering;
    Alcotest.test_case "engine FIFO at same instant" `Quick
      test_engine_fifo_same_instant;
    Alcotest.test_case "engine run until" `Quick test_engine_until;
    Alcotest.test_case "engine timer cancel" `Quick test_engine_cancel;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine rejects past" `Quick test_engine_past_rejected;
    Alcotest.test_case "engine stop/resume" `Quick test_engine_stop;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    QCheck_alcotest.to_alcotest prop_rng_int_bounds;
    Alcotest.test_case "rng float interval" `Quick test_rng_float_unit_interval;
    Alcotest.test_case "rng rough uniformity" `Quick test_rng_uniformity_rough;
    Alcotest.test_case "dist fixed" `Quick test_dist_fixed;
    Alcotest.test_case "dist exponential mean" `Quick test_dist_exponential_mean;
    Alcotest.test_case "dist bimodal modes" `Quick test_dist_bimodal_modes;
    Alcotest.test_case "dist bimodal mean" `Quick test_dist_bimodal_mean;
    Alcotest.test_case "dist uniform bounds" `Quick test_dist_uniform_bounds;
    Alcotest.test_case "stats exact percentiles" `Quick test_stats_percentiles_exact;
    Alcotest.test_case "stats percentile edges" `Quick test_stats_percentile_edges;
    Alcotest.test_case "stats unsorted input" `Quick test_stats_unsorted_input;
    Alcotest.test_case "stats empty raises" `Quick test_stats_empty_raises;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    QCheck_alcotest.to_alcotest prop_stats_percentile_matches_sort;
    Alcotest.test_case "summary welford" `Quick test_summary_welford;
    Alcotest.test_case "series buckets" `Quick test_series_buckets;
    Alcotest.test_case "series empty" `Quick test_series_empty;
    Alcotest.test_case "timebase units" `Quick test_timebase_units;
  ]
