(* Tests for the Multi-Raft shard layer: map/partitioners, schedule
   determinism (the S=1 no-op guarantee), sharded deployments under load,
   and live migration with the cross-map history checker. *)

open Hovercraft_sim
open Hovercraft_cluster
open Hovercraft_shard
module Op = Hovercraft_apps.Op
module Kvstore = Hovercraft_apps.Kvstore
module Hnode = Hovercraft_core.Hnode

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A single-key kv workload over a YCSB-shaped key population: keys carry
   shard routing, a write-heavy mix exercises the exactly-once machinery. *)
let kv_workload rng =
  let k = Printf.sprintf "user%08d" (Rng.int rng 2_000) in
  if Rng.bool rng 0.5 then Op.Kv (Kvstore.Get k)
  else Op.Kv (Kvstore.Put (k, "v"))

(* ------------------------------------------------------------------ *)
(* Shard map                                                           *)

let test_map_blocks_and_assign () =
  let m = Shard_map.create ~slots:8 ~groups:4 () in
  check_int "version" 1 (Shard_map.version m);
  check_int "slots of g0" 2 (List.length (Shard_map.slots_of_group m 0));
  check "contiguous blocks" true
    (Shard_map.slots_of_group m 0 = [ 0; 1 ]
    && Shard_map.slots_of_group m 3 = [ 6; 7 ]);
  check "active = all" true (Shard_map.active_groups m = [ 0; 1; 2; 3 ]);
  Shard_map.assign m ~slots:[ 6; 7 ] ~target:0;
  check_int "version bumped" 2 (Shard_map.version m);
  check "reassigned" true (Shard_map.slots_of_group m 3 = []);
  check "g0 grew" true (Shard_map.slots_of_group m 0 = [ 0; 1; 6; 7 ])

let test_map_dormant_and_split_plan () =
  let m = Shard_map.create ~active:1 ~slots:8 ~groups:2 () in
  check "g1 dormant" true (Shard_map.slots_of_group m 1 = []);
  check "plan = upper half" true
    (Shard_map.split_plan m ~source:0 = [ 4; 5; 6; 7 ]);
  (* An odd slot count keeps the larger half at the source. *)
  Shard_map.assign m ~slots:[ 7 ] ~target:1;
  check "odd split" true (Shard_map.split_plan m ~source:0 = [ 4; 5; 6 ])

let test_range_partitioner () =
  let m =
    Shard_map.create
      ~partitioner:(Shard_map.Range [| "g"; "p" |])
      ~slots:3 ~groups:3 ()
  in
  check_int "below first cut" 0 (Shard_map.slot_of_key m "abc");
  check_int "at a cut (inclusive)" 1 (Shard_map.slot_of_key m "g");
  check_int "between cuts" 1 (Shard_map.slot_of_key m "moose");
  check_int "above last cut" 2 (Shard_map.slot_of_key m "zed");
  check "owner follows slot" true (Shard_map.owner_of_key m "zed" = 2)

let test_map_validation () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "active > groups" true
    (raises (fun () -> Shard_map.create ~active:3 ~slots:8 ~groups:2 ()));
  check "fewer slots than active" true
    (raises (fun () -> Shard_map.create ~slots:2 ~groups:4 ()));
  check "unsorted cuts" true
    (raises (fun () ->
         Shard_map.create ~partitioner:(Shard_map.Range [| "p"; "g" |]) ~slots:3
           ~groups:3 ()));
  let m = Shard_map.create ~slots:4 ~groups:2 () in
  check "split needs two slots" true
    (raises (fun () ->
         Shard_map.assign m ~slots:[ 1; 2; 3 ] ~target:0;
         Shard_map.split_plan m ~source:1))

(* The hash partitioner spreads the YCSB key population near-uniformly:
   every one of 8 shards within +/-20% of the uniform share (satellite:
   key-distribution tests). *)
let test_hash_partitioner_spread () =
  let m = Shard_map.create ~slots:64 ~groups:8 () in
  let counts = Array.make 8 0 in
  let nkeys = 10_000 in
  for i = 0 to nkeys - 1 do
    let g = Shard_map.owner_of_key m (Printf.sprintf "user%08d" i) in
    counts.(g) <- counts.(g) + 1
  done;
  let uniform = float_of_int nkeys /. 8. in
  Array.iteri
    (fun g c ->
      let ratio = float_of_int c /. uniform in
      if ratio < 0.8 || ratio > 1.2 then
        Alcotest.failf "shard %d holds %.2fx the uniform share" g ratio)
    counts

(* ------------------------------------------------------------------ *)
(* Schedule determinism                                                *)

(* [~shards:1] must be a strict no-op: byte-for-byte the schedule every
   historical seed produced. *)
let test_schedule_s1_noop () =
  List.iter
    (fun seed ->
      let legacy =
        Chaos.random_schedule ~n:5 ~duration:(Timebase.s 2) ~seed ()
      in
      let s1 =
        Chaos.random_schedule ~shards:1 ~n:5 ~duration:(Timebase.s 2) ~seed ()
      in
      check (Printf.sprintf "seed %d identical" seed) true (legacy = s1))
    [ 1; 7; 42; 1001 ]

let test_schedule_sharded () =
  let steps =
    Chaos.random_schedule ~shards:4 ~n:5 ~duration:(Timebase.s 2) ~seed:9 ()
  in
  check "nonempty" true (steps <> []);
  List.iter
    (fun { Chaos.at; event } ->
      check "nonnegative time" true (at >= 0);
      match event with
      | Chaos.Shard (g, Chaos.Shard _) ->
          Alcotest.failf "nested shard tag in group %d" g
      | Chaos.Shard (g, _) -> check "group in range" true (g >= 0 && g < 4)
      | _ -> Alcotest.fail "unwrapped event in a sharded schedule")
    steps;
  let times = List.map (fun s -> s.Chaos.at) steps in
  check "time-sorted" true (times = List.sort compare times);
  (* Deterministic per seed. *)
  check "replays identically" true
    (steps
    = Chaos.random_schedule ~shards:4 ~n:5 ~duration:(Timebase.s 2) ~seed:9 ())

(* ------------------------------------------------------------------ *)
(* Sharded deployments                                                 *)

(* Two active groups, no faults, no migration: load routes by key, both
   groups make progress, nothing is lost, histories check out. *)
let test_sharded_load_clean () =
  let o =
    Shard_chaos.run ~n:3 ~shards:2 ~rate_rps:30_000.
      ~duration:(Timebase.ms 400) ~schedule:[] ~workload:kv_workload ~seed:5 ()
  in
  check "violations" true (o.Shard_chaos.violations = []);
  check "exactly once" true o.Shard_chaos.exactly_once_ok;
  check "preserved" true o.Shard_chaos.committed_preserved;
  check "caught up" true o.Shard_chaos.caught_up;
  check "consistent" true o.Shard_chaos.consistent;
  check "completed some" true (o.Shard_chaos.report.Loadgen.completed > 1_000);
  check_int "lost" 0 o.Shard_chaos.report.Loadgen.lost;
  check_int "map untouched" 1 o.Shard_chaos.map_version

(* A live split under sustained write load: group 1 starts dormant, the
   upper half of group 0's slots moves mid-run. Exactly-once and
   committed-stays-committed must hold across the handoff, and the map
   must have flipped. *)
let test_live_split_under_load () =
  let o =
    Shard_chaos.run ~n:3 ~shards:2 ~active:1 ~rate_rps:30_000.
      ~duration:(Timebase.ms 600) ~schedule:[]
      ~migrations:[ (Timebase.ms 150, Shard_chaos.Split { source = 0; target = 1 }) ]
      ~workload:kv_workload ~seed:8 ()
  in
  check "violations" true (o.Shard_chaos.violations = []);
  check "exactly once across map" true o.Shard_chaos.exactly_once_ok;
  check "no committed write lost" true o.Shard_chaos.committed_preserved;
  check "consistent" true o.Shard_chaos.consistent;
  check_int "one migration" 1 o.Shard_chaos.migrations;
  check_int "map flipped" 2 o.Shard_chaos.map_version;
  check_int "lost" 0 o.Shard_chaos.report.Loadgen.lost

(* Per-shard fault injection: each group rides its own schedule (wrapped
   in [Shard]), and the checkers still pass after the epilogue. *)
let test_sharded_chaos_events () =
  let o =
    Shard_chaos.run ~n:3 ~shards:2 ~rate_rps:20_000.
      ~duration:(Timebase.ms 800)
      ~schedule:
        [
          { Chaos.at = Timebase.ms 100; event = Chaos.Shard (0, Chaos.Kill 1) };
          { Chaos.at = Timebase.ms 200; event = Chaos.Shard (1, Chaos.Kill_leader) };
          { Chaos.at = Timebase.ms 400; event = Chaos.Shard (0, Chaos.Restart 1) };
        ]
      ~workload:kv_workload ~seed:13 ()
  in
  check "violations" true (o.Shard_chaos.violations = []);
  check "exactly once" true o.Shard_chaos.exactly_once_ok;
  check "caught up" true o.Shard_chaos.caught_up;
  check "events noted" true
    (List.exists
       (fun (_, s) -> s = "shard0: killed node1")
       o.Shard_chaos.events)

(* Backoff-table leak regression: a live split populates the per-rid
   reroute-backoff table (fence NACKs), and killing the split target the
   moment the map flips strands the freshly rerouted rids — they burn a
   tiny retry budget against dead nodes and are written off as lost.
   Both exits (retry exhaustion mid-run, teardown at end of run) must
   remove their entries; before the fix, exhausted rids left theirs
   behind forever. *)
let test_backoff_table_drains () =
  let p = Hnode.params ~mode:Hnode.Hover ~n:3 () in
  let sd = Shard_deploy.create (Shard_deploy.config ~active:1 ~shards:2 p) in
  let engine = Shard_deploy.engine sd in
  let gen =
    Shard_loadgen.create sd ~clients:8 ~rate_rps:30_000. ~workload:kv_workload
      ~retry:(Timebase.ms 5, 2) ~seed:21 ()
  in
  Engine.after engine (Timebase.ms 100) (fun () ->
      Shard_deploy.split_shard sd
        ~on_done:(fun () ->
          let d = (Shard_deploy.groups sd).(1) in
          Array.iter Hnode.kill d.Deploy.nodes)
        ~source:0 ~target:1 ());
  (* Probe the table late in the run, after every stranded rid has had
     time to exhaust its retries but before teardown can mask a leak. *)
  let late_entries = ref (-1) in
  Engine.after engine (Timebase.ms 380) (fun () ->
      late_entries := Shard_loadgen.backoff_entries gen);
  let r =
    Shard_loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 400)
      ~drain:(Timebase.ms 50) ()
  in
  check "reroutes happened" true (Shard_loadgen.rerouted gen > 0);
  check "some rids were written off" true (r.Loadgen.lost > 0);
  check_int "exhausted rids left no backoff entries" 0 !late_entries;
  check_int "table empty after run" 0 (Shard_loadgen.backoff_entries gen)

(* S=1 delegates verbatim to the single-group runner: same seed, same
   outcome, byte for byte (the regression guard for existing seeds). *)
let test_s1_delegation_identical () =
  let single =
    Chaos.run ~n:3 ~rate_rps:20_000. ~duration:(Timebase.ms 400)
      ~workload:kv_workload ~seed:17 ()
  in
  let sharded =
    Shard_chaos.run ~n:3 ~shards:1 ~rate_rps:20_000.
      ~duration:(Timebase.ms 400) ~workload:kv_workload ~seed:17 ()
  in
  check "report identical" true
    (single.Chaos.report = sharded.Shard_chaos.report);
  check "events identical" true
    (single.Chaos.events = sharded.Shard_chaos.events);
  check "retried identical" true
    (single.Chaos.retried = sharded.Shard_chaos.retried);
  check_int "no migrations" 0 sharded.Shard_chaos.migrations

let suite =
  [
    Alcotest.test_case "map: blocks and assign" `Quick test_map_blocks_and_assign;
    Alcotest.test_case "map: dormant groups and split plan" `Quick
      test_map_dormant_and_split_plan;
    Alcotest.test_case "map: range partitioner" `Quick test_range_partitioner;
    Alcotest.test_case "map: validation" `Quick test_map_validation;
    Alcotest.test_case "map: YCSB keys spread evenly" `Quick
      test_hash_partitioner_spread;
    Alcotest.test_case "schedule: shards=1 is a strict no-op" `Quick
      test_schedule_s1_noop;
    Alcotest.test_case "schedule: sharded wrapping" `Quick test_schedule_sharded;
    Alcotest.test_case "sharded load, clean run" `Slow test_sharded_load_clean;
    Alcotest.test_case "live split under load" `Slow test_live_split_under_load;
    Alcotest.test_case "per-shard chaos events" `Slow test_sharded_chaos_events;
    Alcotest.test_case "backoff table drains" `Slow test_backoff_table_drains;
    Alcotest.test_case "shards=1 delegates byte-identically" `Slow
      test_s1_delegation_identical;
  ]
