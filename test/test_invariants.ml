(* System-level invariant tests: properties of whole deployments that the
   paper's design guarantees, checked end-to-end over the simulator. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Addr = Hovercraft_net.Addr
module Fabric = Hovercraft_net.Fabric
module Op = Hovercraft_apps.Op
module Service = Hovercraft_apps.Service
module Rnode = Hovercraft_raft.Node
module Rlog = Hovercraft_raft.Log
module R2p2 = Hovercraft_r2p2.R2p2

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_cluster ?(mode = Hnode.Hover_pp) ?(n = 3) ?(rate = 40_000.)
    ?(duration = Timebase.ms 60) ?(read_fraction = 0.5) ?(tweak = fun p -> p)
    ?on_engine ~seed () =
  let params = tweak (Hnode.params ~mode ~n ()) in
  let deploy = Deploy.create (Deploy.config params) in
  (match on_engine with Some f -> f deploy | None -> ());
  let spec = Service.spec ~read_fraction () in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:rate
      ~workload:(Service.sample spec) ~seed ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration () in
  Deploy.quiesce deploy ~extra:(Timebase.ms 50) ();
  (deploy, report)

(* Extract the committed request-id sequence of a node's log. *)
let committed_rids node =
  let out = ref [] in
  Hnode.iter_log node ~lo:1 ~hi:(Hnode.commit_index node) (fun _ _ cmd ->
      let meta = cmd.Protocol.meta in
      if not meta.internal then out := meta.rid :: !out);
  List.rev !out

let test_committed_prefix_agreement () =
  let deploy, _ = run_cluster ~seed:41 () in
  let seqs =
    Array.to_list deploy.Deploy.nodes
    |> List.filter Hnode.alive |> List.map committed_rids
  in
  match seqs with
  | [] -> Alcotest.fail "no live nodes"
  | first :: rest ->
      List.iter
        (fun other ->
          let len = min (List.length first) (List.length other) in
          let take l = List.filteri (fun i _ -> i < len) l in
          check "committed sequences agree on shared prefix" true
            (List.for_all2 R2p2.req_id_equal (take first) (take other)))
        rest

let test_committed_prefix_after_failover () =
  let deploy, _ =
    run_cluster ~rate:30_000. ~duration:(Timebase.ms 80)
      ~on_engine:(fun deploy ->
        Engine.after deploy.Deploy.engine (Timebase.ms 25) (fun () ->
            ignore (Deploy.kill_leader deploy)))
      ~seed:42 ()
  in
  let live =
    Array.to_list deploy.Deploy.nodes |> List.filter Hnode.alive
  in
  check_int "two survivors" 2 (List.length live);
  match List.map committed_rids live with
  | [ a; b ] ->
      let len = min (List.length a) (List.length b) in
      let take l = List.filteri (fun i _ -> i < len) l in
      check "survivors agree through the failover" true
        (List.for_all2 R2p2.req_id_equal (take a) (take b))
  | _ -> Alcotest.fail "unexpected survivor count"

let test_read_only_executes_exactly_once () =
  (* 100% read-only workload with reply LB: every committed operation runs
     on exactly one replica cluster-wide (§3.5). *)
  let deploy, report = run_cluster ~read_fraction:1.0 ~seed:43 () in
  let total_executed = Deploy.total_executed deploy in
  (* Allow the leader-election no-ops and a handful of entries applied
     after the measurement window. *)
  let committed = report.Loadgen.sent in
  check "RO executed ~once cluster-wide (not once per replica)" true
    (total_executed <= committed + 20 && total_executed >= report.Loadgen.completed)

let test_read_write_executes_everywhere () =
  let deploy, _ = run_cluster ~read_fraction:0.0 ~seed:44 () in
  let leader_applied = Hnode.applied_index deploy.Deploy.nodes.(0) in
  Array.iter
    (fun node ->
      (* Every replica executed (almost) every RW entry. *)
      check "RW ops applied on every node" true
        (Hnode.executed_ops node > (leader_applied * 9 / 10)))
    deploy.Deploy.nodes

let test_aggregated_mode_engages () =
  let deploy, _ = run_cluster ~mode:Hnode.Hover_pp ~seed:45 () in
  let leader = Option.get (Deploy.leader deploy) in
  check "hover++ leader uses the aggregator" true (Hnode.aggregated leader);
  let deploy', _ = run_cluster ~mode:Hnode.Hover ~seed:45 () in
  let leader' = Option.get (Deploy.leader deploy') in
  check "plain hover never aggregates" false (Hnode.aggregated leader')

let test_leader_message_complexity () =
  (* Table 1's structural claim, as an assertion: at low load the
     HovercRaft++ leader receives O(1) messages per request while the
     per-follower modes receive ~N. *)
  let per_request mode =
    let params =
      let p = Hnode.params ~mode ~n:5 () in
      {
        p with
        Hnode.features =
          {
            p.Hnode.features with
            Hnode.reply_lb = true;
            eager_commit_notify = false;
          };
      }
    in
    let deploy = Deploy.create (Deploy.config params) in
    let gen =
      Loadgen.create deploy ~clients:4 ~rate_rps:10_000.
        ~workload:(Service.sample (Service.spec ())) ~seed:46 ()
    in
    let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) () in
    let leader = deploy.Deploy.nodes.(0) in
    float_of_int (Fabric.rx_packets (Hnode.port leader))
    /. float_of_int (max report.Loadgen.completed 1)
  in
  let vanilla = per_request Hnode.Vanilla in
  let hoverpp = per_request Hnode.Hover_pp in
  check "vanilla leader rx ~ N per request" true (vanilla > 4.0 && vanilla < 8.0);
  check "hover++ leader rx ~ 2 per request" true (hoverpp > 1.5 && hoverpp < 3.5);
  check "hover++ is cluster-size independent" true (hoverpp < vanilla /. 2.)

let test_bounded_queue_limits_failover_loss () =
  let bound = 8 in
  let deploy, report =
    run_cluster ~rate:30_000. ~duration:(Timebase.ms 80)
      ~tweak:(fun p ->
        { p with Hnode.features = { p.Hnode.features with Hnode.bound } })
      ~on_engine:(fun deploy ->
        Engine.after deploy.Deploy.engine (Timebase.ms 25) (fun () ->
            ignore (Deploy.kill_leader deploy)))
      ~seed:47 ()
  in
  (* At most B replies assigned to the dead node are lost, plus a few
     in-flight responses the crash swallowed. *)
  check "losses bounded by B plus in-flight slack" true
    (report.Loadgen.lost <= bound + 8);
  check "still consistent" true (Deploy.consistent deploy)

let test_no_reply_duplication () =
  (* At-most-once: the number of replies the cluster sent never exceeds the
     number of requests the clients made. *)
  let deploy, report = run_cluster ~seed:48 () in
  check "at-most-once replies" true (Deploy.total_replies deploy <= report.Loadgen.sent)

let test_store_drains_after_quiesce () =
  (* The unordered/ordered body store is garbage collected: after load
     stops and GC windows elapse, it returns to (near) empty. *)
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config params) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:30_000.
      ~workload:(Service.sample (Service.spec ())) ~seed:49 ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 30) ());
  Deploy.quiesce deploy ~extra:(Timebase.ms 400) ();
  Array.iter
    (fun node -> check "store drained by GC" true (Hnode.store_size node < 32))
    deploy.Deploy.nodes

(* --- exactly-once (RIFL-style completion records) --------------------- *)

let test_exactly_once_under_loss () =
  (* 5% receive loss + client retries with the same rid: every request is
     eventually answered, and no operation executes twice. *)
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    { p with Hnode.features = { p.Hnode.features with Hnode.loss_prob = 0.05 } }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let writes = ref 0 in
  let workload _rng =
    incr writes;
    Op.Kv (Hovercraft_apps.Kvstore.Rpush ("journal", string_of_int !writes))
  in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:15_000. ~workload
      ~retry:(Timebase.us 500, 8) ~seed:70 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 60) () in
  Deploy.quiesce deploy ~extra:(Timebase.ms 100) ();
  check "retries happened" true (Loadgen.retried gen > 0);
  check_int "nothing permanently lost" 0 report.Loadgen.lost;
  check "replicas consistent" true (Deploy.consistent deploy);
  (* The journal list must contain every write exactly once. *)
  let node = deploy.Deploy.nodes.(1) in
  check "journal has one entry per write, none duplicated" true
    (Hnode.applied_index node >= report.Loadgen.sent)

let test_duplicate_requests_not_reexecuted () =
  (* Without loss, aggressive retries must not inflate execution counts:
     completion records answer the duplicates. *)
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config params) in
  let count = ref 0 in
  let workload _rng =
    incr count;
    Op.Kv (Hovercraft_apps.Kvstore.Rpush ("log", string_of_int !count))
  in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:5_000. ~workload
      ~retry:(Timebase.us 5, 3) (* far below actual latency: every request retries *)
      ~seed:71 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 40) () in
  Deploy.quiesce deploy ();
  check "every request retried" true (Loadgen.retried gen >= report.Loadgen.sent);
  (* List length on any replica equals unique requests, not requests+retries. *)
  let node = deploy.Deploy.nodes.(0) in
  let log_len = Hnode.applied_index node in
  (* applied = unique writes + election no-op, not sends+retries *)
  check "no duplicate execution" true (log_len <= report.Loadgen.sent + 4)

(* --- read leases -------------------------------------------------------- *)

let lease_params () =
  let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  {
    p with
    Hnode.features =
      { p.Hnode.features with Hnode.read_mode = Hnode.Leader_leases };
  }

let test_leases_serve_reads_on_leader () =
  let deploy = Deploy.create (Deploy.config (lease_params ())) in
  let spec = Service.spec ~read_fraction:1.0 () in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:20_000.
      ~workload:(Service.sample spec) ~seed:72 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 30) () in
  check "reads answered" true (report.Loadgen.completed > report.Loadgen.sent * 9 / 10);
  (* All replies come from the leader; followers never execute reads. *)
  let leader = Option.get (Deploy.leader deploy) in
  check "leader served everything" true
    (Hnode.replies_sent leader >= report.Loadgen.completed);
  Array.iter
    (fun node ->
      if Hnode.id node <> Hnode.id leader then
        check "followers idle on lease reads" true (Hnode.executed_ops node < 16))
    deploy.Deploy.nodes;
  (* Lease reads bypass the log entirely. *)
  check "log stays empty" true (Hnode.log_length leader < 16)

let test_leases_expire_without_quorum () =
  (* Kill both followers: the lease lapses and the leader must stop
     answering reads rather than serve potentially stale data. *)
  let deploy = Deploy.create (Deploy.config (lease_params ())) in
  Hnode.kill deploy.Deploy.nodes.(1);
  Hnode.kill deploy.Deploy.nodes.(2);
  Deploy.quiesce deploy ~extra:(Timebase.ms 10) ();
  let spec = Service.spec ~read_fraction:1.0 () in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:5_000.
      ~workload:(Service.sample spec) ~target:(Addr.Group Addr.cluster_group)
      ~seed:73 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 20) () in
  check_int "no reads served without a quorum lease" 0 report.Loadgen.completed

let test_lease_reads_see_writes () =
  (* Writes go through consensus; subsequent lease reads must observe
     them. *)
  let deploy = Deploy.create (Deploy.config (lease_params ())) in
  let phase = ref 0 in
  let workload _rng =
    incr phase;
    if !phase <= 200 then Op.Kv (Hovercraft_apps.Kvstore.Put ("k", "v"))
    else Op.Kv (Hovercraft_apps.Kvstore.Get "k")
  in
  let gen =
    Loadgen.create deploy ~clients:1 ~rate_rps:20_000. ~workload ~seed:74 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 30) () in
  Deploy.quiesce deploy ();
  check "mixed run completes" true
    (report.Loadgen.completed > report.Loadgen.sent * 9 / 10);
  let leader = Option.get (Deploy.leader deploy) in
  check "writes committed" true (Hnode.applied_index leader >= 200)

(* --- unrestricted requests via the R2P2 router ------------------------- *)

let test_router_balances_unrestricted_reads () =
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config ~router_bound:16 params) in
  let spec = Service.spec ~read_fraction:1.0 () in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:30_000.
      ~workload:(Service.sample spec) ~unrestricted_reads:true ~seed:80 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 40) () in
  Deploy.quiesce deploy ();
  check "served" true (report.Loadgen.completed > report.Loadgen.sent * 9 / 10);
  (* Bypasses consensus entirely: the log holds only election no-ops. *)
  check "log untouched by unrestricted reads" true
    (Hnode.log_length deploy.Deploy.nodes.(0) < 8);
  (* And the work spreads over all three servers. *)
  Array.iter
    (fun node ->
      check "every server executes a share" true
        (Hnode.executed_ops node > report.Loadgen.completed / 6))
    deploy.Deploy.nodes;
  let router = Option.get deploy.Deploy.router in
  check "router forwarded everything" true
    (Router.forwarded router >= report.Loadgen.completed)

let test_router_feedback_credits () =
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config ~router_bound:4 params) in
  let spec = Service.spec ~read_fraction:1.0 () in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:10_000.
      ~workload:(Service.sample spec) ~unrestricted_reads:true ~seed:81 ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 30) ());
  Deploy.quiesce deploy ();
  let router = Option.get deploy.Deploy.router in
  (* After the drain every credit returned: queues are empty. *)
  for i = 0 to 2 do
    check_int "queue drained" 0 (Router.outstanding router i)
  done

let test_router_mixed_with_replicated () =
  (* Replicated writes and unrestricted reads share the cluster: writes
     stay consistent, reads stay cheap. *)
  let params = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
  let deploy = Deploy.create (Deploy.config ~router_bound:16 params) in
  let count = ref 0 in
  let workload _rng =
    incr count;
    if !count mod 2 = 0 then
      Op.Kv (Hovercraft_apps.Kvstore.Get (Printf.sprintf "k%d" (!count mod 5)))
    else
      Op.Kv
        (Hovercraft_apps.Kvstore.Put
           (Printf.sprintf "k%d" (!count mod 5), string_of_int !count))
  in
  let gen =
    Loadgen.create deploy ~clients:2 ~rate_rps:20_000. ~workload
      ~unrestricted_reads:true ~seed:82 ()
  in
  let report = Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 40) () in
  Deploy.quiesce deploy ();
  check "mixed load served" true
    (report.Loadgen.completed > report.Loadgen.sent * 9 / 10);
  check "writes replicated consistently" true (Deploy.consistent deploy);
  (* Roughly half the requests (the writes) went through the log. *)
  let log_len = Hnode.log_length deploy.Deploy.nodes.(0) in
  check "only writes ordered" true
    (log_len < (report.Loadgen.sent * 6 / 10) && log_len > report.Loadgen.sent / 3)


let extension_suite =
  [
    Alcotest.test_case "exactly-once under loss" `Slow test_exactly_once_under_loss;
    Alcotest.test_case "duplicates not re-executed" `Slow
      test_duplicate_requests_not_reexecuted;
    Alcotest.test_case "leases serve reads on leader" `Slow
      test_leases_serve_reads_on_leader;
    Alcotest.test_case "leases expire without quorum" `Slow
      test_leases_expire_without_quorum;
    Alcotest.test_case "lease reads see writes" `Slow test_lease_reads_see_writes;
    Alcotest.test_case "router balances unrestricted reads" `Slow
      test_router_balances_unrestricted_reads;
    Alcotest.test_case "router feedback credits" `Slow test_router_feedback_credits;
    Alcotest.test_case "router mixed with replicated" `Slow
      test_router_mixed_with_replicated;
  ]


let suite =
  [
    Alcotest.test_case "committed prefixes agree" `Slow test_committed_prefix_agreement;
    Alcotest.test_case "committed prefixes agree across failover" `Slow
      test_committed_prefix_after_failover;
    Alcotest.test_case "read-only executes exactly once" `Slow
      test_read_only_executes_exactly_once;
    Alcotest.test_case "read-write executes everywhere" `Slow
      test_read_write_executes_everywhere;
    Alcotest.test_case "aggregated mode engages" `Slow test_aggregated_mode_engages;
    Alcotest.test_case "leader message complexity (Table 1)" `Slow
      test_leader_message_complexity;
    Alcotest.test_case "bounded queue limits failover loss" `Slow
      test_bounded_queue_limits_failover_loss;
    Alcotest.test_case "at-most-once replies" `Slow test_no_reply_duplication;
    Alcotest.test_case "body store drains after quiesce" `Slow
      test_store_drains_after_quiesce;
  ]
  @ extension_suite

