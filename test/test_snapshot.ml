(* Tests for the snapshot subsystem: checkpointing, compaction past
   follower progress, the chunked Install_snapshot transfer (resumption
   after drops and leader changes), dump/restore/recover of compacted
   logs, and the cluster-level catch-up paths (restart and add_node via
   install instead of replay) under the snapshot-aware history checker. *)

open Hovercraft_sim
open Hovercraft_core
open Hovercraft_cluster
module Node = Hovercraft_raft.Node
module Log = Hovercraft_raft.Log
module Types = Hovercraft_raft.Types
module Snapshot = Hovercraft_raft.Snapshot
module Service = Hovercraft_apps.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* A netless mini-harness for the transfer protocol: like Raft_harness
   but with per-node delivery blocking and a per-message drop predicate,
   so tests can strand a follower, stall a transfer at a chosen offset,
   and watch exactly which chunks flow. Snapshot payload = int marker. *)

type h = {
  nodes : (int, int) Node.t array;
  bag : (int * (int, int) Types.message) Queue.t;
  installed : int array;  (* last installed snapshot marker per node *)
  mutable blocked : int list;  (* node ids that receive nothing *)
  mutable next_cmd : int;
}

let chunk_bytes = 100
let snap_size = 1_000 (* 10 chunks *)

let mk n =
  {
    nodes =
      Array.init n (fun id ->
          Node.create
            {
              Node.id;
              peers = Array.init (n - 1) (fun i -> if i < id then i else i + 1);
              batch_max = 8;
              eager_commit_notify = false;
              snap_chunk_bytes = chunk_bytes;
            }
            ~noop:(-1));
    bag = Queue.create ();
    installed = Array.make n 0;
    blocked = [];
    next_cmd = 0;
  }

let rec feed h i input =
  List.iter
    (function
      | Node.Send (dst, msg) -> Queue.push (dst, msg) h.bag
      | Node.Commit_advanced c -> feed h i (Node.Applied_up_to c)
      | Node.Snapshot_installed meta ->
          h.installed.(i) <- meta.Snapshot.data
      | _ -> ())
    (Node.handle h.nodes.(i) input)

(* Deliver everything in flight; [drop dst msg] inspects (and may veto)
   each delivery. Blocked destinations never receive. *)
let drain ?(drop = fun _ _ -> false) h =
  let steps = ref 0 in
  while (not (Queue.is_empty h.bag)) && !steps < 100_000 do
    incr steps;
    let dst, msg = Queue.pop h.bag in
    if (not (List.mem dst h.blocked)) && not (drop dst msg) then
      feed h dst (Node.Receive msg)
  done

let elect h i =
  feed h i Node.Election_timeout;
  drain h;
  check "election won" true (Node.role h.nodes.(i) = Node.Leader)

let commit_one h i =
  feed h i (Node.Client_command h.next_cmd);
  h.next_cmd <- h.next_cmd + 1;
  drain h;
  feed h i Node.Heartbeat_timeout;
  drain h

(* Checkpoint node [i] at its applied index and compact fully. *)
let checkpoint h i ~marker =
  let nd = h.nodes.(i) in
  let idx = Node.applied_index nd in
  let last_term = (Log.get (Node.log nd) idx).Types.term in
  Node.set_snapshot nd
    (Snapshot.make ~last_idx:idx ~last_term ~members:[ 0; 1; 2 ]
       ~size:snap_size ~data:marker);
  let base = Node.compact nd ~retain:0 in
  check_int "compacted to the checkpoint" idx base;
  idx

(* Stranded leader + stranded follower: elect 0, strand 2, commit load. *)
let strand_follower () =
  let h = mk 3 in
  elect h 0;
  h.blocked <- [ 2 ];
  for _ = 1 to 20 do
    commit_one h 0
  done;
  h

(* Record the offsets of install chunks delivered to [dst]. *)
let record_offsets dst offsets = fun d m ->
  (match m with
  | Types.Install_snapshot { offset; _ } when d = dst ->
      offsets := offset :: !offsets
  | _ -> ());
  false

(* ------------------------------------------------------------------ *)
(* Node-level: the transfer protocol itself                            *)

let test_compaction_past_crashed_follower () =
  let h = strand_follower () in
  let n0 = h.nodes.(0) and n2 = h.nodes.(2) in
  let snap_idx = checkpoint h 0 ~marker:42 in
  (* Compaction did not wait for the stranded follower. *)
  check "base advanced past follower progress" true
    (Node.match_index_of n0 2 < Log.base (Node.log n0));
  h.blocked <- [];
  let offsets = ref [] in
  feed h 0 Node.Heartbeat_timeout;
  drain h ~drop:(record_offsets 2 offsets);
  check_int "follower installed the image" 42 h.installed.(2);
  check_int "follower snapshot at the checkpoint" snap_idx
    (Node.snapshot_index n2);
  check_int "follower log spliced at the checkpoint" snap_idx
    (Log.base (Node.log n2));
  check "every chunk exactly once, in order" true
    (List.rev !offsets
    = List.init (snap_size / chunk_bytes) (fun i -> i * chunk_bytes));
  (* Entry replication resumes after the covered prefix. *)
  commit_one h 0;
  check_int "follower back on the entry path" (Log.last_index (Node.log n0))
    (Log.last_index (Node.log n2));
  check_int "follower applied it all" (Node.applied_index n0)
    (Node.applied_index n2)

let test_dropped_chunk_resumes_at_offset () =
  let h = strand_follower () in
  let snap_idx = checkpoint h 0 ~marker:42 in
  h.blocked <- [];
  (* Lose the chunk at offset 300 once: the transfer stalls (one chunk in
     flight), the leader's heartbeat retransmits it, and the transfer
     resumes from 300 — not from 0. *)
  let dropped = ref false in
  let stall d m =
    match m with
    | Types.Install_snapshot { offset = 300; _ } when d = 2 && not !dropped ->
        dropped := true;
        true
    | _ -> false
  in
  feed h 0 Node.Heartbeat_timeout;
  drain h ~drop:stall;
  check "chunk was dropped" true !dropped;
  check_int "transfer stalled, nothing installed" 0 h.installed.(2);
  let offsets = ref [] in
  feed h 0 Node.Heartbeat_timeout;
  drain h ~drop:(record_offsets 2 offsets);
  check_int "follower installed after resume" 42 h.installed.(2);
  check_int "follower snapshot at the checkpoint" snap_idx
    (Node.snapshot_index h.nodes.(2));
  check "resumed from the dropped offset, not from 0" true
    (List.rev !offsets = [ 300; 400; 500; 600; 700; 800; 900 ])

(* Lose every chunk at offset >= 300 sent by [src] to node 2. *)
let stall_from src = fun d m ->
  match m with
  | Types.Install_snapshot { leader; offset; _ } ->
      leader = src && d = 2 && offset >= 300
  | _ -> false

let test_leader_change_resumes_same_identity () =
  let h = strand_follower () in
  (* Both up-to-date nodes checkpoint the same prefix: the identity
     (last_idx, last_term) is equal, so a mid-transfer leader change may
     resume the transfer instead of restarting it. *)
  let snap_idx = checkpoint h 0 ~marker:42 in
  let snap_idx' = checkpoint h 1 ~marker:43 in
  check_int "same checkpoint index on both" snap_idx snap_idx';
  h.blocked <- [];
  feed h 0 Node.Heartbeat_timeout;
  drain h ~drop:(stall_from 0);
  check_int "transfer incomplete under the old leader" 0 h.installed.(2);
  (* Leadership moves. The new leader has no per-follower transfer state,
     but the follower's ack advertises the 300 contiguous bytes it already
     holds, so the new leader skips straight there: offsets 100 and 200
     are never retransmitted. *)
  let offsets = ref [] in
  feed h 1 Node.Election_timeout;
  drain h ~drop:(record_offsets 2 offsets);
  feed h 1 Node.Heartbeat_timeout;
  drain h ~drop:(record_offsets 2 offsets);
  check "follower installed across the leader change" true
    (h.installed.(2) <> 0);
  check_int "follower snapshot at the checkpoint" snap_idx
    (Node.snapshot_index h.nodes.(2));
  check "early chunks not retransmitted (offset flow control)" true
    (not (List.mem 100 !offsets) && not (List.mem 200 !offsets));
  check "the stalled chunk was delivered by the new leader" true
    (List.mem 300 !offsets);
  commit_one h 1;
  check_int "follower back on the entry path"
    (Log.last_index (Node.log h.nodes.(1)))
    (Log.last_index (Node.log h.nodes.(2)))

let test_leader_change_restarts_superseded_transfer () =
  let h = strand_follower () in
  let snap0 = checkpoint h 0 ~marker:42 in
  h.blocked <- [];
  feed h 0 Node.Heartbeat_timeout;
  drain h ~drop:(stall_from 0);
  check_int "transfer incomplete under the old leader" 0 h.installed.(2);
  (* The cluster moves on while the follower is stranded again; the next
     leader checkpoints a LONGER prefix, so its snapshot supersedes the
     half-received one — different identity, no resumption. *)
  h.blocked <- [ 2 ];
  commit_one h 0;
  let snap1 = checkpoint h 1 ~marker:43 in
  check "new checkpoint covers more" true (snap1 > snap0);
  h.blocked <- [];
  let offsets = ref [] in
  feed h 1 Node.Election_timeout;
  drain h ~drop:(record_offsets 2 offsets);
  feed h 1 Node.Heartbeat_timeout;
  drain h ~drop:(record_offsets 2 offsets);
  check_int "follower installed the superseding image" 43 h.installed.(2);
  check_int "follower snapshot at the new checkpoint" snap1
    (Node.snapshot_index h.nodes.(2));
  (* The stale 300-byte partial bought nothing: the new identity's
     transfer ran from offset 0, every chunk in order. *)
  check "superseded transfer restarted from offset 0" true
    (List.rev !offsets
    = List.init (snap_size / chunk_bytes) (fun i -> i * chunk_bytes));
  commit_one h 1;
  check_int "follower back on the entry path"
    (Log.last_index (Node.log h.nodes.(1)))
    (Log.last_index (Node.log h.nodes.(2)))

let test_dump_restore_recover_compacted () =
  let h = strand_follower () in
  let snap_idx = checkpoint h 0 ~marker:42 in
  let n0 = h.nodes.(0) in
  commit_one h 0;
  (* dump carries the base and the retained suffix *)
  let d = Node.dump n0 in
  let info = Node.dump_info d in
  check_int "dump base is the checkpoint" snap_idx info.Node.i_base;
  check_int "dump carries only the suffix"
    (Log.last_index (Node.log n0) - snap_idx)
    (List.length info.Node.i_entries);
  let cfg =
    {
      Node.id = 0;
      peers = [| 1; 2 |];
      batch_max = 8;
      eager_commit_notify = false;
      snap_chunk_bytes = chunk_bytes;
    }
  in
  let r = Node.restore cfg ~noop:(-1) d in
  check_int "restored base" (Log.base (Node.log n0)) (Log.base (Node.log r));
  check_int "restored snapshot index" snap_idx (Node.snapshot_index r);
  check_int "restored last index" (Log.last_index (Node.log n0))
    (Log.last_index (Node.log r));
  check "dump/restore roundtrips" true (Node.compare_dump (Node.dump r) d = 0);
  (* Crash-restart: the snapshot is part of the durable state and the
     commit floor must not sink below the applied (= checkpointed) prefix. *)
  Node.recover r;
  check "recovered as follower" true (Node.role r = Node.Follower);
  check_int "snapshot survives recovery" snap_idx (Node.snapshot_index r);
  check "commit floored at applied" true (Node.commit_index r >= snap_idx)

(* ------------------------------------------------------------------ *)
(* Cluster-level: catch-up via install instead of replay               *)

let workload = Service.sample (Service.spec ~read_fraction:0.5 ())

(* Mirror the CLI's chaos params (bounded queue); [Chaos.run] itself
   forces [flow_control] on to match the middlebox it always attaches. *)
let cluster_params ~n =
  let p = Hnode.params ~mode:Hnode.Hover_pp ~n () in
  { p with Hnode.features = { p.Hnode.features with Hnode.bound = 32 } }

(* A follower sleeps through far more load than the retention window
   holds; on restart it must come back through Install_snapshot, and the
   snapshot-aware checker must find nothing wrong. *)
let test_cluster_restart_via_install () =
  let outcome =
    Chaos.run ~params:(cluster_params ~n:5) ~rate_rps:40_000.
      ~bucket:(Timebase.ms 100) ~duration:(Timebase.ms 600) ~snapshots:400
      ~schedule:
        [
          { Chaos.at = Timebase.ms 100; event = Chaos.Kill 1 };
          { Chaos.at = Timebase.ms 400; event = Chaos.Restart 1 };
        ]
      ~workload ~seed:5 ()
  in
  Alcotest.(check (list string)) "no checker violations" []
    outcome.Chaos.violations;
  check "consistent" true outcome.Chaos.consistent;
  check "caught up" true outcome.Chaos.caught_up;
  check "log compacted past the crash window" true
    (outcome.Chaos.max_log_base > 0);
  check "restart went through install, not replay" true
    (outcome.Chaos.installs >= 1)

(* PR 3's add_node catch-up, snapshot era: the newcomer joins long after
   the retention window rolled past the beginning of history, so the
   leader cannot replay it in — it must ship the image. *)
let test_add_node_catches_up_via_install () =
  let outcome =
    Chaos.run ~params:(cluster_params ~n:5) ~rate_rps:40_000.
      ~bucket:(Timebase.ms 100) ~duration:(Timebase.ms 600) ~snapshots:400
      ~schedule:[ { Chaos.at = Timebase.ms 200; event = Chaos.Add_node } ]
      ~workload ~seed:6 ()
  in
  Alcotest.(check (list string)) "no checker violations" []
    outcome.Chaos.violations;
  check_int "newcomer in the final configuration" 6
    (List.length outcome.Chaos.final_members);
  check "newcomer caught up via install" true (outcome.Chaos.installs >= 1);
  check "caught up" true outcome.Chaos.caught_up;
  check "consistent" true outcome.Chaos.consistent

(* Random kill/restart/partition churn with an aggressive checkpoint
   interval: compaction and transfers happen constantly and nothing may
   break. *)
let test_chaos_with_aggressive_interval () =
  let outcome =
    Chaos.run ~params:(cluster_params ~n:5) ~rate_rps:40_000.
      ~bucket:(Timebase.ms 100) ~duration:(Timebase.ms 700) ~snapshots:250
      ~workload ~seed:77 ()
  in
  Alcotest.(check (list string)) "no checker violations" []
    outcome.Chaos.violations;
  check "consistent" true outcome.Chaos.consistent;
  check "caught up" true outcome.Chaos.caught_up;
  check "exactly once" true outcome.Chaos.exactly_once_ok;
  check "compaction actually ran" true (outcome.Chaos.max_log_base > 0)

(* The preload counter is part of the durable application state: a node
   that acquires its state through Install_snapshot (here a newcomer that
   joined long after compaction rolled past history's start, so replay is
   impossible) must inherit the donor's preloaded count — otherwise its
   [executed_ops - preloaded] accounting is off by the seed size and the
   history checker's expected-ops math breaks. Restart of a preloaded
   node must likewise keep the counter. *)
let test_preloaded_rides_snapshots () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    {
      p with
      Hnode.seed = 12;
      features =
        {
          p.Hnode.features with
          Hnode.snapshot_interval = 200;
          log_retain = 200;
        };
    }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let preload =
    List.init 50 (fun i ->
        Hovercraft_apps.Op.Kv
          (Hovercraft_apps.Kvstore.Put (Printf.sprintf "seed%03d" i, "v")))
  in
  Array.iter (fun n -> Hnode.preload n preload) deploy.Deploy.nodes;
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:40_000. ~workload ~seed:12 ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 200) ());
  (* Newcomer: joins with empty state, far behind the retention window. *)
  let id = Deploy.add_node deploy in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) ());
  Deploy.quiesce deploy ~extra:(Timebase.ms 200) ();
  let newcomer = deploy.Deploy.nodes.(id) in
  check "newcomer came up via install" true
    (Hnode.installs_received newcomer >= 1);
  check_int "newcomer inherits the preload count" 50 (Hnode.preloaded newcomer);
  (* Crash-restart of an original member: the counter survives too. *)
  Deploy.kill_node deploy 1;
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 100) ());
  Deploy.restart_node deploy 1;
  Deploy.quiesce deploy ~extra:(Timebase.ms 200) ();
  check_int "restart keeps the preload count" 50
    (Hnode.preloaded deploy.Deploy.nodes.(1));
  check "replicas consistent" true (Deploy.consistent deploy)

(* The legacy (pre-snapshot) history checker scans full logs from index
   1; on a compacted log those scans would pass vacuously, so it must
   refuse loudly — and the snapshot-aware checker must handle the same
   deployment. Also pins the Hnode observability surface. *)
let test_legacy_checker_rejects_compacted_logs () =
  let params =
    let p = Hnode.params ~mode:Hnode.Hover_pp ~n:3 () in
    {
      p with
      Hnode.seed = 9;
      features =
        {
          p.Hnode.features with
          Hnode.snapshot_interval = 200;
          log_retain = 200;
        };
    }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:40_000. ~workload ~seed:9 ()
  in
  ignore (Loadgen.run gen ~warmup:0 ~duration:(Timebase.ms 200) ());
  Deploy.quiesce deploy ();
  let n0 = deploy.Deploy.nodes.(0) in
  check "node checkpointed" true (Hnode.snapshots_taken n0 > 0);
  check "snapshot index advanced" true (Hnode.snapshot_index n0 > 0);
  check "log compacted" true (Hnode.log_base n0 > 0);
  check "legacy checker fails fast on a compacted log" true
    (try
       ignore (Chaos.check deploy ~completed_writes:[]);
       false
     with Invalid_argument _ -> true);
  let violations, _, _, _, consistent =
    Chaos.check ~snapshots:true deploy ~completed_writes:[]
  in
  Alcotest.(check (list string)) "snapshot-aware checker passes" [] violations;
  check "replicas consistent" true consistent

let suite =
  [
    Alcotest.test_case "compaction past crashed follower" `Quick
      test_compaction_past_crashed_follower;
    Alcotest.test_case "dropped chunk resumes at offset" `Quick
      test_dropped_chunk_resumes_at_offset;
    Alcotest.test_case "leader change resumes same-identity transfer" `Quick
      test_leader_change_resumes_same_identity;
    Alcotest.test_case "leader change restarts superseded transfer" `Quick
      test_leader_change_restarts_superseded_transfer;
    Alcotest.test_case "dump/restore/recover compacted log" `Quick
      test_dump_restore_recover_compacted;
    Alcotest.test_case "restart rejoins via install" `Slow
      test_cluster_restart_via_install;
    Alcotest.test_case "add_node catches up via install" `Slow
      test_add_node_catches_up_via_install;
    Alcotest.test_case "chaos with aggressive interval" `Slow
      test_chaos_with_aggressive_interval;
    Alcotest.test_case "preload counter rides snapshots" `Slow
      test_preloaded_rides_snapshots;
    Alcotest.test_case "legacy checker rejects compacted logs" `Quick
      test_legacy_checker_rejects_compacted_logs;
  ]
