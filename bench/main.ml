(* The benchmark harness.

   Running with no arguments regenerates every table and figure of the
   paper's evaluation (§7) on the simulator, then runs Bechamel
   microbenchmarks of the hot data structures so the per-operation costs
   backing the simulation are measured on this machine rather than
   guessed.

     dune exec bench/main.exe                  # everything, fast windows
     dune exec bench/main.exe -- fig9 fig13    # a subset
     dune exec bench/main.exe -- --full all    # longer measurement windows
     dune exec bench/main.exe -- micro         # microbenchmarks only
     dune exec bench/main.exe -- shardscale    # kRPS@SLO vs shard count

   JSON artifacts (the observability snapshot) default to _build/ or the
   temp dir; --out PATH overrides. *)

open Hovercraft_sim
open Hovercraft_cluster
module Rnode = Hovercraft_raft.Node
module Rlog = Hovercraft_raft.Log
module Rtypes = Hovercraft_raft.Types
module K = Hovercraft_apps.Kvstore
module R2p2 = Hovercraft_r2p2.R2p2
module Jbsq = Hovercraft_r2p2.Jbsq
module Core = Hovercraft_core

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let bench_heap () =
  let h = Heap.create () in
  let rng = Rng.create 1 in
  Bechamel.Staged.stage (fun () ->
      for i = 0 to 63 do
        Heap.push h ~key:(Rng.int rng 1_000_000) ~seq:i i
      done;
      for _ = 0 to 63 do
        ignore (Heap.pop h)
      done)

let bench_engine_event () =
  Bechamel.Staged.stage (fun () ->
      let e = Engine.create () in
      for i = 1 to 64 do
        Engine.at e i ignore
      done;
      Engine.run e)

let bench_rng () =
  let rng = Rng.create 2 in
  Bechamel.Staged.stage (fun () -> ignore (Rng.int rng 1000))

let bench_log_append () =
  Bechamel.Staged.stage (fun () ->
      let log = Rlog.create () in
      for _ = 1 to 64 do
        ignore (Rlog.append log { Rtypes.term = 1; cmd = 0 })
      done;
      ignore (Rlog.slice log ~lo:1 ~hi:64))

let bench_unordered () =
  let clock = ref 0 in
  let store =
    Core.Unordered.create ~now:(fun () -> !clock) ~gc_unordered:1_000_000
      ~gc_ordered:1_000_000 ()
  in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      let rid =
        { R2p2.id = !i; src_addr = Hovercraft_net.Addr.Client 0; src_port = 0 }
      in
      Core.Unordered.add store rid Hovercraft_apps.Op.Nop;
      ignore (Core.Unordered.mark_ordered store rid);
      Core.Unordered.remove store rid)

let bench_jbsq_pick () =
  let q = Jbsq.create Jbsq.Jbsq ~bound:64 ~n:9 ~rng:(Rng.create 3) in
  Bechamel.Staged.stage (fun () ->
      match Jbsq.pick q with
      | Some i ->
          Jbsq.assign q i;
          Jbsq.complete q i
      | None -> ())

let bench_kv_scan =
  let store = K.create () in
  let () =
    for i = 1 to 100 do
      ignore
        (K.execute store
           (K.Insert { thread = "t"; record = [ ("f", string_of_int i) ] }))
    done
  in
  fun () ->
    Bechamel.Staged.stage (fun () ->
        ignore (K.execute store (K.Scan { thread = "t"; limit = 10 })))

let bench_kv_insert () =
  let store = K.create () in
  let i = ref 0 in
  Bechamel.Staged.stage (fun () ->
      incr i;
      ignore
        (K.execute store
           (K.Insert
              {
                thread = Printf.sprintf "t%d" (!i mod 64);
                record = [ ("f", "0123456789abcdef") ];
              })))

let bench_raft_roundtrip () =
  (* One command through a netless 3-node Raft: append, replicate, ack,
     commit. Measures the pure consensus CPU cost per batch. *)
  Bechamel.Staged.stage (fun () ->
      let mk id =
        Rnode.create
          {
            Rnode.id;
            peers = Array.init 2 (fun i -> if i < id then i else i + 1);
            batch_max = 64;
            eager_commit_notify = false;
            snap_chunk_bytes = Hovercraft_net.Wire.snap_chunk_bytes;
          }
          ~noop:(-1)
      in
      let nodes = Array.init 3 mk in
      let bag = Queue.create () in
      let feed i input =
        List.iter
          (function
            | Rnode.Send (dst, msg) -> Queue.push (dst, msg) bag
            | _ -> ())
          (Rnode.handle nodes.(i) input)
      in
      feed 0 Rnode.Election_timeout;
      for _ = 1 to 16 do
        feed 0 (Rnode.Client_command 1)
      done;
      while not (Queue.is_empty bag) do
        let dst, msg = Queue.pop bag in
        feed dst (Rnode.Receive msg)
      done)

let microbenchmarks () =
  let open Bechamel in
  let test =
    Test.make_grouped ~name:"micro" ~fmt:"%s/%s"
      [
        Test.make ~name:"heap push+pop x64" (bench_heap ());
        Test.make ~name:"engine 64 events" (bench_engine_event ());
        Test.make ~name:"rng int" (bench_rng ());
        Test.make ~name:"raft log append+slice x64" (bench_log_append ());
        Test.make ~name:"unordered add/mark/remove" (bench_unordered ());
        Test.make ~name:"jbsq pick/assign/complete (n=9)" (bench_jbsq_pick ());
        Test.make ~name:"kv scan(10)" (bench_kv_scan ());
        Test.make ~name:"kv insert" (bench_kv_insert ());
        Test.make ~name:"raft 3-node commit x16 (netless)" (bench_raft_roundtrip ());
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== Microbenchmarks (per call, this machine) ===\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (v :: _) -> v | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-42s %10.1f ns\n" name ns)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Observability snapshot: a short lossy HovercRaft run whose JSON
   roll-up (per-node metrics, latency histograms, recovery counters,
   fabric link stats, trace ring) is written next to the bench output.
   Doubles as an end-to-end smoke test of the obs layer: the run loses
   multicast deliveries on purpose and must still converge. *)

let obs_snapshot ~file () =
  let params =
    let p = Core.Hnode.params ~mode:Core.Hnode.Hover ~n:3 () in
    {
      p with
      Core.Hnode.seed = 7;
      features = { p.Core.Hnode.features with Core.Hnode.loss_prob = 0.02 };
    }
  in
  let deploy = Deploy.create (Deploy.config params) in
  let spec =
    Hovercraft_apps.Service.spec ~service:(Dist.Fixed (Timebase.us 1)) ()
  in
  let gen =
    Loadgen.create deploy ~clients:4 ~rate_rps:50_000.
      ~workload:(Hovercraft_apps.Service.sample spec)
      ~retry:(Timebase.ms 2, 8) ~seed:7 ()
  in
  let report =
    Loadgen.run gen ~warmup:(Timebase.ms 2) ~duration:(Timebase.ms 20) ()
  in
  Deploy.quiesce deploy ();
  let json =
    match Deploy.snapshot deploy with
    | Hovercraft_obs.Json.Obj fields ->
        Hovercraft_obs.Json.Obj (fields @ [ ("loadgen", Loadgen.snapshot gen) ])
    | other -> other
  in
  let oc = open_out file in
  output_string oc (Hovercraft_obs.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\n=== Observability snapshot ===\n\
    \  lossy run: %d sent, %d completed, %d lost, %d client retries\n\
    \  pending recoveries after quiesce: %d (must be 0)\n\
    \  written to %s\n"
    report.Loadgen.sent report.Loadgen.completed report.Loadgen.lost
    (Loadgen.retried gen)
    (Deploy.total_pending_recoveries deploy)
    file

(* ------------------------------------------------------------------ *)
(* shardscale: kRPS under a p99 SLO as the shard count grows on a FIXED
   per-host budget (Shard_experiment.shardscale), YCSB-B. *)

let shardscale ~quality () =
  Printf.printf
    "\n\
     === shardscale: YCSB-B kRPS under 500us p99 SLO vs shard count ===\n\
     (per-host NIC/switch budget fixed; each group runs on a 1/S slice)\n";
  let results = Hovercraft_shard.Shard_experiment.shardscale ~quality () in
  let base =
    match results with (1, knee) :: _ -> knee | _ -> nan
  in
  let rows =
    List.map
      (fun (s, knee) ->
        [
          string_of_int s;
          Printf.sprintf "%.0f" (knee /. 1e3);
          (if Float.is_nan base || base <= 0. then "-"
           else Printf.sprintf "%.2fx" (knee /. base));
        ])
      results
  in
  Table.print ~header:[ "shards"; "kRPS@SLO"; "vs S=1" ] rows

(* ------------------------------------------------------------------ *)
(* applyscale: YCSB-A kRPS under the p99 SLO as the per-node application
   thread count K grows (Experiment.applyscale). Write-heavy load is
   apply-loop-bound, so the knee should climb with K until the network
   thread takes over; the "ok" column asserts replica fingerprints agreed
   after the confirmation run — the determinism check for the
   dependency-aware scheduler. *)

let applyscale ~quality () =
  Printf.printf
    "\n\
     === applyscale: YCSB-A kRPS under 500us p99 SLO vs apply threads ===\n\
     (3-node HovercRaft, 40G links, same seed at every K)\n";
  let results = Experiment.applyscale ~quality () in
  let base =
    match results with
    | { Experiment.threads = 1; knee_rps; _ } :: _ -> knee_rps
    | _ -> nan
  in
  let rows =
    List.map
      (fun (p : Experiment.applyscale_point) ->
        [
          string_of_int p.threads;
          Printf.sprintf "%.0f" (p.knee_rps /. 1e3);
          (if Float.is_nan base || base <= 0. then "-"
           else Printf.sprintf "%.2fx" (p.knee_rps /. base));
          string_of_int p.stalls;
          (if p.consistent then "yes" else "NO");
        ])
      results
  in
  Table.print
    ~header:[ "K"; "kRPS@SLO"; "vs K=1"; "stalls"; "replicas agree" ] rows;
  if List.exists (fun (p : Experiment.applyscale_point) -> not p.consistent)
       results
  then begin
    Printf.eprintf "applyscale: replica fingerprints diverged\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* netscale: YCSB-B kRPS under the p99 SLO as the net path goes from the
   monolithic thread to the compartmentalized pipeline
   (Experiment.netscale), then applyscale re-run under the pipelined net
   to show the K>2 apply knee unlocked. Exits nonzero if the pipelined
   knee falls below the serial knee or any replica set diverges. *)

let netscale ~quality () =
  Printf.printf
    "\n\
     === netscale: YCSB-B kRPS under 500us p99 SLO vs net stages ===\n\
     (3-node HovercRaft++, 40G links, same seed at every stage count)\n";
  let results = Experiment.netscale ~quality () in
  let serial_knee, pipelined_knee =
    match results with
    | [] -> (nan, nan)
    | first :: _ ->
        let last = List.nth results (List.length results - 1) in
        (first.Experiment.knee_rps, last.Experiment.knee_rps)
  in
  let rows =
    List.map
      (fun (p : Experiment.netscale_point) ->
        let busy =
          String.concat " "
            (List.map
               (fun (name, ns) -> Printf.sprintf "%s=%dms" name (ns / 1_000_000))
               p.stage_busy)
        in
        [
          string_of_int p.stages;
          Printf.sprintf "%.0f" (p.knee_rps /. 1e3);
          (if Float.is_nan serial_knee || serial_knee <= 0. then "-"
           else Printf.sprintf "%.2fx" (p.knee_rps /. serial_knee));
          (if p.consistent then "yes" else "NO");
          busy;
        ])
      results
  in
  Table.print
    ~header:
      [ "stages"; "kRPS@SLO"; "vs serial"; "replicas agree"; "leader stage busy" ]
    rows;
  Printf.printf
    "\n=== applyscale under the pipelined net (net_stages=4) ===\n";
  let ap = Experiment.applyscale ~quality ~net_stages:4 ~threads:[ 2; 4; 8 ] () in
  let rows =
    List.map
      (fun (p : Experiment.applyscale_point) ->
        [
          string_of_int p.threads;
          Printf.sprintf "%.0f" (p.knee_rps /. 1e3);
          string_of_int p.stalls;
          (if p.consistent then "yes" else "NO");
        ])
      ap
  in
  Table.print ~header:[ "K"; "kRPS@SLO"; "stalls"; "replicas agree" ] rows;
  let diverged =
    List.exists (fun (p : Experiment.netscale_point) -> not p.consistent) results
    || List.exists (fun (p : Experiment.applyscale_point) -> not p.consistent) ap
  in
  if diverged then begin
    Printf.eprintf "netscale: replica fingerprints diverged\n";
    exit 1
  end;
  if pipelined_knee < serial_knee then begin
    Printf.eprintf
      "netscale: pipelined knee (%.0f) below serial knee (%.0f)\n"
      pipelined_knee serial_knee;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* backendscale: the ordering-backend shootout — fault-free SLO knee,
   p99 across a mid-run kill, and outage length, per backend
   (Experiment.backendscale). Exits nonzero if any surviving replica
   set diverged. *)

let backendscale ~quality () =
  Printf.printf
    "\n\
     === backendscale: ordering-backend shootout (YCSB-A, 3 nodes, 40G) ===\n\
     (kill at 40%% of the window: the raft leader / one rabia replica)\n";
  let results = Experiment.backendscale ~quality () in
  let rows =
    List.map
      (fun (p : Experiment.backendscale_point) ->
        [
          Hovercraft_ordering.Ordering.kind_name p.backend;
          Printf.sprintf "%.0f" (p.knee_rps /. 1e3);
          Printf.sprintf "%.0f" p.kill_p99_us;
          Printf.sprintf "%.0f" p.recovery_ms;
          (if p.consistent then "yes" else "NO");
        ])
      results
  in
  Table.print
    ~header:
      [ "backend"; "kRPS@SLO"; "kill-run p99 us"; "recovery ms"; "replicas agree" ]
    rows;
  if
    List.exists
      (fun (p : Experiment.backendscale_point) -> not p.consistent)
      results
  then begin
    Printf.eprintf "backendscale: surviving replicas diverged\n";
    exit 1
  end

(* The CI proxy: one fixed-rate point per backend, no knee search. Both
   backends must sustain the probe rate under the SLO on the shootout
   cell — a smoke check that the rabia path stays viable, not a
   performance claim. *)
let backendscale_sanity () =
  let rate = 100_000. in
  let slo_us = 500. in
  List.iter
    (fun backend ->
      let r =
        Experiment.run_point ~quality:Experiment.Fast
          (Experiment.backendscale_setup ~seed:23 ~backend)
          ~rate_rps:rate
      in
      Printf.printf
        "backendscale sanity [%s] @%.0f kRPS: goodput %.0f kRPS, p99 %.0f us \
         (SLO %.0f us), lost %d\n"
        (Hovercraft_ordering.Ordering.kind_name backend)
        (rate /. 1e3)
        (r.Loadgen.goodput_rps /. 1e3)
        r.Loadgen.p99_us slo_us r.Loadgen.lost;
      if
        r.Loadgen.p99_us > slo_us
        || r.Loadgen.goodput_rps < 0.97 *. rate
        || r.Loadgen.lost > 0
      then begin
        Printf.eprintf "backendscale sanity: %s backend failed the probe\n"
          (Hovercraft_ordering.Ordering.kind_name backend);
        exit 1
      end)
    [ Hovercraft_core.Hnode.Raft; Hovercraft_core.Hnode.Rabia ]

(* A cheap CI proxy for the knee comparison: drive both net paths well
   past the serial knee and compare goodput — the pipelined path must
   sustain at least what the monolithic one does. Two fixed-rate points
   instead of two bisection searches. *)
(* Single-point CI check, much cheaper than the full knee search. The
   probe rate sits between the measured knees (serial ~1880 kRPS,
   pipelined ~2460 kRPS), where the two net paths must diverge. Goodput
   does not discriminate here — open-loop load completes late rather
   than dropping within the window — so the check is on p99: the serial
   path must blow through the 500 us SLO while the pipelined path still
   meets it. *)
let netscale_sanity () =
  let rate = 2_200_000. in
  let slo_us = 500. in
  let p99 stages =
    let r =
      Experiment.run_point ~quality:Experiment.Fast
        (Experiment.netscale_setup ~seed:42 ~stages)
        ~rate_rps:rate
    in
    r.Loadgen.p99_us
  in
  let serial = p99 1 and pipelined = p99 4 in
  Printf.printf
    "netscale sanity @%.0f kRPS offered: serial p99 %.0f us, pipelined p99 \
     %.0f us (SLO %.0f us)\n"
    (rate /. 1e3) serial pipelined slo_us;
  if pipelined > slo_us then begin
    Printf.eprintf "netscale sanity: pipelined net misses the SLO at %.0f kRPS\n"
      (rate /. 1e3);
    exit 1
  end;
  if serial <= slo_us then begin
    Printf.eprintf
      "netscale sanity: serial net meets the SLO at %.0f kRPS — probe rate no \
       longer discriminates, recalibrate\n"
      (rate /. 1e3);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* autoscale: the control-plane figure. One seeded hotspot-drift +
   node-loss scenario, controller off vs on; the JSON artifact carries
   both per-window p99 series, the action log and the safety summary.
   Exits nonzero if the baseline holds the SLO (the scenario no longer
   discriminates), the controller run misses it, or any checker trips. *)

let autoscale ~out () =
  let module Cexp = Hovercraft_control.Experiment in
  let module Cscn = Hovercraft_control.Scenario in
  Printf.printf
    "\n\
     === autoscale: SLO under hotspot drift + node loss, controller off/on ===\n\
     (4 co-located groups on 1 GbE hosts, 2M-user drifting zipf, YCSB-B)\n";
  let r = Cexp.autoscale ~seed:11 () in
  Cexp.print Format.std_formatter r;
  let oc = open_out out in
  output_string oc (Hovercraft_obs.Json.to_string_pretty (Cexp.to_json r));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  figure written to %s\n" out;
  if not (Cscn.checkers_green r.Cexp.off && Cscn.checkers_green r.Cexp.on_)
  then begin
    Printf.eprintf "autoscale: a safety checker tripped\n";
    exit 1
  end;
  if Cscn.slo_held ~fraction:r.Cexp.slo_fraction r.Cexp.off then begin
    Printf.eprintf
      "autoscale: baseline holds the SLO — scenario no longer discriminates\n";
    exit 1
  end;
  if not (Cscn.slo_held ~fraction:r.Cexp.slo_fraction r.Cexp.on_) then begin
    Printf.eprintf "autoscale: controller run misses the SLO\n";
    exit 1
  end

(* Artifacts land under _build/ (or the temp dir when there is no build
   tree), never the repository root; --out overrides. *)
let default_out name =
  let dir =
    if Sys.file_exists "_build" && Sys.is_directory "_build" then "_build"
    else Filename.get_temp_dir_name ()
  in
  Filename.concat dir name

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quality =
    if List.mem "--full" args then Experiment.Full else Experiment.Fast
  in
  let rec extract_out acc = function
    | "--out" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> extract_out (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let out_opt, args = extract_out [] args in
  let args = List.filter (fun a -> a <> "--full") args in
  let out =
    match out_opt with
    | Some p -> p
    | None -> default_out "hovercraft_snapshot.json"
  in
  let autoscale_out =
    match out_opt with
    | Some p -> p
    | None -> default_out "hovercraft_autoscale.json"
  in
  let special =
    [ "micro"; "snapshot"; "shardscale"; "applyscale"; "netscale";
      "netscale-sanity"; "backendscale"; "backendscale-sanity"; "autoscale" ]
  in
  let wanted_figures, wants =
    match args with
    | [] ->
        ( Figures.names |> List.filter (fun n -> n <> "all"),
          [ "micro"; "snapshot" ] )
    | names ->
        ( List.filter (fun n -> not (List.mem n special)) names,
          List.filter (fun n -> List.mem n special) names )
  in
  let want n = List.mem n wants in
  List.iter
    (fun name ->
      match Figures.by_name name with
      | Some run -> run ~quality ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (special @ Figures.names)))
    wanted_figures;
  if want "shardscale" then shardscale ~quality ();
  if want "applyscale" then applyscale ~quality ();
  if want "netscale" then netscale ~quality ();
  if want "netscale-sanity" then netscale_sanity ();
  if want "backendscale" then backendscale ~quality ();
  if want "backendscale-sanity" then backendscale_sanity ();
  if want "autoscale" then autoscale ~out:autoscale_out ();
  if want "snapshot" then obs_snapshot ~file:out ();
  if want "micro" then microbenchmarks ()
