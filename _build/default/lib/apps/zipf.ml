type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let sum = ref 0. in
  for i = 1 to n do
    sum := !sum +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta =
    (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
    /. (1. -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta; zeta2 = zeta2 }

let sample t rng =
  let u = Hovercraft_sim.Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1. then 0
  else if uz < 1. +. Float.pow 0.5 t.theta then 1
  else begin
    let v =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha
    in
    min (t.n - 1) (max 0 (int_of_float v))
  end

let n t = t.n
