(** The synthetic service of §7: configurable CPU service time, request and
    reply sizes, and read-only fraction. Used by every microbenchmark to
    exercise one bottleneck at a time. *)

open Hovercraft_sim

type spec = {
  service : Dist.t;  (** CPU execution time distribution. *)
  req_bytes : int;
  rep_bytes : int;
  read_fraction : float;  (** Probability a request is read-only. *)
}

val spec :
  ?service:Dist.t ->
  ?req_bytes:int ->
  ?rep_bytes:int ->
  ?read_fraction:float ->
  unit ->
  spec
(** Defaults are the paper's baseline microbenchmark: S = 1 µs fixed,
    24-byte requests, 8-byte replies, no read-only operations. *)

val sample : spec -> Rng.t -> Op.t
(** Draw one operation. *)

val pp_spec : Format.formatter -> spec -> unit
