(** Zipfian integer generator over [0, n), YCSB-style.

    Uses the rejection-inversion-free method of Gray et al. ("Quickly
    generating billion-record synthetic databases", SIGMOD'94), the same
    algorithm the YCSB reference implementation uses, so key popularity
    matches the benchmark's intent. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [theta] is the skew (default 0.99, YCSB's default). [n] must be
    positive. *)

val sample : t -> Hovercraft_sim.Rng.t -> int
(** Draw a value in [0, n); 0 is the most popular. *)

val n : t -> int
