type spec = {
  threads : int;
  scan_fraction : float;
  max_scan : int;
  fields : int;
  field_bytes : int;
  theta : float;
}

let workload_e =
  {
    threads = 1000;
    scan_fraction = 0.95;
    max_scan = 10;
    fields = 10;
    field_bytes = 100;
    theta = 0.99;
  }

type t = { spec : spec; rng : Hovercraft_sim.Rng.t; zipf : Zipf.t; mutable seq : int }

let create ?(spec = workload_e) ~seed () =
  {
    spec;
    rng = Hovercraft_sim.Rng.create seed;
    zipf = Zipf.create ~theta:spec.theta ~n:spec.threads ();
    seq = 0;
  }

let thread_key t = Printf.sprintf "thread%05d" (Zipf.sample t.zipf t.rng)

let make_record t =
  t.seq <- t.seq + 1;
  let base = t.seq in
  List.init t.spec.fields (fun i ->
      ( Printf.sprintf "field%d" i,
        (* Deterministic per-record content: replicas must agree. *)
        String.init t.spec.field_bytes (fun j ->
            Char.chr (97 + ((base + i + j) mod 26))) ))

let insert t = Op.Kv (Kvstore.Insert { thread = thread_key t; record = make_record t })

let scan t =
  Op.Kv (Kvstore.Scan { thread = thread_key t; limit = t.spec.max_scan })

let preload_ops t n = List.init n (fun _ -> insert t)

let next t =
  if Hovercraft_sim.Rng.bool t.rng t.spec.scan_fraction then scan t else insert t

let spec_of t = t.spec

module Kv = struct
  type nonrec t = {
    read_fraction : float;
    records : int;
    rng : Hovercraft_sim.Rng.t;
    zipf : Zipf.t;
    mutable seq : int;
  }

  let create ~read_fraction ?(records = 10_000) ?(theta = 0.99) ~seed () =
    if read_fraction < 0. || read_fraction > 1. then
      invalid_arg "Ycsb.Kv.create: read_fraction outside [0,1]";
    {
      read_fraction;
      records;
      rng = Hovercraft_sim.Rng.create seed;
      zipf = Zipf.create ~theta ~n:records ();
      seq = 0;
    }

  let key t = Printf.sprintf "user%08d" (Zipf.sample t.zipf t.rng)

  (* A 1 kB record value, deterministic per sequence number so replicas
     agree on replayed streams. *)
  let value t =
    t.seq <- t.seq + 1;
    let base = t.seq in
    String.init 1000 (fun j -> Char.chr (97 + ((base + j) mod 26)))

  let preload_ops t =
    List.init t.records (fun i ->
        Op.Kv (Kvstore.Put (Printf.sprintf "user%08d" i, value t)))

  let next t =
    if Hovercraft_sim.Rng.bool t.rng t.read_fraction then
      Op.Kv (Kvstore.Get (key t))
    else Op.Kv (Kvstore.Put (key t, value t))

  let workload_a ~seed = create ~read_fraction:0.5 ~seed ()
  let workload_b ~seed = create ~read_fraction:0.95 ~seed ()
  let workload_c ~seed = create ~read_fraction:1.0 ~seed ()
end
