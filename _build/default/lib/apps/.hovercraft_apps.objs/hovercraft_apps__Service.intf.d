lib/apps/service.mli: Dist Format Hovercraft_sim Op Rng
