lib/apps/op.ml: Format Hashtbl Hovercraft_sim Kvstore Timebase
