lib/apps/op.mli: Format Hovercraft_sim Kvstore Timebase
