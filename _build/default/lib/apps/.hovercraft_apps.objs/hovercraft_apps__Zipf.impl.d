lib/apps/zipf.ml: Float Hovercraft_sim
