lib/apps/ycsb.ml: Char Hovercraft_sim Kvstore List Op Printf String Zipf
