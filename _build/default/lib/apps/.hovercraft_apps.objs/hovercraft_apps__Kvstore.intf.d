lib/apps/kvstore.mli: Hovercraft_sim
