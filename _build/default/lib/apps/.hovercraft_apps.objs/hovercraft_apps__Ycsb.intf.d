lib/apps/ycsb.mli: Op
