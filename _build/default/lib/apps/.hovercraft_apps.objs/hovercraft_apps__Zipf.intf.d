lib/apps/zipf.mli: Hovercraft_sim
