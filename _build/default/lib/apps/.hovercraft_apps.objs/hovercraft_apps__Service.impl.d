lib/apps/service.ml: Dist Format Hovercraft_sim Op Rng Timebase
