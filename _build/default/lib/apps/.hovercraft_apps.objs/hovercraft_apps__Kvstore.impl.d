lib/apps/kvstore.ml: Array Hashtbl List String
