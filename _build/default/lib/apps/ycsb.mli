(** YCSB workload generators, centered on workload E (§7.5).

    YCSB-E models threaded conversations: INSERT posts a 1 kB record (10
    fields of 100 bytes) to a thread, SCAN reads the most recent posts of a
    thread (at most 10 in the paper's configuration). Operations are 95%
    SCAN / 5% INSERT; thread popularity is zipfian. *)

type spec = {
  threads : int;  (** Number of conversation threads. *)
  scan_fraction : float;  (** Probability an operation is a SCAN. *)
  max_scan : int;  (** Maximum records returned by a SCAN. *)
  fields : int;  (** Fields per record. *)
  field_bytes : int;  (** Bytes per field value. *)
  theta : float;  (** Zipfian skew for thread selection. *)
}

val workload_e : spec
(** The paper's configuration: 95:5 SCAN:INSERT, 10×100-byte fields,
    max_scan 10, zipfian 0.99 over 1000 threads. *)

type t

val create : ?spec:spec -> seed:int -> unit -> t

val preload_ops : t -> int -> Op.t list
(** [preload_ops t n] returns [n] INSERTs that populate threads before
    measurement, so early SCANs have data to return. *)

val next : t -> Op.t
(** Draw the next operation of the workload. *)

val spec_of : t -> spec

(** {1 The core YCSB workloads}

    Workloads A/B/C over 1 kB records (read = fetch the record, update =
    overwrite one field), with zipfian key popularity — the standard mixes
    used to characterize how HovercRaft's gains depend on the read/write
    ratio: updates execute on every replica, reads only on the designated
    replier, so C scales ~N-fold while A is Amdahl-bound by its 50%
    writes. *)
module Kv : sig
  type t

  val workload_a : seed:int -> t
  (** 50% read / 50% update. *)

  val workload_b : seed:int -> t
  (** 95% read / 5% update. *)

  val workload_c : seed:int -> t
  (** 100% read. *)

  val create :
    read_fraction:float -> ?records:int -> ?theta:float -> seed:int -> unit -> t

  val preload_ops : t -> Op.t list
  (** One insert per record so reads always hit. *)

  val next : t -> Op.t
end
