(** Service-time and inter-arrival distributions.

    All samples are durations in nanoseconds. The shapes mirror the paper's
    evaluation: fixed service times for the microbenchmarks (§7.1-§7.2), a
    bimodal distribution for the scheduling experiments (§7.3-§7.4), and
    exponential inter-arrivals for the open-loop Poisson clients. *)

type t =
  | Fixed of Timebase.t  (** Deterministic duration. *)
  | Exponential of Timebase.t  (** Exponential with the given mean. *)
  | Uniform of Timebase.t * Timebase.t  (** Uniform in [lo, hi]. *)
  | Bimodal of {
      mean : Timebase.t;  (** Overall mean of the mixture. *)
      long_fraction : float;  (** Probability of drawing the long mode. *)
      ratio : float;  (** long mode = ratio * short mode. *)
    }
      (** Two-point mixture, parameterized the way the paper states it:
          "10% of the requests are 10x longer than the rest" with a given
          overall mean. *)

val mean : t -> float
(** Mean of the distribution in nanoseconds. *)

val sample : t -> Rng.t -> Timebase.t
(** Draw one duration; always >= 0. *)

val bimodal_modes : mean:Timebase.t -> long_fraction:float -> ratio:float -> float * float
(** [(short, long)] mode durations (ns) solving
    [(1-p)*short + p*ratio*short = mean]. *)

val pp : Format.formatter -> t -> unit
