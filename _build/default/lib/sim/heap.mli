(** Growable binary min-heap keyed by [(int, int)] pairs.

    The primary key is the event timestamp; the secondary key is a strictly
    increasing sequence number so that events scheduled for the same instant
    pop in FIFO order, which keeps simulations deterministic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Fresh empty heap. [capacity] is the initial backing-array size. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** Insert an element. O(log n). *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum [(key, seq, value)]. O(log n). *)

val peek_key : 'a t -> int option
(** Key of the minimum element without removing it. O(1). *)

val clear : 'a t -> unit
(** Remove all elements (does not shrink the backing array). *)
