type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let create ?(capacity = 256) () =
  let capacity = max capacity 16 in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity (Obj.magic 0);
    size = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let n = Array.length t.keys in
  let n' = n * 2 in
  let keys = Array.make n' 0 and seqs = Array.make n' 0 in
  let vals = Array.make n' t.vals.(0) in
  Array.blit t.keys 0 keys 0 n;
  Array.blit t.seqs 0 seqs 0 n;
  Array.blit t.vals 0 vals 0 n;
  t.keys <- keys;
  t.seqs <- seqs;
  t.vals <- vals

(* [lt] orders by (key, seq) lexicographically. *)
let lt t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) and s = t.seqs.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.seqs.(j) <- s;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~key ~seq v =
  if t.size = Array.length t.keys then grow t;
  let i = t.size in
  t.keys.(i) <- key;
  t.seqs.(i) <- seq;
  t.vals.(i) <- v;
  t.size <- t.size + 1;
  sift_up t i

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and seq = t.seqs.(0) and v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    (* Release the value slot so the GC can reclaim popped closures. *)
    t.vals.(t.size) <- Obj.magic 0;
    Some (key, seq, v)
  end

let peek_key t = if t.size = 0 then None else Some t.keys.(0)

let clear t =
  for i = 0 to t.size - 1 do
    t.vals.(i) <- Obj.magic 0
  done;
  t.size <- 0
