type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (int64 t) }

let float t =
  (* 53 high bits -> uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is tiny vs 2^62 in all
     simulator uses, so bias is negligible (< 2^-40). The shift by 2 keeps
     the value within OCaml's 63-bit signed int range. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let bool t p = float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
