type t =
  | Fixed of Timebase.t
  | Exponential of Timebase.t
  | Uniform of Timebase.t * Timebase.t
  | Bimodal of { mean : Timebase.t; long_fraction : float; ratio : float }

let bimodal_modes ~mean ~long_fraction ~ratio =
  let p = long_fraction in
  let short = float_of_int mean /. ((1. -. p) +. (p *. ratio)) in
  (short, short *. ratio)

let mean = function
  | Fixed d -> float_of_int d
  | Exponential m -> float_of_int m
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.
  | Bimodal { mean; _ } -> float_of_int mean

let sample t rng =
  let v =
    match t with
    | Fixed d -> float_of_int d
    | Exponential m ->
        let u = 1.0 -. Rng.float rng in
        -.float_of_int m *. log u
    | Uniform (lo, hi) -> float_of_int lo +. (Rng.float rng *. float_of_int (hi - lo))
    | Bimodal { mean; long_fraction; ratio } ->
        let short, long = bimodal_modes ~mean ~long_fraction ~ratio in
        if Rng.bool rng long_fraction then long else short
  in
  max 0 (int_of_float (Float.round v))

let pp fmt = function
  | Fixed d -> Format.fprintf fmt "fixed(%a)" Timebase.pp d
  | Exponential m -> Format.fprintf fmt "exp(mean=%a)" Timebase.pp m
  | Uniform (lo, hi) -> Format.fprintf fmt "uniform(%a,%a)" Timebase.pp lo Timebase.pp hi
  | Bimodal { mean; long_fraction; ratio } ->
      Format.fprintf fmt "bimodal(mean=%a,p=%.2f,ratio=%.1f)" Timebase.pp mean
        long_fraction ratio
