lib/sim/dist.ml: Float Format Rng Timebase
