lib/sim/rng.mli:
