lib/sim/stats.mli: Timebase
