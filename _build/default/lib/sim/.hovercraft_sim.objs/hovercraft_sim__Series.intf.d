lib/sim/series.mli: Timebase
