lib/sim/heap.ml: Array Obj
