lib/sim/series.ml: Hashtbl List Stats Timebase
