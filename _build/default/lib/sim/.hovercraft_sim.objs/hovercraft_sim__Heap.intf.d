lib/sim/heap.mli:
