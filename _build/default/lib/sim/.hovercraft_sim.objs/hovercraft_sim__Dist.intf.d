lib/sim/dist.mli: Format Rng Timebase
