lib/sim/engine.mli: Timebase
