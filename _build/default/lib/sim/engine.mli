(** Discrete-event simulation engine.

    The engine owns the simulated clock and a priority queue of pending
    events. Components schedule closures at absolute or relative times;
    [run] pops events in (time, insertion-order) order and executes them.
    Everything is single-threaded and deterministic. *)

type t

val create : unit -> t
(** A fresh engine with the clock at 0 and no pending events. *)

val now : t -> Timebase.t
(** Current simulated time. *)

val pending : t -> int
(** Number of events still queued. *)

val at : t -> Timebase.t -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute [time]. Scheduling in the
    past raises [Invalid_argument]. *)

val after : t -> Timebase.t -> (unit -> unit) -> unit
(** [after t delay f] schedules [f] to run [delay] from now. *)

type timer
(** A cancellable timer handle. *)

val timer_after : t -> Timebase.t -> (unit -> unit) -> timer
(** Like [after] but returns a handle; a cancelled timer's closure never
    runs. *)

val cancel : timer -> unit
(** Cancel a timer. Idempotent; cancelling an already-fired timer is a
    no-op. *)

val run : ?until:Timebase.t -> t -> unit
(** Execute events in order until the queue is empty, or until the next
    event would be strictly after [until] (the clock is then left at
    [until]). *)

val step : t -> bool
(** Execute exactly one event. Returns [false] when the queue is empty. *)

val stop : t -> unit
(** Request [run] to return after the current event completes. *)
