type event = { run : unit -> unit; mutable cancelled : bool }
type timer = event

type t = {
  mutable now : Timebase.t;
  queue : event Heap.t;
  mutable seq : int;
  mutable stopping : bool;
}

let create () =
  { now = 0; queue = Heap.create (); seq = 0; stopping = false }

let now t = t.now
let pending t = Heap.length t.queue

let schedule t time f =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Engine.at: time %d is before now %d" time t.now);
  let ev = { run = f; cancelled = false } in
  Heap.push t.queue ~key:time ~seq:t.seq ev;
  t.seq <- t.seq + 1;
  ev

let at t time f = ignore (schedule t time f)
let after t delay f = ignore (schedule t (t.now + delay) f)
let timer_after t delay f = schedule t (t.now + delay) f
let cancel ev = ev.cancelled <- true

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _, ev) ->
      t.now <- time;
      if not ev.cancelled then ev.run ();
      true

let run ?until t =
  t.stopping <- false;
  let horizon = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if t.stopping then ()
    else
      match Heap.peek_key t.queue with
      | None -> if horizon < max_int then t.now <- max t.now horizon
      | Some k when k > horizon -> t.now <- max t.now horizon
      | Some _ ->
          ignore (step t);
          loop ()
  in
  loop ()

let stop t = t.stopping <- true
