(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from its own [Rng.t]
    seeded from the experiment seed, so simulations replay bit-identically
    and components can be added or removed without perturbing each other's
    streams. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. Equal seeds give equal
    streams. *)

val split : t -> t
(** Derive an independent generator; the parent advances by one step. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)
