type t = { width : Timebase.t; table : (int, int * Stats.t) Hashtbl.t }

type bucket = {
  start : Timebase.t;
  count : int;
  p99 : Timebase.t option;
  mean : float;
}

let create ~bucket () =
  if bucket <= 0 then invalid_arg "Series.create: bucket must be positive";
  { width = bucket; table = Hashtbl.create 64 }

let slot t at = at / t.width

let entry t at =
  let key = slot t at in
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = (0, Stats.create ()) in
      Hashtbl.replace t.table key e;
      e

let add t ~at v =
  let n, stats = entry t at in
  Stats.add stats v;
  Hashtbl.replace t.table (slot t at) (n + 1, stats)

let mark t ~at =
  let n, stats = entry t at in
  Hashtbl.replace t.table (slot t at) (n + 1, stats)

let buckets t =
  Hashtbl.fold (fun k (n, stats) acc -> (k, n, stats) :: acc) t.table []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (k, n, stats) ->
         {
           start = k * t.width;
           count = n;
           p99 = (if Stats.count stats = 0 then None else Some (Stats.percentile stats 0.99));
           mean = Stats.mean stats;
         })
