(** Time-bucketed series recorder.

    Used for the failure-timeline experiment (Fig. 12): throughput and tail
    latency are reported per wall-clock bucket so that the effect of a
    leader kill is visible as a function of time. *)

type t

val create : bucket:Timebase.t -> unit
  -> t
(** [create ~bucket ()] groups samples into consecutive windows of width
    [bucket]. *)

val add : t -> at:Timebase.t -> Timebase.t -> unit
(** [add t ~at v] records sample [v] (e.g. a latency) in the bucket
    containing time [at]. *)

val mark : t -> at:Timebase.t -> unit
(** Record an event with no value (e.g. a NACKed request) in the bucket
    containing [at]; it contributes to [count] only. *)

type bucket = {
  start : Timebase.t;  (** Bucket start time. *)
  count : int;  (** Events recorded in the bucket. *)
  p99 : Timebase.t option;  (** p99 of valued samples, if any. *)
  mean : float;  (** Mean of valued samples (0 when none). *)
}

val buckets : t -> bucket list
(** All non-empty buckets in time order. *)
