(** Latency recording and exact percentiles.

    The load generator records one duration per completed request; at the
    end of a run we compute exact order statistics (the sample sizes are
    small enough that sorting beats sketching, and exactness matters when
    asserting tail-latency shapes in tests). *)

type t

val create : unit -> t

val add : t -> Timebase.t -> unit
(** Record one sample (a duration in ns). *)

val count : t -> int
val mean : t -> float
(** Mean in ns; 0 if empty. *)

val max_sample : t -> Timebase.t
(** Largest sample; 0 if empty. *)

val percentile : t -> float -> Timebase.t
(** [percentile t 0.99] is the exact p99 (nearest-rank) in ns. Raises
    [Invalid_argument] on an empty recorder or a rank outside [0, 1]. *)

val merge : t -> t -> t
(** Union of two sample sets. *)

val clear : t -> unit

(** Streaming counter with mean/variance (Welford), used where retaining
    samples would be wasteful. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end
