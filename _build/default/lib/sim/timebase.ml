type t = int

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let of_us_f x = int_of_float (Float.round (x *. 1_000.))
let to_us_f t = float_of_int t /. 1_000.
let to_s_f t = float_of_int t /. 1e9

let pp fmt t =
  let ft = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (ft /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (ft /. 1e6)
  else Format.fprintf fmt "%.3fs" (ft /. 1e9)
