(** Simulated time.

    All simulation timestamps and durations are integers in nanoseconds.
    An [int] on a 64-bit platform holds ~292 simulated years, far beyond any
    experiment horizon, and integer arithmetic keeps the event queue exact
    and deterministic. *)

type t = int
(** A point in simulated time, or a duration, in nanoseconds. *)

val ns : int -> t
(** [ns x] is [x] nanoseconds. *)

val us : int -> t
(** [us x] is [x] microseconds. *)

val ms : int -> t
(** [ms x] is [x] milliseconds. *)

val s : int -> t
(** [s x] is [x] seconds. *)

val of_us_f : float -> t
(** [of_us_f x] converts a fractional microsecond duration, rounding to the
    nearest nanosecond. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds. *)

val to_s_f : t -> float
(** [to_s_f t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an adaptive unit (ns, µs, ms or s). *)
