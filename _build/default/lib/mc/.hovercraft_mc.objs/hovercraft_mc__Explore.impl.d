lib/mc/explore.ml: Array Format List Map Model Queue
