lib/mc/explore.mli: Format Model
