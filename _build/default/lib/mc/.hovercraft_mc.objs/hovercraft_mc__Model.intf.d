lib/mc/model.mli: Format Hovercraft_raft
