lib/mc/model.ml: Array Format Hashtbl Hovercraft_raft List Printf Stdlib
