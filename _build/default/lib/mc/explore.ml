type stats = {
  states : int;
  transitions : int;
  max_depth : int;
  truncated : bool;
}

type outcome =
  | Verified of stats
  | Violation of {
      error : string;
      trace : string list;
      state : string;
      stats : stats;
    }

module State_map = Map.Make (struct
  type t = Model.state

  let compare = Model.compare_state
end)

type node_info = { parent : int; label : string }

let run ?(max_states = 200_000) cfg =
  let initial = Model.initial cfg in
  (* Arena of visited states for trace reconstruction. *)
  let arena = ref [| (initial, { parent = -1; label = "<init>" }) |] in
  let arena_len = ref 1 in
  let push state info =
    if !arena_len = Array.length !arena then begin
      let bigger = Array.make (2 * !arena_len) (state, info) in
      Array.blit !arena 0 bigger 0 !arena_len;
      arena := bigger
    end;
    !arena.(!arena_len) <- (state, info);
    incr arena_len;
    !arena_len - 1
  in
  let visited = ref (State_map.singleton initial 0) in
  let frontier = Queue.create () in
  Queue.push (0, 0) frontier;
  let transitions = ref 0 in
  let max_depth = ref 0 in
  let truncated = ref false in
  let trace_of idx =
    let rec back idx acc =
      if idx <= 0 then acc
      else
        let _, info = !arena.(idx) in
        back info.parent (info.label :: acc)
    in
    back idx []
  in
  let stats () =
    {
      states = !arena_len;
      transitions = !transitions;
      max_depth = !max_depth;
      truncated = !truncated;
    }
  in
  let violation = ref None in
  (match Model.check cfg initial with
  | Error e ->
      violation :=
        Some
          (Violation
             {
               error = e;
               trace = [];
               state = Format.asprintf "%a" Model.pp_state initial;
               stats = stats ();
             })
  | Ok _ -> ());
  while !violation = None && not (Queue.is_empty frontier) do
    let idx, depth = Queue.pop frontier in
    if depth > !max_depth then max_depth := depth;
    let state, _ = !arena.(idx) in
    let succs = Model.successors cfg state in
    List.iter
      (fun (label, s') ->
        if !violation = None then begin
          incr transitions;
          if not (State_map.mem s' !visited) then
            if !arena_len >= max_states then truncated := true
            else begin
              let idx' = push s' { parent = idx; label } in
              visited := State_map.add s' idx' !visited;
              match Model.check cfg s' with
              | Ok _ -> Queue.push (idx', depth + 1) frontier
              | Error e ->
                  violation :=
                    Some
                      (Violation
                         {
                           error = e;
                           trace = trace_of idx';
                           state = Format.asprintf "%a" Model.pp_state s';
                           stats = stats ();
                         })
            end
        end)
      succs
  done;
  match !violation with Some v -> v | None -> Verified (stats ())

let pp_stats fmt s =
  Format.fprintf fmt "%d states, %d transitions, depth %d%s" s.states
    s.transitions s.max_depth
    (if s.truncated then " (truncated by state budget)" else "")

let pp_outcome fmt = function
  | Verified s -> Format.fprintf fmt "VERIFIED: %a" pp_stats s
  | Violation { error; trace; state; stats } ->
      Format.fprintf fmt "VIOLATION: %s@.  after: %a@.  state: %s@.  trace:@."
        error pp_stats stats state;
      List.iter (fun l -> Format.fprintf fmt "    %s@." l) trace
