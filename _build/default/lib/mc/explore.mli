(** Breadth-first explicit-state exploration with counterexample traces. *)

type stats = {
  states : int;  (** Distinct states visited. *)
  transitions : int;  (** Successor edges evaluated. *)
  max_depth : int;  (** BFS depth reached. *)
  truncated : bool;  (** Hit the state budget before exhausting the space. *)
}

type outcome =
  | Verified of stats  (** Every reachable state (within bounds) is safe. *)
  | Violation of {
      error : string;  (** Which invariant broke. *)
      trace : string list;  (** Transition labels from the initial state. *)
      state : string;  (** Rendering of the bad state. *)
      stats : stats;
    }

val run : ?max_states:int -> Model.config -> outcome
(** Explore from [Model.initial]. [max_states] (default 200_000) bounds
    the visited set; hitting it yields [Verified] with
    [truncated = true]. *)

val pp_outcome : Format.formatter -> outcome -> unit
