let rtrim s =
  let n = String.length s in
  let rec go i = if i > 0 && s.[i - 1] = ' ' then go (i - 1) else i in
  String.sub s 0 (go n)

let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let line row =
    List.mapi
      (fun c w -> pad (Option.value ~default:"" (List.nth_opt row c)) w)
      widths
    |> String.concat "  " |> rtrim
  in
  let sep = List.map (fun w -> String.make w '-') widths |> String.concat "  " in
  String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"

let print ~header rows = print_string (render ~header rows)

let fmt_krps rps =
  let k = rps /. 1e3 in
  if k >= 100. then Printf.sprintf "%.0f" k else Printf.sprintf "%.1f" k

let fmt_us us = Printf.sprintf "%.1f" us
