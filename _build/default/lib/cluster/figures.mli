(** Reproduction of every table and figure in the paper's evaluation (§7).

    Each function builds the exact deployments and workloads the paper
    describes, runs them on the simulator, and prints the corresponding
    rows/series. Absolute numbers come from the calibrated simulator (see
    DESIGN.md §2/§5); the shapes — who wins, by what factor, where the
    knees fall — are the reproduction targets.

    All functions take a [quality] knob: [Fast] (default) regenerates every
    figure in a few minutes; [Full] uses longer measurement windows. *)

type quality = Experiment.quality

val table1 : ?quality:quality -> unit -> unit
(** Leader Rx/Tx messages per request for Raft / HovercRaft / HovercRaft++
    (N = 5), measured at low load (no batching) next to the paper's
    analytical counts. *)

val fig7 : ?quality:quality -> unit -> unit
(** Tail latency vs throughput, 4 setups, S = 1 µs, 24 B / 8 B, N = 3. *)

val fig8 : ?quality:quality -> unit -> unit
(** Max kRPS under 500 µs SLO vs request size (24/64/512 B), 4 setups. *)

val fig9 : ?quality:quality -> unit -> unit
(** Max kRPS under SLO vs cluster size (3/5/7/9), replicated setups. *)

val fig10 : ?quality:quality -> unit -> unit
(** Latency vs throughput with 6 kB replies and reply load balancing:
    UnRep vs HovercRaft++ with N = 3 and N = 5. *)

val fig11 : ?quality:quality -> unit -> unit
(** Bimodal S̄ = 10 µs, 75% read-only, N = 3: UnRep vs HovercRaft++ with
    JBSQ and RANDOM replier selection (bound 32). *)

val fig12 : ?quality:quality -> unit -> unit
(** Leader-failure timeline at fixed load with flow control: throughput,
    p99 and NACKs per time bucket. *)

val fig13 : ?quality:quality -> unit -> unit
(** YCSB-E on the Redis-like store: UnRep vs HovercRaft++ with
    N = 3/5/7. *)

val ablations : ?quality:quality -> unit -> unit
(** The design-choice ablations of {!Ablations} (not paper figures). *)

val all : ?quality:quality -> unit -> unit
(** Run everything in paper order (ablations excluded). *)

val by_name : string -> (?quality:quality -> unit -> unit) option
(** Look up an experiment by id ("table1", "fig7" .. "fig13", "ablations",
    "all"). *)

val names : string list
