lib/cluster/deploy.ml: Aggregator Array Engine Flow_control Hnode Hovercraft_core Hovercraft_net Hovercraft_sim List Option Protocol Router Seq Timebase
