lib/cluster/figures.mli: Experiment
