lib/cluster/loadgen.ml: Array Deploy Engine Hashtbl Hovercraft_apps Hovercraft_core Hovercraft_net Hovercraft_r2p2 Hovercraft_sim Protocol R2p2 Rng Stats Timebase
