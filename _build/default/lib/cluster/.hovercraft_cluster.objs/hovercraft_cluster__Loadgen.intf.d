lib/cluster/loadgen.mli: Deploy Hovercraft_apps Hovercraft_net Hovercraft_sim Rng Stats Timebase
