lib/cluster/table.ml: List Option Printf String
