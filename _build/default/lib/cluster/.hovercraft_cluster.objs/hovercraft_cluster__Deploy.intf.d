lib/cluster/deploy.mli: Aggregator Engine Flow_control Hnode Hovercraft_core Hovercraft_net Hovercraft_sim Protocol Router Timebase
