lib/cluster/failure.ml: Deploy Engine Hnode Hovercraft_core Hovercraft_sim List Loadgen Option Series Timebase
