lib/cluster/table.mli:
