lib/cluster/experiment.mli: Hnode Hovercraft_apps Hovercraft_core Hovercraft_sim Loadgen Rng Timebase
