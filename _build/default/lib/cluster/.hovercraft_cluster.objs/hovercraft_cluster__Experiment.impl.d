lib/cluster/experiment.ml: Array Deploy Float Hnode Hovercraft_apps Hovercraft_core Hovercraft_sim List Loadgen Rng Timebase
