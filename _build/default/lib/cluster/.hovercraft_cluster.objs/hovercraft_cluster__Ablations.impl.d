lib/cluster/ablations.ml: Deploy Dist Experiment Hnode Hovercraft_apps Hovercraft_core Hovercraft_r2p2 Hovercraft_sim List Loadgen Printf Table Timebase
