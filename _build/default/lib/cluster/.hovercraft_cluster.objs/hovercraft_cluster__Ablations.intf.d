lib/cluster/ablations.mli: Experiment
