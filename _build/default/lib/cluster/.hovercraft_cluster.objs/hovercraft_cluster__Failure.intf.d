lib/cluster/failure.mli: Hnode Hovercraft_apps Hovercraft_core Hovercraft_sim Rng Timebase
