lib/cluster/figures.ml: Ablations Deploy Dist Engine Experiment Failure Hnode Hovercraft_apps Hovercraft_core Hovercraft_net Hovercraft_r2p2 Hovercraft_sim List Loadgen Option Printf Table Timebase
