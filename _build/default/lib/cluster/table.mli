(** Plain-text table rendering for experiment output. *)

val render : header:string list -> string list list -> string
(** Column-aligned table with a separator under the header. *)

val print : header:string list -> string list list -> unit

val fmt_krps : float -> string
(** Render an RPS value as kRPS with sensible precision. *)

val fmt_us : float -> string
