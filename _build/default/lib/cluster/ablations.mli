(** Ablation studies for the design choices DESIGN.md calls out.

    These are not paper figures; they isolate the contribution of single
    mechanisms on top of the same workloads the evaluation uses:

    - {!bound_sweep}: the bounded-queue size B trades tail latency
      (smaller B = tighter scheduling) against lost replies on failure
      (at most B per dead node, §3.4);
    - {!batch_sweep}: append_entries batching is what keeps consensus off
      the critical path at 1 MRPS — batch 1 collapses the knee;
    - {!commit_hint}: plain HovercRaft's eager commit broadcast vs waiting
      for the next append_entries, visible as follower-replier latency at
      low load;
    - {!heartbeat_sweep}: the heartbeat period bounds both retransmission
      delay and (with commit hints off) reply latency. *)

val bound_sweep : ?quality:Experiment.quality -> unit -> unit
val batch_sweep : ?quality:Experiment.quality -> unit -> unit
val commit_hint : ?quality:Experiment.quality -> unit -> unit
val heartbeat_sweep : ?quality:Experiment.quality -> unit -> unit

val read_leases : ?quality:Experiment.quality -> unit -> unit
(** Leader leases vs HovercRaft's load-balanced ordered reads (§3.5). *)

val ycsb_mixes : ?quality:Experiment.quality -> unit -> unit
(** YCSB A/B/C: how the read/write mix bounds HovercRaft's scaling. *)

val unrestricted_reads : ?quality:Experiment.quality -> unit -> unit
(** Ordered reads vs router-balanced unrestricted (possibly stale)
    reads (§6.1). *)

val all : ?quality:Experiment.quality -> unit -> unit
