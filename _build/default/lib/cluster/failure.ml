open Hovercraft_sim
open Hovercraft_core

type bucket = {
  t_s : float;
  krps : float;
  p99_us : float option;
  nacks : int;
}

type outcome = {
  series : bucket list;
  killed_at_s : float;
  killed_node : int option;
  new_leader : int option;
  total_nacked : int;
  consistent : bool;
}

let run ?params ?(rate_rps = 165_000.) ?(flow_cap = 1000)
    ?(bucket = Timebase.ms 100) ?(duration = Timebase.s 2)
    ?(kill_after = Timebase.ms 600) ~workload ~seed () =
  let params =
    match params with Some p -> p | None -> Hnode.params ~mode:Hnode.Hover_pp ()
  in
  let deploy = Deploy.create ~flow_cap params in
  let engine = deploy.Deploy.engine in
  let t0 = Engine.now engine in
  let completions = Series.create ~bucket () in
  let nacks = Series.create ~bucket () in
  let gen =
    Loadgen.create deploy ~clients:8 ~rate_rps ~workload
      ~on_reply:(fun ~sent_at:_ ~latency ->
        Series.add completions ~at:(Engine.now engine - t0) latency)
      ~on_nack:(fun ~at -> Series.mark nacks ~at:(at - t0))
      ~seed ()
  in
  let killed = ref None in
  Engine.after engine kill_after (fun () -> killed := Deploy.kill_leader deploy);
  let report = Loadgen.run gen ~warmup:0 ~duration () in
  Deploy.quiesce deploy ();
  let nack_counts =
    List.fold_left
      (fun acc (b : Series.bucket) -> (b.start, b.count) :: acc)
      []
      (Series.buckets nacks)
  in
  let series =
    List.map
      (fun (b : Series.bucket) ->
        {
          t_s = Timebase.to_s_f b.start;
          krps = float_of_int b.count /. Timebase.to_s_f bucket /. 1e3;
          p99_us = Option.map Timebase.to_us_f b.p99;
          nacks = (try List.assoc b.start nack_counts with Not_found -> 0);
        })
      (Series.buckets completions)
  in
  {
    series;
    killed_at_s = Timebase.to_s_f kill_after;
    killed_node = !killed;
    new_leader =
      (match Deploy.leader deploy with
      | Some n -> Some (Hnode.id n)
      | None -> None);
    total_nacked = report.Loadgen.nacked;
    consistent = Deploy.consistent deploy;
  }
