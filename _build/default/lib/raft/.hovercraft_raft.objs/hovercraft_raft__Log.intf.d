lib/raft/log.mli: Types
