lib/raft/types.ml: Array Format
