lib/raft/log.ml: Array Printf Types
