lib/raft/node.ml: Array Format Hashtbl List Log Stdlib Types
