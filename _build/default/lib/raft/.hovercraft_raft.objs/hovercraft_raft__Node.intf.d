lib/raft/node.mli: Format Log Types
