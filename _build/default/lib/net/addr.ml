type t = Node of int | Client of int | Netagg | Middlebox | Router | Group of int

let equal a b =
  match (a, b) with
  | Node x, Node y | Client x, Client y | Group x, Group y -> x = y
  | Netagg, Netagg | Middlebox, Middlebox | Router, Router -> true
  | (Node _ | Client _ | Netagg | Middlebox | Router | Group _), _ -> false

let tag = function
  | Node _ -> 0
  | Client _ -> 1
  | Netagg -> 2
  | Middlebox -> 3
  | Router -> 4
  | Group _ -> 5

let index = function
  | Node i | Client i | Group i -> i
  | Netagg | Middlebox | Router -> 0

let compare a b =
  let c = compare (tag a) (tag b) in
  if c <> 0 then c else compare (index a) (index b)

let hash t = (tag t * 1_000_003) + index t

let to_string = function
  | Node i -> Printf.sprintf "node%d" i
  | Client i -> Printf.sprintf "client%d" i
  | Netagg -> "netagg"
  | Middlebox -> "middlebox"
  | Router -> "router"
  | Group i -> Printf.sprintf "mcast%d" i

let pp fmt t = Format.pp_print_string fmt (to_string t)
let cluster_group = 0
