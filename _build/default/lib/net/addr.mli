(** Network addresses.

    The simulated datacenter has four kinds of addressable endpoints plus
    multicast groups, mirroring the paper's deployment: cluster servers,
    clients, the in-network aggregator (an IP-connected device that can sit
    anywhere in the datacenter, §6.4) and the flow-control middlebox
    (§6.3). *)

type t =
  | Node of int  (** Cluster server (leader or follower), 0-based id. *)
  | Client of int  (** Load-generating client. *)
  | Netagg  (** The in-network append_entries aggregator. *)
  | Middlebox  (** Flow-control middlebox fronting the multicast group. *)
  | Router  (** R2P2 request router for non-replicated requests. *)
  | Group of int  (** IP multicast group. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val cluster_group : int
(** Well-known multicast group id for the fault-tolerance group. *)
