lib/net/addr.mli: Format
