lib/net/wire.mli: Hovercraft_sim
