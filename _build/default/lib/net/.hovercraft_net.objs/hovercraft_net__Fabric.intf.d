lib/net/fabric.mli: Addr Engine Hovercraft_sim Timebase
