lib/net/fabric.ml: Addr Engine Hashtbl Hovercraft_sim List Timebase Wire
