lib/net/cpu.mli: Engine Hovercraft_sim Timebase
