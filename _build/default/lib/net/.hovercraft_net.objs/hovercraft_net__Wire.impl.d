lib/net/wire.ml: Float
