lib/net/addr.ml: Format Printf
