lib/net/cpu.ml: Engine Hovercraft_sim Timebase
