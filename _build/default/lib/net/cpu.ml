open Hovercraft_sim

type t = {
  engine : Engine.t;
  mutable free_at : Timebase.t;
  mutable busy : Timebase.t;
  mutable halted : bool;
}

let create engine = { engine; free_at = 0; busy = 0; halted = false }

let exec t ~cost k =
  if cost < 0 then invalid_arg "Cpu.exec: negative cost";
  if not t.halted then begin
    let now = Engine.now t.engine in
    let start = max now t.free_at in
    t.free_at <- start + cost;
    t.busy <- t.busy + cost;
    Engine.at t.engine t.free_at (fun () -> if not t.halted then k ())
  end

let backlog t =
  let now = Engine.now t.engine in
  max 0 (t.free_at - now)

let busy_time t = t.busy
let halt t = t.halted <- true
let halted t = t.halted
