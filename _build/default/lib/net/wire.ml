let mtu = 1500
let frame_overhead = 64

let frames ~payload =
  if payload <= 0 then 1 else (payload + mtu - 1) / mtu

let wire_bytes ~payload =
  let n = frames ~payload in
  max payload 0 + (n * frame_overhead)

let serialize_ns ~rate_gbps ~bytes =
  (* bits / (Gbit/s) = ns *)
  let ns = float_of_int (bytes * 8) /. rate_gbps in
  max 1 (int_of_float (Float.round ns))
