open Hovercraft_sim

type policy = Jbsq | Random_choice

let pp_policy fmt = function
  | Jbsq -> Format.pp_print_string fmt "JBSQ"
  | Random_choice -> Format.pp_print_string fmt "RANDOM"

type t = {
  policy : policy;
  bound : int;
  depths : int array;
  excluded : bool array;
  rng : Rng.t;
  scratch : int array;  (* candidate buffer reused across picks *)
}

let create policy ~bound ~n ~rng =
  if bound <= 0 then invalid_arg "Jbsq.create: bound must be positive";
  if n <= 0 then invalid_arg "Jbsq.create: need at least one server";
  {
    policy;
    bound;
    depths = Array.make n 0;
    excluded = Array.make n false;
    rng;
    scratch = Array.make n 0;
  }

let n t = Array.length t.depths
let bound t = t.bound
let depth t i = t.depths.(i)
let set_excluded t i flag = t.excluded.(i) <- flag
let excluded t i = t.excluded.(i)
let eligible t i = (not t.excluded.(i)) && t.depths.(i) < t.bound

let pick t =
  match t.policy with
  | Random_choice ->
      let count = ref 0 in
      for i = 0 to n t - 1 do
        if eligible t i then begin
          t.scratch.(!count) <- i;
          incr count
        end
      done;
      if !count = 0 then None else Some t.scratch.(Rng.int t.rng !count)
  | Jbsq ->
      (* Shortest eligible queue; ties broken uniformly. *)
      let best = ref max_int and count = ref 0 in
      for i = 0 to n t - 1 do
        if eligible t i then
          if t.depths.(i) < !best then begin
            best := t.depths.(i);
            t.scratch.(0) <- i;
            count := 1
          end
          else if t.depths.(i) = !best then begin
            t.scratch.(!count) <- i;
            incr count
          end
      done;
      if !count = 0 then None else Some t.scratch.(Rng.int t.rng !count)

let assign t i =
  if not (eligible t i) then invalid_arg "Jbsq.assign: server not eligible";
  t.depths.(i) <- t.depths.(i) + 1

let complete t i =
  if t.depths.(i) <= 0 then invalid_arg "Jbsq.complete: depth already zero";
  t.depths.(i) <- t.depths.(i) - 1

let set_depth t i d =
  if d < 0 then invalid_arg "Jbsq.set_depth: negative depth";
  t.depths.(i) <- d
