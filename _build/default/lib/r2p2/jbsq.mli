(** Join-Bounded-Shortest-Queue and bounded-RANDOM selection (§3.4, §3.6).

    A selector tracks one bounded queue-depth counter per server. A server
    is eligible while its depth is below the bound; [pick] chooses among
    eligible servers — the shortest queue under [Jbsq] (ties broken
    uniformly at random for fairness), uniformly at random under [Random].
    The caller increments a depth when it delegates work ([assign]) and
    decrements it when the server reports completion ([complete]).

    HovercRaft instantiates this with depth = announced_idx − applied_idx
    per node, so a crashed node's queue fills up and it stops receiving
    reply assignments — bounding lost replies to at most the bound. *)

open Hovercraft_sim

type policy = Jbsq | Random_choice

val pp_policy : Format.formatter -> policy -> unit

type t

val create : policy -> bound:int -> n:int -> rng:Rng.t -> t
(** [n] servers, all starting at depth 0. [bound] must be positive. *)

val n : t -> int
val bound : t -> int
val depth : t -> int -> int

val set_excluded : t -> int -> bool -> unit
(** Administratively exclude a server (e.g. it is known dead); excluded
    servers are never eligible regardless of depth. *)

val excluded : t -> int -> bool

val eligible : t -> int -> bool
(** Depth below bound and not excluded. *)

val pick : t -> int option
(** Choose an eligible server per the policy; [None] when none is
    eligible (the caller must wait — the bounded-queue invariant is never
    broken, §3.4). Does not change any depth. *)

val assign : t -> int -> unit
(** Account one delegated unit of work. May push the depth to the bound but
    never beyond; raises [Invalid_argument] if the server was not
    eligible. *)

val complete : t -> int -> unit
(** Account one completed unit; depth must be positive. *)

val set_depth : t -> int -> int -> unit
(** Overwrite a depth (used when the leader learns applied_idx from an
    append_entries reply rather than counting completions one by one). *)
