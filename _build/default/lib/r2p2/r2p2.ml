type policy = Unrestricted | Replicated_req | Replicated_req_r

let policy_read_only = function
  | Replicated_req_r -> true
  | Unrestricted | Replicated_req -> false

type msg_type =
  | Request
  | Response
  | Raft_request
  | Raft_response
  | Recovery_request
  | Recovery_response
  | Agg_commit
  | Feedback
  | Nack

type req_id = { id : int; src_addr : Hovercraft_net.Addr.t; src_port : int }

let req_id_equal a b =
  a.id = b.id && a.src_port = b.src_port
  && Hovercraft_net.Addr.equal a.src_addr b.src_addr

let req_id_compare a b =
  let c = compare a.id b.id in
  if c <> 0 then c
  else
    let c = compare a.src_port b.src_port in
    if c <> 0 then c else Hovercraft_net.Addr.compare a.src_addr b.src_addr

let req_id_hash r =
  (r.id * 0x9E3779B1) lxor (r.src_port * 0x85EBCA77)
  lxor Hovercraft_net.Addr.hash r.src_addr

let pp_req_id fmt r =
  Format.fprintf fmt "%a:%d#%d" Hovercraft_net.Addr.pp r.src_addr r.src_port r.id

let header_bytes = 16

module Id_source = struct
  type t = {
    src_addr : Hovercraft_net.Addr.t;
    src_port : int;
    mutable next_id : int;
  }

  let create ~src_addr ~src_port = { src_addr; src_port; next_id = 0 }

  let next t =
    let id = t.next_id in
    t.next_id <- id + 1;
    { id; src_addr = t.src_addr; src_port = t.src_port }
end
