(** R2P2: a transport protocol with RPC semantics (Kogias et al., ATC'19),
    extended for SMR as described in HovercRaft §6.1.

    Two properties of R2P2 are load-bearing for HovercRaft:

    - every RPC is uniquely identified by the (req_id, src_ip, src_port)
      triple carried in the header, which lets followers match multicast
      request bodies against ordering metadata; and
    - the source of a reply may differ from the destination of the request,
      which lets any replica answer the client.

    The [POLICY] header field gains two values ([Replicated_req],
    [Replicated_req_r]) marking requests that must be totally ordered, and
    the message-type field gains values for Raft RPCs, recovery, the
    aggregator's commit announcement, flow-control [Feedback] and [Nack]. *)

(** Load-balancing / consistency policy requested by the client. *)
type policy =
  | Unrestricted  (** Plain R2P2 request; may be served stale, not ordered. *)
  | Replicated_req  (** Read-write: must be totally ordered and applied. *)
  | Replicated_req_r  (** Read-only: totally ordered, executed by replier only. *)

val policy_read_only : policy -> bool
(** [true] only for [Replicated_req_r]. *)

(** R2P2 message types, including the HovercRaft extensions. *)
type msg_type =
  | Request  (** Client -> service. *)
  | Response  (** Service -> client (source may differ from request dst). *)
  | Raft_request  (** Consensus RPC carried over R2P2. *)
  | Raft_response
  | Recovery_request  (** Follower asking for a missed multicast body. *)
  | Recovery_response
  | Agg_commit  (** Aggregator -> group: new commit index + credits. *)
  | Feedback  (** Reply-completion signal to the flow-control middlebox. *)
  | Nack  (** Middlebox -> client: system full, retry later. *)

(** The unique RPC identity triple (§3.2). Clients guarantee uniqueness;
    the namespace is large enough in practice. *)
type req_id = { id : int; src_addr : Hovercraft_net.Addr.t; src_port : int }

val req_id_equal : req_id -> req_id -> bool
val req_id_compare : req_id -> req_id -> int
val req_id_hash : req_id -> int
val pp_req_id : Format.formatter -> req_id -> unit

val header_bytes : int
(** Size of the R2P2 header added to every message's payload. *)

(** Client-side generator of unique request ids. *)
module Id_source : sig
  type t

  val create : src_addr:Hovercraft_net.Addr.t -> src_port:int -> t
  val next : t -> req_id
end
