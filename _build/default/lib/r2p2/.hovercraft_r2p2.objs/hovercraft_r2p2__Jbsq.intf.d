lib/r2p2/jbsq.mli: Format Hovercraft_sim Rng
