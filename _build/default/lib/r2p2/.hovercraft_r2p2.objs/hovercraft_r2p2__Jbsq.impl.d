lib/r2p2/jbsq.ml: Array Format Hovercraft_sim Rng
