lib/r2p2/r2p2.ml: Format Hovercraft_net
