lib/r2p2/r2p2.mli: Format Hovercraft_net
