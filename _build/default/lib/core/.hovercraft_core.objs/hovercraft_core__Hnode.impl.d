lib/core/hnode.ml: Array Engine Format Hashtbl Hovercraft_apps Hovercraft_net Hovercraft_r2p2 Hovercraft_raft Hovercraft_sim Jbsq List Option Printf Protocol Queue R2p2 Replier Rng Timebase Unordered
