lib/core/protocol.ml: Array Hashtbl Hovercraft_apps Hovercraft_net Hovercraft_r2p2 Hovercraft_raft R2p2
