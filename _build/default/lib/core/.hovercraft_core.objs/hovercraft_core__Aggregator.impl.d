lib/core/aggregator.ml: Array Hovercraft_net Hovercraft_raft Option Protocol
