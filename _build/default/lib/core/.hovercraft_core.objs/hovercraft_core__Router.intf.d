lib/core/router.mli: Engine Hovercraft_net Hovercraft_sim Protocol
