lib/core/flow_control.ml: Hovercraft_net Option Protocol
