lib/core/replier.mli: Hovercraft_r2p2 Hovercraft_sim Jbsq Rng
