lib/core/aggregator.mli: Engine Hovercraft_net Hovercraft_sim Protocol
