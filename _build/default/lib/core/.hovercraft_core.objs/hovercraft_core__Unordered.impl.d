lib/core/unordered.ml: Hashtbl Hovercraft_apps Hovercraft_r2p2 Hovercraft_sim List R2p2 Timebase
