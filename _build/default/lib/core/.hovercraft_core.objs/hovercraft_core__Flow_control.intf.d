lib/core/flow_control.mli: Engine Hovercraft_net Hovercraft_sim Protocol
