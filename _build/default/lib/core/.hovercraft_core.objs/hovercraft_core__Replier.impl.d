lib/core/replier.ml: Array Hovercraft_r2p2 Hovercraft_sim Jbsq Queue Rng
