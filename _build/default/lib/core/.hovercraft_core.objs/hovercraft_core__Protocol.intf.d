lib/core/protocol.mli: Hovercraft_apps Hovercraft_r2p2 Hovercraft_raft R2p2
