lib/core/router.ml: Hashtbl Hovercraft_net Hovercraft_r2p2 Hovercraft_sim Jbsq Protocol R2p2 Rng
