lib/core/hnode.mli: Engine Format Hovercraft_apps Hovercraft_net Hovercraft_r2p2 Hovercraft_raft Hovercraft_sim Jbsq Protocol Timebase
