lib/core/unordered.mli: Hovercraft_apps Hovercraft_r2p2 Hovercraft_sim R2p2 Timebase
