module Fabric = Hovercraft_net.Fabric
module Addr = Hovercraft_net.Addr
module Rtypes = Hovercraft_raft.Types

type t = {
  fabric : Protocol.payload Fabric.t;
  mutable port : Protocol.payload Fabric.port option;
  n : int;
  cluster_group : int;
  followers_group : int;
  match_reg : int array;
  completed_reg : int array;
  mutable term : int;
  mutable leader : int;
  mutable leader_last : int;
  mutable commit : int;
  mutable pending : bool;
  mutable down : bool;
  mutable forwarded : int;
  mutable commits_sent : int;
}

let quorum t = (t.n / 2) + 1

let flush t ~term ~leader =
  Array.fill t.match_reg 0 t.n 0;
  Array.fill t.completed_reg 0 t.n 0;
  t.term <- term;
  t.leader_last <- 0;
  t.commit <- 0;
  t.pending <- false;
  if leader <> t.leader then begin
    (* Rebuild the follower fan-out group around the new leader. *)
    for i = 0 to t.n - 1 do
      if i = leader then Fabric.leave t.fabric ~group:t.followers_group (Addr.Node i)
      else Fabric.join t.fabric ~group:t.followers_group (Addr.Node i)
    done;
    t.leader <- leader
  end

let transmit t ~dst payload =
  let port = Option.get t.port in
  Fabric.send t.fabric port ~dst
    ~bytes:(Protocol.payload_bytes ~with_bodies:false payload)
    payload

let send_agg_commit t =
  t.commits_sent <- t.commits_sent + 1;
  transmit t ~dst:(Addr.Group t.cluster_group)
    (Protocol.Agg_commit
       { term = t.term; commit = t.commit; applied = Array.copy t.completed_reg })

(* Largest index acknowledged by enough followers that, together with the
   leader, a quorum holds it. *)
let quorum_match t =
  let sorted = Array.copy t.match_reg in
  sorted.(t.leader) <- min_int;
  Array.sort compare sorted;
  let needed = quorum t - 1 in
  (* The needed-th largest follower match (1-based from the top). *)
  if needed = 0 then t.leader_last else sorted.(t.n - needed)

let on_append_entries t ~term ~leader ~end_idx pkt_payload =
  if term > t.term then flush t ~term ~leader;
  if term = t.term then begin
    if leader <> t.leader then flush t ~term ~leader;
    if end_idx <= t.leader_last then t.pending <- true
    else t.leader_last <- end_idx;
    t.forwarded <- t.forwarded + 1;
    transmit t ~dst:(Addr.Group t.followers_group) pkt_payload
  end

let on_append_ack t ~term ~from ~match_idx ~applied_idx =
  if term = t.term && from >= 0 && from < t.n then begin
    t.match_reg.(from) <- max t.match_reg.(from) match_idx;
    t.completed_reg.(from) <- max t.completed_reg.(from) applied_idx;
    let candidate = min (quorum_match t) t.leader_last in
    if candidate > t.commit then begin
      t.commit <- candidate;
      t.pending <- false;
      send_agg_commit t
    end
    else if t.pending then begin
      t.pending <- false;
      send_agg_commit t
    end
  end

let handle t (pkt : Protocol.payload Fabric.packet) =
  if not t.down then
    match pkt.payload with
    | Protocol.Raft (Rtypes.Append_entries { term; leader; prev_idx; entries; _ }) ->
        on_append_entries t ~term ~leader
          ~end_idx:(prev_idx + Array.length entries)
          pkt.payload
    | Protocol.Raft
        (Rtypes.Append_ack { term; from; success; match_idx; applied_idx; _ })
      ->
        (* Failure replies go point-to-point to the leader (§5); only
           successes reach the dataplane registers. *)
        if success then on_append_ack t ~term ~from ~match_idx ~applied_idx
    | Protocol.Probe { term; leader } ->
        if term > t.term then flush t ~term ~leader;
        if term = t.term then
          transmit t ~dst:(Addr.Node leader) (Protocol.Probe_reply { term })
    | Protocol.Raft
        (Rtypes.Request_vote _ | Rtypes.Vote _ | Rtypes.Commit_to _ | Rtypes.Agg_ack _)
    | Protocol.Request _ | Protocol.Response _ | Protocol.Recovery_request _
    | Protocol.Recovery_response _ | Protocol.Probe_reply _
    | Protocol.Agg_commit _ | Protocol.Feedback _ | Protocol.Nack _ ->
        ()

let create engine fabric ~n ~cluster_group ~followers_group ~rate_gbps =
  ignore engine;
  if n <= 0 then invalid_arg "Aggregator.create: n must be positive";
  let t =
    {
      fabric;
      port = None;
      n;
      cluster_group;
      followers_group;
      match_reg = Array.make n 0;
      completed_reg = Array.make n 0;
      term = 0;
      leader = -1;
      leader_last = 0;
      commit = 0;
      pending = false;
      down = false;
      forwarded = 0;
      commits_sent = 0;
    }
  in
  let port = Fabric.attach fabric ~addr:Addr.Netagg ~rate_gbps ~handler:(handle t) in
  t.port <- Some port;
  t

let set_down t flag =
  t.down <- flag;
  match t.port with Some p -> Fabric.set_down p flag | None -> ()

let term t = t.term
let commit t = t.commit
let match_of t i = t.match_reg.(i)
let forwarded t = t.forwarded
let commits_sent t = t.commits_sent
