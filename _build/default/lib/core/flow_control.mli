(** The flow-control middlebox (§6.3).

    Multicast has no implicit back-pressure: under overload, leader and
    followers would drop different requests and the recovery path would
    thrash. The paper fronts the multicast group with a programmable
    middlebox that counts requests in flight; clients address the
    middlebox, which rewrites the destination to the multicast group while
    below the threshold and NACKs the client above it. Repliers send a
    FEEDBACK per reply to decrement the counter.

    The device is a switch dataplane: it adds no CPU cost, only its port's
    serialization and the fabric latency. *)

open Hovercraft_sim

type t

val create :
  Engine.t ->
  Protocol.payload Hovercraft_net.Fabric.t ->
  cap:int ->
  group:int ->
  rate_gbps:float ->
  t
(** Attach the middlebox at {!Hovercraft_net.Addr.Middlebox}, forwarding
    admitted requests to multicast [group]. [cap] is the max number of
    requests in flight. *)

val inflight : t -> int
val admitted : t -> int
val nacked : t -> int
