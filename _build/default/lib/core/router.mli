(** The R2P2 request router for non-replicated requests.

    §6.1 notes that marking only consistency-critical requests as
    REPLICATED lets the same servers also serve plain requests — possibly
    stale, never ordered — and that those "can also be load balanced based
    on the techniques described in [R2P2]". This device is that router: it
    fronts the cluster for [Unrestricted] requests, forwarding each to one
    server chosen by JBSQ over per-server outstanding counts, which
    FEEDBACK messages from the repliers decrement.

    Like the other in-network devices it costs no CPU, only port
    serialization and fabric latency. *)

open Hovercraft_sim

type t

val create :
  Engine.t ->
  Protocol.payload Hovercraft_net.Fabric.t ->
  n:int ->
  ?bound:int ->
  ?seed:int ->
  rate_gbps:float ->
  unit ->
  t
(** Attach at {!Hovercraft_net.Addr.Router}, balancing across
    [Node 0 .. Node (n-1)]. [bound] is the JBSQ queue bound per server
    (default 16). *)

val set_excluded : t -> int -> bool -> unit
(** Take a server out of rotation (e.g. it crashed). *)

val forwarded : t -> int
val rejected : t -> int
(** Requests NACKed because every server was at its bound. *)

val outstanding : t -> int -> int
