test/test_net.ml: Addr Alcotest Array Cpu Engine Fabric Hovercraft_net Hovercraft_sim List Timebase Wire
