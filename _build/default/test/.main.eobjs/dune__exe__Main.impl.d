test/main.ml: Alcotest Test_apps Test_cluster Test_core Test_invariants Test_mc Test_net Test_r2p2 Test_raft Test_sim
