test/test_raft.ml: Alcotest Array Hovercraft_raft Hovercraft_sim List QCheck QCheck_alcotest Raft_harness Rng
