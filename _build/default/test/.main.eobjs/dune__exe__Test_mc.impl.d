test/test_mc.ml: Alcotest Array Explore Hovercraft_mc Hovercraft_raft Model String
