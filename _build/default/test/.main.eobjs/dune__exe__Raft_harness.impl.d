test/raft_harness.ml: Array Hashtbl Hovercraft_raft Hovercraft_sim List Printf Rng
