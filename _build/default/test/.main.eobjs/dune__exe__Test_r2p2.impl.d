test/test_r2p2.ml: Alcotest Gen Hashtbl Hovercraft_net Hovercraft_r2p2 Hovercraft_sim Jbsq List QCheck QCheck_alcotest R2p2 Rng
