test/test_cluster.ml: Alcotest Deploy Dist Experiment Failure Hnode Hovercraft_apps Hovercraft_cluster Hovercraft_core Hovercraft_net Hovercraft_sim List Loadgen String Table Timebase
