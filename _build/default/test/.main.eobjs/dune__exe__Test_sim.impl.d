test/test_sim.ml: Alcotest Array Dist Engine Gen Heap Hovercraft_sim List QCheck QCheck_alcotest Rng Series Stats Timebase
