test/test_apps.ml: Alcotest Dist Hovercraft_apps Hovercraft_sim Kvstore List Op Printf QCheck QCheck_alcotest Rng Service String Ycsb Zipf
