test/main.mli:
