(* Tests for the R2P2 transport types and the JBSQ selector. *)

open Hovercraft_sim
open Hovercraft_r2p2
module Addr = Hovercraft_net.Addr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rid ?(id = 0) ?(port = 1000) ?(node = 0) () =
  { R2p2.id; src_addr = Addr.Client node; src_port = port }

let test_policy_read_only () =
  check "r policy" true (R2p2.policy_read_only R2p2.Replicated_req_r);
  check "rw policy" false (R2p2.policy_read_only R2p2.Replicated_req);
  check "unrestricted" false (R2p2.policy_read_only R2p2.Unrestricted)

let test_req_id_identity () =
  check "equal" true (R2p2.req_id_equal (rid ()) (rid ()));
  check "id differs" false (R2p2.req_id_equal (rid ~id:1 ()) (rid ~id:2 ()));
  check "port differs" false (R2p2.req_id_equal (rid ~port:1 ()) (rid ~port:2 ()));
  check "addr differs" false (R2p2.req_id_equal (rid ~node:1 ()) (rid ~node:2 ()));
  check "hash agrees with equal" true
    (R2p2.req_id_hash (rid ()) = R2p2.req_id_hash (rid ()));
  check_int "compare reflexive" 0 (R2p2.req_id_compare (rid ()) (rid ()))

let test_id_source_unique () =
  let src = R2p2.Id_source.create ~src_addr:(Addr.Client 0) ~src_port:1000 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    let r = R2p2.Id_source.next src in
    check "fresh id" false (Hashtbl.mem seen r.R2p2.id);
    Hashtbl.replace seen r.R2p2.id ()
  done

(* --- jbsq ------------------------------------------------------------ *)

let mk ?(policy = Jbsq.Jbsq) ?(bound = 4) ?(n = 3) ?(seed = 1) () =
  Jbsq.create policy ~bound ~n ~rng:(Rng.create seed)

let test_jbsq_initial_all_eligible () =
  let q = mk () in
  for i = 0 to 2 do
    check "eligible at depth 0" true (Jbsq.eligible q i)
  done;
  check "pick succeeds" true (Jbsq.pick q <> None)

let test_jbsq_bound_enforced () =
  let q = mk ~n:1 ~bound:2 () in
  Jbsq.assign q 0;
  Jbsq.assign q 0;
  check "full server ineligible" false (Jbsq.eligible q 0);
  Alcotest.(check (option int)) "pick exhausted" None (Jbsq.pick q);
  Alcotest.check_raises "assign over bound"
    (Invalid_argument "Jbsq.assign: server not eligible") (fun () ->
      Jbsq.assign q 0);
  Jbsq.complete q 0;
  check "eligible again" true (Jbsq.eligible q 0)

let test_jbsq_picks_shortest () =
  let q = mk ~n:3 ~bound:10 () in
  Jbsq.assign q 0;
  Jbsq.assign q 0;
  Jbsq.assign q 1;
  (* Server 2 has depth 0: JBSQ must pick it. *)
  for _ = 1 to 20 do
    Alcotest.(check (option int)) "shortest queue" (Some 2) (Jbsq.pick q)
  done

let test_jbsq_exclusion () =
  let q = mk ~n:2 ~bound:4 () in
  Jbsq.set_excluded q 0 true;
  for _ = 1 to 10 do
    Alcotest.(check (option int)) "excluded never picked" (Some 1) (Jbsq.pick q)
  done;
  Jbsq.set_excluded q 1 true;
  Alcotest.(check (option int)) "all excluded" None (Jbsq.pick q)

let test_random_picks_only_eligible () =
  let q = mk ~policy:Jbsq.Random_choice ~n:4 ~bound:1 () in
  Jbsq.assign q 1;
  Jbsq.assign q 3;
  for _ = 1 to 50 do
    match Jbsq.pick q with
    | Some (0 | 2) -> ()
    | Some i -> Alcotest.failf "picked ineligible %d" i
    | None -> Alcotest.fail "pick failed with eligible servers"
  done

let test_jbsq_set_depth () =
  let q = mk ~n:2 ~bound:4 () in
  Jbsq.set_depth q 0 4;
  check "set to bound = ineligible" false (Jbsq.eligible q 0);
  Jbsq.set_depth q 0 3;
  check "below bound again" true (Jbsq.eligible q 0)

(* Invariant under random operations: depths never exceed the bound and
   never go negative; picks always return eligible servers. *)
let prop_jbsq_invariants =
  QCheck.Test.make ~name:"jbsq depth invariants under random ops" ~count:300
    QCheck.(pair (int_range 1 10_000) (list_of_size (Gen.int_range 1 200) (int_range 0 9)))
    (fun (seed, ops) ->
      let n = 3 and bound = 5 in
      let q = Jbsq.create Jbsq.Jbsq ~bound ~n ~rng:(Rng.create seed) in
      List.for_all
        (fun op ->
          (match op mod 3 with
          | 0 -> (
              match Jbsq.pick q with
              | Some i ->
                  assert (Jbsq.eligible q i);
                  Jbsq.assign q i
              | None -> ())
          | 1 ->
              let i = op mod n in
              if Jbsq.depth q i > 0 then Jbsq.complete q i
          | _ -> Jbsq.set_excluded q (op mod n) (op mod 2 = 0));
          let ok = ref true in
          for i = 0 to n - 1 do
            if Jbsq.depth q i < 0 || Jbsq.depth q i > bound then ok := false
          done;
          !ok)
        ops)

let suite =
  [
    Alcotest.test_case "policy read-only flag" `Quick test_policy_read_only;
    Alcotest.test_case "req_id identity triple" `Quick test_req_id_identity;
    Alcotest.test_case "id source uniqueness" `Quick test_id_source_unique;
    Alcotest.test_case "jbsq initial eligibility" `Quick test_jbsq_initial_all_eligible;
    Alcotest.test_case "jbsq bound enforced" `Quick test_jbsq_bound_enforced;
    Alcotest.test_case "jbsq picks shortest" `Quick test_jbsq_picks_shortest;
    Alcotest.test_case "jbsq exclusion" `Quick test_jbsq_exclusion;
    Alcotest.test_case "random picks eligible only" `Quick
      test_random_picks_only_eligible;
    Alcotest.test_case "jbsq set_depth" `Quick test_jbsq_set_depth;
    QCheck_alcotest.to_alcotest prop_jbsq_invariants;
  ]
