examples/fault_tolerant_kv.ml: Deploy Engine Format Hnode Hovercraft_apps Hovercraft_cluster Hovercraft_core Hovercraft_sim List Loadgen Printf Rng Series Timebase
