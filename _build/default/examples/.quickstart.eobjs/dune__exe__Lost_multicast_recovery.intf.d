examples/lost_multicast_recovery.mli:
