examples/load_balanced_reads.mli:
