examples/fault_tolerant_kv.mli:
