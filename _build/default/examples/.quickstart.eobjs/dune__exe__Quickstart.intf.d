examples/quickstart.mli:
