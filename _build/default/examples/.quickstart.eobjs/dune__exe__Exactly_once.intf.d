examples/exactly_once.mli:
