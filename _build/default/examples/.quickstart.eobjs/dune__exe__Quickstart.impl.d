examples/quickstart.ml: Array Deploy Format Hnode Hovercraft_apps Hovercraft_cluster Hovercraft_core Hovercraft_sim Loadgen Printf
