# Convenience targets; CI runs `make check`.

.PHONY: all build test check snapshot chaos clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build test

# End-to-end observability smoke: a lossy HovercRaft run that must
# converge and emit hovercraft_snapshot.json.
snapshot:
	dune exec bench/main.exe -- snapshot

# Seeded chaos smoke: kill/restart/partition schedule under load; the
# history checker makes the command exit non-zero on any violation.
chaos:
	dune exec bin/hovercraft.exe -- chaos --seed 4 --duration-ms 1500

clean:
	dune clean
