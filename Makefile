# Convenience targets; CI runs `make check`.

.PHONY: all build test check snapshot clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build test

# End-to-end observability smoke: a lossy HovercRaft run that must
# converge and emit hovercraft_snapshot.json.
snapshot:
	dune exec bench/main.exe -- snapshot

clean:
	dune clean
