# Convenience targets; CI runs `make check`.

.PHONY: all build test check obs-snapshot snapshot chaos reconfig shard bench-shard applyscale netscale backendscale control autoscale clean

all: build

build:
	dune build @all

test:
	dune runtest

check: build test

# End-to-end observability smoke: a lossy HovercRaft run that must
# converge and emit hovercraft_snapshot.json.
obs-snapshot:
	dune exec bench/main.exe -- snapshot

# Snapshot/compaction smoke: crash a follower, run past the retention
# window, restart it; the follower must rejoin via Install_snapshot with
# a compacted leader log. Exits non-zero on any checker violation.
snapshot:
	dune exec bin/hovercraft.exe -- snapshot --seed 4 --duration-ms 1500

# Seeded chaos smoke: kill/restart/partition schedule under load; the
# history checker makes the command exit non-zero on any violation.
chaos:
	dune exec bin/hovercraft.exe -- chaos --seed 4 --duration-ms 1500

# Membership-change smoke: grow 3->5 under load, transfer leadership,
# remove the old leader, crash-and-restart a follower; exits non-zero on
# any history-checker violation or a wedged recovery.
reconfig:
	dune exec bin/hovercraft.exe -- reconfig --seed 4 --duration-ms 2000

# Multi-Raft sharding smoke: 4 groups / 2 active, split both onto the
# dormant targets and rebalance slots back with a live move_shard, all
# under sustained YCSB-B load; exits non-zero on any per-group or
# cross-map history-checker violation.
shard:
	dune exec bin/hovercraft.exe -- shard --seed 4 --duration-ms 1500

# kRPS-under-SLO vs shard count on a fixed per-host budget (YCSB-B).
bench-shard:
	dune exec bench/main.exe -- shardscale

# YCSB-A kRPS-under-SLO vs apply threads (K in 1,2,4,8) with the
# byte-identical-replica confirmation run at each knee.
applyscale:
	dune exec bench/main.exe -- applyscale

# YCSB-B kRPS-under-SLO vs net-path stage count (net_stages in 1,2,4),
# plus applyscale re-run under the pipelined net; exits non-zero if the
# pipelined knee regresses below the serial knee or any replica set
# diverges.
netscale:
	dune exec bench/main.exe -- netscale

# Ordering-backend shootout (raft vs rabia on the same HovercRaft cell):
# fault-free kRPS-under-SLO knee, p99 across a mid-run leader/replica
# kill, and the outage length; exits non-zero if any surviving replica
# set diverges.
backendscale:
	dune exec bench/main.exe -- backendscale

# Control-plane smoke: the flagship hotspot-drift scenario with the
# SLO-driven controller attached; per-window verdicts plus the full
# history-checker battery. Exits non-zero if the SLO fraction is missed
# or any checker trips.
control:
	dune exec bin/hovercraft.exe -- control hotspot-drift --seed 11 \
	  --out hovercraft_control.json

# The autoscaling figure: same scenario and seed, controller off vs on.
# The baseline must violate the SLO, the controller run must hold it,
# and every safety checker must stay green in both runs.
autoscale:
	dune exec bench/main.exe -- autoscale

clean:
	dune clean
